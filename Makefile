# zombiessd — build, test and reproduction targets. Everything is stdlib Go;
# `make repro` regenerates the paper's tables and figures.

GO ?= go

.PHONY: all build vet test race bench repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate every table/figure of the paper plus the ablations.
repro:
	$(GO) run ./cmd/zombiectl run all

# CSV output for plotting.
repro-csv:
	$(GO) run ./cmd/zombiectl -csv run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mailserver
	$(GO) run ./examples/lifecycle
	$(GO) run ./examples/dedupcombo
	$(GO) run ./examples/adaptive

clean:
	$(GO) clean ./...
