# zombiessd — build, test and reproduction targets. Everything is stdlib Go;
# `make repro` regenerates the paper's tables and figures.

GO ?= go

.PHONY: all build vet test race bench bench-all trace-smoke fuzz-short lifetime-smoke crash-smoke scrub-smoke tenant-smoke gc-smoke chaos-smoke rain-smoke dftl-smoke paper-geometry-smoke repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Overhead benchmarks: sim.Run with the observability layer off and on
# (BENCH_telemetry.json), and with the page map in RAM vs flash-resident
# behind a bounded CMT (BENCH_dftl.json).
bench:
	$(GO) test -run='^$$' -bench BenchmarkRunTelemetry -benchmem ./internal/sim \
		| $(GO) run ./cmd/benchjson -o BENCH_telemetry.json
	$(GO) test -run='^$$' -bench BenchmarkRunDftl -benchmem ./internal/sim \
		| $(GO) run ./cmd/benchjson -o BENCH_dftl.json

# The full benchmark sweep: every figure, ablation and micro-benchmark.
bench-all:
	$(GO) test -bench . -benchmem ./...

# Telemetry export smoke: a short instrumented ssdsim run must produce a
# schema-valid Chrome trace and a parsable Prometheus scrape.
trace-smoke:
	$(GO) run ./cmd/ssdsim -workload mail -n 20000 -system dvp -telemetry \
		-telemetry-trace smoke_trace.json -telemetry-prom smoke_metrics.prom >/dev/null
	$(GO) run ./cmd/tracecheck -prom smoke_metrics.prom smoke_trace.json

# Short fuzz smoke over the trace codecs and the recovery scan (seed
# corpora live in internal/*/testdata/fuzz/).
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzParseTextRecord -fuzztime=5s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzBinaryReader -fuzztime=5s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzReadFIU -fuzztime=5s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRecoveryScan -fuzztime=5s ./internal/recovery
	$(GO) test -run='^$$' -fuzz=FuzzRBEREstimator -fuzztime=5s ./internal/fault
	$(GO) test -run='^$$' -fuzz=FuzzTenantConfig -fuzztime=5s ./internal/sim
	$(GO) test -run='^$$' -fuzz=FuzzGCConfig -fuzztime=5s ./internal/faultflags
	$(GO) test -run='^$$' -fuzz=FuzzHealthConfig -fuzztime=5s ./internal/faultflags
	$(GO) test -run='^$$' -fuzz=FuzzDftlConfig -fuzztime=5s ./internal/faultflags
	$(GO) test -run='^$$' -fuzz=FuzzRainConfig -fuzztime=5s ./internal/rain

# Reduced-scale end-to-end run of the drive-to-death harness: every
# architecture ages under the wear-scaled fault plan and the capacity /
# write-reduction / p99 vs cumulative-erases series must render.
lifetime-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 4000 run lifetime

# Reduced-scale crashsweep: sudden power loss at 4 points per architecture,
# full OOB recovery scan, DVP re-seed and integrity-oracle verification.
crash-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 -crash-points 4 run crashsweep

# Reduced-scale scrubsweep: all five architectures decay under the
# accelerated retention/read-disturb model with the background patrol off
# (uncorrectable reads, data loss, declined revivals) and on (zero loss).
scrub-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 run scrubsweep

# Reduced-scale multi-tenant sweep: a 2-tenant set under WRR across all
# five architectures through the multi-queue host engine, reporting
# per-tenant tail latency, DVP hit rate and the cross-tenant subsidy.
tenant-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 -tenants "mail,trans:ia=0.5" -qos wrr run tenantsweep

# Reduced-scale gcsweep: blocking / soft / partial-k / partial+suspension GC
# policies across all five architectures plus the antagonist tenant pair,
# reporting read p99/p99.9 and the gc-blocked attribution phase.
gc-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 run gcsweep

# Reduced-scale chaos soak: repeated mid-operation power losses composed
# with program/erase faults and RBER decay under the health governor; every
# architecture must survive with zero oracle violations and zero lost pages.
chaos-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 -chaos-seed 7 run chaossweep

# Reduced-scale rainsweep: all five architectures lose one whole die
# mid-trace with intra-SSD RAIN parity off (live pages gone, oracle data
# loss) and on (every page reconstructed from parity, zero loss).
rain-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 run rainsweep

# Reduced-scale dftlsweep: all five architectures with the page map in RAM
# (control) and flash-resident behind a small and a large CMT, reporting the
# translation-vs-data GC split, the mapping write tax and the surviving
# revival win.
dftl-smoke:
	$(GO) run ./cmd/zombiectl -q -requests 24000 run dftlsweep

# Full-drive smoke: one evaluation-matrix cell on the paper's 1 TB Table I
# geometry with the map flash-resident — the sparse host state and flat
# per-block store metadata must keep it inside a CI runner's memory.
paper-geometry-smoke:
	$(GO) test -run=TestPaperGeometryCell -count=1 ./internal/experiments

# Regenerate every table/figure of the paper plus the ablations.
repro:
	$(GO) run ./cmd/zombiectl run all

# CSV output for plotting.
repro-csv:
	$(GO) run ./cmd/zombiectl -csv run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mailserver
	$(GO) run ./examples/lifecycle
	$(GO) run ./examples/dedupcombo
	$(GO) run ./examples/adaptive

clean:
	$(GO) clean ./...
