// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact), the design-choice ablations called out in
// DESIGN.md, and micro-benchmarks of the core data structures.
//
// The per-figure benchmarks report the figure's headline number as a custom
// metric (e.g. meanWriteRed% for Fig 9) so `go test -bench=.` doubles as a
// compact reproduction log; EXPERIMENTS.md records the full-scale runs.
package zombiessd_test

import (
	"fmt"
	"testing"

	"zombiessd/internal/analysis"
	"zombiessd/internal/core"
	"zombiessd/internal/experiments"
	"zombiessd/internal/ftl"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// benchOpts keeps one benchmark iteration around a second.
func benchOpts() experiments.Options {
	return experiments.Options{Requests: 60_000, Days: 2, Seed: 1, Utilization: 0.75}
}

// ------------------------------------------------- per-figure benchmarks --

func BenchmarkFig1ReuseProbability(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(o)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, row := range res.Rows {
			if row.RawProb > best {
				best = row.RawProb
			}
		}
		b.ReportMetric(best*100, "maxReuse%")
	}
}

func BenchmarkFig2InvalidationCDF(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LiveFraction*100, "liveValues%")
	}
}

func BenchmarkFig3LifecycleCDFs(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Writes[1].MetricFrac*100, "top20Writes%")
		b.ReportMetric(res.Rebirths[1].MetricFrac*100, "top20Rebirths%")
	}
}

func BenchmarkFig4PopularityTiming(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(o)
		if err != nil {
			b.Fatal(err)
		}
		top := res.Bins[len(res.Bins)-1]
		b.ReportMetric(top.AvgRebirths, "topDegreeRebirths")
	}
}

func BenchmarkFig5LRUSweep(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(o)
		if err != nil {
			b.Fatal(err)
		}
		// Gap between the smallest buffer and infinite on the first day of
		// mail — the motivation for MQ.
		first := res.Rows[0]
		small := float64(first.Points[0].Writes)
		inf := float64(first.Points[len(first.Points)-1].Writes)
		b.ReportMetric(stats.ReductionPct(small, inf), "m1SmallVsInf%")
	}
}

func BenchmarkFig6LRUMisses(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(o)
		if err != nil {
			b.Fatal(err)
		}
		top := res.Bins[len(res.Bins)-1]
		b.ReportMetric(top.AvgMisses, "topDegreeMisses")
	}
}

func BenchmarkTable2WorkloadStats(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatalf("want 6 workloads, got %d", len(res.Rows))
		}
	}
}

func BenchmarkFig9WriteReduction(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean200K, "meanWriteRed%")
		b.ReportMetric(res.Max200, "maxWriteRed%")
	}
}

func BenchmarkFig10EraseReduction(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean, "meanEraseRed%")
	}
}

func BenchmarkFig11MeanLatency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DVPMean, "dvpLatImprove%")
		b.ReportMetric(res.LXMean, "lxLatImprove%")
	}
}

func BenchmarkFig12TailLatency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean, "p99Improve%")
	}
}

func BenchmarkFig14DedupWrites(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ExtraOverDedup, "extraOverDedup%")
	}
}

func BenchmarkFig15DedupLatency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ExtraOverDedup, "extraLatOverDedup%")
	}
}

// ------------------------------------------------------------ ablations --

// BenchmarkAblationPolicy compares the dead-value pool replacement policies
// (MQ vs LRU vs infinite) at equal capacity on the offline mail replay.
func BenchmarkAblationPolicy(b *testing.B) {
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 120_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	caps := []int{3000}
	b.Run("lru", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := analysis.LRUWriteSweep(recs, caps)
			b.ReportMetric(float64(pts[0].Hits), "hits")
		}
	})
	b.Run("mq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := analysis.MQWriteSweep(recs, caps, 8)
			b.ReportMetric(float64(pts[0].Hits), "hits")
		}
	})
	b.Run("infinite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts := analysis.LRUWriteSweep(recs, []int{0})
			b.ReportMetric(float64(pts[0].Hits), "hits")
		}
	})
}

// BenchmarkAblationQueueCount sweeps the MQ queue count (DESIGN.md: the
// paper fixes 8 after its own sensitivity study).
func BenchmarkAblationQueueCount(b *testing.B) {
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 120_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("queues-%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := analysis.MQWriteSweep(recs, []int{3000}, q)
				b.ReportMetric(float64(pts[0].Hits), "hits")
			}
		})
	}
}

// BenchmarkAblationGC toggles popularity-aware GC victim selection on the
// same DVP device (web, which keeps GC busy) and reports the revival rate:
// with the popularity term, blocks holding hot zombies are spared, so more
// revivals survive to happen.
func BenchmarkAblationGC(b *testing.B) {
	p, _ := workload.ProfileByName("web")
	recs, err := workload.Generate(p, 60_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	run := func(b *testing.B, weight float64) {
		cfg := sim.Config{
			Geometry:     sim.GeometryFor(footprint, 0.80),
			Latency:      ssd.PaperLatency(),
			Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: weight},
			LogicalPages: footprint,
			Kind:         sim.KindDVP,
			PoolKind:     sim.PoolMQ,
			MQ:           core.MQConfig{Queues: 8, Capacity: 3000, DefaultLifetime: 8192},
		}
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(dev, recs, sim.RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.Revived), "revivals")
		b.ReportMetric(float64(res.Metrics.Pool.Drops), "poolDropsByGC")
	}
	b.Run("popularity-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, sim.DefaultPopularityWeight)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, 0)
		}
	})
}

// BenchmarkAblationPopularitySource contrasts write-only popularity (DVP)
// with read+write popularity and address recency (LX-SSD) end to end.
func BenchmarkAblationPopularitySource(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrix(o, []string{"web"},
			[]experiments.System{experiments.SysBaseline, experiments.SysDVP200K, experiments.SysLX})
		if err != nil {
			b.Fatal(err)
		}
		base := float64(m.Results["web"][experiments.SysBaseline].Metrics.HostPrograms())
		b.ReportMetric(stats.ReductionPct(base,
			float64(m.Results["web"][experiments.SysDVP200K].Metrics.HostPrograms())), "dvpWriteRed%")
		b.ReportMetric(stats.ReductionPct(base,
			float64(m.Results["web"][experiments.SysLX].Metrics.HostPrograms())), "lxWriteRed%")
	}
}

// ------------------------------------------------------ micro-benchmarks --

func BenchmarkMQPoolInsertLookup(b *testing.B) {
	ledger := core.NewLedger()
	pool := core.NewMQPool(core.MQConfig{Queues: 8, Capacity: 100_000, DefaultLifetime: 8192}, ledger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := trace.HashOfValue(uint64(i % 200_000))
		ledger.Bump(h)
		if _, ok := pool.Lookup(h, int64(i)); !ok {
			pool.Insert(h, ssd.PPN(i), int64(i))
		}
	}
}

func BenchmarkLRUPoolInsertLookup(b *testing.B) {
	ledger := core.NewLedger()
	pool := core.NewLRUPool(100_000, ledger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := trace.HashOfValue(uint64(i % 200_000))
		ledger.Bump(h)
		if _, ok := pool.Lookup(h, int64(i)); !ok {
			pool.Insert(h, ssd.PPN(i), int64(i))
		}
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	var h stats.Histogram
	for i := 0; i < b.N; i++ {
		h.Add(int64(i & 0xFFFF))
	}
}

func BenchmarkHistogramP99(b *testing.B) {
	var h stats.Histogram
	for i := 0; i < 100_000; i++ {
		h.Add(int64(i % 5000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.P99()
	}
}

func BenchmarkBusProgram(b *testing.B) {
	bus := ssd.NewBus(ssd.DefaultGeometry(), ssd.PaperLatency())
	pages := bus.Geometry().TotalPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Program(ssd.PPN(int64(i)%pages), ssd.Time(i))
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := workload.ProfileByName("mail")
	g, err := workload.NewGenerator(p, int64(b.N)+1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkHashOfValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = trace.HashOfValue(uint64(i))
	}
}

// BenchmarkAblationAdaptiveCapacity contrasts a fixed undersized MQ pool
// with the self-tuning AdaptivePool extension (the paper's future work) on
// the mail replay: the controller should recover most of the hit rate a
// generously sized fixed pool gets.
func BenchmarkAblationAdaptiveCapacity(b *testing.B) {
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 120_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	replay := func(pool core.Pool, ledger *core.Ledger) (hits int64) {
		pages := make(map[uint64]struct {
			h   trace.Hash
			ppn ssd.PPN
		})
		next := ssd.PPN(0)
		var tick int64
		for _, r := range recs {
			if r.Op != trace.OpWrite {
				continue
			}
			tick++
			ledger.Bump(r.Hash)
			if old, ok := pages[r.LBA]; ok {
				pool.Insert(old.h, old.ppn, tick)
			}
			if ppn, ok := pool.Lookup(r.Hash, tick); ok {
				hits++
				pages[r.LBA] = struct {
					h   trace.Hash
					ppn ssd.PPN
				}{r.Hash, ppn}
				continue
			}
			pages[r.LBA] = struct {
				h   trace.Hash
				ppn ssd.PPN
			}{r.Hash, next}
			next++
		}
		return hits
	}
	b.Run("fixed-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := core.NewLedger()
			pool := core.NewMQPool(core.MQConfig{Queues: 8, Capacity: 1000, DefaultLifetime: 8192}, l)
			b.ReportMetric(float64(replay(pool, l)), "hits")
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := core.NewLedger()
			pool := core.NewAdaptivePool(core.AdaptiveConfig{
				MQ:          core.MQConfig{Queues: 8, Capacity: 1000, DefaultLifetime: 8192},
				MinCapacity: 250, MaxCapacity: 32_000, Window: 4096, Step: 0.25,
			}, l)
			b.ReportMetric(float64(replay(pool, l)), "hits")
			b.ReportMetric(float64(pool.Capacity()), "finalCapacity")
		}
	})
	b.Run("fixed-large", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := core.NewLedger()
			pool := core.NewMQPool(core.MQConfig{Queues: 8, Capacity: 32_000, DefaultLifetime: 8192}, l)
			b.ReportMetric(float64(replay(pool, l)), "hits")
		}
	})
}

// BenchmarkAblationBackgroundGC measures the p99 effect of the soft-
// threshold background GC extension under bursty arrivals: with idle gaps
// between bursts, background GC absorbs the reclamation work that would
// otherwise stall a request at the hard threshold.
func BenchmarkAblationBackgroundGC(b *testing.B) {
	// A bursty overwrite-heavy trace: bursts of back-to-back writes
	// separated by long idle gaps.
	var recs []trace.Record
	now := int64(0)
	v := uint64(0)
	for burst := 0; burst < 1200; burst++ {
		for i := 0; i < 50; i++ {
			now += 20 // 20µs apart inside the burst
			v++
			// Cyclic overwrites turn whole blocks to garbage in order —
			// the regime where idle-time erasure of dead blocks pays.
			recs = append(recs, trace.Record{
				Time: now,
				Op:   trace.OpWrite,
				LBA:  v % 9000,
				Hash: trace.HashOfValue(v % 4000),
			})
		}
		now += 60_000 // 60ms idle gap
	}
	const footprint = 9000
	run := func(b *testing.B, soft int) {
		cfg := sim.Config{
			Geometry:     sim.GeometryFor(footprint, 0.85),
			Latency:      ssd.PaperLatency(),
			Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, SoftGCThreshold: soft},
			LogicalPages: footprint,
			Kind:         sim.KindBaseline,
			PoolKind:     sim.PoolMQ,
			MQ:           core.MQConfig{Queues: 8, Capacity: 1000, DefaultLifetime: 8192},
		}
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(dev, recs, sim.RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.All.P99), "p99µs")
		b.ReportMetric(float64(res.Metrics.GC.Background), "bgCycles")
	}
	b.Run("foreground-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, 0)
		}
	})
	b.Run("background", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, 4)
		}
	})
}

// BenchmarkAblationHotColdStreams measures multi-stream lifetime
// separation end to end, in both regimes:
//
//   - mixed: one-shot cold writes interleaved with hot overwrites — the
//     single stream packs both lifetimes into every block, so GC victims
//     drag cold pages along; separation wins.
//   - web: the drift-window workload already writes in lifetime-correlated
//     bursts, so the single stream's temporal order is the better
//     clustering and naive two-stream steering loses — a negative result
//     worth keeping (multi-stream needs workload-aware steering).
func BenchmarkAblationHotColdStreams(b *testing.B) {
	mixed := func() ([]trace.Record, int64) {
		var recs []trace.Record
		now := int64(0)
		const hotSet = 3000
		coldNext := uint64(hotSet)
		v := uint64(0)
		for i := 0; i < 60_000; i++ {
			now += 100
			v++
			lba := v % hotSet // hot page, overwritten every hotSet writes
			if i%5 == 4 {
				lba = coldNext // cold page, written once, lives forever
				coldNext++
			}
			recs = append(recs, trace.Record{
				Time: now, Op: trace.OpWrite, LBA: lba,
				Hash: trace.HashOfValue(1<<40 + v),
			})
		}
		var fp int64
		for _, r := range recs {
			if int64(r.LBA) >= fp {
				fp = int64(r.LBA) + 1
			}
		}
		return recs, fp
	}

	web := func() ([]trace.Record, int64) {
		p, _ := workload.ProfileByName("web")
		recs, err := workload.Generate(p, 60_000, 1)
		if err != nil {
			b.Fatal(err)
		}
		var fp int64
		for _, r := range recs {
			if int64(r.LBA) >= fp {
				fp = int64(r.LBA) + 1
			}
		}
		return recs, fp
	}

	run := func(b *testing.B, recs []trace.Record, footprint int64, hotCold bool) {
		// Deep planes (as on real drives) so the per-plane frontier and
		// reserve overhead of multi-streaming is negligible.
		geo := ssd.Geometry{
			Channels: 4, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
			PagesPerBlock: 128, PageSize: 4096, OverProvision: 0.15,
		}
		planes := int64(geo.TotalChips() * geo.PlanesPerChip())
		geo.BlocksPerPlane = int(float64(footprint)/(0.75*0.85*float64(planes*128))) + 1
		cfg := sim.Config{
			Geometry:       geo,
			Latency:        ssd.PaperLatency(),
			Store:          ftl.StoreConfig{GCFreeBlockThreshold: 2},
			LogicalPages:   footprint,
			Kind:           sim.KindBaseline,
			PoolKind:       sim.PoolMQ,
			MQ:             core.MQConfig{Queues: 8, Capacity: 1000, DefaultLifetime: 8192},
			HotColdStreams: hotCold,
		}
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(dev, recs, sim.RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.GC.Relocated), "relocations")
		b.ReportMetric(float64(res.Metrics.FlashErases), "erases")
	}
	mixedRecs, mixedFP := mixed()
	webRecs, webFP := web()
	b.Run("mixed/single-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, mixedRecs, mixedFP, false)
		}
	})
	b.Run("mixed/hot-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, mixedRecs, mixedFP, true)
		}
	})
	b.Run("web/single-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, webRecs, webFP, false)
		}
	})
	b.Run("web/hot-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, webRecs, webFP, true)
		}
	})
}

// BenchmarkAblationWriteBuffer tests Section VII's software-caching claim
// end to end: a DRAM write-back buffer in front of the drive absorbs some
// duplicate writes, but the dead-value pool still removes a large share of
// the flash programs that get past it.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, 60_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	run := func(b *testing.B, kind sim.Kind, bufPages int) sim.Result {
		cfg := sim.Config{
			Geometry:         sim.GeometryFor(footprint, 0.75),
			Latency:          ssd.PaperLatency(),
			Store:            ftl.StoreConfig{GCFreeBlockThreshold: 2},
			LogicalPages:     footprint,
			Kind:             kind,
			PoolKind:         sim.PoolMQ,
			MQ:               core.MQConfig{Queues: 8, Capacity: 3000, DefaultLifetime: 8192},
			WriteBufferPages: bufPages,
		}
		if kind == sim.KindDVP {
			cfg.Store.PopularityWeight = sim.DefaultPopularityWeight
		}
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(dev, recs, sim.RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	const bufPages = 2048
	b.Run("no-buffer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := run(b, sim.KindBaseline, 0)
			dvp := run(b, sim.KindDVP, 0)
			b.ReportMetric(stats.ReductionPct(
				float64(base.Metrics.HostPrograms()), float64(dvp.Metrics.HostPrograms())), "dvpWriteRed%")
		}
	})
	b.Run("with-buffer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := run(b, sim.KindBaseline, bufPages)
			dvp := run(b, sim.KindDVP, bufPages)
			b.ReportMetric(stats.ReductionPct(
				float64(base.Metrics.HostPrograms()), float64(dvp.Metrics.HostPrograms())), "dvpWriteRed%")
			b.ReportMetric(float64(base.Metrics.BufferAbsorbed), "bufferAbsorbed")
		}
	})
}
