// Command ssdsim replays one trace against one simulated SSD configuration
// and prints the full metric block: flash activity, GC, pool behaviour and
// latency summaries. It accepts traces produced by tracegen (binary or
// text codec) or generates a workload on the fly.
//
// Usage:
//
//	ssdsim -workload mail -n 500000 -system dvp
//	ssdsim -trace mail.trace -system baseline
//	tracegen -workload web -n 100000 | ssdsim -trace - -system dvp+dedup
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"zombiessd/internal/core"
	"zombiessd/internal/dftl"
	"zombiessd/internal/fault"
	"zombiessd/internal/faultflags"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/rain"
	"zombiessd/internal/scrub"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/telemetryflags"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// params collects every flag-settable knob of one simulation run.
type params struct {
	tracePath, traceFmt string
	workload            string
	n, seed             int64
	system, pool        string
	entries, queues     int
	util                float64
	softGC, wbufPages   int
	streams, precond    bool
	faults              fault.Config
	scrub               scrub.Config
	health              health.Config
	rain                rain.Config
	dftl                dftl.Config
	paperGeom           bool
	gcFaultWeight       float64
	preempt             ftl.PreemptConfig
	drainSuspects       bool
	tenants, qos        string
	qd                  int
	tel                 *telemetryflags.Set
}

func main() {
	var p params
	flag.StringVar(&p.tracePath, "trace", "", "trace file ('-' = stdin); empty generates -workload")
	flag.StringVar(&p.traceFmt, "tracefmt", "binary", "trace input codec: binary, text, or fiu (FIU/SRCMap)")
	flag.StringVar(&p.workload, "workload", "mail", "workload to generate when no -trace is given")
	flag.Int64Var(&p.n, "n", 200_000, "requests to generate when no -trace is given")
	flag.Int64Var(&p.seed, "seed", 1, "generator seed")
	flag.StringVar(&p.system, "system", "dvp", "system: baseline, dvp, dedup, dvp+dedup, lx")
	flag.StringVar(&p.pool, "pool", "mq", "dead-value pool policy for dvp systems: mq, lru, infinite")
	flag.IntVar(&p.entries, "entries", 20_000, "dead-value pool capacity in entries")
	flag.IntVar(&p.queues, "queues", 8, "MQ queue count")
	flag.Float64Var(&p.util, "util", 0.75, "drive utilization (footprint / exported capacity)")
	flag.IntVar(&p.softGC, "softgc", 0, "background GC soft threshold in free blocks (0 = off)")
	flag.IntVar(&p.wbufPages, "wbuf", 0, "DRAM write-back buffer size in 4KB pages (0 = none)")
	flag.BoolVar(&p.streams, "streams", false, "hot/cold multi-stream write placement")
	flag.BoolVar(&p.precond, "precondition", true, "fill the footprint before the timed run")
	flag.BoolVar(&p.paperGeom, "paper-geometry", false, "use the paper's full Table I 1 TB geometry instead of scaling the drive to the trace footprint")
	rf := faultflags.Register(flag.CommandLine)
	p.tel = telemetryflags.Register(flag.CommandLine)
	flag.BoolVar(&p.drainSuspects, "gc-drain-suspects", false, "GC drains blocks at the suspect threshold first")
	flag.StringVar(&p.tenants, "tenants", "", "multi-tenant run: tenant set (a count like 2, or specs like mail,trans:weight=2); empty = single-stream replay")
	flag.StringVar(&p.qos, "qos", "fifo", "QoS arbiter for -tenants runs: fifo, wrr or tbucket")
	flag.IntVar(&p.qd, "qd", 0, "per-tenant queue depth and shared device-slot bound for -tenants runs (0 = unlimited)")
	var crashAt int64
	flag.Int64Var(&crashAt, "crash-at", 0, "cut power during the Nth flash op (1-based, preconditioning included; 0 = never), then recover, verify and finish the trace")
	flag.Parse()

	// Reject out-of-range flag values up front with a clear message.
	if err := rf.Validate(); err != nil {
		fatalFlag("%v", err)
	}
	if err := p.tel.Validate(); err != nil {
		fatalFlag("%v", err)
	}
	if crashAt < 0 {
		fatalFlag("-crash-at must be ≥ 0, got %d", crashAt)
	}
	if p.tenants != "" {
		if _, err := sim.ParseTenants(p.tenants); err != nil {
			fatalFlag("-tenants: %v", err)
		}
		if p.tracePath != "" {
			fatalFlag("-tenants generates its own workloads; it cannot be combined with -trace")
		}
		if crashAt > 0 {
			fatalFlag("-tenants cannot be combined with -crash-at")
		}
	}
	if _, err := sim.ParseArbiterKind(p.qos); err != nil {
		fatalFlag("-qos: %v", err)
	}
	if p.qd < 0 {
		fatalFlag("-qd must be ≥ 0, got %d", p.qd)
	}
	p.faults, p.scrub, p.gcFaultWeight = rf.Faults, rf.Scrub, rf.GCFaultWeight
	p.preempt = rf.Preempt()
	p.health = rf.Health()
	p.rain = rf.Rain()
	p.dftl = rf.Dftl()
	p.faults.CrashAtOp = crashAt

	if err := run(p); err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
}

func run(p params) error {
	if p.tenants != "" {
		return runMultiTenant(p)
	}
	recs, err := loadTrace(p.tracePath, p.traceFmt, p.workload, p.n, p.seed)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("empty trace")
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	cfg := simConfig(p, footprint)
	tel := telemetry.New(p.tel.Telemetry)
	cfg.Telemetry = tel
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return err
	}
	if p.faults.CrashAtOp > 0 {
		if err := runWithCrash(cfg, dev, recs, footprint, p.precond); err != nil {
			return err
		}
		return p.tel.WriteExports(tel)
	}
	opts := sim.RunOptions{LogicalPages: footprint}
	if p.precond {
		opts.PreconditionPages = footprint
	}
	res, err := sim.Run(dev, recs, opts)
	if err != nil {
		return err
	}
	printResult(cfg, len(recs), res)
	return p.tel.WriteExports(tel)
}

// runMultiTenant generates one seeded stream per configured tenant and
// drives them through the multi-queue host engine under the chosen
// arbiter, printing the aggregate block followed by one line per tenant.
func runMultiTenant(p params) error {
	cfgs, err := sim.ParseTenants(p.tenants)
	if err != nil {
		return err
	}
	arb, err := sim.ParseArbiterKind(p.qos)
	if err != nil {
		return err
	}
	traces, err := sim.GenerateTenants(cfgs, p.n, p.seed)
	if err != nil {
		return err
	}
	footprint := sim.TotalFootprint(traces)
	cfg := simConfig(p, footprint)
	tel := telemetry.New(p.tel.Telemetry)
	cfg.Telemetry = tel
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return err
	}
	opts := sim.EngineOptions{Arbiter: arb, QueueDepth: p.qd, DeviceSlots: p.qd, LogicalPages: footprint}
	if p.precond {
		opts.PreconditionPages = footprint
	}
	mr, err := sim.RunTenants(dev, traces, opts)
	if err != nil {
		return err
	}
	var requests int
	for _, t := range traces {
		requests += len(t.Recs)
	}
	printResult(cfg, requests, mr.Result)
	fmt.Printf("qos         %s (qd=%d)\n", arb, p.qd)
	for _, tr := range mr.Tenants {
		fmt.Printf("tenant %-16s n=%-8d rej=%-6d mean=%.1fµs p99=%dµs p99.9=%dµs wait=%.1fµs dvp-hit=%.1f%% WA=%.2f rev-other=%d rev-by-other=%d\n",
			tr.Name, tr.Requests, tr.Rejected, tr.All.Mean, tr.All.P99, tr.P999,
			tr.Wait.Mean, tr.DVPHitPct(), tr.Metrics.WriteAmplification(),
			tr.Store.RevivedOther, tr.Store.RevivedByOther)
	}
	return p.tel.WriteExports(tel)
}

// simConfig assembles the device configuration shared by the single-stream
// and multi-tenant paths for a run addressing footprint logical pages.
func simConfig(p params, footprint int64) sim.Config {
	kind := sim.Kind(strings.ToLower(p.system))
	if kind == "lx-ssd" {
		kind = sim.KindLX
	}
	popWeight := 0.0
	if kind == sim.KindDVP || kind == sim.KindDVPDedup {
		popWeight = sim.DefaultPopularityWeight
	}
	geo := sim.GeometryFor(footprint, p.util)
	if p.paperGeom {
		geo = ssd.PaperGeometry()
	}
	return sim.Config{
		Geometry: geo,
		Latency:  ssd.PaperLatency(),
		Store: ftl.StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: popWeight, SoftGCThreshold: p.softGC,
			FaultPenaltyWeight: p.gcFaultWeight, DrainSuspects: p.drainSuspects, Preempt: p.preempt},
		LogicalPages: footprint,
		Kind:         kind,
		PoolKind:     sim.PoolKind(strings.ToLower(p.pool)),
		MQ:           core.MQConfig{Queues: p.queues, Capacity: p.entries, DefaultLifetime: 8192},
		LRUCapacity:  p.entries,
		Adaptive: core.AdaptiveConfig{
			MQ:          core.MQConfig{Queues: p.queues, Capacity: p.entries, DefaultLifetime: 8192},
			MinCapacity: p.entries / 4,
			MaxCapacity: p.entries * 8,
			Window:      8192,
			Step:        0.25,
		},
		LX:               lxssd.Config{Capacity: p.entries, MinPopularity: 2},
		WriteBufferPages: p.wbufPages,
		HotColdStreams:   p.streams,
		Faults:           p.faults,
		Scrub:            p.scrub,
		Health:           p.health,
		RAIN:             p.rain,
		DFTL:             p.dftl,
	}
}

// runWithCrash replays the trace with the power-loss trigger armed: when
// it fires, the device recovers from its OOB metadata and journal, the
// integrity oracle checks every durably acknowledged page, and the rest of
// the trace runs on the recovered device.
func runWithCrash(cfg sim.Config, dev sim.Device, recs []trace.Record, footprint int64, precond bool) error {
	shadow, ackOnWrite := sim.AttachShadow(dev)
	hr, ok := dev.(sim.HashReader)
	if !ok {
		return fmt.Errorf("device %T lacks ReadHash; cannot verify crash recovery", dev)
	}
	var end ssd.Time
	if precond {
		for lpn := int64(0); lpn < footprint; lpn++ {
			h := sim.PreconditionHash(lpn)
			done, err := dev.Write(ftl.LPN(lpn), h, 0)
			if err != nil {
				return fmt.Errorf("precondition write %d: %w", lpn, err)
			}
			shadow.Observe(ftl.LPN(lpn), h)
			if ackOnWrite {
				shadow.Ack(ftl.LPN(lpn), h)
			}
			if done > end {
				end = done
			}
		}
	}
	shift := end + ssd.Millisecond
	crashed := false
	for i, rec := range recs {
		if int64(rec.LBA) >= footprint {
			return fmt.Errorf("record %d LBA %d outside logical space %d", i, rec.LBA, footprint)
		}
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		var err error
		switch rec.Op {
		case trace.OpWrite:
			_, err = dev.Write(lpn, rec.Hash, arrival)
			if err == nil {
				shadow.Observe(lpn, rec.Hash)
				if ackOnWrite {
					shadow.Ack(lpn, rec.Hash)
				}
			}
		case trace.OpRead:
			_, err = dev.Read(lpn, arrival)
		default:
			return fmt.Errorf("record %d has unknown op %v", i, rec.Op)
		}
		if err == nil {
			continue
		}
		if crashed || !errors.Is(err, fault.ErrPowerLoss) {
			return fmt.Errorf("record %d: %w", i, err)
		}
		crashed = true
		var iw *sim.InterruptedWrite
		if errors.As(err, &iw) {
			shadow.Exempt(iw.LPN) // torn-write exclusion for the in-flight page
		}
		rep, rerr := sim.Recover(dev, sim.RecoverOptions{})
		if rerr != nil {
			return fmt.Errorf("recovery after crash at record %d: %w", i, rerr)
		}
		viol := shadow.Verify(hr)
		fmt.Printf("power loss  at record %d (flash op %d)\n", i, cfg.Faults.CrashAtOp)
		fmt.Printf("recovery    scanned=%d pages (%.1f ms at %dµs/read)  torn=%d  bad-skipped=%d\n",
			rep.PagesScanned, float64(rep.ScanCost(cfg.Latency.Read))/float64(ssd.Millisecond),
			cfg.Latency.Read/ssd.Microsecond, rep.TornDiscarded, rep.BadSkipped)
		fmt.Printf("rebuilt     mappings=%d  zombies=%d  journal replayed=%d discarded=%d\n",
			rep.Winners, rep.Garbage, rep.JournalReplayed, rep.JournalDiscarded)
		fmt.Printf("oracle      %d pages checked, %d violations\n", shadow.Len(), len(viol))
		for _, v := range viol {
			fmt.Printf("  VIOLATION %v\n", v)
		}
	}
	if !crashed {
		fmt.Printf("power loss  never fired (-crash-at %d beyond the run's flash ops)\n", cfg.Faults.CrashAtOp)
	}
	finalViol := shadow.Verify(hr)
	fmt.Printf("final       %d pages checked, %d violations after finishing the trace\n", shadow.Len(), len(finalViol))
	m := dev.Metrics()
	fmt.Printf("flash       programs=%d reads=%d erases=%d  revived=%d dedupHits=%d\n",
		m.FlashPrograms, m.FlashReads, m.FlashErases, m.Revived, m.DedupHits)
	fmt.Printf("pool        %v\n", m.Pool)
	if len(finalViol) > 0 {
		return fmt.Errorf("integrity oracle reported %d violations", len(finalViol))
	}
	return nil
}

// fatalFlag reports a bad flag value and exits like flag's own errors do.
func fatalFlag(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "ssdsim: "+format+"\n", a...)
	os.Exit(2)
}

func loadTrace(tracePath, traceFmt, name string, n, seed int64) ([]trace.Record, error) {
	if tracePath == "" {
		p, ok := workload.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		return workload.Generate(p, n, seed)
	}
	var r io.Reader = os.Stdin
	if tracePath != "-" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	switch traceFmt {
	case "binary":
		return trace.NewReader(r).ReadAll()
	case "text":
		return trace.ReadText(r)
	case "fiu":
		return trace.ReadFIU(r)
	default:
		return nil, fmt.Errorf("unknown trace format %q (want binary, text or fiu)", traceFmt)
	}
}

func printResult(cfg sim.Config, requests int, res sim.Result) {
	m := res.Metrics
	fmt.Printf("system      %s (pool=%s)\n", cfg.Kind, cfg.PoolKind)
	fmt.Printf("geometry    %s\n", cfg.Geometry)
	fmt.Printf("requests    %d (%d writes, %d reads)\n", requests, m.HostWrites, m.HostReads)
	fmt.Printf("flash       programs=%d (host %d, GC %d)  reads=%d  erases=%d\n",
		m.FlashPrograms, m.HostPrograms(), m.GC.Relocated, m.FlashReads, m.FlashErases)
	fmt.Printf("short-circ  revived=%d  dedupHits=%d  (%.1f%% of writes)\n",
		m.Revived, m.DedupHits, 100*float64(m.ShortCircuited())/float64(max64(m.HostWrites, 1)))
	fmt.Printf("gc          %+v\n", m.GC)
	if cfg.Faults.Enabled() || cfg.Faults.IntegrityArmed() {
		fmt.Printf("faults      %+v\n", m.Faults)
	}
	if cfg.Scrub.Enabled() {
		fmt.Printf("scrub       %+v\n", m.Scrub)
	}
	if cfg.Health.Enabled() {
		fmt.Printf("health      %+v\n", res.Health)
	}
	if cfg.RAIN.Enabled() {
		fmt.Printf("rain        %+v\n", m.Rain)
	}
	if cfg.DFTL.Enable {
		fmt.Printf("dftl        hit=%.1f%%  %+v\n", m.Dftl.HitRate()*100, m.Dftl)
	}
	fmt.Printf("pool        %v\n", m.Pool)
	fmt.Printf("latency all    %v\n", res.All)
	fmt.Printf("latency reads  %v\n", res.Reads)
	fmt.Printf("latency writes %v\n", res.Writes)
	fmt.Printf("makespan    %.3fs\n", float64(res.Makespan)/1e6)
	if res.MeanChipUtil > 0 {
		fmt.Printf("chips       mean util=%.1f%%  max util=%.1f%%  (of makespan)\n",
			res.MeanChipUtil*100, res.MaxChipUtil*100)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
