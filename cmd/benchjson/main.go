// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON report. `make bench` pipes the telemetry on/off
// benchmark through it to produce BENCH_telemetry.json.
//
// Usage:
//
//	go test -bench BenchmarkRunTelemetry -benchmem ./internal/sim | benchjson -o BENCH_telemetry.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit ("ns/op", "B/op", "allocs/op", custom units) to
	// its reported value.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the file layout of BENCH_telemetry.json.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output file ('-' = stdout)")
	flag.Parse()
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
}

// parse consumes go test -bench output: header lines ("goos: linux"),
// benchmark result lines ("BenchmarkX-8  10  12345 ns/op  3.14 foo%") and
// everything else (PASS, ok) ignored.
func parse(sc *bufio.Scanner) (Report, error) {
	var rep Report
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return rep, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseBench splits one result line into name, iteration count and
// (value, unit) metric pairs.
func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: bad iteration count: %v", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: bad value %q: %v", line, f[i], err)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}
