// Command tracegen emits synthetic block traces in the repository's binary
// or text codec, calibrated to the paper's Table II workloads.
//
// Usage:
//
//	tracegen -workload mail -n 1000000 -o mail.trace
//	tracegen -workload web -n 50000 -format text -o -        # text to stdout
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "mail", "workload profile (see -list)")
		n      = flag.Int64("n", 100_000, "number of requests")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "binary", "output codec: binary or text")
		out    = flag.String("o", "-", "output file ('-' = stdout)")
		list   = flag.Bool("list", false, "list workload profiles and exit")
		stats  = flag.Bool("stats", false, "print Table II stats for the generated trace to stderr")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-8s WR=%2.0f%%  uniqueW=%4.1f%%  footprint=%.0f%% of requests\n",
				p.Name, p.WriteRatio*100, p.UniqueWriteFrac*100, p.FootprintFrac*100)
		}
		return
	}

	if err := run(*name, *n, *seed, *format, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name string, n, seed int64, format, out string, printStats bool) error {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q (try -list)", name)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch format {
	case "binary":
		g, err := workload.NewGenerator(p, n, seed)
		if err != nil {
			return err
		}
		bw := trace.NewWriter(w)
		col := trace.NewCollector()
		for {
			rec, ok := g.Next()
			if !ok {
				break
			}
			if err := bw.Write(rec); err != nil {
				return err
			}
			if printStats {
				col.Add(rec)
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if printStats {
			fmt.Fprintln(os.Stderr, col.Stats())
		}
		return nil
	case "text":
		recs, err := workload.Generate(p, n, seed)
		if err != nil {
			return err
		}
		if err := trace.WriteText(w, recs); err != nil {
			return err
		}
		if printStats {
			fmt.Fprintln(os.Stderr, trace.Collect(recs))
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want binary or text)", format)
	}
}
