// Command zombiectl regenerates the paper's tables and figures.
//
// Usage:
//
//	zombiectl list
//	zombiectl run <id>...        # e.g. zombiectl run fig9 fig10
//	zombiectl run all
//
// Flags scale the experiments; see -h. Full-simulation figures (9–12,
// 14–15) share one evaluation matrix per invocation, so `run all` simulates
// each (workload, system) pair exactly once.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zombiessd/internal/experiments"
	"zombiessd/internal/faultflags"
	"zombiessd/internal/sim"
	"zombiessd/internal/telemetryflags"
)

func main() {
	opts := experiments.DefaultOptions()
	flag.Int64Var(&opts.Requests, "requests", opts.Requests, "requests per workload (per day for day studies)")
	flag.IntVar(&opts.Days, "days", opts.Days, "days for the per-day figures (1 and 5)")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "workload generator seed")
	flag.Float64Var(&opts.Utilization, "util", opts.Utilization, "drive utilization (footprint / exported capacity)")
	rf := faultflags.Register(flag.CommandLine)
	tf := telemetryflags.Register(flag.CommandLine)
	flag.IntVar(&opts.Jobs, "j", 0, "parallel matrix workers (0 = all cores); results are identical for every value")
	telCell := flag.String("telemetry-cell", "mail/dvp-200k",
		"matrix cell (workload/system) whose telemetry the -telemetry-* exports cover")
	flag.IntVar(&opts.CrashPoints, "crash-points", experiments.DefaultCrashPoints, "sudden-power-loss points per architecture in the crashsweep experiment")
	flag.Int64Var(&opts.CrashSeed, "crash-seed", 0, "crash-point placement seed for the crashsweep experiment")
	flag.StringVar(&opts.TenantSpec, "tenants", "", "tenantsweep tenant set (a count like 2, or specs like mail,trans:weight=2:ia=0.5); empty = built-in 1→8 ladder plus antagonist arm")
	flag.StringVar(&opts.QoSPolicies, "qos", "fifo,wrr", "comma-separated QoS arbiters the tenantsweep crosses: fifo, wrr, tbucket")
	flag.IntVar(&opts.QueueDepth, "qd", 0, "per-tenant queue-depth bound for multi-tenant cells (0 = tenantsweep default)")
	flag.BoolVar(&opts.PaperGeometry, "paper-geometry", false, "run matrix cells on the paper's full Table I 1 TB geometry instead of footprint-scaled drives")
	quiet := flag.Bool("q", false, "suppress progress notes on stderr")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	flag.Usage = usage
	flag.Parse()

	// Reject out-of-range flag values up front with a clear message, not a
	// deep experiment error.
	if err := rf.Validate(); err != nil {
		fatalFlag("%v", err)
	}
	if err := tf.Validate(); err != nil {
		fatalFlag("%v", err)
	}
	if opts.Jobs < 0 {
		fatalFlag("-j must be ≥ 0 (0 = all cores), got %d", opts.Jobs)
	}
	cellWorkload, cellSys, ok := strings.Cut(*telCell, "/")
	if !ok || cellWorkload == "" || cellSys == "" {
		fatalFlag("-telemetry-cell must be workload/system (e.g. mail/dvp-200k), got %q", *telCell)
	}
	if opts.CrashPoints <= 0 {
		fatalFlag("-crash-points must be positive, got %d", opts.CrashPoints)
	}
	if opts.CrashSeed < 0 {
		fatalFlag("-crash-seed must be ≥ 0, got %d", opts.CrashSeed)
	}
	if opts.TenantSpec != "" {
		if _, err := sim.ParseTenants(opts.TenantSpec); err != nil {
			fatalFlag("-tenants: %v", err)
		}
	}
	if _, err := sim.ParseArbiterList(opts.QoSPolicies); err != nil {
		fatalFlag("-qos: %v", err)
	}
	if opts.QueueDepth < 0 {
		fatalFlag("-qd must be ≥ 0, got %d", opts.QueueDepth)
	}
	opts.Faults, opts.Scrub, opts.GCFaultWeight = rf.Faults, rf.Scrub, rf.GCFaultWeight
	opts.GCPreempt = rf.Preempt()
	opts.Health = rf.Health()
	opts.Rain = rf.Rain()
	opts.ChaosCycles, opts.ChaosSeed = rf.ChaosCycles, rf.ChaosSeed
	opts.Dftl = rf.Dftl()
	opts.Telemetry = tf.Telemetry

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "zombiectl: run needs experiment ids (or 'all')")
			os.Exit(2)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		}
		if err := runExperiments(opts, ids, *quiet, *csv, tf, cellWorkload, cellSys); err != nil {
			fmt.Fprintln(os.Stderr, "zombiectl:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "zombiectl: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func runExperiments(opts experiments.Options, ids []string, quiet, csv bool,
	tf *telemetryflags.Set, cellWorkload, cellSys string) error {
	note := func(format string, a ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format, a...)
		}
	}
	// Build the evaluation matrix once if any requested experiment needs it.
	var matrix *experiments.Matrix
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'zombiectl list')", id)
		}
		if e.NeedsMatrix && matrix == nil {
			note("building evaluation matrix (6 workloads × 8 systems, %d requests each)...\n", opts.Requests)
			start := time.Now()
			m, err := experiments.RunMatrix(opts, nil, nil)
			if err != nil {
				return err
			}
			matrix = m
			note("matrix done in %v\n", time.Since(start).Round(time.Millisecond))
		}
	}
	for _, id := range ids {
		e, _ := experiments.ByID(id)
		note("running %s...\n", id)
		start := time.Now()
		res, err := e.Run(opts, matrix)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		note("%s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		if csv {
			if t, ok := res.(experiments.Tabler); ok {
				fmt.Println(t.Table().CSV())
				continue
			}
		}
		fmt.Println(res.String())
	}
	if tf.WantsExport() {
		if matrix == nil {
			return fmt.Errorf("telemetry exports need a matrix experiment (e.g. 'run fig9'); none of %v builds the matrix", ids)
		}
		tel := matrix.TelemetryFor(cellWorkload, experiments.System(cellSys))
		if tel == nil {
			return fmt.Errorf("no telemetry for cell %s/%s (unknown workload or system?)", cellWorkload, cellSys)
		}
		note("writing telemetry exports for %s/%s...\n", cellWorkload, cellSys)
		if err := tf.WriteExports(tel); err != nil {
			return err
		}
	}
	return nil
}

// fatalFlag reports a bad flag value and exits like flag's own errors do.
func fatalFlag(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "zombiectl: "+format+"\n", a...)
	os.Exit(2)
}

func usage() {
	fmt.Fprintf(os.Stderr, `zombiectl regenerates the tables and figures of
"Reviving Zombie Pages on SSDs" (IISWC 2018).

usage:
  zombiectl [flags] list
  zombiectl [flags] run <id>... | all

flags:
`)
	flag.PrintDefaults()
}
