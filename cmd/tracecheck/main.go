// Command tracecheck validates telemetry export files: a Chrome
// trace-event JSON timeline (against the schema subset the tracer emits)
// and, optionally, a Prometheus text scrape. CI's trace-smoke target runs
// it over the artifacts a short ssdsim run produced.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -prom metrics.prom trace.json
//	ssdsim ... -telemetry -telemetry-trace - | tracecheck -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"zombiessd/internal/telemetry"
)

func main() {
	prom := flag.String("prom", "", "also validate this Prometheus text file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-prom metrics.prom] <trace.json | ->")
		os.Exit(2)
	}
	data, err := readFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := telemetry.ValidateTraceJSON(data); err != nil {
		fatal(err)
	}
	fmt.Printf("trace ok: %s (%d events)\n", flag.Arg(0), countEvents(data))
	if *prom != "" {
		pd, err := readFile(*prom)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.ValidatePrometheusText(pd); err != nil {
			fatal(err)
		}
		fmt.Printf("prom ok: %s\n", *prom)
	}
}

func readFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// countEvents reports the traceEvents length for the success message; the
// schema check already guaranteed the array parses.
func countEvents(data []byte) int {
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if json.Unmarshal(data, &f) != nil {
		return 0
	}
	return len(f.TraceEvents)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
