module zombiessd

go 1.22
