// Quickstart: generate a small mail-like trace, run it against a baseline
// SSD and against an SSD with the paper's MQ dead-value pool, and print the
// savings. This is the minimal end-to-end use of the public API:
// workload → device → runner → metrics.
package main

import (
	"fmt"
	"log"

	"zombiessd/zombie"
)

func main() {
	// 1. Generate a trace: 100K requests of the paper's "mail" workload
	// (write-heavy, highly redundant content).
	profile, _ := zombie.ProfileByName("mail")
	recs, err := zombie.Generate(profile, 100_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	footprint := zombie.FootprintOf(recs)
	fmt.Printf("trace: %d requests over %d 4KB pages\n", len(recs), footprint)

	// 2. Run the same trace through a baseline FTL and the dead-value-pool
	// FTL (MQ policy, popularity-aware GC) over identically sized drives.
	baseRes := run(zombie.KindBaseline, footprint, recs)
	dvpRes := run(zombie.KindDVP, footprint, recs)

	// 3. Compare.
	fmt.Printf("\n%-22s %15s %15s\n", "", "baseline", "MQ-DVP")
	row := func(name string, b, d float64, unit string) {
		fmt.Printf("%-22s %13.0f%s %13.0f%s   (%.1f%% better)\n",
			name, b, unit, d, unit, zombie.ReductionPct(b, d))
	}
	row("flash programs", float64(baseRes.Metrics.HostPrograms()), float64(dvpRes.Metrics.HostPrograms()), "  ")
	row("block erases", float64(baseRes.Metrics.FlashErases), float64(dvpRes.Metrics.FlashErases), "  ")
	row("mean latency", baseRes.All.Mean, dvpRes.All.Mean, "µs")
	row("p99 latency", float64(baseRes.All.P99), float64(dvpRes.All.P99), "µs")
	fmt.Printf("\nzombie pages revived: %d of %d writes (%.1f%%)\n",
		dvpRes.Metrics.Revived, dvpRes.Metrics.HostWrites,
		100*float64(dvpRes.Metrics.Revived)/float64(dvpRes.Metrics.HostWrites))
}

func run(kind zombie.Kind, footprint int64, recs []zombie.Record) zombie.Result {
	dev, err := zombie.NewDevice(zombie.DefaultConfig(kind, footprint))
	if err != nil {
		log.Fatal(err)
	}
	res, err := zombie.Run(dev, recs, zombie.RunOptions{
		LogicalPages:      footprint,
		PreconditionPages: footprint, // start from a steady-state drive
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
