// Adaptive: the paper's future-work extension in action. A workload whose
// garbage working set changes phase — a quiet period with a small set of
// hot values, then a burst with a much larger one, then quiet again — is
// replayed against the dead-value pool. A fixed-capacity pool must be
// provisioned for the worst phase; the AdaptivePool controller grows under
// eviction pressure and gives the RAM back when the burst passes.
package main

import (
	"fmt"

	"zombiessd/zombie"
)

const (
	quietValues = 2_000  // distinct garbage values in quiet phases
	burstValues = 40_000 // distinct garbage values in the burst
	phaseWrites = 120_000
)

func main() {
	ledger := zombie.NewLedger()
	pool := zombie.NewAdaptivePool(zombie.AdaptiveConfig{
		MQ:          zombie.MQConfig{Queues: 8, Capacity: 4_000, DefaultLifetime: 8192},
		MinCapacity: 1_000,
		MaxCapacity: 64_000,
		Window:      4_096,
		Step:        0.25,
	}, ledger)

	fmt.Printf("%-10s %12s %12s %10s\n", "phase", "capacity", "entries", "hit rate")
	var tick int64
	var lastHits, lastLookups int64
	pages := make(map[uint64]struct {
		h   zombie.Hash
		ppn zombie.PPN
	})
	var nextPPN zombie.PPN

	// Emulate the garbage collector: zombies not revived within the
	// horizon get erased and leave the pool, like blocks reclaimed on a
	// real drive.
	const gcHorizon = 60_000
	type zombiePage struct {
		ppn  zombie.PPN
		born int64
	}
	var graveyard []zombiePage
	expire := func() {
		for len(graveyard) > 0 && tick-graveyard[0].born > gcHorizon {
			pool.Drop(graveyard[0].ppn)
			graveyard = graveyard[1:]
		}
	}

	runPhase := func(name string, values uint64) {
		for i := 0; i < phaseWrites; i++ {
			tick++
			v := uint64(tick) % values
			if values == quietValues {
				v += 1 << 32 // quiet phases use their own value universe
			}
			h := zombie.HashOfValue(v)
			ledger.Bump(h)
			// Addresses cycle twice as fast as values: a page dies half a
			// value-cycle before its content returns, so every rebirth
			// depends on the pool holding the garbage meanwhile. The burst
			// needs ~values/2 entries for full coverage.
			lba := uint64(tick) % (values / 2)
			if old, ok := pages[lba]; ok {
				pool.Insert(old.h, old.ppn, tick)
				graveyard = append(graveyard, zombiePage{old.ppn, tick})
			}
			expire()
			if ppn, ok := pool.Lookup(h, tick); ok {
				pages[lba] = struct {
					h   zombie.Hash
					ppn zombie.PPN
				}{h, ppn}
			} else {
				pages[lba] = struct {
					h   zombie.Hash
					ppn zombie.PPN
				}{h, nextPPN}
				nextPPN++
			}
		}
		st := pool.Stats()
		lookups := st.Hits + st.Misses
		rate := float64(st.Hits-lastHits) / float64(lookups-lastLookups)
		lastHits, lastLookups = st.Hits, lookups
		fmt.Printf("%-10s %12d %12d %9.1f%%\n", name, pool.Capacity(), pool.EntryCount(), rate*100)
	}

	runPhase("quiet-1", quietValues)
	runPhase("burst", burstValues)
	runPhase("quiet-2", quietValues)

	grows, shrinks := pool.Adaptations()
	fmt.Printf("\ncontroller: %d grows, %d shrinks — capacity followed the working set\n", grows, shrinks)
}
