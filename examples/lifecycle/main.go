// Lifecycle: the characterization workflow of Section II on a home-like
// trace — where values are born, die, and are reborn. It reproduces, on one
// trace, the observations behind Figs 1–4: most written pages turn into
// garbage; a small fraction of values takes most writes, invalidations AND
// rebirths; and popular values die and come back quickly.
package main

import (
	"fmt"
	"log"

	"zombiessd/zombie"
)

func main() {
	profile, _ := zombie.ProfileByName("home")
	recs, err := zombie.Generate(profile, 150_000, 11)
	if err != nil {
		log.Fatal(err)
	}

	l := zombie.AnalyzeLifecycle(recs)
	fmt.Printf("trace: %d writes over %d unique values\n\n", l.TotalWrites, l.UniqueValues())

	// Observation 1 (Fig 2): most values get invalidated at least once.
	cdf := l.InvalidationCDF()
	if len(cdf) > 0 && cdf[0].X == 0 {
		fmt.Printf("values still fully live:       %5.1f%%\n", cdf[0].Fraction*100)
		fmt.Printf("values invalidated at least 1×: %5.1f%%  ← the zombie supply\n\n",
			(1-cdf[0].Fraction)*100)
	}

	// Observation 2 (Fig 3): skew — the top 20% of values take most of the
	// writes, invalidations and rebirths.
	top20 := func(metric func(*zombie.ValueStats) int64) float64 {
		curve := l.Concentration(metric, 5)
		return curve[0].MetricFrac * 100 // first point = top 20%
	}
	fmt.Printf("top 20%% of values account for:\n")
	fmt.Printf("  %5.1f%% of writes\n", top20(zombie.WritesMetric))
	fmt.Printf("  %5.1f%% of invalidations\n", top20(zombie.DeathsMetric))
	fmt.Printf("  %5.1f%% of rebirths\n\n", top20(zombie.RebirthsMetric))

	// Observation 3 (Fig 4): popular values cycle faster and are reborn
	// more often.
	bins := l.PopularityTiming(16)
	fmt.Printf("%-8s %8s %18s %18s %12s\n", "degree", "values", "create→death (wr)", "death→rebirth (wr)", "rebirths")
	for _, b := range bins {
		fmt.Printf("%-8d %8d %18.0f %18.0f %12.2f\n",
			b.Degree, b.Values, b.AvgCreateToDeath, b.AvgDeathToRebirth, b.AvgRebirths)
	}

	// Observation 4 (Fig 1): the reuse opportunity an infinite garbage
	// buffer would expose, raw and after deduplication.
	rep := zombie.ReuseOpportunity(recs)
	fmt.Printf("\ninfinite-buffer reuse opportunity: %.1f%% of writes (%.1f%% after dedup)\n",
		rep.RawReuseProb()*100, rep.DedupReuseProb()*100)
}
