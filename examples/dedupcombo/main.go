// Dedupcombo: the Section VII workflow — what the dead-value pool adds on
// top of device-level deduplication. It constructs the paper's Fig 13
// scenario programmatically (value D is written, duplicated, killed and
// finally rewritten after its death) and then quantifies the interplay on a
// full web-server trace: dedup absorbs live duplicates, the pool absorbs
// rebirths of dead values, and the combination is additive.
package main

import (
	"fmt"
	"log"

	"zombiessd/zombie"
)

func main() {
	fig13()
	webInterplay()
}

// fig13 walks the paper's Fig 13 timeline on a tiny device and shows which
// layer absorbs each write.
func fig13() {
	fmt.Println("--- Fig 13 walk-through ---")
	const footprint = 64
	dev, err := zombie.NewDevice(zombie.DefaultConfig(zombie.KindDVPDedup, footprint))
	if err != nil {
		log.Fatal(err)
	}
	D := zombie.HashOfValue(1)
	X := zombie.HashOfValue(2)
	step := func(label string, lpn zombie.LPN, h zombie.Hash, now zombie.Time) {
		before := dev.Metrics()
		if _, err := dev.Write(lpn, h, now); err != nil {
			log.Fatal(err)
		}
		after := dev.Metrics()
		switch {
		case after.DedupHits > before.DedupHits:
			fmt.Printf("%-28s → absorbed by dedup (live duplicate)\n", label)
		case after.Revived > before.Revived:
			fmt.Printf("%-28s → zombie revived by the dead-value pool\n", label)
		default:
			fmt.Printf("%-28s → flash program\n", label)
		}
	}
	step("t0: write D to page 0", 0, D, 0)
	step("t1: write D to page 1", 1, D, 1000)   // dedup catches W2
	step("t2: write D to page 2", 2, D, 2000)   // dedup catches W3
	step("t3: overwrite pages 0–2", 0, X, 3000) // refs drop...
	step("t3: overwrite pages 0–2", 1, X, 4000) // ...
	step("t3: overwrite pages 0–2", 2, X, 5000) // ...last ref gone: D dies
	step("t4: write D to page 9", 9, D, 6000)   // only the pool can catch W4
	fmt.Println()
}

// webInterplay compares Dedup, DVP and DVP+Dedup on a web trace.
func webInterplay() {
	fmt.Println("--- web server: dedup × dead-value pool ---")
	profile, _ := zombie.ProfileByName("web")
	recs, err := zombie.Generate(profile, 200_000, 5)
	if err != nil {
		log.Fatal(err)
	}
	footprint := zombie.FootprintOf(recs)
	run := func(kind zombie.Kind) zombie.Result {
		dev, err := zombie.NewDevice(zombie.DefaultConfig(kind, footprint))
		if err != nil {
			log.Fatal(err)
		}
		res, err := zombie.Run(dev, recs, zombie.RunOptions{
			LogicalPages:      footprint,
			PreconditionPages: footprint,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(zombie.KindBaseline)
	dedup := run(zombie.KindDedup)
	dvp := run(zombie.KindDVP)
	combo := run(zombie.KindDVPDedup)

	fmt.Printf("%-12s %10s %12s %12s %12s\n", "system", "programs", "vs baseline", "dedup hits", "revivals")
	row := func(name string, r zombie.Result) {
		fmt.Printf("%-12s %10d %11.1f%% %12d %12d\n", name,
			r.Metrics.HostPrograms(),
			zombie.ReductionPct(float64(base.Metrics.HostPrograms()), float64(r.Metrics.HostPrograms())),
			r.Metrics.DedupHits, r.Metrics.Revived)
	}
	row("baseline", base)
	row("dedup", dedup)
	row("dvp", dvp)
	row("dvp+dedup", combo)
	fmt.Printf("\nextra write reduction of dvp+dedup over dedup alone: %.1f%%\n",
		zombie.ReductionPct(float64(dedup.Metrics.HostPrograms()), float64(combo.Metrics.HostPrograms())))
}
