// Mailserver: the paper's motivating scenario. A department mail server —
// circulated attachments and SPAM create enormous content redundancy — is
// replayed against all five evaluated systems side by side: Baseline,
// MQ-DVP, the LX-SSD prior work, Dedup, and DVP+Dedup, plus the Ideal
// (infinite-pool) upper bound. The output is a one-screen version of the
// paper's whole evaluation story on its best workload.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"zombiessd/zombie"
)

const requests = 200_000

func main() {
	profile, _ := zombie.ProfileByName("mail")
	recs, err := zombie.Generate(profile, requests, 7)
	if err != nil {
		log.Fatal(err)
	}
	footprint := zombie.FootprintOf(recs)
	fmt.Printf("mail trace: %s\n\n", zombie.CollectStats(recs))

	systems := []struct {
		name string
		kind zombie.Kind
		pool zombie.PoolKind
	}{
		{"baseline", zombie.KindBaseline, zombie.PoolMQ},
		{"lx-ssd", zombie.KindLX, zombie.PoolMQ},
		{"mq-dvp", zombie.KindDVP, zombie.PoolMQ},
		{"ideal", zombie.KindDVP, zombie.PoolInfinite},
		{"dedup", zombie.KindDedup, zombie.PoolMQ},
		{"dvp+dedup", zombie.KindDVPDedup, zombie.PoolMQ},
	}

	var baseline zombie.Result
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\twrites\twrite red.\terases\tmean lat\tp99 lat\tlat improv.")
	fmt.Fprintln(w, "------\t------\t----------\t------\t--------\t-------\t-----------")
	for i, sys := range systems {
		cfg := zombie.DefaultConfig(sys.kind, footprint)
		cfg.PoolKind = sys.pool
		dev, err := zombie.NewDevice(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := zombie.Run(dev, recs, zombie.RunOptions{
			LogicalPages:      footprint,
			PreconditionPages: footprint,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%d\t%.0fµs\t%dµs\t%.1f%%\n",
			sys.name,
			res.Metrics.HostPrograms(),
			zombie.ReductionPct(float64(baseline.Metrics.HostPrograms()), float64(res.Metrics.HostPrograms())),
			res.Metrics.FlashErases,
			res.All.Mean,
			res.All.P99,
			zombie.ReductionPct(baseline.All.Mean, res.All.Mean))
	}
	w.Flush()
}
