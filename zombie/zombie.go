// Package zombie is the public API of the zombiessd library — a Go
// reproduction of "Reviving Zombie Pages on SSDs" (IISWC 2018). It exposes
// the simulated devices (baseline FTL, MQ dead-value pool, deduplication,
// their combination, and the LX-SSD prior work), the workload and trace
// tooling, and the offline characterization analyses, re-exported from the
// internal substrate packages with convenience constructors.
//
// # Quick use
//
//	profile, _ := zombie.ProfileByName("mail")
//	recs, _ := zombie.Generate(profile, 100_000, 42)
//	cfg := zombie.DefaultConfig(zombie.KindDVP, zombie.FootprintOf(recs))
//	dev, _ := zombie.NewDevice(cfg)
//	res, _ := zombie.Run(dev, recs, zombie.RunOptions{
//		LogicalPages:      cfg.LogicalPages,
//		PreconditionPages: cfg.LogicalPages,
//	})
//	fmt.Println(res.Metrics.Revived, "writes short-circuited")
//
// The paper's full evaluation is reachable through Experiments, ExperimentByID
// and RunMatrix; see cmd/zombiectl for the command-line interface.
package zombie

import (
	"zombiessd/internal/analysis"
	"zombiessd/internal/core"
	"zombiessd/internal/dedup"
	"zombiessd/internal/experiments"
	"zombiessd/internal/ftl"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// ----------------------------------------------------------- trace model --

// Record is one block-trace request: a 4 KB read or write with a 16-byte
// content hash.
type Record = trace.Record

// Hash is the 16-byte content digest identifying a value.
type Hash = trace.Hash

// Op is a request type (OpRead or OpWrite).
type Op = trace.Op

// Request types.
const (
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// TraceStats summarizes a trace in the paper's Table II terms.
type TraceStats = trace.Stats

// HashOfValue derives a well-mixed Hash from an abstract value identifier.
func HashOfValue(id uint64) Hash { return trace.HashOfValue(id) }

// CollectStats computes TraceStats over a record stream.
func CollectStats(recs []Record) TraceStats { return trace.Collect(recs) }

// NewTraceWriter and NewTraceReader stream the binary trace codec.
var (
	NewTraceWriter = trace.NewWriter
	NewTraceReader = trace.NewReader
)

// ReadTextTrace and WriteTextTrace handle the one-record-per-line format.
var (
	ReadTextTrace  = trace.ReadText
	WriteTextTrace = trace.WriteText
)

// ReadFIUTrace parses the FIU/SRCMap key-value trace format, so the paper's
// original inputs can be replayed directly.
var ReadFIUTrace = trace.ReadFIU

// ------------------------------------------------------------- workloads --

// Profile parameterizes one synthetic workload (see Profiles for the six
// Table II presets).
type Profile = workload.Profile

// Generator streams a synthetic trace record by record.
type Generator = workload.Generator

// Workload constructors and presets.
var (
	Profiles      = workload.Profiles
	ProfileByName = workload.ProfileByName
	WorkloadNames = workload.Names
	NewGenerator  = workload.NewGenerator
	Generate      = workload.Generate
	GenerateDays  = workload.GenerateDays
	DayLabel      = workload.DayLabel
)

// FootprintOf returns the logical address-space size (max LBA + 1) a trace
// requires.
func FootprintOf(recs []Record) int64 {
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	return footprint
}

// --------------------------------------------------------- physical model --

// Geometry describes the simulated drive's physical organization.
type Geometry = ssd.Geometry

// Time is simulated time in microseconds.
type Time = ssd.Time

// LPN is a logical (host-visible) page number.
type LPN = ftl.LPN

// PPN is a physical page number.
type PPN = ssd.PPN

// Latency holds the flash operation service times.
type Latency = ssd.Latency

// Physical-model constructors.
var (
	PaperGeometry = ssd.PaperGeometry // Table I: the 1 TB drive
	PaperLatency  = ssd.PaperLatency  // Table I timings
	GeometryFor   = sim.GeometryFor   // scaled drive for a footprint
)

// ------------------------------------------------------------- dead pool --

// Pool is the dead-value pool interface (the paper's contribution).
type Pool = core.Pool

// PoolStats counts pool events.
type PoolStats = core.PoolStats

// MQConfig parameterizes the multi-queue pool.
type MQConfig = core.MQConfig

// AdaptiveConfig parameterizes the self-tuning pool extension.
type AdaptiveConfig = core.AdaptiveConfig

// Ledger tracks per-value write popularity.
type Ledger = core.Ledger

// Pool constructors.
var (
	NewLedger             = core.NewLedger
	NewMQPool             = core.NewMQPool
	NewLRUPool            = core.NewLRUPool
	NewInfinitePool       = core.NewInfinitePool
	NewAdaptivePool       = core.NewAdaptivePool
	DefaultMQConfig       = core.DefaultMQConfig
	DefaultAdaptiveConfig = core.DefaultAdaptiveConfig
)

// ----------------------------------------------------------------- devices --

// Device is one simulated SSD.
type Device = sim.Device

// Config assembles a device; Kind picks the architecture and PoolKind the
// dead-value pool policy.
type Config = sim.Config

// Kind selects the device architecture.
type Kind = sim.Kind

// PoolKind selects the dead-value pool replacement policy.
type PoolKind = sim.PoolKind

// DeviceMetrics counts a run's flash activity and short-circuited writes.
type DeviceMetrics = sim.DeviceMetrics

// RunOptions configures a trace replay.
type RunOptions = sim.RunOptions

// Result is the outcome of one replay.
type Result = sim.Result

// The evaluated system architectures.
const (
	KindBaseline = sim.KindBaseline
	KindDVP      = sim.KindDVP
	KindDedup    = sim.KindDedup
	KindDVPDedup = sim.KindDVPDedup
	KindLX       = sim.KindLX
)

// The pool policies for the DVP architectures.
const (
	PoolMQ       = sim.PoolMQ
	PoolLRU      = sim.PoolLRU
	PoolInfinite = sim.PoolInfinite
	PoolAdaptive = sim.PoolAdaptive
)

// Device construction and replay.
var (
	NewDevice = sim.NewDevice
	Run       = sim.Run
)

// StoreConfig parameterizes the FTL's physical store (GC threshold,
// popularity-aware victim weight, wear-aware allocation).
type StoreConfig = ftl.StoreConfig

// LXConfig parameterizes the LX-SSD prior-work recycler.
type LXConfig = lxssd.Config

// DedupStats counts deduplication events.
type DedupStats = dedup.Stats

// DefaultPopularityWeight is the recommended GC victim-score weight for the
// DVP architectures (see DESIGN.md §7 for the calibration).
const DefaultPopularityWeight = sim.DefaultPopularityWeight

// DefaultConfig assembles a ready-to-run configuration for the given
// architecture over a drive sized for footprint logical pages at 75%
// utilization, with the paper's latencies, an MQ pool scaled to a tenth of
// the footprint, and popularity-aware GC for the DVP architectures.
func DefaultConfig(kind Kind, footprint int64) Config {
	entries := int(footprint / 10)
	if entries < 64 {
		entries = 64
	}
	weight := 0.0
	if kind == KindDVP || kind == KindDVPDedup {
		weight = DefaultPopularityWeight
	}
	return Config{
		Geometry:     GeometryFor(footprint, 0.75),
		Latency:      PaperLatency(),
		Store:        StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: weight},
		LogicalPages: footprint,
		Kind:         kind,
		PoolKind:     PoolMQ,
		MQ:           MQConfig{Queues: 8, Capacity: entries, DefaultLifetime: 8192},
		LRUCapacity:  entries,
		Adaptive: AdaptiveConfig{
			MQ:          MQConfig{Queues: 8, Capacity: entries, DefaultLifetime: 8192},
			MinCapacity: entries / 4,
			MaxCapacity: entries * 8,
			Window:      8192,
			Step:        0.25,
		},
		LX: LXConfig{Capacity: entries, MinPopularity: 0},
	}
}

// --------------------------------------------------------------- analysis --

// Lifecycle is the outcome of a value life-cycle pass over a trace.
type Lifecycle = analysis.Lifecycle

// ValueStats is one value's creation/death/rebirth accounting.
type ValueStats = analysis.ValueStats

// ReuseReport is the Fig 1 infinite-buffer reuse opportunity.
type ReuseReport = analysis.ReuseReport

// Offline analyses (Section II/III of the paper).
var (
	AnalyzeLifecycle    = analysis.AnalyzeLifecycle
	ReuseOpportunity    = analysis.ReuseOpportunity
	LRUWriteSweep       = analysis.LRUWriteSweep
	MQWriteSweep        = analysis.MQWriteSweep
	LRUMissByPopularity = analysis.LRUMissByPopularity
)

// Concentration metrics for Lifecycle.Concentration (Fig 3).
var (
	WritesMetric   = analysis.WritesMetric
	DeathsMetric   = analysis.DeathsMetric
	RebirthsMetric = analysis.RebirthsMetric
)

// -------------------------------------------------------------- statistics --

// Histogram is a log-bucketed latency histogram with quantile queries.
type Histogram = stats.Histogram

// LatencySummary condenses a histogram (count, mean, p99, max).
type LatencySummary = stats.Summary

// Reduction arithmetic used in the figures.
var (
	ReductionPct  = stats.ReductionPct
	NormalizedPct = stats.NormalizedPct
)

// ------------------------------------------------------------ experiments --

// Experiment is one registered paper artifact (figure or table).
type Experiment = experiments.Experiment

// ExperimentOptions scales the experiment runs.
type ExperimentOptions = experiments.Options

// Matrix caches the full-simulation results shared by Figs 9–15.
type Matrix = experiments.Matrix

// Experiment access.
var (
	Experiments              = experiments.All
	ExperimentByID           = experiments.ByID
	DefaultExperimentOptions = experiments.DefaultOptions
	RunMatrix                = experiments.RunMatrix
)
