package zombie_test

import (
	"fmt"
	"strings"

	"zombiessd/zombie"
)

// ExampleNewMQPool shows the dead-value pool's core cycle: a page dies, its
// hash is pooled, and a later write of the same content revives it.
func ExampleNewMQPool() {
	ledger := zombie.NewLedger()
	pool := zombie.NewMQPool(zombie.MQConfig{
		Queues: 8, Capacity: 1000, DefaultLifetime: 8192,
	}, ledger)

	content := zombie.HashOfValue(42)
	ledger.Bump(content)

	// An update invalidated physical page 777, which held `content`.
	pool.Insert(content, 777, 1)

	// A later write carries the same content: the zombie is revived.
	if ppn, ok := pool.Lookup(content, 2); ok {
		fmt.Printf("revived page %d, no flash program needed\n", ppn)
	}
	fmt.Printf("pool now holds %d pages\n", pool.Len())
	// Output:
	// revived page 777, no flash program needed
	// pool now holds 0 pages
}

// ExampleAnalyzeLifecycle runs the Section II life-cycle analysis on a
// hand-written trace: value 1 is created, dies, and is reborn.
func ExampleAnalyzeLifecycle() {
	w := func(lba, val uint64) zombie.Record {
		return zombie.Record{Op: zombie.OpWrite, LBA: lba, Hash: zombie.HashOfValue(val)}
	}
	recs := []zombie.Record{
		w(0, 1), // creation of value 1
		w(0, 2), // value 1 dies (its page is overwritten)
		w(5, 1), // rebirth of value 1 at another page
	}
	l := zombie.AnalyzeLifecycle(recs)
	v := l.Values[zombie.HashOfValue(1)]
	fmt.Printf("value 1: writes=%d deaths=%d rebirths=%d\n", v.Writes, v.Deaths, v.Rebirths)
	// Output:
	// value 1: writes=2 deaths=1 rebirths=1
}

// ExampleReuseOpportunity reproduces Fig 1's bookkeeping on a minimal
// trace: one of three writes could have been served from garbage.
func ExampleReuseOpportunity() {
	w := func(lba, val uint64) zombie.Record {
		return zombie.Record{Op: zombie.OpWrite, LBA: lba, Hash: zombie.HashOfValue(val)}
	}
	rep := zombie.ReuseOpportunity([]zombie.Record{
		w(0, 1), // create
		w(0, 2), // value 1 becomes garbage
		w(7, 1), // value 1 rewritten: reusable!
	})
	fmt.Printf("reuse probability: %.0f%%\n", rep.RawReuseProb()*100)
	// Output:
	// reuse probability: 33%
}

// ExampleReadFIUTrace parses a line of the FIU/SRCMap trace format the
// paper's evaluation inputs use.
func ExampleReadFIUTrace() {
	line := "33390885991075 4892 syslogd 904265560 8 W 6 0 0123456789abcdef0123456789abcdef\n"
	recs, err := zombie.ReadFIUTrace(strings.NewReader(line))
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	r := recs[0]
	fmt.Printf("%s of 4KB page %d\n", r.Op, r.LBA)
	// Output:
	// W of 4KB page 113033195
}

// ExampleDefaultConfig builds and validates a ready-to-run DVP device
// configuration.
func ExampleDefaultConfig() {
	cfg := zombie.DefaultConfig(zombie.KindDVP, 50_000)
	fmt.Println("kind:", cfg.Kind)
	fmt.Println("pool entries:", cfg.MQ.Capacity)
	fmt.Println("valid:", cfg.Validate() == nil)
	// Output:
	// kind: dvp
	// pool entries: 5000
	// valid: true
}
