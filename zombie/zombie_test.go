package zombie_test

import (
	"strings"
	"testing"

	"zombiessd/zombie"
)

// TestEndToEndThroughPublicAPI exercises the whole documented flow using
// only the facade: workload → device → run → metrics → analysis.
func TestEndToEndThroughPublicAPI(t *testing.T) {
	profile, ok := zombie.ProfileByName("mail")
	if !ok {
		t.Fatal("mail profile missing")
	}
	recs, err := zombie.Generate(profile, 30_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	footprint := zombie.FootprintOf(recs)
	if footprint <= 0 {
		t.Fatal("empty footprint")
	}

	base := runKind(t, zombie.KindBaseline, footprint, recs)
	dvp := runKind(t, zombie.KindDVP, footprint, recs)

	if dvp.Metrics.Revived == 0 {
		t.Fatal("no revivals through the public API")
	}
	red := zombie.ReductionPct(float64(base.Metrics.HostPrograms()), float64(dvp.Metrics.HostPrograms()))
	if red <= 0 {
		t.Fatalf("write reduction = %.1f%%, want positive", red)
	}

	l := zombie.AnalyzeLifecycle(recs)
	if l.UniqueValues() == 0 {
		t.Fatal("lifecycle analysis empty")
	}
	rep := zombie.ReuseOpportunity(recs)
	if rep.RawReuseProb() <= 0 {
		t.Fatal("no reuse opportunity on mail")
	}
}

func runKind(t *testing.T, kind zombie.Kind, footprint int64, recs []zombie.Record) zombie.Result {
	t.Helper()
	cfg := zombie.DefaultConfig(kind, footprint)
	dev, err := zombie.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zombie.Run(dev, recs, zombie.RunOptions{
		LogicalPages:      footprint,
		PreconditionPages: footprint,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDefaultConfigValidForAllKinds(t *testing.T) {
	for _, kind := range []zombie.Kind{
		zombie.KindBaseline, zombie.KindDVP, zombie.KindDedup,
		zombie.KindDVPDedup, zombie.KindLX,
	} {
		cfg := zombie.DefaultConfig(kind, 5000)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DefaultConfig(%s) invalid: %v", kind, err)
		}
		if _, err := zombie.NewDevice(cfg); err != nil {
			t.Errorf("NewDevice(%s): %v", kind, err)
		}
	}
	for _, pk := range []zombie.PoolKind{
		zombie.PoolMQ, zombie.PoolLRU, zombie.PoolInfinite, zombie.PoolAdaptive,
	} {
		cfg := zombie.DefaultConfig(zombie.KindDVP, 5000)
		cfg.PoolKind = pk
		if _, err := zombie.NewDevice(cfg); err != nil {
			t.Errorf("NewDevice(dvp/%s): %v", pk, err)
		}
	}
	// Tiny footprints floor the pool size.
	cfg := zombie.DefaultConfig(zombie.KindDVP, 100)
	if cfg.MQ.Capacity < 64 {
		t.Errorf("tiny-footprint pool capacity = %d, want ≥64", cfg.MQ.Capacity)
	}
}

func TestPoolsThroughFacade(t *testing.T) {
	ledger := zombie.NewLedger()
	pool := zombie.NewMQPool(zombie.MQConfig{Queues: 8, Capacity: 100, DefaultLifetime: 64}, ledger)
	h := zombie.HashOfValue(7)
	ledger.Bump(h)
	pool.Insert(h, 42, 1)
	if ppn, ok := pool.Lookup(h, 2); !ok || ppn != 42 {
		t.Fatalf("facade pool Lookup = (%d,%v)", ppn, ok)
	}
	var _ zombie.Pool = zombie.NewLRUPool(10, ledger)
	var _ zombie.Pool = zombie.NewInfinitePool(ledger)
	var _ zombie.Pool = zombie.NewAdaptivePool(zombie.AdaptiveConfig{
		MQ:          zombie.MQConfig{Queues: 4, Capacity: 100, DefaultLifetime: 64},
		MinCapacity: 50, MaxCapacity: 500, Window: 128, Step: 0.25,
	}, ledger)
}

func TestFIUTraceThroughFacade(t *testing.T) {
	in := "100000 1 p 800 8 W 6 0 0123456789abcdef0123456789abcdef\n" +
		"200000 1 p 800 8 W 6 0 ffffffffffffffffffffffffffffffff\n" +
		"300000 1 p 808 8 W 6 0 0123456789abcdef0123456789abcdef\n"
	recs, err := zombie.ReadFIUTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	s := zombie.CollectStats(recs)
	if s.Writes != 3 || s.UniqueWriteValues != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// The third write rebirths the first value; the reuse analysis must
	// see it.
	rep := zombie.ReuseOpportunity(recs)
	if rep.RawGarbageHits != 1 {
		t.Fatalf("RawGarbageHits = %d, want 1", rep.RawGarbageHits)
	}
}

func TestExperimentsThroughFacade(t *testing.T) {
	if len(zombie.Experiments()) < 14 {
		t.Fatalf("only %d experiments registered", len(zombie.Experiments()))
	}
	e, ok := zombie.ExperimentByID("fig2")
	if !ok {
		t.Fatal("fig2 missing")
	}
	opts := zombie.DefaultExperimentOptions()
	opts.Requests = 20_000
	res, err := e.Run(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "CDF") {
		t.Errorf("unexpected fig2 render: %q", res.String())
	}
}

func TestTableIGeometryThroughFacade(t *testing.T) {
	g := zombie.PaperGeometry()
	if g.RawBytes() != 1<<40 {
		t.Errorf("paper geometry = %d bytes, want 1 TiB", g.RawBytes())
	}
	lat := zombie.PaperLatency()
	if lat.Program != 400 {
		t.Errorf("program latency = %d, want 400µs", lat.Program)
	}
	small := zombie.GeometryFor(10_000, 0.8)
	if err := small.Validate(); err != nil {
		t.Errorf("GeometryFor invalid: %v", err)
	}
}
