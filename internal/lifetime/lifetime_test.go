package lifetime

import (
	"fmt"
	"math/rand"
	"testing"

	"zombiessd/internal/fault"
)

// testConfig is the reduced scale the unit tests run at: small epochs, a
// pool scaled to the trace (≈ the experiments package's 200K-paper-entries
// ratio) and a bounded epoch count.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RequestsPerEpoch = 4000
	cfg.PoolEntries = 256
	cfg.MaxEpochs = 10
	cfg.Kinds = []Kind{KindBaseline, KindDVP}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().withDefaults().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Workload = "nope" },
		func(c *Config) { c.RequestsPerEpoch = 10 },
		func(c *Config) { c.Utilization = 0 },
		func(c *Config) { c.Utilization = 1 },
		func(c *Config) { c.PoolEntries = 0 },
		func(c *Config) { c.CapacityFloorFrac = 1 },
		func(c *Config) { c.EraseBudget = -1 },
		func(c *Config) { c.MaxEpochs = -1 },
		func(c *Config) { c.Faults.ProgramFailProb = 2 },
	}
	for i, mutate := range bad {
		c := DefaultConfig().withDefaults()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestLifetimeDeterminism is the seed-regression guard: two runs with the
// same seed must produce byte-identical epoch series, and changing either
// the workload seed or the fault-stream seed must change the series — the
// splitmix64 plumbing reaches through every epoch.
func TestLifetimeDeterminism(t *testing.T) {
	run := func(mutate func(*Config)) string {
		cfg := testConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res.Series)
	}
	first := run(nil)
	if again := run(nil); again != first {
		t.Errorf("same seed produced different epoch series:\n%s\nvs\n%s", first, again)
	}
	if other := run(func(c *Config) { c.Seed = 99 }); other == first {
		t.Error("different workload seed reproduced the same epoch series")
	}
	if other := run(func(c *Config) { c.Faults = DefaultFaultPlan(77) }); other == first {
		t.Error("different fault seed reproduced the same epoch series")
	}
}

// TestLifetimeInvariantsProperty drives randomized (but seeded) fault plans
// through the harness and checks the invariants every run must keep:
// usable capacity never increases, cumulative counters never decrease, and
// the run terminates — at most the final sample may touch the erase-budget
// ceiling.
func TestLifetimeInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		cfg := testConfig()
		cfg.MaxEpochs = 8
		cfg.Faults = fault.Config{
			Seed:             rng.Int63(),
			ProgramFailProb:  rng.Float64() * 5e-3,
			EraseFailProb:    rng.Float64() * 5e-3,
			ReadFailProb:     rng.Float64() * 5e-3,
			WearFactor:       rng.Float64() * 2,
			SuspectThreshold: rng.Intn(6),
		}
		// A plan that drew all-zero probabilities is still a valid run; it
		// just ages without faults.
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("plan %d (%+v): %v", i, cfg.Faults, err)
		}
		for _, ser := range res.Series {
			if ser.Cause == "" {
				t.Errorf("plan %d %s: run ended without a stop cause", i, ser.Kind)
			}
			if len(ser.Samples) > cfg.MaxEpochs {
				t.Errorf("plan %d %s: %d samples exceed the %d-epoch cap", i, ser.Kind, len(ser.Samples), cfg.MaxEpochs)
			}
			for j, s := range ser.Samples {
				if j == 0 {
					continue
				}
				prev := ser.Samples[j-1]
				if s.UsablePages > prev.UsablePages {
					t.Errorf("plan %d %s epoch %d: usable capacity grew %d → %d", i, ser.Kind, s.Epoch, prev.UsablePages, s.UsablePages)
				}
				if s.CumErases < prev.CumErases {
					t.Errorf("plan %d %s epoch %d: cumulative erases shrank %d → %d", i, ser.Kind, s.Epoch, prev.CumErases, s.CumErases)
				}
				if s.CumHostWrites < prev.CumHostWrites {
					t.Errorf("plan %d %s epoch %d: cumulative host writes shrank", i, ser.Kind, s.Epoch)
				}
				if s.RetiredBlocks < prev.RetiredBlocks {
					t.Errorf("plan %d %s epoch %d: retired blocks shrank", i, ser.Kind, s.Epoch)
				}
			}
			for j, s := range ser.Samples[:max(len(ser.Samples)-1, 0)] {
				if s.CumErases >= res.EraseBudget {
					t.Errorf("plan %d %s: sample %d crossed the erase budget %d but the run went on", i, ser.Kind, j, res.EraseBudget)
				}
			}
		}
	}
}

// TestLifetimeEndOfLifeShape pins the headline at reduced scale: under the
// default wear plan the baseline reaches the capacity floor, and the DVP —
// having short-circuited part of every epoch's programs — never dies
// earlier than the baseline at equal work: its cumulative host writes
// served are ≥ the baseline's, and at the baseline's death epoch it has
// paid fewer erases.
func TestLifetimeEndOfLifeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("drive-to-death regression in -short mode")
	}
	cfg := DefaultConfig()
	cfg.RequestsPerEpoch = 8000
	cfg.PoolEntries = 400
	cfg.MaxEpochs = 48
	cfg.Kinds = []Kind{KindBaseline, KindDVP}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, ok := res.SeriesByKind(KindBaseline)
	if !ok {
		t.Fatal("no baseline series")
	}
	dvp, ok := res.SeriesByKind(KindDVP)
	if !ok {
		t.Fatal("no dvp series")
	}
	if !base.Cause.Dead() {
		t.Fatalf("baseline survived the wear plan (cause %s after %d epochs) — the plan no longer drives to death",
			base.Cause, len(base.Samples))
	}
	if dvp.CumHostWrites < base.CumHostWrites {
		t.Errorf("DVP served %d host writes before stopping, baseline %d — DVP died earlier at equal work",
			dvp.CumHostWrites, base.CumHostWrites)
	}
	if len(dvp.Samples) >= len(base.Samples) {
		i := len(base.Samples) - 1
		if dvp.Samples[i].CumErases >= base.Samples[i].CumErases {
			t.Errorf("at baseline's death epoch %d, DVP had paid %d erases vs baseline %d — no lifetime benefit",
				base.Samples[i].Epoch, dvp.Samples[i].CumErases, base.Samples[i].CumErases)
		}
	} else {
		t.Errorf("DVP stopped after %d epochs, before baseline's %d", len(dvp.Samples), len(base.Samples))
	}
}

// TestLifetimeDiesMidEpoch forces the out-of-space death path: with every
// other GC erase failing, planes run out of blocks and the final epoch is
// cut short, recorded as a partial sample with the no-space cause.
func TestLifetimeDiesMidEpoch(t *testing.T) {
	cfg := testConfig()
	cfg.Kinds = []Kind{KindBaseline}
	cfg.CapacityFloorFrac = 0.01 // keep the boundary check out of the way
	cfg.MaxEpochs = 64
	cfg.Faults = fault.Config{Seed: 9, EraseFailProb: 0.5}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ser := res.Series[0]
	if ser.Cause != StopNoSpace {
		t.Fatalf("cause = %s, want %s", ser.Cause, StopNoSpace)
	}
	if n := len(ser.Samples); n == 0 || !ser.Samples[n-1].Partial {
		t.Errorf("no-space death did not record a partial final sample: %+v", ser.Samples)
	}
	if !ser.Cause.Dead() {
		t.Error("no-space is not reported as dead")
	}
}

// TestStopCauseDead pins the death classification.
func TestStopCauseDead(t *testing.T) {
	dead := map[StopCause]bool{
		StopNoSpace: true, StopProgramFault: true, StopCapacityFloor: true,
		StopEraseBudget: false, StopMaxEpochs: false,
	}
	for c, want := range dead {
		if c.Dead() != want {
			t.Errorf("%s.Dead() = %v, want %v", c, c.Dead(), want)
		}
	}
}

// TestKindsResolution checks the defaults: nil kinds expand to the five
// standard arms plus the fault-weight ablation arm, and a negative weight
// removes both the weight and the ablation arm.
func TestKindsResolution(t *testing.T) {
	c := DefaultConfig().withDefaults()
	if got, want := len(c.Kinds), len(AllKinds())+1; got != want {
		t.Fatalf("default kinds = %v (%d), want %d incl. the %s ablation arm", c.Kinds, got, want, KindDVPUnweighted)
	}
	if c.GCFaultWeight != DefaultGCFaultWeight {
		t.Errorf("default GCFaultWeight = %g, want %g", c.GCFaultWeight, DefaultGCFaultWeight)
	}
	off := DefaultConfig()
	off.GCFaultWeight = -1
	off = off.withDefaults()
	if off.GCFaultWeight != 0 {
		t.Errorf("negative GCFaultWeight resolved to %g, want 0", off.GCFaultWeight)
	}
	if got, want := len(off.Kinds), len(AllKinds()); got != want {
		t.Errorf("weight-off kinds = %v (%d), want just the %d standard arms", off.Kinds, got, want)
	}
}
