// Package lifetime drives simulated SSDs to end of life. The paper's
// dead-value-pool argument is ultimately a lifetime argument — every
// short-circuited write is a program (and eventually an erase) the flash
// never pays — and this harness turns that into a measurable curve: it
// replays one synthetic workload in repeated epochs under a wear-scaled
// fault plan (fault.Config.WearFactor > 0), so failure probabilities climb
// with every erase a block endures, blocks retire as they wear out, and
// usable capacity decays until the drive can no longer serve its footprint.
//
// Each epoch samples cumulative erases, retired blocks, usable capacity,
// epoch write reduction, write amplification and p99 latency, yielding the
// capacity / write-reduction / p99 vs cumulative-erases series for every
// device architecture (baseline, dedup, DVP, LX-SSD, ideal). A run for one
// device ends at the first of: the usable-capacity floor, the drive
// erroring out of space (or burning every program retry), the erase-budget
// ceiling, or the epoch cap — so every run terminates, which the property
// tests rely on.
//
// Determinism: the trace is generated once from Config.Seed, and all fault
// draws come from the plan's splitmix64 stream, so two runs with equal
// configs produce byte-identical epoch series.
package lifetime

import (
	"errors"
	"fmt"

	"zombiessd/internal/core"
	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/scrub"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// Kind labels the device architectures the harness ages. They mirror the
// evaluation matrix: ideal is the DVP with an infinite pool.
type Kind string

// The aged configurations.
const (
	KindBaseline Kind = "baseline"
	KindDedup    Kind = "dedup"
	KindDVP      Kind = "dvp"
	KindLX       Kind = "lx-ssd"
	KindIdeal    Kind = "ideal"
	// KindDVPUnweighted is the fault-weight ablation arm: the DVP with
	// fault-aware victim scoring disabled, everything else equal.
	KindDVPUnweighted Kind = "dvp-w0"
)

// AllKinds returns the five standard architectures (without the ablation
// arm), in the matrix order.
func AllKinds() []Kind {
	return []Kind{KindBaseline, KindDedup, KindDVP, KindLX, KindIdeal}
}

// StopCause names why a device's run ended.
type StopCause string

// Stop causes, from most to least terminal.
const (
	// StopNoSpace: the drive errored out of free pages mid-epoch — it can
	// no longer hold the footprint. The final sample is partial.
	StopNoSpace StopCause = "no-space"
	// StopProgramFault: a program burned every retry attempt mid-epoch.
	// The final sample is partial.
	StopProgramFault StopCause = "program-fault"
	// StopCapacityFloor: usable capacity fell below the configured
	// fraction of its initial value at an epoch boundary.
	StopCapacityFloor StopCause = "capacity-floor"
	// StopEraseBudget: cumulative erases reached the budget ceiling.
	StopEraseBudget StopCause = "erase-budget"
	// StopMaxEpochs: the epoch cap ended a drive that outlived the plan.
	StopMaxEpochs StopCause = "max-epochs"
)

// Dead reports whether the cause means the device actually failed (rather
// than the harness running out of budget or patience).
func (c StopCause) Dead() bool {
	return c == StopNoSpace || c == StopProgramFault || c == StopCapacityFloor
}

// DefaultGCFaultWeight is the fault-penalty victim-score weight the DVP
// arms use unless overridden: one program failure cancels one invalid
// page's worth of greed.
const DefaultGCFaultWeight = 1.0

// defaultBudgetCycles sizes the derived erase budget: average erase cycles
// per physical block before the harness stops a run that refuses to die.
const defaultBudgetCycles = 400

// Config parameterizes one drive-to-death run. Every device kind replays
// the same trace under the same plan, so the series are directly
// comparable.
type Config struct {
	// Workload names the synthetic workload profile ("web", "mail", …).
	Workload string
	// RequestsPerEpoch is the trace length replayed each epoch.
	RequestsPerEpoch int64
	// Seed drives workload generation (and, via Faults.Seed when left
	// zero, the fault stream).
	Seed int64
	// Utilization is the footprint : exported-capacity ratio.
	Utilization float64
	// PoolEntries sizes the dead-value pool (and LX recycler) arms.
	PoolEntries int

	// Kinds selects the architectures to age; nil means AllKinds plus the
	// fault-weight ablation arm when GCFaultWeight > 0.
	Kinds []Kind

	// Faults is the wear-scaled fault plan. WearFactor > 0 is what makes
	// this a lifetime experiment: young blocks almost never fail, cycled
	// ones fail increasingly often. A zero Faults is replaced by
	// DefaultFaultPlan(Seed).
	Faults fault.Config

	// Scrub runs the background patrol scrubber while the drive ages;
	// requires Faults.Integrity to be armed. Zero leaves it off.
	Scrub scrub.Config

	// CapacityFloorFrac declares the drive dead when usable capacity falls
	// below this fraction of its initial value. 0 means 0.92 — at the
	// paper-style 15% over-provisioning, losing ~8% of usable pages
	// already puts steady-state GC near collapse.
	CapacityFloorFrac float64
	// EraseBudget caps cumulative post-precondition erases per device;
	// 0 derives total blocks × 400 cycles.
	EraseBudget int64
	// MaxEpochs caps the epochs per device; 0 means 48.
	MaxEpochs int

	// GCFaultWeight is ftl.StoreConfig.FaultPenaltyWeight for the DVP
	// arms (the weight the ablation arm zeroes). Negative disables it;
	// 0 means DefaultGCFaultWeight.
	GCFaultWeight float64
	// DrainSuspects enables suspect-draining victim selection on the DVP
	// arms alongside the fault penalty.
	DrainSuspects bool
}

// DefaultFaultPlan returns the wear-out plan the harness uses when the
// caller supplies none: modest fresh-drive rates that the wear factor
// amplifies roughly 10× by 20 erase cycles, plus suspect-based retirement,
// so drives die by capacity loss within tens of epochs at reduced scale.
func DefaultFaultPlan(seed int64) fault.Config {
	return fault.Config{
		Seed:             seed,
		ProgramFailProb:  4e-4,
		EraseFailProb:    4e-4,
		ReadFailProb:     1e-3,
		WearFactor:       0.5,
		SuspectThreshold: 4,
	}
}

// DefaultConfig returns the reduced-scale run zombiectl uses unless
// overridden.
func DefaultConfig() Config {
	return Config{
		Workload:         "web",
		RequestsPerEpoch: 60_000,
		Seed:             1,
		Utilization:      0.85,
		PoolEntries:      20_000,
	}
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if !c.Faults.Enabled() {
		// Keep any armed integrity model: the caller may want decay (and
		// the patrol) on top of the default wear plan.
		integ := c.Faults.Integrity
		c.Faults = DefaultFaultPlan(c.Seed)
		c.Faults.Integrity = integ
	}
	if c.CapacityFloorFrac == 0 {
		c.CapacityFloorFrac = 0.92
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 48
	}
	switch {
	case c.GCFaultWeight < 0:
		c.GCFaultWeight = 0
	case c.GCFaultWeight == 0:
		c.GCFaultWeight = DefaultGCFaultWeight
	}
	if c.Kinds == nil {
		c.Kinds = AllKinds()
		if c.GCFaultWeight > 0 {
			c.Kinds = append(c.Kinds, KindDVPUnweighted)
		}
	}
	return c
}

// Validate reports whether the (defaults-resolved) config is usable.
func (c Config) Validate() error {
	if _, ok := workload.ProfileByName(c.Workload); !ok {
		return fmt.Errorf("lifetime: unknown workload %q", c.Workload)
	}
	if c.RequestsPerEpoch < 100 {
		return fmt.Errorf("lifetime: need ≥ 100 requests per epoch, got %d", c.RequestsPerEpoch)
	}
	if c.Utilization <= 0 || c.Utilization >= 1 {
		return fmt.Errorf("lifetime: utilization must be in (0,1), got %g", c.Utilization)
	}
	if c.PoolEntries <= 0 {
		return fmt.Errorf("lifetime: pool entries must be positive, got %d", c.PoolEntries)
	}
	if c.CapacityFloorFrac < 0 || c.CapacityFloorFrac >= 1 {
		return fmt.Errorf("lifetime: capacity floor fraction must be in [0,1), got %g", c.CapacityFloorFrac)
	}
	if c.EraseBudget < 0 {
		return fmt.Errorf("lifetime: erase budget must be ≥ 0, got %d", c.EraseBudget)
	}
	if c.MaxEpochs < 1 {
		return fmt.Errorf("lifetime: max epochs must be ≥ 1, got %d", c.MaxEpochs)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Scrub.Validate(); err != nil {
		return err
	}
	if c.Scrub.Enabled() && !c.Faults.IntegrityArmed() {
		return fmt.Errorf("lifetime: scrubbing needs the integrity model armed (set Faults.Integrity.BaseRBER)")
	}
	return nil
}

// Sample is one epoch's measurement of one aging device. Cumulative fields
// count from the end of preconditioning; epoch fields cover this epoch
// only.
type Sample struct {
	Epoch         int   // 1-based
	CumHostWrites int64 // host writes served so far
	CumErases     int64 // flash erases paid so far
	RetiredBlocks int64 // blocks retired as bad so far (whole life)
	UsablePages   int64 // capacity the drive can still offer
	CapacityPct   float64
	WriteRedPct   float64 // epoch short-circuited writes / host writes
	WA            float64 // epoch write amplification
	P99           int64   // epoch p99 request latency, µs
	Partial       bool    // epoch aborted mid-way by device death
}

// Series is the recorded life of one device kind.
type Series struct {
	Kind    Kind
	Samples []Sample
	Cause   StopCause
	// CumHostWrites and CumErases are the totals at the end of the run —
	// the "work served before death" the end-of-life comparisons use.
	CumHostWrites int64
	CumErases     int64
}

// Result is one full drive-to-death run across device kinds.
type Result struct {
	Config        Config // with defaults resolved
	Footprint     int64  // logical pages the trace touches
	InitialUsable int64  // usable pages of the fresh drive
	CapacityFloor int64  // pages; below this the drive is dead
	EraseBudget   int64  // resolved ceiling
	Series        []Series
}

// preconditionValueBase offsets preconditioning content IDs far above any
// workload-generated value ID (mirroring the sim runner), so the fill
// never aliases trace values.
const preconditionValueBase = uint64(1) << 48

// Run ages every configured device kind to death (or budget) and returns
// the per-epoch series.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, _ := workload.ProfileByName(cfg.Workload)
	recs, err := workload.Generate(p, cfg.RequestsPerEpoch, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	res := &Result{Config: cfg, Footprint: footprint}
	for _, k := range cfg.Kinds {
		ser, usable, budget, err := runKind(cfg, k, recs, footprint)
		if err != nil {
			return nil, fmt.Errorf("lifetime: %s: %w", k, err)
		}
		res.InitialUsable = usable
		res.CapacityFloor = int64(cfg.CapacityFloorFrac * float64(usable))
		res.EraseBudget = budget
		res.Series = append(res.Series, ser)
	}
	return res, nil
}

// deviceConfig assembles the sim.Config for one architecture arm.
func (c Config) deviceConfig(k Kind, footprint int64) (sim.Config, error) {
	store := ftl.StoreConfig{GCFreeBlockThreshold: 2}
	cfg := sim.Config{
		Geometry:     sim.GeometryFor(footprint, c.Utilization),
		Latency:      ssd.PaperLatency(),
		LogicalPages: footprint,
		PoolKind:     sim.PoolMQ,
		MQ:           core.MQConfig{Queues: 8, Capacity: c.PoolEntries, DefaultLifetime: 8192},
		LRUCapacity:  c.PoolEntries,
		LX:           lxssd.Config{Capacity: c.PoolEntries, MinPopularity: 0},
		Faults:       c.Faults,
		Scrub:        c.Scrub,
	}
	switch k {
	case KindBaseline:
		cfg.Kind = sim.KindBaseline
	case KindDedup:
		cfg.Kind = sim.KindDedup
	case KindLX:
		cfg.Kind = sim.KindLX
	case KindDVP, KindIdeal, KindDVPUnweighted:
		cfg.Kind = sim.KindDVP
		store.PopularityWeight = sim.DefaultPopularityWeight
		if k == KindIdeal {
			cfg.PoolKind = sim.PoolInfinite
		}
		if k != KindDVPUnweighted {
			store.FaultPenaltyWeight = c.GCFaultWeight
			store.DrainSuspects = c.DrainSuspects
		}
	default:
		return sim.Config{}, fmt.Errorf("unknown kind %q", k)
	}
	cfg.Store = store
	return cfg, nil
}

// causeOf maps a device error to its stop cause, or "" for unexpected
// errors the harness should propagate.
func causeOf(err error) StopCause {
	switch {
	case errors.Is(err, ftl.ErrNoSpace):
		return StopNoSpace
	case errors.Is(err, ftl.ErrProgramFault):
		return StopProgramFault
	}
	return ""
}

// runKind ages one device: precondition the footprint, then replay the
// trace epoch after epoch on a monotonically advancing clock until a stop
// condition fires.
func runKind(cfg Config, k Kind, recs []trace.Record, footprint int64) (Series, int64, int64, error) {
	devCfg, err := cfg.deviceConfig(k, footprint)
	if err != nil {
		return Series{}, 0, 0, err
	}
	dev, err := sim.NewDevice(devCfg)
	if err != nil {
		return Series{}, 0, 0, err
	}
	store := sim.StoreOf(dev)
	if store == nil {
		return Series{}, 0, 0, fmt.Errorf("device exposes no store")
	}
	initialUsable := store.UsablePages()
	floor := int64(cfg.CapacityFloorFrac * float64(initialUsable))
	budget := cfg.EraseBudget
	if budget == 0 {
		budget = int64(devCfg.Geometry.TotalBlocks()) * defaultBudgetCycles
	}

	ser := Series{Kind: k}
	// Untimed preconditioning fill; a drive that dies here is reported
	// with an empty series rather than an error, so aggressive fault plans
	// (the property tests randomize them) still terminate cleanly.
	var clock ssd.Time
	for lpn := int64(0); lpn < footprint; lpn++ {
		done, werr := dev.Write(ftl.LPN(lpn), trace.HashOfValue(preconditionValueBase+uint64(lpn)), 0)
		if werr != nil {
			if cause := causeOf(werr); cause != "" {
				ser.Cause = cause
				return ser, initialUsable, budget, nil
			}
			return ser, 0, 0, fmt.Errorf("precondition write %d: %w", lpn, werr)
		}
		if done > clock {
			clock = done
		}
	}
	clock += ssd.Millisecond
	base := dev.Metrics()
	prev := base

	for epoch := 1; ; epoch++ {
		var hist stats.Histogram
		var died StopCause
		epochEnd := clock
		for i, rec := range recs {
			arrival := clock + ssd.Time(rec.Time)
			var done ssd.Time
			var rerr error
			switch rec.Op {
			case trace.OpWrite:
				done, rerr = dev.Write(ftl.LPN(int64(rec.LBA)), rec.Hash, arrival)
			case trace.OpRead:
				done, rerr = dev.Read(ftl.LPN(int64(rec.LBA)), arrival)
			default:
				return ser, 0, 0, fmt.Errorf("record %d has unknown op %v", i, rec.Op)
			}
			if rerr != nil {
				died = causeOf(rerr)
				if died == "" {
					return ser, 0, 0, fmt.Errorf("epoch %d record %d: %w", epoch, i, rerr)
				}
				break
			}
			hist.Add(int64(done - arrival))
			if done > epochEnd {
				epochEnd = done
			}
			if arrival > epochEnd {
				epochEnd = arrival
			}
		}
		cum := dev.Metrics().Sub(base)
		em := dev.Metrics().Sub(prev)
		prev = dev.Metrics()
		usable := store.UsablePagesNow()
		s := Sample{
			Epoch:         epoch,
			CumHostWrites: cum.HostWrites,
			CumErases:     cum.FlashErases,
			RetiredBlocks: store.FaultStats().RetiredBlocks,
			UsablePages:   usable,
			CapacityPct:   100 * float64(usable) / float64(initialUsable),
			WA:            em.WriteAmplification(),
			P99:           hist.P99(),
			Partial:       died != "",
		}
		if em.HostWrites > 0 {
			s.WriteRedPct = 100 * float64(em.ShortCircuited()) / float64(em.HostWrites)
		}
		ser.Samples = append(ser.Samples, s)
		ser.CumHostWrites = cum.HostWrites
		ser.CumErases = cum.FlashErases
		switch {
		case died != "":
			ser.Cause = died
		case usable < floor:
			ser.Cause = StopCapacityFloor
		case cum.FlashErases >= budget:
			ser.Cause = StopEraseBudget
		case epoch >= cfg.MaxEpochs:
			ser.Cause = StopMaxEpochs
		default:
			clock = epochEnd + ssd.Millisecond
			continue
		}
		return ser, initialUsable, budget, nil
	}
}

// SeriesByKind returns the series for k, if present.
func (r *Result) SeriesByKind(k Kind) (Series, bool) {
	for _, s := range r.Series {
		if s.Kind == k {
			return s, true
		}
	}
	return Series{}, false
}
