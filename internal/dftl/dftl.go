// Package dftl implements the RAM side of a flash-resident page-mapping
// table in the style of DFTL (Gupta et al.) as analyzed by Dayan & Bonnet
// ("Garbage Collection Techniques for Flash-Resident Page-Mapping FTLs"):
// the logical-to-physical mapping is split into translation pages of
// EntriesPerPage(pageSize) entries each, the full set lives on flash, and
// only a bounded cache of translation-page frames — the cached mapping
// table (CMT) — is resident in controller RAM, managed LRU with dirty
// write-back.
//
// This package owns the pure bookkeeping: the CMT frames, the global
// translation directory (GTD, the TVPN → flash-location array), and the
// modeled content of flash-resident translation pages. Every flash
// consequence — programming a translation page on the translation stream,
// reading one on a CMT miss, invalidating the stale copy, collecting
// translation blocks as a second GC stream — lives in internal/ftl, which
// calls back into the CMT to keep the model consistent. The split keeps
// this package import-light (ssd only) so ftl can depend on it.
package dftl

import (
	"errors"
	"fmt"

	"zombiessd/internal/ssd"
)

// Named configuration errors, so the -dftl-* flag surface (and
// FuzzDftlConfig) can assert the exact rejection class with errors.Is.
var (
	// ErrBadFrames rejects invalid -dftl-cmt-frames values.
	ErrBadFrames = errors.New("dftl: bad -dftl-cmt-frames")
	// ErrDisabled rejects -dftl-* knobs set without -dftl-enable.
	ErrDisabled = errors.New("dftl: knob needs -dftl-enable")
)

// DefaultCMTFrames is the resident translation-page frame count
// WithDefaults picks when DFTL is enabled with no explicit size: 64
// frames × 4 KB translation pages = 256 KB of mapping cache.
const DefaultCMTFrames = 64

// maxCMTFrames bounds -dftl-cmt-frames: a frame is one translation page
// of RAM, and 2^20 of them is already a 4 GB cache — past any plausible
// controller.
const maxCMTFrames = 1 << 20

// Config parameterizes the flash-resident mapping table. The zero value
// disables it entirely: no CMT is built, no translation stream is
// allocated, and the store's behaviour is bit-identical to a RAM-resident
// mapping.
type Config struct {
	// Enable turns the flash-resident mapping on.
	Enable bool

	// CMTFrames is the number of translation-page frames held resident in
	// RAM (the CMT capacity). 0 means DefaultCMTFrames when enabled;
	// setting it without Enable is a configuration error.
	CMTFrames int

	// BatchEvict enables Dayan & Bonnet's batched eviction: when
	// translation GC relocates a translation page whose frame is resident
	// and dirty, the in-RAM updates are folded into the relocation program
	// and the frame comes back clean — one flash program instead of a
	// relocation now plus a write-back later.
	BatchEvict bool
}

// Enabled reports whether the flash-resident mapping is on.
func (c Config) Enabled() bool { return c.Enable }

// Validate rejects malformed configurations with the named errors above.
func (c Config) Validate() error {
	if c.CMTFrames < 0 || c.CMTFrames > maxCMTFrames {
		return fmt.Errorf("%w: frame count must be in [0,%d], got %d", ErrBadFrames, maxCMTFrames, c.CMTFrames)
	}
	if !c.Enable {
		if c.CMTFrames != 0 {
			return fmt.Errorf("%w: -dftl-cmt-frames %d without -dftl-enable", ErrDisabled, c.CMTFrames)
		}
		if c.BatchEvict {
			return fmt.Errorf("%w: -dftl-batch-evict without -dftl-enable", ErrDisabled)
		}
	}
	return nil
}

// WithDefaults returns c with the enabled-but-unset knobs filled in: the
// default CMT capacity. The disabled zero value passes through unchanged.
func (c Config) WithDefaults() Config {
	if c.Enable && c.CMTFrames == 0 {
		c.CMTFrames = DefaultCMTFrames
	}
	return c
}

// EntriesPerPage returns how many 4-byte PPN entries one translation page
// of the given page size holds — the fan-out that maps LPNs to TVPNs.
func EntriesPerPage(pageSize int) int { return pageSize / 4 }

// Stats counts the mapping table's activity. Flash-op counters here are
// bookkeeping mirrors of real bus operations the store charged.
type Stats struct {
	// Hits and Misses classify CMT lookups (MapRead + MapWrite demand).
	Hits   int64
	Misses int64
	// Fills counts translation-page reads that loaded a frame on a miss
	// (a miss of a never-written TVPN installs an empty frame for free).
	Fills int64
	// Writebacks counts dirty frames written back to flash on eviction.
	Writebacks int64
	// BatchFolded counts dirty frames folded into a translation-GC
	// relocation under BatchEvict — write-backs that never happened.
	BatchFolded int64
	// TransPrograms / TransReads / TransErased count flash ops on
	// translation pages and blocks (programs include write-backs, GC
	// relocations and recovery checkpoints).
	TransPrograms int64
	TransReads    int64
	TransErased   int64
	// TransGCRuns / TransRelocated count translation-block GC cycles and
	// the still-valid translation pages they moved.
	TransGCRuns    int64
	TransRelocated int64
	// GCDirtied counts data-GC mapping updates absorbed by a resident
	// frame (deferred to its eventual write-back); GCMapRMWs counts the
	// update batches that had to read-modify-write a non-resident
	// translation page right away.
	GCDirtied int64
	GCMapRMWs int64
	// CheckpointPages counts translation pages re-landed by crash
	// recovery's fresh mapping checkpoint.
	CheckpointPages int64
}

// Sub returns s - base, field by field — the per-run delta DeviceMetrics
// arithmetic needs.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Hits:            s.Hits - base.Hits,
		Misses:          s.Misses - base.Misses,
		Fills:           s.Fills - base.Fills,
		Writebacks:      s.Writebacks - base.Writebacks,
		BatchFolded:     s.BatchFolded - base.BatchFolded,
		TransPrograms:   s.TransPrograms - base.TransPrograms,
		TransReads:      s.TransReads - base.TransReads,
		TransErased:     s.TransErased - base.TransErased,
		TransGCRuns:     s.TransGCRuns - base.TransGCRuns,
		TransRelocated:  s.TransRelocated - base.TransRelocated,
		GCDirtied:       s.GCDirtied - base.GCDirtied,
		GCMapRMWs:       s.GCMapRMWs - base.GCMapRMWs,
		CheckpointPages: s.CheckpointPages - base.CheckpointPages,
	}
}

// HitRate returns the CMT hit fraction in [0,1]; 1 when nothing was
// looked up.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// frame is one resident translation page: its TVPN, the current entries
// (which may be newer than the flash copy when dirty), and its LRU links.
type frame struct {
	tvpn       uint32
	dirty      bool
	entries    []ssd.PPN
	prev, next *frame
}

// CMT is the cached mapping table plus the directory state it pages
// against: the GTD and the modeled content of every flash-resident
// translation page. RAM cost is bounded by CMTFrames resident frames plus
// one GTD slot per translation page of the logical space; the flash
// content map is simulation bookkeeping proportional to the mapped
// logical footprint (the analog of the shadow content arrays the sim
// devices keep), not controller RAM.
type CMT struct {
	cfg    Config
	epp    int
	gtd    []ssd.PPN
	frames map[uint32]*frame
	head   *frame // most recently used
	tail   *frame // least recently used

	// flash models the entries stored in each flash-resident translation
	// page, keyed by its PPN. Entries survive power loss; frames do not.
	flash map[ssd.PPN][]ssd.PPN

	// Stat is incremented by the CMT and by the store's flash-op half.
	Stat Stats
}

// NewCMT builds a cached mapping table for a logical space of
// logicalPages entries over pageSize-byte translation pages. cfg must be
// enabled, validated and defaulted.
func NewCMT(cfg Config, logicalPages int64, pageSize int) (*CMT, error) {
	if !cfg.Enable {
		return nil, fmt.Errorf("dftl: NewCMT on a disabled config")
	}
	if cfg.CMTFrames < 1 {
		return nil, fmt.Errorf("%w: frame count must be ≥ 1 after WithDefaults, got %d", ErrBadFrames, cfg.CMTFrames)
	}
	epp := EntriesPerPage(pageSize)
	if epp < 1 {
		return nil, fmt.Errorf("dftl: page size %d holds no mapping entries", pageSize)
	}
	if logicalPages < 1 {
		return nil, fmt.Errorf("dftl: logical space must be positive, got %d", logicalPages)
	}
	pages := (logicalPages + int64(epp) - 1) / int64(epp)
	c := &CMT{
		cfg:    cfg,
		epp:    epp,
		gtd:    make([]ssd.PPN, pages),
		frames: make(map[uint32]*frame, cfg.CMTFrames),
		flash:  make(map[ssd.PPN][]ssd.PPN),
	}
	for i := range c.gtd {
		c.gtd[i] = ssd.InvalidPPN
	}
	return c, nil
}

// Config returns the (defaulted) configuration the CMT was built with.
func (c *CMT) Config() Config { return c.cfg }

// TVPNOf returns the translation page covering lpn.
func (c *CMT) TVPNOf(lpn uint32) uint32 { return lpn / uint32(c.epp) }

// TransPages returns how many translation pages cover the logical space —
// the GTD length.
func (c *CMT) TransPages() int64 { return int64(len(c.gtd)) }

// Resident reports whether tvpn's frame is in the CMT.
func (c *CMT) Resident(tvpn uint32) bool {
	_, ok := c.frames[tvpn]
	return ok
}

// ResidentDirty reports whether tvpn's frame is resident with unwritten
// updates.
func (c *CMT) ResidentDirty(tvpn uint32) bool {
	f, ok := c.frames[tvpn]
	return ok && f.dirty
}

// Loc returns tvpn's current flash location (InvalidPPN if the
// translation page was never programmed).
func (c *CMT) Loc(tvpn uint32) ssd.PPN { return c.gtd[tvpn] }

// Touch records a lookup of tvpn: a resident frame moves to the LRU head
// and counts a hit; otherwise a miss is counted and the caller must fault
// the frame in (EvictVictim + Install).
func (c *CMT) Touch(tvpn uint32) bool {
	if f, ok := c.frames[tvpn]; ok {
		c.Stat.Hits++
		c.moveToHead(f)
		return true
	}
	c.Stat.Misses++
	return false
}

// Full reports whether installing one more frame requires an eviction.
func (c *CMT) Full() bool { return len(c.frames) >= c.cfg.CMTFrames }

// EvictVictim removes the LRU frame and returns its TVPN, whether it was
// dirty, and (for a dirty victim) the entries the caller must write back
// via Committed. ok is false when the CMT is empty.
func (c *CMT) EvictVictim() (tvpn uint32, dirty bool, entries []ssd.PPN, ok bool) {
	f := c.tail
	if f == nil {
		return 0, false, nil, false
	}
	c.unlink(f)
	delete(c.frames, f.tvpn)
	return f.tvpn, f.dirty, f.entries, true
}

// Install faults tvpn's frame into the CMT at the LRU head, loading
// entries from the modeled flash copy when one exists (the caller charges
// the translation-page read) or installing an all-unmapped frame for a
// never-written TVPN. The caller must have made room (Full + EvictVictim)
// first. Reports whether a flash copy was loaded.
func (c *CMT) Install(tvpn uint32) bool {
	if _, ok := c.frames[tvpn]; ok {
		return false
	}
	f := &frame{tvpn: tvpn, entries: c.newEntries()}
	loaded := false
	if ppn := c.gtd[tvpn]; ppn != ssd.InvalidPPN {
		copy(f.entries, c.flash[ppn])
		loaded = true
		c.Stat.Fills++
	}
	c.frames[tvpn] = f
	c.pushHead(f)
	return loaded
}

// Update records a new binding for lpn in its resident frame, marking it
// dirty. The frame must be resident — MapWrite faults it in first.
func (c *CMT) Update(lpn uint32, ppn ssd.PPN) error {
	f, ok := c.frames[c.TVPNOf(lpn)]
	if !ok {
		return fmt.Errorf("dftl: update of lpn %d with no resident frame for tvpn %d", lpn, c.TVPNOf(lpn))
	}
	f.entries[int(lpn)%c.epp] = ppn
	f.dirty = true
	return nil
}

// Committed records that tvpn's current entries were programmed to flash
// at newPPN (an eviction write-back, a batch-folded GC relocation, or a
// recovery checkpoint): the GTD repoints, the modeled flash content moves,
// and the old location is forgotten. Returns the old PPN so the caller can
// invalidate the stale flash copy (InvalidPPN if none).
func (c *CMT) Committed(tvpn uint32, entries []ssd.PPN, newPPN ssd.PPN) ssd.PPN {
	old := c.gtd[tvpn]
	if old != ssd.InvalidPPN {
		delete(c.flash, old)
	}
	stored := c.newEntries()
	copy(stored, entries)
	c.flash[newPPN] = stored
	c.gtd[tvpn] = newPPN
	if f, ok := c.frames[tvpn]; ok {
		f.dirty = false
	}
	return old
}

// Relocated moves tvpn's unchanged flash copy from src to dst —
// translation GC's plain relocation path (no resident dirty fold).
func (c *CMT) Relocated(tvpn uint32, src, dst ssd.PPN) error {
	if c.gtd[tvpn] != src {
		return fmt.Errorf("dftl: relocation of tvpn %d from %d, but GTD says %d", tvpn, src, c.gtd[tvpn])
	}
	c.flash[dst] = c.flash[src]
	delete(c.flash, src)
	c.gtd[tvpn] = dst
	return nil
}

// FrameEntries returns a resident frame's current entries (nil when not
// resident) — translation GC's batch-evict fold reads the fresh content
// through this.
func (c *CMT) FrameEntries(tvpn uint32) []ssd.PPN {
	if f, ok := c.frames[tvpn]; ok {
		return f.entries
	}
	return nil
}

// FlashEntries returns the modeled content of the flash translation page
// at ppn (nil if ppn holds no live translation page).
func (c *CMT) FlashEntries(ppn ssd.PPN) []ssd.PPN { return c.flash[ppn] }

// EntryOf resolves lpn through the mapping table as flash would see it
// after the resident frames are flushed: the resident frame's entry when
// one exists, else the flash copy, else unmapped. Pure inspection — no
// LRU movement, no stats — for invariant checks and tests.
func (c *CMT) EntryOf(lpn uint32) (ssd.PPN, bool) {
	tvpn := c.TVPNOf(lpn)
	if f, ok := c.frames[tvpn]; ok {
		p := f.entries[int(lpn)%c.epp]
		return p, p != ssd.InvalidPPN
	}
	ppn := c.gtd[tvpn]
	if ppn == ssd.InvalidPPN {
		return ssd.InvalidPPN, false
	}
	p := c.flash[ppn][int(lpn)%c.epp]
	return p, p != ssd.InvalidPPN
}

// DurableEntryOf resolves lpn through flash alone — what survives a power
// cut: the last written-back translation page's entry. Test hook for the
// last-writer-wins property.
func (c *CMT) DurableEntryOf(lpn uint32) (ssd.PPN, bool) {
	ppn := c.gtd[c.TVPNOf(lpn)]
	if ppn == ssd.InvalidPPN {
		return ssd.InvalidPPN, false
	}
	p := c.flash[ppn][int(lpn)%c.epp]
	return p, p != ssd.InvalidPPN
}

// DropFrames models power loss: every resident frame — clean or dirty —
// vanishes with controller RAM. The GTD and flash content stand, exactly
// as the on-flash OOB scan would rebuild them.
func (c *CMT) DropFrames() {
	c.frames = make(map[uint32]*frame, c.cfg.CMTFrames)
	c.head, c.tail = nil, nil
}

// ResetAll clears frames, GTD and modeled flash content — recovery calls
// it after Rebuild turned every surviving translation page into garbage,
// just before re-landing the fresh mapping checkpoint.
func (c *CMT) ResetAll() {
	c.DropFrames()
	for i := range c.gtd {
		c.gtd[i] = ssd.InvalidPPN
	}
	c.flash = make(map[ssd.PPN][]ssd.PPN)
}

// ResidentFrames returns how many frames are currently cached.
func (c *CMT) ResidentFrames() int { return len(c.frames) }

func (c *CMT) newEntries() []ssd.PPN {
	e := make([]ssd.PPN, c.epp)
	for i := range e {
		e[i] = ssd.InvalidPPN
	}
	return e
}

func (c *CMT) pushHead(f *frame) {
	f.prev = nil
	f.next = c.head
	if c.head != nil {
		c.head.prev = f
	}
	c.head = f
	if c.tail == nil {
		c.tail = f
	}
}

func (c *CMT) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		c.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		c.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (c *CMT) moveToHead(f *frame) {
	if c.head == f {
		return
	}
	c.unlink(f)
	c.pushHead(f)
}
