package dftl

import (
	"errors"
	"math/rand"
	"testing"

	"zombiessd/internal/ssd"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero", Config{}, nil},
		{"enabled default", Config{Enable: true}, nil},
		{"enabled sized", Config{Enable: true, CMTFrames: 8, BatchEvict: true}, nil},
		{"negative frames", Config{Enable: true, CMTFrames: -1}, ErrBadFrames},
		{"huge frames", Config{Enable: true, CMTFrames: maxCMTFrames + 1}, ErrBadFrames},
		{"frames without enable", Config{CMTFrames: 8}, ErrDisabled},
		{"batch without enable", Config{BatchEvict: true}, ErrDisabled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestWithDefaults(t *testing.T) {
	if got := (Config{Enable: true}).WithDefaults().CMTFrames; got != DefaultCMTFrames {
		t.Errorf("enabled zero frames defaulted to %d, want %d", got, DefaultCMTFrames)
	}
	if got := (Config{Enable: true, CMTFrames: 3}).WithDefaults().CMTFrames; got != 3 {
		t.Errorf("explicit frames overwritten to %d", got)
	}
	if got := (Config{}).WithDefaults(); got != (Config{}) {
		t.Errorf("disabled zero value changed to %+v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := NewCMT(Config{Enable: true, CMTFrames: 2}, 16*1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct TVPNs (1024 entries each at 4 KB pages).
	touch := func(tvpn uint32) {
		if !c.Touch(tvpn) {
			if c.Full() {
				if v, dirty, _, ok := c.EvictVictim(); ok && dirty {
					t.Fatalf("clean workload evicted dirty tvpn %d", v)
				}
			}
			c.Install(tvpn)
		}
	}
	touch(0)
	touch(1)
	touch(0) // 0 now MRU
	touch(2) // must evict 1
	if c.Resident(1) {
		t.Error("LRU frame 1 still resident after eviction")
	}
	if !c.Resident(0) || !c.Resident(2) {
		t.Error("recently used frames were evicted")
	}
	if c.Stat.Hits != 1 || c.Stat.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", c.Stat.Hits, c.Stat.Misses)
	}
}

// TestNoUpdateLostAcrossEvictReloadAndCrash is the seeded property test of
// the CMT model, orchestrated exactly as ftl.Store drives it: random
// mapping updates fault frames in, evict LRU victims (writing dirty ones
// back), and occasionally GC-relocate flash translation pages. Invariants:
// (1) EntryOf always returns the latest update — no update is lost across
// evict/reload; (2) after a simulated power cut (frames dropped), every
// lpn resolves to its last *written-back* binding — translation-page
// last-writer-wins; (3) after a recovery checkpoint re-land, the full
// latest mapping is restored.
func TestNoUpdateLostAcrossEvictReloadAndCrash(t *testing.T) {
	const (
		logical = 64 * 1024 // 64 TVPNs at 4 KB pages
		ops     = 120_000
	)
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewCMT(Config{Enable: true, CMTFrames: 4}, logical, 4096)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint32]ssd.PPN{}     // latest update per lpn
		durable := map[uint32]ssd.PPN{} // last written-back value per lpn
		nextPPN := ssd.PPN(1)           // fresh fake flash locations
		freshPPN := func() ssd.PPN { p := nextPPN; nextPPN++; return p }

		commit := func(tvpn uint32, entries []ssd.PPN) {
			old := c.Committed(tvpn, entries, freshPPN())
			_ = old
			base := tvpn * uint32(EntriesPerPage(4096))
			for i, p := range entries {
				if p == ssd.InvalidPPN {
					delete(durable, base+uint32(i))
				} else {
					durable[base+uint32(i)] = p
				}
			}
		}
		ensure := func(tvpn uint32) {
			if c.Touch(tvpn) {
				return
			}
			if c.Full() {
				v, dirty, entries, ok := c.EvictVictim()
				if !ok {
					t.Fatal("full CMT had no victim")
				}
				if dirty {
					commit(v, entries)
				}
			}
			c.Install(tvpn)
		}

		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 9: // translation GC relocates one written TVPN's flash copy
				tvpn := uint32(rng.Intn(int(c.TransPages())))
				src := c.Loc(tvpn)
				if src == ssd.InvalidPPN {
					continue
				}
				if c.cfg.BatchEvict && c.ResidentDirty(tvpn) {
					commit(tvpn, c.FrameEntries(tvpn))
					continue
				}
				if err := c.Relocated(tvpn, src, freshPPN()); err != nil {
					t.Fatal(err)
				}
			default: // host mapping update
				lpn := uint32(rng.Intn(logical))
				ppn := ssd.PPN(rng.Intn(1 << 28))
				ensure(c.TVPNOf(lpn))
				if err := c.Update(lpn, ppn); err != nil {
					t.Fatal(err)
				}
				ref[lpn] = ppn
			}
			if op%10_000 == 0 {
				lpn := uint32(rng.Intn(logical))
				got, ok := c.EntryOf(lpn)
				want, wok := ref[lpn]
				if ok != wok || (ok && got != want) {
					t.Fatalf("seed %d op %d: EntryOf(%d) = %d,%v, want %d,%v", seed, op, lpn, got, ok, want, wok)
				}
			}
		}

		// (1) No update lost across evict/reload.
		for lpn, want := range ref {
			if got, ok := c.EntryOf(lpn); !ok || got != want {
				t.Fatalf("seed %d: EntryOf(%d) = %d,%v, want %d", seed, lpn, got, ok, want)
			}
		}

		// (2) Power cut: resident frames vanish; flash resolves every lpn
		// to its last written-back binding.
		c.DropFrames()
		for lpn, want := range durable {
			if got, ok := c.EntryOf(lpn); !ok || got != want {
				t.Fatalf("seed %d post-crash: EntryOf(%d) = %d,%v, want durable %d", seed, lpn, got, ok, want)
			}
		}
		for lpn := uint32(0); lpn < logical; lpn += 97 {
			if _, wok := durable[lpn]; wok {
				continue
			}
			if _, ok := c.EntryOf(lpn); ok {
				t.Fatalf("seed %d post-crash: lpn %d resolves but was never written back", seed, lpn)
			}
		}

		// (3) Recovery checkpoint re-land restores the full latest mapping.
		c.ResetAll()
		epp := EntriesPerPage(4096)
		byTVPN := map[uint32][]ssd.PPN{}
		for lpn, ppn := range ref {
			tvpn := c.TVPNOf(lpn)
			e, ok := byTVPN[tvpn]
			if !ok {
				e = make([]ssd.PPN, epp)
				for i := range e {
					e[i] = ssd.InvalidPPN
				}
				byTVPN[tvpn] = e
			}
			e[int(lpn)%epp] = ppn
		}
		for tvpn, entries := range byTVPN {
			c.Committed(tvpn, entries, freshPPN())
		}
		for lpn, want := range ref {
			if got, ok := c.EntryOf(lpn); !ok || got != want {
				t.Fatalf("seed %d post-recovery: EntryOf(%d) = %d,%v, want %d", seed, lpn, got, ok, want)
			}
		}
	}
}

func TestCommittedReturnsOldLocation(t *testing.T) {
	c, err := NewCMT(Config{Enable: true, CMTFrames: 2}, 2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Install(0)
	if err := c.Update(5, 77); err != nil {
		t.Fatal(err)
	}
	if old := c.Committed(0, c.FrameEntries(0), 100); old != ssd.InvalidPPN {
		t.Fatalf("first commit returned old %d, want InvalidPPN", old)
	}
	if err := c.Update(5, 78); err != nil {
		t.Fatal(err)
	}
	if old := c.Committed(0, c.FrameEntries(0), 200); old != 100 {
		t.Fatalf("second commit returned old %d, want 100", old)
	}
	if c.Loc(0) != 200 {
		t.Fatalf("GTD points at %d, want 200", c.Loc(0))
	}
	if got, ok := c.DurableEntryOf(5); !ok || got != 78 {
		t.Fatalf("DurableEntryOf(5) = %d,%v, want 78", got, ok)
	}
}
