// Package dedup implements a CAFTL-style device-level deduplicating
// mapping layer (the paper's "Dedup" comparison system, Section VII): a
// content index from value hash to the single live physical page holding
// that value, plus a many-to-one LPN mapping — multiple logical pages may
// point at one physical page. A physical page only becomes garbage when its
// last logical owner leaves, which is exactly the moment the dead-value
// pool takes over in the combined DVP+Dedup system.
package dedup

import (
	"errors"
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/sparse"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// ErrDedupCorrupt is wrapped by mapping operations that discover the
// metadata is internally inconsistent — an index entry without page
// metadata, a bind onto a non-live page, or a duplicate live value. A
// degraded device must surface these as errors, never panics: the caller
// treats the mapping unit as corrupt and fails the run (or the cell)
// cleanly.
var ErrDedupCorrupt = errors.New("dedup: metadata corrupt")

// pageMeta describes one live deduplicated physical page.
type pageMeta struct {
	hash trace.Hash
	lpns []ftl.LPN // logical owners; len(lpns) is the reference count
}

// Mapper is the deduplicating mapping unit. The forward table is
// sparse-chunked so a full-geometry logical space costs RAM proportional
// to the pages actually written, not the address-space size.
type Mapper struct {
	l2p    *sparse.Array[ssd.PPN]
	pages  map[ssd.PPN]*pageMeta
	byHash map[trace.Hash]ssd.PPN

	stats Stats
}

// Stats counts deduplication events.
type Stats struct {
	DedupHits  int64 // writes absorbed by an existing live copy
	NewPages   int64 // writes that created a live page (program or revival)
	Unbinds    int64 // logical detachments
	GarbageOut int64 // physical pages that lost their last owner
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("dedupHits=%d newPages=%d unbinds=%d garbage=%d",
		s.DedupHits, s.NewPages, s.Unbinds, s.GarbageOut)
}

// NewMapper returns a Mapper for logicalPages host pages.
func NewMapper(logicalPages int64) (*Mapper, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("dedup: logical pages must be positive, got %d", logicalPages)
	}
	if logicalPages > int64(ftl.InvalidLPN) {
		return nil, fmt.Errorf("dedup: %d logical pages exceeds the LPN space", logicalPages)
	}
	return &Mapper{
		l2p:    sparse.New(logicalPages, ssd.InvalidPPN),
		pages:  make(map[ssd.PPN]*pageMeta),
		byHash: make(map[trace.Hash]ssd.PPN),
	}, nil
}

// LogicalPages returns the host-visible address-space size.
func (m *Mapper) LogicalPages() int64 { return m.l2p.Len() }

// Stats returns cumulative counters.
func (m *Mapper) Stats() Stats { return m.stats }

// Lookup returns the physical page backing lpn.
func (m *Mapper) Lookup(lpn ftl.LPN) (ssd.PPN, bool) {
	p := m.l2p.Get(int64(lpn))
	return p, p != ssd.InvalidPPN
}

// LiveValue returns the live physical page holding value h, if any — the
// dedup fast path for incoming writes.
func (m *Mapper) LiveValue(h trace.Hash) (ssd.PPN, bool) {
	p, ok := m.byHash[h]
	return p, ok
}

// RefCount returns the number of logical owners of ppn (0 when not live).
func (m *Mapper) RefCount(ppn ssd.PPN) int {
	meta, ok := m.pages[ppn]
	if !ok {
		return 0
	}
	return len(meta.lpns)
}

// ValueOf returns the hash stored at live page ppn.
func (m *Mapper) ValueOf(ppn ssd.PPN) (trace.Hash, bool) {
	meta, ok := m.pages[ppn]
	if !ok {
		return trace.Hash{}, false
	}
	return meta.hash, true
}

// Unbind detaches lpn from its current physical page. If the page loses its
// last owner it becomes garbage: Unbind returns its PPN and hash with
// garbage=true so the caller can invalidate it in the store and offer it to
// the dead-value pool. With remaining owners, garbage is false and the page
// stays live. An index entry whose page has no metadata reports
// ErrDedupCorrupt with the mapping untouched.
func (m *Mapper) Unbind(lpn ftl.LPN) (ppn ssd.PPN, h trace.Hash, garbage, wasBound bool, err error) {
	ppn = m.l2p.Get(int64(lpn))
	if ppn == ssd.InvalidPPN {
		return ssd.InvalidPPN, trace.Hash{}, false, false, nil
	}
	meta := m.pages[ppn]
	if meta == nil {
		return ssd.InvalidPPN, trace.Hash{}, false, false,
			fmt.Errorf("%w: LPN %d maps to %d which has no metadata", ErrDedupCorrupt, lpn, ppn)
	}
	m.stats.Unbinds++
	m.l2p.Set(int64(lpn), ssd.InvalidPPN)
	for i, l := range meta.lpns {
		if l == lpn {
			meta.lpns = append(meta.lpns[:i], meta.lpns[i+1:]...)
			break
		}
	}
	if len(meta.lpns) > 0 {
		return ppn, meta.hash, false, true, nil
	}
	// Last owner gone: the page turns into garbage and leaves the live
	// content index.
	m.stats.GarbageOut++
	h = meta.hash
	delete(m.pages, ppn)
	delete(m.byHash, h)
	return ppn, h, true, true, nil
}

// BindExisting points lpn at the live page ppn (a dedup hit): the reference
// count grows, no flash operation happens. Binding onto a page that is not
// live reports ErrDedupCorrupt with the mapping untouched.
func (m *Mapper) BindExisting(lpn ftl.LPN, ppn ssd.PPN) error {
	meta, ok := m.pages[ppn]
	if !ok {
		return fmt.Errorf("%w: BindExisting(%d, %d): page not live", ErrDedupCorrupt, lpn, ppn)
	}
	m.stats.DedupHits++
	meta.lpns = append(meta.lpns, lpn)
	m.l2p.Set(int64(lpn), ppn)
	return nil
}

// BindNew registers ppn as the fresh live copy of value h owned by lpn —
// used both after a flash program and after a dead-value-pool revival. A
// value that already has a live copy (the caller should have used
// BindExisting) or a page that is already live reports ErrDedupCorrupt
// with the mapping untouched.
func (m *Mapper) BindNew(lpn ftl.LPN, ppn ssd.PPN, h trace.Hash) error {
	if _, dup := m.byHash[h]; dup {
		return fmt.Errorf("%w: BindNew(%d): value already live", ErrDedupCorrupt, ppn)
	}
	if _, dup := m.pages[ppn]; dup {
		return fmt.Errorf("%w: BindNew(%d): page already live", ErrDedupCorrupt, ppn)
	}
	m.stats.NewPages++
	m.pages[ppn] = &pageMeta{hash: h, lpns: []ftl.LPN{lpn}}
	m.byHash[h] = ppn
	m.l2p.Set(int64(lpn), ppn)
	return nil
}

// Owners returns a copy of the logical owners of live page ppn (nil when
// the page is not live). The first owner is the page's OOB representative
// for crash recovery; the rest are journaled separately.
func (m *Mapper) Owners(ppn ssd.PPN) []ftl.LPN {
	meta, ok := m.pages[ppn]
	if !ok {
		return nil
	}
	out := make([]ftl.LPN, len(meta.lpns))
	copy(out, meta.lpns)
	return out
}

// Relocate rebinds every owner of src to dst; GC calls it when it moves a
// valid page. Unknown pages are ignored (the moved page may belong to a
// different mapping layer in mixed setups).
func (m *Mapper) Relocate(src, dst ssd.PPN) {
	meta, ok := m.pages[src]
	if !ok {
		return
	}
	delete(m.pages, src)
	m.pages[dst] = meta
	m.byHash[meta.hash] = dst
	for _, lpn := range meta.lpns {
		m.l2p.Set(int64(lpn), dst)
	}
}

// LivePages returns the number of live (deduplicated) physical pages.
func (m *Mapper) LivePages() int { return len(m.pages) }
