package dedup

import (
	"math/rand"
	"testing"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

func h(id uint64) trace.Hash { return trace.HashOfValue(id) }

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(0); err == nil {
		t.Error("accepted zero logical pages")
	}
	m, err := NewMapper(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.LogicalPages() != 100 {
		t.Errorf("LogicalPages = %d", m.LogicalPages())
	}
}

func TestBindNewAndLookup(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(3, 70, h(1))
	if ppn, ok := m.Lookup(3); !ok || ppn != 70 {
		t.Fatalf("Lookup = (%d,%v)", ppn, ok)
	}
	if ppn, ok := m.LiveValue(h(1)); !ok || ppn != 70 {
		t.Fatalf("LiveValue = (%d,%v)", ppn, ok)
	}
	if m.RefCount(70) != 1 {
		t.Errorf("RefCount = %d, want 1", m.RefCount(70))
	}
	if v, ok := m.ValueOf(70); !ok || v != h(1) {
		t.Errorf("ValueOf = (%v,%v)", v, ok)
	}
	if m.LivePages() != 1 {
		t.Errorf("LivePages = %d, want 1", m.LivePages())
	}
}

func TestManyToOneMapping(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	m.BindExisting(2, 50)
	m.BindExisting(3, 50)
	if m.RefCount(50) != 3 {
		t.Fatalf("RefCount = %d, want 3", m.RefCount(50))
	}
	for _, lpn := range []ftl.LPN{1, 2, 3} {
		if ppn, _ := m.Lookup(lpn); ppn != 50 {
			t.Fatalf("Lookup(%d) = %d, want 50", lpn, ppn)
		}
	}
	if m.Stats().DedupHits != 2 {
		t.Errorf("DedupHits = %d, want 2", m.Stats().DedupHits)
	}
}

func TestUnbindGarbageOnlyAtLastOwner(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	m.BindExisting(2, 50)

	ppn, hash, garbage, bound := m.Unbind(1)
	if !bound || garbage || ppn != 50 || hash != h(9) {
		t.Fatalf("first Unbind = (%d,%v,garbage=%v,bound=%v)", ppn, hash, garbage, bound)
	}
	if _, ok := m.LiveValue(h(9)); !ok {
		t.Fatal("value dropped from live index while owners remain")
	}

	ppn, hash, garbage, bound = m.Unbind(2)
	if !bound || !garbage || ppn != 50 || hash != h(9) {
		t.Fatalf("last Unbind = (%d,%v,garbage=%v,bound=%v)", ppn, hash, garbage, bound)
	}
	if _, ok := m.LiveValue(h(9)); ok {
		t.Fatal("garbage value still in live index")
	}
	if m.RefCount(50) != 0 || m.LivePages() != 0 {
		t.Fatal("page metadata survived last unbind")
	}
	if m.Stats().GarbageOut != 1 {
		t.Errorf("GarbageOut = %d, want 1", m.Stats().GarbageOut)
	}
}

func TestUnbindUnmapped(t *testing.T) {
	m, _ := NewMapper(10)
	if _, _, _, bound := m.Unbind(5); bound {
		t.Error("unbinding an unmapped LPN reported bound")
	}
}

func TestRelocateRebindsAllOwners(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	m.BindExisting(2, 50)
	m.BindExisting(3, 50)
	m.Relocate(50, 80)
	for _, lpn := range []ftl.LPN{1, 2, 3} {
		if ppn, _ := m.Lookup(lpn); ppn != 80 {
			t.Fatalf("after relocate, Lookup(%d) = %d, want 80", lpn, ppn)
		}
	}
	if ppn, _ := m.LiveValue(h(9)); ppn != 80 {
		t.Fatalf("LiveValue = %d, want 80", ppn)
	}
	if m.RefCount(50) != 0 || m.RefCount(80) != 3 {
		t.Fatal("refcounts wrong after relocate")
	}
	// Relocating an unknown page is a no-op.
	m.Relocate(1, 2)
	if m.RefCount(2) != 0 {
		t.Error("relocating unknown page created metadata")
	}
}

func TestBindNewPanicsOnDuplicateValue(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	defer func() {
		if recover() == nil {
			t.Error("BindNew of already-live value did not panic")
		}
	}()
	m.BindNew(2, 60, h(9))
}

func TestBindExistingPanicsOnDeadPage(t *testing.T) {
	m, _ := NewMapper(10)
	defer func() {
		if recover() == nil {
			t.Error("BindExisting on non-live page did not panic")
		}
	}()
	m.BindExisting(1, 99)
}

// TestRandomizedConsistency churns the mapper with random bind/unbind/
// relocate traffic and checks global invariants: l2p, per-page owner lists
// and the content index always agree.
func TestRandomizedConsistency(t *testing.T) {
	const lpns = 64
	m, _ := NewMapper(lpns)
	rng := rand.New(rand.NewSource(12))
	nextPPN := ssd.PPN(0)
	for i := 0; i < 20000; i++ {
		lpn := ftl.LPN(rng.Intn(lpns))
		val := h(uint64(rng.Intn(20)))
		// Write path: unbind old, bind to live copy or a new page.
		m.Unbind(lpn)
		if ppn, ok := m.LiveValue(val); ok {
			m.BindExisting(lpn, ppn)
		} else {
			m.BindNew(lpn, nextPPN, val)
			nextPPN++
		}
		if rng.Intn(10) == 0 {
			// Relocate a random live page, as GC would.
			for src := range m.pages {
				m.Relocate(src, nextPPN)
				nextPPN++
				break
			}
		}
		if i%500 == 0 {
			checkConsistency(t, m)
		}
	}
	checkConsistency(t, m)
}

func checkConsistency(t *testing.T, m *Mapper) {
	t.Helper()
	owners := 0
	for ppn, meta := range m.pages {
		if len(meta.lpns) == 0 {
			t.Fatalf("live page %d has no owners", ppn)
		}
		if m.byHash[meta.hash] != ppn {
			t.Fatalf("content index for %v does not point at %d", meta.hash, ppn)
		}
		for _, lpn := range meta.lpns {
			if m.l2p[lpn] != ppn {
				t.Fatalf("owner %d of page %d maps elsewhere (%d)", lpn, ppn, m.l2p[lpn])
			}
			owners++
		}
	}
	if len(m.byHash) != len(m.pages) {
		t.Fatalf("content index size %d != live pages %d", len(m.byHash), len(m.pages))
	}
	mapped := 0
	for _, ppn := range m.l2p {
		if ppn != ssd.InvalidPPN {
			mapped++
		}
	}
	if mapped != owners {
		t.Fatalf("%d mapped LPNs but %d owners recorded", mapped, owners)
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Error("empty stats string")
	}
}
