package dedup

import (
	"errors"
	"math/rand"
	"testing"

	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

func h(id uint64) trace.Hash { return trace.HashOfValue(id) }

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(0); err == nil {
		t.Error("accepted zero logical pages")
	}
	m, err := NewMapper(100)
	if err != nil {
		t.Fatal(err)
	}
	if m.LogicalPages() != 100 {
		t.Errorf("LogicalPages = %d", m.LogicalPages())
	}
}

func TestBindNewAndLookup(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(3, 70, h(1))
	if ppn, ok := m.Lookup(3); !ok || ppn != 70 {
		t.Fatalf("Lookup = (%d,%v)", ppn, ok)
	}
	if ppn, ok := m.LiveValue(h(1)); !ok || ppn != 70 {
		t.Fatalf("LiveValue = (%d,%v)", ppn, ok)
	}
	if m.RefCount(70) != 1 {
		t.Errorf("RefCount = %d, want 1", m.RefCount(70))
	}
	if v, ok := m.ValueOf(70); !ok || v != h(1) {
		t.Errorf("ValueOf = (%v,%v)", v, ok)
	}
	if m.LivePages() != 1 {
		t.Errorf("LivePages = %d, want 1", m.LivePages())
	}
}

func TestManyToOneMapping(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	m.BindExisting(2, 50)
	m.BindExisting(3, 50)
	if m.RefCount(50) != 3 {
		t.Fatalf("RefCount = %d, want 3", m.RefCount(50))
	}
	for _, lpn := range []ftl.LPN{1, 2, 3} {
		if ppn, _ := m.Lookup(lpn); ppn != 50 {
			t.Fatalf("Lookup(%d) = %d, want 50", lpn, ppn)
		}
	}
	if m.Stats().DedupHits != 2 {
		t.Errorf("DedupHits = %d, want 2", m.Stats().DedupHits)
	}
}

func TestUnbindGarbageOnlyAtLastOwner(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	m.BindExisting(2, 50)

	ppn, hash, garbage, bound, err := m.Unbind(1)
	if err != nil || !bound || garbage || ppn != 50 || hash != h(9) {
		t.Fatalf("first Unbind = (%d,%v,garbage=%v,bound=%v,err=%v)", ppn, hash, garbage, bound, err)
	}
	if _, ok := m.LiveValue(h(9)); !ok {
		t.Fatal("value dropped from live index while owners remain")
	}

	ppn, hash, garbage, bound, _ = m.Unbind(2)
	if !bound || !garbage || ppn != 50 || hash != h(9) {
		t.Fatalf("last Unbind = (%d,%v,garbage=%v,bound=%v)", ppn, hash, garbage, bound)
	}
	if _, ok := m.LiveValue(h(9)); ok {
		t.Fatal("garbage value still in live index")
	}
	if m.RefCount(50) != 0 || m.LivePages() != 0 {
		t.Fatal("page metadata survived last unbind")
	}
	if m.Stats().GarbageOut != 1 {
		t.Errorf("GarbageOut = %d, want 1", m.Stats().GarbageOut)
	}
}

func TestUnbindUnmapped(t *testing.T) {
	m, _ := NewMapper(10)
	if _, _, _, bound, err := m.Unbind(5); bound || err != nil {
		t.Errorf("unbinding an unmapped LPN reported (bound=%v, err=%v)", bound, err)
	}
}

func TestRelocateRebindsAllOwners(t *testing.T) {
	m, _ := NewMapper(10)
	m.BindNew(1, 50, h(9))
	m.BindExisting(2, 50)
	m.BindExisting(3, 50)
	m.Relocate(50, 80)
	for _, lpn := range []ftl.LPN{1, 2, 3} {
		if ppn, _ := m.Lookup(lpn); ppn != 80 {
			t.Fatalf("after relocate, Lookup(%d) = %d, want 80", lpn, ppn)
		}
	}
	if ppn, _ := m.LiveValue(h(9)); ppn != 80 {
		t.Fatalf("LiveValue = %d, want 80", ppn)
	}
	if m.RefCount(50) != 0 || m.RefCount(80) != 3 {
		t.Fatal("refcounts wrong after relocate")
	}
	// Relocating an unknown page is a no-op.
	m.Relocate(1, 2)
	if m.RefCount(2) != 0 {
		t.Error("relocating unknown page created metadata")
	}
}

// TestCorruptionShapes walks every metadata-corruption shape the mapper
// detects, checking each reports ErrDedupCorrupt and leaves the mapping
// untouched.
func TestCorruptionShapes(t *testing.T) {
	cases := []struct {
		name string
		run  func(m *Mapper) error
	}{
		{"BindNew duplicate value", func(m *Mapper) error {
			if err := m.BindNew(1, 50, h(9)); err != nil {
				t.Fatal(err)
			}
			return m.BindNew(2, 60, h(9))
		}},
		{"BindNew duplicate page", func(m *Mapper) error {
			if err := m.BindNew(1, 50, h(9)); err != nil {
				t.Fatal(err)
			}
			return m.BindNew(2, 50, h(8))
		}},
		{"BindExisting dead page", func(m *Mapper) error {
			return m.BindExisting(1, 99)
		}},
		{"Unbind dangling index entry", func(m *Mapper) error {
			// Corrupt the mapper directly: an l2p entry pointing at a page
			// with no metadata, the shape a torn metadata update leaves.
			m.l2p.Set(3, 77)
			_, _, _, _, err := m.Unbind(3)
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, _ := NewMapper(10)
			err := c.run(m)
			if !errors.Is(err, ErrDedupCorrupt) {
				t.Fatalf("err = %v, want ErrDedupCorrupt", err)
			}
			// The failing operation must not move the unbind counter (the
			// setup binds legitimately move the bind counters).
			if m.Stats().Unbinds != 0 {
				t.Errorf("corrupt operation recorded an unbind: %+v", m.Stats())
			}
		})
	}
}

// TestRandomizedConsistency churns the mapper with random bind/unbind/
// relocate traffic and checks global invariants: l2p, per-page owner lists
// and the content index always agree.
func TestRandomizedConsistency(t *testing.T) {
	const lpns = 64
	m, _ := NewMapper(lpns)
	rng := rand.New(rand.NewSource(12))
	nextPPN := ssd.PPN(0)
	for i := 0; i < 20000; i++ {
		lpn := ftl.LPN(rng.Intn(lpns))
		val := h(uint64(rng.Intn(20)))
		// Write path: unbind old, bind to live copy or a new page.
		m.Unbind(lpn)
		if ppn, ok := m.LiveValue(val); ok {
			m.BindExisting(lpn, ppn)
		} else {
			m.BindNew(lpn, nextPPN, val)
			nextPPN++
		}
		if rng.Intn(10) == 0 {
			// Relocate a random live page, as GC would.
			for src := range m.pages {
				m.Relocate(src, nextPPN)
				nextPPN++
				break
			}
		}
		if i%500 == 0 {
			checkConsistency(t, m)
		}
	}
	checkConsistency(t, m)
}

func checkConsistency(t *testing.T, m *Mapper) {
	t.Helper()
	owners := 0
	for ppn, meta := range m.pages {
		if len(meta.lpns) == 0 {
			t.Fatalf("live page %d has no owners", ppn)
		}
		if m.byHash[meta.hash] != ppn {
			t.Fatalf("content index for %v does not point at %d", meta.hash, ppn)
		}
		for _, lpn := range meta.lpns {
			if m.l2p.Get(int64(lpn)) != ppn {
				t.Fatalf("owner %d of page %d maps elsewhere (%d)", lpn, ppn, m.l2p.Get(int64(lpn)))
			}
			owners++
		}
	}
	if len(m.byHash) != len(m.pages) {
		t.Fatalf("content index size %d != live pages %d", len(m.byHash), len(m.pages))
	}
	mapped := 0
	m.l2p.ForEach(func(_ int64, ppn ssd.PPN) {
		if ppn != ssd.InvalidPPN {
			mapped++
		}
	})
	if mapped != owners {
		t.Fatalf("%d mapped LPNs but %d owners recorded", mapped, owners)
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Error("empty stats string")
	}
}
