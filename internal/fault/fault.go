// Package fault is the reliability model of the simulated flash: a
// deterministic, seedable plan of ONFI-realistic failures that the FTL
// consults on every program, erase and read. Three failure classes are
// modeled, mirroring what a real controller sees in the status register:
//
//   - program-status failures: the program completed but the status read
//     reports failure; the page contents are untrustworthy, the data must
//     re-land on a fresh page and the block becomes suspect;
//   - erase failures: the block cannot be erased and is retired as bad,
//     permanently shrinking its plane's free pool;
//   - read failures: the raw read exceeds ECC capability and the controller
//     must retry with adjusted thresholds, costing extra read latency.
//
// Failure probabilities optionally scale with a block's erase count
// (Config.WearFactor), so wear-out emerges over the run: young blocks
// almost never fail, cycled ones fail increasingly often.
//
// All randomness comes from a splitmix64 stream seeded by Config.Seed, so
// two runs with the same plan and the same request stream inject byte-for-
// byte identical faults regardless of host, Go version or scheduling. The
// zero Config disables injection entirely; the FTL then performs no draws
// and behaves exactly as a fault-free drive.
package fault

import (
	"errors"
	"fmt"
	"math"
)

// ErrPowerLoss is wrapped by FTL operations interrupted by the plan's
// sudden-power-loss trigger (Config.CrashAtOp). The in-flight operation is
// torn: a mid-write or mid-relocation program leaves an unreadable page, a
// mid-erase leaves the whole block unreadable, and nothing after the crash
// point was acknowledged to the host. Recovery (internal/recovery) rebuilds
// the drive from OOB metadata.
var ErrPowerLoss = errors.New("fault: sudden power loss")

// Defaults applied by Config.WithDefaults when the corresponding field is
// zero and the failure class is enabled.
const (
	// DefaultReadRetries bounds the ECC retry reads issued per failing
	// page read.
	DefaultReadRetries = 3
	// DefaultMaxProgramAttempts bounds how many pages one logical program
	// may burn before the FTL gives up with ErrProgramFault (ftl package).
	DefaultMaxProgramAttempts = 8
)

// Config is the fault plan of one simulated drive. The zero value disables
// every failure class. Probabilities are per operation, before wear
// scaling.
type Config struct {
	// Seed selects the deterministic fault stream. Two devices with equal
	// plans and seeds, driven by the same request sequence, fail
	// identically. Seed 0 is a valid stream (it does not mean "random").
	Seed int64

	// ProgramFailProb is the probability a page program reports a
	// program-status failure.
	ProgramFailProb float64
	// EraseFailProb is the probability a block erase fails, retiring the
	// block as bad.
	EraseFailProb float64
	// ReadFailProb is the probability a page read needs an ECC retry.
	// Every retry is drawn again, so one read can need several.
	ReadFailProb float64

	// ReadRetries bounds the ECC retry reads per failing page read;
	// 0 means DefaultReadRetries when ReadFailProb > 0.
	ReadRetries int
	// MaxProgramAttempts bounds the pages one logical program may try
	// (first attempt + retries) before the FTL reports ErrProgramFault;
	// 0 means DefaultMaxProgramAttempts.
	MaxProgramAttempts int

	// WearFactor scales failure probabilities with block wear: the
	// effective probability is base × (1 + WearFactor × eraseCount),
	// clamped to 1. 0 keeps failures independent of wear.
	WearFactor float64

	// SuspectThreshold retires a block at its next (successful) erase once
	// it has accumulated this many program-status failures — the
	// controller policy of not trusting a block that keeps failing
	// programs. 0 never retires on suspicion alone.
	SuspectThreshold int

	// CrashAtOp arms the sudden-power-loss trigger: power is cut during
	// the Nth flash operation (1-based, counting every read, program and
	// erase the store issues over the device's whole life, preconditioning
	// included). The interrupted operation's page — or, for an erase, its
	// whole block — is torn, and the FTL surfaces ErrPowerLoss. The
	// trigger fires once; after recovery the drive runs on. 0 never
	// crashes and is bit-identical to a plan without the field.
	CrashAtOp int64

	// Integrity arms the stateful RBER accumulation model (retention,
	// read disturb, wear → correctable / uncorrectable reads). The zero
	// value disarms it; see integrity.go.
	Integrity IntegrityConfig

	// DieFailAtOp arms whole-die failure: during the Nth host operation
	// (1-based, counting every host read and write the store serves,
	// preconditioning included) one entire die stops responding — all of
	// its blocks retire at once, their valid pages become unreadable, and
	// only RAIN parity (internal/rain) can bring the data back. The
	// trigger fires once. 0 never fails a die and is bit-identical to a
	// plan without the field.
	DieFailAtOp int64

	// DieFailDie selects which die DieFailAtOp kills: a flat die index in
	// channel → chip → die order, validated against the geometry when the
	// store is built. Ignored while DieFailAtOp is 0.
	DieFailDie int
}

// Enabled reports whether the plan injects any probabilistic faults. The
// crash trigger is deliberately excluded: it needs no random stream, and
// the FTL arms it directly from the config.
func (c Config) Enabled() bool {
	return c.ProgramFailProb > 0 || c.EraseFailProb > 0 || c.ReadFailProb > 0
}

// IntegrityArmed reports whether the stateful RBER model accumulates
// errors. Like the crash trigger it is excluded from Enabled: the
// Estimator draws from its own stream and the FTL arms it directly.
func (c Config) IntegrityArmed() bool { return c.Integrity.Armed() }

// Active reports whether the plan perturbs the drive at all: probabilistic
// faults, the crash trigger, die failure, or the integrity model.
func (c Config) Active() bool {
	return c.Enabled() || c.CrashAtOp > 0 || c.DieFailAtOp > 0 || c.IntegrityArmed()
}

// Validate reports whether the plan is usable. NaN and infinite values are
// rejected explicitly: NaN compares false against every bound, so without
// these checks a NaN probability would slip through and poison every draw.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ProgramFailProb", c.ProgramFailProb},
		{"EraseFailProb", c.EraseFailProb},
		{"ReadFailProb", c.ReadFailProb},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s must be in [0,1], got %g", p.name, p.v)
		}
	}
	if c.ReadRetries < 0 {
		return fmt.Errorf("fault: ReadRetries must be ≥ 0, got %d", c.ReadRetries)
	}
	if c.MaxProgramAttempts < 0 {
		return fmt.Errorf("fault: MaxProgramAttempts must be ≥ 0, got %d", c.MaxProgramAttempts)
	}
	if math.IsNaN(c.WearFactor) || math.IsInf(c.WearFactor, 0) || c.WearFactor < 0 {
		return fmt.Errorf("fault: WearFactor must be finite and ≥ 0, got %g", c.WearFactor)
	}
	if c.SuspectThreshold < 0 {
		return fmt.Errorf("fault: SuspectThreshold must be ≥ 0, got %d", c.SuspectThreshold)
	}
	if c.CrashAtOp < 0 {
		return fmt.Errorf("fault: CrashAtOp must be ≥ 0, got %d", c.CrashAtOp)
	}
	if c.DieFailAtOp < 0 {
		return fmt.Errorf("fault: DieFailAtOp must be ≥ 0, got %d", c.DieFailAtOp)
	}
	if c.DieFailDie < 0 {
		return fmt.Errorf("fault: DieFailDie must be ≥ 0, got %d", c.DieFailDie)
	}
	return c.Integrity.Validate()
}

// WithDefaults returns c with the retry bounds filled in where zero. The
// integrity model additionally fills its ECC boundaries when armed — the
// uncorrectable path charges the full ECC retry ladder, so ReadRetries is
// defaulted for it too.
func (c Config) WithDefaults() Config {
	if c.ReadRetries == 0 && (c.ReadFailProb > 0 || c.IntegrityArmed()) {
		c.ReadRetries = DefaultReadRetries
	}
	if c.MaxProgramAttempts == 0 {
		c.MaxProgramAttempts = DefaultMaxProgramAttempts
	}
	c.Integrity = c.Integrity.WithDefaults()
	return c
}

// Stats counts every fault injected and every recovery action the FTL took.
type Stats struct {
	ProgramFailures int64 // program-status failures reported
	EraseFailures   int64 // erases that failed outright
	ReadRetries     int64 // extra ECC retry reads issued
	RetiredBlocks   int64 // blocks retired as bad (erase failure or suspicion)
	SuspectBlocks   int64 // blocks first marked suspect by a program failure
	Relocations     int64 // programs re-landed on a fresh page after a failure
	GCRelands       int64 // GC relocations re-landed on a fresh block after exhausting one
	DieFailures     int64 // whole dies killed by the DieFailAtOp trigger

	// Integrity-model outcomes (zero while the model is disarmed).
	CorrectableReads   int64 // reads that needed a threshold-shifted retry
	UncorrectableReads int64 // reads that exceeded ECC capability (page data lost)
	RefreshWrites      int64 // pages refresh-relocated by the scrubber
	RevivalsDeclined   int64 // zombie revivals refused on estimated RBER or UECC
}

// Any reports whether any fault activity was recorded.
func (s Stats) Any() bool { return s != Stats{} }

// Sub returns s minus prev, field-wise.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		ProgramFailures: s.ProgramFailures - prev.ProgramFailures,
		EraseFailures:   s.EraseFailures - prev.EraseFailures,
		ReadRetries:     s.ReadRetries - prev.ReadRetries,
		RetiredBlocks:   s.RetiredBlocks - prev.RetiredBlocks,
		SuspectBlocks:   s.SuspectBlocks - prev.SuspectBlocks,
		Relocations:     s.Relocations - prev.Relocations,
		GCRelands:       s.GCRelands - prev.GCRelands,
		DieFailures:     s.DieFailures - prev.DieFailures,

		CorrectableReads:   s.CorrectableReads - prev.CorrectableReads,
		UncorrectableReads: s.UncorrectableReads - prev.UncorrectableReads,
		RefreshWrites:      s.RefreshWrites - prev.RefreshWrites,
		RevivalsDeclined:   s.RevivalsDeclined - prev.RevivalsDeclined,
	}
}

// Injector draws fault decisions from the plan's deterministic stream. It
// is purely a decision-maker: it owns no FTL state and keeps no counters —
// the FTL records the recovery actions it takes. Injector is not safe for
// concurrent use; each simulated device owns one, matching the simulator's
// single-goroutine device contract.
type Injector struct {
	cfg   Config
	state uint64
}

// New returns an Injector for the plan, or nil when the plan injects
// nothing — callers treat a nil Injector as a perfect drive.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.WithDefaults()
	// Seed the splitmix64 state; the golden-ratio offset keeps seed 0 a
	// productive stream.
	return &Injector{cfg: cfg, state: uint64(cfg.Seed) + 0x9e3779b97f4a7c15}
}

// Config returns the plan (with defaults applied) the injector draws from.
func (in *Injector) Config() Config { return in.cfg }

// next64 advances the splitmix64 stream.
func (in *Injector) next64() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns a uniform float64 in [0, 1).
func (in *Injector) draw() float64 {
	return float64(in.next64()>>11) / (1 << 53)
}

// effective scales a base probability by block wear, clamped to 1.
func (in *Injector) effective(base float64, eraseCount int32) float64 {
	p := base * (1 + in.cfg.WearFactor*float64(eraseCount))
	if p > 1 {
		return 1
	}
	return p
}

// decide draws once against the wear-scaled probability. Classes with a
// zero base probability never draw, so enabling one class does not perturb
// another's stream alignment across configurations.
func (in *Injector) decide(base float64, eraseCount int32) bool {
	if base <= 0 {
		return false
	}
	return in.draw() < in.effective(base, eraseCount)
}

// ProgramFails reports whether a program on a block with the given erase
// count reports a program-status failure.
func (in *Injector) ProgramFails(eraseCount int32) bool {
	return in.decide(in.cfg.ProgramFailProb, eraseCount)
}

// EraseFails reports whether an erase of a block with the given erase count
// fails, retiring the block.
func (in *Injector) EraseFails(eraseCount int32) bool {
	return in.decide(in.cfg.EraseFailProb, eraseCount)
}

// ReadFails reports whether a read of a page in a block with the given
// erase count needs an ECC retry. Callers draw again per retry.
func (in *Injector) ReadFails(eraseCount int32) bool {
	return in.decide(in.cfg.ReadFailProb, eraseCount)
}
