package fault

import (
	"math"
	"testing"
)

// FuzzRBEREstimator checks the estimator's contract over arbitrary model
// parameters and page histories: the estimate is never NaN, always in
// [0,1], and monotone non-decreasing in age, block reads and block erases.
func FuzzRBEREstimator(f *testing.F) {
	f.Add(1e-4, 2.0, 1e-3, 0.05, int64(1_000_000), int64(100), int32(10))
	f.Add(1e-4, 6.0, 2e-4, 0.02, int64(9_000_000), int64(5000), int32(200))
	f.Add(0.0, 0.0, 0.0, 0.0, int64(0), int64(0), int32(0))
	f.Add(1.0, 1e18, 1e18, 1e18, int64(math.MaxInt64), int64(math.MaxInt64), int32(math.MaxInt32))
	f.Add(1e-9, 0.5, 0.0, 0.0, int64(-1000), int64(-7), int32(-3))
	f.Fuzz(func(t *testing.T, base, retention, disturb, wear float64, age, reads int64, erases int32) {
		cfg := Config{Integrity: IntegrityConfig{
			BaseRBER:        base,
			RetentionRate:   retention,
			ReadDisturbRate: disturb,
			WearRate:        wear,
		}}
		if cfg.Validate() != nil {
			t.Skip() // rejected plans never reach the estimator
		}
		e := NewEstimator(cfg)
		if e == nil {
			if !cfg.IntegrityArmed() {
				return // disarmed plans build no estimator, by contract
			}
			t.Fatal("armed plan built a nil estimator")
		}
		r := e.RBER(age, reads, erases)
		if math.IsNaN(r) {
			t.Fatalf("RBER(%d, %d, %d) = NaN", age, reads, erases)
		}
		if r < 0 || r > 1 {
			t.Fatalf("RBER(%d, %d, %d) = %g outside [0,1]", age, reads, erases, r)
		}
		if age < math.MaxInt64-2_000_000 {
			if r2 := e.RBER(age+1_000_000, reads, erases); r2 < r {
				t.Fatalf("RBER not monotone in age: %g then %g", r, r2)
			}
		}
		if reads < math.MaxInt64-2 {
			if r2 := e.RBER(age, reads+1, erases); r2 < r {
				t.Fatalf("RBER not monotone in reads: %g then %g", r, r2)
			}
		}
		if erases < math.MaxInt32-2 {
			if r2 := e.RBER(age, reads, erases+1); r2 < r {
				t.Fatalf("RBER not monotone in erases: %g then %g", r, r2)
			}
		}
		// Classification of any finite estimate terminates in a valid class
		// and never reports uncorrectable below the uncorrectable boundary.
		switch cls := e.Classify(r); cls {
		case ReadClean, ReadCorrectable, ReadUncorrectable:
			if cls == ReadUncorrectable && r < e.Config().UncorrectableRBER {
				t.Fatalf("uncorrectable at RBER %g below boundary %g", r, e.Config().UncorrectableRBER)
			}
		default:
			t.Fatalf("Classify returned unknown class %v", cls)
		}
	})
}
