package fault

import "testing"

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{ProgramFailProb: 0.01, EraseFailProb: 0.001, ReadFailProb: 0.1, Seed: 7},
		{ProgramFailProb: 1, WearFactor: 0.5, SuspectThreshold: 3},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: rejected valid config: %v", i, err)
		}
	}
	bad := []Config{
		{ProgramFailProb: -0.1},
		{EraseFailProb: 1.5},
		{ReadFailProb: 2},
		{ReadRetries: -1},
		{MaxProgramAttempts: -2},
		{WearFactor: -1},
		{SuspectThreshold: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config %+v", i, c)
		}
	}
}

func TestEnabledAndNilInjector(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if New(Config{}) != nil {
		t.Error("zero config built a non-nil injector")
	}
	if New(Config{WearFactor: 1}) != nil {
		t.Error("wear factor alone (no failure class) built an injector")
	}
	if New(Config{ReadFailProb: 0.1}) == nil {
		t.Error("enabled config built a nil injector")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{ReadFailProb: 0.5}.WithDefaults()
	if c.ReadRetries != DefaultReadRetries {
		t.Errorf("ReadRetries = %d, want default %d", c.ReadRetries, DefaultReadRetries)
	}
	if c.MaxProgramAttempts != DefaultMaxProgramAttempts {
		t.Errorf("MaxProgramAttempts = %d, want default %d", c.MaxProgramAttempts, DefaultMaxProgramAttempts)
	}
	c = Config{ReadFailProb: 0.5, ReadRetries: 7, MaxProgramAttempts: 2}.WithDefaults()
	if c.ReadRetries != 7 || c.MaxProgramAttempts != 2 {
		t.Errorf("explicit bounds overwritten: %+v", c)
	}
	// Reads disabled: no retry default is forced in.
	if c := (Config{ProgramFailProb: 0.1}).WithDefaults(); c.ReadRetries != 0 {
		t.Errorf("ReadRetries defaulted to %d with reads disabled", c.ReadRetries)
	}
}

// TestDeterministicStream pins the contract the simulator's reproducibility
// rests on: equal seeds ⇒ identical decision sequences, and the sequence
// depends only on the draws made.
func TestDeterministicStream(t *testing.T) {
	cfg := Config{Seed: 42, ProgramFailProb: 0.3, EraseFailProb: 0.2, ReadFailProb: 0.4}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 10_000; i++ {
		if a.ProgramFails(5) != b.ProgramFails(5) {
			t.Fatalf("program decision %d diverged between equal seeds", i)
		}
		if a.EraseFails(9) != b.EraseFails(9) {
			t.Fatalf("erase decision %d diverged between equal seeds", i)
		}
		if a.ReadFails(1) != b.ReadFails(1) {
			t.Fatalf("read decision %d diverged between equal seeds", i)
		}
	}

	// Different seeds must (with overwhelming probability) diverge.
	c := New(Config{Seed: 43, ProgramFailProb: 0.3})
	d := New(Config{Seed: 42, ProgramFailProb: 0.3})
	diverged := false
	for i := 0; i < 1000; i++ {
		if c.ProgramFails(0) != d.ProgramFails(0) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical 1000-decision streams")
	}
}

// TestFailureRateTracksProbability checks the stream is unbiased enough for
// rates to be configured meaningfully.
func TestFailureRateTracksProbability(t *testing.T) {
	const n = 200_000
	for _, p := range []float64{0.01, 0.25, 0.9} {
		in := New(Config{Seed: 1, ProgramFailProb: p})
		fails := 0
		for i := 0; i < n; i++ {
			if in.ProgramFails(0) {
				fails++
			}
		}
		got := float64(fails) / n
		if got < p*0.9-0.005 || got > p*1.1+0.005 {
			t.Errorf("p=%g: observed failure rate %g outside ±10%%", p, got)
		}
	}
}

// TestWearScaling checks that erase count raises the effective failure rate
// and that scaling clamps at certainty.
func TestWearScaling(t *testing.T) {
	const n = 100_000
	rate := func(eraseCount int32) float64 {
		in := New(Config{Seed: 5, EraseFailProb: 0.01, WearFactor: 0.5})
		fails := 0
		for i := 0; i < n; i++ {
			if in.EraseFails(eraseCount) {
				fails++
			}
		}
		return float64(fails) / n
	}
	young, worn := rate(0), rate(40) // 0.01 vs 0.01×21 = 0.21
	if worn < young*5 {
		t.Errorf("wear scaling too weak: young %g, worn %g", young, worn)
	}
	// 1000 erases at factor 0.5 pushes 0.01 past 1: every erase fails.
	in := New(Config{Seed: 5, EraseFailProb: 0.01, WearFactor: 0.5})
	for i := 0; i < 1000; i++ {
		if !in.EraseFails(1000) {
			t.Fatal("clamped-to-certainty erase did not fail")
		}
	}
}

// TestZeroClassDrawsNothing: a class with zero base probability must not
// consume stream draws, so enabling reads alone leaves the read stream
// identical to a plan that also injects programs.
func TestZeroClassDrawsNothing(t *testing.T) {
	a := New(Config{Seed: 9, ReadFailProb: 0.5})
	b := New(Config{Seed: 9, ReadFailProb: 0.5, ProgramFailProb: 0})
	for i := 0; i < 1000; i++ {
		if b.ProgramFails(0) {
			t.Fatal("zero-probability class failed")
		}
		if a.ReadFails(0) != b.ReadFails(0) {
			t.Fatalf("read stream %d perturbed by zero-probability class", i)
		}
	}
}

func TestStatsSubAndAny(t *testing.T) {
	if (Stats{}).Any() {
		t.Error("zero stats report activity")
	}
	s := Stats{ProgramFailures: 5, EraseFailures: 2, ReadRetries: 9, RetiredBlocks: 1, SuspectBlocks: 3, Relocations: 4}
	if !s.Any() {
		t.Error("nonzero stats report no activity")
	}
	d := s.Sub(Stats{ProgramFailures: 1, ReadRetries: 4, Relocations: 2})
	want := Stats{ProgramFailures: 4, EraseFailures: 2, ReadRetries: 5, RetiredBlocks: 1, SuspectBlocks: 3, Relocations: 2}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
}
