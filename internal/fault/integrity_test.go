package fault

import (
	"math"
	"testing"
)

func TestIntegrityConfigValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		cfg  IntegrityConfig
		ok   bool
	}{
		{"zero (disarmed)", IntegrityConfig{}, true},
		{"armed defaults", IntegrityConfig{BaseRBER: 1e-4}, true},
		{"armed full", IntegrityConfig{BaseRBER: 1e-4, RetentionRate: 2, ReadDisturbRate: 1e-3,
			WearRate: 0.05, CorrectableRBER: 1e-3, UncorrectableRBER: 5e-3, RevivalRBERLimit: 2e-3}, true},
		{"negative base", IntegrityConfig{BaseRBER: -1e-4}, false},
		{"base above one", IntegrityConfig{BaseRBER: 1.5}, false},
		{"NaN base", IntegrityConfig{BaseRBER: nan}, false},
		{"NaN retention", IntegrityConfig{BaseRBER: 1e-4, RetentionRate: nan}, false},
		{"Inf read disturb", IntegrityConfig{BaseRBER: 1e-4, ReadDisturbRate: inf}, false},
		{"negative wear", IntegrityConfig{BaseRBER: 1e-4, WearRate: -0.1}, false},
		{"NaN correctable", IntegrityConfig{BaseRBER: 1e-4, CorrectableRBER: nan}, false},
		{"negative revival limit", IntegrityConfig{BaseRBER: 1e-4, RevivalRBERLimit: -1}, false},
		{"uncorrectable below correctable", IntegrityConfig{BaseRBER: 1e-4,
			CorrectableRBER: 5e-3, UncorrectableRBER: 1e-3}, false},
		{"uncorrectable equal correctable", IntegrityConfig{BaseRBER: 1e-4,
			CorrectableRBER: 2e-3, UncorrectableRBER: 2e-3}, false},
		{"defaulted uncorrectable below explicit correctable", IntegrityConfig{BaseRBER: 1e-4,
			CorrectableRBER: 0.5}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: rejected valid config: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted invalid config %+v", tc.name, tc.cfg)
		}
	}
}

func TestIntegrityConfigWithDefaults(t *testing.T) {
	// The zero config must stay the zero value so disarmed stays disarmed.
	if d := (IntegrityConfig{}).WithDefaults(); d != (IntegrityConfig{}) {
		t.Errorf("zero config gained defaults: %+v", d)
	}
	d := IntegrityConfig{BaseRBER: 1e-4}.WithDefaults()
	if d.CorrectableRBER != DefaultCorrectableRBER {
		t.Errorf("CorrectableRBER = %g, want default %g", d.CorrectableRBER, DefaultCorrectableRBER)
	}
	if d.UncorrectableRBER != DefaultUncorrectableRBER {
		t.Errorf("UncorrectableRBER = %g, want default %g", d.UncorrectableRBER, DefaultUncorrectableRBER)
	}
	if d.RevivalRBERLimit != d.UncorrectableRBER {
		t.Errorf("RevivalRBERLimit = %g, want the uncorrectable boundary %g", d.RevivalRBERLimit, d.UncorrectableRBER)
	}
	// Explicit boundaries survive.
	d = IntegrityConfig{BaseRBER: 1e-4, CorrectableRBER: 2e-3, UncorrectableRBER: 9e-3, RevivalRBERLimit: 3e-3}.WithDefaults()
	if d.CorrectableRBER != 2e-3 || d.UncorrectableRBER != 9e-3 || d.RevivalRBERLimit != 3e-3 {
		t.Errorf("explicit boundaries overwritten: %+v", d)
	}
}

// TestConfigValidateRejectsNaN pins the fix for the silent-NaN hole: NaN
// compares false against both bounds of [0,1], so without an explicit check
// a NaN probability validated fine and then poisoned every draw.
func TestConfigValidateRejectsNaN(t *testing.T) {
	nan := math.NaN()
	bad := []Config{
		{ProgramFailProb: nan},
		{EraseFailProb: nan},
		{ReadFailProb: nan},
		{WearFactor: nan},
		{WearFactor: math.Inf(1)},
		{Integrity: IntegrityConfig{BaseRBER: nan}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted NaN/Inf config %+v", i, c)
		}
	}
}

// TestWithDefaultsIntegrityInterplay pins the ReadRetries defaulting rule:
// the retry bound is filled in when either the probabilistic read class or
// the integrity model needs the ECC retry ladder, and an explicit value is
// never overwritten.
func TestWithDefaultsIntegrityInterplay(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want int
	}{
		{"nothing armed", Config{}, 0},
		{"program faults only", Config{ProgramFailProb: 0.1}, 0},
		{"read faults armed", Config{ReadFailProb: 0.1}, DefaultReadRetries},
		{"integrity armed", Config{Integrity: IntegrityConfig{BaseRBER: 1e-4}}, DefaultReadRetries},
		{"integrity armed, explicit retries", Config{ReadRetries: 5,
			Integrity: IntegrityConfig{BaseRBER: 1e-4}}, 5},
		{"both armed", Config{ReadFailProb: 0.1, Integrity: IntegrityConfig{BaseRBER: 1e-4}}, DefaultReadRetries},
	}
	for _, tc := range cases {
		if got := tc.cfg.WithDefaults().ReadRetries; got != tc.want {
			t.Errorf("%s: ReadRetries = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Integrity defaults propagate through the outer WithDefaults.
	d := Config{Integrity: IntegrityConfig{BaseRBER: 1e-4}}.WithDefaults()
	if d.Integrity.UncorrectableRBER != DefaultUncorrectableRBER {
		t.Errorf("outer WithDefaults left integrity boundaries unset: %+v", d.Integrity)
	}
}

func TestActiveAndArmed(t *testing.T) {
	if (Config{}).Active() {
		t.Error("zero config reports active")
	}
	if !(Config{CrashAtOp: 5}).Active() {
		t.Error("crash trigger not active")
	}
	c := Config{Integrity: IntegrityConfig{BaseRBER: 1e-4}}
	if !c.IntegrityArmed() || !c.Active() {
		t.Error("armed integrity model not active")
	}
	if c.Enabled() {
		t.Error("integrity alone must not enable the probabilistic injector")
	}
}

func TestEstimatorDisarmedIsNil(t *testing.T) {
	if NewEstimator(Config{}) != nil {
		t.Error("disarmed config built a non-nil estimator")
	}
	var e *Estimator
	if got := e.RBER(1e9, 1e6, 1000); got != 0 {
		t.Errorf("nil estimator RBER = %g, want 0", got)
	}
	if got := e.Classify(0.5); got != ReadClean {
		t.Errorf("nil estimator Classify = %v, want clean", got)
	}
}

func TestRBERMonotoneAndClamped(t *testing.T) {
	e := NewEstimator(Config{Integrity: IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: 2, ReadDisturbRate: 1e-3, WearRate: 0.05}})
	if got := e.RBER(0, 0, 0); got != 1e-4 {
		t.Errorf("fresh-page RBER = %g, want the base %g", got, 1e-4)
	}
	prev := 0.0
	for _, age := range []int64{0, 1e6, 5e6, 1e9, 1e15} {
		r := e.RBER(age, 0, 0)
		if r < prev {
			t.Fatalf("RBER not monotone in age: %g after %g", r, prev)
		}
		prev = r
	}
	if r := e.RBER(1e18, 1e12, math.MaxInt32); r != 1 {
		t.Errorf("extreme inputs RBER = %g, want clamp to 1", r)
	}
	if r := e.RBER(-5, -5, -5); r != 1e-4 {
		t.Errorf("negative inputs RBER = %g, want the base (they contribute nothing)", r)
	}
	if math.IsNaN(e.RBER(math.MaxInt64, math.MaxInt64, math.MaxInt32)) {
		t.Error("RBER produced NaN")
	}
}

func TestClassifyBandsAndDrawDiscipline(t *testing.T) {
	cfg := Config{Seed: 3, Integrity: IntegrityConfig{BaseRBER: 1e-4}}
	e := NewEstimator(cfg)
	c, u := e.Config().CorrectableRBER, e.Config().UncorrectableRBER

	// At or below the correctable boundary: clean, and no draw consumed —
	// the stream stays aligned with a fresh estimator.
	for i := 0; i < 100; i++ {
		if got := e.Classify(c); got != ReadClean {
			t.Fatalf("Classify(correctable boundary) = %v, want clean", got)
		}
	}
	f := NewEstimator(cfg)
	if e.state != f.state {
		t.Fatal("clean classifications consumed draws")
	}

	// Exactly at the uncorrectable boundary: correctable for certain, no draw.
	for i := 0; i < 100; i++ {
		if got := e.Classify(u); got != ReadCorrectable {
			t.Fatalf("Classify(uncorrectable boundary) = %v, want correctable", got)
		}
	}
	if e.state != f.state {
		t.Fatal("boundary classifications consumed draws")
	}

	// At and beyond certain failure: uncorrectable, no draw.
	for _, r := range []float64{2 * u, 3 * u, 1} {
		if got := e.Classify(r); got != ReadUncorrectable {
			t.Fatalf("Classify(%g) = %v, want uncorrectable", r, got)
		}
	}
	if e.state != f.state {
		t.Fatal("certain-failure classifications consumed draws")
	}

	// Inside the stochastic bands the outcome rate tracks the ramp.
	const n = 100_000
	mid := (c + u) / 2
	correctable := 0
	for i := 0; i < n; i++ {
		switch e.Classify(mid) {
		case ReadCorrectable:
			correctable++
		case ReadUncorrectable:
			t.Fatal("uncorrectable below the uncorrectable boundary")
		}
	}
	if rate := float64(correctable) / n; rate < 0.45 || rate > 0.55 {
		t.Errorf("mid-band correctable rate = %g, want ≈0.5", rate)
	}
	uecc := 0
	for i := 0; i < n; i++ {
		switch e.Classify(1.5 * u) {
		case ReadUncorrectable:
			uecc++
		case ReadClean:
			t.Fatal("clean above the uncorrectable boundary")
		}
	}
	if rate := float64(uecc) / n; rate < 0.45 || rate > 0.55 {
		t.Errorf("1.5×U uncorrectable rate = %g, want ≈0.5", rate)
	}
}

// TestEstimatorStreamIndependence pins the seeding discipline: arming the
// integrity model must not shift the Injector's stream, and equal seeds
// give equal estimator streams.
func TestEstimatorStreamIndependence(t *testing.T) {
	plain := New(Config{Seed: 11, ReadFailProb: 0.5})
	armed := New(Config{Seed: 11, ReadFailProb: 0.5, Integrity: IntegrityConfig{BaseRBER: 1e-4}})
	for i := 0; i < 1000; i++ {
		if plain.ReadFails(0) != armed.ReadFails(0) {
			t.Fatalf("injector stream %d shifted by arming integrity", i)
		}
	}
	cfg := Config{Seed: 11, Integrity: IntegrityConfig{BaseRBER: 1e-4}}
	a, b := NewEstimator(cfg), NewEstimator(cfg)
	mid := (a.Config().CorrectableRBER + a.Config().UncorrectableRBER) / 2
	for i := 0; i < 1000; i++ {
		if a.Classify(mid) != b.Classify(mid) {
			t.Fatalf("estimator decision %d diverged between equal seeds", i)
		}
	}
}

func TestIntegrityStatsSub(t *testing.T) {
	s := Stats{CorrectableReads: 7, UncorrectableReads: 3, RefreshWrites: 10, RevivalsDeclined: 4}
	d := s.Sub(Stats{CorrectableReads: 2, UncorrectableReads: 1, RefreshWrites: 4, RevivalsDeclined: 4})
	want := Stats{CorrectableReads: 5, UncorrectableReads: 2, RefreshWrites: 6}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
	if !s.Any() {
		t.Error("integrity-only stats report no activity")
	}
}
