// Integrity is the stateful half of the reliability model: where the
// Injector flips memoryless coins, the Estimator turns a page's *history*
// — retention age, read disturb, block wear — into a raw bit error rate
// (RBER) and classifies every read against the drive's ECC capability.
// This is what makes zombie revival risky: a page the dead-value pool
// kept resident for seconds of simulated time has been decaying the whole
// while, and flipping it back to valid does not refresh its charge.
//
// The model is the standard multiplicative accumulation used by FTL
// reliability studies:
//
//	RBER(page) = BaseRBER × (1 + RetentionRate  × ageSeconds)
//	                      × (1 + ReadDisturbRate × blockReads)
//	                      × (1 + WearRate        × blockErases)
//
// clamped to [0,1]. Reads whose RBER stays at or below CorrectableRBER
// are clean. Between CorrectableRBER and UncorrectableRBER the ECC engine
// needs a threshold-shifted retry with rising probability; at and beyond
// UncorrectableRBER the read risks exceeding ECC capability entirely
// (certain at 2× UncorrectableRBER) and the data on the page is lost.
//
// Classification draws come from the Estimator's own splitmix64 stream,
// seeded from Config.Seed at a fixed offset, so arming integrity does not
// shift the Injector's stream and the two models compose deterministically.
// Reads outside the stochastic bands perform no draw at all, preserving
// the package's stream-alignment discipline: a run where no page ever
// enters a band is bit-identical to one with integrity disarmed.
package fault

import (
	"fmt"
	"math"
)

// Defaults applied by IntegrityConfig when the model is armed and the
// corresponding field is zero.
const (
	// DefaultCorrectableRBER is the RBER at which ECC starts needing
	// threshold-shifted retry reads.
	DefaultCorrectableRBER = 1e-3
	// DefaultUncorrectableRBER is the RBER at which a read first risks
	// exceeding ECC capability; failure is certain at twice this value.
	DefaultUncorrectableRBER = 4e-3
)

// IntegrityConfig parameterizes the per-page RBER accumulation model. The
// zero value disarms it entirely: no timestamps are kept, no draws are
// made, and the drive behaves exactly as before the model existed.
type IntegrityConfig struct {
	// BaseRBER is the raw bit error rate of a freshly-programmed page on
	// a pristine block. 0 disarms the whole model.
	BaseRBER float64

	// RetentionRate grows RBER with the page's age: each simulated second
	// since the program multiplies the base by (1 + RetentionRate × age).
	RetentionRate float64
	// ReadDisturbRate grows RBER with reads anywhere in the page's block
	// since its last erase.
	ReadDisturbRate float64
	// WearRate grows RBER with the block's cumulative erase count.
	WearRate float64

	// CorrectableRBER is the clean/correctable boundary; 0 means
	// DefaultCorrectableRBER.
	CorrectableRBER float64
	// UncorrectableRBER is the RBER at which reads start going
	// uncorrectable; 0 means DefaultUncorrectableRBER. Must exceed
	// CorrectableRBER.
	UncorrectableRBER float64

	// RevivalRBERLimit is the estimated-RBER ceiling above which the FTL
	// declines to revive a zombie page and the host write falls through
	// to a normal program; 0 means UncorrectableRBER.
	RevivalRBERLimit float64
}

// Armed reports whether the model accumulates errors at all.
func (c IntegrityConfig) Armed() bool { return c.BaseRBER > 0 }

// Validate reports whether the model's parameters are usable.
func (c IntegrityConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BaseRBER", c.BaseRBER},
		{"RetentionRate", c.RetentionRate},
		{"ReadDisturbRate", c.ReadDisturbRate},
		{"WearRate", c.WearRate},
		{"CorrectableRBER", c.CorrectableRBER},
		{"UncorrectableRBER", c.UncorrectableRBER},
		{"RevivalRBERLimit", c.RevivalRBERLimit},
	} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("fault: integrity %s must be finite, got %g", p.name, p.v)
		}
		if p.v < 0 {
			return fmt.Errorf("fault: integrity %s must be ≥ 0, got %g", p.name, p.v)
		}
	}
	if c.BaseRBER > 1 {
		return fmt.Errorf("fault: integrity BaseRBER must be in [0,1], got %g", c.BaseRBER)
	}
	d := c.WithDefaults()
	if d.Armed() && d.UncorrectableRBER <= d.CorrectableRBER {
		return fmt.Errorf("fault: integrity UncorrectableRBER (%g) must exceed CorrectableRBER (%g)",
			d.UncorrectableRBER, d.CorrectableRBER)
	}
	return nil
}

// WithDefaults returns c with the ECC boundaries filled in where zero.
// The zero (disarmed) config is returned unchanged so it stays the zero
// value.
func (c IntegrityConfig) WithDefaults() IntegrityConfig {
	if !c.Armed() {
		return c
	}
	if c.CorrectableRBER == 0 {
		c.CorrectableRBER = DefaultCorrectableRBER
	}
	if c.UncorrectableRBER == 0 {
		c.UncorrectableRBER = DefaultUncorrectableRBER
	}
	if c.RevivalRBERLimit == 0 {
		c.RevivalRBERLimit = c.UncorrectableRBER
	}
	return c
}

// ReadClass is the ECC outcome of one page read under the integrity model.
type ReadClass int

const (
	// ReadClean decoded on the first attempt.
	ReadClean ReadClass = iota
	// ReadCorrectable needed a threshold-shifted retry read.
	ReadCorrectable
	// ReadUncorrectable exceeded ECC capability; the page's data is lost.
	ReadUncorrectable
)

// Estimator evaluates the RBER model and draws read classifications from
// its own deterministic stream. Like the Injector it owns no FTL state:
// the store supplies age, read and erase counts and records the outcomes.
// Not safe for concurrent use.
type Estimator struct {
	cfg   IntegrityConfig
	state uint64
}

// estimatorSeedOffset separates the Estimator's splitmix64 stream from
// the Injector's, which seeds at the plain golden-ratio offset.
const estimatorSeedOffset = 0x6a09e667f3bcc909 // frac(sqrt(2)) — SHA-2 H0

// NewEstimator returns an Estimator for the plan, or nil when the model
// is disarmed — callers treat a nil Estimator as a decay-free drive.
func NewEstimator(cfg Config) *Estimator {
	ic := cfg.Integrity
	if !ic.Armed() {
		return nil
	}
	return &Estimator{
		cfg:   ic.WithDefaults(),
		state: uint64(cfg.Seed) + estimatorSeedOffset,
	}
}

// Config returns the model (with defaults applied) the estimator uses.
func (e *Estimator) Config() IntegrityConfig { return e.cfg }

// next64 advances the estimator's splitmix64 stream.
func (e *Estimator) next64() uint64 {
	e.state += 0x9e3779b97f4a7c15
	z := e.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns a uniform float64 in [0, 1).
func (e *Estimator) draw() float64 {
	return float64(e.next64()>>11) / (1 << 53)
}

// RBER estimates the raw bit error rate of a page that was programmed
// ageMicros microseconds ago, whose block has served reads reads since
// its last erase and has been erased erases times. The result is
// monotone non-decreasing in each argument, never NaN, and clamped to
// [0,1]; negative inputs (which cannot arise from a well-formed store)
// contribute nothing rather than producing a negative rate.
func (e *Estimator) RBER(ageMicros, reads int64, erases int32) float64 {
	if e == nil {
		return 0
	}
	r := e.cfg.BaseRBER
	r *= 1 + e.cfg.RetentionRate*(float64(max64(ageMicros, 0))/1e6)
	r *= 1 + e.cfg.ReadDisturbRate*float64(max64(reads, 0))
	r *= 1 + e.cfg.WearRate*float64(max64(int64(erases), 0))
	// The factors are finite and ≥ 1, but huge inputs can overflow to
	// +Inf; the clamp keeps the result a probability either way.
	if r > 1 || math.IsInf(r, 1) {
		return 1
	}
	return r
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Classify maps an estimated RBER to a read outcome. Reads at or below
// the correctable boundary are clean without consuming a draw; inside
// (correctable, uncorrectable) one draw decides clean vs correctable on a
// linear ramp; at and above the uncorrectable boundary one draw decides
// correctable vs uncorrectable, with failure certain at twice the
// boundary. Deterministic given the sequence of calls.
func (e *Estimator) Classify(rber float64) ReadClass {
	if e == nil || rber <= e.cfg.CorrectableRBER {
		return ReadClean
	}
	c, u := e.cfg.CorrectableRBER, e.cfg.UncorrectableRBER
	if rber < u {
		if e.draw() < (rber-c)/(u-c) {
			return ReadCorrectable
		}
		return ReadClean
	}
	pUE := rber/u - 1
	if pUE >= 1 {
		return ReadUncorrectable
	}
	if pUE <= 0 {
		// Exactly at the boundary: correctable for certain, no draw.
		return ReadCorrectable
	}
	if e.draw() < pUE {
		return ReadUncorrectable
	}
	return ReadCorrectable
}
