package experiments

import (
	"fmt"

	"zombiessd/internal/fault"
	"zombiessd/internal/sim"
	"zombiessd/internal/stats"
)

// ------------------------------------------------------- fault tolerance --

// AblationFaultsRow is one fault-rate point: a baseline and a DVP-200K
// drive run under the same fault plan, so the write-reduction and tail
// numbers show how the zombie-revival benefit holds up as flash degrades.
type AblationFaultsRow struct {
	ProgramFailProb float64
	WriteRedPct     float64 // DVP vs the same-rate baseline
	P99             int64   // DVP p99 latency
	ReadRetries     int64   // DVP: extra ECC retry reads
	RetiredBlocks   int64   // DVP: blocks retired as bad
	Relocations     int64   // DVP: programs re-landed after a failure
}

// AblationFaultsResult sweeps the fault rate on the web workload.
type AblationFaultsResult struct{ Rows []AblationFaultsRow }

// RunAblationFaults measures how write reduction and p99 hold up as the
// fault rate rises. Each point injects program-status failures at the given
// probability, erase failures at half of it and ECC read retries at four
// times it (reads fail far more often than erases on real flash), with mild
// wear scaling so cycled blocks fail more. The rate-0 point is the perfect
// drive every paper figure uses.
func RunAblationFaults(o Options) (*AblationFaultsResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	recs, footprint, err := o.traceFor("web")
	if err != nil {
		return nil, err
	}
	rates := []float64{0, 1e-4, 5e-4, 2e-3}
	var res AblationFaultsResult
	for _, rate := range rates {
		plan := fault.Config{
			Seed:            o.Seed,
			ProgramFailProb: rate,
			EraseFailProb:   rate / 2,
			ReadFailProb:    rate * 4,
			WearFactor:      0.02,
		}
		run := func(kind sim.Kind) (sim.Result, error) {
			cfg := o.deviceConfig(kind, footprint, sim.PoolMQ, 200_000)
			cfg.Faults = plan
			dev, err := sim.NewDevice(cfg)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Run(dev, recs, sim.RunOptions{
				LogicalPages: footprint, PreconditionPages: footprint,
			})
		}
		base, err := run(sim.KindBaseline)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults rate %g baseline: %w", rate, err)
		}
		dvp, err := run(sim.KindDVP)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults rate %g dvp: %w", rate, err)
		}
		f := dvp.Metrics.Faults
		res.Rows = append(res.Rows, AblationFaultsRow{
			ProgramFailProb: rate,
			WriteRedPct: stats.ReductionPct(
				float64(base.Metrics.HostPrograms()), float64(dvp.Metrics.HostPrograms())),
			P99:           dvp.All.P99,
			ReadRetries:   f.ReadRetries,
			RetiredBlocks: f.RetiredBlocks,
			Relocations:   f.Relocations,
		})
	}
	return &res, nil
}

// Table renders the fault-tolerance ablation.
func (r *AblationFaultsResult) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%g", row.ProgramFailProb), pct(row.WriteRedPct),
			usec(float64(row.P99)), i64(row.ReadRetries),
			i64(row.RetiredBlocks), i64(row.Relocations),
		})
	}
	return Table{
		Title:  "Ablation: fault injection (web; DVP-200K vs same-rate baseline)",
		Header: []string{"program-fail prob", "write red.", "DVP p99", "read retries", "retired blocks", "relocations"},
		Rows:   rows,
	}
}

// String renders the fault-tolerance ablation.
func (r *AblationFaultsResult) String() string { return r.Table().String() }
