package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"zombiessd/internal/ftl"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
)

// ------------------------------------------------------ preemptible-GC sweep --

// The gcsweep asks the tail-latency question behind preemptible GC: how
// much of the read tail is host requests stuck behind garbage collection,
// and how much of it do idle-window partial drains and read-over-GC
// suspension claw back? It crosses four GC policies — blocking
// (foreground-only), soft (idle-window background cycles), partial
// (resumable k-page drains) and partial+susp (drains plus erase/program
// suspension) — with the five device architectures on the mail workload,
// reading p99/p99.9 read latency and the gc-blocked attribution phase off
// a per-cell telemetry instance. A multi-tenant arm reruns the
// tenantsweep's antagonist pair (mail victim vs 4×-rate trans antagonist)
// under the blocking and partial+susp policies, showing the antagonist's
// GC no longer inflates the victim's tail.

// gcSweepDivisor shrinks each cell's trace relative to Options.Requests
// (the sweep replays the trace once per cell); the floor keeps enough GC
// cycles in tiny smoke runs for the tail to mean something.
const gcSweepDivisor = 8

const gcSweepFloor = 24_000

// Default policy knobs for the sweep's partial/suspension arms, used when
// the -gc-* flags don't arm a policy of their own.
const (
	// DefaultGCPartialK bounds valid-page migrations per idle window.
	DefaultGCPartialK = 8
	// DefaultGCLookahead is the victims pre-selected per scoring scan.
	DefaultGCLookahead = 2
	// DefaultGCMaxSuspends bounds host-read suspensions per GC op.
	DefaultGCMaxSuspends = 4
	// DefaultGCSoftThreshold is the soft arm's background-GC trigger.
	DefaultGCSoftThreshold = 4
)

// gcSweepUtilization is the footprint : exported-capacity ratio of the
// sweep's drives. The generic matrix default (0.75) barely exercises GC at
// sweep scale; tail-latency policies only separate when foreground GC is a
// steady presence, so the sweep always runs its drives this full.
const gcSweepUtilization = 0.88

// gcSweepGeometry sizes a deliberately small, busy drive for the sweep: a
// 4×2-chip, 16-plane layout whose block count scales with the footprint so
// utilization stays at gcSweepUtilization even at smoke scale (the generic
// sim.GeometryFor floor would balloon a small footprint into an idle
// drive). Less chip parallelism means host reads actually land behind GC —
// the contention preemption is meant to relieve — while staying clear of
// outright saturation at the mail workload's arrival rate.
func gcSweepGeometry(footprintPages int64) ssd.Geometry {
	g := ssd.Geometry{
		Channels:        4,
		ChipsPerChannel: 2,
		DiesPerChip:     1,
		PlanesPerDie:    2,
		PageSize:        4096,
		OverProvision:   0.15,
	}
	planes := int64(g.TotalChips() * g.PlanesPerChip())
	pagesNeeded := float64(footprintPages) / (gcSweepUtilization * (1 - g.OverProvision))
	for _, ppb := range []int{128, 64, 32, 16} {
		g.PagesPerBlock = ppb
		bpp := int(pagesNeeded/float64(planes*int64(ppb))) + 1
		if bpp >= 16 {
			g.BlocksPerPlane = bpp
			return g
		}
	}
	g.PagesPerBlock = 16
	g.BlocksPerPlane = 16
	return g
}

// GCPolicyArm is one GC policy configuration of the sweep.
type GCPolicyArm struct {
	Name    string
	Soft    int // ftl.StoreConfig.SoftGCThreshold
	Preempt ftl.PreemptConfig
}

// gcPolicyArms builds the four policy arms. The partial arms start from
// Options.GCPreempt so explicit -gc-* flags steer the sweep, with the
// sweep's defaults filling whatever the flags leave disarmed; the partial
// (no-suspension) arm always strips the suspension knobs so the two arms
// differ in exactly one mechanism.
func gcPolicyArms(base ftl.PreemptConfig) []GCPolicyArm {
	if !base.PartialEnabled() {
		base.PartialK = DefaultGCPartialK
		base.Lookahead = DefaultGCLookahead
	}
	partial := base
	partial.MaxSuspends, partial.SuspendCost, partial.ResumeCost = 0, 0, 0
	susp := base
	if !susp.SuspendEnabled() {
		susp.MaxSuspends = DefaultGCMaxSuspends
	}
	return []GCPolicyArm{
		{Name: "blocking"},
		{Name: "soft", Soft: DefaultGCSoftThreshold},
		{Name: "partial", Preempt: partial},
		{Name: "partial+susp", Preempt: susp},
	}
}

// GCCell is one (architecture, policy) cell of the single-tenant sweep.
type GCCell struct {
	Arch   string
	Policy string

	// Read-tail metrics from the cell's latency attribution (µs).
	ReadP99  int64
	ReadP999 int64

	// GCBlockedUS is the total gc-blocked attribution across every host
	// request; GCBlockedShare is its fraction of total end-to-end latency.
	GCBlockedUS    int64
	GCBlockedShare float64

	// GC machinery counters for the cell.
	Runs           int64 // victim cycles started (foreground + background + drains)
	Relocated      int64 // valid pages migrated
	PartialWindows int64 // idle windows that advanced a drain
	PartialPages   int64 // pages migrated inside those windows
	Suspensions    int64 // host reads that preempted an in-flight GC op
}

// GCTenantCell is one antagonist-arm cell: the victim/antagonist pair
// under one GC policy.
type GCTenantCell struct {
	Policy  string
	Tenants []sim.TenantResult
}

// GCsweepResult is the rendered outcome of RunGCsweep.
type GCsweepResult struct {
	Workload string
	Requests int64
	Seed     int64
	Policies []string
	Cells    []GCCell
	Antag    []GCTenantCell
}

// gcCellTelemetry builds the per-cell observability instance: registry and
// attribution live, tracer off (the sweep only reads histograms and phase
// sums, and cells are many).
func gcCellTelemetry() *telemetry.Telemetry {
	return telemetry.New(telemetry.Config{Enabled: true, TraceCap: -1})
}

// RunGCsweep crosses the four GC policies with the five architectures on
// the mail workload, plus the antagonist pair under the bracketing
// policies. Cells are independent simulations spread across Options.Jobs
// workers and keyed by index, so the output is byte-identical for every
// worker count.
func RunGCsweep(o Options) (*GCsweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	small := o
	small.Requests = o.Requests / gcSweepDivisor
	if small.Requests < gcSweepFloor {
		small.Requests = gcSweepFloor
	}
	if small.Requests > o.Requests {
		small.Requests = o.Requests
	}
	const workloadName = "mail"
	recs, footprint, err := small.traceFor(workloadName)
	if err != nil {
		return nil, err
	}
	arms := gcPolicyArms(o.GCPreempt)

	type cellSpec struct {
		arch string
		kind sim.Kind
		arm  GCPolicyArm
	}
	var cells []cellSpec
	for _, a := range tenantArchKinds {
		for _, arm := range arms {
			cells = append(cells, cellSpec{arch: a.name, kind: a.kind, arm: arm})
		}
	}
	// Antagonist arm: the bracketing policies only — the question is
	// whether preemption restores isolation, not the full policy ladder.
	antagArms := []GCPolicyArm{arms[0], arms[len(arms)-1]}

	configFor := func(kind sim.Kind, arm GCPolicyArm, fp int64) sim.Config {
		cfg := small.deviceConfig(kind, fp, sim.PoolMQ, 200_000)
		cfg.Geometry = gcSweepGeometry(fp)
		cfg.Store.SoftGCThreshold = arm.Soft
		cfg.Store.Preempt = arm.Preempt
		return cfg
	}

	runCell := func(c cellSpec) (GCCell, error) {
		cfg := configFor(c.kind, c.arm, footprint)
		tel := gcCellTelemetry()
		cfg.Telemetry = tel
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			return GCCell{}, err
		}
		res, err := sim.Run(dev, recs, sim.RunOptions{
			LogicalPages:      footprint,
			PreconditionPages: footprint,
		})
		if err != nil {
			return GCCell{}, err
		}
		attr := tel.Attribution()
		phases, latSum := attr.Totals()
		blocked := phases[telemetry.PhaseGCBlocked]
		share := 0.0
		if latSum > 0 {
			share = float64(blocked) / float64(latSum)
		}
		reads := attr.E2E(telemetry.ReqRead)
		return GCCell{
			Arch:           c.arch,
			Policy:         c.arm.Name,
			ReadP99:        reads.P99(),
			ReadP999:       reads.Quantile(0.999),
			GCBlockedUS:    blocked,
			GCBlockedShare: share,
			Runs:           res.Metrics.GC.Runs,
			Relocated:      res.Metrics.GC.Relocated,
			PartialWindows: res.Metrics.GC.PartialWindows,
			PartialPages:   res.Metrics.GC.PartialPages,
			Suspensions:    res.Metrics.Suspensions,
		}, nil
	}

	runAntag := func(arm GCPolicyArm) (GCTenantCell, error) {
		traces, err := sim.GenerateTenants(antagonistSet(), small.Requests, small.Seed)
		if err != nil {
			return GCTenantCell{}, err
		}
		fp := sim.TotalFootprint(traces)
		cfg := configFor(sim.KindDVP, arm, fp)
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			return GCTenantCell{}, err
		}
		mr, err := sim.RunTenants(dev, traces, sim.EngineOptions{
			Arbiter:           sim.ArbFIFO,
			QueueDepth:        DefaultTenantQueueDepth,
			DeviceSlots:       DefaultTenantQueueDepth,
			PreconditionPages: fp,
			LogicalPages:      fp,
		})
		if err != nil {
			return GCTenantCell{}, err
		}
		return GCTenantCell{Policy: arm.Name, Tenants: mr.Tenants}, nil
	}

	workers := o.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]GCCell, len(cells))
	errs := make([]error, len(cells))
	antagResults := make([]GCTenantCell, len(antagArms))
	antagErrs := make([]error, len(antagArms))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cellSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = runCell(c)
		}(i, c)
	}
	for i, arm := range antagArms {
		wg.Add(1)
		go func(i int, arm GCPolicyArm) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			antagResults[i], antagErrs[i] = runAntag(arm)
		}(i, arm)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: gcsweep %s/%s: %w", cells[i].arch, cells[i].arm.Name, err)
		}
	}
	for i, err := range antagErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: gcsweep antag/%s: %w", antagArms[i].Name, err)
		}
	}

	out := &GCsweepResult{
		Workload: workloadName,
		Requests: small.Requests,
		Seed:     small.Seed,
		Cells:    results,
		Antag:    antagResults,
	}
	for _, arm := range arms {
		out.Policies = append(out.Policies, arm.Name)
	}
	return out, nil
}

// Table renders one row per (architecture, policy) cell followed by the
// antagonist-arm tenant rows.
func (r *GCsweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("GCsweep: read tail vs GC policy (%s, %d requests/cell, seed %d)",
			r.Workload, r.Requests, r.Seed),
		Header: []string{"arch", "policy", "read p99", "read p99.9",
			"gc-blocked", "gc-share", "gc runs", "reloc", "windows", "drained", "suspends"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			c.Arch, c.Policy,
			fmt.Sprintf("%dµs", c.ReadP99),
			fmt.Sprintf("%dµs", c.ReadP999),
			fmt.Sprintf("%dµs", c.GCBlockedUS),
			pct(100 * c.GCBlockedShare),
			i64(c.Runs), i64(c.Relocated),
			i64(c.PartialWindows), i64(c.PartialPages), i64(c.Suspensions),
		})
	}
	for _, a := range r.Antag {
		for _, tr := range a.Tenants {
			t.Rows = append(t.Rows, []string{
				"antag:" + tr.Name, a.Policy,
				fmt.Sprintf("%dµs", tr.Reads.P99),
				fmt.Sprintf("%dµs", tr.P999),
				"-", "-", "-", "-", "-", "-", "-",
			})
		}
	}
	t.Notes = append(t.Notes,
		"policies: blocking = foreground-only GC; soft = idle-window background cycles;",
		"partial = resumable k-page drains per idle window; partial+susp = drains plus read-over-GC suspension.",
		"gc-blocked: host-request wait covered by GC ops (latency attribution phase, summed over all requests).",
		"dvp/antag rows: mail victim vs 4×-rate trans antagonist on the dvp architecture; the victim's",
		"tail should collapse under partial+susp while blocking leaves it inflated by the antagonist's GC.")
	return t
}

// String renders the aligned text table.
func (r *GCsweepResult) String() string { return r.Table().String() }
