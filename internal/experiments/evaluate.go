package experiments

import (
	"zombiessd/internal/stats"
)

// ensureMatrix returns m, or builds the needed slice of the evaluation
// matrix when m is nil.
func ensureMatrix(o Options, m *Matrix, systems []System) (*Matrix, error) {
	if m != nil {
		return m, nil
	}
	return RunMatrix(o, nil, systems)
}

// ---------------------------------------------------------------- Fig 9 --

// Fig9Row is one workload of Fig 9: reduction in host writes vs baseline
// for the three pool sizes and the ideal pool.
type Fig9Row struct {
	Workload                   string
	Red100K, Red200K, Red300K  float64
	RedIdeal                   float64
	BaselineWrites, Writes200K int64
}

// Fig9Result is Fig 9 plus its mean row.
type Fig9Result struct {
	Rows             []Fig9Row
	Mean200K, Max200 float64
}

// RunFig9 computes the write-reduction figure. Pass a prebuilt matrix to
// reuse simulations; nil runs the needed systems.
func RunFig9(o Options, m *Matrix) (*Fig9Result, error) {
	m, err := ensureMatrix(o, m, []System{SysBaseline, SysDVP100K, SysDVP200K, SysDVP300K, SysIdeal})
	if err != nil {
		return nil, err
	}
	var res Fig9Result
	var reds []float64
	for _, w := range m.Workloads {
		base := float64(m.Results[w][SysBaseline].Metrics.HostPrograms())
		red := func(sys System) float64 {
			return stats.ReductionPct(base, float64(m.Results[w][sys].Metrics.HostPrograms()))
		}
		row := Fig9Row{
			Workload:       w,
			Red100K:        red(SysDVP100K),
			Red200K:        red(SysDVP200K),
			Red300K:        red(SysDVP300K),
			RedIdeal:       red(SysIdeal),
			BaselineWrites: m.Results[w][SysBaseline].Metrics.HostPrograms(),
			Writes200K:     m.Results[w][SysDVP200K].Metrics.HostPrograms(),
		}
		res.Rows = append(res.Rows, row)
		reds = append(reds, row.Red200K)
	}
	res.Mean200K = stats.Mean(reds)
	res.Max200 = stats.MaxOf(reds)
	return &res, nil
}

// Table renders the structured Fig 9 table.
func (r *Fig9Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, pct(row.Red100K), pct(row.Red200K), pct(row.Red300K), pct(row.RedIdeal),
		})
	}
	rows = append(rows, []string{"mean", "", pct(r.Mean200K), "", ""})
	return Table{
		Title:  "Fig 9: reduction in the number of writes vs baseline",
		Header: []string{"workload", "100K", "200K", "300K", "ideal"},
		Rows:   rows,
	}
}

// String renders Fig 9.
func (r *Fig9Result) String() string { return r.Table().String() }

// --------------------------------------------------------------- Fig 10 --

// Fig10Row is one workload of Fig 10: erase-count reduction.
type Fig10Row struct {
	Workload          string
	Red200K, RedIdeal float64
	BaselineErases    int64
}

// Fig10Result is Fig 10 plus its mean.
type Fig10Result struct {
	Rows []Fig10Row
	Mean float64
}

// RunFig10 computes the erase-reduction figure.
func RunFig10(o Options, m *Matrix) (*Fig10Result, error) {
	m, err := ensureMatrix(o, m, []System{SysBaseline, SysDVP200K, SysIdeal})
	if err != nil {
		return nil, err
	}
	var res Fig10Result
	var reds []float64
	for _, w := range m.Workloads {
		base := float64(m.Results[w][SysBaseline].Metrics.FlashErases)
		row := Fig10Row{
			Workload:       w,
			Red200K:        stats.ReductionPct(base, float64(m.Results[w][SysDVP200K].Metrics.FlashErases)),
			RedIdeal:       stats.ReductionPct(base, float64(m.Results[w][SysIdeal].Metrics.FlashErases)),
			BaselineErases: m.Results[w][SysBaseline].Metrics.FlashErases,
		}
		res.Rows = append(res.Rows, row)
		reds = append(reds, row.Red200K)
	}
	res.Mean = stats.Mean(reds)
	return &res, nil
}

// Table renders the structured Fig 10 table.
func (r *Fig10Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Workload, pct(row.Red200K), pct(row.RedIdeal), i64(row.BaselineErases)})
	}
	rows = append(rows, []string{"mean", pct(r.Mean), "", ""})
	return Table{
		Title:  "Fig 10: reduction in erase counts vs baseline (200K-entry pool)",
		Header: []string{"workload", "DVP", "ideal", "baseline erases"},
		Rows:   rows,
	}
}

// String renders Fig 10.
func (r *Fig10Result) String() string { return r.Table().String() }

// --------------------------------------------------------------- Fig 11 --

// Fig11Row is one workload of Fig 11: mean-latency improvement of DVP and
// of the LX-SSD prior work.
type Fig11Row struct {
	Workload              string
	DVPImprove, LXImprove float64
	BaselineMean          float64
}

// Fig11Result is Fig 11 plus means.
type Fig11Result struct {
	Rows            []Fig11Row
	DVPMean, LXMean float64
}

// RunFig11 computes the mean-latency figure including the LX-SSD bar.
func RunFig11(o Options, m *Matrix) (*Fig11Result, error) {
	m, err := ensureMatrix(o, m, []System{SysBaseline, SysDVP200K, SysLX})
	if err != nil {
		return nil, err
	}
	var res Fig11Result
	var dvps, lxs []float64
	for _, w := range m.Workloads {
		base := m.Results[w][SysBaseline].All.Mean
		row := Fig11Row{
			Workload:     w,
			DVPImprove:   stats.ReductionPct(base, m.Results[w][SysDVP200K].All.Mean),
			LXImprove:    stats.ReductionPct(base, m.Results[w][SysLX].All.Mean),
			BaselineMean: base,
		}
		res.Rows = append(res.Rows, row)
		dvps = append(dvps, row.DVPImprove)
		lxs = append(lxs, row.LXImprove)
	}
	res.DVPMean = stats.Mean(dvps)
	res.LXMean = stats.Mean(lxs)
	return &res, nil
}

// Table renders the structured Fig 11 table.
func (r *Fig11Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Workload, pct(row.DVPImprove), pct(row.LXImprove), usec(row.BaselineMean)})
	}
	rows = append(rows, []string{"mean", pct(r.DVPMean), pct(r.LXMean), ""})
	return Table{
		Title:  "Fig 11: mean latency improvement vs baseline",
		Header: []string{"workload", "DVP", "LX-SSD", "baseline mean"},
		Rows:   rows,
	}
}

// String renders Fig 11.
func (r *Fig11Result) String() string { return r.Table().String() }

// --------------------------------------------------------------- Fig 12 --

// Fig12Row is one workload of Fig 12: tail (p99) latency improvement.
type Fig12Row struct {
	Workload    string
	Improvement float64
	BaselineP99 int64
	DVPP99      int64
}

// Fig12Result is Fig 12 plus its mean.
type Fig12Result struct {
	Rows []Fig12Row
	Mean float64
}

// RunFig12 computes the tail-latency figure.
func RunFig12(o Options, m *Matrix) (*Fig12Result, error) {
	m, err := ensureMatrix(o, m, []System{SysBaseline, SysDVP200K})
	if err != nil {
		return nil, err
	}
	var res Fig12Result
	var imps []float64
	for _, w := range m.Workloads {
		base := m.Results[w][SysBaseline].All.P99
		dvp := m.Results[w][SysDVP200K].All.P99
		row := Fig12Row{
			Workload:    w,
			Improvement: stats.ReductionPct(float64(base), float64(dvp)),
			BaselineP99: base,
			DVPP99:      dvp,
		}
		res.Rows = append(res.Rows, row)
		imps = append(imps, row.Improvement)
	}
	res.Mean = stats.Mean(imps)
	return &res, nil
}

// Table renders the structured Fig 12 table.
func (r *Fig12Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, pct(row.Improvement),
			usec(float64(row.BaselineP99)), usec(float64(row.DVPP99)),
		})
	}
	rows = append(rows, []string{"mean", pct(r.Mean), "", ""})
	return Table{
		Title:  "Fig 12: tail (p99) latency improvement vs baseline (200K-entry pool)",
		Header: []string{"workload", "improvement", "baseline p99", "DVP p99"},
		Rows:   rows,
	}
}

// String renders Fig 12.
func (r *Fig12Result) String() string { return r.Table().String() }

// --------------------------------------------------------------- Fig 14 --

// Fig14Row is one workload of Fig 14: host writes normalized to baseline
// for Dedup, DVP and DVP+Dedup.
type Fig14Row struct {
	Workload             string
	Dedup, DVP, DVPDedup float64 // % of baseline writes
}

// Fig14Result is Fig 14 plus means.
type Fig14Result struct {
	Rows                             []Fig14Row
	DedupMean, DVPMean, CombinedMean float64
	// ExtraOverDedup is the additional write reduction DVP+Dedup achieves
	// relative to dedup alone (the paper's "another 11%").
	ExtraOverDedup float64
}

// RunFig14 computes the normalized-writes comparison of Section VII.
func RunFig14(o Options, m *Matrix) (*Fig14Result, error) {
	m, err := ensureMatrix(o, m, []System{SysBaseline, SysDedup, SysDVP200K, SysDVPDedup})
	if err != nil {
		return nil, err
	}
	var res Fig14Result
	var ded, dvp, comb, extra []float64
	for _, w := range m.Workloads {
		base := float64(m.Results[w][SysBaseline].Metrics.HostPrograms())
		norm := func(sys System) float64 {
			return stats.NormalizedPct(base, float64(m.Results[w][sys].Metrics.HostPrograms()))
		}
		row := Fig14Row{
			Workload: w,
			Dedup:    norm(SysDedup),
			DVP:      norm(SysDVP200K),
			DVPDedup: norm(SysDVPDedup),
		}
		res.Rows = append(res.Rows, row)
		ded = append(ded, row.Dedup)
		dvp = append(dvp, row.DVP)
		comb = append(comb, row.DVPDedup)
		extra = append(extra, stats.ReductionPct(
			float64(m.Results[w][SysDedup].Metrics.HostPrograms()),
			float64(m.Results[w][SysDVPDedup].Metrics.HostPrograms())))
	}
	res.DedupMean = stats.Mean(ded)
	res.DVPMean = stats.Mean(dvp)
	res.CombinedMean = stats.Mean(comb)
	res.ExtraOverDedup = stats.Mean(extra)
	return &res, nil
}

// Table renders the structured Fig 14 table.
func (r *Fig14Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Workload, pct(row.Dedup), pct(row.DVP), pct(row.DVPDedup)})
	}
	rows = append(rows, []string{"mean", pct(r.DedupMean), pct(r.DVPMean), pct(r.CombinedMean)})
	return Table{
		Title:  "Fig 14: number of writes normalized to baseline",
		Header: []string{"workload", "dedup", "DVP", "DVP+dedup"},
		Rows:   rows,
		Notes:  []string{"extra write reduction of DVP+dedup over dedup alone: " + pct(r.ExtraOverDedup)},
	}
}

// String renders Fig 14.
func (r *Fig14Result) String() string { return r.Table().String() }

// --------------------------------------------------------------- Fig 15 --

// Fig15Row is one workload of Fig 15: mean-latency improvement of DVP,
// Dedup and DVP+Dedup over baseline.
type Fig15Row struct {
	Workload             string
	DVP, Dedup, DVPDedup float64
}

// Fig15Result is Fig 15 plus means.
type Fig15Result struct {
	Rows                             []Fig15Row
	DVPMean, DedupMean, CombinedMean float64
	// ExtraOverDedup is the additional latency improvement of the combined
	// system relative to dedup alone (the paper's 9.8% mean).
	ExtraOverDedup float64
}

// RunFig15 computes the latency comparison of Section VII.
func RunFig15(o Options, m *Matrix) (*Fig15Result, error) {
	m, err := ensureMatrix(o, m, []System{SysBaseline, SysDedup, SysDVP200K, SysDVPDedup})
	if err != nil {
		return nil, err
	}
	var res Fig15Result
	var dvp, ded, comb, extra []float64
	for _, w := range m.Workloads {
		base := m.Results[w][SysBaseline].All.Mean
		imp := func(sys System) float64 {
			return stats.ReductionPct(base, m.Results[w][sys].All.Mean)
		}
		row := Fig15Row{
			Workload: w,
			DVP:      imp(SysDVP200K),
			Dedup:    imp(SysDedup),
			DVPDedup: imp(SysDVPDedup),
		}
		res.Rows = append(res.Rows, row)
		dvp = append(dvp, row.DVP)
		ded = append(ded, row.Dedup)
		comb = append(comb, row.DVPDedup)
		extra = append(extra, stats.ReductionPct(
			m.Results[w][SysDedup].All.Mean, m.Results[w][SysDVPDedup].All.Mean))
	}
	res.DVPMean = stats.Mean(dvp)
	res.DedupMean = stats.Mean(ded)
	res.CombinedMean = stats.Mean(comb)
	res.ExtraOverDedup = stats.Mean(extra)
	return &res, nil
}

// Table renders the structured Fig 15 table.
func (r *Fig15Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Workload, pct(row.DVP), pct(row.Dedup), pct(row.DVPDedup)})
	}
	rows = append(rows, []string{"mean", pct(r.DVPMean), pct(r.DedupMean), pct(r.CombinedMean)})
	return Table{
		Title:  "Fig 15: mean latency improvement vs baseline",
		Header: []string{"workload", "DVP", "dedup", "DVP+dedup"},
		Rows:   rows,
		Notes:  []string{"extra latency improvement of DVP+dedup over dedup alone: " + pct(r.ExtraOverDedup)},
	}
}

// String renders Fig 15.
func (r *Fig15Result) String() string { return r.Table().String() }
