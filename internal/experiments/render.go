package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is the structured form every experiment renders to: a title, a
// header row, data rows, and optional trailing notes. It renders as an
// aligned text table (String) or as CSV for plotting (CSV).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the aligned text table with the title and notes.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	underline := make([]string, len(t.Header))
	for i, h := range t.Header {
		underline[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(underline, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintln(&sb, n)
	}
	return sb.String()
}

// CSV renders the header and rows as RFC-4180-ish CSV (title and notes as
// '#' comment lines), ready for any plotting tool.
func (t Table) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", t.Title)
	writeCSVRow(&sb, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(&sb, r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
}

// Tabler is implemented by every experiment result: the structured table
// plus the fmt.Stringer text rendering derived from it.
type Tabler interface {
	Table() Table
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v) }
func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string    { return fmt.Sprintf("%d", v) }
func usec(v float64) string { return fmt.Sprintf("%.0fµs", v) }
