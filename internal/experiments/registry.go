package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one registered paper artifact.
type Experiment struct {
	ID    string // the paper's artifact id ("fig9", "table2", …)
	Title string
	// NeedsMatrix marks full-simulation experiments that can share a
	// prebuilt evaluation matrix.
	NeedsMatrix bool
	// Run executes the experiment; m may be nil (each experiment builds
	// what it needs) and is ignored by trace-only experiments.
	Run func(o Options, m *Matrix) (fmt.Stringer, error)
}

// registry lists every experiment in the paper's order.
var registry = []Experiment{
	{ID: "table1", Title: "Table I: modeled SSD characteristics",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunTable1(o) }},
	{ID: "table2", Title: "Table II: workload characteristics",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunTable2(o) }},
	{ID: "fig1", Title: "Fig 1: garbage-page reuse probability (infinite buffer)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunFig1(o) }},
	{ID: "fig2", Title: "Fig 2: CDF of invalidation counts",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunFig2(o) }},
	{ID: "fig3", Title: "Fig 3: write/invalidation/rebirth concentration",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunFig3(o) }},
	{ID: "fig4", Title: "Fig 4: life-cycle timing vs popularity",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunFig4(o) }},
	{ID: "fig5", Title: "Fig 5: writes under LRU buffer sweep",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunFig5(o) }},
	{ID: "fig6", Title: "Fig 6: LRU misses by popularity degree",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunFig6(o) }},
	{ID: "fig9", Title: "Fig 9: write reduction", NeedsMatrix: true,
		Run: func(o Options, m *Matrix) (fmt.Stringer, error) { return RunFig9(o, m) }},
	{ID: "fig10", Title: "Fig 10: erase-count reduction", NeedsMatrix: true,
		Run: func(o Options, m *Matrix) (fmt.Stringer, error) { return RunFig10(o, m) }},
	{ID: "fig11", Title: "Fig 11: mean latency improvement (incl. LX-SSD)", NeedsMatrix: true,
		Run: func(o Options, m *Matrix) (fmt.Stringer, error) { return RunFig11(o, m) }},
	{ID: "fig12", Title: "Fig 12: tail latency improvement", NeedsMatrix: true,
		Run: func(o Options, m *Matrix) (fmt.Stringer, error) { return RunFig12(o, m) }},
	{ID: "fig14", Title: "Fig 14: writes normalized (dedup interplay)", NeedsMatrix: true,
		Run: func(o Options, m *Matrix) (fmt.Stringer, error) { return RunFig14(o, m) }},
	{ID: "fig15", Title: "Fig 15: latency improvement (dedup interplay)", NeedsMatrix: true,
		Run: func(o Options, m *Matrix) (fmt.Stringer, error) { return RunFig15(o, m) }},
	{ID: "ablation-policy", Title: "Ablation: pool replacement policy (LRU vs MQ vs infinite)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunAblationPolicy(o) }},
	{ID: "ablation-gc", Title: "Ablation: popularity-aware GC weight sweep",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunAblationGC(o) }},
	{ID: "ablation-adaptive", Title: "Ablation: adaptive pool capacity (future work)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunAblationAdaptive(o) }},
	{ID: "ablation-bgc", Title: "Ablation: background GC (idle-time dead-block erasure)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunAblationBGC(o) }},
	{ID: "ablation-faults", Title: "Ablation: fault injection (write reduction and p99 vs fault rate)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunAblationFaults(o) }},
	{ID: "lifetime", Title: "Lifetime: wear-out drive-to-death (capacity/write-reduction/p99 vs cumulative erases)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunLifetime(o) }},
	{ID: "stability", Title: "Stability: Fig 9 headline across seeds",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunStability(o) }},
	{ID: "crashsweep", Title: "Crashsweep: sudden-power-loss recovery (OOB scan, DVP re-seed, integrity oracle)",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunCrashsweep(o) }},
	{ID: "scrubsweep", Title: "Scrubsweep: RBER decay, background scrubbing and revival gating across architectures",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunScrubsweep(o) }},
	{ID: "tenantsweep", Title: "Tenantsweep: multi-tenant QoS isolation and cross-tenant DVP subsidy",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunTenantsweep(o) }},
	{ID: "gcsweep", Title: "GCsweep: read tail latency and gc-blocked attribution vs preemptible-GC policy",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunGCsweep(o) }},
	{ID: "chaossweep", Title: "Chaossweep: crash/fault/decay soak under the device health governor",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunChaossweep(o) }},
	{ID: "rainsweep", Title: "Rainsweep: whole-die failure and RAIN parity reconstruction across architectures",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunRainsweep(o) }},
	{ID: "dftlsweep", Title: "Dftlsweep: flash-resident mapping (DFTL CMT + translation-page GC) across architectures",
		Run: func(o Options, _ *Matrix) (fmt.Stringer, error) { return RunDftlsweep(o) }},
}

// All returns every experiment in the paper's order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the registered ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
