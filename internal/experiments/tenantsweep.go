package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"zombiessd/internal/sim"
	"zombiessd/internal/workload"
)

// ------------------------------------------------------- multi-tenant sweep --

// The tenantsweep asks the multi-tenant question the paper leaves open:
// does one tenant's content redundancy subsidize or starve another
// tenant's DVP hit rate and tail latency? It runs 1→8 tenant streams ×
// arbiter policy × all five architectures through the multi-queue host
// engine, reporting per-tenant p99/p99.9, DVP hit rate, write
// amplification and admission rejects, plus an antagonist arm — a
// well-behaved mail victim sharing the drive with a 4×-rate,
// private-content trans antagonist — that measures tail-latency isolation
// and the cross-tenant revival subsidy directly.

// tenantSweepDivisor shrinks each cell's trace relative to
// Options.Requests (the sweep runs dozens of cells); the floor keeps tiny
// smoke runs meaningful.
const tenantSweepDivisor = 8

const tenantSweepFloor = 12_000

// DefaultTenantQueueDepth is the per-tenant queue-depth bound the sweep
// applies when Options.QueueDepth is 0. The sweep also uses it as the
// shared device-slot count (sim.EngineOptions.DeviceSlots): unlimited
// capacity would let every request dispatch at its arrival instant,
// reducing every arbiter to FIFO; a shared bound makes tenants contend
// for dispatch slots, which is where QoS policy shows up.
const DefaultTenantQueueDepth = 8

// tenantSweepCounts is the built-in tenant-count ladder.
var tenantSweepCounts = []int{1, 2, 4, 8}

// TenantCell is one (architecture, policy, tenant set) cell of the sweep.
type TenantCell struct {
	Arch    string
	Policy  sim.ArbiterKind
	Label   string // tenant count ("1".."8") or "antag"
	Tenants []sim.TenantResult
}

// TenantsweepResult is the rendered outcome of RunTenantsweep.
type TenantsweepResult struct {
	Requests   int64 // per cell, split across its tenants
	Seed       int64
	QueueDepth int
	Cells      []TenantCell
}

// tenantArchConfigs lists the five swept architectures by name; device
// configs come from Options.deviceConfig per cell (footprints differ by
// tenant set).
var tenantArchKinds = []struct {
	name string
	kind sim.Kind
}{
	{"baseline", sim.KindBaseline},
	{"dvp", sim.KindDVP},
	{"dedup", sim.KindDedup},
	{"dvp+dedup", sim.KindDVPDedup},
	{"lx-ssd", sim.KindLX},
}

// tenantSetFor builds the tenant configs of one ladder cell: n tenants
// cycling the six Table II profiles, equal weights, shared content space.
func tenantSetFor(n int) []sim.TenantConfig {
	names := workload.Names()
	out := make([]sim.TenantConfig, n)
	for i := range out {
		p, _ := workload.ProfileByName(names[i%len(names)])
		out[i] = sim.TenantConfig{Name: fmt.Sprintf("t%d-%s", i, p.Name), Profile: p, Weight: 1}
	}
	return out
}

// antagonistSet builds the isolation arm: a mail victim (weight 4) sharing
// the drive with a trans antagonist writing 4× as fast into a private
// content space, so the victim's DVP can never feed off the antagonist's
// garbage and every revival across the pair is a measured subsidy.
func antagonistSet() []sim.TenantConfig {
	victim, _ := workload.ProfileByName("mail")
	antag, _ := workload.ProfileByName("trans")
	antag.MeanInterarrivalUS /= 4
	antag.ValueBase = 1 << 40
	return []sim.TenantConfig{
		{Name: "victim-mail", Profile: victim, Weight: 4},
		{Name: "antag-trans", Profile: antag, Weight: 1},
	}
}

// RunTenantsweep crosses tenant sets × arbiter policies × the five
// architectures through the multi-queue host engine. Cells are
// independent simulations spread across Options.Jobs workers; results are
// keyed by cell index, so the output is byte-identical for every worker
// count.
func RunTenantsweep(o Options) (*TenantsweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	requests := o.Requests / tenantSweepDivisor
	if requests < tenantSweepFloor {
		requests = tenantSweepFloor
	}
	if requests > o.Requests {
		requests = o.Requests
	}
	qd := o.QueueDepth
	if qd == 0 {
		qd = DefaultTenantQueueDepth
	}
	policiesSpec := o.QoSPolicies
	if policiesSpec == "" {
		policiesSpec = "fifo,wrr"
	}
	policies, err := sim.ParseArbiterList(policiesSpec)
	if err != nil {
		return nil, err
	}

	// Tenant sets: the explicit -tenants spec, or the built-in 1→8 ladder
	// plus the antagonist pair.
	type tenantSet struct {
		label string
		cfgs  []sim.TenantConfig
	}
	var sets []tenantSet
	if o.TenantSpec != "" {
		cfgs, err := sim.ParseTenants(o.TenantSpec)
		if err != nil {
			return nil, err
		}
		sets = append(sets, tenantSet{label: fmt.Sprint(len(cfgs)), cfgs: cfgs})
	} else {
		for _, n := range tenantSweepCounts {
			sets = append(sets, tenantSet{label: fmt.Sprint(n), cfgs: tenantSetFor(n)})
		}
		sets = append(sets, tenantSet{label: "antag", cfgs: antagonistSet()})
	}

	type cellSpec struct {
		arch   string
		kind   sim.Kind
		policy sim.ArbiterKind
		set    tenantSet
	}
	var cells []cellSpec
	for _, a := range tenantArchKinds {
		for _, pol := range policies {
			for _, s := range sets {
				cells = append(cells, cellSpec{arch: a.name, kind: a.kind, policy: pol, set: s})
			}
		}
	}

	runCell := func(c cellSpec) (TenantCell, error) {
		traces, err := sim.GenerateTenants(c.set.cfgs, requests, o.Seed)
		if err != nil {
			return TenantCell{}, err
		}
		footprint := sim.TotalFootprint(traces)
		cfg := o.deviceConfig(c.kind, footprint, sim.PoolMQ, 200_000)
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			return TenantCell{}, err
		}
		mr, err := sim.RunTenants(dev, traces, sim.EngineOptions{
			Arbiter:           c.policy,
			QueueDepth:        qd,
			DeviceSlots:       qd,
			PreconditionPages: footprint,
			LogicalPages:      footprint,
		})
		if err != nil {
			return TenantCell{}, err
		}
		return TenantCell{Arch: c.arch, Policy: c.policy, Label: c.set.label, Tenants: mr.Tenants}, nil
	}

	workers := o.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]TenantCell, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cellSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = runCell(c)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: tenantsweep %s/%v/%s: %w",
				cells[i].arch, cells[i].policy, cells[i].set.label, err)
		}
	}
	return &TenantsweepResult{Requests: requests, Seed: o.Seed, QueueDepth: qd, Cells: results}, nil
}

// Table renders one row per (cell, tenant): the per-tenant tail latencies,
// DVP hit rate, write amplification and admission rejects the isolation
// question is asked of.
func (r *TenantsweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Tenantsweep: per-tenant isolation (%d requests/cell, qd=%d, seed %d)",
			r.Requests, r.QueueDepth, r.Seed),
		Header: []string{"arch", "qos", "cell", "tenant", "n", "rej",
			"mean", "p99", "p99.9", "dvp-hit", "WA", "rev-other", "rev-by-other"},
	}
	for _, c := range r.Cells {
		for _, tr := range c.Tenants {
			t.Rows = append(t.Rows, []string{
				c.Arch, c.Policy.String(), c.Label, tr.Name,
				i64(tr.Requests), i64(tr.Rejected),
				usec(tr.All.Mean), fmt.Sprintf("%dµs", tr.All.P99), fmt.Sprintf("%dµs", tr.P999),
				pct(tr.DVPHitPct()), fmt.Sprintf("%.2f", tr.Metrics.WriteAmplification()),
				i64(tr.Store.RevivedOther), i64(tr.Store.RevivedByOther),
			})
		}
	}
	t.Notes = append(t.Notes,
		"cell: tenant count (shared content space) or 'antag' (mail victim vs 4×-rate private-content trans antagonist)",
		"rev-other: tenant's writes revived from another tenant's garbage; rev-by-other: tenant's garbage revived by others",
		"rej: arrivals shed by per-tenant queue-depth admission control")
	return t
}

// String renders the aligned text table.
func (r *TenantsweepResult) String() string { return r.Table().String() }
