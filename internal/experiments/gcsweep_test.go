package experiments

import (
	"reflect"
	"strings"
	"testing"

	"zombiessd/internal/ftl"
)

// gcsweepOpts shrinks the sweep's per-cell trace so the Go tests stay
// quick; make gc-smoke runs the full floor-sized sweep.
func gcsweepOpts() Options {
	o := smallOpts()
	o.Requests = 6000
	return o
}

// TestNoPreemptBitIdentity is the preemptible-GC determinism pin, in two
// halves. First: with preemption disabled (the zero PreemptConfig — k=0,
// no suspension), the evaluation matrix must still hit the pre-preemption
// golden counters exactly, so merely carrying the partial-GC machinery
// changes nothing. Second: the gcsweep is a pure function of
// (seed, config) — byte-identical across repeated invocations and across
// every -j worker count.
func TestNoPreemptBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells in -short mode")
	}
	checkMatrixGoldens(t)

	run := func(jobs int) *GCsweepResult {
		o := gcsweepOpts()
		o.Jobs = jobs
		r, err := RunGCsweep(o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(1)
	for _, jobs := range []int{2, 8, 1} {
		if again := run(jobs); !reflect.DeepEqual(base, again) {
			t.Fatalf("gcsweep diverged at jobs=%d:\n base %+v\n got %+v", jobs, base, again)
		}
	}
}

// TestGCPolicyArms pins the policy ladder's derivation from the -gc-*
// flags: a disarmed base gets the sweep defaults, an armed base steers the
// partial arms, and the partial (no-suspension) arm always differs from
// partial+susp in exactly the suspension mechanism.
func TestGCPolicyArms(t *testing.T) {
	arms := gcPolicyArms(ftl.PreemptConfig{})
	if len(arms) != 4 {
		t.Fatalf("got %d arms, want 4", len(arms))
	}
	names := []string{"blocking", "soft", "partial", "partial+susp"}
	for i, want := range names {
		if arms[i].Name != want {
			t.Errorf("arm %d is %q, want %q", i, arms[i].Name, want)
		}
	}
	if arms[0].Preempt.Enabled() || arms[0].Soft != 0 {
		t.Errorf("blocking arm not inert: %+v", arms[0])
	}
	if arms[1].Soft != DefaultGCSoftThreshold || arms[1].Preempt.Enabled() {
		t.Errorf("soft arm misconfigured: %+v", arms[1])
	}
	if arms[2].Preempt.PartialK != DefaultGCPartialK || arms[2].Preempt.SuspendEnabled() {
		t.Errorf("partial arm misconfigured: %+v", arms[2].Preempt)
	}
	if !arms[3].Preempt.SuspendEnabled() || arms[3].Preempt.MaxSuspends != DefaultGCMaxSuspends {
		t.Errorf("partial+susp arm misconfigured: %+v", arms[3].Preempt)
	}
	stripped := arms[3].Preempt
	stripped.MaxSuspends, stripped.SuspendCost, stripped.ResumeCost = 0, 0, 0
	if arms[2].Preempt != stripped {
		t.Errorf("partial and partial+susp differ beyond suspension: %+v vs %+v",
			arms[2].Preempt, arms[3].Preempt)
	}

	custom := ftl.PreemptConfig{PartialK: 3, Lookahead: 1, MaxSuspends: 7, SuspendCost: 11, ResumeCost: 13}
	arms = gcPolicyArms(custom)
	if arms[2].Preempt.PartialK != 3 || arms[2].Preempt.Lookahead != 1 || arms[2].Preempt.SuspendEnabled() {
		t.Errorf("custom partial arm lost the flag knobs: %+v", arms[2].Preempt)
	}
	if arms[3].Preempt != custom {
		t.Errorf("custom partial+susp arm = %+v, want %+v", arms[3].Preempt, custom)
	}
}

// TestGCsweepSmoke checks the sweep's report shape and that the policy
// mechanisms actually engage: every (architecture, policy) cell is present
// with a populated read tail, the partial arms drain pages inside idle
// windows, and the antagonist arm carries both tenants under the
// bracketing policies.
func TestGCsweepSmoke(t *testing.T) {
	r, err := RunGCsweep(gcsweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(tenantArchKinds) * 4
	if len(r.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d (5 architectures × 4 policies)", len(r.Cells), wantCells)
	}
	if want := []string{"blocking", "soft", "partial", "partial+susp"}; !reflect.DeepEqual(r.Policies, want) {
		t.Fatalf("policies = %v, want %v", r.Policies, want)
	}
	var gcRuns, partialWindows, partialPages int64
	for _, c := range r.Cells {
		if c.ReadP99 <= 0 || c.ReadP999 < c.ReadP99 {
			t.Errorf("cell %s/%s has a broken read tail: p99=%d p99.9=%d",
				c.Arch, c.Policy, c.ReadP99, c.ReadP999)
		}
		gcRuns += c.Runs
		switch c.Policy {
		case "blocking", "soft":
			if c.PartialWindows != 0 || c.PartialPages != 0 || c.Suspensions != 0 {
				t.Errorf("cell %s/%s ran preemption machinery: %+v", c.Arch, c.Policy, c)
			}
		case "partial":
			if c.Suspensions != 0 {
				t.Errorf("cell %s/partial suspended %d times with suspension off", c.Arch, c.Suspensions)
			}
			partialWindows += c.PartialWindows
			partialPages += c.PartialPages
		case "partial+susp":
			partialWindows += c.PartialWindows
			partialPages += c.PartialPages
		}
	}
	if gcRuns == 0 {
		t.Error("no cell ever ran GC; the sweep exercised nothing")
	}
	if partialWindows == 0 || partialPages == 0 {
		t.Errorf("partial arms never drained (windows=%d pages=%d)", partialWindows, partialPages)
	}

	if len(r.Antag) != 2 {
		t.Fatalf("got %d antagonist cells, want 2", len(r.Antag))
	}
	if r.Antag[0].Policy != "blocking" || r.Antag[1].Policy != "partial+susp" {
		t.Errorf("antagonist policies = %s/%s, want blocking/partial+susp",
			r.Antag[0].Policy, r.Antag[1].Policy)
	}
	for _, a := range r.Antag {
		if len(a.Tenants) != 2 {
			t.Fatalf("antagonist cell %s has %d tenants, want 2", a.Policy, len(a.Tenants))
		}
		for _, tr := range a.Tenants {
			if tr.Requests == 0 {
				t.Errorf("antagonist cell %s tenant %s processed nothing", a.Policy, tr.Name)
			}
		}
	}

	tab := r.Table()
	wantRows := len(r.Cells) + len(r.Antag)*2
	if len(tab.Rows) != wantRows {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d columns, header has %d", row, len(row), len(tab.Header))
		}
	}
	header := strings.Join(tab.Header, " ")
	for _, col := range []string{"policy", "read p99", "read p99.9", "gc-blocked", "windows", "suspends"} {
		if !strings.Contains(header, col) {
			t.Errorf("table header lacks %q: %v", col, tab.Header)
		}
	}
	if !strings.Contains(r.String(), "antag:") {
		t.Error("rendered table lacks the antagonist rows")
	}
}

// TestGCsweepOptionPlumbing checks the -gc-* flag surface rejects
// malformed preemption configs at Options.Validate, before any simulation
// runs.
func TestGCsweepOptionPlumbing(t *testing.T) {
	bad := []ftl.PreemptConfig{
		{PartialK: -1},
		{Lookahead: 2},
		{PartialK: 4, Lookahead: 99},
		{MaxSuspends: -1},
		{SuspendCost: 20},
	}
	for i, pc := range bad {
		o := smallOpts()
		o.GCPreempt = pc
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, pc)
		}
	}
	o := smallOpts()
	o.GCPreempt = ftl.PreemptConfig{PartialK: 4, Lookahead: 2, MaxSuspends: 2, SuspendCost: 20, ResumeCost: 20}
	if err := o.Validate(); err != nil {
		t.Errorf("good preemption options rejected: %v", err)
	}
}
