package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"zombiessd/internal/ftl"
	"zombiessd/internal/rain"
	"zombiessd/internal/scrub"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// ------------------------------------------------ die-failure / RAIN sweep --

// rainSweepDivisor shrinks the sweep's trace relative to Options.Requests:
// ten full replays (five architectures × parity off/on) per invocation,
// each carrying the accelerated decay model, a background patrol and a
// whole-die kill.
const rainSweepDivisor = 2

const rainSweepFloor = 24_000

// rainDieFailDivisor places the die kill one len(recs)/divisor store ops
// past the preconditioning fill. The trigger counts store-level ops, which
// short-circuiting (dedup hits, buffer absorption) thins out relative to
// trace records, so the placement is conservative: early enough that every
// architecture reliably reaches it and plenty of post-failure traffic
// lands on the survivors, while the freshly preconditioned die is still
// full of live data worth losing.
const rainDieFailDivisor = 10

// RainArm is one (architecture, parity on/off) cell of the sweep: a full
// trace replay under the decay model with one whole die killed mid-trace,
// oracle-verified at the end after the rebuild daemon drains.
type RainArm struct {
	Arch   string
	Parity bool // RAIN striping enabled
	Die    int  // flat index of the killed die

	LostPages     int64 // store pages still destroyed and unreconstructed
	DataLoss      int   // acknowledged pages failing the end-of-trace oracle
	Reconstructed int64 // pages rebuilt from surviving members + parity
	ReconReads    int64 // survivor reads those reconstructions charged
	ParityWrites  int64 // parity page programs (the redundancy tax)
	RebuildPages  int64 // dead-die pages re-landed by the rebuild daemon
	RebuildTime   ssd.Time
	UECC          int64 // uncorrectable reads surfaced to host/scrub
	Programs      int64 // flash programs, parity included
	WA            float64
}

// ParityTax returns parity programs per non-parity flash program — the
// write-amplification premium the redundancy costs this architecture.
func (a RainArm) ParityTax() float64 {
	if data := a.Programs - a.ParityWrites; data > 0 {
		return float64(a.ParityWrites) / float64(data)
	}
	return 0
}

// RainsweepResult is the rendered outcome of RunRainsweep.
type RainsweepResult struct {
	Workload string
	Requests int64
	Seed     int64
	Arms     []RainArm
}

// rainCell is one device's life: precondition, replay through the die
// kill, drain the rebuild daemon, oracle-verify.
type rainCell struct {
	m           sim.DeviceMetrics
	lost        int64
	dataLoss    int
	rebuildTime ssd.Time
}

// rainDrainCap bounds the post-replay rebuild drain in RebuildTick calls
// per device page; the daemon needs pending/4 working ticks plus one clean
// full scan, far below this.
const rainDrainCap = 4

// runRainCell replays the trace on a fresh device armed to kill one die
// mid-trace. The replay itself must survive — die failure is absorbed by
// reconstruction (parity on) or surfaces as uncorrectable reads the sim
// layer tolerates (parity off) — then the rebuild daemon is drained and
// every durably acknowledged page is checked against the oracle.
func runRainCell(cfg sim.Config, recs []trace.Record, footprint int64) (rainCell, error) {
	var out rainCell
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return out, err
	}
	shadow, ackOnWrite := sim.AttachShadow(dev)
	hr, ok := dev.(sim.HashReader)
	if !ok {
		return out, fmt.Errorf("experiments: device %T lacks ReadHash", dev)
	}

	// Preconditioning fill, bit-identical to sim.Run's.
	var end ssd.Time
	for lpn := int64(0); lpn < footprint; lpn++ {
		h := sim.PreconditionHash(lpn)
		done, err := dev.Write(ftl.LPN(lpn), h, 0)
		if err != nil {
			return out, fmt.Errorf("experiments: rain precondition write %d: %w", lpn, err)
		}
		shadow.Observe(ftl.LPN(lpn), h)
		if ackOnWrite {
			shadow.Ack(ftl.LPN(lpn), h)
		}
		if done > end {
			end = done
		}
	}
	base := dev.Metrics()
	shift := end + ssd.Millisecond

	for i, rec := range recs {
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		switch rec.Op {
		case trace.OpWrite:
			done, err := dev.Write(lpn, rec.Hash, arrival)
			if err != nil {
				return out, fmt.Errorf("experiments: rain record %d: %w", i, err)
			}
			shadow.Observe(lpn, rec.Hash)
			if ackOnWrite {
				shadow.Ack(lpn, rec.Hash)
			}
			if done > end {
				end = done
			}
		case trace.OpRead:
			done, err := dev.Read(lpn, arrival)
			if err != nil {
				return out, fmt.Errorf("experiments: rain record %d: %w", i, err)
			}
			if done > end {
				end = done
			}
		default:
			return out, fmt.Errorf("experiments: record %d has unknown op %v", i, rec.Op)
		}
	}

	store := sim.StoreOf(dev)
	if store == nil {
		return out, fmt.Errorf("experiments: device %T exposes no store", dev)
	}
	if !store.DieFailed() {
		return out, fmt.Errorf("experiments: die kill at op %d never fired (replay too short)", cfg.Faults.DieFailAtOp)
	}
	if store.RainEnabled() {
		// Drain the rebuild daemon: the replay gave it idle windows, the
		// tail runs here. Every tick re-lands a few pages; done requires a
		// full clean cursor pass.
		limit := cfg.Geometry.TotalPages() * rainDrainCap
		for i := int64(0); !store.RebuildDone(); i++ {
			if i > limit {
				return out, fmt.Errorf("experiments: rebuild drain exceeded %d ticks (%d pages pending)",
					limit, store.RebuildPending())
			}
			if err := store.RebuildTick(end); err != nil {
				return out, fmt.Errorf("experiments: rebuild drain: %w", err)
			}
		}
		if err := store.FlushParity(end); err != nil {
			return out, fmt.Errorf("experiments: final parity flush: %w", err)
		}
		if err := store.CheckRain(); err != nil {
			return out, fmt.Errorf("experiments: post-drain stripe invariant: %w", err)
		}
		out.rebuildTime = store.RebuildEndTime() - store.DieFailTime()
	}
	out.m = dev.Metrics().Sub(base)
	out.lost = store.LostPages()
	out.dataLoss = len(shadow.Verify(hr))
	return out, nil
}

// RunRainsweep replays the mail workload on all five architectures with
// intra-SSD RAIN parity off (control) and on, killing one whole die
// mid-trace under the accelerated decay model with the background patrol
// and the health governor active. Parity-off arms lose the dead die's live
// pages outright — the lost-page counter and the end-of-trace oracle agree
// on the damage. Parity-on arms reconstruct every dead page from the
// surviving stripe members, the rebuild daemon re-lands them on healthy
// flash during idle windows, and the oracle must come back clean; the
// price is the parity write tax each architecture pays.
func RunRainsweep(o Options) (*RainsweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	small := o
	small.Requests = o.Requests / rainSweepDivisor
	if small.Requests < rainSweepFloor {
		small.Requests = rainSweepFloor
	}
	if small.Requests > o.Requests {
		small.Requests = o.Requests
	}
	if !small.Faults.IntegrityArmed() {
		small.Faults.Integrity = DefaultIntegrityPlan()
	}
	if !small.Health.Enabled() {
		small.Health = DefaultChaosHealthPlan()
		// A whole-die kill legitimately strands pages until the rebuild
		// daemon reaches them; the lost-page death threshold would declare
		// the parity-off control dead mid-experiment.
		small.Health.DeadLostPages = 0
	}
	const workloadName = "mail"
	recs, footprint, err := small.traceFor(workloadName)
	if err != nil {
		return nil, err
	}
	archs := crashArchConfigs(small, footprint)

	type armSpec struct {
		arch   string
		cfg    sim.Config
		parity bool
		die    int
	}
	var arms []armSpec
	rng := uint64(small.Seed)*0x9E3779B97F4A7C15 + 1
	for _, a := range archs {
		cfg := a.cfg
		if !cfg.Scrub.Enabled() {
			cfg.Scrub = scrub.Config{
				Interval:    scrubIntervalFor(DefaultScrubSweepPeriod, cfg.Geometry),
				RefreshRBER: DefaultScrubRefreshRBER,
			}
		}
		dies := cfg.Geometry.TotalChips() * cfg.Geometry.DiesPerChip
		die := int(splitmix64(&rng) % uint64(dies))
		cfg.Faults.DieFailAtOp = footprint + int64(len(recs)/rainDieFailDivisor)
		cfg.Faults.DieFailDie = die

		off := cfg
		off.RAIN = rain.Config{}
		on := cfg
		if !on.RAIN.Enabled() {
			on.RAIN = rain.Config{Enable: true}
		}
		arms = append(arms,
			armSpec{arch: a.name, cfg: off, die: die},
			armSpec{arch: a.name, cfg: on, parity: true, die: die})
	}

	results := make([]rainCell, len(arms))
	var mu sync.Mutex
	var firstErr error
	workers := small.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, arm := range arms {
		wg.Add(1)
		go func(i int, arm armSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			doomed := firstErr != nil
			mu.Unlock()
			if doomed {
				return
			}
			res, err := runRainCell(arm.cfg, recs, footprint)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: rainsweep %s (parity=%v): %w", arm.arch, arm.parity, err)
				}
				return
			}
			results[i] = res
		}(i, arm)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &RainsweepResult{Workload: workloadName, Requests: small.Requests, Seed: small.Seed}
	for i, arm := range arms {
		r := results[i]
		out.Arms = append(out.Arms, RainArm{
			Arch:          arm.arch,
			Parity:        arm.parity,
			Die:           arm.die,
			LostPages:     r.lost,
			DataLoss:      r.dataLoss,
			Reconstructed: r.m.Rain.ReconstructedPages,
			ReconReads:    r.m.Rain.ReconstructionReads,
			ParityWrites:  r.m.Rain.ParityPrograms,
			RebuildPages:  r.m.Rain.RebuildPages,
			RebuildTime:   r.rebuildTime,
			UECC:          r.m.Faults.UncorrectableReads,
			Programs:      r.m.FlashPrograms,
			WA:            r.m.WriteAmplification(),
		})
	}
	return out, nil
}

// Table renders the sweep; the parity-on rows carry each architecture's
// parity write-amplification tax.
func (r *RainsweepResult) Table() Table {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		mode, tax := "off", "-"
		if a.Parity {
			mode = "on"
			tax = pct(a.ParityTax() * 100)
		}
		rows = append(rows, []string{
			a.Arch, mode,
			fmt.Sprintf("%d", a.Die),
			fmt.Sprintf("%d", a.LostPages),
			fmt.Sprintf("%d", a.DataLoss),
			fmt.Sprintf("%d", a.Reconstructed),
			fmt.Sprintf("%d", a.RebuildPages),
			fmt.Sprintf("%.1f", float64(a.RebuildTime)/float64(ssd.Millisecond)),
			fmt.Sprintf("%d", a.ParityWrites),
			fmt.Sprintf("%.2f", a.WA),
			tax,
		})
	}
	return Table{
		Title:  "Rainsweep: whole-die failure under intra-SSD RAIN parity",
		Header: []string{"arm", "parity", "die", "lost", "data loss", "reconstructed", "rebuilt", "rebuild ms", "parity writes", "WA", "parity tax"},
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("workload %s, %d requests, seed %d; accelerated decay + scrub patrol + health governor", r.Workload, r.Requests, r.Seed),
			"each arm kills one whole die mid-trace (same die and op for the off/on pair);",
			"parity off: the die's live pages are gone — lost pages and oracle data loss count the damage.",
			"parity on: every dead page reconstructs from surviving stripe members + XOR parity, the",
			"rebuild daemon re-lands them on healthy flash, and the end-of-trace oracle must be clean;",
			"the parity tax column is parity programs per non-parity flash program — the redundancy's",
			"write-amplification premium, cheapest on the architectures that program the least.",
		},
	}
}

// String renders the sweep table.
func (r *RainsweepResult) String() string { return r.Table().String() }
