package experiments

import (
	"fmt"

	"zombiessd/internal/stats"
)

// StabilityRow is one workload's write-reduction spread across seeds.
type StabilityRow struct {
	Workload       string
	Mean, Min, Max float64
}

// StabilityResult reports how sensitive the headline figure (Fig 9's
// 200K-entry write reduction) is to the workload generator's seed — the
// reproduction's error bars.
type StabilityResult struct {
	Seeds int
	Rows  []StabilityRow
	// MeanOfMeans is the seed-averaged overall mean reduction.
	MeanOfMeans float64
}

// RunStability reruns the Fig 9 measurement over several seeds. Each seed
// regenerates every trace and resimulates baseline + DVP-200K, so this is
// one of the heavier experiments.
func RunStability(o Options) (*StabilityResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	const seeds = 3
	perWorkload := make(map[string][]float64)
	var order []string
	var overall []float64
	for s := int64(0); s < seeds; s++ {
		opts := o
		opts.Seed = o.Seed + s
		m, err := RunMatrix(opts, nil, []System{SysBaseline, SysDVP200K})
		if err != nil {
			return nil, err
		}
		if order == nil {
			order = m.Workloads
		}
		var reds []float64
		for _, w := range m.Workloads {
			base := float64(m.Results[w][SysBaseline].Metrics.HostPrograms())
			red := stats.ReductionPct(base, float64(m.Results[w][SysDVP200K].Metrics.HostPrograms()))
			perWorkload[w] = append(perWorkload[w], red)
			reds = append(reds, red)
		}
		overall = append(overall, stats.Mean(reds))
	}
	res := &StabilityResult{Seeds: seeds, MeanOfMeans: stats.Mean(overall)}
	for _, w := range order {
		xs := perWorkload[w]
		res.Rows = append(res.Rows, StabilityRow{
			Workload: w,
			Mean:     stats.Mean(xs),
			Min:      stats.MinOf(xs),
			Max:      stats.MaxOf(xs),
		})
	}
	return res, nil
}

// Table renders the stability study.
func (r *StabilityResult) Table() Table {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Workload, pct(row.Mean), pct(row.Min), pct(row.Max)})
	}
	rows = append(rows, []string{"overall mean", pct(r.MeanOfMeans), "", ""})
	return Table{
		Title:  fmt.Sprintf("Stability: Fig 9 write reduction (200K pool) across %d seeds", r.Seeds),
		Header: []string{"workload", "mean", "min", "max"},
		Rows:   rows,
	}
}

// String renders the stability study.
func (r *StabilityResult) String() string { return r.Table().String() }
