package experiments

import (
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
)

// TestNoIntegrityBitIdentity pins that the integrity layer — per-page
// timestamps, read-disturb counters, the RBER estimator, the revival gate
// and the scrubber hook — is pure bookkeeping while disarmed: the
// zero-config matrix reproduces the exact counters pinned since before the
// layer existed, and no fault or patrol statistic moves.
func TestNoIntegrityBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells in -short mode")
	}
	m := checkMatrixGoldens(t)
	for _, sys := range []System{SysBaseline, SysDVP200K, SysDVPDedup, SysLX} {
		res, ok := m.Result("mail", sys)
		if !ok {
			t.Fatalf("no result for %s", sys)
		}
		if res.Metrics.Faults != (fault.Stats{}) {
			t.Errorf("%s: disarmed run accumulated fault stats: %+v", sys, res.Metrics.Faults)
		}
		if res.Metrics.Scrub != (scrub.Stats{}) {
			t.Errorf("%s: disarmed run accumulated patrol stats: %+v", sys, res.Metrics.Scrub)
		}
	}
}

// scrubArmPairs indexes a sweep's arms as (off, on) per architecture.
func scrubArmPairs(t *testing.T, r *ScrubsweepResult) map[string][2]*ScrubArm {
	t.Helper()
	pairs := make(map[string][2]*ScrubArm)
	for i := range r.Arms {
		a := &r.Arms[i]
		p := pairs[a.Arch]
		if a.Scrub {
			p[1] = a
		} else {
			p[0] = a
		}
		pairs[a.Arch] = p
	}
	for arch, p := range pairs {
		if p[0] == nil || p[1] == nil {
			t.Fatalf("%s: missing scrub on/off arm", arch)
		}
	}
	return pairs
}

// TestScrubsweepSmoke drives the sweep at its floor size and checks the
// claims the experiment exists to demonstrate: without the patrol,
// acknowledged pages decay into uncorrectable reads and end-of-trace data
// loss (and the revival systems decline decayed zombies); with the patrol
// at the default cadence, host-visible data loss drops to zero and the
// cost shows up only as scrub reads, refresh writes and latency.
func TestScrubsweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ten full replays in -short mode")
	}
	r, err := RunScrubsweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 10 {
		t.Fatalf("got %d arms, want 10 (5 architectures × scrub on/off)", len(r.Arms))
	}
	pairs := scrubArmPairs(t, r)
	var offLoss int
	var offUECC int64
	for arch, p := range pairs {
		off, on := p[0], p[1]
		offUECC += off.UECC
		offLoss += off.DataLoss
		if off.ScrubReads != 0 || off.Refreshed != 0 {
			t.Errorf("%s: patrol activity in the scrub-off control: %+v", arch, *off)
		}
		if on.DataLoss != 0 {
			t.Errorf("%s: %d pages lost with the patrol on; the default cadence must reach zero", arch, on.DataLoss)
		}
		if on.DataLoss > off.DataLoss {
			t.Errorf("%s: patrol increased data loss: %d > %d", arch, on.DataLoss, off.DataLoss)
		}
		// Refreshed can exceed RefreshWrites: making room for a refresh may
		// let GC relocate the page first, which the scrubber still counts.
		if on.ScrubReads == 0 || on.RefreshWrites == 0 || on.RefreshWrites > on.Refreshed {
			t.Errorf("%s: patrol accounting inconsistent: %+v", arch, *on)
		}
		// The patrol works in idle windows: it may lengthen the read tail
		// through refresh-triggered GC, but only boundedly — a broken
		// scheduler that queued patrol work ahead of host requests would
		// push the p99 out by the makespan, not milliseconds.
		if band := off.ReadP99 + 50*ssd.Millisecond; on.ReadP99 > band {
			t.Errorf("%s: scrub-on read p99 %v outside the regression band %v (off %v)",
				arch, on.ReadP99, band, off.ReadP99)
		}
	}
	if offLoss == 0 || offUECC == 0 {
		t.Errorf("scrub-off arms lost %d pages over %d uncorrectable reads; the model decays too slowly to measure", offLoss, offUECC)
	}
	// The revival integrity gate: with scrub off, the dvp arm must both
	// hit uncorrectable reads and decline decayed zombies.
	dvp := pairs["dvp"][0]
	if dvp.UECC == 0 {
		t.Error("dvp without patrol saw no uncorrectable reads")
	}
	if dvp.Declined == 0 {
		t.Error("dvp without patrol declined no revivals; the RBER gate never fired")
	}
	if dvp.Revived == 0 {
		t.Error("dvp revived nothing; the gate should vet, not veto")
	}
	t.Log("\n" + r.String())
}

// TestScrubsweepDeterministic pins that the sweep is a pure function of
// its options: byte-identical counters across two identical runs.
func TestScrubsweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("twenty full replays in -short mode")
	}
	a, err := RunScrubsweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScrubsweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arms) != len(b.Arms) {
		t.Fatalf("arm counts differ: %d vs %d", len(a.Arms), len(b.Arms))
	}
	for i := range a.Arms {
		if a.Arms[i] != b.Arms[i] {
			t.Errorf("arm %d differs across identical runs:\n %+v\n %+v", i, a.Arms[i], b.Arms[i])
		}
	}
}
