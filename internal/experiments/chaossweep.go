package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/scrub"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// ------------------------------------------------------------- chaos soak --

// DefaultChaosCycles is the number of crash→recover→continue cycles the
// soak injects per architecture when Options.ChaosCycles is 0.
const DefaultChaosCycles = 6

// chaosSweepDivisor shrinks the soak's trace relative to Options.Requests:
// every architecture lives one full pilot life plus one full chaotic life.
const chaosSweepDivisor = 8

// chaosSweepFloor keeps each life long enough that GC pressure, erase
// failures and RBER aging actually accumulate between crashes — a short
// trace degenerates into a crash sweep with nothing for the governor to do.
const chaosSweepFloor = 20_000

// DefaultChaosHealthPlan is the governor plan the soak substitutes when
// Options.Health is disabled: throttle on sustained GC debt, go read-only
// near the free-block floor, declare death only on gross damage, and give
// transient program faults a few host-layer retries.
func DefaultChaosHealthPlan() health.Config {
	return health.Config{
		ThrottleDebt:   4,
		ReadOnlyFree:   2,
		DeadRetiredPct: 50,
		DeadLostPages:  256,
		MaxRetries:     4,
	}
}

// DefaultChaosFaultPlan is the reliability plan the soak substitutes when
// Options.Faults injects nothing: mild program and erase failure rates —
// enough that GC re-lands and block retirements actually happen across a
// life — composed with the scrubsweep's accelerated RBER decay so crash
// recovery runs against decaying flash, not perfect flash.
func DefaultChaosFaultPlan(seed int64) fault.Config {
	return fault.Config{
		Seed:            seed,
		ProgramFailProb: 5e-3,
		EraseFailProb:   5e-3,
		WearFactor:      0.02,
		Integrity:       DefaultIntegrityPlan(),
	}
}

// ChaosArm is one architecture's chaotic life: the scheduled crash cycles,
// what the oracle and the loss ledger found, and how far down the
// degradation ladder the drive ended.
type ChaosArm struct {
	Arch string

	Cycles     int   // crash cycles scheduled
	Crashes    int   // crashes that actually fired (must equal Cycles)
	Violations int   // integrity-oracle failures across every check (must be 0)
	LostPages  int64 // valid pages lost to uncorrectable reads (must be 0)

	Survived   bool // reached the end of the trace without going dead
	FinalState health.State

	RejectedWrites  int64 // writes shed in read-only or dead states
	ThrottledWrites int64 // writes that paid the GC-debt throttle delay
	Retries         int64 // host-layer retries of transient program faults
	Relands         int64 // GC relocations re-landed after a block went bad
	Retired         int64 // blocks retired as bad over the life

	ReadP99 ssd.Time
}

// ChaossweepResult is the rendered outcome of RunChaossweep.
type ChaossweepResult struct {
	Workload string
	Requests int64
	Seed     int64
	Cycles   int
	Arms     []ChaosArm
}

// chaosTenantRecs merges the antagonist tenant pair (victim mail stream +
// 4× trans aggressor) into one record stream for the soak's direct replay
// loop: tenant LBA spaces are stacked the way the engine stacks them, and
// records interleave by arrival time with ties broken by tenant order.
func chaosTenantRecs(o Options) ([]trace.Record, int64, error) {
	traces, err := sim.GenerateTenants(antagonistSet(), o.Requests, o.Seed)
	if err != nil {
		return nil, 0, err
	}
	bases := make([]uint64, len(traces))
	var base uint64
	total := 0
	for i, t := range traces {
		bases[i] = base
		base += uint64(t.Footprint)
		total += len(t.Recs)
	}
	idx := make([]int, len(traces))
	out := make([]trace.Record, 0, total)
	for {
		best := -1
		var bestTime int64
		for i, t := range traces {
			if idx[i] >= len(t.Recs) {
				continue
			}
			if rt := t.Recs[idx[i]].Time; best == -1 || rt < bestTime {
				best, bestTime = i, rt
			}
		}
		if best == -1 {
			break
		}
		r := traces[best].Recs[idx[best]]
		r.LBA += bases[best]
		out = append(out, r)
		idx[best]++
	}
	return out, sim.TotalFootprint(traces), nil
}

// chaosLife is one device's chaotic life: precondition, then replay under
// faults and decay with repeated crash→recover→continue cycles, the oracle
// checked after every recovery and once more at the end.
type chaosLife struct {
	crashes         int
	violations      int
	opsPrecondition int64
	opsTotal        int64
	lost            int64
	survived        bool
	hstats          health.Stats
	fstats          fault.Stats
	readP99         ssd.Time
}

// runChaosLife replays the merged tenant trace on a fresh device. schedule
// holds per-cycle op deltas: after preconditioning (and again after every
// recovery) the power-loss trigger is re-armed that many flash ops ahead.
// A nil schedule is the pilot: a crash-free life that charts the op window.
func runChaosLife(cfg sim.Config, recs []trace.Record, footprint int64, schedule []int64) (chaosLife, error) {
	out := chaosLife{survived: true}
	cfg.Faults.CrashAtOp = 0
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return out, err
	}
	shadow, ackOnWrite := sim.AttachShadow(dev)
	hr, ok := dev.(sim.HashReader)
	if !ok {
		return out, fmt.Errorf("experiments: device %T lacks ReadHash", dev)
	}
	store := sim.StoreOf(dev)
	if store == nil {
		return out, fmt.Errorf("experiments: device %T exposes no store", dev)
	}

	// Preconditioning fill, bit-identical to sim.Run's.
	var end ssd.Time
	for lpn := int64(0); lpn < footprint; lpn++ {
		h := sim.PreconditionHash(lpn)
		done, err := dev.Write(ftl.LPN(lpn), h, 0)
		if err != nil {
			return out, fmt.Errorf("experiments: chaos precondition write %d: %w", lpn, err)
		}
		shadow.Observe(ftl.LPN(lpn), h)
		if ackOnWrite {
			shadow.Ack(ftl.LPN(lpn), h)
		}
		if done > end {
			end = done
		}
	}
	out.opsPrecondition = busOps(dev)
	shift := end + ssd.Millisecond

	next := 0
	if next < len(schedule) {
		store.ArmCrash(schedule[next])
		next++
	}

	lats := make([]ssd.Time, 0, len(recs)/4)
replay:
	for i, rec := range recs {
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		var err error
		switch rec.Op {
		case trace.OpWrite:
			_, err = dev.Write(lpn, rec.Hash, arrival)
			if err == nil {
				shadow.Observe(lpn, rec.Hash)
				if ackOnWrite {
					shadow.Ack(lpn, rec.Hash)
				}
			}
		case trace.OpRead:
			var done ssd.Time
			done, err = dev.Read(lpn, arrival)
			if err == nil {
				lats = append(lats, done-arrival)
			}
		default:
			return out, fmt.Errorf("experiments: record %d has unknown op %v", i, rec.Op)
		}
		switch {
		case err == nil:
		case errors.Is(err, fault.ErrPowerLoss):
			out.crashes++
			// The page under write when power failed has no atomicity
			// guarantee; every other acknowledged page must survive.
			var iw *sim.InterruptedWrite
			if errors.As(err, &iw) {
				shadow.Exempt(iw.LPN)
			}
			if _, err := sim.Recover(dev, sim.RecoverOptions{}); err != nil {
				return out, fmt.Errorf("experiments: chaos recovery after crash %d: %w", out.crashes, err)
			}
			out.violations += len(shadow.Verify(hr))
			if next < len(schedule) {
				store.ArmCrash(schedule[next])
				next++
			}
		case errors.Is(err, health.ErrDeviceDead):
			// The drive is gone: stop submitting; the final oracle check
			// still runs against whatever flash state remains.
			out.survived = false
			break replay
		case rec.Op == trace.OpWrite && errors.Is(err, health.ErrReadOnly):
			// Shed write on a degraded drive. It was never acknowledged, so
			// the oracle expects nothing from it.
		default:
			return out, fmt.Errorf("experiments: chaos record %d: %w", i, err)
		}
	}
	out.opsTotal = busOps(dev)
	out.violations += len(shadow.Verify(hr))
	out.lost = store.LostPages()
	out.fstats = store.FaultStats()
	if hd, ok := dev.(interface{ HealthStats() health.Stats }); ok {
		out.hstats = hd.HealthStats()
	}
	out.readP99 = timeP99(lats)
	return out, nil
}

// RunChaossweep soaks all five architectures in seeded chaos: the
// antagonist tenant pair replayed under mild program/erase faults and
// accelerated RBER decay (scrub patrol on), with the health governor
// interposed and repeated sudden power losses spread across each life.
// After every crash the device recovers and the integrity oracle checks
// every durably acknowledged page; the life then continues on the
// recovered drive. A correct stack survives every cycle with zero oracle
// violations and zero lost valid pages while degrading gracefully —
// throttling, shedding writes, re-landing GC — instead of failing the run.
func RunChaossweep(o Options) (*ChaossweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cycles := o.ChaosCycles
	if cycles == 0 {
		cycles = DefaultChaosCycles
	}
	small := o
	small.Requests = o.Requests / chaosSweepDivisor
	if small.Requests < chaosSweepFloor {
		small.Requests = chaosSweepFloor
	}
	if small.Requests > o.Requests {
		small.Requests = o.Requests
	}
	if !small.Faults.Active() {
		small.Faults = DefaultChaosFaultPlan(small.ChaosSeed + 1)
	}
	if !small.Health.Enabled() {
		small.Health = DefaultChaosHealthPlan()
	}
	recs, footprint, err := chaosTenantRecs(small)
	if err != nil {
		return nil, err
	}
	archs := crashArchConfigs(small, footprint)
	// Decaying flash needs the patrol, as in the scrubsweep's on arms.
	for i := range archs {
		if archs[i].cfg.Faults.IntegrityArmed() && !archs[i].cfg.Scrub.Enabled() {
			archs[i].cfg.Scrub = scrub.Config{
				Interval:    scrubIntervalFor(DefaultScrubSweepPeriod, archs[i].cfg.Geometry),
				RefreshRBER: DefaultScrubRefreshRBER,
			}
		}
	}

	// Arms are independent lives; results are keyed by arm index, so the
	// output is byte-identical for every worker count.
	jobs := small.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	arms := make([]ChaosArm, len(archs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for ai, a := range archs {
		wg.Add(1)
		go func(ai int, name string, cfg sim.Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			doomed := firstErr != nil
			mu.Unlock()
			if doomed {
				return
			}
			arm, err := runChaosArm(small, name, cfg, recs, footprint, cycles, ai)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			arms[ai] = arm
		}(ai, a.name, a.cfg)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &ChaossweepResult{
		Workload: "victim-mail + antag-trans",
		Requests: small.Requests,
		Seed:     small.ChaosSeed,
		Cycles:   cycles,
		Arms:     arms,
	}, nil
}

// runChaosArm runs one architecture's pilot and chaotic life. The pilot (a
// crash-free life under the same faults, decay and governor) charts the
// post-precondition op window; the crash schedule then slices cycle deltas
// jittered in [base/2, base] with base = window/(2·cycles+1), so the deltas
// sum below half the window and every scheduled crash fires even on lives
// that issue fewer flash ops than the pilot (a crashed write-back buffer
// legitimately drops its unflushed pages, shrinking the buffered arm's op
// count each cycle).
func runChaosArm(o Options, name string, cfg sim.Config, recs []trace.Record, footprint int64, cycles, armIndex int) (ChaosArm, error) {
	pilot, err := runChaosLife(cfg, recs, footprint, nil)
	if err != nil {
		return ChaosArm{}, fmt.Errorf("experiments: chaossweep pilot %s: %w", name, err)
	}
	if pilot.violations > 0 {
		return ChaosArm{}, fmt.Errorf("experiments: chaossweep pilot %s: %d oracle violations without a crash",
			name, pilot.violations)
	}
	window := pilot.opsTotal - pilot.opsPrecondition
	if window <= int64(2*cycles) {
		return ChaosArm{}, fmt.Errorf("experiments: chaossweep pilot %s: op window %d too small for %d cycles",
			name, window, cycles)
	}
	base := window / int64(2*cycles+1)
	state := uint64(o.ChaosSeed)*0x9E3779B97F4A7C15 + uint64(armIndex+1)
	schedule := make([]int64, cycles)
	for j := range schedule {
		schedule[j] = base/2 + int64(splitmix64(&state)%uint64(base/2+1))
		if schedule[j] < 1 {
			schedule[j] = 1
		}
	}
	life, err := runChaosLife(cfg, recs, footprint, schedule)
	if err != nil {
		return ChaosArm{}, fmt.Errorf("experiments: chaossweep %s: %w", name, err)
	}
	return ChaosArm{
		Arch:            name,
		Cycles:          cycles,
		Crashes:         life.crashes,
		Violations:      life.violations,
		LostPages:       life.lost,
		Survived:        life.survived,
		FinalState:      life.hstats.State,
		RejectedWrites:  life.hstats.RejectedWrites,
		ThrottledWrites: life.hstats.ThrottledWrites,
		Retries:         life.hstats.Retries,
		Relands:         life.fstats.GCRelands,
		Retired:         life.fstats.RetiredBlocks,
		ReadP99:         life.readP99,
	}, nil
}

// Table renders the soak.
func (r *ChaossweepResult) Table() Table {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		survived := "yes"
		if !a.Survived {
			survived = "no"
		}
		rows = append(rows, []string{
			a.Arch,
			fmt.Sprintf("%d", a.Cycles),
			fmt.Sprintf("%d", a.Crashes),
			fmt.Sprintf("%d", a.Violations),
			fmt.Sprintf("%d", a.LostPages),
			survived,
			a.FinalState.String(),
			fmt.Sprintf("%d", a.RejectedWrites),
			fmt.Sprintf("%d", a.ThrottledWrites),
			fmt.Sprintf("%d", a.Retries),
			fmt.Sprintf("%d", a.Relands),
			fmt.Sprintf("%d", a.Retired),
			fmt.Sprintf("%.2f", float64(a.ReadP99)/float64(ssd.Millisecond)),
		})
	}
	return Table{
		Title:  "Chaossweep: crash/fault/decay soak under the health governor",
		Header: []string{"arm", "cycles", "crashed", "violations", "lost", "survived", "final", "rejected", "throttled", "retries", "relands", "retired", "read p99 ms"},
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("workload %s, %d requests, chaos seed %d, %d crash cycles per arm", r.Workload, r.Requests, r.Seed, r.Cycles),
			"each cycle cuts power mid-op, recovers from OOB + journal, oracle-checks every acknowledged page,",
			"then continues the same life; faults re-land GC mid-relocation, RBER decays with the patrol on,",
			"and the governor throttles/sheds instead of failing — violations and lost pages must stay 0.",
		},
	}
}

// String renders the soak table.
func (r *ChaossweepResult) String() string { return r.Table().String() }
