// Package experiments regenerates every table and figure of the paper's
// evaluation from synthetic traces: the characterization studies (Figs 1–6),
// the configuration tables (Tables I–II) and the full-simulation results
// (Figs 9–12, 14–15). Each experiment is registered under the paper's
// artifact id ("fig9", "table2", …) and renders the same rows/series the
// paper reports.
//
// Scaling: the FIU traces run to millions of requests against 100K–1M-entry
// pools. Experiments here default to a few hundred thousand requests, and
// pool capacities given in "paper entries" are scaled by
// Requests/PaperRequests so the pool:trace ratio — which is what determines
// hit rates — matches the paper's.
package experiments

import (
	"fmt"

	"zombiessd/internal/core"
	"zombiessd/internal/dftl"
	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/rain"
	"zombiessd/internal/scrub"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
)

// PaperRequests approximates the per-trace request count of the paper's
// evaluation; pool capacities scale relative to it.
const PaperRequests = 4_000_000

// Options control the scale of every experiment.
type Options struct {
	// Requests per workload (per day for the multi-day studies).
	Requests int64
	// Days for the per-day figures (1 and 5).
	Days int
	// Seed drives all workload generation.
	Seed int64
	// Utilization is the footprint : exported-capacity ratio of the
	// simulated drives; higher means more GC pressure.
	Utilization float64
	// Faults is the reliability plan applied to every simulated device.
	// The zero value (the default) models perfect drives, keeping all
	// paper figures bit-identical.
	Faults fault.Config
	// CrashPoints is the number of sudden-power-loss points the crash
	// sweep injects per architecture; 0 uses the sweep's default (32).
	CrashPoints int
	// CrashSeed drives crash-point placement, independently of Seed so
	// the same workload can be swept at different op indices.
	CrashSeed int64
	// GCFaultWeight is the fault-aware GC victim-score weight
	// (ftl.StoreConfig.FaultPenaltyWeight) applied to every simulated
	// device: victims lose weight × accumulated program failures of greed,
	// steering relocation onto trustworthy flash. The default 0 keeps all
	// victim choices — and so every paper figure — bit-identical; the
	// lifetime experiment substitutes its own default and carries a
	// weight-0 ablation arm.
	GCFaultWeight float64
	// Scrub is the background-patrol plan applied to every simulated
	// device. The zero value (the default) disables scrubbing, keeping all
	// paper figures bit-identical; the scrubsweep experiment substitutes
	// its own default interval and carries a scrub-off control arm.
	Scrub scrub.Config
	// Jobs bounds the worker goroutines RunMatrix spreads its cells
	// across; 0 (the default) uses GOMAXPROCS. Results are byte-identical
	// for every value — cells are independent simulations and the matrix
	// is keyed, not ordered by completion.
	Jobs int
	// TenantSpec, when non-empty, replaces the tenantsweep experiment's
	// built-in 1→8 tenant-count ladder with an explicit tenant set in the
	// sim.ParseTenants grammar (the -tenants flag).
	TenantSpec string
	// QoSPolicies is the comma-separated arbiter list the tenantsweep
	// crosses its cells with (the -qos flag); empty means "fifo,wrr".
	QoSPolicies string
	// QueueDepth is the default per-tenant queue-depth bound for
	// multi-tenant runs (the -qd flag); 0 lets the tenantsweep pick its
	// own default.
	QueueDepth int
	// GCPreempt is the preemptible-GC policy (ftl.StoreConfig.Preempt)
	// applied to every simulated device: idle-window partial victim
	// drains, read-over-GC suspension and multi-victim lookahead. The zero
	// value (the default) keeps GC blocking and every paper figure
	// bit-identical; the gcsweep experiment crosses its own policy arms.
	GCPreempt ftl.PreemptConfig
	// Telemetry, when Enabled, attaches a fresh observability instance
	// (metrics registry, latency attribution, timeline tracer) to every
	// simulated matrix device. Each cell gets its own instance, so
	// parallel arms share nothing; instances are retained on the Matrix
	// for export. The zero value observes nothing and keeps every counter
	// bit-identical.
	Telemetry telemetry.Config
	// Health is the device health-governor plan (sim.Config.Health)
	// applied to every simulated device: GC-debt write throttling, the
	// free-block read-only floor, dead-drive thresholds and host-layer
	// retries of transient program faults. The zero value (the default)
	// leaves devices ungoverned and every paper figure bit-identical; the
	// chaossweep experiment substitutes its own governed default.
	Health health.Config
	// Rain is the intra-SSD RAIN parity plan (sim.Config.RAIN) applied to
	// every simulated device: XOR parity striping across channels with
	// stripe reconstruction of unreadable pages. The zero value (the
	// default) builds no parity tracker and keeps every paper figure
	// bit-identical; the rainsweep experiment crosses its own parity
	// on/off arms.
	Rain rain.Config
	// ChaosCycles is the number of crash→recover→continue cycles the
	// chaos soak injects per architecture; 0 uses the soak's default (6).
	ChaosCycles int
	// ChaosSeed drives crash placement inside the chaos soak,
	// independently of Seed and CrashSeed.
	ChaosSeed int64
	// Dftl is the flash-resident mapping plan (sim.Config.DFTL) applied to
	// every simulated device: the page map lives in translation pages on
	// flash with a bounded LRU cache of resident frames, and translation
	// blocks are garbage-collected as a second stream. The zero value (the
	// default) keeps the map in free RAM and every paper figure
	// bit-identical; the dftlsweep experiment crosses its own CMT-size
	// arms.
	Dftl dftl.Config
	// PaperGeometry, when true, runs every simulated device on the paper's
	// full Table I 1 TB drive instead of the footprint-scaled default.
	// Per-page host state is chunked sparse arrays, so only the touched
	// footprint costs RAM and the big drive fits a CI runner.
	PaperGeometry bool
}

// DefaultOptions returns the scale used by `zombiectl` unless overridden:
// 240K requests per workload, three days for the day studies.
func DefaultOptions() Options {
	return Options{Requests: 600_000, Days: 3, Seed: 1, Utilization: 0.75}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Requests < 1000 {
		return fmt.Errorf("experiments: need at least 1000 requests, got %d", o.Requests)
	}
	if o.Days < 1 {
		return fmt.Errorf("experiments: days must be ≥ 1, got %d", o.Days)
	}
	if o.Utilization <= 0 || o.Utilization >= 1 {
		return fmt.Errorf("experiments: utilization must be in (0,1), got %g", o.Utilization)
	}
	if o.GCFaultWeight < 0 {
		return fmt.Errorf("experiments: GC fault weight must be ≥ 0, got %g", o.GCFaultWeight)
	}
	if o.CrashPoints < 0 {
		return fmt.Errorf("experiments: crash points must be ≥ 0, got %d", o.CrashPoints)
	}
	if o.CrashSeed < 0 {
		return fmt.Errorf("experiments: crash seed must be ≥ 0, got %d", o.CrashSeed)
	}
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	if err := o.Scrub.Validate(); err != nil {
		return err
	}
	if o.Scrub.Enabled() && !o.Faults.IntegrityArmed() {
		return fmt.Errorf("experiments: scrubbing needs the integrity model armed (set Faults.Integrity.BaseRBER)")
	}
	if o.Jobs < 0 {
		return fmt.Errorf("experiments: jobs must be ≥ 0 (0 = all cores), got %d", o.Jobs)
	}
	if o.TenantSpec != "" {
		if _, err := sim.ParseTenants(o.TenantSpec); err != nil {
			return err
		}
	}
	if o.QoSPolicies != "" {
		if _, err := sim.ParseArbiterList(o.QoSPolicies); err != nil {
			return err
		}
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("experiments: queue depth must be ≥ 0, got %d", o.QueueDepth)
	}
	if err := o.GCPreempt.Validate(); err != nil {
		return err
	}
	if err := o.Telemetry.Validate(); err != nil {
		return err
	}
	if err := o.Health.Validate(); err != nil {
		return err
	}
	if err := o.Rain.Validate(); err != nil {
		return err
	}
	if o.ChaosCycles < 0 {
		return fmt.Errorf("experiments: chaos cycles must be ≥ 0, got %d", o.ChaosCycles)
	}
	if o.ChaosSeed < 0 {
		return fmt.Errorf("experiments: chaos seed must be ≥ 0, got %d", o.ChaosSeed)
	}
	if err := o.Dftl.Validate(); err != nil {
		return err
	}
	return nil
}

// ScaleEntries converts a pool capacity expressed in the paper's entries
// (e.g. 200_000) to this run's scale, with a floor that keeps tiny test
// runs meaningful.
func (o Options) ScaleEntries(paperEntries int) int {
	scaled := int(int64(paperEntries) * o.Requests / PaperRequests)
	if scaled < 64 {
		scaled = 64
	}
	return scaled
}

// deviceConfig assembles the sim.Config shared by every full-simulation
// experiment for a workload with the given footprint.
func (o Options) deviceConfig(kind sim.Kind, footprint int64, poolKind sim.PoolKind, paperEntries int) sim.Config {
	entries := o.ScaleEntries(paperEntries)
	geo := sim.GeometryFor(footprint, o.Utilization)
	if o.PaperGeometry {
		geo = ssd.PaperGeometry()
	}
	return sim.Config{
		Geometry: geo,
		Latency:  ssd.PaperLatency(),
		Store: ftl.StoreConfig{
			GCFreeBlockThreshold: 2,
			PopularityWeight:     popularityWeightFor(kind),
			FaultPenaltyWeight:   o.GCFaultWeight,
			Preempt:              o.GCPreempt,
		},
		LogicalPages: footprint,
		Kind:         kind,
		PoolKind:     poolKind,
		MQ:           core.MQConfig{Queues: 8, Capacity: entries, DefaultLifetime: 8192},
		LRUCapacity:  entries,
		LX:           lxssd.Config{Capacity: entries, MinPopularity: 0},
		Faults:       o.Faults,
		Scrub:        o.Scrub,
		Health:       o.Health,
		RAIN:         o.Rain,
		DFTL:         o.Dftl,
	}
}

// popularityWeightFor enables popularity-aware GC only for the DVP
// architectures, per Section IV-D; baseline, dedup-only and LX keep greedy
// GC.
func popularityWeightFor(kind sim.Kind) float64 {
	switch kind {
	case sim.KindDVP, sim.KindDVPDedup:
		return sim.DefaultPopularityWeight
	default:
		return 0
	}
}
