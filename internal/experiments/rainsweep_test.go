package experiments

import (
	"reflect"
	"testing"
)

// TestRainsweepDieFailureSurvival is the acceptance gate for the RAIN
// work: on every architecture the parity-on arm must ride out a whole-die
// failure with zero lost pages and a clean oracle, while its parity-off
// control — same die, same kill op — demonstrably loses data. The parity
// arms must also show the machinery actually ran: pages reconstructed and
// a nonzero parity write tax.
func TestRainsweepDieFailureSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("rainsweep replays ten full device lives")
	}
	r, err := RunRainsweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 10 {
		t.Fatalf("swept %d arms, want 5 architectures × parity off/on", len(r.Arms))
	}
	for _, a := range r.Arms {
		if a.Parity {
			if a.LostPages != 0 {
				t.Errorf("%s parity-on: %d pages lost; a die failure under parity must lose nothing", a.Arch, a.LostPages)
			}
			if a.DataLoss != 0 {
				t.Errorf("%s parity-on: %d oracle violations", a.Arch, a.DataLoss)
			}
			if a.Reconstructed == 0 {
				t.Errorf("%s parity-on: survived without reconstructing anything — die kill ineffective?", a.Arch)
			}
			if a.ParityWrites == 0 || a.ParityTax() <= 0 {
				t.Errorf("%s parity-on: no parity writes recorded", a.Arch)
			}
		} else {
			if a.LostPages == 0 {
				t.Errorf("%s parity-off: lost nothing to a whole-die failure — control arm proves nothing", a.Arch)
			}
			if a.DataLoss == 0 {
				t.Errorf("%s parity-off: oracle clean despite a dead die", a.Arch)
			}
		}
	}
	t.Logf("\n%s", r)
}

// TestNoRainBitIdentity pins two invariants of the RAIN work. First, with
// Options.Rain zero no stripe tracker is built anywhere and the evaluation
// matrix counters stay byte-identical to the pre-RAIN goldens (the
// device-layer wrapper-absence half lives in internal/sim's
// TestRainWrapperPresence). Second, the rainsweep's output is a pure
// function of its options: identical for every worker count.
func TestNoRainBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("bit-identity check replays the evaluation matrix")
	}
	checkMatrixGoldens(t)

	var want *RainsweepResult
	for _, jobs := range []int{1, 8} {
		o := smallOpts()
		o.Jobs = jobs
		got, err := RunRainsweep(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d drifted from the jobs=1 sweep:\n got %+v\nwant %+v", jobs, got, want)
		}
	}
}
