package experiments

import (
	"strings"
	"testing"

	"zombiessd/internal/lifetime"
)

// TestFig9BitIdenticalWithFaultWeight is the fault-aware-GC no-perturbation
// guard: on a perfect drive (zero-fault plan) no block ever accumulates a
// program failure, so the victim-score penalty term must never fire and
// fig9 must render byte-identically whether the weight is 0 or huge.
func TestFig9BitIdenticalWithFaultWeight(t *testing.T) {
	if testing.Short() {
		t.Skip("full-simulation identity check in -short mode")
	}
	o := smallOpts()
	o.Requests = 8000
	base, err := RunFig9(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	o.GCFaultWeight = 16
	weighted, err := RunFig9(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.String() != weighted.String() {
		t.Errorf("zero-fault fig9 changed under gc-fault-weight 16:\n--- weight 0\n%s\n--- weight 16\n%s",
			base, weighted)
	}
}

// TestRunLifetimeExperiment smoke-runs the registered experiment at tiny
// scale: every architecture arm (the five systems plus the dvp-w0
// ablation) must appear in the rendered series with a stop verdict.
func TestRunLifetimeExperiment(t *testing.T) {
	o := smallOpts()
	o.Requests = 4000
	res, err := RunLifetime(o)
	if err != nil {
		t.Fatal(err)
	}
	want := append(lifetime.AllKinds(), lifetime.KindDVPUnweighted)
	if got := len(res.R.Series); got != len(want) {
		t.Fatalf("lifetime ran %d arms, want %d", got, len(want))
	}
	out := res.String()
	for _, k := range want {
		if _, ok := res.R.SeriesByKind(k); !ok {
			t.Errorf("no series for %s", k)
		}
		if !strings.Contains(out, string(k)) {
			t.Errorf("rendered table never mentions %s", k)
		}
	}
	for _, ser := range res.R.Series {
		if ser.Cause == "" || len(ser.Samples) == 0 {
			t.Errorf("%s: empty series (cause %q)", ser.Kind, ser.Cause)
		}
	}
	if !strings.Contains(out, "erase budget") {
		t.Error("rendered table lacks the erase-budget note")
	}
	// The CSV rendering must carry the same rows for plotting.
	if csv := res.Table().CSV(); !strings.Contains(csv, "cum erases") {
		t.Errorf("CSV rendering lacks the header: %q", csv[:min(120, len(csv))])
	}
}

// TestLifetimeRegistered pins the registry entry the CLI dispatches on.
func TestLifetimeRegistered(t *testing.T) {
	e, ok := ByID("lifetime")
	if !ok {
		t.Fatal("lifetime experiment not registered")
	}
	if e.NeedsMatrix {
		t.Error("lifetime must not request the shared evaluation matrix — it ages its own devices")
	}
	if !strings.Contains(strings.ToLower(e.Title), "wear") {
		t.Errorf("lifetime title %q does not mention wear", e.Title)
	}
}
