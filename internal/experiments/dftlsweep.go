package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"zombiessd/internal/dftl"
	"zombiessd/internal/sim"
	"zombiessd/internal/trace"
)

// ------------------------------------------- flash-resident mapping sweep --

// dftlSweepDivisor shrinks the sweep's trace relative to Options.Requests:
// fifteen full replays (five architectures × three CMT arms) per
// invocation.
const dftlSweepDivisor = 2

const dftlSweepFloor = 24_000

// dftlSweepFrames picks the CMT sizes crossed with every architecture,
// scaled to the workload's translation-page count so the shape survives
// any trace scale: 0 disables DFTL entirely (the in-RAM control), the
// small arm covers a quarter of the footprint's translation pages so
// misses and dirty write-backs dominate, and the large arm holds every
// translation page resident once warm.
func dftlSweepFrames(footprint int64, pageSize int) []int {
	epp := int64(dftl.EntriesPerPage(pageSize))
	tvpns := int((footprint + epp - 1) / epp)
	small := tvpns / 4
	if small < 2 {
		small = 2
	}
	large := tvpns
	if large <= small {
		large = small * 4
	}
	return []int{0, small, large}
}

// DftlArm is one (architecture, CMT frames) cell of the sweep: a full
// trace replay with the page map resident in flash translation pages
// behind a bounded CMT, mapping-integrity-checked at the end.
type DftlArm struct {
	Arch   string
	Frames int // CMT frames resident in RAM; 0 = DFTL off (in-RAM map)

	HitRate     float64 // CMT hit fraction over MapRead+MapWrite demand
	Misses      int64
	Writebacks  int64 // dirty frames written back on eviction
	BatchFolded int64 // write-backs absorbed by batched translation-GC moves

	TransPrograms int64 // translation-page flash programs
	TransGCRuns   int64 // translation-block GC cycles
	TransErased   int64 // translation blocks erased
	DataGCRuns    int64 // data-block GC cycles (total − translation)
	DataErased    int64 // data blocks erased

	Revived  int64 // zombie revivals (the DVP hit value under DFTL)
	Programs int64 // total flash programs, translation included
	WA       float64
}

// MapShare returns translation programs per flash program — the fraction
// of the drive's write bandwidth the flash-resident map consumes.
func (a DftlArm) MapShare() float64 {
	if a.Programs == 0 {
		return 0
	}
	return float64(a.TransPrograms) / float64(a.Programs)
}

// DftlsweepResult is the rendered outcome of RunDftlsweep.
type DftlsweepResult struct {
	Workload string
	Requests int64
	Seed     int64
	Arms     []DftlArm
}

// runDftlCell replays the trace on a fresh device and cross-checks the
// flash-resident mapping against the device's own table at the end: every
// logical page must resolve through CMT + translation pages to exactly
// the binding the mapper holds.
func runDftlCell(cfg sim.Config, recs []trace.Record, footprint int64) (sim.Result, error) {
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := sim.Run(dev, recs, sim.RunOptions{
		LogicalPages:      footprint,
		PreconditionPages: footprint,
	})
	if err != nil {
		return res, err
	}
	store := sim.StoreOf(dev)
	if store == nil {
		return res, fmt.Errorf("experiments: device %T exposes no store", dev)
	}
	if store.DftlEnabled() {
		if err := store.CheckDftl(store.LookupOf, footprint); err != nil {
			return res, fmt.Errorf("experiments: flash-resident mapping diverged: %w", err)
		}
	}
	return res, nil
}

// RunDftlsweep replays the mail workload on all five architectures with
// the page map held in RAM (control) and in flash translation pages
// behind a small and a large CMT. Every DFTL arm pays real flash traffic
// for mapping misses and dirty-frame write-backs, and the translation
// blocks form a second GC stream whose runs are attributed separately
// from data GC; the sweep reports what that costs each architecture in
// write amplification and what the dead-value pool's revivals are still
// worth once the map itself competes for the flash.
func RunDftlsweep(o Options) (*DftlsweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	small := o
	small.Requests = o.Requests / dftlSweepDivisor
	if small.Requests < dftlSweepFloor {
		small.Requests = dftlSweepFloor
	}
	if small.Requests > o.Requests {
		small.Requests = o.Requests
	}
	const workloadName = "mail"
	recs, footprint, err := small.traceFor(workloadName)
	if err != nil {
		return nil, err
	}
	archs := crashArchConfigs(small, footprint)

	type armSpec struct {
		arch   string
		frames int
		cfg    sim.Config
	}
	var arms []armSpec
	for _, a := range archs {
		for _, frames := range dftlSweepFrames(footprint, a.cfg.Geometry.PageSize) {
			cfg := a.cfg
			if frames > 0 {
				cfg.DFTL = dftl.Config{Enable: true, CMTFrames: frames, BatchEvict: true}
			} else {
				cfg.DFTL = dftl.Config{}
			}
			arms = append(arms, armSpec{arch: a.name, frames: frames, cfg: cfg})
		}
	}

	results := make([]sim.Result, len(arms))
	var mu sync.Mutex
	var firstErr error
	workers := small.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, arm := range arms {
		wg.Add(1)
		go func(i int, arm armSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			doomed := firstErr != nil
			mu.Unlock()
			if doomed {
				return
			}
			res, err := runDftlCell(arm.cfg, recs, footprint)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: dftlsweep %s/frames=%d: %w", arm.arch, arm.frames, err)
				}
				return
			}
			results[i] = res
		}(i, arm)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &DftlsweepResult{Workload: workloadName, Requests: small.Requests, Seed: small.Seed}
	for i, arm := range arms {
		m := results[i].Metrics
		out.Arms = append(out.Arms, DftlArm{
			Arch:          arm.arch,
			Frames:        arm.frames,
			HitRate:       m.Dftl.HitRate(),
			Misses:        m.Dftl.Misses,
			Writebacks:    m.Dftl.Writebacks,
			BatchFolded:   m.Dftl.BatchFolded,
			TransPrograms: m.Dftl.TransPrograms,
			TransGCRuns:   m.Dftl.TransGCRuns,
			TransErased:   m.Dftl.TransErased,
			DataGCRuns:    m.GC.Runs - m.Dftl.TransGCRuns,
			DataErased:    m.FlashErases - m.Dftl.TransErased,
			Revived:       m.Revived,
			Programs:      m.FlashPrograms,
			WA:            m.WriteAmplification(),
		})
	}
	return out, nil
}

// Table renders the sweep; frames-0 rows are the in-RAM mapping control.
func (r *DftlsweepResult) Table() Table {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		frames, hit, share := "off", "-", "-"
		if a.Frames > 0 {
			frames = fmt.Sprintf("%d", a.Frames)
			hit = pct(a.HitRate * 100)
			share = pct(a.MapShare() * 100)
		}
		rows = append(rows, []string{
			a.Arch, frames, hit,
			fmt.Sprintf("%d", a.Writebacks),
			fmt.Sprintf("%d", a.TransPrograms),
			fmt.Sprintf("%d/%d", a.TransGCRuns, a.DataGCRuns),
			fmt.Sprintf("%d/%d", a.TransErased, a.DataErased),
			fmt.Sprintf("%d", a.Revived),
			fmt.Sprintf("%.2f", a.WA),
			share,
		})
	}
	return Table{
		Title:  "Dftlsweep: flash-resident mapping (DFTL CMT) across architectures",
		Header: []string{"arm", "CMT", "hit rate", "writebacks", "trans programs", "GC t/d", "erases t/d", "revived", "WA", "map share"},
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("workload %s, %d requests, seed %d; CMT off = page map in RAM (control)", r.Workload, r.Requests, r.Seed),
			"DFTL arms keep the page map in flash translation pages behind a bounded LRU CMT:",
			"misses read a translation page, dirty evictions program one, and translation blocks",
			"are garbage-collected as a second stream (GC t/d and erases t/d split translation vs",
			"data). Batched eviction folds dirty resident frames into translation-GC relocations.",
			"The map share column is translation programs per flash program — the write-bandwidth",
			"tax the flash-resident map costs; revived shows the dead-value pool's win surviving it.",
		},
	}
}

// String renders the sweep table.
func (r *DftlsweepResult) String() string { return r.Table().String() }
