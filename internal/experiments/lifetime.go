package experiments

import (
	"fmt"

	"zombiessd/internal/lifetime"
)

// ----------------------------------------------------- wear-out lifetime --

// LifetimeResult wraps one drive-to-death run for rendering: the
// capacity / write-reduction / p99 vs cumulative-erases series ROADMAP
// asks for, for every device architecture plus the fault-weight ablation
// arm.
type LifetimeResult struct {
	R *lifetime.Result
}

// RunLifetime replays the web workload in repeated epochs under a
// wear-scaled fault plan until each architecture falls below the usable-
// capacity floor (or hits the erase budget or epoch cap). Epochs are a
// quarter of the experiment's request budget, and the dead-value pool is
// scaled to the per-epoch trace like every matrix experiment, so revival
// rates match the paper's regime. Options.Faults overrides the default
// wear plan; Options.GCFaultWeight overrides the fault-aware victim
// weight (0 keeps the lifetime default, and a dvp-w0 ablation arm always
// reports the unweighted policy alongside).
func RunLifetime(o Options) (*LifetimeResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cfg := lifetime.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Utilization = o.Utilization
	cfg.RequestsPerEpoch = o.Requests / 4
	if cfg.RequestsPerEpoch < 1000 {
		cfg.RequestsPerEpoch = 1000
	}
	epochScale := o
	epochScale.Requests = cfg.RequestsPerEpoch
	cfg.PoolEntries = epochScale.ScaleEntries(200_000)
	cfg.GCFaultWeight = o.GCFaultWeight
	if o.Faults.Enabled() {
		cfg.Faults = o.Faults
	}
	if o.Scrub.Enabled() {
		// The patrol needs the integrity model, so the caller's full fault
		// config (already validated as a pair) replaces the wear plan.
		cfg.Faults = o.Faults
		cfg.Scrub = o.Scrub
	}
	res, err := lifetime.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &LifetimeResult{R: res}, nil
}

// Table renders every epoch of every series — the plottable lifetime
// curves — plus per-architecture end-of-life notes.
func (r *LifetimeResult) Table() Table {
	res := r.R
	rows := make([][]string, 0, 64)
	notes := []string{
		fmt.Sprintf("floor %d of %d usable pages (%.0f%%), erase budget %d, %d requests/epoch (workload %s)",
			res.CapacityFloor, res.InitialUsable, 100*res.Config.CapacityFloorFrac,
			res.EraseBudget, res.Config.RequestsPerEpoch, res.Config.Workload),
		fmt.Sprintf("fault plan: program=%g erase=%g read=%g wear=%g suspect=%d; gc fault weight %g",
			res.Config.Faults.ProgramFailProb, res.Config.Faults.EraseFailProb,
			res.Config.Faults.ReadFailProb, res.Config.Faults.WearFactor,
			res.Config.Faults.SuspectThreshold, res.Config.GCFaultWeight),
	}
	for _, ser := range res.Series {
		for _, s := range ser.Samples {
			rows = append(rows, []string{
				string(ser.Kind), fmt.Sprintf("%d", s.Epoch), i64(s.CumErases),
				i64(s.RetiredBlocks), i64(s.UsablePages), pct(s.CapacityPct),
				pct(s.WriteRedPct), fmt.Sprintf("%.2f", s.WA), usec(float64(s.P99)),
			})
		}
		verdict := "stopped"
		if ser.Cause.Dead() {
			verdict = "died"
		}
		notes = append(notes, fmt.Sprintf("%s: %s (%s) after %d epochs — %d host writes served, %d erases paid",
			ser.Kind, verdict, ser.Cause, len(ser.Samples), ser.CumHostWrites, ser.CumErases))
	}
	return Table{
		Title:  "Lifetime: drive-to-death under a wear-scaled fault plan",
		Header: []string{"system", "epoch", "cum erases", "retired", "usable", "capacity", "write red.", "WA", "p99"},
		Rows:   rows,
		Notes:  notes,
	}
}

// String renders the lifetime run.
func (r *LifetimeResult) String() string { return r.Table().String() }
