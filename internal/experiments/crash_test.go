package experiments

import "testing"

// matrixGolden pins one cell of the zero-config evaluation matrix; shared
// by the crash and integrity identity tests so the disarmed machinery of
// both subsystems is held to the same exact counters.
type matrixGolden struct {
	hostWrites, programs, reads, erases int64
	revived, dedupHits, relocated       int64
	poolHits, poolInserts, makespan     int64
}

var matrixGoldens = map[System]matrixGolden{
	SysBaseline: {23005, 33450, 17440, 1761, 0, 0, 10445, 0, 0, 9018204},
	SysDVP200K:  {23005, 7630, 7350, 132, 15730, 0, 355, 15730, 23005, 9011444},
	SysDVPDedup: {23005, 1842, 6995, 0, 299, 20864, 0, 299, 6638, 9011444},
	SysLX:       {23005, 7748, 7369, 140, 15631, 0, 374, 15631, 23005, 9011444},
}

// checkMatrixGoldens runs the zero-config matrix and compares every cell
// against the pinned counters.
func checkMatrixGoldens(t *testing.T) *Matrix {
	t.Helper()
	return checkMatrixGoldensOpts(t, smallOpts())
}

// checkMatrixGoldensOpts is checkMatrixGoldens under explicit options, so
// observe-only features (telemetry, parallelism) can assert they leave the
// pinned counters untouched.
func checkMatrixGoldensOpts(t *testing.T, o Options) *Matrix {
	t.Helper()
	systems := []System{SysBaseline, SysDVP200K, SysDVPDedup, SysLX}
	m, err := RunMatrix(o, []string{"mail"}, systems)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range systems {
		res, ok := m.Result("mail", sys)
		if !ok {
			t.Fatalf("no result for %s", sys)
		}
		mm := res.Metrics
		got := matrixGolden{
			mm.HostWrites, mm.FlashPrograms, mm.FlashReads, mm.FlashErases,
			mm.Revived, mm.DedupHits, mm.GC.Relocated,
			mm.Pool.Hits, mm.Pool.Inserts, int64(res.Makespan),
		}
		if got != matrixGoldens[sys] {
			t.Errorf("%s drifted from the pinned counters:\n got %+v\nwant %+v", sys, got, matrixGoldens[sys])
		}
	}
	return m
}

// TestNoCrashBitIdentity pins the exact per-cell counters of the
// evaluation matrix with the crash-recovery machinery compiled in but
// disarmed (CrashAtOp = 0). The OOB stamps, the mapping journal and the
// recovery hooks must be pure bookkeeping: any drift in these counters
// means the crash subsystem changed simulation behaviour it must only
// observe.
func TestNoCrashBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells in -short mode")
	}
	checkMatrixGoldens(t)
}

// TestCrashsweepSmoke drives a small sweep through every architecture:
// each injected power loss must fire, recover via the OOB scan and pass
// the integrity oracle, and the re-seeded dead-value pool must retain a
// non-zero share of its pre-crash hit rate.
func TestCrashsweepSmoke(t *testing.T) {
	o := smallOpts()
	o.CrashPoints = 2
	r, err := RunCrashsweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 6 {
		t.Fatalf("got %d arms, want 6 (5 architectures + dvp cold-pool control)", len(r.Arms))
	}
	var warm, cold *CrashArm
	for i := range r.Arms {
		a := &r.Arms[i]
		if a.Crashed != a.Points {
			t.Errorf("%s: power loss fired at %d of %d points", a.Arch, a.Crashed, a.Points)
		}
		if a.Violations != 0 {
			t.Errorf("%s: %d integrity violations", a.Arch, a.Violations)
		}
		if a.MeanScanPages <= 0 {
			t.Errorf("%s: recovery scanned no pages", a.Arch)
		}
		if a.Arch == "dvp" {
			if a.ColdPool {
				cold = a
			} else {
				warm = a
			}
		}
	}
	if warm == nil || cold == nil {
		t.Fatal("dvp warm/cold arms missing")
	}
	if warm.MeanPostHitRate <= 0 {
		t.Error("re-seeded pool never hit after recovery")
	}
	if warm.Retention() <= 0 {
		t.Error("warm recovery retained none of the pre-crash hit rate")
	}
	t.Log("\n" + r.String())
}

// TestCrashsweepDeterministic pins that the sweep is a pure function of
// its options: same workload, seed and crash points, same aggregates.
func TestCrashsweepDeterministic(t *testing.T) {
	o := smallOpts()
	o.CrashPoints = 1
	a, err := RunCrashsweep(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrashsweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arms) != len(b.Arms) {
		t.Fatalf("arm counts differ: %d vs %d", len(a.Arms), len(b.Arms))
	}
	for i := range a.Arms {
		if a.Arms[i] != b.Arms[i] {
			t.Errorf("arm %d differs across identical runs:\n %+v\n %+v", i, a.Arms[i], b.Arms[i])
		}
	}
}
