package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/scrub"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// ---------------------------------------------------- data-integrity sweep --

// DefaultIntegrityPlan is the accelerated-decay error model the scrubsweep
// substitutes when Options.Faults.Integrity is disarmed. Real retention
// plays out over weeks; the simulated traces span seconds, so the rates are
// scaled the same way the traces are — what matters is that pages decay
// well within a run, slowly enough that a patrol at the default sweep
// period refreshes them first, and fast enough that without the patrol the
// oldest acknowledged pages decay past ECC.
func DefaultIntegrityPlan() fault.IntegrityConfig {
	return fault.IntegrityConfig{
		BaseRBER:         1e-4,
		RetentionRate:    6.0,  // ×(1+6·ageSeconds): past ECC in ~6.5 s untouched
		ReadDisturbRate:  2e-4, // ×(1+0.0002·blockReads)
		WearRate:         0.02,  // ×(1+0.02·blockErases)
		RevivalRBERLimit: 2e-3,  // decline zombies past mid-band RBER
		// CorrectableRBER / UncorrectableRBER take the fault defaults.
	}
}

// DefaultScrubSweepPeriod is the target time for one full patrol of every
// block when Options.Scrub is disabled: the per-block interval is the
// period divided by the drive's block count, so the guarantee ("every page
// sampled at least this often") holds at any geometry.
const DefaultScrubSweepPeriod = 1500 * ssd.Millisecond

// DefaultScrubRefreshRBER is the sweep's refresh threshold: mid-band
// between correctable (1e-3) and uncorrectable (4e-3), so the patrol only
// rewrites pages drifting toward danger instead of churning every page that
// merely needs an ECC retry. Lower thresholds refresh earlier but steal
// more idle bandwidth from the host.
const DefaultScrubRefreshRBER = 2e-3

// scrubSweepDivisor shrinks the sweep's trace relative to Options.Requests:
// ten full replays (five architectures × scrub on/off) per invocation. The
// floor is high because the makespan — and with it the retention decay that
// gives the sweep something to measure — scales with the request count.
const scrubSweepDivisor = 2

const scrubSweepFloor = 24_000

// ScrubArm is one (architecture, scrub on/off) cell of the sweep: a full
// trace replay against the accelerated error model, oracle-verified at the
// end — every durably acknowledged page must still read back.
type ScrubArm struct {
	Arch     string
	Scrub    bool     // background patrol enabled
	Interval ssd.Time // per-block patrol interval (0 when disabled)

	UECC          int64 // uncorrectable reads (host, GC, scrub or verify)
	Correctable   int64 // reads that needed the ECC retry path
	Revived       int64 // zombie revivals that passed the integrity gate
	Declined      int64 // revivals refused on estimated RBER or verify read
	ScrubReads    int64 // patrol sample + pre-refresh reads
	Refreshed     int64 // pages refresh-relocated by the patrol
	RefreshWrites int64 // refresh programs charged to the flash
	DataLoss      int   // acknowledged pages unreadable at end of trace
	ReadP99       ssd.Time
	Makespan      ssd.Time
}

// ScrubsweepResult is the rendered outcome of RunScrubsweep.
type ScrubsweepResult struct {
	Workload string
	Requests int64
	Seed     int64
	Arms     []ScrubArm
}

// integrityCell is one device's life under the error model: precondition,
// replay, oracle-verify.
type integrityCell struct {
	m        sim.DeviceMetrics
	dataLoss int
	readP99  ssd.Time
	makespan ssd.Time
}

// runIntegrityCell replays the trace on a fresh device with the integrity
// model armed, tracking host read latency and checking every durably
// acknowledged page at the end. Unlike the crash sweep nothing interrupts
// the run — any error is fatal.
func runIntegrityCell(cfg sim.Config, recs []trace.Record, footprint int64) (integrityCell, error) {
	var out integrityCell
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return out, err
	}
	shadow, ackOnWrite := sim.AttachShadow(dev)
	hr, ok := dev.(sim.HashReader)
	if !ok {
		return out, fmt.Errorf("experiments: device %T lacks ReadHash", dev)
	}

	// Preconditioning fill, bit-identical to sim.Run's.
	var end ssd.Time
	for lpn := int64(0); lpn < footprint; lpn++ {
		h := sim.PreconditionHash(lpn)
		done, err := dev.Write(ftl.LPN(lpn), h, 0)
		if err != nil {
			return out, fmt.Errorf("experiments: scrub precondition write %d: %w", lpn, err)
		}
		shadow.Observe(ftl.LPN(lpn), h)
		if ackOnWrite {
			shadow.Ack(ftl.LPN(lpn), h)
		}
		if done > end {
			end = done
		}
	}
	base := dev.Metrics()
	shift := end + ssd.Millisecond

	lats := make([]ssd.Time, 0, len(recs)/2)
	for i, rec := range recs {
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		switch rec.Op {
		case trace.OpWrite:
			done, err := dev.Write(lpn, rec.Hash, arrival)
			if err != nil {
				return out, fmt.Errorf("experiments: scrub record %d: %w", i, err)
			}
			shadow.Observe(lpn, rec.Hash)
			if ackOnWrite {
				shadow.Ack(lpn, rec.Hash)
			}
			if done > end {
				end = done
			}
		case trace.OpRead:
			done, err := dev.Read(lpn, arrival)
			if err != nil {
				return out, fmt.Errorf("experiments: scrub record %d: %w", i, err)
			}
			lats = append(lats, done-arrival)
			if done > end {
				end = done
			}
		default:
			return out, fmt.Errorf("experiments: record %d has unknown op %v", i, rec.Op)
		}
	}
	out.m = dev.Metrics().Sub(base)
	out.dataLoss = len(shadow.Verify(hr))
	out.readP99 = timeP99(lats)
	out.makespan = end
	return out, nil
}

// timeP99 returns the 99th-percentile of xs (0 when empty); xs is sorted in
// place.
func timeP99(xs []ssd.Time) ssd.Time {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	idx := len(xs) * 99 / 100
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

// scrubIntervalFor converts the full-sweep period into the per-block patrol
// interval for one drive.
func scrubIntervalFor(period ssd.Time, geo ssd.Geometry) ssd.Time {
	iv := period / ssd.Time(geo.TotalBlocks())
	if iv < 1 {
		iv = 1
	}
	return iv
}

// RunScrubsweep replays the mail workload against the accelerated
// retention / read-disturb / wear error model on all five architectures,
// with the background scrubber off (control) and on. The off arms show the
// cost of doing nothing — uncorrectable reads and host-visible data loss
// accumulating as acknowledged pages decay — and, on the revival systems,
// the integrity gate declining zombie pages whose estimated RBER has
// drifted past the revival limit. The on arms must drive data loss to
// zero while charging only idle-window patrol reads and refresh programs.
func RunScrubsweep(o Options) (*ScrubsweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	small := o
	small.Requests = o.Requests / scrubSweepDivisor
	if small.Requests < scrubSweepFloor {
		small.Requests = scrubSweepFloor
	}
	if small.Requests > o.Requests {
		small.Requests = o.Requests
	}
	if !small.Faults.IntegrityArmed() {
		small.Faults.Integrity = DefaultIntegrityPlan()
	}
	const workloadName = "mail"
	recs, footprint, err := small.traceFor(workloadName)
	if err != nil {
		return nil, err
	}
	archs := crashArchConfigs(small, footprint)

	type armSpec struct {
		arch  string
		cfg   sim.Config
		scrub bool
	}
	var arms []armSpec
	for _, a := range archs {
		off := a.cfg
		off.Scrub = scrub.Config{}
		on := a.cfg
		if !on.Scrub.Enabled() {
			on.Scrub = scrub.Config{
				Interval:    scrubIntervalFor(DefaultScrubSweepPeriod, on.Geometry),
				RefreshRBER: DefaultScrubRefreshRBER,
			}
		}
		arms = append(arms,
			armSpec{arch: a.name, cfg: off},
			armSpec{arch: a.name, cfg: on, scrub: true})
	}

	results := make([]integrityCell, len(arms))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, arm := range arms {
		wg.Add(1)
		go func(i int, arm armSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			mu.Lock()
			doomed := firstErr != nil
			mu.Unlock()
			if doomed {
				return
			}
			res, err := runIntegrityCell(arm.cfg, recs, footprint)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: scrubsweep %s (scrub=%v): %w", arm.arch, arm.scrub, err)
				}
				return
			}
			results[i] = res
		}(i, arm)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &ScrubsweepResult{Workload: workloadName, Requests: small.Requests, Seed: small.Seed}
	for i, arm := range arms {
		r := results[i]
		out.Arms = append(out.Arms, ScrubArm{
			Arch:          arm.arch,
			Scrub:         arm.scrub,
			Interval:      arm.cfg.Scrub.Interval,
			UECC:          r.m.Faults.UncorrectableReads,
			Correctable:   r.m.Faults.CorrectableReads,
			Revived:       r.m.Revived,
			Declined:      r.m.Faults.RevivalsDeclined,
			ScrubReads:    r.m.Scrub.ScrubReads,
			Refreshed:     r.m.Scrub.Refreshed,
			RefreshWrites: r.m.Faults.RefreshWrites,
			DataLoss:      r.dataLoss,
			ReadP99:       r.readP99,
			Makespan:      r.makespan,
		})
	}
	return out, nil
}

// Table renders the sweep.
func (r *ScrubsweepResult) Table() Table {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		mode := "off"
		if a.Scrub {
			mode = fmt.Sprintf("%dµs", a.Interval)
		}
		rows = append(rows, []string{
			a.Arch, mode,
			fmt.Sprintf("%d", a.UECC),
			fmt.Sprintf("%d", a.Correctable),
			fmt.Sprintf("%d", a.Revived),
			fmt.Sprintf("%d", a.Declined),
			fmt.Sprintf("%d", a.ScrubReads),
			fmt.Sprintf("%d", a.Refreshed),
			fmt.Sprintf("%d", a.DataLoss),
			usec(float64(a.ReadP99)),
		})
	}
	return Table{
		Title:  "Scrubsweep: data integrity under accelerated retention/read-disturb decay",
		Header: []string{"arm", "scrub", "uecc", "correctable", "revived", "declined", "scrub reads", "refreshed", "data loss", "read p99"},
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("workload %s, %d requests, seed %d; accelerated error model (retention dominates)", r.Workload, r.Requests, r.Seed),
			"scrub off: acknowledged pages decay past ECC — uncorrectable reads and end-of-trace data loss;",
			"revival systems decline zombies whose estimated RBER drifted past the revival limit.",
			"scrub on: an idle-window patrol samples each block and refresh-relocates pages past the",
			"correctable threshold, driving host-visible data loss to zero for the patrol's write cost.",
		},
	}
}

// String renders the sweep table.
func (r *ScrubsweepResult) String() string { return r.Table().String() }
