package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/recovery"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// ------------------------------------------- sudden-power-loss crash sweep --

// DefaultCrashPoints is the number of power-loss points injected per
// architecture when Options.CrashPoints is 0.
const DefaultCrashPoints = 32

// crashSweepDivisor shrinks the sweep's trace relative to Options.Requests:
// every crash point replays the whole trace on a fresh device, so the
// sweep pays points × architectures full runs.
const crashSweepDivisor = 8

// crashWriteBufferPages sizes the DRAM write-back buffer of the sweep's
// buffered arm (1 MB of 4 KB pages).
const crashWriteBufferPages = 256

// CrashArm aggregates one architecture's sweep: every injected crash point
// recovered and verified, with the scan cost and the dead-value-pool
// hit-rate retention the re-seeding buys.
type CrashArm struct {
	Arch     string
	ColdPool bool // recovery skipped pool re-seeding (control arm)

	Points     int // crash points injected
	Crashed    int // points where the trigger actually fired (must equal Points)
	Violations int // integrity-oracle failures across all points (must be 0)

	MeanScanPages float64  // OOB pages read per recovery scan
	MeanScanTime  ssd.Time // scan cost at the paper's read latency
	MeanWinners   float64  // logical pages recovered per scan
	MeanGarbage   float64  // zombie pages found per scan
	MeanReplayed  float64  // journal records accepted per scan
	TornTotal     int64    // torn pages discarded across all points

	// Hit rates are means over crashed points: pre is the pool's rate at
	// the moment power failed, post the rate of the rebuilt pool over the
	// remainder of the trace.
	MeanPreHitRate  float64
	MeanPostHitRate float64
}

// Retention returns the post-recovery share of the pre-crash hit rate
// (0 when the arm had no pre-crash lookups).
func (a CrashArm) Retention() float64 {
	if a.MeanPreHitRate == 0 {
		return 0
	}
	return a.MeanPostHitRate / a.MeanPreHitRate
}

// CrashsweepResult is the rendered outcome of RunCrashsweep.
type CrashsweepResult struct {
	Workload string
	Requests int64
	Seed     int64
	Arms     []CrashArm
}

// crashPointResult is one device's life: precondition, crash, recover,
// verify, finish the trace, verify again.
type crashPointResult struct {
	crashed        bool
	violations     int
	report         recovery.Report
	preHR, postHR  float64
	opsPrecondition int64
	opsTotal        int64
}

// busOps sums the flash operations the device's bus has completed.
func busOps(dev sim.Device) int64 {
	br, ok := dev.(interface{ Bus() *ssd.Bus })
	if !ok || br.Bus() == nil {
		return 0
	}
	r, p, e := br.Bus().Counts()
	return r + p + e
}

// runCrashPoint replays the trace on a fresh device armed to lose power at
// flash op crashAt (0 = never, the pilot), recovering and oracle-checking
// when the crash fires and again after the remaining requests.
func runCrashPoint(cfg sim.Config, recs []trace.Record, footprint, crashAt int64, cold bool) (crashPointResult, error) {
	var out crashPointResult
	cfg.Faults.CrashAtOp = crashAt
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return out, err
	}
	shadow, ackOnWrite := sim.AttachShadow(dev)
	hr, ok := dev.(sim.HashReader)
	if !ok {
		return out, fmt.Errorf("experiments: device %T lacks ReadHash", dev)
	}

	// Preconditioning fill, bit-identical to sim.Run's.
	var end ssd.Time
	for lpn := int64(0); lpn < footprint; lpn++ {
		h := sim.PreconditionHash(lpn)
		done, err := dev.Write(ftl.LPN(lpn), h, 0)
		if err != nil {
			return out, fmt.Errorf("experiments: crash precondition write %d: %w", lpn, err)
		}
		shadow.Observe(ftl.LPN(lpn), h)
		if ackOnWrite {
			shadow.Ack(ftl.LPN(lpn), h)
		}
		if done > end {
			end = done
		}
	}
	out.opsPrecondition = busOps(dev)
	shift := end + ssd.Millisecond

	for i, rec := range recs {
		arrival := shift + ssd.Time(rec.Time)
		lpn := ftl.LPN(rec.LBA)
		var err error
		switch rec.Op {
		case trace.OpWrite:
			_, err = dev.Write(lpn, rec.Hash, arrival)
			if err == nil {
				shadow.Observe(lpn, rec.Hash)
				if ackOnWrite {
					shadow.Ack(lpn, rec.Hash)
				}
			}
		case trace.OpRead:
			_, err = dev.Read(lpn, arrival)
		default:
			return out, fmt.Errorf("experiments: record %d has unknown op %v", i, rec.Op)
		}
		if err == nil {
			continue
		}
		if !errors.Is(err, fault.ErrPowerLoss) || out.crashed {
			return out, fmt.Errorf("experiments: crash record %d: %w", i, err)
		}
		out.crashed = true

		// The page under write when power failed has no atomicity
		// guarantee (flash's torn-write exclusion); every other
		// acknowledged page must survive recovery intact.
		var iw *sim.InterruptedWrite
		if errors.As(err, &iw) {
			shadow.Exempt(iw.LPN)
		}
		pre := dev.Metrics().Pool
		out.preHR = pre.HitRate()
		out.report, err = sim.Recover(dev, sim.RecoverOptions{ColdPool: cold})
		if err != nil {
			return out, fmt.Errorf("experiments: recovery at op %d: %w", crashAt, err)
		}
		out.violations += len(shadow.Verify(hr))
	}
	out.opsTotal = busOps(dev)
	// Final check: the recovered device must have served the rest of the
	// trace without corrupting anything.
	out.violations += len(shadow.Verify(hr))
	if out.crashed {
		out.postHR = dev.Metrics().Pool.HitRate()
	}
	return out, nil
}

// splitmix64 advances the crash-point RNG: tiny, seedable, deterministic.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// crashArchConfigs assembles the five swept architectures.
func crashArchConfigs(o Options, footprint int64) []struct {
	name string
	cfg  sim.Config
} {
	buffered := o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 200_000)
	buffered.WriteBufferPages = crashWriteBufferPages
	return []struct {
		name string
		cfg  sim.Config
	}{
		{"baseline", o.deviceConfig(sim.KindBaseline, footprint, sim.PoolMQ, 200_000)},
		{"buffered", buffered},
		{"dvp+dedup", o.deviceConfig(sim.KindDVPDedup, footprint, sim.PoolMQ, 200_000)},
		{"lx-ssd", o.deviceConfig(sim.KindLX, footprint, sim.PoolMQ, 200_000)},
		{"dvp", o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 200_000)},
	}
}

// RunCrashsweep sweeps sudden-power-loss points across the five device
// architectures on the mail workload. For every point it cuts power
// mid-operation, runs the OOB recovery scan, checks the integrity oracle
// (every durably acknowledged page must read back its last acknowledged
// content), finishes the trace on the recovered device and checks again.
// The dvp arm runs twice — warm (pool re-seeded from the scan's zombie
// pages) and cold (control) — to measure what re-seeding retains of the
// pre-crash hit rate.
func RunCrashsweep(o Options) (*CrashsweepResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	points := o.CrashPoints
	if points == 0 {
		points = DefaultCrashPoints
	}
	small := o
	small.Requests = o.Requests / crashSweepDivisor
	if small.Requests < 3000 {
		small.Requests = 3000
	}
	if small.Requests > o.Requests {
		small.Requests = o.Requests
	}
	const workloadName = "mail"
	recs, footprint, err := small.traceFor(workloadName)
	if err != nil {
		return nil, err
	}
	archs := crashArchConfigs(small, footprint)

	// One pilot per architecture charts its op count; crash points land
	// uniformly in (precondition, end] — mid-write, mid-GC-relocation or
	// mid-erase, wherever the op index falls.
	type armSpec struct {
		arch   string
		cfg    sim.Config
		cold   bool
		points []int64
	}
	var arms []armSpec
	for i, a := range archs {
		pilot, err := runCrashPoint(a.cfg, recs, footprint, 0, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: crashsweep pilot %s: %w", a.name, err)
		}
		if pilot.violations > 0 {
			return nil, fmt.Errorf("experiments: crashsweep pilot %s: %d oracle violations without a crash",
				a.name, pilot.violations)
		}
		window := pilot.opsTotal - pilot.opsPrecondition
		if window <= 0 {
			return nil, fmt.Errorf("experiments: crashsweep pilot %s issued no flash ops after preconditioning", a.name)
		}
		state := uint64(small.CrashSeed)*0x9E3779B97F4A7C15 + uint64(i+1)
		ks := make([]int64, points)
		for j := range ks {
			ks[j] = pilot.opsPrecondition + 1 + int64(splitmix64(&state)%uint64(window))
		}
		arms = append(arms, armSpec{arch: a.name, cfg: a.cfg, points: ks})
		if a.cfg.Kind == sim.KindDVP && a.cfg.WriteBufferPages == 0 {
			arms = append(arms, armSpec{arch: a.name, cfg: a.cfg, cold: true, points: ks})
		}
	}

	// Every (arm, point) cell is an independent simulation.
	type cellKey struct{ arm, point int }
	results := make(map[cellKey]crashPointResult)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for ai, arm := range arms {
		for pi, k := range arm.points {
			wg.Add(1)
			go func(ai, pi int, arm armSpec, k int64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				mu.Lock()
				doomed := firstErr != nil
				mu.Unlock()
				if doomed {
					return
				}
				res, err := runCrashPoint(arm.cfg, recs, footprint, k, arm.cold)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("experiments: crashsweep %s op %d: %w", arm.arch, k, err)
					}
					return
				}
				results[cellKey{ai, pi}] = res
			}(ai, pi, arm, k)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &CrashsweepResult{Workload: workloadName, Requests: small.Requests, Seed: small.CrashSeed}
	for ai, arm := range arms {
		agg := CrashArm{Arch: arm.arch, ColdPool: arm.cold, Points: len(arm.points)}
		var preSum, postSum float64
		for pi := range arm.points {
			r := results[cellKey{ai, pi}]
			if r.crashed {
				agg.Crashed++
			}
			agg.Violations += r.violations
			agg.MeanScanPages += float64(r.report.PagesScanned)
			agg.MeanWinners += float64(r.report.Winners)
			agg.MeanGarbage += float64(r.report.Garbage)
			agg.MeanReplayed += float64(r.report.JournalReplayed)
			agg.TornTotal += r.report.TornDiscarded
			preSum += r.preHR
			postSum += r.postHR
		}
		if n := float64(len(arm.points)); n > 0 {
			agg.MeanScanPages /= n
			agg.MeanWinners /= n
			agg.MeanGarbage /= n
			agg.MeanReplayed /= n
			agg.MeanPreHitRate = preSum / n
			agg.MeanPostHitRate = postSum / n
		}
		agg.MeanScanTime = recovery.Report{PagesScanned: int64(agg.MeanScanPages)}.ScanCost(ssd.PaperLatency().Read)
		out.Arms = append(out.Arms, agg)
	}
	return out, nil
}

// Table renders the sweep.
func (r *CrashsweepResult) Table() Table {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		name := a.Arch
		if a.ColdPool {
			name += " (cold pool)"
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", a.Points),
			fmt.Sprintf("%d", a.Crashed),
			fmt.Sprintf("%d", a.Violations),
			fmt.Sprintf("%.0f", a.MeanScanPages),
			fmt.Sprintf("%.1f", float64(a.MeanScanTime)/float64(ssd.Millisecond)),
			fmt.Sprintf("%.0f", a.MeanWinners),
			fmt.Sprintf("%.0f", a.MeanGarbage),
			fmt.Sprintf("%.0f", a.MeanReplayed),
			pct(a.MeanPreHitRate * 100),
			pct(a.MeanPostHitRate * 100),
			pct(a.Retention() * 100),
		})
	}
	return Table{
		Title:  "Crashsweep: sudden-power-loss recovery across architectures",
		Header: []string{"arm", "points", "crashed", "violations", "scan pages", "scan ms", "winners", "zombies", "replayed", "pre HR", "post HR", "retention"},
		Rows:   rows,
		Notes: []string{
			fmt.Sprintf("workload %s, %d requests per point, crash seed %d", r.Workload, r.Requests, r.Seed),
			"each point cuts power mid-flash-op, scans every OOB page, rebuilds L2P by last-writer-wins,",
			"re-seeds the dead-value pool from surviving zombies (warm) and verifies every acknowledged page;",
			"post HR is the rebuilt pool's hit rate over the rest of the trace (cold = no re-seeding control).",
		},
	}
}

// String renders the sweep table.
func (r *CrashsweepResult) String() string { return r.Table().String() }
