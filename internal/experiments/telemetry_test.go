package experiments

import (
	"reflect"
	"testing"

	"zombiessd/internal/telemetry"
)

// TestNoTelemetryBitIdentity pins the observe-only discipline of the
// telemetry layer against the same exact counters the crash and integrity
// tests use: with telemetry disabled the matrix reproduces the pinned
// cells (nothing regressed), and with telemetry enabled it reproduces
// them again — attaching the registry, the attribution hooks and the
// tracer must not move a single simulated-time result.
func TestNoTelemetryBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells in -short mode")
	}
	t.Run("disabled", func(t *testing.T) {
		m := checkMatrixGoldensOpts(t, smallOpts())
		if tel := m.TelemetryFor("mail", SysDVP200K); tel != nil {
			t.Error("telemetry instance present on a telemetry-off matrix")
		}
	})
	t.Run("enabled", func(t *testing.T) {
		o := smallOpts()
		o.Telemetry = telemetry.Config{Enabled: true}
		m := checkMatrixGoldensOpts(t, o)
		tel := m.TelemetryFor("mail", SysDVP200K)
		if tel == nil {
			t.Fatal("no telemetry instance for mail/dvp-200k")
		}
		if n := tel.Attribution().Requests(); n != o.Requests {
			t.Errorf("attribution saw %d requests, want %d", n, o.Requests)
		}
		if len(tel.Registry().Series()) == 0 {
			t.Error("no time-series samples recorded")
		}
		if len(tel.Tracer().Events()) == 0 {
			t.Error("no timeline events recorded")
		}
	})
}

// TestMatrixJobsIdentical checks the -j contract: the matrix's results are
// byte-identical regardless of how many workers simulated its cells.
func TestMatrixJobsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells in -short mode")
	}
	o := smallOpts()
	workloads := []string{"mail"}
	systems := []System{SysBaseline, SysDVP200K}
	var want *Matrix
	for _, jobs := range []int{1, 2, 8} {
		o.Jobs = jobs
		m, err := RunMatrix(o, workloads, systems)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if want == nil {
			want = m
			continue
		}
		if !reflect.DeepEqual(m.Results, want.Results) {
			t.Errorf("jobs=%d produced different results than jobs=1", jobs)
		}
	}
}
