package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestDftlsweepAttribution is the acceptance gate for the flash-resident
// mapping work: on every architecture the small-CMT arm must show real
// mapping traffic (misses, dirty write-backs, translation programs) and a
// translation-GC stream that actually ran, attributed separately from
// data GC; the large-CMT arm must hit more often and program fewer
// translation pages; and the in-RAM control must report no DFTL traffic
// at all.
func TestDftlsweepAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("dftlsweep replays fifteen full device lives")
	}
	r, err := RunDftlsweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 15 {
		t.Fatalf("swept %d arms, want 5 architectures × 3 CMT sizes", len(r.Arms))
	}
	// Arms arrive arch-major in off/small/large order.
	byArch := map[string][]DftlArm{}
	for _, a := range r.Arms {
		byArch[a.Arch] = append(byArch[a.Arch], a)
	}
	if len(byArch) != 5 {
		t.Fatalf("swept %d architectures, want 5", len(byArch))
	}
	for arch, arms := range byArch {
		if len(arms) != 3 {
			t.Fatalf("%s: %d arms, want off/small/large", arch, len(arms))
		}
		off, small, large := arms[0], arms[1], arms[2]
		if off.Frames != 0 || small.Frames == 0 || large.Frames <= small.Frames {
			t.Fatalf("%s: CMT ladder %d/%d/%d is not off < small < large", arch, off.Frames, small.Frames, large.Frames)
		}
		if off.TransPrograms != 0 || off.Misses != 0 || off.TransGCRuns != 0 {
			t.Errorf("%s control: in-RAM arm reports DFTL traffic: %+v", arch, off)
		}
		if small.Misses == 0 || small.Writebacks == 0 || small.TransPrograms == 0 {
			t.Errorf("%s small-CMT: no mapping flash traffic: %+v", arch, small)
		}
		if small.TransGCRuns == 0 || small.TransErased == 0 {
			t.Errorf("%s small-CMT: translation stream never needed GC: %+v", arch, small)
		}
		if small.DataGCRuns < 0 || small.DataErased < 0 {
			t.Errorf("%s small-CMT: negative data-GC attribution: %+v", arch, small)
		}
		if large.HitRate <= small.HitRate {
			t.Errorf("%s: large-CMT hit rate %.3f not above small-CMT's %.3f", arch, large.HitRate, small.HitRate)
		}
		if large.TransPrograms >= small.TransPrograms {
			t.Errorf("%s: large CMT programmed %d translation pages, small CMT %d — a bigger cache must write less",
				arch, large.TransPrograms, small.TransPrograms)
		}
		if small.WA < off.WA {
			t.Errorf("%s: small-CMT WA %.2f below the in-RAM control's %.2f — the map tax vanished", arch, small.WA, off.WA)
		}
	}
	// The revived counter is the DVP hit value; it must survive the map tax
	// on the architectures that have a pool.
	for _, arch := range []string{"dvp", "dvp+dedup", "lx-ssd", "buffered"} {
		if byArch[arch][1].Revived == 0 {
			t.Errorf("%s small-CMT: no revivals — the dead-value pool died under DFTL", arch)
		}
	}
	t.Logf("\n%s", r)
}

// TestNoDftlBitIdentity pins two invariants of the flash-resident mapping
// work. First, with Options.Dftl zero no CMT is attached anywhere and the
// evaluation matrix counters stay byte-identical to the pre-DFTL goldens.
// Second, the dftlsweep's output is a pure function of its options:
// identical for every worker count.
func TestNoDftlBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("bit-identity check replays the evaluation matrix")
	}
	checkMatrixGoldens(t)

	var want *DftlsweepResult
	for _, jobs := range []int{1, 8} {
		o := smallOpts()
		o.Jobs = jobs
		got, err := RunDftlsweep(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d drifted from the jobs=1 sweep:\n got %+v\nwant %+v", jobs, got, want)
		}
	}
}

// TestPaperGeometryCell is the full-drive gate: one evaluation-matrix cell
// on the paper's 1 TB Table I geometry, with the page map flash-resident,
// must complete inside a CI runner's memory. Per-page host state is
// chunked sparse arrays and the store's page metadata is flat, so RAM
// scales with the touched footprint plus O(blocks), not the 268M-page
// drive.
func TestPaperGeometryCell(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1 TB drive cell in -short mode")
	}
	o := smallOpts()
	o.PaperGeometry = true
	o.Dftl.Enable = true
	// Two frames on a trace spanning several translation pages: the CMT
	// must thrash, so the cell proves translation reads/programs work on
	// the full-size drive rather than idling on an all-resident map.
	o.Dftl.CMTFrames = 2
	o.Dftl.BatchEvict = true
	m, err := RunMatrix(o, []string{"mail"}, []System{SysDVP200K})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := m.Result("mail", SysDVP200K)
	if !ok {
		t.Fatal("no result for the paper-geometry cell")
	}
	if res.Metrics.HostWrites == 0 || res.Metrics.FlashPrograms == 0 {
		t.Errorf("paper-geometry cell did no work: %+v", res.Metrics)
	}
	if res.Metrics.Dftl.TransPrograms == 0 {
		t.Error("paper-geometry cell ran without flash-resident mapping traffic")
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// The 1 TB drive has 268M pages; a dense 4-byte-per-page host table
	// alone would be >1 GiB. The ceiling catches any regression back to
	// footprint-independent dense allocation while leaving slack for the
	// store's per-block accounting.
	const ceiling = 1 << 30
	if ms.HeapAlloc > ceiling {
		t.Errorf("heap after full-drive cell = %d MiB, want < %d MiB",
			ms.HeapAlloc>>20, ceiling>>20)
	}
}
