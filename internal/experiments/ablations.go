package experiments

import (
	"fmt"

	"zombiessd/internal/analysis"
	"zombiessd/internal/core"
	"zombiessd/internal/ftl"
	"zombiessd/internal/sim"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// The ablation experiments quantify the design choices DESIGN.md §6 calls
// out. They are not paper artifacts; they are registered alongside the
// figures ("ablation-*" ids) so `zombiectl run` can regenerate them too.

// ---------------------------------------------------- replacement policy --

// AblationPolicyResult compares pool replacement policies at equal capacity
// on the offline replay of every workload.
type AblationPolicyResult struct {
	Capacity int
	Rows     []AblationPolicyRow
}

// AblationPolicyRow is one workload's hit counts per policy.
type AblationPolicyRow struct {
	Workload                 string
	LRUHits, MQHits, InfHits int64
	Writes                   int64
}

// RunAblationPolicy sweeps LRU vs MQ vs infinite on all six workloads.
func RunAblationPolicy(o Options) (*AblationPolicyResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	capacity := o.ScaleEntries(200_000)
	res := &AblationPolicyResult{Capacity: capacity}
	for _, name := range workload.Names() {
		p, _ := workload.ProfileByName(name)
		recs, err := workload.Generate(p, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
		lru := analysis.LRUWriteSweep(recs, []int{capacity})
		mq := analysis.MQWriteSweep(recs, []int{capacity}, 8)
		inf := analysis.LRUWriteSweep(recs, []int{0})
		res.Rows = append(res.Rows, AblationPolicyRow{
			Workload: name,
			LRUHits:  lru[0].Hits,
			MQHits:   mq[0].Hits,
			InfHits:  inf[0].Hits,
			Writes:   lru[0].Writes + lru[0].Hits,
		})
	}
	return res, nil
}

// Table renders the policy ablation.
func (r *AblationPolicyResult) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, i64(row.LRUHits), i64(row.MQHits), i64(row.InfHits), i64(row.Writes),
		})
	}
	return Table{
		Title:  fmt.Sprintf("Ablation: pool replacement policy (offline replay, %d entries)", r.Capacity),
		Header: []string{"workload", "LRU hits", "MQ hits", "infinite hits", "writes"},
		Rows:   rows,
	}
}

// String renders the policy ablation.
func (r *AblationPolicyResult) String() string { return r.Table().String() }

// -------------------------------------------------- popularity-aware GC --

// AblationGCRow is one GC-weight point.
type AblationGCRow struct {
	Weight     float64
	Revived    int64
	Relocated  int64
	Erases     int64
	MeanLatImp float64 // vs the weight-0 run
}

// AblationGCResult sweeps the popularity-aware GC weight on web.
type AblationGCResult struct{ Rows []AblationGCRow }

// RunAblationGC measures the GC victim-score weight trade-off
// (DESIGN.md §7): revivals rise with protection, but so does relocation.
func RunAblationGC(o Options) (*AblationGCResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	recs, footprint, err := o.traceFor("web")
	if err != nil {
		return nil, err
	}
	weights := []float64{0, 1.0 / 255, 4.0 / 255, 16.0 / 255, 64.0 / 255}
	var res AblationGCResult
	var baseMean float64
	for i, w := range weights {
		cfg := o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 200_000)
		cfg.Store.PopularityWeight = w
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(dev, recs, sim.RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseMean = run.All.Mean
		}
		res.Rows = append(res.Rows, AblationGCRow{
			Weight:     w,
			Revived:    run.Metrics.Revived,
			Relocated:  run.Metrics.GC.Relocated,
			Erases:     run.Metrics.FlashErases,
			MeanLatImp: stats.ReductionPct(baseMean, run.All.Mean),
		})
	}
	return &res, nil
}

// Table renders the GC-weight ablation.
func (r *AblationGCResult) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.4f", row.Weight), i64(row.Revived), i64(row.Relocated),
			i64(row.Erases), pct(row.MeanLatImp),
		})
	}
	return Table{
		Title:  "Ablation: popularity-aware GC weight (web; latency vs the greedy run)",
		Header: []string{"weight", "revivals", "GC relocations", "erases", "mean lat vs greedy"},
		Rows:   rows,
	}
}

// String renders the GC-weight ablation.
func (r *AblationGCResult) String() string { return r.Table().String() }

// -------------------------------------------------------- adaptive pool --

// AblationAdaptiveRow is one configuration of the capacity ablation.
type AblationAdaptiveRow struct {
	Config        string
	Hits          int64
	FinalCapacity int
}

// AblationAdaptiveResult compares fixed pools with the self-tuning pool.
type AblationAdaptiveResult struct{ Rows []AblationAdaptiveRow }

// RunAblationAdaptive replays mail offline against a small fixed pool, the
// adaptive pool starting at the same size, and a large fixed pool.
func RunAblationAdaptive(o Options) (*AblationAdaptiveResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, o.Requests, o.Seed)
	if err != nil {
		return nil, err
	}
	small := o.ScaleEntries(50_000)
	large := o.ScaleEntries(1_000_000)

	replay := func(pool core.Pool, ledger *core.Ledger) int64 {
		type pageCopy struct {
			h   trace.Hash
			ppn ssd.PPN
		}
		pages := make(map[uint64]pageCopy)
		next := ssd.PPN(0)
		var tick core.Tick
		var hits int64
		for _, r := range recs {
			if r.Op != trace.OpWrite {
				continue
			}
			tick++
			ledger.Bump(r.Hash)
			if old, ok := pages[r.LBA]; ok {
				pool.Insert(old.h, old.ppn, tick)
			}
			if ppn, ok := pool.Lookup(r.Hash, tick); ok {
				hits++
				pages[r.LBA] = pageCopy{r.Hash, ppn}
				continue
			}
			pages[r.LBA] = pageCopy{r.Hash, next}
			next++
		}
		return hits
	}

	var res AblationAdaptiveResult
	{
		l := core.NewLedger()
		pool := core.NewMQPool(core.MQConfig{Queues: 8, Capacity: small, DefaultLifetime: 8192}, l)
		res.Rows = append(res.Rows, AblationAdaptiveRow{
			Config: fmt.Sprintf("fixed %d", small), Hits: replay(pool, l), FinalCapacity: small,
		})
	}
	{
		l := core.NewLedger()
		pool := core.NewAdaptivePool(core.AdaptiveConfig{
			MQ:          core.MQConfig{Queues: 8, Capacity: small, DefaultLifetime: 8192},
			MinCapacity: small / 4, MaxCapacity: large, Window: 8192, Step: 0.25,
		}, l)
		res.Rows = append(res.Rows, AblationAdaptiveRow{
			Config: fmt.Sprintf("adaptive (start %d)", small), Hits: replay(pool, l),
			FinalCapacity: pool.Capacity(),
		})
	}
	{
		l := core.NewLedger()
		pool := core.NewMQPool(core.MQConfig{Queues: 8, Capacity: large, DefaultLifetime: 8192}, l)
		res.Rows = append(res.Rows, AblationAdaptiveRow{
			Config: fmt.Sprintf("fixed %d", large), Hits: replay(pool, l), FinalCapacity: large,
		})
	}
	return &res, nil
}

// Table renders the adaptive-capacity ablation.
func (r *AblationAdaptiveResult) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Config, i64(row.Hits), i64(int64(row.FinalCapacity))})
	}
	return Table{
		Title:  "Ablation: adaptive pool capacity (mail, offline replay)",
		Header: []string{"pool", "hits", "final capacity"},
		Rows:   rows,
	}
}

// String renders the adaptive-capacity ablation.
func (r *AblationAdaptiveResult) String() string { return r.Table().String() }

// --------------------------------------------------------- background GC --

// AblationBGCRow is one soft-threshold setting.
type AblationBGCRow struct {
	Soft             int
	P99              int64
	BackgroundCycles int64
	ForegroundRuns   int64
}

// AblationBGCResult measures idle-time erasure of dead blocks under a
// bursty cyclic-overwrite workload.
type AblationBGCResult struct{ Rows []AblationBGCRow }

// RunAblationBGC compares foreground-only GC with the background
// (soft-threshold) extension.
func RunAblationBGC(o Options) (*AblationBGCResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	// Bursty cyclic overwrites: bursts of back-to-back writes with long
	// idle gaps; whole blocks die in order.
	var recs []trace.Record
	now := int64(0)
	v := uint64(0)
	footprint := int64(9000)
	bursts := int(o.Requests / 50)
	if bursts > 2400 {
		bursts = 2400
	}
	for burst := 0; burst < bursts; burst++ {
		for i := 0; i < 50; i++ {
			now += 20
			v++
			recs = append(recs, trace.Record{
				Time: now, Op: trace.OpWrite,
				LBA:  v % uint64(footprint),
				Hash: trace.HashOfValue(v % 4000),
			})
		}
		now += 60_000
	}
	var res AblationBGCResult
	for _, soft := range []int{0, 4} {
		cfg := sim.Config{
			Geometry:     sim.GeometryFor(footprint, 0.85),
			Latency:      ssd.PaperLatency(),
			Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, SoftGCThreshold: soft},
			LogicalPages: footprint,
			Kind:         sim.KindBaseline,
			PoolKind:     sim.PoolMQ,
			MQ:           core.MQConfig{Queues: 8, Capacity: 1000, DefaultLifetime: 8192},
			Faults:       o.Faults,
			Scrub:        o.Scrub,
			Health:       o.Health,
		}
		dev, err := sim.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(dev, recs, sim.RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationBGCRow{
			Soft:             soft,
			P99:              run.All.P99,
			BackgroundCycles: run.Metrics.GC.Background,
			ForegroundRuns:   run.Metrics.GC.Runs - run.Metrics.GC.Background,
		})
	}
	return &res, nil
}

// Table renders the background-GC ablation.
func (r *AblationBGCResult) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		label := "foreground only"
		if row.Soft > 0 {
			label = fmt.Sprintf("background (soft=%d)", row.Soft)
		}
		rows = append(rows, []string{
			label, usec(float64(row.P99)), i64(row.BackgroundCycles), i64(row.ForegroundRuns),
		})
	}
	return Table{
		Title:  "Ablation: background GC (bursty cyclic overwrites)",
		Header: []string{"mode", "p99", "background cycles", "foreground cycles"},
		Rows:   rows,
	}
}

// String renders the background-GC ablation.
func (r *AblationBGCResult) String() string { return r.Table().String() }
