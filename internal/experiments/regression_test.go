package experiments

import (
	"errors"
	"runtime"
	"strings"
	"testing"
)

// TestFig9HeadlineRegression pins the DESIGN.md §5 headline shapes at the
// reduced test scale, with bands wide enough to absorb scale noise but
// tight enough that a refactor silently breaking the reproduction fails:
// at smallOpts the mean 200K write reduction measures ≈ 21.7%, mail ≈ 68%.
func TestFig9HeadlineRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-simulation regression in -short mode")
	}
	o := smallOpts()
	fig9, err := RunFig9(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fig9.Mean200K < 13.7 || fig9.Mean200K > 29.7 {
		t.Errorf("mean 200K write reduction %.1f%% left the pinned band [13.7%%, 29.7%%]", fig9.Mean200K)
	}
	var mail Fig9Row
	for _, r := range fig9.Rows {
		if r.Workload == "mail" {
			mail = r
		}
	}
	if mail.Workload == "" {
		t.Fatal("fig9 has no mail row")
	}
	for _, r := range fig9.Rows {
		if r.Workload != "mail" && r.Red200K >= mail.Red200K {
			t.Errorf("%s reduction %.1f%% matches or beats mail's %.1f%% — mail must be the largest winner",
				r.Workload, r.Red200K, mail.Red200K)
		}
		// DVP never does worse than baseline (small negative noise allowed).
		if r.Red200K < -0.5 {
			t.Errorf("%s: DVP-200K reduction %.1f%% is below baseline", r.Workload, r.Red200K)
		}
	}
	if mail.Red200K < 50 {
		t.Errorf("mail reduction %.1f%%, want the paper's dominant (>50%%) win", mail.Red200K)
	}
}

// TestMatrixAbortsPromptly pins the error path of RunMatrix: once a cell
// records an error, the remaining queued cells are skipped instead of being
// simulated at full cost. GOMAXPROCS(1) serializes the single worker so the
// bogus first cell deterministically poisons the queue before any real cell
// starts.
func TestMatrixAbortsPromptly(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	before := cellsSimulated.Load()
	_, err := RunMatrix(smallOpts(), []string{"web", "mail"}, []System{"bogus", SysBaseline})
	if err == nil {
		t.Fatal("matrix with a bogus system succeeded")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the bogus system: %v", err)
	}
	if got := cellsSimulated.Load() - before; got != 0 {
		t.Errorf("%d cells were simulated after the build error; want 0 skipped-on-error", got)
	}
}

// TestMatrixErrorSummary pins the per-arm aggregation: when several arms
// are broken, the error names every one of them, not just the first.
func TestMatrixErrorSummary(t *testing.T) {
	_, err := RunMatrix(smallOpts(), []string{"web", "no-such-workload"}, []System{"bogus", "worse"})
	if err == nil {
		t.Fatal("matrix with three broken arms succeeded")
	}
	var me *MatrixError
	if !errors.As(err, &me) {
		t.Fatalf("error is %T, want *MatrixError", err)
	}
	if len(me.Cells) != 3 {
		t.Fatalf("got %d failed arms, want 3 (two bad systems + one bad workload): %v", len(me.Cells), err)
	}
	for _, needle := range []string{"bogus", "worse", "no-such-workload"} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("summary does not name %q: %v", needle, err)
		}
	}
}

// TestMatrixInvalidWorkload covers the pre-queue error path too.
func TestMatrixInvalidWorkload(t *testing.T) {
	if _, err := RunMatrix(smallOpts(), []string{"no-such-workload"}, []System{SysBaseline}); err == nil {
		t.Fatal("matrix with an unknown workload succeeded")
	}
}
