package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"zombiessd/internal/sim"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// cellsSimulated counts the matrix cells that reached sim.Run, so tests can
// assert that workers stop simulating once an error is recorded.
var cellsSimulated atomic.Int64

// System names the full-simulation configurations of Section V-A. Pool
// sizes are in paper entries (scaled by Options.ScaleEntries).
type System string

// The systems of the evaluation matrix.
const (
	SysBaseline System = "baseline"
	SysDVP100K  System = "dvp-100k"
	SysDVP200K  System = "dvp-200k"
	SysDVP300K  System = "dvp-300k"
	SysIdeal    System = "ideal"
	SysLX       System = "lx-ssd"
	SysDedup    System = "dedup"
	SysDVPDedup System = "dvp+dedup"
)

// AllSystems lists every matrix configuration.
func AllSystems() []System {
	return []System{SysBaseline, SysDVP100K, SysDVP200K, SysDVP300K,
		SysIdeal, SysLX, SysDedup, SysDVPDedup}
}

// Matrix holds one full-simulation run per (workload, system) pair,
// shared by Figs 9–12 and 14–15 so a combined run simulates each pair once.
type Matrix struct {
	Workloads []string
	Results   map[string]map[System]sim.Result
}

// Result returns the run for (workload, system).
func (m *Matrix) Result(workload string, sys System) (sim.Result, bool) {
	r, ok := m.Results[workload][sys]
	return r, ok
}

// buildDevice constructs the device for one system over one footprint.
func (o Options) buildDevice(sys System, footprint int64) (sim.Device, error) {
	var cfg sim.Config
	switch sys {
	case SysBaseline:
		cfg = o.deviceConfig(sim.KindBaseline, footprint, sim.PoolMQ, 200_000)
	case SysDVP100K:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 100_000)
	case SysDVP200K:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 200_000)
	case SysDVP300K:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 300_000)
	case SysIdeal:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolInfinite, 200_000)
	case SysLX:
		cfg = o.deviceConfig(sim.KindLX, footprint, sim.PoolMQ, 200_000)
	case SysDedup:
		cfg = o.deviceConfig(sim.KindDedup, footprint, sim.PoolMQ, 200_000)
	case SysDVPDedup:
		cfg = o.deviceConfig(sim.KindDVPDedup, footprint, sim.PoolMQ, 200_000)
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", sys)
	}
	return sim.NewDevice(cfg)
}

// traceFor generates the workload's trace once per matrix build.
func (o Options) traceFor(name string) ([]trace.Record, int64, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown workload %q", name)
	}
	recs, err := workload.Generate(p, o.Requests, o.Seed)
	if err != nil {
		return nil, 0, err
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	return recs, footprint, nil
}

// RunMatrix simulates the requested systems over the requested workloads
// (nil means all six / all systems). The (workload, system) cells are
// independent simulations, so they run in parallel across the machine's
// cores; results are deterministic regardless of scheduling.
func RunMatrix(o Options, workloads []string, systems []System) (*Matrix, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if workloads == nil {
		workloads = workload.Names()
	}
	if systems == nil {
		systems = AllSystems()
	}
	m := &Matrix{
		Workloads: workloads,
		Results:   make(map[string]map[System]sim.Result, len(workloads)),
	}

	// Generate each workload's trace once, shared read-only by its cells.
	type traceData struct {
		recs      []trace.Record
		footprint int64
	}
	traces := make(map[string]traceData, len(workloads))
	for _, name := range workloads {
		recs, footprint, err := o.traceFor(name)
		if err != nil {
			return nil, err
		}
		traces[name] = traceData{recs, footprint}
		m.Results[name] = make(map[System]sim.Result, len(systems))
	}

	type cell struct {
		workload string
		sys      System
	}
	cells := make(chan cell)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if total := len(workloads) * len(systems); workers > total {
		workers = total
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				// A recorded error dooms the whole matrix; skip the
				// remaining cells instead of simulating them at full cost.
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				td := traces[c.workload]
				dev, err := o.buildDevice(c.sys, td.footprint)
				if err == nil {
					var res sim.Result
					cellsSimulated.Add(1)
					res, err = sim.Run(dev, td.recs, sim.RunOptions{
						LogicalPages:      td.footprint,
						PreconditionPages: td.footprint,
					})
					if err == nil {
						mu.Lock()
						m.Results[c.workload][c.sys] = res
						mu.Unlock()
						continue
					}
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: %s/%s: %w", c.workload, c.sys, err)
				}
				mu.Unlock()
			}
		}()
	}
	for _, name := range workloads {
		for _, sys := range systems {
			cells <- cell{name, sys}
		}
	}
	close(cells)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}
