package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"zombiessd/internal/sim"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// CellError ties one failed matrix arm to its cause.
type CellError struct {
	Workload string // empty when the failure is system-wide
	Sys      System // empty when the failure is workload-wide
	Err      error
}

// arm names the failing (workload, system) pair compactly.
func (c CellError) arm() string {
	switch {
	case c.Workload == "":
		return string(c.Sys)
	case c.Sys == "":
		return c.Workload
	}
	return c.Workload + "/" + string(c.Sys)
}

// MatrixError aggregates every failed arm of a matrix run, so one bad arm
// in a long sweep does not hide the state of the others. Cells are sorted
// by (workload, system).
type MatrixError struct {
	Cells []CellError
}

// Error renders each arm with its cause.
func (e *MatrixError) Error() string {
	if len(e.Cells) == 1 {
		c := e.Cells[0]
		return fmt.Sprintf("experiments: %s: %v", c.arm(), c.Err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "experiments: %d arms failed:", len(e.Cells))
	for _, c := range e.Cells {
		fmt.Fprintf(&sb, "\n  %s: %v", c.arm(), c.Err)
	}
	return sb.String()
}

// Unwrap exposes the per-arm causes to errors.Is/As.
func (e *MatrixError) Unwrap() []error {
	out := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		out[i] = c.Err
	}
	return out
}

// matrixError sorts cells deterministically and wraps them, or returns nil
// when nothing failed.
func matrixError(cells []CellError) error {
	if len(cells) == 0 {
		return nil
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Workload != cells[j].Workload {
			return cells[i].Workload < cells[j].Workload
		}
		return cells[i].Sys < cells[j].Sys
	})
	return &MatrixError{Cells: cells}
}

// knownSystem reports whether sys is a registered matrix configuration.
func knownSystem(sys System) bool {
	for _, s := range AllSystems() {
		if s == sys {
			return true
		}
	}
	return false
}

// cellsSimulated counts the matrix cells that reached sim.Run, so tests can
// assert that workers stop simulating once an error is recorded.
var cellsSimulated atomic.Int64

// System names the full-simulation configurations of Section V-A. Pool
// sizes are in paper entries (scaled by Options.ScaleEntries).
type System string

// The systems of the evaluation matrix.
const (
	SysBaseline System = "baseline"
	SysDVP100K  System = "dvp-100k"
	SysDVP200K  System = "dvp-200k"
	SysDVP300K  System = "dvp-300k"
	SysIdeal    System = "ideal"
	SysLX       System = "lx-ssd"
	SysDedup    System = "dedup"
	SysDVPDedup System = "dvp+dedup"
)

// AllSystems lists every matrix configuration.
func AllSystems() []System {
	return []System{SysBaseline, SysDVP100K, SysDVP200K, SysDVP300K,
		SysIdeal, SysLX, SysDedup, SysDVPDedup}
}

// Matrix holds one full-simulation run per (workload, system) pair,
// shared by Figs 9–12 and 14–15 so a combined run simulates each pair once.
type Matrix struct {
	Workloads []string
	Results   map[string]map[System]sim.Result

	// Telemetry holds each cell's observability instance when
	// Options.Telemetry was enabled (nil maps otherwise). Instances are
	// per-cell — parallel arms never share one — so exporting the series,
	// attribution or timeline of a single (workload, system) run is a
	// plain lookup.
	Telemetry map[string]map[System]*telemetry.Telemetry
}

// Result returns the run for (workload, system).
func (m *Matrix) Result(workload string, sys System) (sim.Result, bool) {
	r, ok := m.Results[workload][sys]
	return r, ok
}

// TelemetryFor returns the observability instance of one cell, or nil when
// telemetry was off for the run.
func (m *Matrix) TelemetryFor(workload string, sys System) *telemetry.Telemetry {
	return m.Telemetry[workload][sys]
}

// buildDevice constructs the device for one system over one footprint,
// along with the cell's telemetry instance (nil when Options.Telemetry is
// disabled).
func (o Options) buildDevice(sys System, footprint int64) (sim.Device, *telemetry.Telemetry, error) {
	var cfg sim.Config
	switch sys {
	case SysBaseline:
		cfg = o.deviceConfig(sim.KindBaseline, footprint, sim.PoolMQ, 200_000)
	case SysDVP100K:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 100_000)
	case SysDVP200K:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 200_000)
	case SysDVP300K:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolMQ, 300_000)
	case SysIdeal:
		cfg = o.deviceConfig(sim.KindDVP, footprint, sim.PoolInfinite, 200_000)
	case SysLX:
		cfg = o.deviceConfig(sim.KindLX, footprint, sim.PoolMQ, 200_000)
	case SysDedup:
		cfg = o.deviceConfig(sim.KindDedup, footprint, sim.PoolMQ, 200_000)
	case SysDVPDedup:
		cfg = o.deviceConfig(sim.KindDVPDedup, footprint, sim.PoolMQ, 200_000)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown system %q", sys)
	}
	tel := telemetry.New(o.Telemetry)
	cfg.Telemetry = tel
	dev, err := sim.NewDevice(cfg)
	if err != nil {
		return nil, nil, err
	}
	return dev, tel, nil
}

// traceFor generates the workload's trace once per matrix build.
func (o Options) traceFor(name string) ([]trace.Record, int64, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown workload %q", name)
	}
	recs, err := workload.Generate(p, o.Requests, o.Seed)
	if err != nil {
		return nil, 0, err
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	return recs, footprint, nil
}

// RunMatrix simulates the requested systems over the requested workloads
// (nil means all six / all systems). The (workload, system) cells are
// independent simulations, so they run in parallel across the machine's
// cores; results are deterministic regardless of scheduling.
func RunMatrix(o Options, workloads []string, systems []System) (*Matrix, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if workloads == nil {
		workloads = workload.Names()
	}
	if systems == nil {
		systems = AllSystems()
	}
	m := &Matrix{
		Workloads: workloads,
		Results:   make(map[string]map[System]sim.Result, len(workloads)),
		Telemetry: make(map[string]map[System]*telemetry.Telemetry, len(workloads)),
	}

	// Pre-flight: resolve every arm's names before simulating anything, so
	// one typo surfaces every broken arm at once instead of costing a full
	// run per discovery. Generated traces are shared read-only by cells.
	var failed []CellError
	for _, sys := range systems {
		if !knownSystem(sys) {
			failed = append(failed, CellError{Sys: sys,
				Err: fmt.Errorf("unknown system %q", sys)})
		}
	}
	type traceData struct {
		recs      []trace.Record
		footprint int64
	}
	traces := make(map[string]traceData, len(workloads))
	for _, name := range workloads {
		recs, footprint, err := o.traceFor(name)
		if err != nil {
			failed = append(failed, CellError{Workload: name, Err: err})
			continue
		}
		traces[name] = traceData{recs, footprint}
		m.Results[name] = make(map[System]sim.Result, len(systems))
		m.Telemetry[name] = make(map[System]*telemetry.Telemetry, len(systems))
	}
	if err := matrixError(failed); err != nil {
		return nil, err
	}

	type cell struct {
		workload string
		sys      System
	}
	cells := make(chan cell)
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := o.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := len(workloads) * len(systems); workers > total {
		workers = total
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				// A recorded error dooms the whole matrix; skip the
				// remaining cells instead of simulating them at full cost.
				// Cells already in flight still record their own errors,
				// so the summary names every arm that actually failed.
				mu.Lock()
				doomed := len(failed) > 0
				mu.Unlock()
				if doomed {
					continue
				}
				td := traces[c.workload]
				dev, tel, err := o.buildDevice(c.sys, td.footprint)
				if err == nil {
					var res sim.Result
					cellsSimulated.Add(1)
					res, err = sim.Run(dev, td.recs, sim.RunOptions{
						LogicalPages:      td.footprint,
						PreconditionPages: td.footprint,
					})
					if err == nil {
						mu.Lock()
						m.Results[c.workload][c.sys] = res
						if tel != nil {
							m.Telemetry[c.workload][c.sys] = tel
						}
						mu.Unlock()
						continue
					}
				}
				mu.Lock()
				failed = append(failed, CellError{Workload: c.workload, Sys: c.sys, Err: err})
				mu.Unlock()
			}
		}()
	}
	for _, name := range workloads {
		for _, sys := range systems {
			cells <- cell{name, sys}
		}
	}
	close(cells)
	wg.Wait()
	if err := matrixError(failed); err != nil {
		return nil, err
	}
	return m, nil
}
