package experiments

import (
	"strings"
	"testing"
)

// smallOpts keeps test runs fast while staying above the floor where the
// figures' shapes hold.
func smallOpts() Options {
	return Options{Requests: 30_000, Days: 2, Seed: 3, Utilization: 0.88}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []Options{
		{Requests: 10, Days: 1, Utilization: 0.9},
		{Requests: 10000, Days: 0, Utilization: 0.9},
		{Requests: 10000, Days: 1, Utilization: 0},
		{Requests: 10000, Days: 1, Utilization: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, o)
		}
	}
}

func TestScaleEntries(t *testing.T) {
	o := Options{Requests: PaperRequests, Days: 1, Utilization: 0.9}
	if got := o.ScaleEntries(200_000); got != 200_000 {
		t.Errorf("full-scale ScaleEntries = %d, want 200000", got)
	}
	o.Requests = PaperRequests / 10
	if got := o.ScaleEntries(200_000); got != 20_000 {
		t.Errorf("tenth-scale ScaleEntries = %d, want 20000", got)
	}
	o.Requests = 1000
	if got := o.ScaleEntries(200_000); got < 64 {
		t.Errorf("tiny-scale ScaleEntries = %d, want floor 64", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig9", "fig10", "fig11", "fig12", "fig14", "fig15",
		"ablation-policy", "ablation-gc", "ablation-adaptive", "ablation-bgc",
		"ablation-faults", "lifetime", "stability", "crashsweep", "scrubsweep",
		"tenantsweep", "gcsweep", "chaossweep", "rainsweep", "dftlsweep"}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %q missing", id)
			continue
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("ByID accepted unknown id")
	}
	if len(IDs()) != len(want) {
		t.Error("IDs() incomplete")
	}
}

func TestCharacterizationExperiments(t *testing.T) {
	o := smallOpts()
	for _, id := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		e, _ := ByID(id)
		res, err := e.Run(o, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := res.String()
		if len(out) < 40 || !strings.Contains(out, "\n") {
			t.Errorf("%s rendered suspiciously short output:\n%s", id, out)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := RunFig1(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 workloads × 2 days
		t.Fatalf("fig1 has %d rows, want 6", len(res.Rows))
	}
	var mailBest, webBest float64
	for _, r := range res.Rows {
		if r.RawProb < 0 || r.RawProb > 1 || r.DedupProb < 0 || r.DedupProb > 1 {
			t.Fatalf("probability out of range: %+v", r)
		}
		if r.DedupProb > r.RawProb {
			t.Errorf("%s: dedup reuse %.2f exceeds raw reuse %.2f", r.Day, r.DedupProb, r.RawProb)
		}
		switch r.Day[0] {
		case 'm':
			if r.RawProb > mailBest {
				mailBest = r.RawProb
			}
		case 'w':
			if r.RawProb > webBest {
				webBest = r.RawProb
			}
		}
	}
	// Mail is the most redundant trace; its reuse opportunity must exceed
	// web's (paper: mail peaks at ~86%).
	if mailBest <= webBest {
		t.Errorf("mail reuse %.2f not above web %.2f", mailBest, webBest)
	}
	if mailBest < 0.5 {
		t.Errorf("mail reuse opportunity %.2f too low (paper: up to 0.86)", mailBest)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := RunFig2(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: only ~30% of values remain live; most are invalidated at
	// least once. Loosely: the never-invalidated fraction is below 60%.
	if res.LiveFraction <= 0 || res.LiveFraction > 0.6 {
		t.Errorf("live fraction = %.2f, want (0, 0.6]", res.LiveFraction)
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Writes) != 10 {
		t.Fatalf("want 10 curve points, got %d", len(res.Writes))
	}
	// ~20% of values should account for the large majority of writes,
	// invalidations and rebirths.
	if res.Writes[1].MetricFrac < 0.6 {
		t.Errorf("top-20%% write share = %.2f, want ≥0.6", res.Writes[1].MetricFrac)
	}
	if res.Invalidations[1].MetricFrac < 0.6 {
		t.Errorf("top-20%% invalidation share = %.2f, want ≥0.6", res.Invalidations[1].MetricFrac)
	}
	// Rebirths are the least-concentrated metric (the drifting hot window
	// spreads them); the paper's claim is "most rebirths happen to a small
	// fraction of values" — the top half must dominate.
	if res.Rebirths[1].MetricFrac < 0.35 {
		t.Errorf("top-20%% rebirth share = %.2f, want ≥0.35", res.Rebirths[1].MetricFrac)
	}
	if res.Rebirths[4].MetricFrac < 0.8 {
		t.Errorf("top-50%% rebirth share = %.2f, want ≥0.8", res.Rebirths[4].MetricFrac)
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := RunFig4(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) < 3 {
		t.Fatalf("too few popularity bins: %d", len(res.Bins))
	}
	lo, hi := res.Bins[0], res.Bins[len(res.Bins)-1]
	// Fig 4c: the higher the popularity, the more rebirths.
	if hi.AvgRebirths <= lo.AvgRebirths {
		t.Errorf("rebirths not increasing with popularity: low %.2f high %.2f",
			lo.AvgRebirths, hi.AvgRebirths)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := RunFig5(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for i := 1; i < len(row.Points); i++ {
			if row.Points[i].Writes > row.Points[i-1].Writes {
				t.Errorf("%s: writes increased with buffer size: %+v", row.Day, row.Points)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) == 0 {
		t.Fatal("no bins")
	}
}

func TestEvaluationMatrixAndFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full-simulation matrix in -short mode")
	}
	o := smallOpts()
	m, err := RunMatrix(o, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads) != 6 {
		t.Fatalf("matrix has %d workloads", len(m.Workloads))
	}
	if _, ok := m.Result("mail", SysDVP200K); !ok {
		t.Fatal("matrix missing mail/dvp-200k")
	}

	fig9, err := RunFig9(o, m)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Fig9Row)
	for _, r := range fig9.Rows {
		byName[r.Workload] = r
	}
	// Headline shapes: positive mean reduction; mail the biggest winner;
	// desktop/trans marginal relative to mail.
	if fig9.Mean200K <= 5 {
		t.Errorf("mean write reduction %.1f%%, want > 5%%", fig9.Mean200K)
	}
	mail, desktop := byName["mail"], byName["desktop"]
	if mail.Red200K <= desktop.Red200K {
		t.Errorf("mail reduction %.1f%% not above desktop %.1f%%", mail.Red200K, desktop.Red200K)
	}
	for _, r := range fig9.Rows {
		if r.RedIdeal+1e-6 < r.Red300K-2 { // ideal is the ceiling (small noise allowed)
			t.Errorf("%s: ideal %.1f%% below 300K %.1f%%", r.Workload, r.RedIdeal, r.Red300K)
		}
		if r.Red200K < r.Red100K-2 {
			t.Errorf("%s: 200K %.1f%% below 100K %.1f%%", r.Workload, r.Red200K, r.Red100K)
		}
	}

	fig10, err := RunFig10(o, m)
	if err != nil {
		t.Fatal(err)
	}
	if fig10.Mean <= 0 {
		t.Errorf("mean erase reduction %.1f%%, want positive", fig10.Mean)
	}

	fig11, err := RunFig11(o, m)
	if err != nil {
		t.Fatal(err)
	}
	if fig11.DVPMean <= 0 {
		t.Errorf("mean latency improvement %.1f%%, want positive", fig11.DVPMean)
	}
	// At this reduced test scale DVP and LX can land within noise of each
	// other; the clear separation shows at default scale (see
	// EXPERIMENTS.md). Guard only against LX beating DVP outright.
	if fig11.DVPMean < fig11.LXMean-3 {
		t.Errorf("DVP mean %.1f%% well below LX-SSD %.1f%%", fig11.DVPMean, fig11.LXMean)
	}

	fig12, err := RunFig12(o, m)
	if err != nil {
		t.Fatal(err)
	}
	if fig12.Mean <= 0 {
		t.Errorf("mean tail improvement %.1f%%, want positive", fig12.Mean)
	}

	fig14, err := RunFig14(o, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig14.Rows {
		if r.DVPDedup > r.Dedup+1 {
			t.Errorf("%s: combined writes %.1f%% above dedup alone %.1f%%", r.Workload, r.DVPDedup, r.Dedup)
		}
	}
	if fig14.ExtraOverDedup <= 0 {
		t.Errorf("extra reduction over dedup = %.1f%%, want positive", fig14.ExtraOverDedup)
	}

	fig15, err := RunFig15(o, m)
	if err != nil {
		t.Fatal(err)
	}
	if fig15.CombinedMean < fig15.DedupMean-1 {
		t.Errorf("combined latency improvement %.1f%% below dedup alone %.1f%%",
			fig15.CombinedMean, fig15.DedupMean)
	}

	// Every result renders.
	for _, s := range []interface{ String() string }{fig9, fig10, fig11, fig12, fig14, fig15} {
		if len(s.String()) < 40 {
			t.Errorf("short render: %q", s.String())
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}, {"2", `say "hi"`}},
		Notes:  []string{"note"},
	}
	text := tbl.String()
	if !strings.Contains(text, "T\n") || !strings.Contains(text, "note") {
		t.Errorf("text render missing pieces:\n%s", text)
	}
	csv := tbl.CSV()
	for _, want := range []string{"# T\n", "a,b\n", `1,"x,y"`, `2,"say ""hi"""`, "# note\n"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
}

func TestEveryExperimentResultIsTabler(t *testing.T) {
	o := smallOpts()
	for _, id := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		e, _ := ByID(id)
		res, err := e.Run(o, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		tab, ok := res.(Tabler)
		if !ok {
			t.Errorf("%s result does not implement Tabler", id)
			continue
		}
		tbl := tab.Table()
		if tbl.Title == "" || len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
			t.Errorf("%s produced an empty table", id)
		}
		if len(tbl.CSV()) < 20 {
			t.Errorf("%s CSV suspiciously short", id)
		}
	}
}

func TestAblationExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sims in -short mode")
	}
	o := smallOpts()

	policy, err := RunAblationPolicy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(policy.Rows) != 6 {
		t.Fatalf("policy rows = %d", len(policy.Rows))
	}
	for _, row := range policy.Rows {
		if row.InfHits < row.LRUHits || row.InfHits < row.MQHits {
			t.Errorf("%s: infinite pool not the ceiling: %+v", row.Workload, row)
		}
	}

	gc, err := RunAblationGC(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(gc.Rows) != 5 {
		t.Fatalf("gc rows = %d", len(gc.Rows))
	}
	// Revivals must not decrease as protection grows.
	if gc.Rows[len(gc.Rows)-1].Revived < gc.Rows[0].Revived {
		t.Errorf("revivals fell with protection: %+v", gc.Rows)
	}

	ad, err := RunAblationAdaptive(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Rows) != 3 {
		t.Fatalf("adaptive rows = %d", len(ad.Rows))
	}
	small, adaptive, large := ad.Rows[0], ad.Rows[1], ad.Rows[2]
	if adaptive.Hits < small.Hits {
		t.Errorf("adaptive (%d hits) below fixed-small (%d)", adaptive.Hits, small.Hits)
	}
	if adaptive.Hits > large.Hits {
		t.Errorf("adaptive (%d hits) above fixed-large ceiling (%d)", adaptive.Hits, large.Hits)
	}

	bgc, err := RunAblationBGC(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(bgc.Rows) != 2 {
		t.Fatalf("bgc rows = %d", len(bgc.Rows))
	}
	if bgc.Rows[1].BackgroundCycles == 0 {
		t.Error("background mode ran no background cycles")
	}
	if bgc.Rows[1].P99 > bgc.Rows[0].P99 {
		t.Errorf("background GC worsened p99: %d vs %d", bgc.Rows[1].P99, bgc.Rows[0].P99)
	}

	for _, r := range []Tabler{policy, gc, ad, bgc} {
		if len(r.Table().CSV()) < 30 {
			t.Error("short ablation render")
		}
	}
}

func TestStabilityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed matrix in -short mode")
	}
	o := smallOpts()
	o.Requests = 20_000
	res, err := RunStability(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds < 2 || len(res.Rows) != 6 {
		t.Fatalf("stability shape wrong: %+v", res)
	}
	for _, row := range res.Rows {
		if row.Min > row.Mean || row.Mean > row.Max {
			t.Errorf("%s: min/mean/max out of order: %+v", row.Workload, row)
		}
	}
	if res.MeanOfMeans <= 0 {
		t.Errorf("mean of means = %.1f, want positive", res.MeanOfMeans)
	}
}
