package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// chaosOpts is the soak scale used by the chaos tests: small enough for CI,
// large enough that five architectures × six cycles clear the acceptance
// floor of 25 crash→recover→continue cycles.
func chaosOpts() Options {
	o := smallOpts()
	o.ChaosSeed = 7
	return o
}

// TestChaosSoak is the acceptance gate for the chaos harness: every
// architecture must survive its full schedule of mid-operation power
// losses — composed with program/erase faults, RBER decay and the health
// governor — with zero integrity-oracle violations and zero lost valid
// pages, and the run as a whole must exercise at least 25 cycles.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a full multi-life sweep")
	}
	r, err := RunChaossweep(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 5 {
		t.Fatalf("soaked %d architectures, want 5", len(r.Arms))
	}
	total := 0
	for _, a := range r.Arms {
		if a.Crashes != a.Cycles {
			t.Errorf("%s: %d of %d scheduled crashes fired", a.Arch, a.Crashes, a.Cycles)
		}
		if a.Violations != 0 {
			t.Errorf("%s: %d oracle violations", a.Arch, a.Violations)
		}
		if a.LostPages != 0 {
			t.Errorf("%s: %d valid pages lost", a.Arch, a.LostPages)
		}
		if !a.Survived {
			t.Errorf("%s: drive went dead mid-soak (final state %v)", a.Arch, a.FinalState)
		}
		total += a.Crashes
	}
	if total < 25 {
		t.Errorf("soak exercised %d crash cycles across all arms, want ≥ 25", total)
	}
	t.Logf("\n%s", r)
}

// TestNoHealthBitIdentity pins two invariants of the governor work. First,
// with Options.Health zero no device is wrapped and the evaluation matrix
// counters stay byte-identical to the pre-governor goldens. Second, the
// chaossweep's output is a pure function of its options: identical for
// every worker count.
func TestNoHealthBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("bit-identity check replays the evaluation matrix")
	}
	checkMatrixGoldens(t)

	var want *ChaossweepResult
	for _, jobs := range []int{1, 2, 8, 1} {
		o := chaosOpts()
		o.Jobs = jobs
		got, err := RunChaossweep(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d drifted from the jobs=1 soak:\n got %+v\nwant %+v", jobs, got, want)
		}
	}
}

// TestNoPanicsOnHostPaths is the grep gate for the de-panic work: no
// host-reachable FTL, device, GC or recovery path may call panic — stress
// must surface as typed errors the health governor can absorb. Constructor
// guards in internal/core (pool wiring bugs, not host operations) are the
// only sanctioned panics and live outside the scanned set.
func TestNoPanicsOnHostPaths(t *testing.T) {
	pkgs := []string{"ftl", "sim", "dedup", "lxssd", "scrub", "recovery", "health", "fault", "rain"}
	for _, pkg := range pkgs {
		dir := filepath.Join("..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading internal/%s: %v", pkg, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if i := bytes.Index(src, []byte("panic(")); i >= 0 {
				line := 1 + bytes.Count(src[:i], []byte("\n"))
				t.Errorf("internal/%s/%s:%d: panic( on a host-reachable path", pkg, name, line)
			}
		}
	}
}
