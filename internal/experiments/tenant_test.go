package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestNoTenantBitIdentity is the tentpole determinism pin of the
// multi-queue host engine, in two halves. First: the single-submitter
// matrix — now routed through the engine's degenerate case (one tenant,
// FIFO, unlimited depth) — must still hit the pre-engine golden counters
// exactly. Second: a 2-tenant tenantsweep is a pure function of
// (seeds, config) — byte-identical across repeated invocations and
// across every -j worker count.
func TestNoTenantBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix cells in -short mode")
	}
	checkMatrixGoldens(t)

	run := func(jobs int) *TenantsweepResult {
		o := smallOpts()
		o.Jobs = jobs
		o.TenantSpec = "mail,trans:ia=0.5"
		o.QoSPolicies = "wrr"
		r, err := RunTenantsweep(o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(1)
	for _, jobs := range []int{2, 8, 1} {
		if again := run(jobs); !reflect.DeepEqual(base, again) {
			t.Fatalf("tenantsweep diverged at jobs=%d:\n base %+v\n got %+v", jobs, again, base)
		}
	}
}

// TestTenantsweepSmoke checks the sweep's report shape on an explicit
// 2-tenant set: every architecture × policy cell carries one row per
// tenant with the isolation columns populated, and the DVP architectures
// actually revive.
func TestTenantsweepSmoke(t *testing.T) {
	o := smallOpts()
	o.TenantSpec = "mail,trans:ia=0.5"
	o.QoSPolicies = "fifo"
	r, err := RunTenantsweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(tenantArchKinds) {
		t.Fatalf("got %d cells, want %d (one per architecture)", len(r.Cells), len(tenantArchKinds))
	}
	var dvpRevived bool
	for _, c := range r.Cells {
		if len(c.Tenants) != 2 {
			t.Fatalf("cell %s/%s has %d tenants, want 2", c.Arch, c.Policy, len(c.Tenants))
		}
		for _, tr := range c.Tenants {
			if tr.Requests == 0 {
				t.Errorf("cell %s tenant %s processed nothing", c.Arch, tr.Name)
			}
			if tr.All.P99 <= 0 {
				t.Errorf("cell %s tenant %s has no p99", c.Arch, tr.Name)
			}
		}
		if c.Arch == "dvp" && c.Tenants[0].DVPHitPct() > 0 {
			dvpRevived = true
		}
	}
	if !dvpRevived {
		t.Error("dvp architecture never revived for the mail tenant")
	}
	tab := r.Table()
	if len(tab.Rows) != len(r.Cells)*2 {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(r.Cells)*2)
	}
	header := strings.Join(tab.Header, " ")
	for _, col := range []string{"p99", "p99.9", "dvp-hit", "rej", "rev-other"} {
		if !strings.Contains(header, col) {
			t.Errorf("table header lacks %q: %v", col, tab.Header)
		}
	}
	if !strings.Contains(r.String(), "qd=") {
		t.Error("rendered table lacks the queue-depth note in its title")
	}
}

// TestTenantsweepOptionPlumbing checks the -tenants/-qos/-qd flag
// surface rejects malformed values at Options.Validate, before any
// simulation runs.
func TestTenantsweepOptionPlumbing(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.TenantSpec = "mail:weight=0" },
		func(o *Options) { o.TenantSpec = "mail:weight=nan" },
		func(o *Options) { o.TenantSpec = "nosuch" },
		func(o *Options) { o.QoSPolicies = "bogus" },
		func(o *Options) { o.QoSPolicies = "fifo,fifo" },
		func(o *Options) { o.QueueDepth = -1 },
	}
	for i, mut := range bad {
		o := smallOpts()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted", i)
		}
	}
	o := smallOpts()
	o.TenantSpec = "2"
	o.QoSPolicies = "wrr,tbucket"
	o.QueueDepth = 4
	if err := o.Validate(); err != nil {
		t.Errorf("good tenant options rejected: %v", err)
	}
}
