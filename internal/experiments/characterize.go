package experiments

import (
	"fmt"

	"zombiessd/internal/analysis"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// ---------------------------------------------------------------- Fig 1 --

// Fig1Row is one bar group of Fig 1: the probability (with an infinite
// buffer) of servicing a write from a garbage page, raw and after dedup.
type Fig1Row struct {
	Day        string // "m2" = second day of mail
	RawProb    float64
	DedupProb  float64
	DayWrites  int64
	GarbageHit int64
}

// Fig1Result is the full Fig 1 series.
type Fig1Result struct{ Rows []Fig1Row }

// RunFig1 analyzes the per-day reuse opportunity of mail, home and web.
func RunFig1(o Options) (*Fig1Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	var res Fig1Result
	for _, name := range []string{"mail", "home", "web"} {
		p, _ := workload.ProfileByName(name)
		days, err := workload.GenerateDays(p, o.Days, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
		for d, recs := range days {
			rep := analysis.ReuseOpportunity(recs)
			res.Rows = append(res.Rows, Fig1Row{
				Day:        workload.DayLabel(name, d+1),
				RawProb:    rep.RawReuseProb(),
				DedupProb:  rep.DedupReuseProb(),
				DayWrites:  rep.TotalWrites,
				GarbageHit: rep.RawGarbageHits,
			})
		}
	}
	return &res, nil
}

// Table renders the structured Fig 1 table.
func (r *Fig1Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Day, pct(row.RawProb * 100), pct(row.DedupProb * 100), i64(row.DayWrites),
		})
	}
	return Table{
		Title:  "Fig 1: probability of reusing garbage pages (infinite buffer)",
		Header: []string{"trace-day", "reuse", "reuse after dedup", "writes"},
		Rows:   rows,
	}
}

// String renders the Fig 1 table.
func (r *Fig1Result) String() string { return r.Table().String() }

// ---------------------------------------------------------------- Fig 2 --

// Fig2Result is the CDF of per-value invalidation counts for mail.
type Fig2Result struct {
	LiveFraction float64 // values never invalidated (CDF at x = 0)
	Points       []analysis.CDFPoint
	UniqueValues int
}

// RunFig2 computes Fig 2 on one day of mail.
func RunFig2(o Options) (*Fig2Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, o.Requests, o.Seed)
	if err != nil {
		return nil, err
	}
	l := analysis.AnalyzeLifecycle(recs)
	pts := l.InvalidationCDF()
	res := &Fig2Result{Points: pts, UniqueValues: l.UniqueValues()}
	if len(pts) > 0 && pts[0].X == 0 {
		res.LiveFraction = pts[0].Fraction
	}
	return res, nil
}

// Table renders the structured Fig 2 table.
func (r *Fig2Result) Table() Table {
	rows := make([][]string, 0, len(r.Points))
	for _, pt := range samplePoints(r.Points, 12) {
		rows = append(rows, []string{i64(pt.X), pct(pt.Fraction * 100)})
	}
	return Table{
		Title:  "Fig 2: CDF of invalidation counts (mail)",
		Header: []string{"invalidations ≤", "fraction of values"},
		Rows:   rows,
		Notes: []string{fmt.Sprintf("values never invalidated (still live): %s of %d unique values",
			pct(r.LiveFraction*100), r.UniqueValues)},
	}
}

// String renders selected points of the CDF.
func (r *Fig2Result) String() string { return r.Table().String() }

// samplePoints thins a CDF to at most n rows, keeping first and last.
func samplePoints(pts []analysis.CDFPoint, n int) []analysis.CDFPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]analysis.CDFPoint, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, pts[i*len(pts)/(n-1)])
	}
	return append(out, pts[len(pts)-1])
}

// ---------------------------------------------------------------- Fig 3 --

// Fig3Result holds the three concentration curves of Fig 3 for mail:
// values sorted by write count, cumulative share of writes, invalidations
// and rebirths.
type Fig3Result struct {
	Writes        []analysis.LorenzPoint
	Invalidations []analysis.LorenzPoint
	Rebirths      []analysis.LorenzPoint
}

// RunFig3 computes Fig 3 on mail.
func RunFig3(o Options) (*Fig3Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, o.Requests, o.Seed)
	if err != nil {
		return nil, err
	}
	l := analysis.AnalyzeLifecycle(recs)
	const points = 10
	return &Fig3Result{
		Writes:        l.Concentration(analysis.WritesMetric, points),
		Invalidations: l.Concentration(analysis.DeathsMetric, points),
		Rebirths:      l.Concentration(analysis.RebirthsMetric, points),
	}, nil
}

// Table renders the structured Fig 3 table.
func (r *Fig3Result) Table() Table {
	rows := make([][]string, 0, len(r.Writes))
	for i := range r.Writes {
		rows = append(rows, []string{
			pct(r.Writes[i].ValueFrac * 100),
			pct(r.Writes[i].MetricFrac * 100),
			pct(r.Invalidations[i].MetricFrac * 100),
			pct(r.Rebirths[i].MetricFrac * 100),
		})
	}
	return Table{
		Title:  "Fig 3: cumulative share per top fraction of values (mail, sorted by writes)",
		Header: []string{"top values", "(a) writes", "(b) invalidations", "(c) rebirths"},
		Rows:   rows,
	}
}

// String renders the three curves side by side.
func (r *Fig3Result) String() string { return r.Table().String() }

// ---------------------------------------------------------------- Fig 4 --

// Fig4Result is the popularity-binned timing study of Fig 4 on mail.
type Fig4Result struct{ Bins []analysis.PopularityBin }

// RunFig4 computes Fig 4 on mail, with popularity degrees clamped at 32.
func RunFig4(o Options) (*Fig4Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, _ := workload.ProfileByName("mail")
	recs, err := workload.Generate(p, o.Requests, o.Seed)
	if err != nil {
		return nil, err
	}
	l := analysis.AnalyzeLifecycle(recs)
	return &Fig4Result{Bins: l.PopularityTiming(32)}, nil
}

// Table renders the structured Fig 4 table.
func (r *Fig4Result) Table() Table {
	rows := make([][]string, 0, len(r.Bins))
	for _, b := range r.Bins {
		rows = append(rows, []string{
			i64(b.Degree), i64(b.Values),
			f1(b.AvgCreateToDeath), f1(b.AvgDeathToRebirth), f1(b.AvgRebirths),
		})
	}
	return Table{
		Title:  "Fig 4: life-cycle timing vs popularity degree (mail; distances in writes)",
		Header: []string{"degree", "values", "(a) create→death", "(b) death→rebirth", "(c) rebirths"},
		Rows:   rows,
	}
}

// String renders the three Fig 4 series by popularity degree.
func (r *Fig4Result) String() string { return r.Table().String() }

// ---------------------------------------------------------------- Fig 5 --

// Fig5Row is one trace-day of Fig 5: performed writes under LRU dead-value
// buffers of increasing size, with the infinite buffer last.
type Fig5Row struct {
	Day    string
	Points []analysis.LRUSweepPoint
}

// Fig5Result is the whole Fig 5.
type Fig5Result struct {
	Capacities []int // scaled entries; 0 = infinite
	Rows       []Fig5Row
}

// RunFig5 sweeps LRU buffer sizes (the paper's 100K–1M entries, scaled)
// over the days of mail, home and web.
func RunFig5(o Options) (*Fig5Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	caps := []int{
		o.ScaleEntries(100_000), o.ScaleEntries(250_000),
		o.ScaleEntries(500_000), o.ScaleEntries(1_000_000), 0,
	}
	res := &Fig5Result{Capacities: caps}
	for _, name := range []string{"mail", "home", "web"} {
		p, _ := workload.ProfileByName(name)
		days, err := workload.GenerateDays(p, o.Days, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
		for d, recs := range days {
			res.Rows = append(res.Rows, Fig5Row{
				Day:    workload.DayLabel(name, d+1),
				Points: analysis.LRUWriteSweep(recs, caps),
			})
		}
	}
	return res, nil
}

// Table renders the structured Fig 5 table.
func (r *Fig5Result) Table() Table {
	header := []string{"trace-day"}
	for _, c := range r.Capacities {
		if c == 0 {
			header = append(header, "infinite")
		} else {
			header = append(header, fmt.Sprintf("%dK", c/1000))
		}
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Day}
		for _, pt := range row.Points {
			cells = append(cells, i64(pt.Writes))
		}
		rows = append(rows, cells)
	}
	return Table{
		Title:  "Fig 5: number of writes with LRU dead-value buffers (entries scaled)",
		Header: header,
		Rows:   rows,
	}
}

// String renders writes per buffer size, one row per trace-day.
func (r *Fig5Result) String() string { return r.Table().String() }

// ---------------------------------------------------------------- Fig 6 --

// Fig6Result is the avoidable-miss study of Fig 6 (mail day 2, small LRU).
type Fig6Result struct {
	Capacity int
	Bins     []analysis.DegreeMisses
}

// RunFig6 computes Fig 6: average avoidable LRU misses per popularity
// degree on the second day of mail with the scaled 100K-entry buffer.
func RunFig6(o Options) (*Fig6Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p, _ := workload.ProfileByName("mail")
	daysNeeded := o.Days
	if daysNeeded < 2 {
		daysNeeded = 2
	}
	days, err := workload.GenerateDays(p, daysNeeded, o.Requests, o.Seed)
	if err != nil {
		return nil, err
	}
	capacity := o.ScaleEntries(100_000)
	return &Fig6Result{
		Capacity: capacity,
		Bins:     analysis.LRUMissByPopularity(days[1], capacity, 32),
	}, nil
}

// Table renders the structured Fig 6 table.
func (r *Fig6Result) Table() Table {
	rows := make([][]string, 0, len(r.Bins))
	for _, b := range r.Bins {
		rows = append(rows, []string{i64(b.Degree), i64(b.Values), f1(b.AvgMisses)})
	}
	return Table{
		Title:  fmt.Sprintf("Fig 6: avg avoidable LRU misses per popularity degree (m2, %d entries)", r.Capacity),
		Header: []string{"degree", "values", "avg misses"},
		Rows:   rows,
	}
}

// String renders average misses per popularity degree.
func (r *Fig6Result) String() string { return r.Table().String() }

// -------------------------------------------------------------- Table I --

// Table1Result is the modeled SSD configuration.
type Table1Result struct {
	Geometry ssd.Geometry
	Latency  ssd.Latency
}

// RunTable1 returns the paper's Table I configuration.
func RunTable1(Options) (*Table1Result, error) {
	return &Table1Result{Geometry: ssd.PaperGeometry(), Latency: ssd.PaperLatency()}, nil
}

// Table renders the structured Table I.
func (r *Table1Result) Table() Table {
	g, l := r.Geometry, r.Latency
	rows := [][]string{
		{"Dimension", fmt.Sprintf("%d channels × %d chips", g.Channels, g.ChipsPerChannel)},
		{"Dies per chip", i64(int64(g.DiesPerChip))},
		{"Planes per die", i64(int64(g.PlanesPerDie))},
		{"Block size", fmt.Sprintf("%d pages", g.PagesPerBlock)},
		{"Page size", fmt.Sprintf("%d B", g.PageSize)},
		{"Capacity", fmt.Sprintf("%.0f GiB", float64(g.RawBytes())/(1<<30))},
		{"Over-provisioning", pct(g.OverProvision * 100)},
		{"Read latency", fmt.Sprintf("%d µs", l.Read)},
		{"Program latency", fmt.Sprintf("%d µs", l.Program)},
		{"Erase latency", fmt.Sprintf("%.1f ms", float64(l.Erase)/1000)},
		{"Hashing latency", fmt.Sprintf("%d µs", l.Hash)},
	}
	return Table{
		Title:  "Table I: main characteristics of the modeled SSD",
		Header: []string{"parameter", "value"},
		Rows:   rows,
	}
}

// String renders Table I.
func (r *Table1Result) String() string { return r.Table().String() }

// ------------------------------------------------------------- Table II --

// Table2Row is one workload's characteristics.
type Table2Row struct {
	Name           string
	WriteRatio     float64
	UniqueWriteVal float64
	UniqueReadVal  float64
	Footprint      int64
}

// Table2Result reproduces Table II from the generated traces.
type Table2Result struct{ Rows []Table2Row }

// RunTable2 generates each workload and measures its Table II columns.
func RunTable2(o Options) (*Table2Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	var res Table2Result
	for _, name := range workload.Names() {
		p, _ := workload.ProfileByName(name)
		recs, err := workload.Generate(p, o.Requests, o.Seed)
		if err != nil {
			return nil, err
		}
		s := trace.Collect(recs)
		res.Rows = append(res.Rows, Table2Row{
			Name:           name,
			WriteRatio:     s.WriteRatio(),
			UniqueWriteVal: s.UniqueWriteValueRatio(),
			UniqueReadVal:  s.UniqueReadValueRatio(),
			Footprint:      s.UniqueLBAs,
		})
	}
	return &res, nil
}

// Table renders the structured Table II.
func (r *Table2Result) Table() Table {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, pct(row.WriteRatio * 100),
			pct(row.UniqueWriteVal * 100), pct(row.UniqueReadVal * 100),
			i64(row.Footprint),
		})
	}
	return Table{
		Title:  "Table II: workload characteristics (measured on generated traces)",
		Header: []string{"trace", "WR", "unique value WR", "unique value RD", "footprint (pages)"},
		Rows:   rows,
	}
}

// String renders the Table II columns.
func (r *Table2Result) String() string { return r.Table().String() }
