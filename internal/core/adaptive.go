package core

import (
	"fmt"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// AdaptiveConfig parameterizes an AdaptivePool.
type AdaptiveConfig struct {
	// MQ is the underlying multi-queue configuration; its Capacity is the
	// starting capacity.
	MQ MQConfig
	// MinCapacity and MaxCapacity bound the controller.
	MinCapacity, MaxCapacity int
	// Window is the adaptation epoch length in writes.
	Window Tick
	// Step is the multiplicative growth step per pressured epoch.
	Step float64
}

// DefaultAdaptiveConfig starts at the paper's 200K entries and lets the
// controller move between 50K and 1M entries.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		MQ:          DefaultMQConfig(),
		MinCapacity: 50_000,
		MaxCapacity: 1_000_000,
		Window:      8192,
		Step:        0.25,
	}
}

// Validate reports whether the configuration is usable.
func (c AdaptiveConfig) Validate() error {
	if err := c.MQ.Validate(); err != nil {
		return err
	}
	if c.MinCapacity <= 0 || c.MaxCapacity < c.MinCapacity {
		return fmt.Errorf("core: adaptive capacity bounds [%d,%d] invalid", c.MinCapacity, c.MaxCapacity)
	}
	if c.MQ.Capacity < c.MinCapacity || c.MQ.Capacity > c.MaxCapacity {
		return fmt.Errorf("core: adaptive start capacity %d outside [%d,%d]",
			c.MQ.Capacity, c.MinCapacity, c.MaxCapacity)
	}
	if c.Window <= 0 {
		return fmt.Errorf("core: adaptive window must be positive, got %d", c.Window)
	}
	if c.Step <= 0 || c.Step > 1 {
		return fmt.Errorf("core: adaptive step must be in (0,1], got %g", c.Step)
	}
	return nil
}

// AdaptivePool implements the paper's stated future work ("dynamically
// tuning the total capacity for MQ, in order to adapt itself to any changes
// in the workload"): an MQPool whose entry budget is adjusted by a simple
// pressure controller once per epoch of writes —
//
//   - capacity evictions occurred in the epoch → the pool is too small for
//     the current garbage working set: grow by Step (up to MaxCapacity);
//   - no evictions and the pool is less than half full → RAM is being
//     wasted: shrink toward twice the occupancy (down to MinCapacity).
type AdaptivePool struct {
	cfg AdaptiveConfig
	mq  *MQPool

	epochStart     Tick
	evictionsStart int64

	grows, shrinks int64
}

var _ Pool = (*AdaptivePool)(nil)

// NewAdaptivePool returns an AdaptivePool over a fresh MQPool. Panics on an
// invalid configuration (a construction bug).
func NewAdaptivePool(cfg AdaptiveConfig, ledger *Ledger) *AdaptivePool {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &AdaptivePool{cfg: cfg, mq: NewMQPool(cfg.MQ, ledger)}
}

// Capacity returns the current entry budget.
func (p *AdaptivePool) Capacity() int { return p.mq.cfg.Capacity }

// Adaptations returns how often the controller grew and shrank the pool.
func (p *AdaptivePool) Adaptations() (grows, shrinks int64) { return p.grows, p.shrinks }

// maybeAdapt runs the controller at epoch boundaries.
func (p *AdaptivePool) maybeAdapt(now Tick) {
	if now-p.epochStart < p.cfg.Window {
		return
	}
	evictions := p.mq.stats.Evictions - p.evictionsStart
	capacity := p.mq.cfg.Capacity
	switch {
	case evictions > 0 && capacity < p.cfg.MaxCapacity:
		next := capacity + int(float64(capacity)*p.cfg.Step)
		if next > p.cfg.MaxCapacity {
			next = p.cfg.MaxCapacity
		}
		p.mq.cfg.Capacity = next
		p.grows++
	case evictions == 0 && p.mq.EntryCount() < capacity/2 && capacity > p.cfg.MinCapacity:
		next := 2 * p.mq.EntryCount()
		if next < p.cfg.MinCapacity {
			next = p.cfg.MinCapacity
		}
		if next < capacity {
			p.mq.cfg.Capacity = next
			for p.mq.EntryCount() > next {
				p.mq.evictOne()
			}
			p.shrinks++
		}
	}
	p.epochStart = now
	p.evictionsStart = p.mq.stats.Evictions
}

// Insert implements Pool.
func (p *AdaptivePool) Insert(h trace.Hash, ppn ssd.PPN, now Tick) {
	p.mq.Insert(h, ppn, now)
	p.maybeAdapt(now)
}

// Lookup implements Pool.
func (p *AdaptivePool) Lookup(h trace.Hash, now Tick) (ssd.PPN, bool) {
	ppn, ok := p.mq.Lookup(h, now)
	p.maybeAdapt(now)
	return ppn, ok
}

// Drop implements Pool.
func (p *AdaptivePool) Drop(ppn ssd.PPN) { p.mq.Drop(ppn) }

// GarbagePopularity implements Pool.
func (p *AdaptivePool) GarbagePopularity(ppn ssd.PPN) (uint8, bool) {
	return p.mq.GarbagePopularity(ppn)
}

// Len implements Pool.
func (p *AdaptivePool) Len() int { return p.mq.Len() }

// EntryCount returns the number of distinct hashes pooled.
func (p *AdaptivePool) EntryCount() int { return p.mq.EntryCount() }

// Stats implements Pool.
func (p *AdaptivePool) Stats() PoolStats { return p.mq.Stats() }
