// Package core implements the paper's primary contribution: the Dead-Value
// Pool (DVP). The pool buffers the 16-byte hashes of recently invalidated
// ("garbage", or zombie) pages together with the physical pages that still
// hold those bytes, so an incoming write with matching content can be
// short-circuited — the zombie page is flipped back to valid and only
// mapping tables change, saving the flash program entirely.
//
// Three replacement policies are provided:
//
//   - MQPool — the paper's Multi-Queue design (Section IV): multiple LRU
//     queues indexed by popularity degree, logarithmic promotion,
//     expiration-driven demotion, and an aging clock measured in writes.
//   - LRUPool — the single-queue strawman of Section III/Fig 5–6.
//   - InfinitePool — the unbounded "Ideal" configuration.
//
// All pools are clocked in *write counts*, as in the paper: the i-th write
// request has timestamp i.
package core

import (
	"fmt"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// Tick is the pool's logical clock: the number of write requests issued so
// far (the paper's "relative timestamp").
type Tick = int64

// Pool is a dead-value pool: an index from content hash to the garbage
// physical pages still holding that content.
//
// Lifecycle per the paper (Section IV-C):
//
//   - Insert is called when a page is invalidated (an update turns it into
//     garbage): the page's hash and PPN enter the pool.
//   - Lookup is called for each incoming write: on a hit one garbage PPN is
//     removed from the entry and returned so the FTL can revive it.
//   - Drop is called when GC erases a page that was in the pool.
type Pool interface {
	// Insert records that ppn has become a garbage copy of value h at
	// write-clock now. It may evict older entries to make room.
	Insert(h trace.Hash, ppn ssd.PPN, now Tick)

	// Lookup searches for a garbage copy of h. On a hit, one PPN is
	// removed from the pool and returned for revival.
	Lookup(h trace.Hash, now Tick) (ssd.PPN, bool)

	// Drop removes ppn from the pool, if present (the page was erased by
	// GC or otherwise reclaimed).
	Drop(ppn ssd.PPN)

	// GarbagePopularity returns the popularity degree of the pool entry
	// holding ppn, and whether ppn is pooled at all. The popularity-aware
	// GC victim selector uses this to avoid erasing popular zombies.
	GarbagePopularity(ppn ssd.PPN) (uint8, bool)

	// Len returns the number of pooled garbage pages (PPNs, not entries).
	Len() int

	// Stats returns cumulative counters.
	Stats() PoolStats
}

// PoolStats counts pool events.
type PoolStats struct {
	Inserts   int64 // garbage pages inserted
	Hits      int64 // lookups that revived a page
	Misses    int64 // lookups that found nothing
	Evictions int64 // pages evicted for capacity
	Drops     int64 // pages removed because GC erased them
	Promoted  int64 // MQ promotions
	Demoted   int64 // MQ expiration demotions
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups happened.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the counters compactly.
func (s PoolStats) String() string {
	return fmt.Sprintf("inserts=%d hits=%d misses=%d (%.1f%%) evict=%d drop=%d promo=%d demo=%d",
		s.Inserts, s.Hits, s.Misses, s.HitRate()*100, s.Evictions, s.Drops, s.Promoted, s.Demoted)
}

// MaxPopularity is the saturation point of popularity counters — the paper
// dedicates one byte per LPN-table entry to popularity, so degrees cap at
// 255.
const MaxPopularity = ^uint8(0)

// Ledger tracks the popularity degree (write count) of every value, the
// counterpart of the paper's 1-byte popularity field in the LPN-to-PPN
// table: it survives pool evictions so a value re-entering the pool starts
// from its true degree. Counters saturate at MaxPopularity.
type Ledger struct {
	pop map[trace.Hash]uint8
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{pop: make(map[trace.Hash]uint8)}
}

// Bump increments h's popularity (saturating) and returns the new degree.
// Call it once per write of h, regardless of pool state.
func (l *Ledger) Bump(h trace.Hash) uint8 {
	p := l.pop[h]
	if p < MaxPopularity {
		p++
		l.pop[h] = p
	}
	return p
}

// Get returns h's current popularity degree.
func (l *Ledger) Get(h trace.Hash) uint8 { return l.pop[h] }

// Len returns the number of values tracked.
func (l *Ledger) Len() int { return len(l.pop) }
