package core

import (
	"math/rand"
	"testing"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

func h(id uint64) trace.Hash { return trace.HashOfValue(id) }

func TestLedgerBumpAndSaturation(t *testing.T) {
	l := NewLedger()
	if l.Get(h(1)) != 0 {
		t.Fatal("fresh value must have popularity 0")
	}
	if got := l.Bump(h(1)); got != 1 {
		t.Fatalf("first Bump = %d, want 1", got)
	}
	for i := 0; i < 300; i++ {
		l.Bump(h(1))
	}
	if got := l.Get(h(1)); got != MaxPopularity {
		t.Fatalf("popularity = %d, want saturation at %d", got, MaxPopularity)
	}
	if l.Len() != 1 {
		t.Fatalf("ledger tracks %d values, want 1", l.Len())
	}
}

func TestPoolStatsHitRate(t *testing.T) {
	s := PoolStats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %g, want 0.75", got)
	}
	if (PoolStats{}).HitRate() != 0 {
		t.Error("empty stats HitRate must be 0")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestEntryListOps(t *testing.T) {
	var l entryList
	a, b, c := &entry{}, &entry{}, &entry{}
	l.pushTail(a)
	l.pushTail(b)
	l.pushTail(c)
	if l.n != 3 || l.head != a || l.tail != c {
		t.Fatalf("list after pushes: n=%d head=%p tail=%p", l.n, l.head, l.tail)
	}
	l.moveToTail(a)
	if l.head != b || l.tail != a {
		t.Fatal("moveToTail(head) wrong")
	}
	l.moveToTail(a) // already tail: no-op
	if l.tail != a || l.n != 3 {
		t.Fatal("moveToTail(tail) must be a no-op")
	}
	l.remove(b)
	if l.head != c || l.n != 2 {
		t.Fatal("remove(middle/head) wrong")
	}
	l.remove(c)
	l.remove(a)
	if l.head != nil || l.tail != nil || l.n != 0 {
		t.Fatal("list not empty after removing all")
	}
}

// pools under test, constructed fresh, capacity in entries.
func testPools(capacity int) map[string]Pool {
	return map[string]Pool{
		"mq":       NewMQPool(MQConfig{Queues: 8, Capacity: capacity, DefaultLifetime: 64}, NewLedger()),
		"lru":      NewLRUPool(capacity, NewLedger()),
		"infinite": NewInfinitePool(NewLedger()),
	}
}

func TestPoolBasicInsertLookup(t *testing.T) {
	for name, p := range testPools(10) {
		t.Run(name, func(t *testing.T) {
			if _, ok := p.Lookup(h(1), 0); ok {
				t.Fatal("lookup in empty pool hit")
			}
			p.Insert(h(1), 100, 1)
			if p.Len() != 1 {
				t.Fatalf("Len = %d, want 1", p.Len())
			}
			ppn, ok := p.Lookup(h(1), 2)
			if !ok || ppn != 100 {
				t.Fatalf("Lookup = (%d,%v), want (100,true)", ppn, ok)
			}
			if p.Len() != 0 {
				t.Fatalf("Len after revive = %d, want 0", p.Len())
			}
			// A revived page is gone; a second lookup must miss.
			if _, ok := p.Lookup(h(1), 3); ok {
				t.Fatal("revived page still in pool")
			}
			st := p.Stats()
			if st.Hits != 1 || st.Misses != 2 || st.Inserts != 1 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestPoolMultipleCopiesReviveMostRecent(t *testing.T) {
	for name, p := range testPools(10) {
		t.Run(name, func(t *testing.T) {
			p.Insert(h(7), 10, 1)
			p.Insert(h(7), 20, 2)
			p.Insert(h(7), 30, 3)
			if p.Len() != 3 {
				t.Fatalf("Len = %d, want 3", p.Len())
			}
			ppn, ok := p.Lookup(h(7), 4)
			if !ok || ppn != 30 {
				t.Fatalf("first revive = %d, want most recent death 30", ppn)
			}
			ppn, _ = p.Lookup(h(7), 5)
			if ppn != 20 {
				t.Fatalf("second revive = %d, want 20", ppn)
			}
			ppn, _ = p.Lookup(h(7), 6)
			if ppn != 10 {
				t.Fatalf("third revive = %d, want 10", ppn)
			}
		})
	}
}

func TestPoolDrop(t *testing.T) {
	for name, p := range testPools(10) {
		t.Run(name, func(t *testing.T) {
			p.Insert(h(1), 10, 1)
			p.Insert(h(1), 20, 2)
			p.Drop(10)
			if p.Len() != 1 {
				t.Fatalf("Len after drop = %d, want 1", p.Len())
			}
			ppn, ok := p.Lookup(h(1), 3)
			if !ok || ppn != 20 {
				t.Fatalf("Lookup = (%d,%v), want (20,true)", ppn, ok)
			}
			p.Drop(999) // unknown PPN must be a no-op
			if p.Stats().Drops != 1 {
				t.Fatalf("Drops = %d, want 1", p.Stats().Drops)
			}
			// Dropping the last copy removes the entry entirely.
			p.Insert(h(2), 30, 4)
			p.Drop(30)
			if _, ok := p.Lookup(h(2), 5); ok {
				t.Fatal("entry survived dropping its only page")
			}
		})
	}
}

func TestPoolGarbagePopularity(t *testing.T) {
	build := map[string]func(*Ledger) Pool{
		"mq": func(l *Ledger) Pool {
			return NewMQPool(MQConfig{Queues: 8, Capacity: 10, DefaultLifetime: 64}, l)
		},
		"lru":      func(l *Ledger) Pool { return NewLRUPool(10, l) },
		"infinite": func(l *Ledger) Pool { return NewInfinitePool(l) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			ledger := NewLedger()
			p := mk(ledger)
			ledger.Bump(h(5))
			ledger.Bump(h(5))
			p.Insert(h(5), 50, 1)
			pop, ok := p.GarbagePopularity(50)
			if !ok || pop != 2 {
				t.Fatalf("GarbagePopularity = (%d,%v), want (2,true)", pop, ok)
			}
			if _, ok := p.GarbagePopularity(51); ok {
				t.Fatal("unknown PPN reported as pooled")
			}
		})
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := NewLRUPool(2, NewLedger())
	p.Insert(h(1), 10, 1)
	p.Insert(h(2), 20, 2)
	p.Insert(h(3), 30, 3) // evicts h(1), the LRU entry
	if _, ok := p.Lookup(h(1), 4); ok {
		t.Fatal("LRU entry h(1) not evicted")
	}
	if _, ok := p.Lookup(h(2), 5); !ok {
		t.Fatal("h(2) wrongly evicted")
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", p.Stats().Evictions)
	}
}

func TestLRURecencyRefreshOnInsertHit(t *testing.T) {
	p := NewLRUPool(2, NewLedger())
	p.Insert(h(1), 10, 1)
	p.Insert(h(2), 20, 2)
	p.Insert(h(1), 11, 3) // refreshes h(1)'s recency
	p.Insert(h(3), 30, 4) // must evict h(2), now the LRU
	if _, ok := p.Lookup(h(2), 5); ok {
		t.Fatal("h(2) should have been evicted")
	}
	if _, ok := p.Lookup(h(1), 6); !ok {
		t.Fatal("refreshed h(1) wrongly evicted")
	}
}

func TestInfinitePoolNeverEvicts(t *testing.T) {
	p := NewInfinitePool(NewLedger())
	for i := uint64(0); i < 100000; i++ {
		p.Insert(h(i), ssd.PPN(i), Tick(i))
	}
	if p.Len() != 100000 || p.EntryCount() != 100000 {
		t.Fatalf("Len=%d EntryCount=%d, want 100000", p.Len(), p.EntryCount())
	}
	if p.Stats().Evictions != 0 {
		t.Fatal("infinite pool evicted")
	}
	for i := uint64(0); i < 100000; i += 997 {
		if _, ok := p.Lookup(h(i), 0); !ok {
			t.Fatalf("lost value %d", i)
		}
	}
}

func TestConstructorPanicsOnBadInput(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("NewMQPool bad config", func() { NewMQPool(MQConfig{}, NewLedger()) })
	expectPanic("NewMQPool nil ledger", func() { NewMQPool(DefaultMQConfig(), nil) })
	expectPanic("NewLRUPool zero capacity", func() { NewLRUPool(0, NewLedger()) })
	expectPanic("NewLRUPool nil ledger", func() { NewLRUPool(1, nil) })
	expectPanic("NewInfinitePool nil ledger", func() { NewInfinitePool(nil) })
}

func TestMQConfigValidate(t *testing.T) {
	if err := DefaultMQConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []MQConfig{
		{Queues: 0, Capacity: 1, DefaultLifetime: 1},
		{Queues: 1, Capacity: 0, DefaultLifetime: 1},
		{Queues: 1, Capacity: 1, DefaultLifetime: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

// modelPool is a trivially correct unbounded reference; InfinitePool must
// match its hit/miss behaviour exactly.
type modelPool struct {
	m map[trace.Hash][]ssd.PPN
	r map[ssd.PPN]trace.Hash
}

func (m *modelPool) insert(hh trace.Hash, p ssd.PPN) {
	m.m[hh] = append(m.m[hh], p)
	m.r[p] = hh
}

func (m *modelPool) lookup(hh trace.Hash) (ssd.PPN, bool) {
	l := m.m[hh]
	if len(l) == 0 {
		return ssd.InvalidPPN, false
	}
	p := l[len(l)-1]
	m.m[hh] = l[:len(l)-1]
	delete(m.r, p)
	return p, true
}

func (m *modelPool) drop(p ssd.PPN) {
	hh, ok := m.r[p]
	if !ok {
		return
	}
	delete(m.r, p)
	l := m.m[hh]
	for i, x := range l {
		if x == p {
			m.m[hh] = append(l[:i], l[i+1:]...)
			return
		}
	}
}

func TestInfinitePoolMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := NewInfinitePool(NewLedger())
	model := &modelPool{m: map[trace.Hash][]ssd.PPN{}, r: map[ssd.PPN]trace.Hash{}}
	nextPPN := ssd.PPN(0)
	live := []ssd.PPN{}
	for i := 0; i < 50000; i++ {
		v := h(uint64(rng.Intn(200)))
		switch rng.Intn(3) {
		case 0:
			p.Insert(v, nextPPN, Tick(i))
			model.insert(v, nextPPN)
			live = append(live, nextPPN)
			nextPPN++
		case 1:
			got, gotOK := p.Lookup(v, Tick(i))
			want, wantOK := model.lookup(v)
			if gotOK != wantOK || got != want {
				t.Fatalf("op %d: Lookup = (%d,%v), model (%d,%v)", i, got, gotOK, want, wantOK)
			}
		default:
			if len(live) == 0 {
				continue
			}
			idx := rng.Intn(len(live))
			target := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			p.Drop(target)
			model.drop(target)
		}
		if p.Len() != len(model.r) {
			t.Fatalf("op %d: Len = %d, model %d", i, p.Len(), len(model.r))
		}
	}
}
