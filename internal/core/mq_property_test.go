package core

import (
	"math/rand"
	"testing"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// checkMQStructure extends mq_test.go's checkMQInvariants with the
// capacity bound and intrusive-list integrity:
//
//  1. the entry count never exceeds capacity;
//  2. every queue's linked list is well formed and agrees with its length
//     counter, and every entry on queue q records queue == q;
//  3. the hash index and the queues hold exactly the same entries;
//  4. the reverse PPN index is consistent with queue contents: every pooled
//     PPN maps back to the entry listing it, no PPN appears in two entries,
//     and the pooled-page counter matches.
func checkMQStructure(t *testing.T, p *MQPool) {
	t.Helper()
	if len(p.index) > p.cfg.Capacity {
		t.Fatalf("entry count %d exceeds capacity %d", len(p.index), p.cfg.Capacity)
	}
	inQueues := 0
	pages := 0
	seen := make(map[ssd.PPN]trace.Hash)
	for q := range p.queues {
		n := 0
		var prev *entry
		for e := p.queues[q].head; e != nil; e = e.next {
			if e.prev != prev {
				t.Fatalf("queue %d: broken back-link at entry %v", q, e.hash)
			}
			if e.queue != q {
				t.Fatalf("entry %v on queue %d records queue %d", e.hash, q, e.queue)
			}
			if got, ok := p.index[e.hash]; !ok || got != e {
				t.Fatalf("queue %d entry %v not in the hash index", q, e.hash)
			}
			if len(e.ppns) == 0 {
				t.Fatalf("entry %v lives in queue %d with no pooled pages", e.hash, q)
			}
			for _, ppn := range e.ppns {
				if other, dup := seen[ppn]; dup {
					t.Fatalf("PPN %d pooled under both %v and %v", ppn, other, e.hash)
				}
				seen[ppn] = e.hash
				if got, ok := p.byPPN[ppn]; !ok || got != e {
					t.Fatalf("byPPN[%d] does not point at the entry listing it", ppn)
				}
				pages++
			}
			prev = e
			n++
		}
		if n != p.queues[q].n {
			t.Fatalf("queue %d walk found %d entries, counter says %d", q, n, p.queues[q].n)
		}
		inQueues += n
	}
	if inQueues != len(p.index) {
		t.Fatalf("queues hold %d entries, index holds %d", inQueues, len(p.index))
	}
	if pages != len(p.byPPN) || pages != p.pages {
		t.Fatalf("pooled pages: queues %d, byPPN %d, counter %d", pages, len(p.byPPN), p.pages)
	}
}

// TestMQPoolPropertyInvariants drives randomized Insert/Lookup/Drop/Bump
// sequences against pools of several shapes and re-verifies every
// structural invariant after each operation. Seeded, so a failure replays.
func TestMQPoolPropertyInvariants(t *testing.T) {
	cases := []struct {
		name string
		cfg  MQConfig
		seed int64
		ops  int
	}{
		{"tiny-capacity", MQConfig{Queues: 4, Capacity: 8, DefaultLifetime: 16}, 1, 4000},
		{"single-queue", MQConfig{Queues: 1, Capacity: 64, DefaultLifetime: 64}, 2, 4000},
		{"paper-shape", MQConfig{Queues: 8, Capacity: 256, DefaultLifetime: 512}, 3, 6000},
		{"churny-lifetime", MQConfig{Queues: 8, Capacity: 32, DefaultLifetime: 2}, 4, 6000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			ledger := NewLedger()
			p := NewMQPool(tc.cfg, ledger)
			nextPPN := ssd.PPN(0)
			var now Tick
			// A small hash universe forces collisions: multi-PPN entries,
			// revivals and re-inserts all get exercised.
			hashOf := func() trace.Hash { return trace.HashOfValue(uint64(rng.Intn(48))) }
			for i := 0; i < tc.ops; i++ {
				now += Tick(rng.Intn(4))
				switch op := rng.Intn(10); {
				case op < 5: // insert a fresh garbage page
					h := hashOf()
					ledger.Bump(h)
					p.Insert(h, nextPPN, now)
					nextPPN++
				case op < 8: // revive
					p.Lookup(hashOf(), now)
				case op < 9: // GC destroyed a pooled page (or a random miss)
					p.Drop(ssd.PPN(rng.Int63n(int64(nextPPN) + 1)))
				default: // popularity changes without pool activity
					ledger.Bump(hashOf())
				}
				checkMQStructure(t, p)
			}
			if p.Stats().Inserts == 0 || p.Stats().Hits == 0 {
				t.Fatalf("sequence exercised too little: %+v", p.Stats())
			}
		})
	}
}

// TestMQPoolLookupNeverReturnsDropped pins the Drop/Lookup interaction: a
// dropped PPN must never be revived later.
func TestMQPoolLookupNeverReturnsDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ledger := NewLedger()
	p := NewMQPool(MQConfig{Queues: 4, Capacity: 64, DefaultLifetime: 32}, ledger)
	dropped := make(map[ssd.PPN]bool)
	nextPPN := ssd.PPN(0)
	for i := 0; i < 6000; i++ {
		now := Tick(i)
		h := trace.HashOfValue(uint64(rng.Intn(32)))
		switch rng.Intn(3) {
		case 0:
			ledger.Bump(h)
			p.Insert(h, nextPPN, now)
			delete(dropped, nextPPN)
			nextPPN++
		case 1:
			if ppn, ok := p.Lookup(h, now); ok && dropped[ppn] {
				t.Fatalf("lookup revived dropped PPN %d", ppn)
			}
		case 2:
			ppn := ssd.PPN(rng.Int63n(int64(nextPPN) + 1))
			p.Drop(ppn)
			dropped[ppn] = true
		}
	}
}
