package core

import (
	"testing"

	"zombiessd/internal/ssd"
)

func adaptiveCfg(start, min, max int) AdaptiveConfig {
	return AdaptiveConfig{
		MQ:          MQConfig{Queues: 8, Capacity: start, DefaultLifetime: 64},
		MinCapacity: min,
		MaxCapacity: max,
		Window:      256,
		Step:        0.25,
	}
}

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []AdaptiveConfig{
		{MQ: MQConfig{}, MinCapacity: 1, MaxCapacity: 2, Window: 1, Step: 0.1},
		func() AdaptiveConfig { c := adaptiveCfg(100, 200, 300); return c }(), // start below min
		func() AdaptiveConfig { c := adaptiveCfg(100, 50, 200); c.Window = 0; return c }(),
		func() AdaptiveConfig { c := adaptiveCfg(100, 50, 200); c.Step = 0; return c }(),
		func() AdaptiveConfig { c := adaptiveCfg(100, 50, 200); c.Step = 2; return c }(),
		func() AdaptiveConfig { c := adaptiveCfg(100, 200, 100); return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

func TestAdaptivePoolGrowsUnderPressure(t *testing.T) {
	l := NewLedger()
	p := NewAdaptivePool(adaptiveCfg(100, 50, 10_000), l)
	// Insert a stream of distinct values: constant eviction pressure.
	for i := uint64(0); i < 20_000; i++ {
		l.Bump(h(i))
		p.Insert(h(i), ssd.PPN(i), Tick(i))
	}
	grows, _ := p.Adaptations()
	if grows == 0 {
		t.Fatal("controller never grew under eviction pressure")
	}
	if p.Capacity() <= 100 {
		t.Fatalf("capacity = %d, want growth beyond 100", p.Capacity())
	}
	if p.Capacity() > 10_000 {
		t.Fatalf("capacity = %d exceeds MaxCapacity", p.Capacity())
	}
}

func TestAdaptivePoolShrinksWhenIdle(t *testing.T) {
	l := NewLedger()
	p := NewAdaptivePool(adaptiveCfg(8000, 50, 10_000), l)
	// A small working set: pool occupancy stays far below capacity, and
	// hits keep removing entries.
	now := Tick(0)
	for i := 0; i < 30_000; i++ {
		now++
		v := h(uint64(i % 40))
		l.Bump(v)
		if _, ok := p.Lookup(v, now); !ok {
			p.Insert(v, ssd.PPN(i), now)
		}
	}
	_, shrinks := p.Adaptations()
	if shrinks == 0 {
		t.Fatal("controller never shrank an oversized pool")
	}
	if p.Capacity() >= 8000 {
		t.Fatalf("capacity = %d, want shrink below 8000", p.Capacity())
	}
	if p.Capacity() < 50 {
		t.Fatalf("capacity = %d below MinCapacity", p.Capacity())
	}
}

func TestAdaptivePoolBehavesLikePool(t *testing.T) {
	l := NewLedger()
	p := NewAdaptivePool(adaptiveCfg(100, 50, 1000), l)
	p.Insert(h(1), 10, 1)
	p.Insert(h(1), 11, 2)
	if p.Len() != 2 || p.EntryCount() != 1 {
		t.Fatalf("Len=%d EntryCount=%d", p.Len(), p.EntryCount())
	}
	if ppn, ok := p.Lookup(h(1), 3); !ok || ppn != 11 {
		t.Fatalf("Lookup = (%d,%v)", ppn, ok)
	}
	if pop, ok := p.GarbagePopularity(10); !ok || pop != l.Get(h(1)) {
		t.Fatalf("GarbagePopularity = (%d,%v)", pop, ok)
	}
	p.Drop(10)
	if p.Len() != 0 {
		t.Fatalf("Len after drop = %d", p.Len())
	}
	if p.Stats().Hits != 1 || p.Stats().Drops != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestAdaptivePoolShrinkEnforcesCapacity(t *testing.T) {
	l := NewLedger()
	cfg := adaptiveCfg(4000, 50, 4000)
	p := NewAdaptivePool(cfg, l)
	// Fill well above the eventual shrunken capacity...
	for i := uint64(0); i < 3000; i++ {
		l.Bump(h(i))
		p.Insert(h(i), ssd.PPN(i), 1) // same tick: no epoch boundary yet
	}
	// ...then drain most of it via GC drops and advance epochs with a tiny
	// working set so the controller shrinks.
	for i := uint64(0); i < 2900; i++ {
		p.Drop(ssd.PPN(i))
	}
	now := Tick(0)
	for i := 0; i < 10_000; i++ {
		now++
		v := h(uint64(100_000 + i%20))
		l.Bump(v)
		if _, ok := p.Lookup(v, now); !ok {
			p.Insert(v, ssd.PPN(1_000_000+i), now)
		}
	}
	if p.EntryCount() > p.Capacity() {
		t.Fatalf("entry count %d exceeds capacity %d after shrink", p.EntryCount(), p.Capacity())
	}
}

func TestNewAdaptivePoolPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on invalid config")
		}
	}()
	NewAdaptivePool(AdaptiveConfig{}, NewLedger())
}
