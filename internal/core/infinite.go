package core

import (
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// InfinitePool is the paper's "Ideal" configuration: an unbounded
// dead-value pool that never evicts for capacity. It is not implementable
// on a real device and exists to upper-bound the achievable benefit
// (Figs 1, 5, 9, 10).
type InfinitePool struct {
	ledger *Ledger
	index  map[trace.Hash][]ssd.PPN
	byPPN  map[ssd.PPN]trace.Hash
	stats  PoolStats
}

var _ Pool = (*InfinitePool)(nil)

// NewInfinitePool returns an empty unbounded pool. The ledger (may not be
// nil) supplies popularity for GC scoring.
func NewInfinitePool(ledger *Ledger) *InfinitePool {
	if ledger == nil {
		panic("core: NewInfinitePool requires a ledger")
	}
	return &InfinitePool{
		ledger: ledger,
		index:  make(map[trace.Hash][]ssd.PPN),
		byPPN:  make(map[ssd.PPN]trace.Hash),
	}
}

// Insert implements Pool.
func (p *InfinitePool) Insert(h trace.Hash, ppn ssd.PPN, _ Tick) {
	p.stats.Inserts++
	p.index[h] = append(p.index[h], ppn)
	p.byPPN[ppn] = h
}

// Lookup implements Pool.
func (p *InfinitePool) Lookup(h trace.Hash, _ Tick) (ssd.PPN, bool) {
	ppns := p.index[h]
	if len(ppns) == 0 {
		p.stats.Misses++
		return ssd.InvalidPPN, false
	}
	p.stats.Hits++
	ppn := ppns[len(ppns)-1]
	ppns = ppns[:len(ppns)-1]
	if len(ppns) == 0 {
		delete(p.index, h)
	} else {
		p.index[h] = ppns
	}
	delete(p.byPPN, ppn)
	return ppn, true
}

// Drop implements Pool.
func (p *InfinitePool) Drop(ppn ssd.PPN) {
	h, ok := p.byPPN[ppn]
	if !ok {
		return
	}
	p.stats.Drops++
	delete(p.byPPN, ppn)
	ppns := p.index[h]
	for i, x := range ppns {
		if x == ppn {
			ppns = append(ppns[:i], ppns[i+1:]...)
			break
		}
	}
	if len(ppns) == 0 {
		delete(p.index, h)
	} else {
		p.index[h] = ppns
	}
}

// GarbagePopularity implements Pool.
func (p *InfinitePool) GarbagePopularity(ppn ssd.PPN) (uint8, bool) {
	h, ok := p.byPPN[ppn]
	if !ok {
		return 0, false
	}
	return p.ledger.Get(h), true
}

// Len implements Pool.
func (p *InfinitePool) Len() int { return len(p.byPPN) }

// EntryCount returns the number of distinct hashes pooled.
func (p *InfinitePool) EntryCount() int { return len(p.index) }

// Stats implements Pool.
func (p *InfinitePool) Stats() PoolStats { return p.stats }
