package core

import (
	"fmt"
	"math/bits"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// entry is one dead-value pool record: a value hash, the garbage physical
// pages currently holding that value, its popularity degree, and — for MQ —
// its queue index and expiration time (Fig 8 of the paper).
type entry struct {
	hash   trace.Hash
	ppns   []ssd.PPN
	pop    uint8
	expire Tick
	queue  int

	prev, next *entry
}

// entryList is an intrusive doubly-linked LRU list: head is least recently
// used, tail is most recently used.
type entryList struct {
	head, tail *entry
	n          int
}

func (l *entryList) pushTail(e *entry) {
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.n++
}

func (l *entryList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

func (l *entryList) moveToTail(e *entry) {
	if l.tail == e {
		return
	}
	l.remove(e)
	l.pushTail(e)
}

// MQConfig parameterizes an MQPool.
type MQConfig struct {
	// Queues is the number of LRU queues (the paper uses 8).
	Queues int
	// Capacity is the maximum number of entries (distinct hashes); the
	// paper's default is 200K entries ≈ 5 MB of SSD RAM.
	Capacity int
	// DefaultLifetime seeds the expiration interval before the hottest
	// entry has been observed twice (the MQ algorithm's lifeTime).
	DefaultLifetime Tick
}

// DefaultMQConfig returns the paper's configuration: 8 queues, 200K entries.
func DefaultMQConfig() MQConfig {
	return MQConfig{Queues: 8, Capacity: 200_000, DefaultLifetime: 8192}
}

// Validate reports whether the configuration is usable.
func (c MQConfig) Validate() error {
	if c.Queues <= 0 {
		return fmt.Errorf("core: MQ queue count must be positive, got %d", c.Queues)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("core: MQ capacity must be positive, got %d", c.Capacity)
	}
	if c.DefaultLifetime <= 0 {
		return fmt.Errorf("core: MQ default lifetime must be positive, got %d", c.DefaultLifetime)
	}
	return nil
}

// MQPool is the paper's Multi-Queue dead-value pool (Sections III-A/IV).
// Entries live in one of several LRU queues chosen by popularity degree:
// an entry whose ⌊log₂(pop+1)⌋ exceeds its queue index is promoted one
// queue up on access; queue heads whose expiration time has passed are
// demoted one queue down on every update. Capacity evictions take the LRU
// entry of the lowest non-empty queue, so unpopular-and-stale zombies die
// first while popular ones survive to be revived.
type MQPool struct {
	cfg    MQConfig
	ledger *Ledger

	queues []entryList
	index  map[trace.Hash]*entry
	byPPN  map[ssd.PPN]*entry
	pages  int // total pooled PPNs

	// Hottest-entry tracking, used to derive the expiration interval: the
	// interval between the hottest entry's last two accesses (Section IV-C).
	hottestHash     trace.Hash
	hottestPop      uint8
	hottestLast     Tick
	hottestInterval Tick
	hottestValid    bool

	stats PoolStats
}

var _ Pool = (*MQPool)(nil)

// NewMQPool returns an MQPool with the given configuration. The ledger
// supplies popularity degrees; it must be the same ledger the FTL bumps on
// every write. Panics on an invalid configuration (a construction bug, not
// a runtime condition).
func NewMQPool(cfg MQConfig, ledger *Ledger) *MQPool {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if ledger == nil {
		panic("core: NewMQPool requires a ledger")
	}
	return &MQPool{
		cfg:             cfg,
		ledger:          ledger,
		queues:          make([]entryList, cfg.Queues),
		index:           make(map[trace.Hash]*entry, cfg.Capacity),
		byPPN:           make(map[ssd.PPN]*entry, cfg.Capacity),
		hottestInterval: cfg.DefaultLifetime,
	}
}

// queueFor maps a popularity degree to its home queue: ⌊log₂(pop+1)⌋,
// clamped to the top queue.
func (p *MQPool) queueFor(pop uint8) int {
	q := bits.Len16(uint16(pop)+1) - 1
	if q >= p.cfg.Queues {
		q = p.cfg.Queues - 1
	}
	return q
}

// Insert implements Pool. It also runs the demotion sweep and capacity
// eviction, which the paper performs "upon each update".
func (p *MQPool) Insert(h trace.Hash, ppn ssd.PPN, now Tick) {
	p.stats.Inserts++
	if e, ok := p.index[h]; ok {
		e.ppns = append(e.ppns, ppn)
		p.byPPN[ppn] = e
		p.pages++
		p.touch(e, now)
	} else {
		e := &entry{hash: h, ppns: []ssd.PPN{ppn}, pop: p.ledger.Get(h)}
		e.queue = 0 // inserts always start at the bottom queue
		e.expire = now + p.hottestInterval
		p.queues[0].pushTail(e)
		p.index[h] = e
		p.byPPN[ppn] = e
		p.pages++
		p.observeHottest(e, now)
	}
	p.demoteExpired(now)
	for len(p.index) > p.cfg.Capacity {
		p.evictOne()
	}
}

// Lookup implements Pool.
func (p *MQPool) Lookup(h trace.Hash, now Tick) (ssd.PPN, bool) {
	e, ok := p.index[h]
	if !ok {
		p.stats.Misses++
		return ssd.InvalidPPN, false
	}
	p.stats.Hits++
	ppn := e.ppns[len(e.ppns)-1] // revive the most recent death
	e.ppns = e.ppns[:len(e.ppns)-1]
	delete(p.byPPN, ppn)
	p.pages--
	if len(e.ppns) == 0 {
		// The entry no longer describes any garbage page; it leaves the
		// pool (the paper: "this entry is removed since it does not
		// contain the information of a garbage page anymore").
		p.removeEntry(e)
	} else {
		p.touch(e, now)
	}
	return ppn, true
}

// touch refreshes recency, popularity, promotion and expiration of e after
// an access at write-clock now.
func (p *MQPool) touch(e *entry, now Tick) {
	e.pop = p.ledger.Get(e.hash)
	p.queues[e.queue].moveToTail(e)
	if target := p.queueFor(e.pop); target > e.queue {
		// Promote one queue up per access (paper: "promoted to one higher
		// queue").
		p.queues[e.queue].remove(e)
		e.queue++
		p.queues[e.queue].pushTail(e)
		p.stats.Promoted++
	}
	e.expire = now + p.hottestInterval
	p.observeHottest(e, now)
}

// observeHottest maintains the hottest entry and the interval between its
// last two accesses, which becomes the pool-wide expiration interval.
func (p *MQPool) observeHottest(e *entry, now Tick) {
	switch {
	case p.hottestValid && e.hash == p.hottestHash:
		// Re-access of the current hottest entry: the gap between its last
		// two accesses becomes the expiration interval.
		if iv := now - p.hottestLast; iv > 0 {
			p.hottestInterval = iv
		}
		p.hottestLast = now
		p.hottestPop = e.pop
	case !p.hottestValid || e.pop > p.hottestPop:
		p.hottestValid = true
		p.hottestHash = e.hash
		p.hottestPop = e.pop
		p.hottestLast = now
	}
}

// demoteExpired checks the head (LRU end) of every queue above the bottom
// and demotes it one queue down if its expiration time has passed.
func (p *MQPool) demoteExpired(now Tick) {
	for q := len(p.queues) - 1; q >= 1; q-- {
		head := p.queues[q].head
		if head == nil || head.expire >= now {
			continue
		}
		p.queues[q].remove(head)
		head.queue = q - 1
		head.expire = now + p.hottestInterval
		p.queues[q-1].pushTail(head)
		p.stats.Demoted++
	}
}

// evictOne removes the LRU entry of the lowest non-empty queue.
func (p *MQPool) evictOne() {
	for q := range p.queues {
		if head := p.queues[q].head; head != nil {
			p.stats.Evictions += int64(len(head.ppns))
			p.removeEntry(head)
			return
		}
	}
}

// removeEntry removes e and all its remaining PPNs from every index.
func (p *MQPool) removeEntry(e *entry) {
	p.queues[e.queue].remove(e)
	delete(p.index, e.hash)
	for _, ppn := range e.ppns {
		delete(p.byPPN, ppn)
	}
	p.pages -= len(e.ppns)
	e.ppns = nil
}

// Drop implements Pool.
func (p *MQPool) Drop(ppn ssd.PPN) {
	e, ok := p.byPPN[ppn]
	if !ok {
		return
	}
	p.stats.Drops++
	delete(p.byPPN, ppn)
	for i, x := range e.ppns {
		if x == ppn {
			e.ppns = append(e.ppns[:i], e.ppns[i+1:]...)
			break
		}
	}
	p.pages--
	if len(e.ppns) == 0 {
		p.removeEntry(e)
	}
}

// GarbagePopularity implements Pool.
func (p *MQPool) GarbagePopularity(ppn ssd.PPN) (uint8, bool) {
	e, ok := p.byPPN[ppn]
	if !ok {
		return 0, false
	}
	return e.pop, true
}

// Len implements Pool: the number of pooled garbage pages.
func (p *MQPool) Len() int { return p.pages }

// EntryCount returns the number of distinct hashes pooled.
func (p *MQPool) EntryCount() int { return len(p.index) }

// QueueLengths returns the number of entries in each queue, bottom first;
// useful for introspection and tests.
func (p *MQPool) QueueLengths() []int {
	out := make([]int, len(p.queues))
	for i := range p.queues {
		out[i] = p.queues[i].n
	}
	return out
}

// Stats implements Pool.
func (p *MQPool) Stats() PoolStats { return p.stats }
