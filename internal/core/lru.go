package core

import (
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// LRUPool is the single-queue dead-value pool of Section III: pure recency,
// no popularity. The paper uses it to show (Figs 5–6) that plain LRU leaves
// many misses on the table for popular values, motivating MQ.
type LRUPool struct {
	capacity int // max entries (distinct hashes)
	ledger   *Ledger

	list  entryList
	index map[trace.Hash]*entry
	byPPN map[ssd.PPN]*entry
	pages int

	stats PoolStats
}

var _ Pool = (*LRUPool)(nil)

// NewLRUPool returns an LRUPool holding at most capacity entries. The
// ledger supplies popularity degrees for GC scoring only; replacement
// ignores popularity by design. Panics on a non-positive capacity or nil
// ledger (construction bugs).
func NewLRUPool(capacity int, ledger *Ledger) *LRUPool {
	if capacity <= 0 {
		panic("core: LRU pool capacity must be positive")
	}
	if ledger == nil {
		panic("core: NewLRUPool requires a ledger")
	}
	return &LRUPool{
		capacity: capacity,
		ledger:   ledger,
		index:    make(map[trace.Hash]*entry, capacity),
		byPPN:    make(map[ssd.PPN]*entry, capacity),
	}
}

// Insert implements Pool.
func (p *LRUPool) Insert(h trace.Hash, ppn ssd.PPN, now Tick) {
	p.stats.Inserts++
	if e, ok := p.index[h]; ok {
		e.ppns = append(e.ppns, ppn)
		e.pop = p.ledger.Get(h)
		p.byPPN[ppn] = e
		p.pages++
		p.list.moveToTail(e)
		return
	}
	e := &entry{hash: h, ppns: []ssd.PPN{ppn}, pop: p.ledger.Get(h)}
	p.list.pushTail(e)
	p.index[h] = e
	p.byPPN[ppn] = e
	p.pages++
	for len(p.index) > p.capacity {
		head := p.list.head
		p.stats.Evictions += int64(len(head.ppns))
		p.removeEntry(head)
	}
}

// Lookup implements Pool.
func (p *LRUPool) Lookup(h trace.Hash, now Tick) (ssd.PPN, bool) {
	e, ok := p.index[h]
	if !ok {
		p.stats.Misses++
		return ssd.InvalidPPN, false
	}
	p.stats.Hits++
	ppn := e.ppns[len(e.ppns)-1]
	e.ppns = e.ppns[:len(e.ppns)-1]
	delete(p.byPPN, ppn)
	p.pages--
	if len(e.ppns) == 0 {
		p.removeEntry(e)
	} else {
		e.pop = p.ledger.Get(h)
		p.list.moveToTail(e)
	}
	return ppn, true
}

func (p *LRUPool) removeEntry(e *entry) {
	p.list.remove(e)
	delete(p.index, e.hash)
	for _, ppn := range e.ppns {
		delete(p.byPPN, ppn)
	}
	p.pages -= len(e.ppns)
	e.ppns = nil
}

// Drop implements Pool.
func (p *LRUPool) Drop(ppn ssd.PPN) {
	e, ok := p.byPPN[ppn]
	if !ok {
		return
	}
	p.stats.Drops++
	delete(p.byPPN, ppn)
	for i, x := range e.ppns {
		if x == ppn {
			e.ppns = append(e.ppns[:i], e.ppns[i+1:]...)
			break
		}
	}
	p.pages--
	if len(e.ppns) == 0 {
		p.removeEntry(e)
	}
}

// GarbagePopularity implements Pool.
func (p *LRUPool) GarbagePopularity(ppn ssd.PPN) (uint8, bool) {
	e, ok := p.byPPN[ppn]
	if !ok {
		return 0, false
	}
	return e.pop, true
}

// Len implements Pool.
func (p *LRUPool) Len() int { return p.pages }

// EntryCount returns the number of distinct hashes pooled.
func (p *LRUPool) EntryCount() int { return len(p.index) }

// Stats implements Pool.
func (p *LRUPool) Stats() PoolStats { return p.stats }
