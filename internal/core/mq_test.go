package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

func newTestMQ(capacity int) (*MQPool, *Ledger) {
	l := NewLedger()
	return NewMQPool(MQConfig{Queues: 8, Capacity: capacity, DefaultLifetime: 64}, l), l
}

func TestQueueForLogarithmic(t *testing.T) {
	p, _ := newTestMQ(10)
	cases := []struct {
		pop  uint8
		want int
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {6, 2}, {7, 3}, {14, 3},
		{15, 4}, {31, 5}, {63, 6}, {127, 7}, {255, 7}, // clamped to top queue
	}
	for _, c := range cases {
		if got := p.queueFor(c.pop); got != c.want {
			t.Errorf("queueFor(%d) = %d, want %d", c.pop, got, c.want)
		}
	}
}

func TestMQInsertStartsAtBottomQueue(t *testing.T) {
	p, l := newTestMQ(10)
	// Even a popular value enters at the bottom queue (the paper: "inserts
	// to the dead-value pool always start from the bottom queue").
	for i := 0; i < 10; i++ {
		l.Bump(h(1))
	}
	p.Insert(h(1), 100, 1)
	lens := p.QueueLengths()
	if lens[0] != 1 {
		t.Fatalf("queue lengths = %v, want entry in Q0", lens)
	}
}

func TestMQPromotionOnAccess(t *testing.T) {
	p, l := newTestMQ(10)
	l.Bump(h(1))
	p.Insert(h(1), 100, 1)
	// Accesses promote one queue per touch as popularity allows.
	for i := 0; i < 5; i++ {
		l.Bump(h(1))
	}
	// pop is now 6 → home queue 2. Two touches should climb Q0→Q1→Q2.
	p.Insert(h(1), 101, 2)
	p.Insert(h(1), 102, 3)
	lens := p.QueueLengths()
	if lens[2] != 1 {
		t.Fatalf("queue lengths = %v, want entry in Q2 after two promotions", lens)
	}
	if p.Stats().Promoted != 2 {
		t.Fatalf("Promoted = %d, want 2", p.Stats().Promoted)
	}
}

func TestMQEvictsFromLowestQueueFirst(t *testing.T) {
	p, l := newTestMQ(2)
	// h(1) is popular and promoted to a higher queue; h(2) is a one-hit
	// wonder in Q0. Inserting h(3) must evict h(2), not the popular h(1) —
	// the central difference from plain LRU.
	for i := 0; i < 4; i++ {
		l.Bump(h(1))
	}
	p.Insert(h(1), 10, 1)
	p.Insert(h(1), 11, 2) // touch → promote out of Q0
	_, _ = p.Lookup(h(1), 3)
	l.Bump(h(2))
	p.Insert(h(2), 20, 4)
	l.Bump(h(3))
	p.Insert(h(3), 30, 5) // over capacity: evict from lowest queue
	if _, ok := p.Lookup(h(1), 6); !ok {
		t.Fatal("popular entry h(1) was evicted; MQ must protect it")
	}
	found2 := false
	if _, ok := p.GarbagePopularity(20); ok {
		found2 = true
	}
	if found2 {
		t.Fatal("h(2) in Q0 should have been evicted before h(1)")
	}
}

func TestMQDemotionOnExpiry(t *testing.T) {
	l := NewLedger()
	p := NewMQPool(MQConfig{Queues: 4, Capacity: 100, DefaultLifetime: 10}, l)
	for i := 0; i < 4; i++ {
		l.Bump(h(1))
	}
	p.Insert(h(1), 10, 1)
	p.Insert(h(1), 11, 2)
	p.Insert(h(1), 12, 3) // promoted to Q2 by now
	if lens := p.QueueLengths(); lens[2] != 1 {
		t.Fatalf("setup failed, queue lengths %v", lens)
	}
	// Advance the clock far past the expiration and insert unrelated
	// entries; each update runs the demotion sweep.
	l.Bump(h(2))
	p.Insert(h(2), 20, 100)
	if p.Stats().Demoted == 0 {
		t.Fatal("expired head was not demoted")
	}
	if lens := p.QueueLengths(); lens[2] != 0 {
		t.Fatalf("entry still in Q2 after expiry: %v", lens)
	}
}

func TestMQHottestIntervalTracking(t *testing.T) {
	l := NewLedger()
	p := NewMQPool(MQConfig{Queues: 4, Capacity: 100, DefaultLifetime: 999}, l)
	l.Bump(h(9))
	p.Insert(h(9), 90, 100) // becomes hottest, last access 100
	l.Bump(h(9))
	p.Insert(h(9), 91, 130) // interval = 30
	if p.hottestInterval != 30 {
		t.Fatalf("hottestInterval = %d, want 30", p.hottestInterval)
	}
	// A hotter value takes over without erasing the learned interval.
	for i := 0; i < 5; i++ {
		l.Bump(h(8))
	}
	p.Insert(h(8), 80, 140)
	if p.hottestHash != h(8) {
		t.Fatal("hotter value did not become hottest")
	}
	if p.hottestInterval != 30 {
		t.Fatalf("interval clobbered: %d", p.hottestInterval)
	}
}

func TestMQExpireUsesHottestInterval(t *testing.T) {
	l := NewLedger()
	p := NewMQPool(MQConfig{Queues: 4, Capacity: 100, DefaultLifetime: 50}, l)
	l.Bump(h(1))
	p.Insert(h(1), 10, 100)
	e := p.index[h(1)]
	if e.expire != 150 {
		t.Fatalf("expire = %d, want now+lifetime = 150", e.expire)
	}
}

func TestMQCapacityHolds(t *testing.T) {
	p, l := newTestMQ(100)
	for i := uint64(0); i < 10000; i++ {
		l.Bump(h(i))
		p.Insert(h(i), ssd.PPN(i), Tick(i))
		if p.EntryCount() > 100 {
			t.Fatalf("entry count %d exceeds capacity 100", p.EntryCount())
		}
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
}

func TestMQQueueLengthsSumToEntryCount(t *testing.T) {
	p, l := newTestMQ(500)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		v := h(uint64(rng.Intn(300)))
		l.Bump(v)
		p.Insert(v, ssd.PPN(i), Tick(i))
		if rng.Intn(3) == 0 {
			p.Lookup(h(uint64(rng.Intn(300))), Tick(i))
		}
	}
	sum := 0
	for _, n := range p.QueueLengths() {
		sum += n
	}
	if sum != p.EntryCount() {
		t.Fatalf("queue lengths sum %d != entry count %d", sum, p.EntryCount())
	}
}

// checkMQInvariants verifies the structural consistency of the pool:
// every indexed entry is in exactly one queue, the PPN reverse index agrees
// with entry PPN lists, and the page count matches.
func checkMQInvariants(t *testing.T, p *MQPool) {
	t.Helper()
	pages := 0
	seen := make(map[ssd.PPN]bool)
	inQueues := 0
	for q := range p.queues {
		for e := p.queues[q].head; e != nil; e = e.next {
			inQueues++
			if e.queue != q {
				t.Fatalf("entry %v thinks it is in Q%d but lives in Q%d", e.hash, e.queue, q)
			}
			if p.index[e.hash] != e {
				t.Fatalf("entry %v not in index", e.hash)
			}
			if len(e.ppns) == 0 {
				t.Fatalf("entry %v has no pages but is pooled", e.hash)
			}
			for _, ppn := range e.ppns {
				if seen[ppn] {
					t.Fatalf("PPN %d appears twice", ppn)
				}
				seen[ppn] = true
				if p.byPPN[ppn] != e {
					t.Fatalf("reverse index for PPN %d wrong", ppn)
				}
				pages++
			}
		}
	}
	if inQueues != len(p.index) {
		t.Fatalf("queues hold %d entries, index %d", inQueues, len(p.index))
	}
	if pages != p.pages || pages != len(p.byPPN) {
		t.Fatalf("page count mismatch: walked=%d cached=%d reverse=%d", pages, p.pages, len(p.byPPN))
	}
}

func TestMQInvariantsUnderRandomOps(t *testing.T) {
	l := NewLedger()
	p := NewMQPool(MQConfig{Queues: 6, Capacity: 64, DefaultLifetime: 32}, l)
	rng := rand.New(rand.NewSource(99))
	nextPPN := ssd.PPN(1)
	var pooled []ssd.PPN
	for i := 0; i < 30000; i++ {
		v := h(uint64(rng.Intn(150)))
		switch rng.Intn(4) {
		case 0, 1:
			l.Bump(v)
			p.Insert(v, nextPPN, Tick(i))
			pooled = append(pooled, nextPPN)
			nextPPN++
		case 2:
			l.Bump(v)
			p.Lookup(v, Tick(i))
		default:
			if len(pooled) > 0 {
				idx := rng.Intn(len(pooled))
				p.Drop(pooled[idx])
				pooled = append(pooled[:idx], pooled[idx+1:]...)
			}
		}
		if i%500 == 0 {
			checkMQInvariants(t, p)
		}
	}
	checkMQInvariants(t, p)
}

func TestMQOutperformsLRUOnSkewedWorkload(t *testing.T) {
	// The motivating claim (Fig 6 → Section III-A): with popularity-skewed
	// garbage, MQ retains popular zombies and achieves a higher revival
	// hit rate than plain LRU at the same capacity.
	// Drive each pool through the FTL write path: overwriting an LBA kills
	// its old value (Insert) and the new value tries to revive a zombie
	// (Lookup). Popular values accumulate copies across LBAs, which is
	// what MQ's promotion protects.
	type page struct {
		val trace.Hash
		ppn ssd.PPN
	}
	run := func(p Pool, l *Ledger) float64 {
		rng := rand.New(rand.NewSource(5))
		valZipf := rand.NewZipf(rng, 1.1, 1, 9999)
		lbaZipf := rand.NewZipf(rng, 1.2, 1, 3999)
		store := make(map[uint64]page)
		nextPPN := ssd.PPN(0)
		now := Tick(0)
		for i := 0; i < 300000; i++ {
			now++
			lba := lbaZipf.Uint64()
			v := h(valZipf.Uint64())
			l.Bump(v)
			if old, ok := store[lba]; ok {
				p.Insert(old.val, old.ppn, now) // death of the old copy
			}
			if ppn, ok := p.Lookup(v, now); ok {
				store[lba] = page{val: v, ppn: ppn} // revival
			} else {
				store[lba] = page{val: v, ppn: nextPPN}
				nextPPN++
			}
		}
		return p.Stats().HitRate()
	}
	mqLedger := NewLedger()
	mq := NewMQPool(MQConfig{Queues: 8, Capacity: 400, DefaultLifetime: 1024}, mqLedger)
	lruLedger := NewLedger()
	lru := NewLRUPool(400, lruLedger)
	mqRate := run(mq, mqLedger)
	lruRate := run(lru, lruLedger)
	if mqRate <= lruRate {
		t.Errorf("MQ hit rate %.3f not better than LRU %.3f on skewed workload", mqRate, lruRate)
	}
}

func TestMQCapacityPropertyUnderQuickOps(t *testing.T) {
	// Property: whatever the op sequence, the entry count never exceeds
	// capacity and Len() never goes negative.
	f := func(ops []uint16) bool {
		l := NewLedger()
		p := NewMQPool(MQConfig{Queues: 4, Capacity: 32, DefaultLifetime: 16}, l)
		now := Tick(0)
		for _, op := range ops {
			now++
			v := h(uint64(op % 97))
			switch op % 3 {
			case 0, 1:
				l.Bump(v)
				p.Insert(v, ssd.PPN(op)+ssd.PPN(now<<16), now)
			default:
				p.Lookup(v, now)
			}
			if p.EntryCount() > 32 || p.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
