package ssd

import "fmt"

// Time is simulated time in microseconds since the start of the run.
type Time int64

// Common durations in simulator time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Latency holds the per-operation service times of the modeled flash
// (Table I of the paper) plus the controller-side hashing cost.
type Latency struct {
	Read     Time // page read (cell → register)
	Program  Time // page program
	Erase    Time // block erase
	Hash     Time // 16 B content hash of one 4 KB page in the controller
	Transfer Time // one page transfer across the channel
}

// PaperLatency returns the Table I timing: read 75 µs, program 400 µs,
// erase 3.8 ms, hashing 12 µs. The channel transfer time approximates one
// 4 KB page on an ONFI 4.0 bus (~800 MB/s ⇒ ~5 µs).
func PaperLatency() Latency {
	return Latency{
		Read:     75 * Microsecond,
		Program:  400 * Microsecond,
		Erase:    3800 * Microsecond,
		Hash:     12 * Microsecond,
		Transfer: 5 * Microsecond,
	}
}

// Validate reports whether every latency is non-negative and the flash
// operations are positive.
func (l Latency) Validate() error {
	if l.Read <= 0 || l.Program <= 0 || l.Erase <= 0 {
		return fmt.Errorf("ssd: read/program/erase latencies must be positive: %+v", l)
	}
	if l.Hash < 0 || l.Transfer < 0 {
		return fmt.Errorf("ssd: hash/transfer latencies must be non-negative: %+v", l)
	}
	return nil
}

// OpKind identifies one class of flash operation for observers.
type OpKind uint8

// The flash operation classes the bus stamps.
const (
	OpRead OpKind = iota
	OpProgram
	OpErase
)

// String names the operation class.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// OpObservation is one stamped flash operation, as seen by an OpObserver:
// issued at Issue, actually started on the chip at Start (the difference is
// queueing behind earlier work), done at Done. Erases carry no transfer, so
// Transfer is 0 for them.
type OpObservation struct {
	Kind          OpKind
	Chip, Channel int
	Issue, Start  Time
	Done          Time
	Transfer      Time // channel hold (0 for erases)
	Cell          Time // cell operation duration
}

// OpObserver receives every flash operation the bus stamps. Observers must
// not mutate simulation state: the bus calls them after the timeline is
// already updated, purely for measurement.
type OpObserver interface {
	ObserveOp(OpObservation)
}

// Bus tracks when each chip and each channel next becomes free, and stamps
// flash operations onto that timeline. It is the timing heart of the
// simulator: an operation issued at time t on a busy chip waits until the
// chip frees up, which is how GC stalls and read/write interference surface
// as queuing latency.
type Bus struct {
	geo Geometry
	lat Latency

	chipFree    []Time // indexed by flat chip id
	channelFree []Time

	// Operation counters, for reporting.
	reads, programs, erases int64

	// Accounting: per-chip busy time and total queueing wait (time between
	// an operation's issue and its actual start on the chip).
	chipBusy  []Time
	totalWait Time
	waitedOps int64

	// observer, when non-nil, is told about every stamped operation. It
	// never influences timing, so attaching one cannot change results.
	observer OpObserver

	// Suspension state (see suspend.go). With the zero SuspendConfig the
	// curOp tracking is skipped entirely and the timeline is bit-identical
	// to a bus without the feature.
	susp         SuspendConfig
	gcScope      bool
	curOp        []chipOp
	suspensions  int64
	suspendDelay Time
}

// NewBus returns a Bus for the given geometry and latencies with every chip
// and channel idle at time 0.
func NewBus(geo Geometry, lat Latency) *Bus {
	return &Bus{
		geo:         geo,
		lat:         lat,
		chipFree:    make([]Time, geo.TotalChips()),
		channelFree: make([]Time, geo.Channels),
		chipBusy:    make([]Time, geo.TotalChips()),
		curOp:       make([]chipOp, geo.TotalChips()),
	}
}

// Geometry returns the geometry the bus was built with.
func (b *Bus) Geometry() Geometry { return b.geo }

// SetObserver attaches o (nil detaches). The observer sees every stamped
// operation but cannot affect the timeline.
func (b *Bus) SetObserver(o OpObserver) { b.observer = o }

// Latency returns the latency model the bus was built with.
func (b *Bus) Latency() Latency { return b.lat }

// Counts returns the number of page reads, page programs and block erases
// issued so far.
func (b *Bus) Counts() (reads, programs, erases int64) {
	return b.reads, b.programs, b.erases
}

// occupy stamps an operation of the given cell duration onto chip (and its
// channel, for transfer time) starting no earlier than now, and returns the
// start and completion times.
func (b *Bus) occupy(chip int, now, cell Time) (start, done Time) {
	ch := b.geo.ChannelOfChip(chip)
	start = now
	if b.chipFree[chip] > start {
		start = b.chipFree[chip]
	}
	if b.channelFree[ch] > start {
		start = b.channelFree[ch]
	}
	if wait := start - now; wait > 0 {
		b.totalWait += wait
		b.waitedOps++
	}
	// The channel is held only for the page transfer; the chip is held for
	// the transfer plus the cell operation.
	b.channelFree[ch] = start + b.lat.Transfer
	done = start + b.lat.Transfer + cell
	b.chipFree[chip] = done
	b.chipBusy[chip] += b.lat.Transfer + cell
	return start, done
}

// Read issues a page read of p at time now and returns its completion time.
func (b *Bus) Read(p PPN, now Time) Time {
	b.reads++
	chip := b.geo.ChipOf(p)
	start, done := b.occupy(chip, now, b.lat.Read)
	if b.susp.Enabled() {
		b.noteOp(chip, OpRead, start, done)
	}
	if b.observer != nil {
		b.observer.ObserveOp(OpObservation{Kind: OpRead, Chip: chip,
			Channel: b.geo.ChannelOfChip(chip), Issue: now, Start: start,
			Done: done, Transfer: b.lat.Transfer, Cell: b.lat.Read})
	}
	return done
}

// Program issues a page program of p at time now and returns its completion
// time.
func (b *Bus) Program(p PPN, now Time) Time {
	b.programs++
	chip := b.geo.ChipOf(p)
	start, done := b.occupy(chip, now, b.lat.Program)
	if b.susp.Enabled() {
		b.noteOp(chip, OpProgram, start, done)
	}
	if b.observer != nil {
		b.observer.ObserveOp(OpObservation{Kind: OpProgram, Chip: chip,
			Channel: b.geo.ChannelOfChip(chip), Issue: now, Start: start,
			Done: done, Transfer: b.lat.Transfer, Cell: b.lat.Program})
	}
	return done
}

// Erase issues an erase of block blk at time now and returns its completion
// time. Erases carry no data so they do not hold the channel.
func (b *Bus) Erase(blk BlockID, now Time) Time {
	b.erases++
	chip := b.geo.ChipOfBlock(blk)
	start := now
	if b.chipFree[chip] > start {
		start = b.chipFree[chip]
	}
	if wait := start - now; wait > 0 {
		b.totalWait += wait
		b.waitedOps++
	}
	done := start + b.lat.Erase
	b.chipFree[chip] = done
	b.chipBusy[chip] += b.lat.Erase
	if b.susp.Enabled() {
		b.noteOp(chip, OpErase, start, done)
	}
	if b.observer != nil {
		b.observer.ObserveOp(OpObservation{Kind: OpErase, Chip: chip,
			Channel: b.geo.ChannelOfChip(chip), Issue: now, Start: start,
			Done: done, Cell: b.lat.Erase})
	}
	return done
}

// CopyBack models GC relocation of a valid page: a read of src followed by a
// program of dst. When src and dst share a chip the program queues behind
// the read on that chip; across chips the transfer serializes on the
// channels. Returns the completion time of the program.
func (b *Bus) CopyBack(src, dst PPN, now Time) Time {
	readDone := b.Read(src, now)
	return b.Program(dst, readDone)
}

// ChipFreeAt returns when the chip holding page p next becomes free. It is
// a query only; nothing is stamped.
func (b *Bus) ChipFreeAt(p PPN) Time { return b.chipFree[b.geo.ChipOf(p)] }

// ChipFreeTime returns when flat chip index chip next becomes free. Like
// ChipFreeAt it is a query only; the partial-GC scheduler uses it to visit
// the idlest destination chips first.
func (b *Bus) ChipFreeTime(chip int) Time { return b.chipFree[chip] }

// Utilization returns the mean and maximum per-chip busy fraction over the
// wall-clock interval [0, until]. A mean near 1 means the drive is
// saturated and open-loop latencies are queueing artifacts.
func (b *Bus) Utilization(until Time) (mean, max float64) {
	if until <= 0 {
		return 0, 0
	}
	var sum float64
	for _, busy := range b.chipBusy {
		u := float64(busy) / float64(until)
		sum += u
		if u > max {
			max = u
		}
	}
	return sum / float64(len(b.chipBusy)), max
}

// Backlog returns the total time chips remain committed beyond now — the
// drive's queued-work depth in chip-microseconds. 0 on an idle drive.
func (b *Bus) Backlog(now Time) Time {
	var sum Time
	for _, free := range b.chipFree {
		if free > now {
			sum += free - now
		}
	}
	return sum
}

// WaitStats returns the cumulative queueing delay flash operations spent
// behind busy chips/channels and how many operations waited at all.
func (b *Bus) WaitStats() (totalWait Time, waitedOps int64) {
	return b.totalWait, b.waitedOps
}
