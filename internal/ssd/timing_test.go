package ssd

import "testing"

func testBus() *Bus {
	return NewBus(DefaultGeometry(), PaperLatency())
}

func TestPaperLatencyValues(t *testing.T) {
	l := PaperLatency()
	if err := l.Validate(); err != nil {
		t.Fatalf("paper latency invalid: %v", err)
	}
	if l.Read != 75 || l.Program != 400 || l.Erase != 3800 || l.Hash != 12 {
		t.Errorf("paper latency = %+v, want Table I values", l)
	}
	if l.Program <= l.Read {
		t.Error("program must be slower than read")
	}
	if l.Erase <= l.Program {
		t.Error("erase must be slower than program")
	}
}

func TestLatencyValidateRejectsBad(t *testing.T) {
	l := PaperLatency()
	l.Read = 0
	if err := l.Validate(); err == nil {
		t.Error("accepted zero read latency")
	}
	l = PaperLatency()
	l.Hash = -1
	if err := l.Validate(); err == nil {
		t.Error("accepted negative hash latency")
	}
}

func TestReadOnIdleChip(t *testing.T) {
	b := testBus()
	done := b.Read(0, 100)
	want := Time(100) + b.lat.Transfer + b.lat.Read
	if done != want {
		t.Errorf("Read completion = %d, want %d", done, want)
	}
}

func TestOpsOnSameChipSerialize(t *testing.T) {
	b := testBus()
	p := PPN(0)
	first := b.Program(p, 0)
	second := b.Read(p, 0)
	if second <= first {
		t.Errorf("second op on same chip completed at %d, not after first at %d", second, first)
	}
	wantSecond := first + b.lat.Transfer + b.lat.Read
	if second != wantSecond {
		t.Errorf("second op completion = %d, want %d", second, wantSecond)
	}
}

func TestOpsOnDifferentChannelsOverlap(t *testing.T) {
	g := DefaultGeometry()
	b := NewBus(g, PaperLatency())
	// Page 0 is on channel 0. Find a page on channel 1.
	var other PPN
	for p := PPN(0); ; p += PPN(g.PagesPerBlock) {
		if g.Decompose(p).Channel == 1 {
			other = p
			break
		}
	}
	d1 := b.Program(0, 0)
	d2 := b.Program(other, 0)
	if d1 != d2 {
		t.Errorf("programs on independent channels finished at %d and %d; want equal", d1, d2)
	}
}

func TestChannelContentionDelaysTransfer(t *testing.T) {
	g := DefaultGeometry()
	b := NewBus(g, PaperLatency())
	// Two chips on the same channel: chip 0 and chip 1 of channel 0.
	var p0, p1 PPN = 0, InvalidPPN
	for p := PPN(0); ; p += PPN(g.PagesPerBlock) {
		a := g.Decompose(p)
		if a.Channel == 0 && a.Chip == 1 {
			p1 = p
			break
		}
	}
	d0 := b.Read(p0, 0)
	d1 := b.Read(p1, 0)
	// Second read's transfer waits for the first transfer to clear the
	// channel, then its cell read overlaps the first chip's work.
	want := b.lat.Transfer + b.lat.Transfer + b.lat.Read
	if d1 != want {
		t.Errorf("contended read done at %d, want %d (first at %d)", d1, want, d0)
	}
}

func TestEraseHoldsChipNotChannel(t *testing.T) {
	g := DefaultGeometry()
	b := NewBus(g, PaperLatency())
	done := b.Erase(0, 0)
	if done != b.lat.Erase {
		t.Errorf("erase completion = %d, want %d", done, b.lat.Erase)
	}
	// A read on another chip of the same channel should not wait for the
	// erase (the channel was never held).
	var p1 PPN
	for p := PPN(0); ; p += PPN(g.PagesPerBlock) {
		a := g.Decompose(p)
		if a.Channel == 0 && a.Chip == 1 {
			p1 = p
			break
		}
	}
	d := b.Read(p1, 0)
	if want := b.lat.Transfer + b.lat.Read; d != want {
		t.Errorf("read during erase on sibling chip done at %d, want %d", d, want)
	}
	// But a read on the erasing chip queues behind the erase.
	d2 := b.Read(0, 0)
	if d2 <= done {
		t.Errorf("read on erasing chip done at %d, want after erase at %d", d2, done)
	}
}

func TestCopyBackOrdersReadBeforeProgram(t *testing.T) {
	b := testBus()
	done := b.CopyBack(0, 1, 0)
	l := b.lat
	want := (l.Transfer + l.Read) + (l.Transfer + l.Program)
	if done != want {
		t.Errorf("CopyBack done at %d, want %d", done, want)
	}
}

func TestCountsAccumulate(t *testing.T) {
	b := testBus()
	b.Read(0, 0)
	b.Program(0, 0)
	b.Program(1, 0)
	b.Erase(0, 0)
	b.CopyBack(2, 3, 0)
	r, p, e := b.Counts()
	if r != 2 || p != 3 || e != 1 {
		t.Errorf("Counts = (%d,%d,%d), want (2,3,1)", r, p, e)
	}
}

func TestTimeMonotoneUnderRandomOps(t *testing.T) {
	b := testBus()
	g := b.Geometry()
	now := Time(0)
	last := Time(0)
	for i := 0; i < 5000; i++ {
		p := PPN(int64(i*2654435761) % g.TotalPages())
		var done Time
		switch i % 3 {
		case 0:
			done = b.Read(p, now)
		case 1:
			done = b.Program(p, now)
		default:
			done = b.Erase(g.BlockOf(p), now)
		}
		if done < now {
			t.Fatalf("op %d completed at %d before issue time %d", i, done, now)
		}
		_ = last
		last = done
		now += 3
	}
}

func TestUtilizationAndWaitAccounting(t *testing.T) {
	b := testBus()
	// Two programs on the same chip: the second waits.
	b.Program(0, 0)
	b.Program(0, 0)
	wait, ops := b.WaitStats()
	if ops != 1 {
		t.Fatalf("waitedOps = %d, want 1", ops)
	}
	if want := b.lat.Transfer + b.lat.Program; wait != want {
		t.Fatalf("totalWait = %d, want %d", wait, want)
	}
	// Busy time: both ops on chip 0.
	until := 2 * (b.lat.Transfer + b.lat.Program)
	mean, max := b.Utilization(until)
	if max != 1.0 {
		t.Errorf("max utilization = %.2f, want 1.0 (chip 0 busy the whole interval)", max)
	}
	if mean <= 0 || mean > 1 {
		t.Errorf("mean utilization = %.2f out of range", mean)
	}
	if m, x := b.Utilization(0); m != 0 || x != 0 {
		t.Error("Utilization(0) must be 0")
	}
}

func TestEraseCountsTowardBusy(t *testing.T) {
	b := testBus()
	b.Erase(0, 0)
	_, max := b.Utilization(b.lat.Erase)
	if max != 1.0 {
		t.Errorf("erase busy fraction = %.2f, want 1.0", max)
	}
}
