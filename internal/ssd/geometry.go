// Package ssd models the physical organization and timing of a NAND flash
// SSD: channels, chips, dies, planes, blocks and pages, together with the
// asymmetric operation latencies (read ≪ program ≪ erase) that drive the
// simulator. It is the substrate the paper's SSDSim evaluation platform
// provides; internal/sim and internal/ftl build the FTL and request
// scheduling on top of it.
package ssd

import "fmt"

// PPN is a physical page number: a flat index over every page in the drive.
// The decomposition into channel/chip/die/plane/block/page is defined by a
// Geometry (see Geometry.Decompose).
type PPN uint32

// InvalidPPN marks an unmapped or unallocated physical page.
const InvalidPPN PPN = ^PPN(0)

// BlockID is a flat index over every block in the drive.
type BlockID uint32

// InvalidBlock marks the absence of a block.
const InvalidBlock BlockID = ^BlockID(0)

// Geometry describes the static physical organization of the simulated SSD.
// The zero value is not usable; construct with one of the preset functions
// or fill every field and call Validate.
type Geometry struct {
	Channels        int // independent buses to the controller
	ChipsPerChannel int // flash packages sharing one channel
	DiesPerChip     int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int // erase granularity, in pages
	PageSize        int // bytes; read/program granularity

	// OverProvision is the fraction of raw capacity hidden from the host
	// and reserved for garbage collection headroom (e.g. 0.15 for 15%).
	OverProvision float64
}

// Address is the fully decomposed location of a physical page.
type Address struct {
	Channel int
	Chip    int // within the channel
	Die     int // within the chip
	Plane   int // within the die
	Block   int // within the plane
	Page    int // within the block
}

// PaperGeometry returns the Table I configuration of the paper: an 8×8
// channel/chip fan-out, 4 dies per chip, 2 planes per die, 256-page blocks,
// 4 KB pages, 15% over-provisioning, 1 TB raw capacity.
func PaperGeometry() Geometry {
	return Geometry{
		Channels:        8,
		ChipsPerChannel: 8,
		DiesPerChip:     4,
		PlanesPerDie:    2,
		BlocksPerPlane:  2048, // 8*8*4*2 planes × 2048 × 256 pages × 4 KB = 1 TB
		PagesPerBlock:   256,
		PageSize:        4096,
		OverProvision:   0.15,
	}
}

// ScaledGeometry returns a proportionally scaled drive that keeps the paper's
// fan-out (8 channels × 8 chips), page and block sizes, and 15%
// over-provisioning, but shrinks capacity so that per-page bookkeeping stays
// laptop-friendly. blocksPerPlane tunes the capacity: 16 gives an 8 GB drive
// (2 M pages).
func ScaledGeometry(blocksPerPlane int) Geometry {
	g := PaperGeometry()
	g.BlocksPerPlane = blocksPerPlane
	return g
}

// DefaultGeometry is the geometry experiments use unless overridden: an 8 GB
// drive with the paper's fan-out and timing.
func DefaultGeometry() Geometry { return ScaledGeometry(16) }

// Validate reports whether every field of g is positive and the
// over-provisioning fraction is in [0, 1).
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("ssd: geometry field %s must be positive, got %d", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"ChipsPerChannel", g.ChipsPerChannel},
		{"DiesPerChip", g.DiesPerChip},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"PagesPerBlock", g.PagesPerBlock},
		{"PageSize", g.PageSize},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if g.OverProvision < 0 || g.OverProvision >= 1 {
		return fmt.Errorf("ssd: over-provisioning must be in [0,1), got %g", g.OverProvision)
	}
	// TotalPages multiplies six int fields; a product past MaxInt64 wraps,
	// so the PPN-space comparison below would see garbage. Accumulate with
	// an explicit overflow guard instead of trusting the helper.
	pages := int64(1)
	for _, f := range []int{
		g.Channels, g.ChipsPerChannel, g.DiesPerChip,
		g.PlanesPerDie, g.BlocksPerPlane, g.PagesPerBlock,
	} {
		if pages > int64(InvalidPPN)/int64(f)+1 {
			return fmt.Errorf("ssd: geometry page count overflows the PPN space")
		}
		pages *= int64(f)
	}
	if pages > int64(InvalidPPN) {
		return fmt.Errorf("ssd: geometry has %d pages, exceeding the PPN space", pages)
	}
	// RawBytes = pages × PageSize must stay addressable as int64 too.
	if pages > (int64(1)<<62)/int64(g.PageSize) {
		return fmt.Errorf("ssd: geometry raw capacity overflows int64 bytes")
	}
	return nil
}

// TotalChips returns the number of flash chips in the drive.
func (g Geometry) TotalChips() int { return g.Channels * g.ChipsPerChannel }

// PlanesPerChip returns the number of planes inside one chip.
func (g Geometry) PlanesPerChip() int { return g.DiesPerChip * g.PlanesPerDie }

// TotalPlanes returns the number of planes in the drive.
func (g Geometry) TotalPlanes() int { return g.TotalChips() * g.PlanesPerChip() }

// TotalBlocks returns the number of erase blocks in the drive.
func (g Geometry) TotalBlocks() int64 {
	return int64(g.TotalPlanes()) * int64(g.BlocksPerPlane)
}

// TotalPages returns the number of physical pages in the drive.
func (g Geometry) TotalPages() int64 {
	return g.TotalBlocks() * int64(g.PagesPerBlock)
}

// RawBytes returns the raw capacity of the drive in bytes.
func (g Geometry) RawBytes() int64 { return g.TotalPages() * int64(g.PageSize) }

// ExportedPages returns the number of logical pages advertised to the host
// after over-provisioning is withheld.
func (g Geometry) ExportedPages() int64 {
	return int64(float64(g.TotalPages()) * (1 - g.OverProvision))
}

// BlockOf returns the block containing page p.
func (g Geometry) BlockOf(p PPN) BlockID {
	return BlockID(uint32(p) / uint32(g.PagesPerBlock))
}

// PageInBlock returns the index of p within its block.
func (g Geometry) PageInBlock(p PPN) int {
	return int(uint32(p) % uint32(g.PagesPerBlock))
}

// FirstPage returns the first page of block b.
func (g Geometry) FirstPage(b BlockID) PPN {
	return PPN(uint32(b) * uint32(g.PagesPerBlock))
}

// PageAt composes a PPN from a block and an in-block page index.
func (g Geometry) PageAt(b BlockID, page int) PPN {
	return g.FirstPage(b) + PPN(page)
}

// ChipOf returns the flat chip index (channel-major) that holds page p.
func (g Geometry) ChipOf(p PPN) int {
	return g.ChipOfBlock(g.BlockOf(p))
}

// ChipOfBlock returns the flat chip index that holds block b.
//
// Blocks are laid out plane-major: all blocks of plane 0, then plane 1, …
// where planes are ordered channel → chip → die → plane. This makes
// consecutive block IDs within one plane contiguous, which the per-plane
// allocators in internal/ftl rely on.
func (g Geometry) ChipOfBlock(b BlockID) int {
	plane := int(uint32(b) / uint32(g.BlocksPerPlane))
	return plane / g.PlanesPerChip()
}

// PlaneOfBlock returns the flat plane index (channel → chip → die → plane
// ordering) that holds block b.
func (g Geometry) PlaneOfBlock(b BlockID) int {
	return int(uint32(b) / uint32(g.BlocksPerPlane))
}

// ChannelOfChip returns the channel a flat chip index belongs to.
func (g Geometry) ChannelOfChip(chip int) int { return chip / g.ChipsPerChannel }

// BlockInPlane returns the block b's index within its plane together with
// the plane's flat index.
func (g Geometry) BlockInPlane(b BlockID) (plane, index int) {
	plane = int(uint32(b) / uint32(g.BlocksPerPlane))
	index = int(uint32(b) % uint32(g.BlocksPerPlane))
	return plane, index
}

// BlockAt composes a BlockID from a flat plane index and an in-plane block
// index.
func (g Geometry) BlockAt(plane, index int) BlockID {
	return BlockID(plane*g.BlocksPerPlane + index)
}

// Decompose expands page p into its full physical address.
func (g Geometry) Decompose(p PPN) Address {
	plane, blk := g.BlockInPlane(g.BlockOf(p))
	chip := plane / g.PlanesPerChip()
	planeInChip := plane % g.PlanesPerChip()
	return Address{
		Channel: chip / g.ChipsPerChannel,
		Chip:    chip % g.ChipsPerChannel,
		Die:     planeInChip / g.PlanesPerDie,
		Plane:   planeInChip % g.PlanesPerDie,
		Block:   blk,
		Page:    g.PageInBlock(p),
	}
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(a Address) PPN {
	chip := a.Channel*g.ChipsPerChannel + a.Chip
	plane := chip*g.PlanesPerChip() + a.Die*g.PlanesPerDie + a.Plane
	return g.PageAt(g.BlockAt(plane, a.Block), a.Page)
}

// String summarizes the geometry, e.g. "8ch×8chip ×4die×2plane, 16 blk/plane
// ×256 pg ×4096 B = 8.0 GiB (OP 15%)".
func (g Geometry) String() string {
	return fmt.Sprintf("%dch×%dchip×%ddie×%dplane, %dblk/plane×%dpg×%dB = %.1f GiB (OP %.0f%%)",
		g.Channels, g.ChipsPerChannel, g.DiesPerChip, g.PlanesPerDie,
		g.BlocksPerPlane, g.PagesPerBlock, g.PageSize,
		float64(g.RawBytes())/(1<<30), g.OverProvision*100)
}
