package ssd

import (
	"math/rand"
	"testing"
)

// suspendGeometry is a single-chip drive, so every operation contends on
// the one chip and the suspension arithmetic is fully deterministic.
func suspendGeometry() Geometry {
	return Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
	}
}

func suspendTestBus(cfg SuspendConfig) *Bus {
	b := NewBus(suspendGeometry(), PaperLatency())
	b.ConfigureSuspend(cfg)
	return b
}

// TestReadHostWithoutSuspensionIsPlainRead pins the disabled path: with the
// zero SuspendConfig, ReadHost must produce exactly Read's timeline and no
// suspension statistics.
func TestReadHostWithoutSuspensionIsPlainRead(t *testing.T) {
	a := suspendTestBus(SuspendConfig{})
	b := NewBus(suspendGeometry(), PaperLatency())
	a.SuspendScope(true)
	a.Erase(0, 0)
	a.SuspendScope(false)
	b.SuspendScope(true)
	b.Erase(0, 0)
	b.SuspendScope(false)
	got, want := a.ReadHost(0, 1000), b.Read(0, 1000)
	if got != want {
		t.Errorf("disabled ReadHost done at %d, plain Read at %d", got, want)
	}
	if n, d := a.SuspendStats(); n != 0 || d != 0 {
		t.Errorf("disabled bus recorded %d suspensions, %d delay", n, d)
	}
	if a.ChipFreeTime(0) != b.ChipFreeTime(0) {
		t.Errorf("chip horizons diverged: %d vs %d", a.ChipFreeTime(0), b.ChipFreeTime(0))
	}
}

// TestReadHostSuspendAccounting walks one GC erase through two suspensions
// and the MaxPerOp fall-through, checking every completion time, the chip
// horizon and the SuspendStats totals exactly.
func TestReadHostSuspendAccounting(t *testing.T) {
	cfg := SuspendConfig{MaxPerOp: 2, SuspendCost: 20, ResumeCost: 20}
	b := suspendTestBus(cfg)
	lat := PaperLatency()
	overhead := cfg.SuspendCost + lat.Transfer + lat.Read + cfg.ResumeCost

	b.SuspendScope(true)
	eraseDone := b.Erase(0, 0)
	b.SuspendScope(false)
	if eraseDone != lat.Erase {
		t.Fatalf("erase done at %d, want %d", eraseDone, lat.Erase)
	}

	// First read lands mid-erase: it pays the suspend cost, then transfer
	// and cell read; the erase's remaining time resumes after the read plus
	// the resume cost.
	r1 := b.ReadHost(0, 1000)
	want1 := Time(1000) + cfg.SuspendCost + lat.Transfer + lat.Read
	if r1 != want1 {
		t.Errorf("first suspending read done at %d, want %d", r1, want1)
	}
	if free := b.ChipFreeTime(0); free != eraseDone+overhead {
		t.Errorf("chip horizon after one suspension = %d, want %d", free, eraseDone+overhead)
	}
	if n, d := b.SuspendStats(); n != 1 || d != overhead {
		t.Errorf("stats after one suspension = (%d, %d), want (1, %d)", n, d, overhead)
	}

	// Second read inside the resumed window suspends again.
	r2 := b.ReadHost(0, 2000)
	want2 := Time(2000) + cfg.SuspendCost + lat.Transfer + lat.Read
	if r2 != want2 {
		t.Errorf("second suspending read done at %d, want %d", r2, want2)
	}
	if free := b.ChipFreeTime(0); free != eraseDone+2*overhead {
		t.Errorf("chip horizon after two suspensions = %d, want %d", free, eraseDone+2*overhead)
	}
	if n, d := b.SuspendStats(); n != 2 || d != 2*overhead {
		t.Errorf("stats after two suspensions = (%d, %d), want (2, %d)", n, d, 2*overhead)
	}

	// Third read hits the MaxPerOp bound and queues behind the erase like a
	// plain read — the bound is what keeps suspended erases finite.
	finalEraseDone := b.ChipFreeTime(0)
	r3 := b.ReadHost(0, 3000)
	want3 := finalEraseDone + lat.Transfer + lat.Read
	if r3 != want3 {
		t.Errorf("bounded read done at %d, want %d (queued behind the erase)", r3, want3)
	}
	if n, _ := b.SuspendStats(); n != 2 {
		t.Errorf("bound ignored: %d suspensions, want 2", n)
	}
}

// TestReadHostNeverSuspendsHostOps checks the scope gate: an erase stamped
// outside SuspendScope (host/daemon traffic) is not preemptible, so a host
// read waits for it in full.
func TestReadHostNeverSuspendsHostOps(t *testing.T) {
	b := suspendTestBus(SuspendConfig{MaxPerOp: 4, SuspendCost: 20, ResumeCost: 20})
	lat := PaperLatency()
	eraseDone := b.Erase(0, 0) // no scope: not a GC erase
	r := b.ReadHost(0, 1000)
	if want := eraseDone + lat.Transfer + lat.Read; r != want {
		t.Errorf("read over a host erase done at %d, want %d", r, want)
	}
	if n, _ := b.SuspendStats(); n != 0 {
		t.Errorf("host erase was suspended %d times", n)
	}
}

// TestSuspendedEraseCompletesUnderReadStorm is the starvation property:
// under a seeded adversarial host-read stream aimed into every erase's live
// window, each erase absorbs at most MaxPerOp suspensions and completes no
// later than its original completion plus MaxPerOp times the per-suspension
// overhead.
func TestSuspendedEraseCompletesUnderReadStorm(t *testing.T) {
	cfg := SuspendConfig{MaxPerOp: 3, SuspendCost: 20, ResumeCost: 20}
	lat := PaperLatency()
	overhead := cfg.SuspendCost + lat.Transfer + lat.Read + cfg.ResumeCost
	rng := rand.New(rand.NewSource(11))

	b := suspendTestBus(cfg)
	var totalSusp int64
	for i := 0; i < 50; i++ {
		// Start each erase on an idle chip.
		start := b.ChipFreeTime(0) + Time(rng.Intn(200))
		b.SuspendScope(true)
		origDone := b.Erase(0, start)
		b.SuspendScope(false)

		// The storm: reads fired at random instants inside (and slightly
		// past) the erase's live window. The loop runs to the worst legal
		// completion time — origDone plus MaxPerOp suspension overheads —
		// not the chip horizon, which our own reads keep pushing out.
		deadline := origDone + Time(cfg.MaxPerOp)*overhead
		prevSusp, _ := b.SuspendStats()
		now := start
		for now < deadline {
			now += Time(1 + rng.Intn(int(lat.Erase/4)))
			b.ReadHost(0, now)
			if cur := b.curOp[0]; cur.kind == OpErase {
				if cur.suspends > cfg.MaxPerOp {
					t.Fatalf("erase %d suspended %d times, bound is %d", i, cur.suspends, cfg.MaxPerOp)
				}
				if cur.done > origDone+Time(cfg.MaxPerOp)*overhead {
					t.Fatalf("erase %d pushed to %d, bound is %d", i, cur.done, origDone+Time(cfg.MaxPerOp)*overhead)
				}
			}
		}
		nowSusp, _ := b.SuspendStats()
		if d := nowSusp - prevSusp; d > int64(cfg.MaxPerOp) {
			t.Fatalf("erase %d charged %d suspensions, bound is %d", i, d, cfg.MaxPerOp)
		}
		totalSusp = nowSusp
	}
	if totalSusp == 0 {
		t.Fatal("storm never suspended an erase; the test exercised nothing")
	}
	if n, d := b.SuspendStats(); d != Time(n)*overhead {
		t.Errorf("total delay %d, want %d suspensions × %d overhead = %d", d, n, overhead, Time(n)*overhead)
	}
}
