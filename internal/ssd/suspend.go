package ssd

// Erase/program suspension (Nagel et al., "Time-efficient Garbage
// Collection in SSDs"): a host read that arrives while a chip is in the
// middle of a suspendable operation — a GC erase or a GC relocation
// program — does not wait for the whole operation. It suspends it, pays a
// fixed suspend cost, runs the read, pays a resume cost, and the remainder
// of the suspended operation completes afterwards. The suspended
// operation's total cell time is conserved; only extra suspend/resume
// overhead is added, and the number of suspensions per operation is
// bounded so suspended erases always eventually complete.

// SuspendConfig enables read-over-GC suspension on a Bus. The zero value
// disables it, leaving the bus timeline bit-identical to a bus without the
// feature.
type SuspendConfig struct {
	// MaxPerOp bounds how many times one in-flight operation may be
	// suspended. 0 disables suspension entirely; the bound is what makes
	// suspended erases starvation-free under a hostile read stream.
	MaxPerOp int

	// SuspendCost is charged to the preempting read before it can start
	// (the chip must park the interrupted operation's state).
	SuspendCost Time

	// ResumeCost is charged to the suspended operation when it resumes
	// after the read completes.
	ResumeCost Time
}

// Enabled reports whether suspension is active.
func (c SuspendConfig) Enabled() bool { return c.MaxPerOp > 0 }

// chipOp records the operation currently occupying a chip's timeline
// horizon, so a later host read can decide whether it may suspend it.
type chipOp struct {
	kind        OpKind
	start, done Time
	suspendable bool
	suspends    int
}

// ConfigureSuspend installs the suspension policy. Call before stamping
// operations; the zero config switches the feature off.
func (b *Bus) ConfigureSuspend(cfg SuspendConfig) { b.susp = cfg }

// SuspendScope marks operations stamped while on as suspendable (GC
// erases and GC relocation programs). Host and daemon traffic stamped
// outside the scope is never suspended.
func (b *Bus) SuspendScope(on bool) { b.gcScope = on }

// SuspendStats returns how many host reads suspended an in-flight GC
// operation and the total completion-time extension those operations
// absorbed (read hold + suspend/resume overhead).
func (b *Bus) SuspendStats() (suspensions int64, delay Time) {
	return b.suspensions, b.suspendDelay
}

// noteOp records the operation just stamped on chip as the chip's current
// horizon op. Only called when suspension is enabled; it never alters the
// timeline.
func (b *Bus) noteOp(chip int, kind OpKind, start, done Time) {
	suspendable := b.gcScope && kind != OpRead
	b.curOp[chip] = chipOp{kind: kind, start: start, done: done, suspendable: suspendable}
}

// ReadHost issues a host page read of p at time now. If the chip is in the
// middle of a suspendable GC operation and that operation has not hit its
// suspension bound, the read preempts it: the read starts after SuspendCost
// (plus any channel wait), and the interrupted operation's remaining cell
// time is re-queued after the read plus ResumeCost. Otherwise this is
// exactly Bus.Read.
func (b *Bus) ReadHost(p PPN, now Time) Time {
	if !b.susp.Enabled() {
		return b.Read(p, now)
	}
	chip := b.geo.ChipOf(p)
	cur := &b.curOp[chip]
	if !cur.suspendable || cur.suspends >= b.susp.MaxPerOp || now <= cur.start || now >= cur.done {
		return b.Read(p, now)
	}

	b.reads++
	ch := b.geo.ChannelOfChip(chip)
	remaining := cur.done - now
	start := now + b.susp.SuspendCost
	if b.channelFree[ch] > start {
		start = b.channelFree[ch]
	}
	if wait := start - now; wait > 0 {
		b.totalWait += wait
		b.waitedOps++
	}
	b.channelFree[ch] = start + b.lat.Transfer
	done := start + b.lat.Transfer + b.lat.Read

	// Re-queue the remainder of the suspended operation after the read.
	// Its start moves to the resume instant so a later read inside the
	// resumed window may suspend it again (until MaxPerOp).
	oldDone := cur.done
	cur.start = done + b.susp.ResumeCost
	cur.done = cur.start + remaining
	cur.suspends++
	b.chipFree[chip] = cur.done
	b.chipBusy[chip] += b.lat.Transfer + b.lat.Read + b.susp.SuspendCost + b.susp.ResumeCost
	b.suspensions++
	b.suspendDelay += cur.done - oldDone

	if b.observer != nil {
		b.observer.ObserveOp(OpObservation{Kind: OpRead, Chip: chip, Channel: ch,
			Issue: now, Start: start, Done: done, Transfer: b.lat.Transfer, Cell: b.lat.Read})
	}
	return done
}
