package ssd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperGeometryCapacity(t *testing.T) {
	g := PaperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("paper geometry invalid: %v", err)
	}
	if got, want := g.RawBytes(), int64(1)<<40; got != want {
		t.Errorf("RawBytes = %d, want 1 TiB (%d)", got, want)
	}
	if got, want := g.TotalPages(), int64(268435456); got != want {
		t.Errorf("TotalPages = %d, want %d", got, want)
	}
	if got := g.ExportedPages(); got >= g.TotalPages() {
		t.Errorf("ExportedPages = %d, want < TotalPages %d", got, g.TotalPages())
	}
}

func TestDefaultGeometrySmall(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if g.RawBytes() > 16<<30 {
		t.Errorf("default geometry is %d bytes; want laptop-scale (≤16 GiB)", g.RawBytes())
	}
	if g.Channels != 8 || g.ChipsPerChannel != 8 {
		t.Errorf("default geometry fan-out = %d×%d, want paper's 8×8", g.Channels, g.ChipsPerChannel)
	}
}

func TestGeometryValidateRejectsBadFields(t *testing.T) {
	cases := []func(*Geometry){
		func(g *Geometry) { g.Channels = 0 },
		func(g *Geometry) { g.ChipsPerChannel = -1 },
		func(g *Geometry) { g.DiesPerChip = 0 },
		func(g *Geometry) { g.PlanesPerDie = 0 },
		func(g *Geometry) { g.BlocksPerPlane = 0 },
		func(g *Geometry) { g.PagesPerBlock = 0 },
		func(g *Geometry) { g.PageSize = 0 },
		func(g *Geometry) { g.OverProvision = 1.0 },
		func(g *Geometry) { g.OverProvision = -0.1 },
	}
	for i, mutate := range cases {
		g := DefaultGeometry()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
}

// TestGeometryValidateOverflow pins the overflow guard: geometries whose
// page count wraps int64 (or whose byte capacity would) must be rejected,
// not slip past the PPN-space check with a wrapped product.
func TestGeometryValidateOverflow(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"pages wrap int64", func(g *Geometry) {
			g.Channels = 1 << 20
			g.ChipsPerChannel = 1 << 20
			g.DiesPerChip = 1 << 20
			g.PlanesPerDie = 1 << 20
		}},
		{"pages exceed PPN space", func(g *Geometry) {
			g.BlocksPerPlane = 1 << 20
			g.PagesPerBlock = 1 << 20
		}},
		{"bytes overflow int64", func(g *Geometry) {
			// Just under the PPN ceiling, but with a huge page size the
			// byte capacity blows through int64.
			g.BlocksPerPlane = 16384
			g.PagesPerBlock = 511
			g.PageSize = 1 << 33
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := DefaultGeometry()
			c.mutate(&g)
			if err := g.Validate(); err == nil {
				t.Errorf("Validate accepted overflowing geometry %+v", g)
			}
		})
	}
	if err := PaperGeometry().Validate(); err != nil {
		t.Errorf("overflow guard rejects the paper drive: %v", err)
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := ScaledGeometry(4)
	f := func(raw uint32) bool {
		p := PPN(int64(raw) % g.TotalPages())
		return g.Compose(g.Decompose(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecomposeFieldsInRange(t *testing.T) {
	g := ScaledGeometry(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		p := PPN(rng.Int63n(g.TotalPages()))
		a := g.Decompose(p)
		if a.Channel < 0 || a.Channel >= g.Channels ||
			a.Chip < 0 || a.Chip >= g.ChipsPerChannel ||
			a.Die < 0 || a.Die >= g.DiesPerChip ||
			a.Plane < 0 || a.Plane >= g.PlanesPerDie ||
			a.Block < 0 || a.Block >= g.BlocksPerPlane ||
			a.Page < 0 || a.Page >= g.PagesPerBlock {
			t.Fatalf("Decompose(%d) = %+v out of range for %v", p, a, g)
		}
	}
}

func TestBlockPageHelpers(t *testing.T) {
	g := DefaultGeometry()
	for _, p := range []PPN{0, 1, PPN(g.PagesPerBlock - 1), PPN(g.PagesPerBlock), 12345} {
		b := g.BlockOf(p)
		in := g.PageInBlock(p)
		if got := g.PageAt(b, in); got != p {
			t.Errorf("PageAt(BlockOf(%d), PageInBlock(%d)) = %d", p, p, got)
		}
		if g.FirstPage(b) != g.PageAt(b, 0) {
			t.Errorf("FirstPage(%d) != PageAt(%d, 0)", b, b)
		}
	}
}

func TestBlockInPlaneRoundTrip(t *testing.T) {
	g := ScaledGeometry(4)
	f := func(raw uint32) bool {
		b := BlockID(int64(raw) % g.TotalBlocks())
		plane, idx := g.BlockInPlane(b)
		return g.BlockAt(plane, idx) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChipOfBlockMatchesDecompose(t *testing.T) {
	g := ScaledGeometry(4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		p := PPN(rng.Int63n(g.TotalPages()))
		a := g.Decompose(p)
		flatChip := a.Channel*g.ChipsPerChannel + a.Chip
		if got := g.ChipOf(p); got != flatChip {
			t.Fatalf("ChipOf(%d) = %d, want %d (addr %+v)", p, got, flatChip, a)
		}
		if got := g.ChannelOfChip(flatChip); got != a.Channel {
			t.Fatalf("ChannelOfChip(%d) = %d, want %d", flatChip, got, a.Channel)
		}
	}
}

func TestBlocksWithinPlaneShareChip(t *testing.T) {
	g := DefaultGeometry()
	for plane := 0; plane < g.TotalPlanes(); plane++ {
		first := g.ChipOfBlock(g.BlockAt(plane, 0))
		last := g.ChipOfBlock(g.BlockAt(plane, g.BlocksPerPlane-1))
		if first != last {
			t.Fatalf("plane %d spans chips %d and %d", plane, first, last)
		}
	}
}

func TestGeometryString(t *testing.T) {
	s := DefaultGeometry().String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
