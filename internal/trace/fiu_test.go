package trace

import (
	"strings"
	"testing"
)

const fiuSample = `# FIU SRCMap sample
33390885991075 4892 syslogd 904265560 8 W 6 0 0123456789abcdef0123456789abcdef
33390886091075 4892 syslogd 904265568 8 R 6 0 0123456789abcdef0123456789abcdef
33390887991075 1201 httpd   904270000 16 W 6 0 ffffffffffffffffffffffffffffffff
`

func TestReadFIUBasic(t *testing.T) {
	recs, err := ReadFIU(strings.NewReader(fiuSample))
	if err != nil {
		t.Fatal(err)
	}
	// Line 3 has 16 sectors → two 4 KB pages → 4 records total.
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].Time != 0 {
		t.Errorf("first record time = %d, want normalized 0", recs[0].Time)
	}
	if recs[1].Time != 100 { // 100 µs after the first
		t.Errorf("second record time = %d, want 100", recs[1].Time)
	}
	if recs[0].Op != OpWrite || recs[1].Op != OpRead {
		t.Errorf("ops = %v %v", recs[0].Op, recs[1].Op)
	}
	if recs[0].LBA != 904265560/8 {
		t.Errorf("LBA = %d, want sector/8", recs[0].LBA)
	}
	if recs[0].Hash != recs[1].Hash {
		t.Error("same md5 produced different hashes")
	}
	// The 16-sector write spans two consecutive pages with one digest.
	if recs[3].LBA != recs[2].LBA+1 {
		t.Errorf("split request pages = %d, %d; want consecutive", recs[2].LBA, recs[3].LBA)
	}
	if recs[2].Hash != recs[3].Hash {
		t.Error("split request pages have different hashes")
	}
}

func TestReadFIUHashDecoding(t *testing.T) {
	recs, err := ReadFIU(strings.NewReader(
		"100 1 p 0 8 W 6 0 000102030405060708090a0b0c0d0e0f\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := Hash{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if recs[0].Hash != want {
		t.Errorf("hash = %v, want %v", recs[0].Hash, want)
	}
}

func TestReadFIURejectsMalformed(t *testing.T) {
	bad := []string{
		"1 2 p 3 8 W 6 0", // too few fields
		"x 2 p 3 8 W 6 0 0123456789abcdef0123456789abcdef", // bad ts
		"1 2 p x 8 W 6 0 0123456789abcdef0123456789abcdef", // bad lba
		"1 2 p 3 0 W 6 0 0123456789abcdef0123456789abcdef", // zero size
		"1 2 p 3 8 Q 6 0 0123456789abcdef0123456789abcdef", // bad op
		"1 2 p 3 8 W 6 0 shorthash",                        // bad md5 length
		"1 2 p 3 8 W 6 0 zz23456789abcdef0123456789abcdef", // bad md5 hex
	}
	for _, line := range bad {
		if _, err := ReadFIU(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}

func TestReadFIUSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n100 1 p 0 8 R 6 0 0123456789abcdef0123456789abcdef\n"
	recs, err := ReadFIU(strings.NewReader(in))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestReadFIULowercaseOp(t *testing.T) {
	in := "100 1 p 0 8 w 6 0 0123456789abcdef0123456789abcdef\n"
	recs, err := ReadFIU(strings.NewReader(in))
	if err != nil || len(recs) != 1 || recs[0].Op != OpWrite {
		t.Fatalf("lowercase op not handled: recs=%v err=%v", recs, err)
	}
}
