package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Binary codec: a fixed 33-byte little-endian record — 8 B time, 1 B op,
// 8 B LBA, 16 B hash. No header; the stream is a plain concatenation so
// traces can be produced and consumed incrementally.
const binaryRecordSize = 8 + 1 + 8 + 16

// Writer encodes records to an underlying stream in the binary codec.
type Writer struct {
	w   *bufio.Writer
	buf [binaryRecordSize]byte
	n   int64
}

// NewWriter returns a Writer emitting the binary codec to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(r.Time))
	w.buf[8] = byte(r.Op)
	binary.LittleEndian.PutUint64(w.buf[9:17], r.LBA)
	copy(w.buf[17:33], r.Hash[:])
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("trace: write record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered records to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes binary-codec records from an underlying stream.
type Reader struct {
	r   *bufio.Reader
	buf [binaryRecordSize]byte
	n   int64
}

// NewReader returns a Reader over the binary codec in r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF at a clean end of stream. A
// truncated final record is reported as io.ErrUnexpectedEOF.
func (r *Reader) Read() (Record, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if errors.Is(err, io.EOF) && r.n >= 0 {
			return Record{}, err
		}
		return Record{}, fmt.Errorf("trace: read record %d: %w", r.n, err)
	}
	var rec Record
	rec.Time = int64(binary.LittleEndian.Uint64(r.buf[0:8]))
	rec.Op = Op(r.buf[8])
	if rec.Op != OpRead && rec.Op != OpWrite {
		return Record{}, fmt.Errorf("trace: record %d has invalid op %d", r.n, r.buf[8])
	}
	rec.LBA = binary.LittleEndian.Uint64(r.buf[9:17])
	copy(rec.Hash[:], r.buf[17:33])
	r.n++
	return rec, nil
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteText emits records in the human-readable one-per-line format
// "time op lba hexhash", matching Record.String.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for i, r := range recs {
		if _, err := fmt.Fprintln(bw, r); err != nil {
			return fmt.Errorf("trace: write text record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ParseTextRecord parses one line of the text format.
func ParseTextRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("trace: text record needs 4 fields, got %d in %q", len(fields), line)
	}
	var rec Record
	if _, err := fmt.Sscanf(fields[0], "%d", &rec.Time); err != nil {
		return Record{}, fmt.Errorf("trace: bad time %q: %w", fields[0], err)
	}
	switch fields[1] {
	case "R":
		rec.Op = OpRead
	case "W":
		rec.Op = OpWrite
	default:
		return Record{}, fmt.Errorf("trace: bad op %q", fields[1])
	}
	if _, err := fmt.Sscanf(fields[2], "%d", &rec.LBA); err != nil {
		return Record{}, fmt.Errorf("trace: bad lba %q: %w", fields[2], err)
	}
	if len(fields[3]) != 32 {
		return Record{}, fmt.Errorf("trace: bad hash %q: want 32 hex chars", fields[3])
	}
	for i := 0; i < 16; i++ {
		var b byte
		if _, err := fmt.Sscanf(fields[3][2*i:2*i+2], "%02x", &b); err != nil {
			return Record{}, fmt.Errorf("trace: bad hash %q: %w", fields[3], err)
		}
		rec.Hash[i] = b
	}
	return rec, nil
}

// ReadText parses the text format from r.
func ReadText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Record
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseTextRecord(line)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("trace: scan text: %w", err)
	}
	return out, nil
}
