package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTextRecord checks that the text-codec parser never panics and
// that every accepted record round-trips exactly.
func FuzzParseTextRecord(f *testing.F) {
	f.Add("10 W 5 " + HashOfValue(1).String())
	f.Add("0 R 0 " + HashOfValue(0).String())
	f.Add("bogus line")
	f.Add("1 W 2 deadbeef")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseTextRecord(line)
		if err != nil {
			return
		}
		again, err := ParseTextRecord(rec.String())
		if err != nil {
			t.Fatalf("accepted record failed to re-parse: %v", err)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, again)
		}
	})
}

// FuzzBinaryReader checks that arbitrary bytes never panic the binary
// decoder and that decodable prefixes re-encode to the same bytes.
func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Record{Time: 5, Op: OpWrite, LBA: 9, Hash: HashOfValue(3)})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []Record
		for {
			rec, err := r.Read()
			if err != nil {
				break
			}
			recs = append(recs, rec)
		}
		// Re-encode what decoded; the prefix must match byte for byte.
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:len(out.Bytes())]) {
			t.Fatal("re-encoded prefix differs from input")
		}
	})
}

// FuzzReadFIU checks the FIU parser never panics and that accepted inputs
// produce structurally valid records.
func FuzzReadFIU(f *testing.F) {
	f.Add("100 1 p 800 8 W 6 0 0123456789abcdef0123456789abcdef")
	f.Add("100 1 p 800 16 R 6 0 ffffffffffffffffffffffffffffffff")
	f.Add("garbage")
	f.Add("# comment only")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadFIU(strings.NewReader(input))
		if err != nil {
			return
		}
		last := int64(-1)
		for i, r := range recs {
			if r.Op != OpRead && r.Op != OpWrite {
				t.Fatalf("record %d has invalid op %v", i, r.Op)
			}
			if r.Time < 0 && last >= 0 {
				t.Fatalf("record %d time went negative after normalization", i)
			}
			last = r.Time
		}
	})
}
