package trace

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The FIU/SRCMap trace format (Koller & Rangaswami, FAST'10 — the paper's
// input traces) is one request per line:
//
//	timestamp pid process lba size op major minor md5
//
// where lba and size are in 512-byte sectors, op is "W" or "R", and md5 is
// the 32-hex-digit content digest of the 4 KB request. All requests in the
// published traces are 4 KB (size 8); larger requests are split here into
// 4 KB page records sharing the line's digest.

// sectorsPerPage converts the FIU sector addressing to 4 KB pages.
const sectorsPerPage = 8

// ReadFIU parses the FIU/SRCMap text format from r. Timestamps are
// normalized to start at zero and converted from the traces' nanosecond
// units to the simulator's microseconds. Blank lines and lines starting
// with '#' are skipped.
func ReadFIU(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Record
	var baseTS int64
	haveBase := false
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		recs, ts, err := parseFIULine(line)
		if err != nil {
			return out, fmt.Errorf("trace: fiu line %d: %w", lineNo, err)
		}
		if !haveBase {
			baseTS = ts
			haveBase = true
		}
		us := (ts - baseTS) / 1000 // ns → µs
		if us < 0 {
			// Clock jitter can put a line before the trace's first
			// timestamp; clamp so normalized time never goes negative.
			us = 0
		}
		for i := range recs {
			recs[i].Time = us
		}
		out = append(out, recs...)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("trace: scan fiu: %w", err)
	}
	return out, nil
}

// parseFIULine parses one request line into page records plus its raw
// timestamp.
func parseFIULine(line string) ([]Record, int64, error) {
	fields := strings.Fields(line)
	if len(fields) < 9 {
		return nil, 0, fmt.Errorf("need 9 fields, got %d in %q", len(fields), line)
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad timestamp %q: %v", fields[0], err)
	}
	sector, err := strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad lba %q: %v", fields[3], err)
	}
	size, err := strconv.ParseUint(fields[4], 10, 32)
	if err != nil || size == 0 {
		return nil, 0, fmt.Errorf("bad size %q", fields[4])
	}
	var op Op
	switch strings.ToUpper(fields[5]) {
	case "W":
		op = OpWrite
	case "R":
		op = OpRead
	default:
		return nil, 0, fmt.Errorf("bad op %q", fields[5])
	}
	digest := fields[8]
	if len(digest) != 32 {
		return nil, 0, fmt.Errorf("bad md5 %q: want 32 hex chars", digest)
	}
	var h Hash
	if _, err := hex.Decode(h[:], []byte(digest)); err != nil {
		return nil, 0, fmt.Errorf("bad md5 %q: %v", digest, err)
	}

	pages := (size + sectorsPerPage - 1) / sectorsPerPage
	recs := make([]Record, 0, pages)
	firstPage := sector / sectorsPerPage
	for i := uint64(0); i < pages; i++ {
		recs = append(recs, Record{Op: op, LBA: firstPage + i, Hash: h})
	}
	return recs, ts, nil
}
