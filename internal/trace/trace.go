// Package trace defines the block-trace model the whole repository consumes:
// a stream of 4 KB read/write requests, each carrying a 16-byte hash of its
// content, mirroring the FIU/OSU traces the paper evaluates on (Table II).
// It also provides binary and text codecs plus a statistics pass that
// recomputes the Table II workload characteristics.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Op is the request type.
type Op uint8

// Request types. The traces contain only reads and writes; all requests are
// one 4 KB page.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "R" or "W".
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Hash is the 16-byte content digest of one 4 KB page, standing in for the
// MD5 digests the FIU traces carry. Two pages are "the same value" exactly
// when their hashes are equal.
type Hash [16]byte

// HashOfValue derives a well-mixed Hash from an abstract value identifier.
// The synthetic workload generator names values by dense integers; this
// spreads them over the hash space deterministically (two splitmix64
// finalizer rounds), so hash equality ⇔ value-ID equality for all practical
// trace sizes.
func HashOfValue(id uint64) Hash {
	var h Hash
	binary.LittleEndian.PutUint64(h[0:8], mix64(id+0x9e3779b97f4a7c15))
	binary.LittleEndian.PutUint64(h[8:16], mix64(id^0xbf58476d1ce4e5b9))
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Record is one trace request. Size is implicitly one 4 KB page, as in the
// paper's traces. Time is microseconds from the start of the trace.
type Record struct {
	Time int64
	Op   Op
	LBA  uint64 // logical page number of the 4 KB page
	Hash Hash   // content digest; for reads, the content being returned
}

// String renders a record in the text codec's line format.
func (r Record) String() string {
	return fmt.Sprintf("%d %s %d %s", r.Time, r.Op, r.LBA, r.Hash)
}
