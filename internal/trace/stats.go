package trace

import "fmt"

// Stats summarizes a trace in the terms of the paper's Table II.
type Stats struct {
	Requests int64
	Reads    int64
	Writes   int64

	UniqueLBAs        int64 // footprint, in 4 KB pages
	UniqueWriteValues int64 // distinct hashes among writes
	UniqueReadValues  int64 // distinct hashes among reads
}

// WriteRatio returns the fraction of requests that are writes (Table II
// "WR [%]" as a fraction).
func (s Stats) WriteRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests)
}

// UniqueWriteValueRatio returns the fraction of write requests that write a
// value not written before (Table II "Unique Value WR" as a fraction).
func (s Stats) UniqueWriteValueRatio() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.UniqueWriteValues) / float64(s.Writes)
}

// UniqueReadValueRatio returns the fraction of read requests that return a
// value not read before (Table II "Unique Value RD" as a fraction).
func (s Stats) UniqueReadValueRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.UniqueReadValues) / float64(s.Reads)
}

// String renders the Table II row for the trace.
func (s Stats) String() string {
	return fmt.Sprintf("reqs=%d WR=%.0f%% uniqW=%.1f%% uniqR=%.1f%% footprint=%d pages",
		s.Requests, s.WriteRatio()*100, s.UniqueWriteValueRatio()*100,
		s.UniqueReadValueRatio()*100, s.UniqueLBAs)
}

// Collector accumulates Stats incrementally, for streams too large to
// materialize. The zero value is not usable; construct with NewCollector.
type Collector struct {
	s     Stats
	lbas  map[uint64]struct{}
	wvals map[Hash]struct{}
	rvals map[Hash]struct{}
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		lbas:  make(map[uint64]struct{}),
		wvals: make(map[Hash]struct{}),
		rvals: make(map[Hash]struct{}),
	}
}

// Add folds one record into the statistics.
func (c *Collector) Add(r Record) {
	c.s.Requests++
	c.lbas[r.LBA] = struct{}{}
	switch r.Op {
	case OpWrite:
		c.s.Writes++
		c.wvals[r.Hash] = struct{}{}
	case OpRead:
		c.s.Reads++
		c.rvals[r.Hash] = struct{}{}
	}
}

// Stats returns the statistics accumulated so far.
func (c *Collector) Stats() Stats {
	s := c.s
	s.UniqueLBAs = int64(len(c.lbas))
	s.UniqueWriteValues = int64(len(c.wvals))
	s.UniqueReadValues = int64(len(c.rvals))
	return s
}

// Collect computes Stats over a record slice in one pass.
func Collect(recs []Record) Stats {
	c := NewCollector()
	for _, r := range recs {
		c.Add(r)
	}
	return c.Stats()
}
