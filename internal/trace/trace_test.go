package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	t := int64(0)
	for i := range recs {
		t += rng.Int63n(50)
		op := OpWrite
		if rng.Intn(2) == 0 {
			op = OpRead
		}
		recs[i] = Record{
			Time: t,
			Op:   op,
			LBA:  uint64(rng.Intn(1000)),
			Hash: HashOfValue(uint64(rng.Intn(200))),
		}
	}
	return recs
}

func TestHashOfValueDeterministicAndDistinct(t *testing.T) {
	if HashOfValue(7) != HashOfValue(7) {
		t.Fatal("HashOfValue not deterministic")
	}
	seen := make(map[Hash]uint64)
	for id := uint64(0); id < 100000; id++ {
		h := HashOfValue(id)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between value ids %d and %d", prev, id)
		}
		seen[h] = id
	}
}

func TestHashStringIsHex(t *testing.T) {
	s := HashOfValue(42).String()
	if len(s) != 32 {
		t.Fatalf("hash string %q has length %d, want 32", s, len(s))
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("hash string %q contains non-hex %q", s, c)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Errorf("Op strings = %q/%q", OpRead, OpWrite)
	}
	if got := Op(9).String(); got != "Op(9)" {
		t.Errorf("invalid op string = %q", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := randomRecords(500, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryReaderRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Op: OpWrite}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated read error = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestBinaryReaderRejectsBadOp(t *testing.T) {
	raw := make([]byte, binaryRecordSize)
	raw[8] = 7 // invalid op
	if _, err := NewReader(bytes.NewReader(raw)).Read(); err == nil {
		t.Error("accepted invalid op byte")
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := randomRecords(100, 2)
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("length = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n10 W 5 " + HashOfValue(1).String() + "\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got) != 1 || got[0].LBA != 5 || got[0].Op != OpWrite {
		t.Fatalf("got %+v", got)
	}
}

func TestParseTextRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"1 W 2",
		"x W 2 " + HashOfValue(0).String(),
		"1 Q 2 " + HashOfValue(0).String(),
		"1 W x " + HashOfValue(0).String(),
		"1 W 2 deadbeef",
		"1 W 2 " + strings.Repeat("zz", 16),
	}
	for _, line := range bad {
		if _, err := ParseTextRecord(line); err == nil {
			t.Errorf("ParseTextRecord(%q) accepted bad input", line)
		}
	}
}

func TestTextRecordPropertyRoundTrip(t *testing.T) {
	f := func(tm int64, w bool, lba uint64, id uint64) bool {
		rec := Record{Time: tm & (1<<40 - 1), Op: OpRead, LBA: lba, Hash: HashOfValue(id)}
		if w {
			rec.Op = OpWrite
		}
		got, err := ParseTextRecord(rec.String())
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectStats(t *testing.T) {
	recs := []Record{
		{Op: OpWrite, LBA: 1, Hash: HashOfValue(1)},
		{Op: OpWrite, LBA: 2, Hash: HashOfValue(1)}, // duplicate value
		{Op: OpWrite, LBA: 1, Hash: HashOfValue(2)},
		{Op: OpRead, LBA: 2, Hash: HashOfValue(1)},
	}
	s := Collect(recs)
	if s.Requests != 4 || s.Writes != 3 || s.Reads != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.UniqueLBAs != 2 {
		t.Errorf("UniqueLBAs = %d, want 2", s.UniqueLBAs)
	}
	if s.UniqueWriteValues != 2 {
		t.Errorf("UniqueWriteValues = %d, want 2", s.UniqueWriteValues)
	}
	if s.UniqueReadValues != 1 {
		t.Errorf("UniqueReadValues = %d, want 1", s.UniqueReadValues)
	}
	if got := s.WriteRatio(); got != 0.75 {
		t.Errorf("WriteRatio = %g, want 0.75", got)
	}
	if got := s.UniqueWriteValueRatio(); got != 2.0/3.0 {
		t.Errorf("UniqueWriteValueRatio = %g", got)
	}
	if got := s.UniqueReadValueRatio(); got != 1.0 {
		t.Errorf("UniqueReadValueRatio = %g", got)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.WriteRatio() != 0 || s.UniqueWriteValueRatio() != 0 || s.UniqueReadValueRatio() != 0 {
		t.Error("zero Stats ratios must be 0")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestCollectorMatchesCollect(t *testing.T) {
	recs := randomRecords(2000, 9)
	c := NewCollector()
	for _, r := range recs {
		c.Add(r)
	}
	if c.Stats() != Collect(recs) {
		t.Fatalf("streaming stats %+v differ from batch %+v", c.Stats(), Collect(recs))
	}
	// Incremental queries are valid mid-stream.
	c2 := NewCollector()
	c2.Add(recs[0])
	if c2.Stats().Requests != 1 {
		t.Fatal("mid-stream stats wrong")
	}
}
