// Package health is the device health governor: a per-device state
// machine on simulated time that degrades service gracefully instead of
// letting a stressed drive kill the run. The states form a ladder —
//
//	healthy → throttled → read-only → dead
//
// driven by the drive's own vital signs: free-block floor, GC debt,
// retired-block count and lost-page count. Transitions apply hysteresis
// so the governor does not flap at a threshold boundary, and every
// decision is a pure function of the observed sample, so governed runs
// stay deterministic. The zero Config disables the governor entirely and
// is bit-identical to an ungoverned drive.
//
// The governor lives in controller RAM: a power loss resets its state and
// the post-recovery drive re-derives it from the first sample. Dead is
// terminal within a power cycle — retired blocks and lost pages survive
// the crash, so a dead drive that reboots re-enters dead on first touch.
package health

import (
	"errors"
	"fmt"

	"zombiessd/internal/ssd"
)

// State is one rung of the degradation ladder. The zero value is Healthy.
type State uint8

const (
	// Healthy serves reads and writes at full speed.
	Healthy State = iota
	// Throttled serves everything but charges writes an extra delay,
	// giving GC room to pay down its debt.
	Throttled
	// ReadOnly still serves reads but rejects writes with ErrReadOnly.
	ReadOnly
	// Dead rejects everything with ErrDeviceDead. Terminal.
	Dead
)

// String renders the state for tables and telemetry labels.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Throttled:
		return "throttled"
	case ReadOnly:
		return "read-only"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Typed degradation errors. The sim layer wraps these around rejected
// operations so hosts can distinguish "write later" from "drive gone".
var (
	// ErrReadOnly rejects writes on a read-only device; reads still work.
	ErrReadOnly = errors.New("health: device is read-only")
	// ErrDeviceDead rejects every operation on a dead device.
	ErrDeviceDead = errors.New("health: device is dead")
)

// Named configuration errors, so the flag surface (and FuzzHealthConfig)
// can assert the exact rejection class with errors.Is.
var (
	// ErrBadThreshold rejects invalid -health-* trip thresholds.
	ErrBadThreshold = errors.New("health: bad -health threshold")
	// ErrBadDelay rejects invalid -health-throttle-delay values.
	ErrBadDelay = errors.New("health: bad -health-throttle-delay")
	// ErrBadRetry rejects inconsistent -health-retries/-health-backoff values.
	ErrBadRetry = errors.New("health: bad -health-retries configuration")
)

// Defaults applied by WithDefaults when the corresponding knob is enabled
// but unset.
const (
	// DefaultThrottleDelay is the per-write penalty while throttled.
	DefaultThrottleDelay = 200 * ssd.Microsecond
	// DefaultHysteresis is the margin (blocks of debt, or free blocks)
	// required beyond a trip threshold before the governor steps back up.
	DefaultHysteresis = 2
	// DefaultRetryBackoff is the simulated pause before each host-layer
	// retry of a transient program fault.
	DefaultRetryBackoff = 500 * ssd.Microsecond
)

// Config parameterizes one device's governor. The zero value disables
// every mechanism; each threshold arms independently.
type Config struct {
	// ThrottleDebt trips the throttled state when the store's GC debt
	// (blocks below the free-block target) reaches this many blocks.
	// 0 never throttles.
	ThrottleDebt int
	// ThrottleDelay is the extra latency charged per write while
	// throttled. 0 means DefaultThrottleDelay when ThrottleDebt > 0.
	ThrottleDelay ssd.Time

	// ReadOnlyFree trips the read-only state when the device's total
	// free-block count falls below this floor. 0 never trips on space —
	// but an ErrNoSpace from the store still forces read-only whenever
	// the governor is enabled at all.
	ReadOnlyFree int

	// DeadRetiredPct trips the dead state when retired (bad) blocks reach
	// this percentage of all blocks. 0 never trips on retirement.
	DeadRetiredPct float64
	// DeadLostPages trips the dead state when this many valid pages have
	// been lost to uncorrectable reads. 0 never trips on loss.
	DeadLostPages int64

	// Hysteresis is the recovery margin: the governor steps back up only
	// once the tripping signal has cleared its threshold by this much
	// (free blocks above the floor, debt below the throttle point).
	// 0 means DefaultHysteresis. Dead never recovers.
	Hysteresis int

	// MaxRetries bounds the host-layer retries of a write that failed
	// with a transient program fault. 0 disables host retries.
	MaxRetries int
	// RetryBackoff is the simulated delay charged before each retry.
	// 0 means DefaultRetryBackoff when MaxRetries > 0.
	RetryBackoff ssd.Time
}

// Enabled reports whether any governor mechanism is armed. A disabled
// governor is never constructed, keeping ungoverned runs bit-identical.
func (c Config) Enabled() bool {
	return c.ThrottleDebt > 0 || c.ReadOnlyFree > 0 ||
		c.DeadRetiredPct > 0 || c.DeadLostPages > 0 || c.MaxRetries > 0
}

// Validate rejects malformed configurations with the named errors above.
func (c Config) Validate() error {
	if c.ThrottleDebt < 0 {
		return fmt.Errorf("%w: throttle debt must be ≥ 0 blocks, got %d", ErrBadThreshold, c.ThrottleDebt)
	}
	if c.ReadOnlyFree < 0 {
		return fmt.Errorf("%w: read-only floor must be ≥ 0 blocks, got %d", ErrBadThreshold, c.ReadOnlyFree)
	}
	if !(c.DeadRetiredPct >= 0 && c.DeadRetiredPct <= 100) { // NaN fails both bounds
		return fmt.Errorf("%w: dead retired%% must be in [0,100], got %g", ErrBadThreshold, c.DeadRetiredPct)
	}
	if c.DeadLostPages < 0 {
		return fmt.Errorf("%w: dead lost-page count must be ≥ 0, got %d", ErrBadThreshold, c.DeadLostPages)
	}
	if c.Hysteresis < 0 {
		return fmt.Errorf("%w: hysteresis must be ≥ 0 blocks, got %d", ErrBadThreshold, c.Hysteresis)
	}
	if c.ThrottleDelay < 0 {
		return fmt.Errorf("%w: throttle delay must be ≥ 0, got %d", ErrBadDelay, c.ThrottleDelay)
	}
	if c.ThrottleDelay > 0 && c.ThrottleDebt == 0 {
		return fmt.Errorf("%w: delay set but -health-throttle-debt is 0 (throttling disabled)", ErrBadDelay)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("%w: retry bound must be ≥ 0, got %d", ErrBadRetry, c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("%w: retry backoff must be ≥ 0, got %d", ErrBadRetry, c.RetryBackoff)
	}
	if c.RetryBackoff > 0 && c.MaxRetries == 0 {
		return fmt.Errorf("%w: backoff set but -health-retries is 0 (host retries disabled)", ErrBadRetry)
	}
	return nil
}

// WithDefaults returns c with the enabled-but-unset knobs filled in. The
// disabled zero value passes through unchanged.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.ThrottleDebt > 0 && c.ThrottleDelay == 0 {
		c.ThrottleDelay = DefaultThrottleDelay
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.MaxRetries > 0 && c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Sample is one instant's vital signs, read from the store before each
// host operation.
type Sample struct {
	// FreeBlocks is the device-wide free-block count.
	FreeBlocks int
	// GCDebt is how many blocks the planes are below the GC free-block
	// target (the collector's backlog).
	GCDebt int
	// RetiredBlocks counts blocks retired as bad over the device's life.
	RetiredBlocks int64
	// TotalBlocks is the device's full block population.
	TotalBlocks int
	// LostPages counts valid pages currently lost to uncorrectable reads.
	LostPages int64
}

// Stats is the governor's cumulative report, surfaced in Result.
type Stats struct {
	// State is the rung the device ended the run on.
	State State
	// Transitions counts state changes over the run.
	Transitions int64
	// ThrottledWrites counts writes that paid the throttle delay.
	ThrottledWrites int64
	// RejectedWrites counts writes refused in read-only or dead states.
	RejectedWrites int64
	// RejectedReads counts reads refused in the dead state.
	RejectedReads int64
	// Retries counts host-layer retries of transient program faults.
	Retries int64
	// ForcedReadOnly counts ErrNoSpace events that forced read-only.
	ForcedReadOnly int64
	// LastChange is the simulated time of the last transition.
	LastChange ssd.Time
}

// Governor evaluates the ladder for one device. Not safe for concurrent
// use; each simulated device owns one, matching the simulator's
// single-goroutine device contract.
type Governor struct {
	cfg    Config
	state  State
	forced bool // read-only forced by ErrNoSpace, sticky until space recovers
	stats  Stats
}

// New returns a Governor for the config (defaults applied). Callers gate
// construction on cfg.Enabled().
func New(cfg Config) *Governor {
	return &Governor{cfg: cfg.WithDefaults()}
}

// Config returns the governor's effective configuration.
func (g *Governor) Config() Config { return g.cfg }

// State returns the current rung.
func (g *Governor) State() State { return g.state }

// Stats returns the cumulative report.
func (g *Governor) Stats() Stats {
	s := g.stats
	s.State = g.state
	return s
}

// setState records a transition.
func (g *Governor) setState(s State, now ssd.Time) {
	if s == g.state {
		return
	}
	g.state = s
	g.stats.Transitions++
	g.stats.LastChange = now
}

// Observe evaluates the ladder against one sample and returns the state
// the next operation must obey. Trips are evaluated worst-first; recovery
// requires clearing the tripping threshold by the hysteresis margin.
func (g *Governor) Observe(s Sample, now ssd.Time) State {
	if g.state == Dead {
		return Dead // terminal
	}
	if g.tripsDead(s) {
		g.setState(Dead, now)
		return Dead
	}

	h := g.cfg.Hysteresis
	if g.forced || g.state == ReadOnly {
		// Recovery from read-only needs free space comfortably above the
		// floor. A forced trip with no configured floor is sticky: the
		// drive has proven it cannot allocate.
		if g.cfg.ReadOnlyFree > 0 && s.FreeBlocks >= g.cfg.ReadOnlyFree+h {
			g.forced = false
		} else {
			g.setState(ReadOnly, now)
			return ReadOnly
		}
	}
	if g.cfg.ReadOnlyFree > 0 && s.FreeBlocks < g.cfg.ReadOnlyFree {
		g.setState(ReadOnly, now)
		return ReadOnly
	}

	switch {
	case g.cfg.ThrottleDebt <= 0:
		g.setState(Healthy, now)
	case s.GCDebt >= g.cfg.ThrottleDebt:
		g.setState(Throttled, now)
	case g.state == Throttled && s.GCDebt > max(0, g.cfg.ThrottleDebt-h):
		// Inside the hysteresis band: hold the throttle.
	default:
		g.setState(Healthy, now)
	}
	return g.state
}

// tripsDead reports whether the sample crosses a dead threshold.
func (g *Governor) tripsDead(s Sample) bool {
	if g.cfg.DeadRetiredPct > 0 && s.TotalBlocks > 0 &&
		float64(s.RetiredBlocks)*100 >= g.cfg.DeadRetiredPct*float64(s.TotalBlocks) {
		return true
	}
	return g.cfg.DeadLostPages > 0 && s.LostPages >= g.cfg.DeadLostPages
}

// ForceReadOnly records a space-exhaustion event: the store returned
// ErrNoSpace, so the governor pins read-only regardless of the sampled
// free-block count until space genuinely recovers.
func (g *Governor) ForceReadOnly(now ssd.Time) {
	g.stats.ForcedReadOnly++
	if g.state == Dead {
		return
	}
	g.forced = true
	g.setState(ReadOnly, now)
}

// Reset clears the power-cycle-local state after a crash recovery: the
// ladder position and the forced-read-only pin live in controller RAM and
// do not survive power loss. Cumulative stats are retained.
func (g *Governor) Reset() {
	g.state = Healthy
	g.forced = false
}

// NoteThrottled counts a write that paid the throttle delay.
func (g *Governor) NoteThrottled() { g.stats.ThrottledWrites++ }

// NoteRejectedWrite counts a write refused by the current state.
func (g *Governor) NoteRejectedWrite() { g.stats.RejectedWrites++ }

// NoteRejectedRead counts a read refused by the dead state.
func (g *Governor) NoteRejectedRead() { g.stats.RejectedReads++ }

// NoteRetry counts a host-layer retry of a transient program fault.
func (g *Governor) NoteRetry() { g.stats.Retries++ }
