package health

import (
	"errors"
	"math"
	"testing"

	"zombiessd/internal/ssd"
)

// TestStateString pins the telemetry labels.
func TestStateString(t *testing.T) {
	want := map[State]string{
		Healthy: "healthy", Throttled: "throttled", ReadOnly: "read-only", Dead: "dead",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
	if got := State(42).String(); got != "state(42)" {
		t.Errorf("unknown state renders %q", got)
	}
}

// TestConfigEnabled checks the zero value is inert and each knob arms
// the governor independently.
func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports enabled")
	}
	for _, c := range []Config{
		{ThrottleDebt: 1},
		{ReadOnlyFree: 1},
		{DeadRetiredPct: 1},
		{DeadLostPages: 1},
		{MaxRetries: 1},
	} {
		if !c.Enabled() {
			t.Errorf("%+v reports disabled", c)
		}
	}
}

// TestValidate walks the named-error surface.
func TestValidate(t *testing.T) {
	cases := []struct {
		cfg  Config
		want error
	}{
		{Config{}, nil},
		{Config{ThrottleDebt: 4, ThrottleDelay: 100, ReadOnlyFree: 2,
			DeadRetiredPct: 50, DeadLostPages: 10, Hysteresis: 3,
			MaxRetries: 2, RetryBackoff: 100}, nil},
		{Config{ThrottleDebt: -1}, ErrBadThreshold},
		{Config{ReadOnlyFree: -1}, ErrBadThreshold},
		{Config{DeadRetiredPct: -0.5}, ErrBadThreshold},
		{Config{DeadRetiredPct: 101}, ErrBadThreshold},
		{Config{DeadRetiredPct: math.NaN()}, ErrBadThreshold},
		{Config{DeadLostPages: -1}, ErrBadThreshold},
		{Config{Hysteresis: -1}, ErrBadThreshold},
		{Config{ThrottleDebt: 1, ThrottleDelay: -1}, ErrBadDelay},
		{Config{ThrottleDelay: 50}, ErrBadDelay}, // delay without debt threshold
		{Config{MaxRetries: -1}, ErrBadRetry},
		{Config{MaxRetries: 1, RetryBackoff: -1}, ErrBadRetry},
		{Config{RetryBackoff: 50}, ErrBadRetry}, // backoff without retries
	}
	for i, c := range cases {
		err := c.cfg.Validate()
		if c.want == nil {
			if err != nil {
				t.Errorf("case %d: Validate(%+v) = %v, want nil", i, c.cfg, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("case %d: Validate(%+v) = %v, want %v", i, c.cfg, err, c.want)
		}
	}
}

// TestWithDefaults checks enabled-but-unset knobs are filled and the
// disabled zero value passes through untouched.
func TestWithDefaults(t *testing.T) {
	if d := (Config{}).WithDefaults(); d != (Config{}) {
		t.Fatalf("zero config gained defaults: %+v", d)
	}
	d := Config{ThrottleDebt: 4, MaxRetries: 2}.WithDefaults()
	if d.ThrottleDelay != DefaultThrottleDelay {
		t.Errorf("throttle delay = %d, want default %d", d.ThrottleDelay, DefaultThrottleDelay)
	}
	if d.Hysteresis != DefaultHysteresis {
		t.Errorf("hysteresis = %d, want default %d", d.Hysteresis, DefaultHysteresis)
	}
	if d.RetryBackoff != DefaultRetryBackoff {
		t.Errorf("retry backoff = %d, want default %d", d.RetryBackoff, DefaultRetryBackoff)
	}
	keep := Config{ThrottleDebt: 4, ThrottleDelay: 7, Hysteresis: 9, MaxRetries: 1, RetryBackoff: 3}
	if d := keep.WithDefaults(); d != keep {
		t.Errorf("explicit knobs overwritten: %+v", d)
	}
}

// TestLadderTransitions walks the whole ladder with hysteresis: healthy
// trips to throttled on debt, holds inside the hysteresis band, recovers
// below it; read-only trips on the free floor and outranks throttling;
// dead is terminal.
func TestLadderTransitions(t *testing.T) {
	g := New(Config{ThrottleDebt: 4, ReadOnlyFree: 3, DeadRetiredPct: 50, Hysteresis: 2})
	ok := func(step string, s Sample, want State) {
		t.Helper()
		if got := g.Observe(s, 0); got != want {
			t.Fatalf("%s: state = %v, want %v", step, got, want)
		}
	}
	healthy := Sample{FreeBlocks: 100, TotalBlocks: 100}

	ok("start", healthy, Healthy)
	ok("debt at threshold", Sample{FreeBlocks: 100, GCDebt: 4, TotalBlocks: 100}, Throttled)
	ok("debt in band", Sample{FreeBlocks: 100, GCDebt: 3, TotalBlocks: 100}, Throttled)
	ok("debt below band", Sample{FreeBlocks: 100, GCDebt: 2, TotalBlocks: 100}, Healthy)

	ok("free below floor", Sample{FreeBlocks: 2, TotalBlocks: 100}, ReadOnly)
	ok("free at floor, under hysteresis", Sample{FreeBlocks: 3, TotalBlocks: 100}, ReadOnly)
	ok("free above floor+margin, debt high", Sample{FreeBlocks: 5, GCDebt: 9, TotalBlocks: 100}, Throttled)
	ok("recovered", healthy, Healthy)

	ok("retired half the drive", Sample{FreeBlocks: 100, RetiredBlocks: 50, TotalBlocks: 100}, Dead)
	ok("dead is terminal", healthy, Dead)

	st := g.Stats()
	if st.State != Dead || st.Transitions == 0 {
		t.Errorf("stats = %+v, want terminal dead with transitions", st)
	}
}

// TestForcedReadOnly checks the ErrNoSpace pin: sticky without a
// configured floor, recoverable with one once space clears the margin.
func TestForcedReadOnly(t *testing.T) {
	healthy := Sample{FreeBlocks: 100, TotalBlocks: 100}

	g := New(Config{MaxRetries: 1}) // enabled, but no floor configured
	g.ForceReadOnly(10)
	if got := g.Observe(healthy, 11); got != ReadOnly {
		t.Fatalf("forced read-only without floor recovered to %v", got)
	}

	g = New(Config{ReadOnlyFree: 3, Hysteresis: 2})
	g.ForceReadOnly(10)
	if got := g.Observe(Sample{FreeBlocks: 4, TotalBlocks: 100}, 11); got != ReadOnly {
		t.Fatalf("forced pin released below floor+margin: %v", got)
	}
	if got := g.Observe(Sample{FreeBlocks: 5, TotalBlocks: 100}, 12); got != Healthy {
		t.Fatalf("forced pin held above floor+margin: %v", got)
	}
	if g.Stats().ForcedReadOnly != 1 {
		t.Errorf("ForcedReadOnly count = %d, want 1", g.Stats().ForcedReadOnly)
	}
}

// TestDeadByLostPages checks the loss threshold trips dead.
func TestDeadByLostPages(t *testing.T) {
	g := New(Config{DeadLostPages: 5})
	if got := g.Observe(Sample{FreeBlocks: 10, LostPages: 4, TotalBlocks: 100}, 0); got != Healthy {
		t.Fatalf("under loss threshold: %v", got)
	}
	if got := g.Observe(Sample{FreeBlocks: 10, LostPages: 5, TotalBlocks: 100}, 1); got != Dead {
		t.Fatalf("at loss threshold: %v", got)
	}
}

// TestReset checks a power cycle clears the ladder position and the
// forced pin but keeps cumulative stats — and that dead re-trips from
// durable signals after the reset.
func TestReset(t *testing.T) {
	g := New(Config{ReadOnlyFree: 3, DeadRetiredPct: 50})
	g.ForceReadOnly(5)
	g.NoteRejectedWrite()
	g.Reset()
	if got := g.Observe(Sample{FreeBlocks: 100, TotalBlocks: 100}, 6); got != Healthy {
		t.Fatalf("post-reset state = %v, want healthy", got)
	}
	if g.Stats().RejectedWrites != 1 {
		t.Errorf("reset dropped cumulative stats: %+v", g.Stats())
	}
	// Dead re-derives from the durable bad-block table.
	g.Observe(Sample{FreeBlocks: 100, RetiredBlocks: 60, TotalBlocks: 100}, 7)
	g.Reset()
	if got := g.Observe(Sample{FreeBlocks: 100, RetiredBlocks: 60, TotalBlocks: 100}, 8); got != Dead {
		t.Fatalf("durable dead signal did not re-trip after reset: %v", got)
	}
}

// TestObserveTime pins transition timestamps to simulated time.
func TestObserveTime(t *testing.T) {
	g := New(Config{ThrottleDebt: 2})
	g.Observe(Sample{FreeBlocks: 10, GCDebt: 5, TotalBlocks: 100}, 7*ssd.Millisecond)
	if got := g.Stats().LastChange; got != 7*ssd.Millisecond {
		t.Errorf("LastChange = %d, want %d", got, 7*ssd.Millisecond)
	}
}
