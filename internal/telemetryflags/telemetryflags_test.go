package telemetryflags

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zombiessd/internal/telemetry"
)

// parse registers the shared flags on a fresh flag set and parses args.
func parse(t *testing.T, args ...string) *Set {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return s
}

// TestValidate drives the up-front validation both binaries run before
// any simulation starts: bad values and dependent flags without
// -telemetry must be rejected with the offending flag named.
func TestValidate(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string // empty = valid
	}{
		{nil, ""},
		{[]string{"-telemetry"}, ""},
		{[]string{"-telemetry", "-telemetry-sample", "500", "-telemetry-trace-cap", "-1"}, ""},
		{[]string{"-telemetry", "-telemetry-sample", "-3"}, "-telemetry-sample"},
		{[]string{"-telemetry", "-telemetry-series-cap", "-2"}, "-telemetry-series-cap"},
		{[]string{"-telemetry-sample", "500"}, "-telemetry-sample needs -telemetry"},
		{[]string{"-telemetry-prom", "m.prom"}, "-telemetry-prom needs -telemetry"},
		{[]string{"-telemetry-csv", "s.csv"}, "-telemetry-csv needs -telemetry"},
		{[]string{"-telemetry-trace", "t.json"}, "-telemetry-trace needs -telemetry"},
		{[]string{"-telemetry", "-telemetry-trace", "t.json", "-telemetry-trace-cap", "-1"},
			"-telemetry-trace conflicts"},
	}
	for _, c := range cases {
		err := parse(t, c.args...).Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%v: unexpected error %v", c.args, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%v: error %v, want mention of %q", c.args, err, c.wantErr)
		}
	}
}

// TestWriteExports checks the export plumbing: nothing requested is a
// no-op, requested exports without an instance error, and a live
// instance lands valid files at the requested paths.
func TestWriteExports(t *testing.T) {
	if err := (&Set{}).WriteExports(nil); err != nil {
		t.Errorf("no exports requested must be a no-op, got %v", err)
	}
	if err := (&Set{PromPath: "x"}).WriteExports(nil); err == nil {
		t.Error("exports without an instance must error")
	}

	dir := t.TempDir()
	s := &Set{
		PromPath:  filepath.Join(dir, "m.prom"),
		CSVPath:   filepath.Join(dir, "s.csv"),
		TracePath: filepath.Join(dir, "t.json"),
	}
	tel := telemetry.New(telemetry.Config{Enabled: true})
	tel.Sample(0)
	tel.EmitSpan(telemetry.OriginGC, "cycle", 10, 20, nil)
	if err := s.WriteExports(tel); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(s.PromPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheusText(prom); err != nil {
		t.Errorf("exported prometheus invalid: %v", err)
	}
	tr, err := os.ReadFile(s.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateTraceJSON(tr); err != nil {
		t.Errorf("exported trace invalid: %v", err)
	}
	csvData, err := os.ReadFile(s.CSVPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "time_us") {
		t.Errorf("exported CSV starts %q, want time_us header", string(csvData[:20]))
	}
}
