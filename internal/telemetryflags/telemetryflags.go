// Package telemetryflags registers the observability knobs shared by the
// simulator binaries (ssdsim and zombiectl) on a flag set: the telemetry
// layer's configuration (-telemetry, -telemetry-sample, the ring caps) and
// the export destinations (-telemetry-prom, -telemetry-csv,
// -telemetry-trace). Keeping the definitions in one place guarantees both
// binaries expose the same names, defaults and validation messages —
// the same contract internal/faultflags provides for the reliability
// knobs.
package telemetryflags

import (
	"flag"
	"fmt"
	"os"

	"zombiessd/internal/telemetry"
)

// Set holds the parsed values of the shared telemetry flags.
type Set struct {
	// Telemetry is the layer configuration handed to telemetry.New.
	Telemetry telemetry.Config

	// PromPath, CSVPath and TracePath are export destinations written
	// after the run; empty means "don't write that export".
	PromPath  string
	CSVPath   string
	TracePath string
}

// Register wires the shared telemetry flags into fs and returns the Set
// their parsed values land in. Binary-specific knobs (zombiectl's
// -telemetry-cell) stay with their binaries.
func Register(fs *flag.FlagSet) *Set {
	s := &Set{}
	fs.BoolVar(&s.Telemetry.Enabled, "telemetry", false,
		"attach the observability layer: metrics registry, latency attribution, timeline tracer")
	fs.Int64Var((*int64)(&s.Telemetry.SampleInterval), "telemetry-sample", 0,
		fmt.Sprintf("simulated µs between time-series samples (0 = default %d)", int64(telemetry.DefaultSampleInterval)))
	fs.IntVar(&s.Telemetry.TraceCap, "telemetry-trace-cap", 0,
		fmt.Sprintf("timeline events retained, most recent kept (0 = default %d; negative disables the tracer)", telemetry.DefaultTraceCap))
	fs.IntVar(&s.Telemetry.SeriesCap, "telemetry-series-cap", 0,
		fmt.Sprintf("time-series rows retained, most recent kept (0 = default %d)", telemetry.DefaultSeriesCap))
	fs.StringVar(&s.PromPath, "telemetry-prom", "",
		"write the final metrics in Prometheus text format to this file ('-' = stdout)")
	fs.StringVar(&s.CSVPath, "telemetry-csv", "",
		"write the sampled time series as CSV to this file ('-' = stdout)")
	fs.StringVar(&s.TracePath, "telemetry-trace", "",
		"write the flash-op timeline as Chrome trace-event JSON to this file ('-' = stdout; view in Perfetto)")
	return s
}

// Validate rejects inconsistent values with the flag name in the message,
// so binaries can report bad input before any simulation starts.
func (s *Set) Validate() error {
	if s.Telemetry.SampleInterval < 0 {
		return fmt.Errorf("-telemetry-sample must be ≥ 0, got %d", int64(s.Telemetry.SampleInterval))
	}
	if s.Telemetry.SeriesCap < 0 {
		return fmt.Errorf("-telemetry-series-cap must be ≥ 0, got %d", s.Telemetry.SeriesCap)
	}
	if !s.Telemetry.Enabled {
		for _, dep := range []struct {
			flag string
			set  bool
		}{
			{"-telemetry-sample", s.Telemetry.SampleInterval != 0},
			{"-telemetry-trace-cap", s.Telemetry.TraceCap != 0},
			{"-telemetry-series-cap", s.Telemetry.SeriesCap != 0},
			{"-telemetry-prom", s.PromPath != ""},
			{"-telemetry-csv", s.CSVPath != ""},
			{"-telemetry-trace", s.TracePath != ""},
		} {
			if dep.set {
				return fmt.Errorf("%s needs -telemetry", dep.flag)
			}
		}
	}
	if s.TracePath != "" && s.Telemetry.TraceCap < 0 {
		return fmt.Errorf("-telemetry-trace conflicts with -telemetry-trace-cap %d (tracer disabled)", s.Telemetry.TraceCap)
	}
	return s.Telemetry.Validate()
}

// WantsExport reports whether any export destination was requested.
func (s *Set) WantsExport() bool {
	return s.PromPath != "" || s.CSVPath != "" || s.TracePath != ""
}

// WriteExports writes every requested export of tel. Gauges are evaluated
// at tel.Now(), the last simulated instant the run observed. A nil tel
// with exports requested is an error (the caller's run never attached the
// instance Validate promised).
func (s *Set) WriteExports(tel *telemetry.Telemetry) error {
	if !s.WantsExport() {
		return nil
	}
	if !tel.On() {
		return fmt.Errorf("telemetry exports requested but no telemetry instance was attached")
	}
	if s.PromPath != "" {
		if err := writeTo(s.PromPath, func(f *os.File) error {
			return tel.WritePrometheus(f, tel.Now())
		}); err != nil {
			return fmt.Errorf("-telemetry-prom: %w", err)
		}
	}
	if s.CSVPath != "" {
		if err := writeTo(s.CSVPath, func(f *os.File) error {
			return tel.WriteCSV(f)
		}); err != nil {
			return fmt.Errorf("-telemetry-csv: %w", err)
		}
	}
	if s.TracePath != "" {
		if err := writeTo(s.TracePath, func(f *os.File) error {
			return tel.WriteTrace(f)
		}); err != nil {
			return fmt.Errorf("-telemetry-trace: %w", err)
		}
	}
	return nil
}

// writeTo streams one export into path ('-' = stdout), surfacing both
// write and close errors.
func writeTo(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
