// Package stats provides the measurement plumbing for the simulator:
// log-bucketed latency histograms with quantile queries (for the paper's
// mean and 99th-percentile latency figures), simple accumulators, and the
// reduction/improvement arithmetic used when normalizing against the
// baseline system.
package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// subBucketBits controls histogram resolution: each power-of-two tier is
// split into 2^subBucketBits linear sub-buckets, bounding relative error per
// sample to about 1/2^subBucketBits (≈1.6% here), plenty for p99 curves.
const subBucketBits = 6

const subBuckets = 1 << subBucketBits

// Histogram is a log-bucketed histogram of non-negative int64 samples,
// in the spirit of HDR histograms. The zero value is ready to use.
type Histogram struct {
	counts [64 * subBuckets]int64
	n      int64
	sum    int64
	max    int64
	min    int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	tier := 63 - bits.LeadingZeros64(uint64(v)) // highest set bit ≥ subBucketBits
	shift := tier - subBucketBits
	sub := int(v>>uint(shift)) - subBuckets // in [0, subBuckets)
	return (shift+1)*subBuckets + sub
}

// bucketLow returns the smallest sample value mapping to bucket i; together
// with the next bucket's low bound it brackets every sample in the bucket.
// Buckets beyond the int64 range saturate to MaxInt64.
func bucketLow(i int) int64 {
	tier := i / subBuckets
	sub := i % subBuckets
	if tier == 0 {
		return int64(sub)
	}
	shift := tier - 1
	if shift > 63-subBucketBits-1 {
		return math.MaxInt64
	}
	return int64(subBuckets+sub) << uint(shift)
}

// Add records one sample. Negative samples are clamped to zero (latencies
// cannot be negative; clamping keeps the accounting robust).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded samples. The estimate is the lower bound of the bucket holding
// the target rank, refined with the exact min/max where applicable.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// P99 returns the 99th percentile, the paper's tail-latency metric.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Buckets calls f for every non-empty bucket in ascending value order with
// the bucket's bounds and count: samples in the bucket satisfy
// lo ≤ v < hi (hi saturates to math.MaxInt64 in the top tier). Iteration
// stops early when f returns false. Exporters use it to render the
// histogram without knowing the internal bucketing scheme.
func (h *Histogram) Buckets(f func(lo, hi, count int64) bool) {
	for i := range h.counts {
		if h.counts[i] == 0 {
			continue
		}
		hi := int64(math.MaxInt64)
		if i+1 < len(h.counts) {
			hi = bucketLow(i + 1)
		}
		if !f(bucketLow(i), hi, h.counts[i]) {
			return
		}
	}
}

// Merge adds every sample of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset clears the histogram to empty.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is the condensed view of a histogram used in experiment rows.
type Summary struct {
	Count int64
	Mean  float64
	P99   int64
	Max   int64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{Count: h.n, Mean: h.Mean(), P99: h.P99(), Max: h.max}
}

// String renders the summary compactly, times in µs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p99=%dµs max=%dµs", s.Count, s.Mean, s.P99, s.Max)
}
