package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBucketsPartition checks the exported bucket iteration: non-empty
// buckets arrive in increasing, non-overlapping [lo, hi) ranges, every
// count is positive, every range brackets only values that bucket can
// hold, and the counts sum to Count().
func TestBucketsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	for i := 0; i < 20000; i++ {
		h.Add(rng.Int63n(1 << uint(1+rng.Intn(40))))
	}
	var total int64
	prevHi := int64(-1)
	h.Buckets(func(lo, hi, count int64) bool {
		if count <= 0 {
			t.Errorf("bucket [%d,%d) has non-positive count %d", lo, hi, count)
		}
		if lo >= hi {
			t.Errorf("bucket [%d,%d) is empty or inverted", lo, hi)
		}
		if lo < prevHi {
			t.Errorf("bucket [%d,%d) overlaps previous (ended at %d)", lo, hi, prevHi)
		}
		prevHi = hi
		total += count
		return true
	})
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, want Count() = %d", total, h.Count())
	}
}

// TestBucketsEarlyStop checks that a false return stops the iteration.
func TestBucketsEarlyStop(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(1000)
	h.Add(1_000_000)
	calls := 0
	h.Buckets(func(lo, hi, count int64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("iteration made %d calls after a false return, want 1", calls)
	}
}

// TestBucketsEmpty checks that an empty histogram iterates nothing.
func TestBucketsEmpty(t *testing.T) {
	var h Histogram
	h.Buckets(func(lo, hi, count int64) bool {
		t.Errorf("empty histogram yielded bucket [%d,%d)×%d", lo, hi, count)
		return true
	})
}

// clampQ folds an arbitrary float into a usable quantile in [0, 1].
func clampQ(q float64) float64 {
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return 0.5
	}
	q = math.Abs(q)
	return q - math.Floor(q)
}

// TestQuantileMonotone is the property test that quantiles never decrease
// as q grows, on histograms filled from random seeds.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64, q1, q2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			h.Add(rng.Int63n(1 << uint(1+rng.Intn(40))))
		}
		a, b := clampQ(q1), clampQ(q2)
		if a > b {
			a, b = b, a
		}
		return h.Quantile(a) <= h.Quantile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMergeQuantileMonotonicity is the property test that merging
// preserves quantile order: for any two histograms built over the same
// bucket layout, the merged quantile at q lies between the smaller and the
// larger of the parts' quantiles at q — a merge can average populations
// but never escape their envelope.
func TestMergeQuantileMonotonicity(t *testing.T) {
	f := func(seedA, seedB int64, qf float64) bool {
		q := clampQ(qf)
		fill := func(seed int64) *Histogram {
			rng := rand.New(rand.NewSource(seed))
			var h Histogram
			n := 1 + rng.Intn(1500)
			for i := 0; i < n; i++ {
				h.Add(rng.Int63n(1 << uint(1+rng.Intn(32))))
			}
			return &h
		}
		a, b := fill(seedA), fill(seedB)
		qa, qb := a.Quantile(q), b.Quantile(q)
		lo, hi := qa, qb
		if lo > hi {
			lo, hi = hi, lo
		}
		var merged Histogram
		merged.Merge(a)
		merged.Merge(b)
		if merged.Count() != a.Count()+b.Count() {
			return false
		}
		got := merged.Quantile(q)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMergeEqualsSequential is the property test that merging two
// histograms is indistinguishable from adding every sample to one: counts,
// sums, extremes and any quantile agree exactly (identical bucket layouts
// make this an integer identity, not an approximation).
func TestMergeEqualsSequential(t *testing.T) {
	f := func(seed int64, qf float64) bool {
		q := clampQ(qf)
		rng := rand.New(rand.NewSource(seed))
		var a, b, all Histogram
		n := 2 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << uint(1+rng.Intn(40)))
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
			all.Add(v)
		}
		a.Merge(&b)
		return a.Count() == all.Count() && a.Sum() == all.Sum() &&
			a.Min() == all.Min() && a.Max() == all.Max() &&
			a.Quantile(q) == all.Quantile(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
