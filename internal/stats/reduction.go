package stats

// ReductionPct returns the percentage by which value improved (shrank)
// relative to base: (base-value)/base × 100. A negative result means value
// grew. Returns 0 when base is 0 to keep experiment tables well-defined on
// degenerate inputs.
func ReductionPct(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - value) / base * 100
}

// NormalizedPct returns value as a percentage of base (value/base × 100),
// the normalization used by the paper's Fig 14. Returns 0 when base is 0.
func NormalizedPct(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return value / base * 100
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxOf returns the maximum of xs, or 0 for an empty slice.
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinOf returns the minimum of xs, or 0 for an empty slice.
func MinOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
