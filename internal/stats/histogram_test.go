package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Errorf("empty histogram not all-zero: %+v", h.Summarize())
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Add(400)
	if h.Count() != 1 || h.Sum() != 400 || h.Max() != 400 || h.Min() != 400 {
		t.Fatalf("single sample accounting wrong: %+v", h.Summarize())
	}
	if h.Mean() != 400 {
		t.Errorf("Mean = %g, want 400", h.Mean())
	}
	if got := h.P99(); got != 400 {
		t.Errorf("P99 = %d, want 400", got)
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Min() != 0 || h.Sum() != 0 {
		t.Errorf("negative sample not clamped: min=%d sum=%d", h.Min(), h.Sum())
	}
}

func TestSmallValuesExact(t *testing.T) {
	// Values below subBuckets land in exact singleton buckets, so any
	// quantile must be exact.
	var h Histogram
	for v := int64(0); v < subBuckets; v++ {
		h.Add(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		want := int64(q * subBuckets) // ceil(q*n) ranks into value rank-1
		got := h.Quantile(q)
		if got < want-1 || got > want {
			t.Errorf("Quantile(%g) = %d, want ≈%d", q, got, want)
		}
	}
}

func TestQuantileAccuracyAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]int64, 50000)
	for i := range samples {
		// Heavy-tailed: mostly small with occasional large, like SSD
		// latencies behind GC.
		v := rng.Int63n(500)
		if rng.Intn(100) == 0 {
			v += rng.Int63n(4000)
		}
		samples[i] = v
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		// log-bucketed: relative error bounded by one sub-bucket (~1.6%),
		// allow 4% slack plus the ±1 integer wiggle.
		lo := float64(exact) * 0.96
		hi := float64(exact)*1.04 + 2
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("Quantile(%g) = %d, exact %d (outside [%.0f, %.0f])", q, got, exact, lo, hi)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Add(i * 1000)
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Errorf("Quantile(0) = %d, want min %d", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("Quantile(1) = %d, want max %d", got, h.Max())
	}
	if got := h.Quantile(-1); got != h.Min() {
		t.Errorf("Quantile(-1) = %d, want min", got)
	}
	if got := h.Quantile(2); got != h.Max() {
		t.Errorf("Quantile(2) = %d, want max", got)
	}
}

func TestBucketMonotone(t *testing.T) {
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketOf(a) <= bucketOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketLowBrackets(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		if v < 0 { // -MinInt64 overflows back to negative
			return true
		}
		i := bucketOf(v)
		lo := bucketLow(i)
		hi := bucketLow(i + 1)
		return lo <= v && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b, both Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(100000)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() || a.Min() != both.Min() {
		t.Fatalf("merged accounting differs: %+v vs %+v", a.Summarize(), both.Summarize())
	}
	if a.P99() != both.P99() {
		t.Errorf("merged P99 = %d, want %d", a.P99(), both.P99())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != both.Count() {
		t.Error("merging empty histogram changed count")
	}
	empty.Merge(&a)
	if empty.Count() != a.Count() || empty.Min() != a.Min() {
		t.Error("merging into empty histogram lost samples")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Add(5)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Add(100)
	if h.Summarize().String() == "" {
		t.Error("empty summary string")
	}
}

func TestReductionPct(t *testing.T) {
	cases := []struct {
		base, value, want float64
	}{
		{100, 71, 29},
		{100, 100, 0},
		{100, 120, -20},
		{0, 5, 0},
	}
	for _, c := range cases {
		got := ReductionPct(c.base, c.value)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ReductionPct(%g,%g) = %g, want %g", c.base, c.value, got, c.want)
		}
	}
}

func TestNormalizedPct(t *testing.T) {
	if got := NormalizedPct(200, 50); got != 25 {
		t.Errorf("NormalizedPct = %g, want 25", got)
	}
	if got := NormalizedPct(0, 50); got != 0 {
		t.Errorf("NormalizedPct with 0 base = %g, want 0", got)
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || MaxOf(xs) != 3 || MinOf(xs) != 1 {
		t.Errorf("Mean/MaxOf/MinOf wrong: %g %g %g", Mean(xs), MaxOf(xs), MinOf(xs))
	}
	if Mean(nil) != 0 || MaxOf(nil) != 0 || MinOf(nil) != 0 {
		t.Error("empty-slice helpers must return 0")
	}
}
