package rain

import (
	"errors"
	"testing"

	"zombiessd/internal/ssd"
)

// testGeometry is a small drive with 8 channels so widths 2, 4 and 8 all
// tile it: 8 ch × 2 chips × 1 die × 1 plane × 4 blocks × 16 pages.
func testGeometry() ssd.Geometry {
	return ssd.Geometry{
		Channels: 8, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 4, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"enabled-default-width", Config{Enable: true}, true},
		{"min", Config{Enable: true, StripePages: MinStripe}, true},
		{"max", Config{Enable: true, StripePages: MaxStripe}, true},
		{"below-min", Config{Enable: true, StripePages: 1}, false},
		{"negative", Config{Enable: true, StripePages: -4}, false},
		{"above-max", Config{Enable: true, StripePages: MaxStripe + 1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("rejected valid config: %v", err)
			}
			if !c.ok && !errors.Is(err, ErrBadStripe) {
				t.Fatalf("got %v, want ErrBadStripe", err)
			}
		})
	}
}

func TestNewTrackerGeometryChecks(t *testing.T) {
	geo := testGeometry()
	if _, err := NewTracker(geo, Config{Enable: true, StripePages: 3}); !errors.Is(err, ErrBadStripe) {
		t.Errorf("width 3 on 8 channels: got %v, want ErrBadStripe", err)
	}
	geo.PagesPerBlock = 18 // not divisible by 4
	if _, err := NewTracker(geo, Config{Enable: true, StripePages: 4}); !errors.Is(err, ErrBadStripe) {
		t.Errorf("width 4 on 18 pages/block: got %v, want ErrBadStripe", err)
	}
	one := testGeometry()
	one.Channels = 1
	if _, err := NewTracker(one, Config{Enable: true}); !errors.Is(err, ErrBadStripe) {
		t.Errorf("default width on 1 channel: got %v, want ErrBadStripe", err)
	}
}

// TestStripeMath pins the combinatorics for every width that tiles the
// test geometry: each page belongs to exactly one stripe, each stripe has
// exactly one parity slot and Width()-1 data members, PageOf inverts
// StripeOf, and parity slots rotate across the group's channels.
func TestStripeMath(t *testing.T) {
	geo := testGeometry()
	for _, w := range []int{2, 4, 8} {
		tr, err := NewTracker(geo, Config{Enable: true, StripePages: w})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if tr.Width() != w {
			t.Fatalf("width %d: Width() = %d", w, tr.Width())
		}
		wantStripes := geo.TotalPages() / int64(w)
		if tr.Stripes() != wantStripes {
			t.Fatalf("width %d: %d stripes, want %d", w, tr.Stripes(), wantStripes)
		}
		members := make(map[int64]int)
		parity := make(map[int64]int)
		seenParityChannels := make(map[int]bool)
		for p := ssd.PPN(0); p < ssd.PPN(geo.TotalPages()); p++ {
			st := tr.StripeOf(p)
			if st < 0 || st >= tr.Stripes() {
				t.Fatalf("width %d: page %d maps to stripe %d of %d", w, p, st, tr.Stripes())
			}
			if tr.IsParity(p) {
				parity[st]++
				if tr.ParitySlot(st) != p {
					t.Fatalf("width %d: stripe %d parity slot %d, but page %d is parity",
						w, st, tr.ParitySlot(st), p)
				}
				seenParityChannels[int(int64(p)/tr.ppc)] = true
			} else {
				members[st]++
				cig := tr.cig(p)
				if got := tr.PageOf(st, cig); got != p {
					t.Fatalf("width %d: PageOf(%d,%d) = %d, want %d", w, st, cig, got, p)
				}
				if tr.FullMask(st)&(uint32(1)<<cig) == 0 {
					t.Fatalf("width %d: member %d missing from FullMask of stripe %d", w, p, st)
				}
			}
		}
		for st := int64(0); st < tr.Stripes(); st++ {
			if parity[st] != 1 {
				t.Fatalf("width %d: stripe %d has %d parity slots, want 1", w, st, parity[st])
			}
			if members[st] != w-1 {
				t.Fatalf("width %d: stripe %d has %d data members, want %d", w, st, members[st], w-1)
			}
		}
		// Rotation: with PagesPerBlock ≥ width, every channel of the first
		// group must host parity for some offset.
		for cig := 0; cig < w; cig++ {
			if !seenParityChannels[cig] {
				t.Errorf("width %d: channel %d never holds parity (no rotation)", w, cig)
			}
		}
	}
}

// TestMaskLifecycle walks one stripe through the tracker's state machine:
// programs accumulate in the data mask, the last program closes the
// stripe, MarkFlushed copies data to parity, NoteErased subtracts from
// both masks, and an erased parity slot voids the coverage entirely.
func TestMaskLifecycle(t *testing.T) {
	tr, err := NewTracker(testGeometry(), Config{Enable: true, StripePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	const st = int64(0)
	slot := tr.ParitySlot(st)
	var members []ssd.PPN
	for cig := 0; cig < tr.Width(); cig++ {
		if p := tr.PageOf(st, cig); p != slot {
			members = append(members, p)
		}
	}
	for i, m := range members {
		gotSt, complete := tr.OnProgram(m)
		if gotSt != st {
			t.Fatalf("member %d reported stripe %d, want %d", m, gotSt, st)
		}
		if want := i == len(members)-1; complete != want {
			t.Fatalf("after %d programs complete = %v, want %v", i+1, complete, want)
		}
	}
	if !tr.IsOpen(st) {
		t.Fatal("fully programmed stripe not open before flush")
	}
	if tr.Covered(members[0]) {
		t.Fatal("member covered before any flush")
	}
	tr.MarkFlushed(st)
	if tr.IsOpen(st) || tr.ParityMask(st) != tr.DataMask(st) {
		t.Fatalf("after flush: open=%v parity=%#x data=%#x",
			tr.IsOpen(st), tr.ParityMask(st), tr.DataMask(st))
	}
	for _, m := range members {
		if !tr.Covered(m) {
			t.Fatalf("member %d uncovered after flush", m)
		}
	}
	tr.NoteErased(members[0])
	if tr.Covered(members[0]) {
		t.Fatal("erased member still covered")
	}
	if tr.IsOpen(st) {
		t.Fatal("erase subtraction left the stripe open (masks should shrink together)")
	}
	tr.NoteErased(slot)
	if tr.ParityMask(st) != 0 {
		t.Fatalf("erased parity slot left coverage %#x", tr.ParityMask(st))
	}
	if !tr.IsOpen(st) {
		t.Fatal("stripe with members but no parity not open")
	}
	if got := tr.OpenStripes(); len(got) != 1 || got[0] != st {
		t.Fatalf("OpenStripes = %v, want [%d]", got, st)
	}
	tr.Drop(st)
	if tr.IsOpen(st) {
		t.Fatal("dropped stripe still open")
	}
	// Recovery path: Reset then restore intersects parity with data.
	tr.Reset()
	tr.RestoreData(members[1])
	tr.RestoreParity(st, tr.FullMask(st))
	if got := tr.ParityMask(st); got != tr.DataMask(st) {
		t.Fatalf("restored parity %#x not intersected with data %#x", got, tr.DataMask(st))
	}
}

// FuzzRainConfig throws arbitrary widths and geometry shapes at the
// config/tracker constructors: every rejection must be classified as
// ErrBadStripe, and every accepted tracker must tile the drive exactly —
// each page in exactly one stripe, one parity slot per stripe.
func FuzzRainConfig(f *testing.F) {
	f.Add(0, 8, 16)
	f.Add(2, 8, 16)
	f.Add(4, 8, 64)
	f.Add(8, 8, 128)
	f.Add(3, 8, 16)
	f.Add(-1, 4, 32)
	f.Add(MaxStripe+1, 32, 32)
	f.Fuzz(func(t *testing.T, width, channels, ppb int) {
		if channels < 1 || channels > 64 || ppb < 1 || ppb > 512 {
			t.Skip()
		}
		geo := ssd.Geometry{
			Channels: channels, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 2, PagesPerBlock: ppb, PageSize: 4096, OverProvision: 0.1,
		}
		cfg := Config{Enable: true, StripePages: width}
		tr, err := NewTracker(geo, cfg)
		if err != nil {
			if !errors.Is(err, ErrBadStripe) {
				t.Fatalf("rejection not classified: %v", err)
			}
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("NewTracker accepted what Validate rejects: %v", err)
		}
		parity := make(map[int64]int)
		for p := ssd.PPN(0); p < ssd.PPN(geo.TotalPages()); p++ {
			st := tr.StripeOf(p)
			if st < 0 || st >= tr.Stripes() {
				t.Fatalf("page %d maps to stripe %d of %d", p, st, tr.Stripes())
			}
			if tr.IsParity(p) {
				parity[st]++
			}
		}
		if int64(len(parity)) != tr.Stripes() {
			t.Fatalf("%d stripes have parity, want %d", len(parity), tr.Stripes())
		}
		for st, n := range parity {
			if n != 1 {
				t.Fatalf("stripe %d has %d parity slots", st, n)
			}
		}
	})
}
