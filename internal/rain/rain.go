// Package rain models intra-SSD RAIN (redundant array of independent
// NAND): XOR parity striping across channels. A stripe is one page per
// channel at the same chip/die/plane/block/page offset — the PPN layout
// (internal/ssd) keeps each channel's pages contiguous, so stripe members
// sit a fixed stride apart. One member of every stripe is the parity slot,
// rotated across the stripe's channels by block+page offset so no single
// channel absorbs all parity traffic.
//
// The package is purely combinatorial: stripe geometry, membership masks
// and the flushed-parity bookkeeping. The FTL (internal/ftl) owns every
// side effect — charging parity programs to the bus, stamping parity OOB,
// reading survivors and re-landing reconstructed pages.
//
// Abstractions, stated explicitly:
//
//   - Parity updates for members destroyed by an erase are XOR-subtraction
//     performed in controller RAM against the parity buffer; the model
//     charges no flash operation for them. Adding a *new* member does
//     require landing fresh parity, which is charged as a real program —
//     that is the parity write-amplification tax the rainsweep experiment
//     measures.
//   - A stripe's parity slot stands for the latest page of a versioned
//     parity stream; superseded parity versions are folded into the slot
//     rather than tracked individually, so a parity rewrite charges a
//     program but reuses the address.
package rain

import (
	"errors"
	"fmt"
	"sort"

	"zombiessd/internal/ssd"
)

// ErrBadStripe is wrapped by Validate and NewTracker for malformed
// -rain-* configurations, so the flag surfaces (and FuzzRainConfig) can
// assert the rejection class with errors.Is.
var ErrBadStripe = errors.New("rain: bad stripe config")

// Stripe width bounds: at least one data page plus parity; membership
// masks are uint32.
const (
	MinStripe = 2
	MaxStripe = 32
)

// Config parameterizes channel-stripe parity. The zero value disables
// RAIN entirely: no tracker is built, no parity slots are reserved, and
// the store is bit-identical to a drive without the feature.
type Config struct {
	// Enable turns parity striping on.
	Enable bool

	// StripePages is the stripe width in pages (channels), including the
	// parity page: N data + 1 parity with N = StripePages-1. 0 means one
	// stripe spanning every channel of the geometry. Must divide the
	// channel count so stripes tile the drive exactly.
	StripePages int
}

// Enabled reports whether parity striping is on.
func (c Config) Enabled() bool { return c.Enable }

// Validate rejects out-of-range widths with ErrBadStripe. Geometry-
// dependent checks (width vs. channel count) happen in NewTracker, where
// the geometry is known.
func (c Config) Validate() error {
	if c.StripePages != 0 && (c.StripePages < MinStripe || c.StripePages > MaxStripe) {
		return fmt.Errorf("%w: stripe width must be 0 or in [%d,%d], got %d",
			ErrBadStripe, MinStripe, MaxStripe, c.StripePages)
	}
	return nil
}

// WithDefaults returns c unchanged; the width default (all channels) is
// geometry-dependent and resolved by NewTracker.
func (c Config) WithDefaults() Config { return c }

// Stats counts RAIN activity. All zeros while the feature is disabled.
type Stats struct {
	ParityPrograms      int64 // parity page programs charged to the bus
	StripeReflushes     int64 // parity rewrites of stripes that already had parity
	ReconstructedPages  int64 // pages rebuilt from surviving members + parity
	ReconstructionReads int64 // survivor reads those reconstructions charged
	RebuildPages        int64 // dead-die pages re-landed by the rebuild daemon
	RebuildRefreshes    int64 // unprotected-stripe pages refreshed by the daemon
}

// Any reports whether any RAIN activity was recorded.
func (s Stats) Any() bool { return s != Stats{} }

// Sub returns s minus prev, field-wise.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		ParityPrograms:      s.ParityPrograms - prev.ParityPrograms,
		StripeReflushes:     s.StripeReflushes - prev.StripeReflushes,
		ReconstructedPages:  s.ReconstructedPages - prev.ReconstructedPages,
		ReconstructionReads: s.ReconstructionReads - prev.ReconstructionReads,
		RebuildPages:        s.RebuildPages - prev.RebuildPages,
		RebuildRefreshes:    s.RebuildRefreshes - prev.RebuildRefreshes,
	}
}

// Tracker owns the stripe bookkeeping of one drive: which members of each
// stripe are physically programmed (data mask) and which members the last
// flushed parity page covers (parity mask). A stripe whose masks differ is
// open: its parity is stale and must be re-flushed before the uncovered
// members are protected. The Tracker is not safe for concurrent use,
// matching the simulator's single-goroutine device contract.
type Tracker struct {
	w      int   // stripe width: data members + 1 parity
	groups int   // channel groups (channels / w)
	ppc    int64 // pages per channel (the stripe-member stride)
	ppb    int64 // pages per block (parity-slot rotation input)

	data   []uint32 // per stripe: channel-in-group bits of programmed members
	parity []uint32 // per stripe: member bits covered by the flushed parity
	open   map[int64]struct{}
}

// NewTracker builds the stripe bookkeeping for the geometry, resolving a
// zero width to all channels. The width must divide both the channel
// count (stripes tile the drive) and the pages per block (every block
// holds the same number of parity slots).
func NewTracker(geo ssd.Geometry, cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := cfg.StripePages
	if w == 0 {
		w = geo.Channels
	}
	if w < MinStripe {
		return nil, fmt.Errorf("%w: stripe width %d below %d (geometry has %d channels)",
			ErrBadStripe, w, MinStripe, geo.Channels)
	}
	if w > MaxStripe {
		return nil, fmt.Errorf("%w: stripe width %d above %d", ErrBadStripe, w, MaxStripe)
	}
	if geo.Channels%w != 0 {
		return nil, fmt.Errorf("%w: stripe width %d must divide the channel count %d",
			ErrBadStripe, w, geo.Channels)
	}
	if geo.PagesPerBlock%w != 0 {
		return nil, fmt.Errorf("%w: stripe width %d must divide the pages per block %d",
			ErrBadStripe, w, geo.PagesPerBlock)
	}
	t := &Tracker{
		w:      w,
		groups: geo.Channels / w,
		ppc:    geo.TotalPages() / int64(geo.Channels),
		ppb:    int64(geo.PagesPerBlock),
		open:   make(map[int64]struct{}),
	}
	stripes := int64(t.groups) * t.ppc
	t.data = make([]uint32, stripes)
	t.parity = make([]uint32, stripes)
	return t, nil
}

// Width returns the stripe width (data members + 1 parity).
func (t *Tracker) Width() int { return t.w }

// Stripes returns the number of stripes in the drive; one page per stripe
// is a parity slot, so this is also the drive's parity capacity in pages.
func (t *Tracker) Stripes() int64 { return int64(len(t.data)) }

// StripeOf returns the stripe index of page p.
func (t *Tracker) StripeOf(p ssd.PPN) int64 {
	ch := int64(p) / t.ppc
	return (ch / int64(t.w)) * t.ppc + int64(p)%t.ppc
}

// cig returns p's channel index within its stripe group — its bit
// position in the stripe masks.
func (t *Tracker) cig(p ssd.PPN) int {
	return int((int64(p) / t.ppc) % int64(t.w))
}

// parityCIG returns which channel-in-group holds the parity slot of the
// stripe at this channel offset: rotated by block + page so parity load
// spreads across the group's channels.
func (t *Tracker) parityCIG(off int64) int {
	return int((off/t.ppb + off%t.ppb) % int64(t.w))
}

// IsParity reports whether page p is a parity slot.
func (t *Tracker) IsParity(p ssd.PPN) bool {
	return t.cig(p) == t.parityCIG(int64(p)%t.ppc)
}

// ParitySlot returns the parity page of the stripe.
func (t *Tracker) ParitySlot(stripe int64) ssd.PPN {
	off := stripe % t.ppc
	ch := (stripe/t.ppc)*int64(t.w) + int64(t.parityCIG(off))
	return ssd.PPN(ch*t.ppc + off)
}

// PageOf returns the member page of the stripe in channel-in-group cig.
func (t *Tracker) PageOf(stripe int64, cig int) ssd.PPN {
	ch := (stripe/t.ppc)*int64(t.w) + int64(cig)
	return ssd.PPN(ch*t.ppc + stripe%t.ppc)
}

// FullMask returns the mask of every data member of the stripe (all
// channels of the group except the parity slot).
func (t *Tracker) FullMask(stripe int64) uint32 {
	return (uint32(1)<<t.w - 1) &^ (uint32(1) << t.parityCIG(stripe%t.ppc))
}

// DataMask returns the programmed-member mask of the stripe.
func (t *Tracker) DataMask(stripe int64) uint32 { return t.data[stripe] }

// ParityMask returns the member mask the stripe's flushed parity covers.
func (t *Tracker) ParityMask(stripe int64) uint32 { return t.parity[stripe] }

// Covered reports whether the stripe's flushed parity protects page p —
// the precondition for reconstructing p from the surviving members.
func (t *Tracker) Covered(p ssd.PPN) bool {
	return t.parity[t.StripeOf(p)]&(uint32(1)<<t.cig(p)) != 0
}

// sync maintains the open-stripe set for one stripe.
func (t *Tracker) sync(stripe int64) {
	if t.data[stripe] != t.parity[stripe] {
		t.open[stripe] = struct{}{}
	} else {
		delete(t.open, stripe)
	}
}

// OnProgram records that data landed on page p and returns p's stripe
// plus whether every data member is now programmed — the stripe-close
// condition on which the FTL flushes parity. Must not be called for
// parity slots (the allocator never hands them out).
func (t *Tracker) OnProgram(p ssd.PPN) (stripe int64, complete bool) {
	stripe = t.StripeOf(p)
	t.data[stripe] |= uint32(1) << t.cig(p)
	t.sync(stripe)
	return stripe, t.data[stripe] == t.FullMask(stripe)
}

// NoteErased records that page p was destroyed by an erase (or retired
// with its block): a data member leaves both masks — the RAM-side
// XOR-subtraction the package comment describes — and an erased parity
// slot voids the stripe's flushed parity entirely.
func (t *Tracker) NoteErased(p ssd.PPN) {
	stripe := t.StripeOf(p)
	if t.IsParity(p) {
		t.parity[stripe] = 0
	} else {
		bit := uint32(1) << t.cig(p)
		t.data[stripe] &^= bit
		t.parity[stripe] &^= bit
	}
	t.sync(stripe)
}

// MarkFlushed records that the stripe's parity page now covers every
// programmed member.
func (t *Tracker) MarkFlushed(stripe int64) {
	t.parity[stripe] = t.data[stripe]
	t.sync(stripe)
}

// Drop removes the stripe from the open set without flushing — the FTL's
// escape hatch when the parity slot's block is dead or retired and the
// stripe cannot be protected at its fixed location.
func (t *Tracker) Drop(stripe int64) { delete(t.open, stripe) }

// IsOpen reports whether the stripe is queued for a parity flush.
func (t *Tracker) IsOpen(stripe int64) bool {
	_, ok := t.open[stripe]
	return ok
}

// OpenStripes returns the stripes whose parity is stale, in ascending
// order for deterministic flush sequences.
func (t *Tracker) OpenStripes() []int64 {
	out := make([]int64, 0, len(t.open))
	for st := range t.open {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset clears every mask and the open set — the first step of rebuilding
// the tracker from durable OOB state after a crash.
func (t *Tracker) Reset() {
	for i := range t.data {
		t.data[i] = 0
		t.parity[i] = 0
	}
	t.open = make(map[int64]struct{})
}

// RestoreData re-registers a programmed data member during crash
// recovery, without the stripe-close signal (recovery re-flushes open
// stripes in one pass at the end).
func (t *Tracker) RestoreData(p ssd.PPN) {
	stripe := t.StripeOf(p)
	t.data[stripe] |= uint32(1) << t.cig(p)
	t.sync(stripe)
}

// RestoreParity re-registers a flushed parity mask during crash recovery,
// intersected with the restored data mask: members torn or erased since
// the flush cannot contribute to reconstruction, so the surviving parity
// only covers what is still physically present. Call after every
// RestoreData.
func (t *Tracker) RestoreParity(stripe int64, mask uint32) {
	t.parity[stripe] = mask & t.data[stripe]
	t.sync(stripe)
}
