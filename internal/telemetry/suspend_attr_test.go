package telemetry

import (
	"testing"

	"zombiessd/internal/ssd"
)

// suspendAttrGeometry is a single-chip drive so the GC erase and the host
// read contend deterministically.
func suspendAttrGeometry() ssd.Geometry {
	return ssd.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
	}
}

// TestSuspendAttributionAccounting is the table-driven accounting check for
// read-over-GC suspension: a GC erase is stamped at time 0 inside the first
// request's scope, host reads run into it under different suspension
// policies, and each request's phase decomposition must match exactly —
// in particular, suspension must shrink gc-blocked from the erase remainder
// down to the suspend cost while the exact-sum invariant
// (queue + gc-blocked + bus + chip + ecc + ctrl = latency) keeps holding.
func TestSuspendAttributionAccounting(t *testing.T) {
	lat := ssd.PaperLatency() // read 75, erase 3800, transfer 5

	type wantReq struct {
		latency ssd.Time
		phases  [NumPhases]ssd.Time
	}
	mk := func(queue, gc ssd.Time) wantReq {
		w := wantReq{latency: queue + gc + lat.Transfer + lat.Read}
		w.phases[PhaseQueue] = queue
		w.phases[PhaseGCBlocked] = gc
		w.phases[PhaseBus] = lat.Transfer
		w.phases[PhaseChip] = lat.Read
		return w
	}

	cases := []struct {
		name  string
		susp  ssd.SuspendConfig
		reads []ssd.Time // one request per read, issued at these instants
		want  []wantReq
	}{
		{
			// No suspension: the read waits out the whole erase remainder
			// (3800 − 1000 = 2800), all of it attributed to gc-blocked.
			name:  "blocking",
			reads: []ssd.Time{1000},
			want:  []wantReq{mk(0, 2800)},
		},
		{
			// Suspension: the read preempts the erase and pays only the
			// 20 µs suspend cost — gc-blocked shrinks from 2800 to 20.
			name:  "suspend",
			susp:  ssd.SuspendConfig{MaxPerOp: 2, SuspendCost: 20, ResumeCost: 20},
			reads: []ssd.Time{1000},
			want:  []wantReq{mk(0, 20)},
		},
		{
			// Suspension bound: the first read suspends (gc-blocked 20); the
			// second finds the erase out of suspensions and queues behind its
			// resumed remainder (3920 − 2000 = 1920). The erase was issued in
			// the first request's scope, so the second request's wait is
			// plain queue time, not gc-blocked.
			name:  "suspend-exhausted",
			susp:  ssd.SuspendConfig{MaxPerOp: 1, SuspendCost: 20, ResumeCost: 20},
			reads: []ssd.Time{1000, 2000},
			want:  []wantReq{mk(0, 20), mk(1920, 0)},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			geo := suspendAttrGeometry()
			bus := ssd.NewBus(geo, lat)
			bus.ConfigureSuspend(c.susp)
			tel := New(Config{Enabled: true})
			tel.Attach(geo)
			bus.SetObserver(tel)

			var got []Request
			tel.OnRequestEnd = func(req Request) { got = append(got, req) }

			for i, at := range c.reads {
				tel.BeginRequest(ReqRead, at)
				if i == 0 {
					// The GC erase triggered while servicing the first
					// request, stamped at 0 so it starts when the chip last
					// went idle — the preemptible-GC stamping discipline.
					prev := tel.EnterOrigin(OriginGC)
					bus.SuspendScope(true)
					bus.Erase(0, 0)
					bus.SuspendScope(false)
					tel.ExitOrigin(prev)
				}
				tel.EndRequest(bus.ReadHost(0, at))
			}

			if len(got) != len(c.want) {
				t.Fatalf("closed %d requests, want %d", len(got), len(c.want))
			}
			for i, w := range c.want {
				req := got[i]
				if req.Latency() != w.latency {
					t.Errorf("request %d latency = %d, want %d", i, req.Latency(), w.latency)
				}
				if req.Phases != w.phases {
					t.Errorf("request %d phases = %v, want %v", i, req.Phases, w.phases)
				}
				var sum ssd.Time
				for p := Phase(0); p < NumPhases; p++ {
					if req.Phases[p] < 0 {
						t.Errorf("request %d: negative phase %v: %d", i, p, req.Phases[p])
					}
					sum += req.Phases[p]
				}
				if sum != req.Latency() {
					t.Errorf("request %d: phases sum to %d, latency is %d", i, sum, req.Latency())
				}
			}
			phases, latSum := tel.Attribution().Totals()
			var total int64
			for _, p := range phases {
				total += p
			}
			if total != latSum {
				t.Errorf("phase totals sum to %d, end-to-end total is %d", total, latSum)
			}
		})
	}

	// The two single-read policies must order as the tentpole claims:
	// suspension strictly shrinks gc-blocked.
	if blocking, suspend := cases[0].want[0].phases[PhaseGCBlocked], cases[1].want[0].phases[PhaseGCBlocked]; suspend >= blocking {
		t.Fatalf("test vectors broken: suspension gc-blocked %d not below blocking %d", suspend, blocking)
	}
}
