package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"zombiessd/internal/ssd"
)

// TestNilSafety drives every exported method on the nil (disabled)
// instance: the contract is that instrumented code needs no guards.
func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	if tel.On() {
		t.Fatal("nil instance reports On")
	}
	tel.Attach(ssd.DefaultGeometry())
	prev := tel.EnterOrigin(OriginGC)
	tel.ExitOrigin(prev)
	tel.ExitOrigin(tel.EnterECC())
	tel.ObserveOp(ssd.OpObservation{})
	tel.BeginRequest(ReqWrite, 10)
	tel.EndRequest(20)
	tel.EmitSpan(OriginGC, "x", 0, 1, nil)
	tel.Sample(100)
	tel.RegisterGauge("g", "h", nil, func(ssd.Time) float64 { return 0 })
	if tel.Registry() != nil || tel.Attribution() != nil || tel.Tracer() != nil {
		t.Error("nil instance exposes live components")
	}
	if tel.PhaseHistogram(ReqRead, PhaseQueue) != nil {
		t.Error("nil instance exposes a histogram")
	}
	if tel.Now() != 0 {
		t.Error("nil instance has a clock")
	}
	if err := tel.WritePrometheus(&bytes.Buffer{}, 0); err == nil {
		t.Error("nil prometheus export must error")
	}
	if err := tel.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("nil CSV export must error")
	}
	if err := tel.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Error("nil trace export must error")
	}
}

// TestNewDisabled checks that a disabled config yields the nil instance.
func TestNewDisabled(t *testing.T) {
	if tel := New(Config{}); tel != nil {
		t.Fatal("New with Enabled=false must return nil")
	}
}

// TestConfigDefaults checks zero-field substitution and validation.
func TestConfigDefaults(t *testing.T) {
	c := Config{Enabled: true}.WithDefaults()
	if c.SampleInterval != DefaultSampleInterval || c.TraceCap != DefaultTraceCap || c.SeriesCap != DefaultSeriesCap {
		t.Errorf("defaults not applied: %+v", c)
	}
	if err := (Config{SampleInterval: -1}).Validate(); err == nil {
		t.Error("negative sample interval must fail validation")
	}
	if err := (Config{Enabled: true}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if tel := New(Config{Enabled: true, TraceCap: -1}); tel.Tracer() != nil {
		t.Error("negative TraceCap must disable the tracer")
	}
}

// TestEnterECC checks the origin-sensitive switch: only a host-origin
// scope moves to ECC; daemon origins keep their attribution.
func TestEnterECC(t *testing.T) {
	tel := New(Config{Enabled: true})
	prev := tel.EnterECC()
	if prev != OriginHost || tel.origin != OriginECC {
		t.Errorf("host scope: EnterECC gave prev=%v origin=%v", prev, tel.origin)
	}
	tel.ExitOrigin(prev)

	outer := tel.EnterOrigin(OriginGC)
	prev = tel.EnterECC()
	if prev != OriginGC || tel.origin != OriginGC {
		t.Errorf("gc scope: EnterECC gave prev=%v origin=%v, want GC kept", prev, tel.origin)
	}
	tel.ExitOrigin(prev)
	tel.ExitOrigin(outer)
	if tel.origin != OriginHost {
		t.Errorf("origin not restored: %v", tel.origin)
	}
}

// TestRegistryCounterDedupe checks that (name, labels) identifies one
// counter regardless of how often it is requested.
func TestRegistryCounterDedupe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops", "h", Labels{"chip": "1"})
	b := r.Counter("ops", "h", Labels{"chip": "1"})
	c := r.Counter("ops", "h", Labels{"chip": "2"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if a == c {
		t.Error("distinct labels share a counter")
	}
	a.Inc()
	a.Add(4)
	a.Add(-100)
	if b.Value() != 5 {
		t.Errorf("counter value %d, want 5 (negative Add ignored)", b.Value())
	}
}

// TestLabelsRender checks deterministic sorted rendering.
func TestLabelsRender(t *testing.T) {
	got := Labels{"b": "2", "a": "1"}.render()
	if got != `{a="1",b="2"}` {
		t.Errorf("render = %s", got)
	}
	if (Labels{}).render() != "" {
		t.Error("empty labels must render empty")
	}
}

// TestSeriesRingWrap checks the time-series ring: bounded retention,
// oldest-first order after wrapping.
func TestSeriesRingWrap(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "h", nil)
	const ringCap = 8
	for i := 1; i <= 20; i++ {
		r.sample(ssd.Time(i), ringCap)
	}
	rows := r.Series()
	if len(rows) != ringCap {
		t.Fatalf("ring holds %d rows, want %d", len(rows), ringCap)
	}
	for i, row := range rows {
		if want := ssd.Time(13 + i); row.T != want {
			t.Errorf("row %d has time %d, want %d (oldest-first)", i, row.T, want)
		}
	}
}

// TestRegistryColumnFreeze checks that registrations after the first
// sample do not skew existing rows: columns and row widths stay in sync.
func TestRegistryColumnFreeze(t *testing.T) {
	r := NewRegistry()
	r.Counter("early", "h", nil)
	r.sample(1, 16)
	r.Counter("late", "h", nil)
	r.Gauge("late_gauge", "h", nil, func(ssd.Time) float64 { return 1 })
	r.sample(2, 16)
	cols := r.SeriesColumns()
	for _, row := range r.Series() {
		if len(row.Values) != len(cols) {
			t.Fatalf("row width %d, columns %d", len(row.Values), len(cols))
		}
	}
	if len(cols) != 1 || cols[0] != "early" {
		t.Errorf("columns = %v, want the frozen pre-sample set", cols)
	}
}

// TestSampleCadence checks that rows land at most once per interval and
// that a long idle gap does not backfill a row per missed tick.
func TestSampleCadence(t *testing.T) {
	tel := New(Config{Enabled: true, SampleInterval: 10})
	tel.Sample(1) // first observation establishes the clock and samples once
	for now := ssd.Time(2); now < 8; now++ {
		tel.Sample(now) // within the interval: no new rows
	}
	if n := len(tel.Registry().Series()); n != 1 {
		t.Fatalf("%d rows inside one interval, want 1", n)
	}
	tel.Sample(1000) // long gap: exactly one catch-up row, not one per missed tick
	if n := len(tel.Registry().Series()); n != 2 {
		t.Fatalf("%d rows after gap, want 2", n)
	}
	tel.Sample(1000) // same instant again: the tick has advanced past it
	if n := len(tel.Registry().Series()); n != 2 {
		t.Fatalf("%d rows, want 2 (sampling clock must advance past the gap)", n)
	}
}

// testObservation builds a plausible stamped op.
func testObservation(kind ssd.OpKind, at ssd.Time) ssd.OpObservation {
	return ssd.OpObservation{
		Kind: kind, Chip: 0, Channel: 0,
		Issue: at, Start: at, Transfer: 2, Cell: 10, Done: at + 12,
	}
}

// TestTracerRingBounded checks the tracer ring: retention bounded by
// TraceCap, dropped events counted, metadata track names always present.
func TestTracerRingBounded(t *testing.T) {
	tel := New(Config{Enabled: true, TraceCap: 16})
	tel.Attach(ssd.DefaultGeometry())
	for i := 0; i < 100; i++ {
		tel.ObserveOp(testObservation(ssd.OpRead, ssd.Time(i*20)))
	}
	tr := tel.Tracer()
	if tr.Dropped() == 0 {
		t.Error("overflowing the ring dropped nothing")
	}
	events := tr.Events()
	meta, spans := 0, 0
	for _, e := range events {
		if e.Ph == "M" {
			meta++
		} else {
			spans++
		}
	}
	if spans > 16 {
		t.Errorf("%d span events retained, cap is 16", spans)
	}
	if meta == 0 {
		t.Error("metadata track names missing after wrap")
	}
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Errorf("wrapped trace fails schema: %v", err)
	}
	if !strings.Contains(buf.String(), "dropped_events") {
		t.Error("trace with drops must record dropped_events in otherData")
	}
}

// TestValidateTraceJSONRejects drives the schema checker over the
// malformed shapes it must catch.
func TestValidateTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"no array":     `{"displayTimeUnit":"ms"}`,
		"empty array":  `{"traceEvents":[]}`,
		"no name":      `{"traceEvents":[{"ph":"X","ts":1}]}`,
		"no phase":     `{"traceEvents":[{"name":"a"}]}`,
		"bad phase":    `{"traceEvents":[{"name":"a","ph":"Z"}]}`,
		"negative ts":  `{"traceEvents":[{"name":"a","ph":"X","ts":-5}]}`,
		"X without ts": `{"traceEvents":[{"name":"a","ph":"X"}]}`,
		"string ts":    `{"traceEvents":[{"name":"a","ph":"X","ts":"soon"}]}`,
		"negative pid": `{"traceEvents":[{"name":"a","ph":"M","pid":-1}]}`,
		"number name":  `{"traceEvents":[{"name":7,"ph":"M"}]}`,
	}
	for label, data := range cases {
		if err := ValidateTraceJSON([]byte(data)); err == nil {
			t.Errorf("%s: accepted %s", label, data)
		}
	}
	ok := `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":2,"pid":0,"tid":0}]}`
	if err := ValidateTraceJSON([]byte(ok)); err != nil {
		t.Errorf("minimal valid trace rejected: %v", err)
	}
}

// TestValidatePrometheusTextRejects drives the exposition-format checker.
func TestValidatePrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"comment only": "# HELP x y\n# TYPE x counter\n",
		"bad value":    "x{a=\"1\"} banana\n",
		"no value":     "lonely_metric\n",
		"bad type":     "# TYPE x rainbow\nx 1\n",
		"bad labels":   "x{a=\"1\" 4\n",
	}
	for label, data := range cases {
		if err := ValidatePrometheusText([]byte(data)); err == nil {
			t.Errorf("%s: accepted %q", label, data)
		}
	}
	ok := "# HELP x y\n# TYPE x counter\nx{a=\"1\"} 4\nplain 2.5\n"
	if err := ValidatePrometheusText([]byte(ok)); err != nil {
		t.Errorf("valid scrape rejected: %v", err)
	}
}

// TestAttributionScope checks one request scope end to end: host op wait
// splits into queue vs GC-blocked, ECC charges full duration, and the
// residual lands in ctrl.
func TestAttributionScope(t *testing.T) {
	tel := New(Config{Enabled: true})
	tel.BeginRequest(ReqWrite, 100)
	// A GC program holds the chip for 30µs before the host's own program.
	gcPrev := tel.EnterOrigin(OriginGC)
	tel.ObserveOp(ssd.OpObservation{Kind: ssd.OpProgram, Issue: 100, Start: 100, Transfer: 5, Cell: 25, Done: 130})
	tel.ExitOrigin(gcPrev)
	// Host program issued at 100 waits to 130 behind the GC op.
	tel.ObserveOp(ssd.OpObservation{Kind: ssd.OpProgram, Issue: 100, Start: 130, Transfer: 5, Cell: 25, Done: 160})
	// An ECC retry read chains after it.
	eccPrev := tel.EnterECC()
	tel.ObserveOp(ssd.OpObservation{Kind: ssd.OpRead, Issue: 160, Start: 160, Transfer: 2, Cell: 8, Done: 170})
	tel.ExitOrigin(eccPrev)
	var got Request
	tel.OnRequestEnd = func(r Request) { got = r }
	tel.EndRequest(182) // 12µs of controller time on top

	if got.Phases[PhaseGCBlocked] != 30 {
		t.Errorf("gc-blocked = %d, want 30", got.Phases[PhaseGCBlocked])
	}
	if got.Phases[PhaseQueue] != 0 {
		t.Errorf("queue = %d, want 0 (all wait was GC)", got.Phases[PhaseQueue])
	}
	if got.Phases[PhaseBus] != 5 || got.Phases[PhaseChip] != 25 {
		t.Errorf("bus/chip = %d/%d, want 5/25", got.Phases[PhaseBus], got.Phases[PhaseChip])
	}
	if got.Phases[PhaseECC] != 10 {
		t.Errorf("ecc = %d, want 10", got.Phases[PhaseECC])
	}
	if got.Phases[PhaseCtrl] != 12 {
		t.Errorf("ctrl = %d, want 12", got.Phases[PhaseCtrl])
	}
	if got.FlashOps != 3 {
		t.Errorf("flash ops = %d, want 3", got.FlashOps)
	}
	var sum ssd.Time
	for _, p := range got.Phases {
		sum += p
	}
	if sum != got.Latency() || sum != 82 {
		t.Errorf("phases sum to %d, latency %d, want 82", sum, got.Latency())
	}
}

// TestNowClock checks the exporters' "as of" clock follows every
// observation channel.
func TestNowClock(t *testing.T) {
	tel := New(Config{Enabled: true})
	tel.ObserveOp(testObservation(ssd.OpRead, 50))
	if tel.Now() != 62 {
		t.Errorf("Now = %d after op done at 62", tel.Now())
	}
	tel.BeginRequest(ReqRead, 70)
	tel.EndRequest(90)
	if tel.Now() != 90 {
		t.Errorf("Now = %d after request done at 90", tel.Now())
	}
	tel.Sample(120)
	if tel.Now() != 120 {
		t.Errorf("Now = %d after sample at 120", tel.Now())
	}
}
