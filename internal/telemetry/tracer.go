package telemetry

import (
	"fmt"

	"zombiessd/internal/ssd"
)

// Track pids of the emitted timeline. Perfetto groups events by (pid, tid):
// host requests get one track per op kind, flash chips one track each, and
// the background daemons (GC, scrub, recovery) one track each.
const (
	PidHost    = 0
	PidFlash   = 1
	PidDaemons = 2
)

// Daemon track tids under PidDaemons.
const (
	TidGC       = 0
	TidScrub    = 1
	TidRecovery = 2
)

// Event is one Chrome trace-event (the JSON array format Perfetto and
// chrome://tracing consume). Only complete events ("X") and metadata
// events ("M") are emitted.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds (simulated time)
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer retains the most recent flash-op and span events in a bounded
// ring, so tracing a long run holds memory constant: when the ring fills,
// the oldest events are overwritten — the exported timeline is the tail of
// the run, which is the part an investigation usually wants.
type Tracer struct {
	meta    []Event // track-naming metadata, emitted once, never evicted
	ring    []Event
	head    int
	wrapped bool
	dropped int64
}

func newTracer(cap int) *Tracer {
	return &Tracer{ring: make([]Event, 0, cap)}
}

// attach names the tracks for the drive's geometry.
func (tr *Tracer) attach(geo ssd.Geometry) {
	if tr == nil {
		return
	}
	name := func(pid, tid int, what, n string) {
		tr.meta = append(tr.meta,
			Event{Name: what, Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": n}})
	}
	name(PidHost, 0, "process_name", "host requests")
	name(PidFlash, 0, "process_name", "flash chips")
	name(PidDaemons, 0, "process_name", "daemons")
	name(PidHost, int(ReqRead), "thread_name", "reads")
	name(PidHost, int(ReqWrite), "thread_name", "writes")
	for c := 0; c < geo.TotalChips(); c++ {
		name(PidFlash, c, "thread_name",
			fmt.Sprintf("chip %d (ch %d)", c, geo.ChannelOfChip(c)))
	}
	name(PidDaemons, TidGC, "thread_name", "garbage collection")
	name(PidDaemons, TidScrub, "thread_name", "scrub patrol")
	name(PidDaemons, TidRecovery, "thread_name", "crash recovery")
}

// push adds one event to the ring, evicting the oldest when full.
func (tr *Tracer) push(e Event) {
	if tr == nil {
		return
	}
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, e)
		return
	}
	tr.ring[tr.head] = e
	tr.head = (tr.head + 1) % len(tr.ring)
	tr.wrapped = true
	tr.dropped++
}

// emitOp places one flash operation on its chip's track. The queue wait,
// when present, is exposed in args so Perfetto can surface it.
func (tr *Tracer) emitOp(origin Origin, op ssd.OpObservation) {
	if tr == nil {
		return
	}
	e := Event{
		Name: op.Kind.String(),
		Cat:  origin.String(),
		Ph:   "X",
		Ts:   int64(op.Start),
		Dur:  int64(op.Done - op.Start),
		Pid:  PidFlash,
		Tid:  op.Chip,
	}
	if wait := op.Start - op.Issue; wait > 0 {
		e.Args = map[string]any{"wait_us": int64(wait)}
	}
	tr.push(e)
}

// emitRequest places one finished host request on the read or write track
// with its phase decomposition in args.
func (tr *Tracer) emitRequest(req Request) {
	if tr == nil {
		return
	}
	args := make(map[string]any, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		if req.Phases[p] != 0 {
			args[p.String()+"_us"] = int64(req.Phases[p])
		}
	}
	tr.push(Event{
		Name: req.Op.String(),
		Cat:  "request",
		Ph:   "X",
		Ts:   int64(req.Arrival),
		Dur:  int64(req.Latency()),
		Pid:  PidHost,
		Tid:  int(req.Op),
		Args: args,
	})
}

// emitSpan places a daemon span (GC cycle, patrol visit, recovery scan).
func (tr *Tracer) emitSpan(origin Origin, name string, start, end ssd.Time, args map[string]any) {
	if tr == nil {
		return
	}
	tid := TidGC
	switch origin {
	case OriginScrub:
		tid = TidScrub
	case OriginRecovery:
		tid = TidRecovery
	}
	if end < start {
		end = start
	}
	tr.push(Event{
		Name: name,
		Cat:  origin.String(),
		Ph:   "X",
		Ts:   int64(start),
		Dur:  int64(end - start),
		Pid:  PidDaemons,
		Tid:  tid,
		Args: args,
	})
}

// Events returns the retained events: metadata first, then the ring's
// events oldest-first.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	out := make([]Event, 0, len(tr.meta)+len(tr.ring))
	out = append(out, tr.meta...)
	if tr.wrapped {
		out = append(out, tr.ring[tr.head:]...)
		out = append(out, tr.ring[:tr.head]...)
	} else {
		out = append(out, tr.ring...)
	}
	return out
}

// Dropped returns how many events the bounded ring has evicted.
func (tr *Tracer) Dropped() int64 {
	if tr == nil {
		return 0
	}
	return tr.dropped
}
