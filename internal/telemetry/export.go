package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"zombiessd/internal/ssd"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms with cumulative le buckets, _sum and _count.
// Gauges are evaluated at the simulated instant now.
func (t *Telemetry) WritePrometheus(w io.Writer, now ssd.Time) error {
	if t == nil {
		return fmt.Errorf("telemetry: disabled, nothing to export")
	}
	bw := bufio.NewWriter(w)
	r := t.reg

	headered := make(map[string]bool)
	header := func(name, help, typ string) {
		if headered[name] {
			return
		}
		headered[name] = true
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	for _, c := range r.counters {
		header(c.name, c.help, "counter")
		fmt.Fprintf(bw, "%s%s %d\n", c.name, c.labels, c.c.Value())
	}
	for _, g := range r.gauges {
		header(g.name, g.help, "gauge")
		fmt.Fprintf(bw, "%s%s %s\n", g.name, g.labels,
			strconv.FormatFloat(g.f(now), 'g', -1, 64))
	}
	for _, h := range r.hists {
		header(h.name, h.help, "histogram")
		labelsWithLE := func(le string) string {
			if h.labels == "" {
				return fmt.Sprintf(`{le="%s"}`, le)
			}
			return h.labels[:len(h.labels)-1] + fmt.Sprintf(`,le="%s"}`, le)
		}
		var cum int64
		h.h.Buckets(func(lo, hi, count int64) bool {
			cum += count
			if hi != math.MaxInt64 {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", h.name, labelsWithLE(
					strconv.FormatInt(hi, 10)), cum)
			}
			return true
		})
		fmt.Fprintf(bw, "%s_bucket%s %d\n", h.name, labelsWithLE("+Inf"), h.h.Count())
		fmt.Fprintf(bw, "%s_sum%s %d\n", h.name, h.labels, h.h.Sum())
		fmt.Fprintf(bw, "%s_count%s %d\n", h.name, h.labels, h.h.Count())
	}
	return bw.Flush()
}

// WriteCSV renders the sampled time series: a header row of column names
// (time_us first), then one row per retained sample.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("telemetry: disabled, nothing to export")
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("time_us")
	for _, col := range t.reg.SeriesColumns() {
		bw.WriteByte(',')
		bw.WriteString(csvQuote(col))
	}
	bw.WriteByte('\n')
	for _, row := range t.reg.Series() {
		fmt.Fprintf(bw, "%d", int64(row.T))
		for _, v := range row.Values {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// csvQuote wraps a field in double quotes when it contains a comma or
// quote (metric labels do: they are rendered {a="b"}).
func csvQuote(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}

// traceFile is the JSON object format of the Chrome trace-event spec.
type traceFile struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTrace renders the retained timeline as Chrome trace-event JSON
// (object form, displayTimeUnit ms), loadable in Perfetto or
// chrome://tracing.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	if t == nil || t.tracer == nil {
		return fmt.Errorf("telemetry: tracer disabled, nothing to export")
	}
	events := t.tracer.Events()
	// Chrome sorts internally, but a sorted file diffs and validates more
	// pleasantly. Metadata events (ts 0) stay in front.
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Ts < events[j].Ts
	})
	f := traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if d := t.tracer.Dropped(); d > 0 {
		f.OtherData = map[string]any{"dropped_events": d}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ValidateTraceJSON checks data against the Chrome trace-event schema
// subset this tracer emits: a traceEvents array whose entries carry a
// name, a known phase, non-negative ts/pid/tid, and a non-negative dur on
// complete events. Shared by the unit tests and cmd/tracecheck.
func ValidateTraceJSON(data []byte) error {
	var f struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: traceEvents is empty")
	}
	for i, e := range f.TraceEvents {
		var name, ph string
		if err := requireString(e, "name", &name); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := requireString(e, "ph", &ph); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		switch ph {
		case "X", "M", "B", "E", "i", "C":
		default:
			return fmt.Errorf("trace: event %d (%s): unknown phase %q", i, name, ph)
		}
		var ts, dur, pid, tid float64
		if err := optionalNumber(e, "ts", &ts); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if err := optionalNumber(e, "dur", &dur); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if err := optionalNumber(e, "pid", &pid); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if err := optionalNumber(e, "tid", &tid); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if ts < 0 || dur < 0 || pid < 0 || tid < 0 {
			return fmt.Errorf("trace: event %d (%s): negative ts/dur/pid/tid", i, name)
		}
		if ph == "X" {
			if _, ok := e["ts"]; !ok {
				return fmt.Errorf("trace: event %d (%s): complete event without ts", i, name)
			}
		}
	}
	return nil
}

// ValidatePrometheusText checks data against the Prometheus text
// exposition format subset WritePrometheus emits: # HELP / # TYPE comment
// lines, and sample lines of the form name[{labels}] value with a parsable
// value. Shared by the unit tests and cmd/tracecheck.
func ValidatePrometheusText(data []byte) error {
	lines := strings.Split(string(data), "\n")
	samples := 0
	for i, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				return fmt.Errorf("prometheus: line %d: malformed comment %q", i+1, line)
			}
			if f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prometheus: line %d: unknown type %q", i+1, f[3])
				}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("prometheus: line %d: no value on sample %q", i+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		if name == "" {
			return fmt.Errorf("prometheus: line %d: empty metric name", i+1)
		}
		if open := strings.IndexByte(name, '{'); open >= 0 && !strings.HasSuffix(name, "}") {
			return fmt.Errorf("prometheus: line %d: unterminated label set in %q", i+1, name)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("prometheus: line %d: bad value %q", i+1, val)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("prometheus: no samples")
	}
	return nil
}

func requireString(e map[string]json.RawMessage, key string, dst *string) error {
	raw, ok := e[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("%q is not a string: %w", key, err)
	}
	return nil
}

func optionalNumber(e map[string]json.RawMessage, key string, dst *float64) error {
	raw, ok := e[key]
	if !ok {
		return nil
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("%q is not a number: %w", key, err)
	}
	return nil
}
