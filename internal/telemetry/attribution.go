package telemetry

import (
	"fmt"

	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
)

// Phase is one component of a host request's end-to-end latency.
type Phase uint8

// The attribution phases. Every request's latency decomposes exactly as
//
//	latency = Queue + GCBlocked + Bus + Chip + ECC + Ctrl + MapMiss + MapWriteback
//
// Queue is time the request's flash operations waited behind work that was
// already on their chips/channels; GCBlocked is the share of that wait
// covered by garbage-collection operations issued while servicing this
// request (the stall the paper's tail-latency figures attack); Bus is
// channel transfer time; Chip is cell read/program time; ECC is the full
// cost of retry-ladder reads; Ctrl is everything off the flash path —
// controller hashing, DRAM buffer acknowledgements, zero-cost no-ops.
// MapMiss is the full cost of translation-page reads that faulted a DFTL
// CMT frame in on the request's critical path, and MapWriteback the full
// cost of dirty-frame translation-page programs forced by those faults;
// both are zero unless the flash-resident mapping table is enabled.
const (
	PhaseQueue Phase = iota
	PhaseGCBlocked
	PhaseBus
	PhaseChip
	PhaseECC
	PhaseCtrl
	PhaseMapMiss
	PhaseMapWriteback
	NumPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhaseGCBlocked:
		return "gc-blocked"
	case PhaseBus:
		return "bus"
	case PhaseChip:
		return "chip"
	case PhaseECC:
		return "ecc-retry"
	case PhaseCtrl:
		return "ctrl"
	case PhaseMapMiss:
		return "map-miss"
	case PhaseMapWriteback:
		return "map-writeback"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// RequestOp distinguishes reads from writes in the per-phase histograms.
type RequestOp uint8

// Request operations.
const (
	ReqRead RequestOp = iota
	ReqWrite
	numReqOps
)

// String names the request op.
func (o RequestOp) String() string {
	if o == ReqRead {
		return "read"
	}
	return "write"
}

// Request is one finished host request's attribution record. The phase
// components sum exactly to Done−Arrival (clamped at zero).
type Request struct {
	Op       RequestOp
	Arrival  ssd.Time
	Done     ssd.Time
	Phases   [NumPhases]ssd.Time
	FlashOps int // operations observed while servicing it (any origin)
}

// Latency returns the request's end-to-end latency.
func (r Request) Latency() ssd.Time {
	if r.Done < r.Arrival {
		return 0
	}
	return r.Done - r.Arrival
}

// Attribution accumulates per-phase latency histograms for reads and
// writes, plus exact running totals used by the sum-property checks.
type Attribution struct {
	hists [numReqOps][NumPhases]stats.Histogram
	e2e   [numReqOps]stats.Histogram

	// Totals: per-phase sums and the end-to-end sum, which must match
	// exactly (observability must account for every microsecond).
	phaseSum [NumPhases]int64
	latSum   int64
	requests int64

	// Per-tenant attribution (multi-tenant engine runs only; see
	// DeclareTenants). Empty for single-submitter runs, so their registry
	// contents and histograms stay byte-identical to the pre-tenant layer.
	tenants []tenantAttr

	// Open request scope.
	open        bool
	op          RequestOp
	arrival     ssd.Time
	hostWait    ssd.Time // queue wait of host-origin ops (incl. GC share)
	busT        ssd.Time
	chipT       ssd.Time
	eccT        ssd.Time
	mapMissT    ssd.Time // CMT fill reads chained into the request
	mapWbT      ssd.Time // dirty-frame writeback programs chained in
	gcHold      ssd.Time // chip time GC ops occupied during this request
	dispatchLag ssd.Time // arbiter hold: dispatch − arrival (0 single-tenant)
	tenant      int      // owning tenant, -1 when untagged
	flashOps    int
}

// tenantAttr is one tenant's slice of the attribution state.
type tenantAttr struct {
	name     string
	e2e      [numReqOps]stats.Histogram
	phaseSum [NumPhases]int64
	latSum   int64
	requests int64
}

func newAttribution() *Attribution { return &Attribution{} }

// register exposes the per-phase histograms through the registry.
func (a *Attribution) register(reg *Registry) {
	for op := RequestOp(0); op < numReqOps; op++ {
		reg.Histogram("request_latency_us", "end-to-end host request latency",
			Labels{"op": op.String()}, &a.e2e[op])
		for p := Phase(0); p < NumPhases; p++ {
			reg.Histogram("request_phase_us", "host request latency by phase",
				Labels{"op": op.String(), "phase": p.String()}, &a.hists[op][p])
		}
	}
}

// begin opens a request scope.
func (a *Attribution) begin(op RequestOp, arrival ssd.Time) {
	a.open = true
	a.op = op
	a.arrival = arrival
	a.hostWait, a.busT, a.chipT, a.eccT, a.gcHold = 0, 0, 0, 0, 0
	a.mapMissT, a.mapWbT = 0, 0
	a.dispatchLag = 0
	a.tenant = -1
	a.flashOps = 0
}

// declareTenants sizes the per-tenant state and registers each tenant's
// end-to-end histograms under a tenant label.
func (a *Attribution) declareTenants(names []string, reg *Registry) {
	a.tenants = make([]tenantAttr, len(names))
	for i, name := range names {
		a.tenants[i].name = name
		for op := RequestOp(0); op < numReqOps; op++ {
			reg.Histogram("tenant_request_latency_us",
				"end-to-end host request latency by tenant",
				Labels{"op": op.String(), "tenant": name}, &a.tenants[i].e2e[op])
		}
	}
}

// beginTenant opens a request scope tagged with its tenant and the
// engine's dispatch instant. The arbiter hold (dispatch − arrival) is
// charged to the queue phase when the scope closes, keeping the exact-sum
// property; a zero hold reduces to begin.
func (a *Attribution) beginTenant(op RequestOp, arrival, dispatch ssd.Time, tenant int) {
	a.begin(op, arrival)
	if dispatch > arrival {
		a.dispatchLag = dispatch - arrival
	}
	if tenant >= 0 && tenant < len(a.tenants) {
		a.tenant = tenant
	}
}

// observeOp folds one stamped flash operation into the open scope. Ops
// outside any scope (preconditioning, recovery) or from non-request
// origins contribute to the scope only where they actually delay it.
func (a *Attribution) observeOp(origin Origin, op ssd.OpObservation) {
	if !a.open {
		return
	}
	a.flashOps++
	switch origin {
	case OriginHost:
		// On the request's critical path: its ops chain issue→done.
		a.hostWait += op.Start - op.Issue
		a.busT += op.Transfer
		a.chipT += op.Cell
	case OriginECC:
		// Retry-ladder reads chain into the critical path too; charge
		// their whole duration (wait + transfer + cell) to ECC.
		a.eccT += op.Done - op.Issue
	case OriginMapMiss:
		// Translation-page fills chain ahead of the host op exactly like
		// ECC retries: whole duration charged to the map-miss phase.
		a.mapMissT += op.Done - op.Issue
	case OriginMapWriteback:
		// Dirty-frame writebacks forced by a fill chain in the same way.
		a.mapWbT += op.Done - op.Issue
	case OriginGC:
		// GC ops are stamped at the request's clock and occupy the chip
		// ahead of the request's own program — their cost surfaces as the
		// host op's queue wait. Track the hold so end() can attribute it.
		a.gcHold += op.Done - op.Start
	default:
		// Scrub and flush traffic runs in the background of the request
		// (stamped into idle windows or off the ack path); any interference
		// it causes already shows up as host-op queue wait.
	}
}

// end closes the scope and returns the finished record.
func (a *Attribution) end(done ssd.Time) Request {
	a.open = false
	req := Request{Op: a.op, Arrival: a.arrival, Done: done, FlashOps: a.flashOps}
	lat := req.Latency()

	gcBlocked := a.gcHold
	if gcBlocked > a.hostWait {
		gcBlocked = a.hostWait
	}
	queue := a.hostWait - gcBlocked + a.dispatchLag
	onFlash := queue + gcBlocked + a.busT + a.chipT + a.eccT + a.mapMissT + a.mapWbT
	ctrl := lat - onFlash
	if ctrl < 0 {
		// Flash work charged to the scope exceeded the visible latency
		// (possible only if a device ever completes before its last chained
		// op, which none do today). Absorb into queue so the sum stays
		// exact rather than inventing negative controller time.
		queue += ctrl
		ctrl = 0
	}
	req.Phases[PhaseQueue] = queue
	req.Phases[PhaseGCBlocked] = gcBlocked
	req.Phases[PhaseBus] = a.busT
	req.Phases[PhaseChip] = a.chipT
	req.Phases[PhaseECC] = a.eccT
	req.Phases[PhaseCtrl] = ctrl
	req.Phases[PhaseMapMiss] = a.mapMissT
	req.Phases[PhaseMapWriteback] = a.mapWbT

	a.e2e[a.op].Add(int64(lat))
	a.latSum += int64(lat)
	a.requests++
	for p := Phase(0); p < NumPhases; p++ {
		a.hists[a.op][p].Add(int64(req.Phases[p]))
		a.phaseSum[p] += int64(req.Phases[p])
	}
	if a.tenant >= 0 {
		ta := &a.tenants[a.tenant]
		ta.e2e[a.op].Add(int64(lat))
		ta.latSum += int64(lat)
		ta.requests++
		for p := Phase(0); p < NumPhases; p++ {
			ta.phaseSum[p] += int64(req.Phases[p])
		}
	}
	return req
}

// Tenants returns how many tenants were declared.
func (a *Attribution) Tenants() int { return len(a.tenants) }

// TenantName returns tenant t's label.
func (a *Attribution) TenantName(t int) string { return a.tenants[t].name }

// TenantE2E returns tenant t's end-to-end latency histogram for op.
func (a *Attribution) TenantE2E(t int, op RequestOp) *stats.Histogram {
	return &a.tenants[t].e2e[op]
}

// TenantTotals returns tenant t's per-phase sums, end-to-end sum and
// request count. The phase sums add up to the end-to-end sum exactly,
// tenant by tenant.
func (a *Attribution) TenantTotals(t int) (phases [NumPhases]int64, latency, requests int64) {
	ta := &a.tenants[t]
	return ta.phaseSum, ta.latSum, ta.requests
}

// hist returns the histogram for (op, phase).
func (a *Attribution) hist(op RequestOp, p Phase) *stats.Histogram {
	return &a.hists[op][p]
}

// E2E returns the end-to-end latency histogram for op.
func (a *Attribution) E2E(op RequestOp) *stats.Histogram { return &a.e2e[op] }

// Requests returns how many request scopes have closed.
func (a *Attribution) Requests() int64 { return a.requests }

// Totals returns the per-phase latency sums and the end-to-end sum. The
// phase sums always add up to the end-to-end sum exactly.
func (a *Attribution) Totals() (phases [NumPhases]int64, latency int64) {
	return a.phaseSum, a.latSum
}

// String renders mean microseconds per phase for reads and writes.
func (a *Attribution) String() string {
	render := func(op RequestOp) string {
		n := a.e2e[op].Count()
		if n == 0 {
			return fmt.Sprintf("%-5s n=0", op)
		}
		s := fmt.Sprintf("%-5s n=%d mean=%.1fµs:", op, n, a.e2e[op].Mean())
		for p := Phase(0); p < NumPhases; p++ {
			s += fmt.Sprintf(" %s=%.1f", p, a.hists[op][p].Mean())
		}
		return s
	}
	return render(ReqRead) + "\n" + render(ReqWrite)
}
