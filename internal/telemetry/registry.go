package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
)

// Labels attaches dimensions (chip, channel, component, phase, …) to a
// metric. Rendered in sorted key order so output is deterministic.
type Labels map[string]string

// render formats labels Prometheus-style: {a="1",b="2"}; empty labels
// render as the empty string.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, l[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v += delta
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// GaugeFunc computes a gauge's value at the simulated instant now.
type GaugeFunc func(now ssd.Time) float64

// metricKey identifies one metric instance in the registry.
type metricKey struct {
	name   string
	labels string // rendered form, for map identity
}

// counterEntry, gaugeEntry and histEntry are the registry's typed rows.
type counterEntry struct {
	name, help, labels string
	c                  *Counter
}

type gaugeEntry struct {
	name, help, labels string
	f                  GaugeFunc
}

type histEntry struct {
	name, help, labels string
	h                  *stats.Histogram
}

// SeriesRow is one time-series sample: the simulated time plus one value
// per column (gauges first, then counters, in registration order).
type SeriesRow struct {
	T      ssd.Time
	Values []float64
}

// Registry holds the named metrics of one telemetry instance and the
// time-series ring they are sampled into. Registration order is preserved
// so exports and series columns are deterministic.
type Registry struct {
	counters []counterEntry
	gauges   []gaugeEntry
	hists    []histEntry
	index    map[metricKey]int // into counters

	series      []SeriesRow
	seriesHead  int  // next write position once the ring wrapped
	wrapped     bool // the ring has overwritten its oldest row
	frozen      bool // column set locked by the first sample
	gaugeCols   int
	counterCols int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[metricKey]int)}
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Help is recorded on creation only.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	key := metricKey{name, labels.render()}
	if i, ok := r.index[key]; ok {
		return r.counters[i].c
	}
	c := &Counter{}
	r.index[key] = len(r.counters)
	r.counters = append(r.counters, counterEntry{name, help, key.labels, c})
	return c
}

// Gauge registers a callback gauge. Gauges are evaluated at sample time
// and at export time; they are never stored between samples.
func (r *Registry) Gauge(name, help string, labels Labels, f GaugeFunc) {
	r.gauges = append(r.gauges, gaugeEntry{name, help, labels.render(), f})
}

// Histogram registers an externally owned histogram for export.
func (r *Registry) Histogram(name, help string, labels Labels, h *stats.Histogram) {
	r.hists = append(r.hists, histEntry{name, help, labels.render(), h})
}

// SeriesColumns names the time-series columns in order: every gauge, then
// every counter, each as name plus rendered labels. After the first
// sample the set is frozen to the columns the rows actually hold.
func (r *Registry) SeriesColumns() []string {
	ng, nc := len(r.gauges), len(r.counters)
	if r.frozen {
		ng, nc = r.gaugeCols, r.counterCols
	}
	cols := make([]string, 0, ng+nc)
	for _, g := range r.gauges[:ng] {
		cols = append(cols, g.name+g.labels)
	}
	for _, c := range r.counters[:nc] {
		cols = append(cols, c.name+c.labels)
	}
	return cols
}

// Series returns the retained samples oldest-first.
func (r *Registry) Series() []SeriesRow {
	if !r.wrapped {
		return r.series
	}
	out := make([]SeriesRow, 0, len(r.series))
	out = append(out, r.series[r.seriesHead:]...)
	out = append(out, r.series[:r.seriesHead]...)
	return out
}

// sample appends one row to the ring, evaluating every gauge at now and
// snapshotting every counter. The column set freezes at the first sample
// so late registrations cannot skew rows.
func (r *Registry) sample(now ssd.Time, cap int) {
	if !r.frozen {
		r.frozen = true
		r.gaugeCols = len(r.gauges)
		r.counterCols = len(r.counters)
	}
	row := SeriesRow{T: now, Values: make([]float64, 0, r.gaugeCols+r.counterCols)}
	for _, g := range r.gauges[:r.gaugeCols] {
		row.Values = append(row.Values, g.f(now))
	}
	for _, c := range r.counters[:r.counterCols] {
		row.Values = append(row.Values, float64(c.c.Value()))
	}
	if cap > 0 && len(r.series) >= cap {
		r.series[r.seriesHead] = row
		r.seriesHead = (r.seriesHead + 1) % len(r.series)
		r.wrapped = true
		return
	}
	r.series = append(r.series, row)
}
