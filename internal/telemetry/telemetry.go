// Package telemetry is the simulator's observability layer: a registry of
// named counters, gauges and latency histograms sampled on simulated time
// into a bounded time-series ring, per-request latency attribution that
// decomposes every host request's completion time into queue-wait,
// GC-blocked, bus, chip, ECC-retry and controller components, and a
// flash-op timeline tracer that emits Chrome trace-event JSON viewable in
// Perfetto.
//
// The layer is strictly side-effect-free: it observes times the simulator
// already computed and never feeds anything back, so attaching it cannot
// change a single simulated-time result — a discipline pinned by
// TestNoTelemetryBitIdentity. Every method is safe on a nil *Telemetry
// (the disabled state), so instrumented code needs no guards and a
// telemetry-off run costs one nil check per hook.
package telemetry

import (
	"fmt"

	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
)

// Origin classifies who issued a flash operation: the host request being
// serviced, the garbage collector, the ECC retry ladder, the background
// scrubber, a DRAM write-buffer eviction flush, the preconditioning fill,
// post-crash recovery, or the DFTL mapping cache (translation-page fills
// on CMT misses and dirty-frame writebacks).
type Origin uint8

// Operation origins.
const (
	OriginHost Origin = iota
	OriginGC
	OriginECC
	OriginScrub
	OriginFlush
	OriginPrecond
	OriginRecovery
	OriginMapMiss
	OriginMapWriteback
	numOrigins
)

// String names the origin (also the tracer's event category).
func (o Origin) String() string {
	switch o {
	case OriginHost:
		return "host"
	case OriginGC:
		return "gc"
	case OriginECC:
		return "ecc"
	case OriginScrub:
		return "scrub"
	case OriginFlush:
		return "flush"
	case OriginPrecond:
		return "precond"
	case OriginRecovery:
		return "recovery"
	case OriginMapMiss:
		return "map-miss"
	case OriginMapWriteback:
		return "map-writeback"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// DefaultSampleInterval is the simulated time between time-series samples
// when the config leaves it zero: 10 ms keeps a multi-second run to a few
// hundred rows.
const DefaultSampleInterval = 10 * ssd.Millisecond

// DefaultTraceCap bounds the tracer's event ring when the config leaves it
// zero. At ~100 bytes/event this is a few MB of retained timeline.
const DefaultTraceCap = 1 << 16

// DefaultSeriesCap bounds the time-series ring when the config leaves it
// zero.
const DefaultSeriesCap = 1 << 12

// Config parameterizes one telemetry instance.
type Config struct {
	// Enabled turns the layer on. A zero Config (or a nil *Telemetry)
	// observes nothing.
	Enabled bool

	// SampleInterval is the simulated time between time-series samples;
	// 0 means DefaultSampleInterval.
	SampleInterval ssd.Time

	// TraceCap bounds the tracer's retained events (a ring keeping the
	// most recent); 0 means DefaultTraceCap. Negative disables the tracer
	// while keeping the registry and attribution live.
	TraceCap int

	// SeriesCap bounds the time-series ring (most recent samples kept);
	// 0 means DefaultSeriesCap.
	SeriesCap int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SampleInterval < 0 {
		return fmt.Errorf("telemetry: sample interval must be ≥ 0, got %d", c.SampleInterval)
	}
	return nil
}

// WithDefaults returns c with zero fields filled in.
func (c Config) WithDefaults() Config {
	if c.SampleInterval == 0 {
		c.SampleInterval = DefaultSampleInterval
	}
	if c.TraceCap == 0 {
		c.TraceCap = DefaultTraceCap
	}
	if c.SeriesCap == 0 {
		c.SeriesCap = DefaultSeriesCap
	}
	return c
}

// Telemetry is one device's observability instance. It is not safe for
// concurrent use: it shares the simulator's single-goroutine device
// contract (parallel experiment arms each get their own instance).
type Telemetry struct {
	cfg    Config
	reg    *Registry
	attr   *Attribution
	tracer *Tracer

	origin Origin // origin applied to ops observed right now

	// Per-chip/channel counter vectors, resolved once at Attach.
	chipOps     []*Counter
	chipBusyUS  []*Counter
	channelOps  []*Counter
	originOps   [numOrigins][3]*Counter // [origin][OpKind]
	geoAttached bool

	// Sampling clock.
	nextSample ssd.Time
	// clock is the largest simulated time observed so far; exporters use
	// it to evaluate gauges "at the end of the run".
	clock ssd.Time

	// OnRequestEnd, when set, receives every finished host request's
	// attribution record (tests use it to check the exact-sum property).
	OnRequestEnd func(Request)
}

// New returns a Telemetry for cfg, or nil when cfg.Enabled is false — the
// nil instance is the canonical "off" state and every method accepts it.
func New(cfg Config) *Telemetry {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.WithDefaults()
	t := &Telemetry{
		cfg:  cfg,
		reg:  NewRegistry(),
		attr: newAttribution(),
	}
	if cfg.TraceCap > 0 {
		t.tracer = newTracer(cfg.TraceCap)
	}
	t.attr.register(t.reg)
	return t
}

// On reports whether t observes anything.
func (t *Telemetry) On() bool { return t != nil }

// Config returns the configuration with defaults applied (zero when off).
func (t *Telemetry) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// Registry returns the metrics registry, or nil when off.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Attribution returns the latency-attribution state, or nil when off.
func (t *Telemetry) Attribution() *Attribution {
	if t == nil {
		return nil
	}
	return t.attr
}

// Tracer returns the timeline tracer, or nil when off or trace-disabled.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Attach prepares the per-chip and per-channel counter vectors for geo and
// names the tracer's tracks. Called once by the device builder.
func (t *Telemetry) Attach(geo ssd.Geometry) {
	if t == nil || t.geoAttached {
		return
	}
	t.geoAttached = true
	chips := geo.TotalChips()
	t.chipOps = make([]*Counter, chips)
	t.chipBusyUS = make([]*Counter, chips)
	for c := 0; c < chips; c++ {
		lbl := Labels{"chip": fmt.Sprint(c)}
		t.chipOps[c] = t.reg.Counter("flash_chip_ops_total",
			"flash operations stamped per chip", lbl)
		t.chipBusyUS[c] = t.reg.Counter("flash_chip_busy_us_total",
			"chip-busy simulated microseconds per chip", lbl)
	}
	t.channelOps = make([]*Counter, geo.Channels)
	for ch := 0; ch < geo.Channels; ch++ {
		t.channelOps[ch] = t.reg.Counter("flash_channel_transfers_total",
			"page transfers per channel", Labels{"channel": fmt.Sprint(ch)})
	}
	for o := Origin(0); o < numOrigins; o++ {
		for k := ssd.OpRead; k <= ssd.OpErase; k++ {
			t.originOps[o][k] = t.reg.Counter("flash_ops_total",
				"flash operations by kind and origin",
				Labels{"kind": k.String(), "origin": o.String()})
		}
	}
	t.tracer.attach(geo)
}

// EnterOrigin sets the origin applied to subsequently observed operations
// and returns the previous one; callers restore it with ExitOrigin. The
// pattern is
//
//	prev := tel.EnterOrigin(telemetry.OriginGC)
//	defer tel.ExitOrigin(prev)
func (t *Telemetry) EnterOrigin(o Origin) Origin {
	if t == nil {
		return OriginHost
	}
	prev := t.origin
	t.origin = o
	return prev
}

// ExitOrigin restores the origin returned by EnterOrigin.
func (t *Telemetry) ExitOrigin(prev Origin) {
	if t == nil {
		return
	}
	t.origin = prev
}

// EnterECC switches to OriginECC only when the current origin is
// OriginHost: retry reads issued while GC, scrub or recovery work is in
// flight keep their enclosing origin, so the daemon that triggered them
// is charged — and the host request's attribution never double-counts
// retry time that already surfaces as queue wait. Restore with
// ExitOrigin.
func (t *Telemetry) EnterECC() Origin {
	if t == nil {
		return OriginHost
	}
	prev := t.origin
	if prev == OriginHost {
		t.origin = OriginECC
	}
	return prev
}

// EnterMapPhase switches to a DFTL mapping origin (OriginMapMiss or
// OriginMapWriteback) only when the current origin is OriginHost, the same
// discipline as EnterECC: translation traffic issued inside GC, scrub or
// recovery keeps the enclosing origin, so the daemon that caused it is
// charged — and the host request's attribution never double-counts
// mapping work that already surfaces as queue wait. Restore with
// ExitOrigin.
func (t *Telemetry) EnterMapPhase(o Origin) Origin {
	if t == nil {
		return OriginHost
	}
	prev := t.origin
	if prev == OriginHost {
		t.origin = o
	}
	return prev
}

// ObserveOp implements ssd.OpObserver: counters, attribution and the
// timeline get every stamped flash operation, classified by the current
// origin.
func (t *Telemetry) ObserveOp(op ssd.OpObservation) {
	if t == nil {
		return
	}
	if op.Done > t.clock {
		t.clock = op.Done
	}
	if t.geoAttached {
		t.chipOps[op.Chip].Inc()
		t.chipBusyUS[op.Chip].Add(int64(op.Done - op.Start))
		if op.Kind != ssd.OpErase {
			t.channelOps[op.Channel].Inc()
		}
		t.originOps[t.origin][op.Kind].Inc()
	}
	t.attr.observeOp(t.origin, op)
	t.tracer.emitOp(t.origin, op)
}

// BeginRequest opens a host-request attribution scope at the request's
// arrival time. Operations observed until EndRequest are charged to it.
func (t *Telemetry) BeginRequest(op RequestOp, arrival ssd.Time) {
	if t == nil {
		return
	}
	t.attr.begin(op, arrival)
}

// DeclareTenants sizes the per-tenant attribution dimension and registers
// per-tenant latency histograms. The multi-tenant engine calls it once
// before the run; single-submitter runs never do, keeping their registry
// contents identical to the pre-tenant layer.
func (t *Telemetry) DeclareTenants(names []string) {
	if t == nil {
		return
	}
	t.attr.declareTenants(names, t.reg)
}

// BeginRequestTenant opens a host-request attribution scope tagged with
// the owning tenant and the engine's dispatch instant; the arbiter hold
// (dispatch − arrival) is charged to the queue phase. With dispatch equal
// to arrival and tenant -1 it reduces exactly to BeginRequest.
func (t *Telemetry) BeginRequestTenant(op RequestOp, arrival, dispatch ssd.Time, tenant int) {
	if t == nil {
		return
	}
	t.attr.beginTenant(op, arrival, dispatch, tenant)
}

// EndRequest closes the current request scope with its completion time,
// folds the phase decomposition into the per-phase histograms, and emits
// the request span onto the timeline.
func (t *Telemetry) EndRequest(done ssd.Time) {
	if t == nil {
		return
	}
	if done > t.clock {
		t.clock = done
	}
	req := t.attr.end(done)
	t.tracer.emitRequest(req)
	if t.OnRequestEnd != nil {
		t.OnRequestEnd(req)
	}
}

// EmitSpan places one named complete span (e.g. a GC cycle, a patrol
// visit, a recovery scan) onto the daemon track of the timeline.
func (t *Telemetry) EmitSpan(origin Origin, name string, start, end ssd.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.tracer.emitSpan(origin, name, start, end, args)
}

// Now returns the largest simulated time this instance has observed — the
// natural "as of" instant for gauge evaluation when exporting after a run.
func (t *Telemetry) Now() ssd.Time {
	if t == nil {
		return 0
	}
	return t.clock
}

// Sample records one time-series row when now has crossed the sampling
// clock. The runner calls it once per request with the request's arrival
// time; rows land at most once per SampleInterval of simulated time.
func (t *Telemetry) Sample(now ssd.Time) {
	if t == nil {
		return
	}
	if now > t.clock {
		t.clock = now
	}
	if t.nextSample == 0 {
		t.nextSample = now + t.cfg.SampleInterval
		t.reg.sample(now, t.cfg.SeriesCap)
		return
	}
	if now < t.nextSample {
		return
	}
	t.reg.sample(now, t.cfg.SeriesCap)
	// Skip past long idle gaps instead of emitting a row per missed tick.
	t.nextSample += ((now-t.nextSample)/t.cfg.SampleInterval + 1) * t.cfg.SampleInterval
}

// RegisterGauge adds a callback gauge sampled into the time series (and
// exported to Prometheus). Safe on a nil instance.
func (t *Telemetry) RegisterGauge(name, help string, labels Labels, f GaugeFunc) {
	if t == nil {
		return
	}
	t.reg.Gauge(name, help, labels, f)
}

// PhaseHistogram returns the per-phase latency histogram for the given
// request op, or nil when off. Exposed for reports and tests.
func (t *Telemetry) PhaseHistogram(op RequestOp, p Phase) *stats.Histogram {
	if t == nil {
		return nil
	}
	return t.attr.hist(op, p)
}
