// Package scrub is the background patrol daemon real controllers run to
// keep decaying flash readable: driven by simulated time, it walks the
// drive's blocks at a fixed cadence, samples the integrity model's
// estimated RBER, and refresh-relocates pages that have drifted past a
// threshold — before retention age, read disturb and wear push them over
// ECC capability and the data is lost.
//
// The scrubber has no goroutine and no wall clock: the device wrapper in
// internal/sim calls Tick with the arrival time of every host request,
// and the scrubber performs whatever patrol visits came due since the
// last call. Patrol flash operations are stamped at time 0, which the bus
// resolves to "the moment the chip last went idle" — the same trick
// background GC uses — so patrol work fills idle windows that already
// passed instead of queuing ahead of the request that revealed the time.
// Refresh programs (and any GC they trigger) charge real program/erase
// latency and real erase wear, so an aggressive scrub interval shows up
// in both the latency tail and the lifetime harness.
package scrub

import (
	"errors"
	"fmt"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
)

// DefaultMaxCatchUp bounds how many overdue patrol visits one Tick may
// perform, so a long arrival gap produces a bounded burst instead of a
// stall proportional to the gap.
const DefaultMaxCatchUp = 4

// Config parameterizes the patrol scrubber. The zero value disables it.
type Config struct {
	// Interval is the simulated time between patrol visits; one visit
	// covers one block. A full drive sweep therefore takes
	// Interval × TotalBlocks. 0 disables the scrubber.
	Interval ssd.Time

	// RefreshRBER is the estimated-RBER threshold at or above which a
	// valid page is refresh-relocated; 0 means the integrity model's
	// correctable boundary (fault.DefaultCorrectableRBER when that is
	// defaulted too) — refresh as soon as reads stop being clean.
	RefreshRBER float64

	// MaxCatchUp bounds overdue patrol visits performed by one Tick;
	// 0 means DefaultMaxCatchUp.
	MaxCatchUp int
}

// Enabled reports whether the scrubber patrols at all.
func (c Config) Enabled() bool { return c.Interval > 0 }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("scrub: Interval must be ≥ 0, got %d", c.Interval)
	}
	if !(c.RefreshRBER >= 0) || c.RefreshRBER > 1 { // rejects NaN too
		return fmt.Errorf("scrub: RefreshRBER must be in [0,1], got %g", c.RefreshRBER)
	}
	if c.MaxCatchUp < 0 {
		return fmt.Errorf("scrub: MaxCatchUp must be ≥ 0, got %d", c.MaxCatchUp)
	}
	return nil
}

// WithDefaults returns c with zero fields filled in, given the integrity
// model the scrubber will patrol for.
func (c Config) WithDefaults(integrity fault.IntegrityConfig) Config {
	if !c.Enabled() {
		return c
	}
	if c.RefreshRBER == 0 {
		c.RefreshRBER = integrity.WithDefaults().CorrectableRBER
	}
	if c.MaxCatchUp == 0 {
		c.MaxCatchUp = DefaultMaxCatchUp
	}
	return c
}

// Stats counts patrol activity.
type Stats struct {
	Ticks         int64 // Tick calls that performed at least one visit
	BlocksVisited int64 // patrol visits (one block each)
	PagesSampled  int64 // valid pages whose estimated RBER was evaluated
	ScrubReads    int64 // media reads issued by the patrol (samples + refresh reads)
	Refreshed     int64 // pages refresh-relocated past the threshold
	UECCFound     int64 // uncorrectable reads the patrol itself discovered
	SkippedVisits int64 // overdue visits dropped by the catch-up bound
}

// Sub returns s minus prev, field-wise.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Ticks:         s.Ticks - prev.Ticks,
		BlocksVisited: s.BlocksVisited - prev.BlocksVisited,
		PagesSampled:  s.PagesSampled - prev.PagesSampled,
		ScrubReads:    s.ScrubReads - prev.ScrubReads,
		Refreshed:     s.Refreshed - prev.Refreshed,
		UECCFound:     s.UECCFound - prev.UECCFound,
		SkippedVisits: s.SkippedVisits - prev.SkippedVisits,
	}
}

// Scrubber patrols one store. Not safe for concurrent use; it shares the
// simulator's single-goroutine device contract.
type Scrubber struct {
	cfg     Config
	store   *ftl.Store
	total   int64    // blocks in the drive
	cursor  int64    // next block the patrol will consider
	nextDue ssd.Time // simulated time of the next patrol visit; 0 = not started
	st      Stats
}

// New returns a Scrubber patrolling store, or an error when the config is
// invalid or the store's integrity model is disarmed (there is nothing to
// estimate, so a patrol would be dead code masquerading as coverage).
func New(cfg Config, store *ftl.Store) (*Scrubber, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, errors.New("scrub: config is disabled (Interval 0)")
	}
	if !store.IntegrityArmed() {
		return nil, errors.New("scrub: store's integrity model is disarmed; arm fault.Config.Integrity")
	}
	return &Scrubber{
		cfg:   cfg.WithDefaults(store.IntegrityConfig()),
		store: store,
		total: store.Geometry().TotalBlocks(),
	}, nil
}

// Config returns the scrubber's configuration with defaults applied.
func (sc *Scrubber) Config() Config { return sc.cfg }

// Stats returns cumulative patrol counters.
func (sc *Scrubber) Stats() Stats { return sc.st }

// Tick advances the patrol to the simulated instant now, performing every
// visit that came due since the last call (bounded by MaxCatchUp; dropped
// visits are counted, not deferred — a patrol that fell behind resumes at
// cadence rather than bursting to make up lost ground). The error is
// non-nil only when the store propagates a hard failure (power loss, out
// of space); uncorrectable patrol reads are recorded and absorbed.
func (sc *Scrubber) Tick(now ssd.Time) error {
	if sc.nextDue == 0 {
		// First observation of the clock: schedule the first visit one
		// interval out instead of patrolling a drive nothing has aged.
		sc.nextDue = now + sc.cfg.Interval
		return nil
	}
	visits := 0
	for sc.nextDue <= now && visits < sc.cfg.MaxCatchUp {
		if err := sc.visit(now); err != nil {
			return err
		}
		sc.nextDue += sc.cfg.Interval
		visits++
	}
	if visits > 0 {
		sc.st.Ticks++
	}
	if sc.nextDue <= now {
		skipped := int64((now-sc.nextDue)/sc.cfg.Interval) + 1
		sc.st.SkippedVisits += skipped
		sc.nextDue += ssd.Time(skipped) * sc.cfg.Interval
	}
	return nil
}

// visit patrols the next non-retired block: sample one media read, then
// refresh every valid page whose estimated RBER reached the threshold.
func (sc *Scrubber) visit(clock ssd.Time) error {
	for tried := int64(0); tried < sc.total; tried++ {
		b := ssd.BlockID(sc.cursor)
		sc.cursor = (sc.cursor + 1) % sc.total
		if sc.store.BadBlock(b) {
			continue
		}
		sc.st.BlocksVisited++
		return sc.patrol(b, clock)
	}
	return nil // every block retired; the drive is dead anyway
}

// patrol scans one block. The first live page gets a real media read (the
// patrol's sample — this is what discovers latent UECC); every live page
// past the refresh threshold is relocated to fresh flash.
func (sc *Scrubber) patrol(b ssd.BlockID, clock ssd.Time) error {
	tel := sc.store.Telemetry()
	prevOrigin := tel.EnterOrigin(telemetry.OriginScrub)
	refreshedBefore, ueccBefore := sc.st.Refreshed, sc.st.UECCFound
	spanEnd := clock
	defer func() {
		tel.ExitOrigin(prevOrigin)
		if tel.On() {
			tel.EmitSpan(telemetry.OriginScrub, "patrol visit", clock, spanEnd, map[string]any{
				"block":     int64(b),
				"refreshed": sc.st.Refreshed - refreshedBefore,
				"uecc":      sc.st.UECCFound - ueccBefore,
			})
		}
	}()
	geo := sc.store.Geometry()
	first := geo.FirstPage(b)
	sampled := false
	for i := 0; i < geo.PagesPerBlock; i++ {
		p := first + ssd.PPN(i)
		if sc.store.State(p) != ftl.PageValid || sc.store.LostPage(p) {
			continue
		}
		sc.st.PagesSampled++
		if !sampled {
			sampled = true
			sc.st.ScrubReads++
			done, err := sc.store.ScrubRead(p, 0, clock)
			if done > spanEnd {
				spanEnd = done
			}
			if err != nil {
				if errors.Is(err, ftl.ErrUncorrectable) {
					sc.st.UECCFound++
					continue
				}
				return err
			}
		}
		if sc.store.State(p) != ftl.PageValid {
			// The sample read repaired the page onto fresh flash (stripe
			// reconstruction), or the GC it triggered relocated a later
			// page of this block; either way the copy here is stale.
			continue
		}
		if sc.store.EstimatedRBER(p, clock) < sc.cfg.RefreshRBER {
			continue
		}
		// RefreshPage reads the old copy before reprogramming it.
		sc.st.ScrubReads++
		done, err := sc.store.RefreshPage(p, 0, clock)
		if done > spanEnd {
			spanEnd = done
		}
		if err != nil {
			if errors.Is(err, ftl.ErrUncorrectable) {
				sc.st.UECCFound++
				continue
			}
			if errors.Is(err, ftl.ErrPageState) {
				// The GC that made room for the refresh consumed the page
				// mid-flight; its content already lives elsewhere.
				continue
			}
			return err
		}
		sc.st.Refreshed++
	}
	return nil
}
