package scrub

import (
	"math"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
)

func tinyGeometry() ssd.Geometry {
	return ssd.Geometry{
		Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 4096,
		OverProvision: 0.15,
	}
}

// newArmedStore builds a tiny store whose integrity model decays pages with
// the given retention rate (per second of age).
func newArmedStore(t *testing.T, retention float64) *ftl.Store {
	t.Helper()
	cfg := ftl.DefaultStoreConfig()
	cfg.Faults = fault.Config{Integrity: fault.IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: retention,
	}}
	s, err := ftl.NewStore(cfg, ssd.NewBus(tinyGeometry(), ssd.PaperLatency()))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero (disabled)", Config{}, true},
		{"enabled defaults", Config{Interval: ssd.Millisecond}, true},
		{"full", Config{Interval: ssd.Millisecond, RefreshRBER: 1e-3, MaxCatchUp: 2}, true},
		{"negative interval", Config{Interval: -1}, false},
		{"negative threshold", Config{Interval: 1, RefreshRBER: -1e-3}, false},
		{"threshold above one", Config{Interval: 1, RefreshRBER: 1.5}, false},
		{"NaN threshold", Config{Interval: 1, RefreshRBER: math.NaN()}, false},
		{"negative catch-up", Config{Interval: 1, MaxCatchUp: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestConfigWithDefaults(t *testing.T) {
	// Disabled configs stay untouched: no threshold is invented for a
	// scrubber that will never run.
	if got := (Config{}).WithDefaults(fault.IntegrityConfig{BaseRBER: 1e-4}); got != (Config{}) {
		t.Errorf("disabled config gained defaults: %+v", got)
	}
	got := Config{Interval: ssd.Millisecond}.WithDefaults(fault.IntegrityConfig{BaseRBER: 1e-4})
	if got.RefreshRBER != fault.DefaultCorrectableRBER {
		t.Errorf("RefreshRBER defaulted to %g, want the correctable boundary %g",
			got.RefreshRBER, fault.DefaultCorrectableRBER)
	}
	if got.MaxCatchUp != DefaultMaxCatchUp {
		t.Errorf("MaxCatchUp defaulted to %d, want %d", got.MaxCatchUp, DefaultMaxCatchUp)
	}
	// An explicit correctable boundary propagates into the default.
	got = Config{Interval: ssd.Millisecond}.WithDefaults(fault.IntegrityConfig{
		BaseRBER: 1e-4, CorrectableRBER: 7e-4, UncorrectableRBER: 9e-4,
	})
	if got.RefreshRBER != 7e-4 {
		t.Errorf("RefreshRBER = %g, want the model's correctable boundary 7e-4", got.RefreshRBER)
	}
	// Explicit settings survive.
	explicit := Config{Interval: ssd.Millisecond, RefreshRBER: 2e-3, MaxCatchUp: 9}
	if got := explicit.WithDefaults(fault.IntegrityConfig{BaseRBER: 1e-4}); got != explicit {
		t.Errorf("explicit config rewritten: %+v", got)
	}
}

func TestNewRejectsUnusableSetups(t *testing.T) {
	armed := newArmedStore(t, 1)
	if _, err := New(Config{}, armed); err == nil {
		t.Error("New accepted a disabled config")
	}
	if _, err := New(Config{Interval: -1}, armed); err == nil {
		t.Error("New accepted an invalid config")
	}
	disarmed, err := ftl.NewStore(ftl.DefaultStoreConfig(), ssd.NewBus(tinyGeometry(), ssd.PaperLatency()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Interval: ssd.Millisecond}, disarmed); err == nil {
		t.Error("New accepted a store with a disarmed integrity model")
	}
	sc, err := New(Config{Interval: ssd.Millisecond}, armed)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Config().RefreshRBER != fault.DefaultCorrectableRBER || sc.Config().MaxCatchUp != DefaultMaxCatchUp {
		t.Errorf("New did not apply defaults: %+v", sc.Config())
	}
}

func TestTickCadenceAndCatchUp(t *testing.T) {
	// Retention 0: nothing decays, so ticks only walk blocks and sample.
	s := newArmedStore(t, 0)
	if _, _, err := s.Program(0); err != nil {
		t.Fatal(err)
	}
	sc, err := New(Config{Interval: 1000}, s)
	if err != nil {
		t.Fatal(err)
	}

	// First observation only schedules; no patrol yet.
	if err := sc.Tick(500); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.BlocksVisited != 0 {
		t.Fatalf("first Tick patrolled: %+v", st)
	}
	// Not yet due.
	if err := sc.Tick(1400); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.BlocksVisited != 0 {
		t.Fatalf("early Tick patrolled: %+v", st)
	}
	// Due once at t=1500.
	if err := sc.Tick(1600); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Ticks != 1 || st.BlocksVisited != 1 {
		t.Fatalf("one overdue visit, got %+v", st)
	}
	// Two more intervals elapse: two visits in one Tick.
	if err := sc.Tick(3600); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Ticks != 2 || st.BlocksVisited != 3 {
		t.Fatalf("two overdue visits, got %+v", st)
	}
	// A huge gap: the catch-up bound caps the burst and the remainder is
	// dropped (counted), not deferred.
	if err := sc.Tick(103_600); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.BlocksVisited != 3+DefaultMaxCatchUp {
		t.Errorf("burst visited %d blocks, want %d", st.BlocksVisited-3, DefaultMaxCatchUp)
	}
	if st.SkippedVisits == 0 {
		t.Error("dropped visits were not counted")
	}
	// After the drop the patrol resumes at cadence: next visit is one
	// interval ahead of the gap's end, not in the past.
	before := st.BlocksVisited
	if err := sc.Tick(103_900); err != nil {
		t.Fatal(err)
	}
	if got := sc.Stats().BlocksVisited; got != before {
		t.Errorf("patrol visited %d blocks right after catching up, want 0", got-before)
	}
}

func TestPatrolRefreshesDecayedPages(t *testing.T) {
	// ×25/s: one second of age puts a page at RBER 2.6e-3 — past the 2e-3
	// refresh threshold yet below the uncorrectable boundary, so the
	// patrol's sample read survives to trigger the refresh.
	s := newArmedStore(t, 25)
	var pages []ssd.PPN
	var last ssd.Time
	for i := 0; i < 4; i++ {
		ppn, done, err := s.Program(0)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, ppn)
		last = done
	}
	sc, err := New(Config{Interval: 1000, RefreshRBER: 2e-3}, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Tick(last); err != nil {
		t.Fatal(err)
	}
	// One second later every page is past the threshold; patrol enough
	// blocks to cover the whole tiny drive.
	clock := last + ssd.Time(1_000_000)
	total := s.Geometry().TotalBlocks()
	for v := int64(0); v <= total; v++ {
		clock += 1000
		if err := sc.Tick(clock); err != nil {
			t.Fatal(err)
		}
	}
	st := sc.Stats()
	if st.Refreshed != int64(len(pages)) {
		t.Fatalf("patrol refreshed %d pages, want %d (stats %+v)", st.Refreshed, len(pages), st)
	}
	if st.PagesSampled < int64(len(pages)) || st.ScrubReads < st.Refreshed {
		t.Errorf("inconsistent patrol accounting: %+v", st)
	}
	if got := s.FaultStats().RefreshWrites; got != st.Refreshed {
		t.Errorf("store counted %d refresh writes, scrubber %d", got, st.Refreshed)
	}
	// The old copies are garbage now; their replacements are fresh enough
	// to pass the threshold.
	for _, p := range pages {
		if s.State(p) == ftl.PageValid {
			t.Errorf("page %v still valid after refresh", p)
		}
	}
	// A second sweep right away refreshes nothing: the drive is fresh.
	before := sc.Stats().Refreshed
	for v := int64(0); v <= total; v++ {
		clock += 1000
		if err := sc.Tick(clock); err != nil {
			t.Fatal(err)
		}
	}
	if got := sc.Stats().Refreshed; got != before {
		t.Errorf("second sweep refreshed %d fresh pages", got-before)
	}
}

// TestDeterministicPatrol pins the scrubber's determinism contract: two
// identical runs produce byte-identical counters.
func TestDeterministicPatrol(t *testing.T) {
	run := func() (Stats, fault.Stats) {
		s := newArmedStore(t, 50)
		var clock ssd.Time
		for i := 0; i < 24; i++ {
			_, done, err := s.Program(clock)
			if err != nil {
				t.Fatal(err)
			}
			clock = done
		}
		sc, err := New(Config{Interval: 5000}, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			clock += 7000
			if err := sc.Tick(clock); err != nil {
				t.Fatal(err)
			}
		}
		return sc.Stats(), s.FaultStats()
	}
	a1, f1 := run()
	a2, f2 := run()
	if a1 != a2 || f1 != f2 {
		t.Errorf("identical runs diverged:\n%+v vs %+v\n%+v vs %+v", a1, a2, f1, f2)
	}
	if a1.Refreshed == 0 {
		t.Error("determinism run exercised no refreshes; weaken nothing, fix the setup")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Ticks: 5, BlocksVisited: 4, PagesSampled: 3, ScrubReads: 2, Refreshed: 1, UECCFound: 1, SkippedVisits: 6}
	b := Stats{Ticks: 1, BlocksVisited: 1, PagesSampled: 1, ScrubReads: 1, Refreshed: 1, UECCFound: 0, SkippedVisits: 2}
	want := Stats{Ticks: 4, BlocksVisited: 3, PagesSampled: 2, ScrubReads: 1, Refreshed: 0, UECCFound: 1, SkippedVisits: 4}
	if got := a.Sub(b); got != want {
		t.Errorf("Sub = %+v, want %+v", got, want)
	}
}
