// Package lxssd reconstructs the prior-work comparison point LX-SSD
// (Zhou et al., MSST'17) as the paper describes it, including the two
// design choices the paper critiques (Section I):
//
//  1. Recycling probability is estimated from value popularity over reads
//     AND writes — but read-popular values are not necessarily rewritten,
//     so buffer space is wasted on them.
//  2. Buffer replacement follows the recency of the *page addresses*
//     (LBAs) associated with garbage pages, not of the values — so a
//     popular value whose old addresses go cold is evicted even though it
//     is about to be reborn, and read traffic to an address keeps useless
//     garbage pinned.
//
// The original system is closed source; this is a behavioural
// reimplementation from the description, sufficient for the Fig 11
// comparison.
package lxssd

import (
	"fmt"

	"zombiessd/internal/core"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// record is one buffered garbage page, tied to the logical address whose
// update created it.
type record struct {
	lba  uint64
	hash trace.Hash
	ppn  ssd.PPN

	prev, next *record
}

type recordList struct {
	head, tail *record
	n          int
}

func (l *recordList) pushTail(r *record) {
	r.prev, r.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = r
	} else {
		l.head = r
	}
	l.tail = r
	l.n++
}

func (l *recordList) remove(r *record) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		l.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		l.tail = r.prev
	}
	r.prev, r.next = nil, nil
	l.n--
}

func (l *recordList) moveToTail(r *record) {
	if l.tail == r {
		return
	}
	l.remove(r)
	l.pushTail(r)
}

// Config parameterizes the LX-SSD recycler.
type Config struct {
	// Capacity is the maximum number of buffered garbage pages.
	Capacity int
	// MinPopularity is the admission threshold: a garbage page is buffered
	// only when its value's read+write popularity has reached this count.
	MinPopularity uint16
}

// DefaultConfig matches the DVP's default footprint: 200K records,
// admission after the second access.
func DefaultConfig() Config { return Config{Capacity: 200_000, MinPopularity: 2} }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("lxssd: capacity must be positive, got %d", c.Capacity)
	}
	return nil
}

// Pool is the LX-SSD garbage-page recycler.
type Pool struct {
	cfg Config

	list   recordList // LRU by LBA-access recency
	byHash map[trace.Hash][]*record
	byLBA  map[uint64][]*record
	byPPN  map[ssd.PPN]*record

	// pop counts accesses per value over reads and writes combined —
	// deliberately conflating the two, as the paper says LX-SSD does.
	pop map[trace.Hash]uint16

	stats core.PoolStats
}

// New returns an empty LX-SSD pool, or a wrapped configuration error —
// surfaced on the host path as a CellError by RunMatrix, never a panic.
func New(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("lxssd: %w", err)
	}
	return &Pool{
		cfg:    cfg,
		byHash: make(map[trace.Hash][]*record),
		byLBA:  make(map[uint64][]*record),
		byPPN:  make(map[ssd.PPN]*record),
		pop:    make(map[trace.Hash]uint16),
	}, nil
}

// RecordAccess observes any host access (read or write) to value h at
// address lba: it bumps the combined popularity and refreshes the recency
// of every buffered garbage page associated with that address.
func (p *Pool) RecordAccess(h trace.Hash, lba uint64) {
	if c := p.pop[h]; c < ^uint16(0) {
		p.pop[h] = c + 1
	}
	for _, r := range p.byLBA[lba] {
		p.list.moveToTail(r)
	}
}

// Insert offers a garbage page to the buffer. Pages whose value has not yet
// reached the admission popularity are declined (and counted as evictions
// of opportunity).
func (p *Pool) Insert(h trace.Hash, ppn ssd.PPN, lba uint64) {
	p.stats.Inserts++
	if p.pop[h] < p.cfg.MinPopularity {
		return
	}
	r := &record{lba: lba, hash: h, ppn: ppn}
	p.list.pushTail(r)
	p.byHash[h] = append(p.byHash[h], r)
	p.byLBA[lba] = append(p.byLBA[lba], r)
	p.byPPN[ppn] = r
	for p.list.n > p.cfg.Capacity {
		p.stats.Evictions++
		p.removeRecord(p.evictionVictim())
	}
}

// evictionVictim scans a small window at the LRU end and picks the record
// whose value has the lowest read+write popularity — LX-SSD's recycling-
// probability estimate. The flaw the paper calls out is built in: a value
// that is only ever *read* scores high and survives, crowding out garbage
// that would actually be rewritten.
func (p *Pool) evictionVictim() *record {
	const window = 8
	victim := p.list.head
	best := p.pop[victim.hash]
	r := victim.next
	for i := 1; i < window && r != nil; i++ {
		if pop := p.pop[r.hash]; pop < best {
			best = pop
			victim = r
		}
		r = r.next
	}
	return victim
}

// Lookup searches for a buffered garbage copy of h; on a hit the record is
// removed and its PPN returned for revival.
func (p *Pool) Lookup(h trace.Hash) (ssd.PPN, bool) {
	recs := p.byHash[h]
	if len(recs) == 0 {
		p.stats.Misses++
		return ssd.InvalidPPN, false
	}
	p.stats.Hits++
	r := recs[len(recs)-1]
	ppn := r.ppn
	p.removeRecord(r)
	return ppn, true
}

// Drop removes the record for ppn, if buffered (GC erased the page).
func (p *Pool) Drop(ppn ssd.PPN) {
	r, ok := p.byPPN[ppn]
	if !ok {
		return
	}
	p.stats.Drops++
	p.removeRecord(r)
}

func (p *Pool) removeRecord(r *record) {
	p.list.remove(r)
	delete(p.byPPN, r.ppn)
	p.byHash[r.hash] = removeFrom(p.byHash[r.hash], r)
	if len(p.byHash[r.hash]) == 0 {
		delete(p.byHash, r.hash)
	}
	p.byLBA[r.lba] = removeFrom(p.byLBA[r.lba], r)
	if len(p.byLBA[r.lba]) == 0 {
		delete(p.byLBA, r.lba)
	}
}

func removeFrom(recs []*record, r *record) []*record {
	for i, x := range recs {
		if x == r {
			return append(recs[:i], recs[i+1:]...)
		}
	}
	return recs
}

// Len returns the number of buffered garbage pages.
func (p *Pool) Len() int { return p.list.n }

// Stats returns cumulative counters.
func (p *Pool) Stats() core.PoolStats { return p.stats }
