package lxssd

import (
	"testing"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

func h(id uint64) trace.Hash { return trace.HashOfValue(id) }

func newPool(capacity int) *Pool {
	p, err := New(Config{Capacity: capacity, MinPopularity: 2})
	if err != nil {
		panic(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Capacity: 0}).Validate(); err == nil {
		t.Error("accepted zero capacity")
	}
	if p, err := New(Config{}); err == nil || p != nil {
		t.Errorf("New with bad config returned (%v, %v), want nil pool and error", p, err)
	}
}

func TestAdmissionThreshold(t *testing.T) {
	p := newPool(10)
	// First sighting of a value: popularity 1 < 2, declined.
	p.RecordAccess(h(1), 5)
	p.Insert(h(1), 100, 5)
	if p.Len() != 0 {
		t.Fatalf("cold value admitted, Len = %d", p.Len())
	}
	// Second access reaches the threshold.
	p.RecordAccess(h(1), 5)
	p.Insert(h(1), 101, 5)
	if p.Len() != 1 {
		t.Fatalf("warm value declined, Len = %d", p.Len())
	}
}

func TestReadPopularityCountsTowardAdmission(t *testing.T) {
	// The critiqued behaviour: reads alone qualify a value for buffering
	// even though read popularity says nothing about rebirth.
	p := newPool(10)
	p.RecordAccess(h(2), 7) // read
	p.RecordAccess(h(2), 7) // read
	p.Insert(h(2), 200, 7)
	if p.Len() != 1 {
		t.Fatal("read-only popularity did not qualify value; LX-SSD conflates reads and writes")
	}
}

func TestLookupRevivesAndRemoves(t *testing.T) {
	p := newPool(10)
	warm := func(v uint64) {
		p.RecordAccess(h(v), v)
		p.RecordAccess(h(v), v)
	}
	warm(1)
	p.Insert(h(1), 10, 1)
	ppn, ok := p.Lookup(h(1))
	if !ok || ppn != 10 {
		t.Fatalf("Lookup = (%d,%v)", ppn, ok)
	}
	if _, ok := p.Lookup(h(1)); ok {
		t.Fatal("revived page still buffered")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionByLBARecency(t *testing.T) {
	p := newPool(2)
	warm := func(v uint64, lba uint64) {
		p.RecordAccess(h(v), lba)
		p.RecordAccess(h(v), lba)
	}
	warm(1, 1)
	warm(2, 2)
	warm(3, 3)
	p.Insert(h(1), 10, 1)
	p.Insert(h(2), 20, 2)
	// A read to LBA 1 refreshes record 1 even though the value is dead —
	// the address-recency behaviour the paper criticizes.
	p.RecordAccess(h(9), 1)
	p.Insert(h(3), 30, 3) // over capacity: evicts LRU record, now record 2
	if _, ok := p.Lookup(h(2)); ok {
		t.Fatal("record 2 should have been evicted (its address went cold)")
	}
	if _, ok := p.Lookup(h(1)); !ok {
		t.Fatal("record 1 should have been kept (its address stayed hot)")
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", p.Stats().Evictions)
	}
}

func TestDrop(t *testing.T) {
	p := newPool(10)
	p.RecordAccess(h(1), 1)
	p.RecordAccess(h(1), 1)
	p.Insert(h(1), 10, 1)
	p.Drop(10)
	if p.Len() != 0 {
		t.Fatalf("Len after drop = %d", p.Len())
	}
	p.Drop(999) // unknown: no-op
	if p.Stats().Drops != 1 {
		t.Fatalf("Drops = %d, want 1", p.Stats().Drops)
	}
}

func TestMultipleCopiesPerValue(t *testing.T) {
	p := newPool(10)
	p.RecordAccess(h(1), 1)
	p.RecordAccess(h(1), 2)
	p.Insert(h(1), 10, 1)
	p.Insert(h(1), 20, 2)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	ppn, _ := p.Lookup(h(1))
	if ppn != 20 {
		t.Fatalf("Lookup = %d, want most recent 20", ppn)
	}
	ppn, _ = p.Lookup(h(1))
	if ppn != 10 {
		t.Fatalf("Lookup = %d, want 10", ppn)
	}
}

func TestIndexConsistencyUnderChurn(t *testing.T) {
	p := newPool(32)
	nextPPN := ssd.PPN(0)
	for i := 0; i < 5000; i++ {
		v := uint64(i % 50)
		lba := uint64(i % 70)
		p.RecordAccess(h(v), lba)
		p.Insert(h(v), nextPPN, lba)
		nextPPN++
		if i%3 == 0 {
			p.Lookup(h(uint64(i % 60)))
		}
		if i%7 == 0 {
			p.Drop(nextPPN - 1)
		}
	}
	// Walk the list and cross-check every index.
	walked := 0
	for r := p.list.head; r != nil; r = r.next {
		walked++
		if p.byPPN[r.ppn] != r {
			t.Fatalf("byPPN inconsistent for %d", r.ppn)
		}
		foundHash := false
		for _, x := range p.byHash[r.hash] {
			if x == r {
				foundHash = true
			}
		}
		if !foundHash {
			t.Fatalf("record %d missing from byHash", r.ppn)
		}
		foundLBA := false
		for _, x := range p.byLBA[r.lba] {
			if x == r {
				foundLBA = true
			}
		}
		if !foundLBA {
			t.Fatalf("record %d missing from byLBA", r.ppn)
		}
	}
	if walked != p.Len() || walked != len(p.byPPN) {
		t.Fatalf("walked %d records, Len=%d byPPN=%d", walked, p.Len(), len(p.byPPN))
	}
	if p.Len() > 32 {
		t.Fatalf("capacity violated: %d", p.Len())
	}
}

func TestEvictionProtectsReadPopularValues(t *testing.T) {
	// The paper's critique #1, embodied: a value that is only ever READ
	// scores high on LX's combined popularity and survives eviction, even
	// though read popularity says nothing about rebirth; the write-popular
	// record with a momentarily lower combined count is evicted instead.
	p, _ := New(Config{Capacity: 2, MinPopularity: 0})
	// Value 1: heavily read, never rewritten. Value 2: written twice.
	for i := 0; i < 10; i++ {
		p.RecordAccess(h(1), 1)
	}
	p.RecordAccess(h(2), 2)
	p.Insert(h(1), 10, 1) // read-popular garbage
	p.Insert(h(2), 20, 2) // write-popular garbage (lower combined count)
	p.RecordAccess(h(3), 3)
	p.Insert(h(3), 30, 3) // overflow: eviction scans the LRU window
	if _, ok := p.Lookup(h(2)); ok {
		t.Fatal("write-popular value survived; LX should have protected the read-popular one")
	}
	if _, ok := p.Lookup(h(1)); !ok {
		t.Fatal("read-popular value was evicted; LX's flawed estimator should protect it")
	}
}

func TestAdmitAllWhenThresholdZero(t *testing.T) {
	p, _ := New(Config{Capacity: 4, MinPopularity: 0})
	p.Insert(h(9), 90, 9) // no prior access at all
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (threshold 0 admits everything)", p.Len())
	}
}
