package faultflags

import (
	"errors"
	"flag"
	"io"
	"testing"

	"zombiessd/internal/dftl"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/ssd"
)

func parse(t *testing.T, args ...string) (*Set, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return s, s.Validate()
}

func TestParseLandsInConfigs(t *testing.T) {
	s, err := parse(t,
		"-fault-program", "1e-4", "-fault-erase", "1e-5", "-fault-read", "1e-3",
		"-fault-read-retries", "5", "-fault-wear", "0.1", "-fault-seed", "42",
		"-fault-suspect", "3", "-gc-fault-weight", "2.5",
		"-integrity-rber", "1e-4", "-integrity-retention", "6",
		"-integrity-read-disturb", "2e-4", "-integrity-wear", "0.02",
		"-integrity-correctable", "1e-3", "-integrity-uncorrectable", "4e-3",
		"-integrity-revival-limit", "2e-3",
		"-scrub-interval", "1500", "-scrub-rber", "2e-3", "-scrub-catchup", "8",
	)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Faults
	if f.ProgramFailProb != 1e-4 || f.EraseFailProb != 1e-5 || f.ReadFailProb != 1e-3 ||
		f.ReadRetries != 5 || f.WearFactor != 0.1 || f.Seed != 42 || f.SuspectThreshold != 3 {
		t.Errorf("fault flags did not land: %+v", f)
	}
	ic := f.Integrity
	if ic.BaseRBER != 1e-4 || ic.RetentionRate != 6 || ic.ReadDisturbRate != 2e-4 ||
		ic.WearRate != 0.02 || ic.CorrectableRBER != 1e-3 || ic.UncorrectableRBER != 4e-3 ||
		ic.RevivalRBERLimit != 2e-3 {
		t.Errorf("integrity flags did not land: %+v", ic)
	}
	if s.Scrub.Interval != 1500*ssd.Microsecond || s.Scrub.RefreshRBER != 2e-3 || s.Scrub.MaxCatchUp != 8 {
		t.Errorf("scrub flags did not land: %+v", s.Scrub)
	}
	if s.GCFaultWeight != 2.5 {
		t.Errorf("GCFaultWeight = %g, want 2.5", s.GCFaultWeight)
	}
}

func TestZeroFlagsAreInert(t *testing.T) {
	s, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults.Enabled() || s.Faults.IntegrityArmed() || s.Scrub.Enabled() || s.GCFaultWeight != 0 {
		t.Errorf("no flags armed something: %+v", s)
	}
	if s.Health().Enabled() || s.ChaosCycles != 0 || s.ChaosSeed != 0 {
		t.Errorf("no flags armed the governor or chaos knobs: %+v", s)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative gc weight", []string{"-gc-fault-weight", "-1"}},
		{"negative suspect", []string{"-fault-suspect", "-1"}},
		{"probability above one", []string{"-fault-program", "1.5"}},
		{"negative base rber", []string{"-integrity-rber", "-1e-4"}},
		{"scrub without integrity", []string{"-scrub-interval", "1500"}},
		{"negative scrub threshold", []string{"-integrity-rber", "1e-4", "-scrub-interval", "1500", "-scrub-rber", "-1"}},
		{"negative chaos cycles", []string{"-chaos-cycles", "-1"}},
		{"negative chaos seed", []string{"-chaos-seed", "-7"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parse(t, tc.args...); err == nil {
				t.Errorf("Validate accepted %v", tc.args)
			}
		})
	}
}

func TestGCFlagsLand(t *testing.T) {
	s, err := parse(t,
		"-gc-partial-k", "8", "-gc-lookahead", "2",
		"-gc-suspend-max", "4", "-gc-suspend-cost", "25", "-gc-suspend-resume", "15",
	)
	if err != nil {
		t.Fatal(err)
	}
	want := ftl.PreemptConfig{
		PartialK: 8, Lookahead: 2, MaxSuspends: 4,
		SuspendCost: 25 * ssd.Microsecond, ResumeCost: 15 * ssd.Microsecond,
	}
	if got := s.Preempt(); got != want {
		t.Errorf("Preempt() = %+v, want %+v", got, want)
	}
}

// TestGCValidateNamedErrors pins the error classes the -gc-* surface must
// report, so scripts (and the fuzzer) can branch on errors.Is.
func TestGCValidateNamedErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want error
	}{
		{"negative k", []string{"-gc-partial-k", "-1"}, ftl.ErrBadPartialK},
		{"lookahead without partial", []string{"-gc-lookahead", "2"}, ftl.ErrBadLookahead},
		{"lookahead too big", []string{"-gc-partial-k", "4", "-gc-lookahead", "9"}, ftl.ErrBadLookahead},
		{"negative suspends", []string{"-gc-suspend-max", "-3"}, ftl.ErrBadSuspend},
		{"zero-window cost", []string{"-gc-suspend-cost", "25"}, ftl.ErrBadSuspend},
		{"nan cost", []string{"-gc-suspend-max", "4", "-gc-suspend-cost", "NaN"}, ftl.ErrBadSuspend},
		{"inf resume", []string{"-gc-suspend-max", "4", "-gc-suspend-resume", "+Inf"}, ftl.ErrBadSuspend},
		{"fractional cost", []string{"-gc-suspend-max", "4", "-gc-suspend-cost", "12.5"}, ftl.ErrBadSuspend},
		{"negative resume", []string{"-gc-suspend-max", "4", "-gc-suspend-resume", "-20"}, ftl.ErrBadSuspend},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.args...)
			if !errors.Is(err, tc.want) {
				t.Errorf("parse %v: got %v, want %v", tc.args, err, tc.want)
			}
		})
	}
}

func TestHealthFlagsLand(t *testing.T) {
	s, err := parse(t,
		"-health-throttle-debt", "4", "-health-throttle-delay", "250",
		"-health-readonly-free", "2", "-health-dead-retired", "50",
		"-health-dead-lost", "256", "-health-hysteresis", "3",
		"-health-retries", "4", "-health-backoff", "750",
		"-chaos-cycles", "8", "-chaos-seed", "42",
	)
	if err != nil {
		t.Fatal(err)
	}
	want := health.Config{
		ThrottleDebt: 4, ThrottleDelay: 250 * ssd.Microsecond,
		ReadOnlyFree: 2, DeadRetiredPct: 50, DeadLostPages: 256,
		Hysteresis: 3, MaxRetries: 4, RetryBackoff: 750 * ssd.Microsecond,
	}
	if got := s.Health(); got != want {
		t.Errorf("Health() = %+v, want %+v", got, want)
	}
	if s.ChaosCycles != 8 || s.ChaosSeed != 42 {
		t.Errorf("chaos flags did not land: cycles=%d seed=%d", s.ChaosCycles, s.ChaosSeed)
	}
}

// TestHealthValidateNamedErrors pins the error classes the -health-*
// surface must report, mirroring the -gc-* contract.
func TestHealthValidateNamedErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want error
	}{
		{"negative debt", []string{"-health-throttle-debt", "-2"}, health.ErrBadThreshold},
		{"negative floor", []string{"-health-readonly-free", "-1"}, health.ErrBadThreshold},
		{"retired above 100", []string{"-health-dead-retired", "150"}, health.ErrBadThreshold},
		{"nan retired", []string{"-health-dead-retired", "NaN"}, health.ErrBadThreshold},
		{"negative lost", []string{"-health-dead-lost", "-5"}, health.ErrBadThreshold},
		{"negative hysteresis", []string{"-health-hysteresis", "-1"}, health.ErrBadThreshold},
		{"delay without debt", []string{"-health-throttle-delay", "250"}, health.ErrBadDelay},
		{"nan delay", []string{"-health-throttle-debt", "4", "-health-throttle-delay", "NaN"}, health.ErrBadDelay},
		{"fractional delay", []string{"-health-throttle-debt", "4", "-health-throttle-delay", "12.5"}, health.ErrBadDelay},
		{"negative delay", []string{"-health-throttle-debt", "4", "-health-throttle-delay", "-20"}, health.ErrBadDelay},
		{"negative retries", []string{"-health-retries", "-3"}, health.ErrBadRetry},
		{"backoff without retries", []string{"-health-backoff", "500"}, health.ErrBadRetry},
		{"inf backoff", []string{"-health-retries", "4", "-health-backoff", "+Inf"}, health.ErrBadRetry},
		{"fractional backoff", []string{"-health-retries", "4", "-health-backoff", "0.5"}, health.ErrBadRetry},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parse(t, tc.args...)
			if !errors.Is(err, tc.want) {
				t.Errorf("parse %v: got %v, want %v", tc.args, err, tc.want)
			}
		})
	}
}

// FuzzGCConfig hammers the five -gc-* knobs with arbitrary flag values.
// Invariants: parsing and validation never panic; a rejected set fails with
// one of the named preemption errors (so callers can report which knob is
// bad); an accepted set yields a PreemptConfig that survives WithDefaults,
// re-validates cleanly and builds a working store.
func FuzzGCConfig(f *testing.F) {
	seeds := [][5]string{
		{"", "", "", "", ""},
		{"8", "2", "4", "20", "20"},
		{"8", "", "", "", ""},
		{"1", "8", "1", "1", "1"},
		{"0", "2", "", "", ""},
		{"-1", "", "", "", ""},
		{"8", "9", "", "", ""},
		{"8", "-2", "", "", ""},
		{"", "", "-3", "", ""},
		{"", "", "0", "25", ""},
		{"", "", "", "", "20"},
		{"", "", "4", "NaN", ""},
		{"", "", "4", "+Inf", ""},
		{"", "", "4", "-Inf", ""},
		{"", "", "4", "12.5", ""},
		{"", "", "4", "-20", ""},
		{"", "", "4", "1e300", "1e300"},
		{"9999999", "8", "9999", "3800", "3800"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4])
	}
	f.Fuzz(func(t *testing.T, partialK, lookahead, suspendMax, suspendCost, resumeCost string) {
		var args []string
		for _, kv := range [][2]string{
			{"-gc-partial-k", partialK}, {"-gc-lookahead", lookahead},
			{"-gc-suspend-max", suspendMax}, {"-gc-suspend-cost", suspendCost},
			{"-gc-suspend-resume", resumeCost},
		} {
			if kv[1] != "" {
				args = append(args, kv[0], kv[1])
			}
		}
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		s := Register(fs)
		if err := fs.Parse(args); err != nil {
			return // the flag package rejected the raw value
		}
		if err := s.Validate(); err != nil {
			if !errors.Is(err, ftl.ErrBadPartialK) && !errors.Is(err, ftl.ErrBadLookahead) &&
				!errors.Is(err, ftl.ErrBadSuspend) {
				t.Fatalf("rejection %v is not a named preemption error (args %v)", err, args)
			}
			return
		}
		p := s.Preempt().WithDefaults()
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted set fails after WithDefaults: %v (args %v)", err, args)
		}
		geo := ssd.Geometry{
			Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
		}
		bus := ssd.NewBus(geo, ssd.PaperLatency())
		if _, err := ftl.NewStore(ftl.StoreConfig{GCFreeBlockThreshold: 2, Preempt: p}, bus); err != nil {
			t.Fatalf("accepted set rejected by the store: %v (args %v)", err, args)
		}
	})
}

// TestDftlFlagsLand pins the -dftl-* surface: values land in Dftl(), the
// disabled default is inert, and knobs without -dftl-enable fail with the
// named error.
func TestDftlFlagsLand(t *testing.T) {
	s, err := parse(t, "-dftl-enable", "-dftl-cmt-frames", "512", "-dftl-batch-evict")
	if err != nil {
		t.Fatal(err)
	}
	want := dftl.Config{Enable: true, CMTFrames: 512, BatchEvict: true}
	if got := s.Dftl(); got != want {
		t.Errorf("Dftl() = %+v, want %+v", got, want)
	}
	if s, err := parse(t); err != nil || s.Dftl().Enabled() {
		t.Errorf("zero flags: err=%v enabled=%v, want inert", err, s.Dftl().Enabled())
	}
	if _, err := parse(t, "-dftl-cmt-frames", "64"); !errors.Is(err, dftl.ErrDisabled) {
		t.Errorf("frames without enable: got %v, want %v", err, dftl.ErrDisabled)
	}
	if _, err := parse(t, "-dftl-batch-evict"); !errors.Is(err, dftl.ErrDisabled) {
		t.Errorf("batch-evict without enable: got %v, want %v", err, dftl.ErrDisabled)
	}
	if _, err := parse(t, "-dftl-enable", "-dftl-cmt-frames", "-4"); !errors.Is(err, dftl.ErrBadFrames) {
		t.Errorf("negative frames: got %v, want %v", err, dftl.ErrBadFrames)
	}
}

// FuzzDftlConfig hammers the three -dftl-* knobs with arbitrary flag
// values. Invariants: parsing and validation never panic; a rejected set
// fails with one of the named dftl errors; an accepted enabled set
// survives WithDefaults, re-validates cleanly and constructs a working
// CMT over the paper's page size.
func FuzzDftlConfig(f *testing.F) {
	seeds := [][3]string{
		{"", "", ""},
		{"true", "", ""},
		{"true", "512", "true"},
		{"true", "0", "false"},
		{"", "64", ""},
		{"", "", "true"},
		{"true", "-4", ""},
		{"true", "1048577", ""},
		{"false", "64", "true"},
		{"true", "1", "true"},
		{"banana", "", ""},
		{"true", "9999999999999999999", ""},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2])
	}
	f.Fuzz(func(t *testing.T, enable, frames, batch string) {
		var args []string
		for _, kv := range [][2]string{
			{"-dftl-enable", enable}, {"-dftl-cmt-frames", frames}, {"-dftl-batch-evict", batch},
		} {
			if kv[1] != "" {
				args = append(args, kv[0]+"="+kv[1])
			}
		}
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		s := Register(fs)
		if err := fs.Parse(args); err != nil {
			return // the flag package rejected the raw value
		}
		if err := s.Validate(); err != nil {
			if !errors.Is(err, dftl.ErrBadFrames) && !errors.Is(err, dftl.ErrDisabled) {
				t.Fatalf("rejection %v is not a named dftl error (args %v)", err, args)
			}
			return
		}
		cfg := s.Dftl().WithDefaults()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted set fails after WithDefaults: %v (args %v)", err, args)
		}
		if cfg.Enabled() != s.Dftl().Enabled() {
			t.Fatalf("WithDefaults changed Enabled (args %v)", args)
		}
		if cfg.Enabled() {
			if _, err := dftl.NewCMT(cfg, 1<<20, 4096); err != nil {
				t.Fatalf("accepted set rejected by NewCMT: %v (args %v)", err, args)
			}
		}
	})
}

// FuzzHealthConfig hammers the eight -health-* knobs with arbitrary flag
// values. Invariants: parsing and validation never panic; a rejected set
// fails with one of the named health errors; an accepted set yields a
// Config that survives WithDefaults, re-validates cleanly and constructs
// a governor whose first observation of a healthy drive stays Healthy.
func FuzzHealthConfig(f *testing.F) {
	seeds := [][8]string{
		{"", "", "", "", "", "", "", ""},
		{"4", "250", "2", "50", "256", "3", "4", "750"},
		{"4", "", "", "", "", "", "", ""},
		{"", "", "2", "", "", "", "", ""},
		{"", "", "", "100", "", "", "", ""},
		{"-2", "", "", "", "", "", "", ""},
		{"", "250", "", "", "", "", "", ""},
		{"4", "NaN", "", "", "", "", "", ""},
		{"4", "12.5", "", "", "", "", "", ""},
		{"4", "-20", "", "", "", "", "", ""},
		{"", "", "", "150", "", "", "", ""},
		{"", "", "", "NaN", "", "", "", ""},
		{"", "", "", "", "-5", "", "", ""},
		{"", "", "", "", "", "-1", "", ""},
		{"", "", "", "", "", "", "-3", ""},
		{"", "", "", "", "", "", "", "500"},
		{"", "", "", "", "", "", "4", "+Inf"},
		{"", "", "", "", "", "", "4", "0.5"},
		{"9999999", "1e300", "9999", "99.9", "1", "64", "255", "1e300"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7])
	}
	f.Fuzz(func(t *testing.T, debt, delay, floor, retired, lost, hyst, retries, backoff string) {
		var args []string
		for _, kv := range [][2]string{
			{"-health-throttle-debt", debt}, {"-health-throttle-delay", delay},
			{"-health-readonly-free", floor}, {"-health-dead-retired", retired},
			{"-health-dead-lost", lost}, {"-health-hysteresis", hyst},
			{"-health-retries", retries}, {"-health-backoff", backoff},
		} {
			if kv[1] != "" {
				args = append(args, kv[0], kv[1])
			}
		}
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		s := Register(fs)
		if err := fs.Parse(args); err != nil {
			return // the flag package rejected the raw value
		}
		if err := s.Validate(); err != nil {
			if !errors.Is(err, health.ErrBadThreshold) && !errors.Is(err, health.ErrBadDelay) &&
				!errors.Is(err, health.ErrBadRetry) {
				t.Fatalf("rejection %v is not a named health error (args %v)", err, args)
			}
			return
		}
		cfg := s.Health().WithDefaults()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted set fails after WithDefaults: %v (args %v)", err, args)
		}
		if cfg.Enabled() != s.Health().Enabled() {
			t.Fatalf("WithDefaults changed Enabled (args %v)", args)
		}
		gov := health.New(cfg)
		calm := health.Sample{FreeBlocks: 1 << 20, TotalBlocks: 1 << 20}
		if got := gov.Observe(calm, 0); got != health.Healthy {
			t.Fatalf("calm drive observed as %v (args %v)", got, args)
		}
	})
}
