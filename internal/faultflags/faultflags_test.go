package faultflags

import (
	"flag"
	"io"
	"testing"

	"zombiessd/internal/ssd"
)

func parse(t *testing.T, args ...string) (*Set, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return s, s.Validate()
}

func TestParseLandsInConfigs(t *testing.T) {
	s, err := parse(t,
		"-fault-program", "1e-4", "-fault-erase", "1e-5", "-fault-read", "1e-3",
		"-fault-read-retries", "5", "-fault-wear", "0.1", "-fault-seed", "42",
		"-fault-suspect", "3", "-gc-fault-weight", "2.5",
		"-integrity-rber", "1e-4", "-integrity-retention", "6",
		"-integrity-read-disturb", "2e-4", "-integrity-wear", "0.02",
		"-integrity-correctable", "1e-3", "-integrity-uncorrectable", "4e-3",
		"-integrity-revival-limit", "2e-3",
		"-scrub-interval", "1500", "-scrub-rber", "2e-3", "-scrub-catchup", "8",
	)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Faults
	if f.ProgramFailProb != 1e-4 || f.EraseFailProb != 1e-5 || f.ReadFailProb != 1e-3 ||
		f.ReadRetries != 5 || f.WearFactor != 0.1 || f.Seed != 42 || f.SuspectThreshold != 3 {
		t.Errorf("fault flags did not land: %+v", f)
	}
	ic := f.Integrity
	if ic.BaseRBER != 1e-4 || ic.RetentionRate != 6 || ic.ReadDisturbRate != 2e-4 ||
		ic.WearRate != 0.02 || ic.CorrectableRBER != 1e-3 || ic.UncorrectableRBER != 4e-3 ||
		ic.RevivalRBERLimit != 2e-3 {
		t.Errorf("integrity flags did not land: %+v", ic)
	}
	if s.Scrub.Interval != 1500*ssd.Microsecond || s.Scrub.RefreshRBER != 2e-3 || s.Scrub.MaxCatchUp != 8 {
		t.Errorf("scrub flags did not land: %+v", s.Scrub)
	}
	if s.GCFaultWeight != 2.5 {
		t.Errorf("GCFaultWeight = %g, want 2.5", s.GCFaultWeight)
	}
}

func TestZeroFlagsAreInert(t *testing.T) {
	s, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults.Enabled() || s.Faults.IntegrityArmed() || s.Scrub.Enabled() || s.GCFaultWeight != 0 {
		t.Errorf("no flags armed something: %+v", s)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative gc weight", []string{"-gc-fault-weight", "-1"}},
		{"negative suspect", []string{"-fault-suspect", "-1"}},
		{"probability above one", []string{"-fault-program", "1.5"}},
		{"negative base rber", []string{"-integrity-rber", "-1e-4"}},
		{"scrub without integrity", []string{"-scrub-interval", "1500"}},
		{"negative scrub threshold", []string{"-integrity-rber", "1e-4", "-scrub-interval", "1500", "-scrub-rber", "-1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parse(t, tc.args...); err == nil {
				t.Errorf("Validate accepted %v", tc.args)
			}
		})
	}
}
