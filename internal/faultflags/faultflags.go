// Package faultflags registers the reliability knobs shared by the
// simulator binaries (ssdsim and zombiectl) on a flag set: the
// fault-injection plan (-fault-*), the data-integrity error model
// (-integrity-*), the background scrubber (-scrub-*), the device health
// governor (-health-*), the chaos soak (-chaos-*), RAIN parity striping
// (-rain-*), die failure (-die-fail-*), the flash-resident mapping table
// (-dftl-*) and the fault-aware GC victim weight. Keeping the definitions
// in one place guarantees both binaries expose the same names, defaults
// and validation messages.
package faultflags

import (
	"flag"
	"fmt"
	"math"

	"zombiessd/internal/dftl"
	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/rain"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
)

// Set holds the parsed values of the shared reliability flags.
type Set struct {
	Faults        fault.Config
	Scrub         scrub.Config
	GCFaultWeight float64

	// Preemptible-GC knobs (-gc-partial-k, -gc-lookahead, -gc-suspend-*).
	// The suspend costs are parsed as float64 microseconds so garbage like
	// NaN is caught by Validate with a named error instead of truncating.
	GCPartialK      int
	GCLookahead     int
	GCSuspendMax    int
	GCSuspendCostUS float64
	GCResumeCostUS  float64

	// Health-governor knobs (-health-*). The two delays are parsed as
	// float64 microseconds for the same reason as the suspend costs; the
	// assembled config comes from Health().
	healthCfg             health.Config
	HealthThrottleDelayUS float64
	HealthBackoffUS       float64

	// Chaos-soak knobs (-chaos-*), consumed by zombiectl's chaossweep.
	ChaosCycles int
	ChaosSeed   int64

	// RAIN parity-striping knobs (-rain-*); the assembled config comes
	// from Rain().
	RainEnable bool
	RainStripe int

	// Flash-resident mapping knobs (-dftl-*); the assembled config comes
	// from Dftl().
	DftlEnable     bool
	DftlCMTFrames  int
	DftlBatchEvict bool
}

// Register wires the shared reliability flags into fs and returns the Set
// their parsed values land in. Binary-specific knobs (ssdsim's -crash-at,
// zombiectl's -crash-points) stay with their binaries.
func Register(fs *flag.FlagSet) *Set {
	s := &Set{}
	fs.Float64Var(&s.Faults.ProgramFailProb, "fault-program", 0, "program-status failure probability (0 = perfect drive)")
	fs.Float64Var(&s.Faults.EraseFailProb, "fault-erase", 0, "erase failure probability (failed blocks retire as bad)")
	fs.Float64Var(&s.Faults.ReadFailProb, "fault-read", 0, "probability a read needs an ECC retry")
	fs.IntVar(&s.Faults.ReadRetries, "fault-read-retries", 0, "max ECC retry reads per failing read (0 = default)")
	fs.Float64Var(&s.Faults.WearFactor, "fault-wear", 0, "failure-probability scaling per block erase")
	fs.Int64Var(&s.Faults.Seed, "fault-seed", 0, "fault stream seed")
	fs.IntVar(&s.Faults.SuspectThreshold, "fault-suspect", 0, "program failures before a block retires at its next erase (0 = never)")
	fs.Float64Var(&s.GCFaultWeight, "gc-fault-weight", 0, "fault-aware GC victim penalty per program failure (0 = fault-unaware)")

	fs.Float64Var(&s.Faults.Integrity.BaseRBER, "integrity-rber", 0, "raw bit error rate of a fresh page (0 = integrity model off)")
	fs.Float64Var(&s.Faults.Integrity.RetentionRate, "integrity-retention", 0, "RBER growth per second of page age")
	fs.Float64Var(&s.Faults.Integrity.ReadDisturbRate, "integrity-read-disturb", 0, "RBER growth per read of the page's block")
	fs.Float64Var(&s.Faults.Integrity.WearRate, "integrity-wear", 0, "RBER growth per erase of the page's block")
	fs.Float64Var(&s.Faults.Integrity.CorrectableRBER, "integrity-correctable", 0,
		fmt.Sprintf("RBER above which reads need ECC retries (0 = default %g)", fault.DefaultCorrectableRBER))
	fs.Float64Var(&s.Faults.Integrity.UncorrectableRBER, "integrity-uncorrectable", 0,
		fmt.Sprintf("RBER above which reads may be uncorrectable (0 = default %g)", fault.DefaultUncorrectableRBER))
	fs.Float64Var(&s.Faults.Integrity.RevivalRBERLimit, "integrity-revival-limit", 0,
		"estimated RBER above which zombie revival is declined (0 = the uncorrectable threshold)")

	fs.Int64Var((*int64)(&s.Scrub.Interval), "scrub-interval", 0,
		"background patrol: simulated µs between block visits (0 = scrubber off; needs -integrity-rber)")
	fs.Float64Var(&s.Scrub.RefreshRBER, "scrub-rber", 0,
		"estimated RBER above which the patrol refresh-relocates a page (0 = the correctable threshold)")
	fs.IntVar(&s.Scrub.MaxCatchUp, "scrub-catchup", 0,
		fmt.Sprintf("max patrol visits recovered per host op after an idle gap (0 = default %d)", scrub.DefaultMaxCatchUp))

	fs.IntVar(&s.GCPartialK, "gc-partial-k", 0,
		"partial GC: max valid-page migrations per idle window (0 = blocking GC)")
	fs.IntVar(&s.GCLookahead, "gc-lookahead", 0,
		"partial GC: victims pre-selected per plane scoring scan (0 = 1; needs -gc-partial-k)")
	fs.IntVar(&s.GCSuspendMax, "gc-suspend-max", 0,
		"max host-read suspensions per in-flight GC erase/program (0 = no suspension)")
	fs.Float64Var(&s.GCSuspendCostUS, "gc-suspend-cost", 0,
		fmt.Sprintf("suspend overhead charged to a preempting read, µs (0 = default %d)", int64(ftl.DefaultSuspendCost)))
	fs.Float64Var(&s.GCResumeCostUS, "gc-suspend-resume", 0,
		fmt.Sprintf("resume overhead charged to the suspended GC op, µs (0 = default %d)", int64(ftl.DefaultResumeCost)))

	fs.IntVar(&s.healthCfg.ThrottleDebt, "health-throttle-debt", 0,
		"health governor: GC debt (blocks) that trips write throttling (0 = no throttling)")
	fs.Float64Var(&s.HealthThrottleDelayUS, "health-throttle-delay", 0,
		fmt.Sprintf("extra write latency while throttled, µs (0 = default %d)", int64(health.DefaultThrottleDelay)))
	fs.IntVar(&s.healthCfg.ReadOnlyFree, "health-readonly-free", 0,
		"free-block floor below which the drive goes read-only (0 = only on allocation failure)")
	fs.Float64Var(&s.healthCfg.DeadRetiredPct, "health-dead-retired", 0,
		"retired-block percentage that declares the drive dead (0 = never)")
	fs.Int64Var(&s.healthCfg.DeadLostPages, "health-dead-lost", 0,
		"lost valid pages that declare the drive dead (0 = never)")
	fs.IntVar(&s.healthCfg.Hysteresis, "health-hysteresis", 0,
		fmt.Sprintf("blocks of margin a trip signal must clear before stepping back up the ladder (0 = default %d)", health.DefaultHysteresis))
	fs.IntVar(&s.healthCfg.MaxRetries, "health-retries", 0,
		"host-layer retries of a write that failed with a transient program fault (0 = none)")
	fs.Float64Var(&s.HealthBackoffUS, "health-backoff", 0,
		fmt.Sprintf("simulated pause before each host retry, µs (0 = default %d)", int64(health.DefaultRetryBackoff)))

	fs.IntVar(&s.ChaosCycles, "chaos-cycles", 0,
		"chaossweep: crash→recover→continue cycles per architecture (0 = experiment default)")
	fs.Int64Var(&s.ChaosSeed, "chaos-seed", 0,
		"chaossweep: crash placement seed")

	fs.BoolVar(&s.RainEnable, "rain-enable", false,
		"intra-SSD RAIN: XOR parity striping across channels with stripe reconstruction")
	fs.IntVar(&s.RainStripe, "rain-stripe", 0,
		fmt.Sprintf("stripe width in pages including parity, %d-%d (0 = all channels; needs -rain-enable)",
			rain.MinStripe, rain.MaxStripe))
	fs.Int64Var(&s.Faults.DieFailAtOp, "die-fail-at", 0,
		"kill one whole die after this many host operations (0 = never)")
	fs.IntVar(&s.Faults.DieFailDie, "die-fail-die", 0,
		"flat index (channel→chip→die order) of the die -die-fail-at kills")

	fs.BoolVar(&s.DftlEnable, "dftl-enable", false,
		"flash-resident mapping: keep the page map in translation pages on flash with a bounded RAM cache (DFTL)")
	fs.IntVar(&s.DftlCMTFrames, "dftl-cmt-frames", 0,
		fmt.Sprintf("translation-page frames held resident in RAM (0 = default %d; needs -dftl-enable)", dftl.DefaultCMTFrames))
	fs.BoolVar(&s.DftlBatchEvict, "dftl-batch-evict", false,
		"batch-evict every dirty mapping sharing a translation page on write-back (needs -dftl-enable)")
	return s
}

// Health converts the parsed -health-* knobs into the governor's config.
// Call only after Validate accepted the set.
func (s *Set) Health() health.Config {
	c := s.healthCfg
	c.ThrottleDelay = ssd.Time(s.HealthThrottleDelayUS) * ssd.Microsecond
	c.RetryBackoff = ssd.Time(s.HealthBackoffUS) * ssd.Microsecond
	return c
}

// Rain converts the parsed -rain-* knobs into the parity-striping config.
// Call only after Validate accepted the set.
func (s *Set) Rain() rain.Config {
	return rain.Config{Enable: s.RainEnable, StripePages: s.RainStripe}
}

// Dftl converts the parsed -dftl-* knobs into the flash-resident mapping
// config. Call only after Validate accepted the set.
func (s *Set) Dftl() dftl.Config {
	return dftl.Config{
		Enable:     s.DftlEnable,
		CMTFrames:  s.DftlCMTFrames,
		BatchEvict: s.DftlBatchEvict,
	}
}

// Preempt converts the parsed -gc-* knobs into the FTL's preemption
// config. Call only after Validate accepted the set.
func (s *Set) Preempt() ftl.PreemptConfig {
	return ftl.PreemptConfig{
		PartialK:    s.GCPartialK,
		Lookahead:   s.GCLookahead,
		MaxSuspends: s.GCSuspendMax,
		SuspendCost: ssd.Time(s.GCSuspendCostUS) * ssd.Microsecond,
		ResumeCost:  ssd.Time(s.GCResumeCostUS) * ssd.Microsecond,
	}
}

// Validate rejects out-of-range values with the flag name in the message,
// so binaries can report bad input before any simulation starts.
func (s *Set) Validate() error {
	if s.GCFaultWeight < 0 {
		return fmt.Errorf("-gc-fault-weight must be ≥ 0, got %g", s.GCFaultWeight)
	}
	if s.Faults.SuspectThreshold < 0 {
		return fmt.Errorf("-fault-suspect must be ≥ 0, got %d", s.Faults.SuspectThreshold)
	}
	if err := s.Faults.Validate(); err != nil {
		return err
	}
	if err := s.Scrub.Validate(); err != nil {
		return err
	}
	if s.Scrub.Enabled() && !s.Faults.IntegrityArmed() {
		return fmt.Errorf("-scrub-interval needs the integrity model armed (set -integrity-rber)")
	}
	for _, c := range []struct {
		name string
		v    float64
	}{{"-gc-suspend-cost", s.GCSuspendCostUS}, {"-gc-suspend-resume", s.GCResumeCostUS}} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("%w: %s must be a finite number of µs, got %g", ftl.ErrBadSuspend, c.name, c.v)
		}
		if c.v != math.Trunc(c.v) {
			return fmt.Errorf("%w: %s must be whole µs, got %g", ftl.ErrBadSuspend, c.name, c.v)
		}
	}
	if err := s.Preempt().Validate(); err != nil {
		return err
	}
	for _, c := range []struct {
		name  string
		v     float64
		class error
	}{
		{"-health-throttle-delay", s.HealthThrottleDelayUS, health.ErrBadDelay},
		{"-health-backoff", s.HealthBackoffUS, health.ErrBadRetry},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("%w: %s must be a finite number of µs, got %g", c.class, c.name, c.v)
		}
		if c.v != math.Trunc(c.v) {
			return fmt.Errorf("%w: %s must be whole µs, got %g", c.class, c.name, c.v)
		}
	}
	if err := s.Health().Validate(); err != nil {
		return err
	}
	if s.ChaosCycles < 0 {
		return fmt.Errorf("-chaos-cycles must be ≥ 0, got %d", s.ChaosCycles)
	}
	if s.ChaosSeed < 0 {
		return fmt.Errorf("-chaos-seed must be ≥ 0, got %d", s.ChaosSeed)
	}
	if s.RainStripe != 0 && !s.RainEnable {
		return fmt.Errorf("%w: -rain-stripe needs -rain-enable", rain.ErrBadStripe)
	}
	if err := s.Rain().Validate(); err != nil {
		return err
	}
	if err := s.Dftl().Validate(); err != nil {
		return err
	}
	return nil
}
