package ftl

import (
	"errors"
	"math/rand"
	"testing"

	"zombiessd/internal/ssd"
)

// tinyGeometry keeps per-test state small: 2 channels × 2 chips × 1 die ×
// 1 plane, 8 blocks/plane × 16 pages.
func tinyGeometry() ssd.Geometry {
	return ssd.Geometry{
		Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
	}
}

func newTinyStore(t *testing.T, cfg StoreConfig) (*Store, *ssd.Bus) {
	t.Helper()
	bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency())
	s, err := NewStore(cfg, bus)
	if err != nil {
		t.Fatal(err)
	}
	return s, bus
}

func TestStoreConfigValidate(t *testing.T) {
	if err := DefaultStoreConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (StoreConfig{GCFreeBlockThreshold: 1}).Validate(); err == nil {
		t.Error("accepted threshold below 2")
	}
	if err := (StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: -1}).Validate(); err == nil {
		t.Error("accepted negative popularity weight")
	}
}

func TestNewStoreRejectsThresholdAboveBlocks(t *testing.T) {
	bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency())
	if _, err := NewStore(StoreConfig{GCFreeBlockThreshold: 8}, bus); err == nil {
		t.Error("accepted threshold ≥ blocks per plane")
	}
}

func TestPageStateString(t *testing.T) {
	if PageFree.String() != "free" || PageValid.String() != "valid" || PageInvalid.String() != "invalid" {
		t.Error("state strings wrong")
	}
	if PageState(9).String() == "" {
		t.Error("unknown state string empty")
	}
}

func TestProgramMarksValidAndStripes(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	g := s.Geometry()
	seen := make(map[int]bool) // chips hit by the first len(planes) programs
	for i := 0; i < g.TotalPlanes(); i++ {
		ppn, done, err := s.Program(0)
		if err != nil {
			t.Fatal(err)
		}
		if done <= 0 {
			t.Fatal("program completed at time 0")
		}
		if s.State(ppn) != PageValid {
			t.Fatalf("programmed page %d is %v", ppn, s.State(ppn))
		}
		seen[g.ChipOf(ppn)] = true
	}
	if len(seen) != g.TotalChips() {
		t.Errorf("first wave of programs hit %d chips, want all %d (channel striping)", len(seen), g.TotalChips())
	}
}

func TestInvalidateRevalidateLifecycle(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	ppn, _, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate(ppn)
	if s.State(ppn) != PageInvalid {
		t.Fatalf("state after Invalidate = %v", s.State(ppn))
	}
	s.Revalidate(ppn) // the zombie revival
	if s.State(ppn) != PageValid {
		t.Fatalf("state after Revalidate = %v", s.State(ppn))
	}
}

func TestInvalidateErrsOnWrongState(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	if err := s.Invalidate(0); !errors.Is(err, ErrPageState) {
		t.Errorf("Invalidate of a free page: err = %v, want ErrPageState", err)
	}
	if s.State(0) != PageFree {
		t.Errorf("failed Invalidate mutated the page: %v", s.State(0))
	}
}

func TestRevalidateErrsOnWrongState(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	ppn, _, _ := s.Program(0)
	if err := s.Revalidate(ppn); !errors.Is(err, ErrPageState) {
		t.Errorf("Revalidate of a valid page: err = %v, want ErrPageState", err)
	}
	if s.State(ppn) != PageValid {
		t.Errorf("failed Revalidate mutated the page: %v", s.State(ppn))
	}
}

// fillAndChurn programs pages and randomly invalidates older ones, like a
// steady overwrite workload, returning the PPNs still valid. Random (not
// FIFO) invalidation leaves victims with a mix of valid and invalid pages,
// so GC must relocate. The caller may install OnRelocate before calling;
// this helper chains it to keep the live set coherent.
func fillAndChurn(t *testing.T, s *Store, writes int) map[ssd.PPN]bool {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	live := make(map[ssd.PPN]bool)
	var order []ssd.PPN
	prev := s.OnRelocate
	s.OnRelocate = func(src, dst ssd.PPN) {
		if live[src] {
			delete(live, src)
			live[dst] = true
			order = append(order, dst)
		}
		if prev != nil {
			prev(src, dst)
		}
	}
	liveCap := int(float64(s.Geometry().TotalPages()) * 0.6)
	now := ssd.Time(0)
	for i := 0; i < writes; i++ {
		now += 10
		ppn, _, err := s.Program(now)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		live[ppn] = true
		order = append(order, ppn)
		for len(live) > liveCap && len(order) > 0 {
			idx := rng.Intn(len(order))
			p := order[idx]
			order = append(order[:idx], order[idx+1:]...)
			if live[p] && s.State(p) == PageValid {
				s.Invalidate(p)
				delete(live, p)
			}
		}
	}
	return live
}

func TestGCReclaimsSpace(t *testing.T) {
	s, bus := newTinyStore(t, DefaultStoreConfig())
	total := int(s.Geometry().TotalPages())
	fillAndChurn(t, s, total*4) // churn 4× the drive: impossible without GC
	if s.GC().Runs == 0 || s.GC().Erased == 0 {
		t.Fatalf("no GC activity after heavy churn: %+v", s.GC())
	}
	_, _, erases := bus.Counts()
	if erases != s.GC().Erased {
		t.Errorf("bus erases %d != GC erased %d", erases, s.GC().Erased)
	}
}

func TestGCRelocationPreservesOwnership(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	var relocations int64
	s.OnRelocate = func(src, dst ssd.PPN) { relocations++ }
	live := fillAndChurn(t, s, int(s.Geometry().TotalPages())*4)
	if relocations == 0 {
		t.Fatal("no relocations observed")
	}
	if relocations != s.GC().Relocated {
		t.Errorf("callback count %d != stats %d", relocations, s.GC().Relocated)
	}
	// Every page still claimed live must be valid under the final mapping
	// (fillAndChurn follows relocations like a mapper would).
	for p := range live {
		if s.State(p) != PageValid {
			t.Fatalf("live page %d is %v after GC", p, s.State(p))
		}
	}
}

func TestGCNotifiesErasedGarbage(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	var notified int64
	s.OnEraseGarbage = func(p ssd.PPN) {
		notified++
		// At notification time the page must still be garbage; it is the
		// pool's last chance to drop its entry.
		if s.State(p) != PageInvalid {
			t.Fatalf("OnEraseGarbage(%d) with state %v", p, s.State(p))
		}
	}
	fillAndChurn(t, s, int(s.Geometry().TotalPages())*4)
	if notified == 0 {
		t.Fatal("no garbage-erase notifications")
	}
}

func TestOutOfSpaceWithoutInvalidations(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	total := int(s.Geometry().TotalPages())
	var err error
	for i := 0; i < total+1; i++ {
		_, _, err = s.Program(0)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("filling the drive with valid data returned %v, want ErrNoSpace", err)
	}
}

// fixedScorer marks a set of pages as popular garbage.
type fixedScorer map[ssd.PPN]uint8

func (f fixedScorer) GarbagePopularity(p ssd.PPN) (uint8, bool) {
	pop, ok := f[p]
	return pop, ok
}

func TestPopularityAwareVictimSelection(t *testing.T) {
	// Two candidate blocks with equal invalid counts; one holds popular
	// garbage. Greedy is indifferent; popularity-aware must pick the other.
	geo := ssd.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 4, PagesPerBlock: 4, PageSize: 4096, OverProvision: 0.15,
	}
	build := func(weight float64) (*Store, []ssd.PPN) {
		bus := ssd.NewBus(geo, ssd.PaperLatency())
		s, err := NewStore(StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: weight}, bus)
		if err != nil {
			t.Fatal(err)
		}
		// Fill blocks 0 and 1 fully; block 2 becomes the active frontier,
		// so blocks 0 and 1 are both GC candidates.
		var pages []ssd.PPN
		for i := 0; i < 12; i++ {
			p, _, err := s.Program(0)
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, p)
		}
		// Invalidate half of block 0 and half of block 1: equal greed.
		for _, p := range []int{0, 1, 4, 5} {
			s.Invalidate(pages[p])
		}
		return s, pages
	}

	// Popular garbage lives in block 0 (pages 0,1).
	s, pages := build(1.0)
	s.Scorer = fixedScorer{pages[0]: 200, pages[1]: 200}
	if v := s.victim(0); v != s.Geometry().BlockOf(pages[4]) {
		t.Errorf("popularity-aware victim = block %d, want the unpopular block %d",
			v, s.Geometry().BlockOf(pages[4]))
	}

	// With weight 0 the same scorer must not influence the choice: both
	// blocks tie, the first candidate wins.
	s2, pages2 := build(0)
	s2.Scorer = fixedScorer{pages2[0]: 200, pages2[1]: 200}
	if v := s2.victim(0); v != s2.Geometry().BlockOf(pages2[0]) {
		t.Errorf("greedy victim = block %d, want first tied block %d", v, s2.Geometry().BlockOf(pages2[0]))
	}
}

func TestVictimNoneWhenNoGarbage(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	for i := 0; i < 5; i++ {
		if _, _, err := s.Program(0); err != nil {
			t.Fatal(err)
		}
	}
	if v := s.victim(0); v != ssd.InvalidBlock {
		t.Errorf("victim = %d with no invalid pages, want InvalidBlock", v)
	}
}

func TestWearSummary(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	fillAndChurn(t, s, int(s.Geometry().TotalPages())*6)
	w := s.Wear()
	if w.TotalErases == 0 {
		t.Fatal("no wear recorded after churn")
	}
	if w.MaxErases < w.MinErases {
		t.Errorf("wear summary inconsistent: %+v", w)
	}
	if w.TotalErases != s.GC().Erased {
		t.Errorf("total erases %d != GC erased %d", w.TotalErases, s.GC().Erased)
	}
}

func TestBlockAccountingInvariant(t *testing.T) {
	// Under random program/invalidate/revalidate churn, per-block counters
	// must always match the page states.
	s, _ := newTinyStore(t, DefaultStoreConfig())
	g := s.Geometry()
	rng := rand.New(rand.NewSource(8))
	valid := make(map[ssd.PPN]bool)
	var invalid []ssd.PPN
	// GC moves valid pages; keep the shadow set in sync like a mapper would.
	s.OnRelocate = func(src, dst ssd.PPN) {
		if valid[src] {
			delete(valid, src)
			valid[dst] = true
		}
	}
	anyValid := func() (ssd.PPN, bool) {
		for p := range valid {
			return p, true
		}
		return 0, false
	}
	now := ssd.Time(0)
	for i := 0; i < 3000; i++ {
		now += 5
		switch rng.Intn(4) {
		case 0, 1:
			if p, _, err := s.Program(now); err == nil {
				valid[p] = true
			} else if p, ok := anyValid(); ok {
				s.Invalidate(p)
				delete(valid, p)
				invalid = append(invalid, p)
			}
		case 2:
			if p, ok := anyValid(); ok {
				s.Invalidate(p)
				delete(valid, p)
				invalid = append(invalid, p)
			}
		default:
			// Revive a zombie, if it still exists as garbage (GC may have
			// erased it meanwhile).
			for len(invalid) > 0 {
				idx := rng.Intn(len(invalid))
				p := invalid[idx]
				invalid = append(invalid[:idx], invalid[idx+1:]...)
				if s.State(p) == PageInvalid {
					s.Revalidate(p)
					valid[p] = true
					break
				}
			}
		}
		if i%250 == 0 {
			checkBlockCounters(t, s, g)
		}
	}
	checkBlockCounters(t, s, g)
}

func checkBlockCounters(t *testing.T, s *Store, g ssd.Geometry) {
	t.Helper()
	for b := ssd.BlockID(0); int64(b) < g.TotalBlocks(); b++ {
		var v, inv int32
		for i := 0; i < g.PagesPerBlock; i++ {
			switch s.State(g.PageAt(b, i)) {
			case PageValid:
				v++
			case PageInvalid:
				inv++
			}
		}
		if v != s.blocks[b].valid || inv != s.blocks[b].invalid {
			t.Fatalf("block %d counters (v=%d,i=%d) disagree with states (v=%d,i=%d)",
				b, s.blocks[b].valid, s.blocks[b].invalid, v, inv)
		}
	}
}

func TestWearAwareAllocationNarrowsSpread(t *testing.T) {
	run := func(wearAware bool) WearSummary {
		bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency())
		s, err := NewStore(StoreConfig{GCFreeBlockThreshold: 2, WearAware: wearAware}, bus)
		if err != nil {
			t.Fatal(err)
		}
		fillAndChurn(t, s, int(s.Geometry().TotalPages())*12)
		return s.Wear()
	}
	plain := run(false)
	aware := run(true)
	if aware.TotalErases == 0 || plain.TotalErases == 0 {
		t.Fatal("no wear accumulated")
	}
	spread := func(w WearSummary) int32 { return w.MaxErases - w.MinErases }
	if spread(aware) > spread(plain) {
		t.Errorf("wear-aware spread %d wider than plain %d", spread(aware), spread(plain))
	}
}

func TestSoftGCThresholdValidation(t *testing.T) {
	if err := (StoreConfig{GCFreeBlockThreshold: 2, SoftGCThreshold: 2}).Validate(); err == nil {
		t.Error("accepted soft threshold equal to hard threshold")
	}
	if err := (StoreConfig{GCFreeBlockThreshold: 2, SoftGCThreshold: 4}).Validate(); err != nil {
		t.Errorf("rejected valid soft threshold: %v", err)
	}
	bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency())
	if _, err := NewStore(StoreConfig{GCFreeBlockThreshold: 2, SoftGCThreshold: 8}, bus); err == nil {
		t.Error("accepted soft threshold ≥ blocks per plane")
	}
}

func TestBackgroundGCPreemptsForegroundStalls(t *testing.T) {
	// FIFO churn: the oldest live page dies first, so whole blocks turn to
	// garbage in order and qualify for background (fully-dead) collection.
	run := func(soft int) GCStats {
		bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency())
		s, err := NewStore(StoreConfig{GCFreeBlockThreshold: 2, SoftGCThreshold: soft}, bus)
		if err != nil {
			t.Fatal(err)
		}
		var live []ssd.PPN
		s.OnRelocate = func(src, dst ssd.PPN) {
			for i, p := range live {
				if p == src {
					live[i] = dst
					break
				}
			}
		}
		liveCap := int(float64(s.Geometry().TotalPages()) * 0.6)
		now := ssd.Time(0)
		for i := 0; i < int(s.Geometry().TotalPages())*6; i++ {
			now += 10
			ppn, _, err := s.Program(now)
			if err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			live = append(live, ppn)
			if len(live) > liveCap {
				s.Invalidate(live[0])
				live = live[1:]
			}
		}
		return s.GC()
	}
	plain := run(0)
	bg := run(4)
	if plain.Background != 0 {
		t.Fatalf("background cycles without soft threshold: %d", plain.Background)
	}
	if bg.Background == 0 {
		t.Fatal("soft threshold never triggered background GC")
	}
	// With the soft threshold, foreground (hard-threshold) cycles must
	// shrink: the background cycles do the work ahead of time.
	plainFg := plain.Runs
	bgFg := bg.Runs - bg.Background
	if bgFg >= plainFg {
		t.Errorf("foreground GC cycles did not shrink: %d (bg on) vs %d (bg off)", bgFg, plainFg)
	}
	// Background victims are fully dead, so no extra relocation at all.
	if bg.Relocated > plain.Relocated {
		t.Errorf("background GC inflated relocations: %d vs %d", bg.Relocated, plain.Relocated)
	}
}

func TestMultiStreamSeparation(t *testing.T) {
	bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency())
	s, err := NewStore(StoreConfig{GCFreeBlockThreshold: 2, UserStreams: 2, SeparateGCStream: true}, bus)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Geometry()
	// Pages written to different streams must never share a block.
	blocksOf := make(map[int]map[ssd.BlockID]bool)
	for i := 0; i < 40; i++ {
		stream := i % 2
		p, _, err := s.ProgramStream(0, stream)
		if err != nil {
			t.Fatal(err)
		}
		if blocksOf[stream] == nil {
			blocksOf[stream] = make(map[ssd.BlockID]bool)
		}
		blocksOf[stream][g.BlockOf(p)] = true
	}
	for b := range blocksOf[0] {
		if blocksOf[1][b] {
			t.Fatalf("block %d holds pages of both streams", b)
		}
	}
	// Out-of-range streams are rejected.
	if _, _, err := s.ProgramStream(0, 2); err == nil {
		t.Error("accepted stream index ≥ UserStreams")
	}
	if _, _, err := s.ProgramStream(0, -1); err == nil {
		t.Error("accepted negative stream")
	}
}

func TestStreamConfigValidation(t *testing.T) {
	if err := (StoreConfig{GCFreeBlockThreshold: 2, UserStreams: 9}).Validate(); err == nil {
		t.Error("accepted 9 user streams")
	}
	if err := (StoreConfig{GCFreeBlockThreshold: 2, UserStreams: -1}).Validate(); err == nil {
		t.Error("accepted negative streams")
	}
	// Frontier + threshold must fit in the plane.
	bus := ssd.NewBus(tinyGeometry(), ssd.PaperLatency()) // 8 blocks/plane
	if _, err := NewStore(StoreConfig{GCFreeBlockThreshold: 5, UserStreams: 3, SeparateGCStream: true}, bus); err == nil {
		t.Error("accepted frontiers+threshold ≥ blocks per plane")
	}
}

// TestStreamSeparationReducesRelocation: steering hot (quickly rewritten)
// and cold (write-once) pages to separate streams leaves GC victims nearly
// all-garbage, cutting relocation traffic versus the mixed single stream.
func TestStreamSeparationReducesRelocation(t *testing.T) {
	run := func(streams bool) GCStats {
		// Roomier planes than tinyGeometry: three frontiers plus the free
		// reserve must leave real working space.
		geo := ssd.Geometry{
			Channels: 2, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 1,
			BlocksPerPlane: 32, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
		}
		bus := ssd.NewBus(geo, ssd.PaperLatency())
		cfg := StoreConfig{GCFreeBlockThreshold: 2}
		if streams {
			cfg.UserStreams = 2
			cfg.SeparateGCStream = true
		}
		s, err := NewStore(cfg, bus)
		if err != nil {
			t.Fatal(err)
		}
		total := int(s.Geometry().TotalPages())
		// Cold pages (write-once, long-lived) are interleaved with hot
		// churn, so a single stream mixes lifetimes within blocks.
		coldTarget := total * 2 / 5
		coldWritten := 0
		hot := make([]ssd.PPN, 0, total/10)
		s.OnRelocate = func(src, dst ssd.PPN) {
			for i, p := range hot {
				if p == src {
					hot[i] = dst
					break
				}
			}
		}
		now := ssd.Time(0)
		writes := total * 4
		for i := 0; i < writes; i++ {
			now += 10
			coldTurn := coldWritten < coldTarget && i%(writes/coldTarget+1) == 0
			var p ssd.PPN
			var err error
			if streams && !coldTurn {
				p, _, err = s.ProgramStream(now, 1)
			} else {
				p, _, err = s.Program(now)
			}
			if err != nil {
				t.Fatal(err)
			}
			if coldTurn {
				coldWritten++
				continue // cold pages stay valid forever
			}
			hot = append(hot, p)
			if len(hot) > total/10 {
				s.Invalidate(hot[0])
				hot = hot[1:]
			}
		}
		return s.GC()
	}
	mixed := run(false)
	separated := run(true)
	if separated.Relocated >= mixed.Relocated {
		t.Errorf("stream separation did not cut relocation: %d vs %d",
			separated.Relocated, mixed.Relocated)
	}
}
