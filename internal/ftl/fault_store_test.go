package ftl

import (
	"errors"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/ssd"
)

func faultyConfig(f fault.Config) StoreConfig {
	cfg := DefaultStoreConfig()
	cfg.Faults = f
	return cfg
}

func TestZeroFaultPlanKeepsInjectorNil(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	if s.inj != nil {
		t.Fatal("zero fault plan built an injector")
	}
	if s.FaultStats().Any() {
		t.Fatalf("fault stats nonzero on a perfect drive: %+v", s.FaultStats())
	}
}

func TestProgramFailureRelandsOnFreshPage(t *testing.T) {
	// Half the programs fail: every host program must still land on a
	// valid page, burning invalid pages and relocation work behind it.
	s, bus := newTinyStore(t, faultyConfig(fault.Config{
		Seed: 11, ProgramFailProb: 0.5, MaxProgramAttempts: 64,
	}))
	const n = 20
	for i := 0; i < n; i++ {
		ppn, done, err := s.Program(ssd.Time(i))
		if err != nil {
			t.Fatal(err)
		}
		if done <= 0 {
			t.Fatal("program completed at time 0")
		}
		if s.State(ppn) != PageValid {
			t.Fatalf("program %d landed on a %v page", i, s.State(ppn))
		}
	}
	f := s.FaultStats()
	if f.ProgramFailures == 0 {
		t.Fatal("prob-0.5 plan injected no program failures over 20 programs")
	}
	if f.Relocations == 0 {
		t.Error("failed programs recorded no re-landings")
	}
	if f.SuspectBlocks == 0 {
		t.Error("program failures marked no block suspect")
	}
	_, programs, _ := bus.Counts()
	if want := int64(n) + f.ProgramFailures; programs != want {
		t.Errorf("bus programs = %d, want %d (each failure pays a full program)", programs, want)
	}
}

func TestProgramFailureExhaustsAttempts(t *testing.T) {
	s, _ := newTinyStore(t, faultyConfig(fault.Config{
		Seed: 1, ProgramFailProb: 1, MaxProgramAttempts: 3,
	}))
	_, _, err := s.Program(0)
	if !errors.Is(err, ErrProgramFault) {
		t.Fatalf("certain-failure program returned %v, want ErrProgramFault", err)
	}
	if got := s.FaultStats().ProgramFailures; got != 3 {
		t.Errorf("recorded %d failures, want 3 (one per attempt)", got)
	}
	if s.FaultStats().Relocations != 0 {
		t.Error("a program that never landed counted a relocation")
	}
}

func TestReadRetriesPayExtraReads(t *testing.T) {
	s, bus := newTinyStore(t, faultyConfig(fault.Config{
		Seed: 2, ReadFailProb: 1, ReadRetries: 2,
	}))
	ppn, _, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	readsBefore, _, _ := bus.Counts()
	plain := ssd.NewBus(tinyGeometry(), ssd.PaperLatency()).Read(ppn, 0)
	done, err := s.Read(ppn, 0)
	if err != nil {
		t.Fatal(err)
	}
	readsAfter, _, _ := bus.Counts()
	if got := readsAfter - readsBefore; got != 3 {
		t.Errorf("certain-failure read issued %d bus reads, want 1 + 2 retries", got)
	}
	if got := s.FaultStats().ReadRetries; got != 2 {
		t.Errorf("recorded %d retries, want 2", got)
	}
	if done <= plain {
		t.Errorf("retried read finished at %d, no later than a clean read (%d)", done, plain)
	}
}

// churn overwrites the footprint until GC has run at least minRuns cycles,
// or fails the test if space runs out first. It tracks GC relocations via
// OnRelocate so its page map follows moved data.
func churn(t *testing.T, s *Store, minRuns int64) error {
	t.Helper()
	g := s.Geometry()
	logical := int(float64(g.TotalPages()) * 0.8)
	live := make([]ssd.PPN, logical)
	where := make(map[ssd.PPN]int, logical)
	for i := range live {
		live[i] = ssd.InvalidPPN
	}
	s.OnRelocate = func(old, new ssd.PPN) {
		if i, ok := where[old]; ok {
			delete(where, old)
			live[i] = new
			where[new] = i
		}
	}
	defer func() { s.OnRelocate = nil }()
	for pass := 0; pass < 64; pass++ {
		for i := range live {
			if live[i] != ssd.InvalidPPN {
				s.Invalidate(live[i])
				delete(where, live[i])
			}
			ppn, _, err := s.Program(0)
			if err != nil {
				return err
			}
			live[i] = ppn
			where[ppn] = i
		}
		if s.GC().Runs >= minRuns {
			return nil
		}
	}
	t.Fatalf("GC ran only %d cycles, want %d", s.GC().Runs, minRuns)
	return nil
}

func TestEraseFailureRetiresBlock(t *testing.T) {
	s, _ := newTinyStore(t, faultyConfig(fault.Config{
		Seed: 3, EraseFailProb: 0.3,
	}))
	// With 30% of erases failing on an 8-block plane the drive eventually
	// runs out of space; both outcomes of churn are acceptable as long as
	// blocks actually retired.
	if err := churn(t, s, 200); err != nil && !errors.Is(err, ErrNoSpace) {
		t.Fatal(err)
	}
	f := s.FaultStats()
	if f.EraseFailures == 0 || f.RetiredBlocks == 0 {
		t.Fatalf("no retirement under erase failures: %+v", f)
	}
	// Retired blocks must be out of service everywhere: flagged bad, not
	// free, absent from every free list and never an active frontier.
	var bad int64
	for b := range s.blocks {
		if !s.blocks[b].bad {
			continue
		}
		bad++
		info := &s.blocks[b]
		if info.free || info.active {
			t.Fatalf("retired block %d still free=%v active=%v", b, info.free, info.active)
		}
		if !s.BadBlock(ssd.BlockID(b)) {
			t.Fatalf("BadBlock(%d) = false for a retired block", b)
		}
	}
	if bad != f.RetiredBlocks {
		t.Errorf("%d blocks flagged bad, stats say %d retired", bad, f.RetiredBlocks)
	}
	for p := range s.planes {
		for _, b := range s.planes[p].freeBlocks {
			if s.blocks[b].bad {
				t.Fatalf("retired block %d on plane %d free list", b, p)
			}
		}
	}
}

func TestSuspectThresholdRetiresAtErase(t *testing.T) {
	s, _ := newTinyStore(t, faultyConfig(fault.Config{
		Seed: 4, ProgramFailProb: 0.3, MaxProgramAttempts: 64, SuspectThreshold: 1,
	}))
	// Any block with one program failure retires at its next erase, so
	// churning long enough must retire something even though no erase
	// ever fails outright.
	err := churn(t, s, 100)
	f := s.FaultStats()
	if err != nil && !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrProgramFault) {
		t.Fatal(err)
	}
	if f.ProgramFailures == 0 {
		t.Fatal("no program failures injected")
	}
	if f.RetiredBlocks == 0 {
		t.Errorf("threshold-1 suspicion retired no blocks: %+v", f)
	}
	if f.EraseFailures != 0 {
		t.Errorf("erase failures injected with EraseFailProb 0: %+v", f)
	}
}

func TestFaultyGCStillRelands(t *testing.T) {
	// Faults on every class at once: after heavy churn every surviving
	// valid page must really be valid and block accounting must balance.
	s, _ := newTinyStore(t, faultyConfig(fault.Config{
		Seed: 5, ProgramFailProb: 0.05, EraseFailProb: 0.01, ReadFailProb: 0.1,
		WearFactor: 0.01, MaxProgramAttempts: 64,
	}))
	if err := churn(t, s, 300); err != nil && !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrProgramFault) {
		t.Fatal(err)
	}
	for b := range s.blocks {
		info := &s.blocks[b]
		first := s.geo.FirstPage(ssd.BlockID(b))
		var valid, invalid int32
		for i := 0; i < s.geo.PagesPerBlock; i++ {
			switch s.State(first + ssd.PPN(i)) {
			case PageValid:
				valid++
			case PageInvalid:
				invalid++
			}
		}
		if valid != info.valid || invalid != info.invalid {
			t.Fatalf("block %d counters valid=%d invalid=%d, pages say %d/%d",
				b, info.valid, info.invalid, valid, invalid)
		}
	}
	if !s.FaultStats().Any() {
		t.Error("no fault activity recorded under an all-class plan")
	}
}
