package ftl

// Multi-tenant attribution inside the store: when the host engine runs
// several tenant streams against one device, the flash-level effects that
// matter for isolation — programs, GC relocation traffic, and zombie
// revivals that consume another tenant's garbage — need a per-tenant
// ledger. The store keeps a per-page owner stamp (who last programmed or
// revived the page) and a scoped current-tenant register the engine sets
// around each request, mirroring the telemetry EnterOrigin/ExitOrigin
// pattern. Everything here is observational: owners never influence
// allocation, GC victim choice or revival decisions, so enabling tenants
// cannot change a simulated-time result, and a store without
// EnableTenants pays one nil check per hook (TestNoTenantBitIdentity
// pins both properties).

// TenantStoreStats is one tenant's flash-level ledger.
type TenantStoreStats struct {
	// HostPrograms counts pages programmed for the tenant's own writes
	// (OOB-stamped while the tenant was in scope).
	HostPrograms int64

	// GCRelocations counts relocation copies performed by GC cycles that
	// ran while servicing this tenant's request — the write-amplification
	// work the tenant induced, whoever's pages moved.
	GCRelocations int64

	// RelocatedOwn counts relocation copies whose moved page this tenant
	// owned — the tenant's data being dragged around by anyone's GC.
	RelocatedOwn int64

	// RevivedSelf counts zombie revivals that matched garbage the tenant
	// itself had written.
	RevivedSelf int64

	// RevivedOther counts revivals where the tenant's write matched
	// garbage another tenant (or preconditioning) left behind — the
	// cross-tenant DVP subsidy received.
	RevivedOther int64

	// RevivedByOther counts this tenant's garbage pages revived by some
	// other tenant's write — the subsidy granted.
	RevivedByOther int64
}

// noTenant marks an unowned page or an out-of-scope operation
// (preconditioning, recovery, background daemons).
const noTenant = -1

// EnableTenants switches on per-tenant attribution for n tenants. Every
// page starts unowned; the current scope starts out-of-scope. Calling it
// again resets the ledger.
func (s *Store) EnableTenants(n int) {
	s.tenantStats = make([]TenantStoreStats, n)
	s.pageOwner = make([]int16, s.geo.TotalPages())
	for i := range s.pageOwner {
		s.pageOwner[i] = noTenant
	}
	s.curTenant = noTenant
}

// TenantsEnabled reports whether per-tenant attribution is on.
func (s *Store) TenantsEnabled() bool { return s.pageOwner != nil }

// EnterTenant scopes subsequent flash activity to tenant t (noTenant, or
// any negative value, for none) and returns the previous scope; callers
// restore it with ExitTenant. No-op (returning noTenant) while tenant
// attribution is disabled.
func (s *Store) EnterTenant(t int) int {
	if s.pageOwner == nil {
		return noTenant
	}
	prev := s.curTenant
	if t < 0 || t >= len(s.tenantStats) {
		s.curTenant = noTenant
	} else {
		s.curTenant = int16(t)
	}
	return int(prev)
}

// ExitTenant restores the scope returned by EnterTenant.
func (s *Store) ExitTenant(prev int) {
	if s.pageOwner == nil {
		return
	}
	if prev < 0 || prev >= len(s.tenantStats) {
		s.curTenant = noTenant
	} else {
		s.curTenant = int16(prev)
	}
}

// TenantStats returns a copy of the per-tenant ledger (nil when
// attribution is off).
func (s *Store) TenantStats() []TenantStoreStats {
	if s.tenantStats == nil {
		return nil
	}
	out := make([]TenantStoreStats, len(s.tenantStats))
	copy(out, s.tenantStats)
	return out
}

// ownProgrammed records a host program of ppn under the current scope.
func (s *Store) ownProgrammed(ppn int64) {
	if s.pageOwner == nil {
		return
	}
	s.pageOwner[ppn] = s.curTenant
	if s.curTenant >= 0 {
		s.tenantStats[s.curTenant].HostPrograms++
	}
}

// ownRelocated moves src's owner stamp to its GC relocation copy dst and
// charges the ledger: the in-scope tenant induced the copy, the owner had
// a page moved.
func (s *Store) ownRelocated(src, dst int64) {
	if s.pageOwner == nil {
		return
	}
	owner := s.pageOwner[src]
	s.pageOwner[dst] = owner
	if s.curTenant >= 0 {
		s.tenantStats[s.curTenant].GCRelocations++
	}
	if owner >= 0 {
		s.tenantStats[owner].RelocatedOwn++
	}
}

// ownRevived reassigns a revived garbage page to the in-scope tenant and
// books the subsidy direction.
func (s *Store) ownRevived(ppn int64) {
	if s.pageOwner == nil || s.curTenant < 0 {
		return
	}
	prev := s.pageOwner[ppn]
	st := &s.tenantStats[s.curTenant]
	switch {
	case prev == s.curTenant:
		st.RevivedSelf++
	default:
		st.RevivedOther++
		if prev >= 0 {
			s.tenantStats[prev].RevivedByOther++
		}
	}
	s.pageOwner[ppn] = s.curTenant
}
