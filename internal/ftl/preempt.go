package ftl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
)

// Preemptible GC (Nagel et al., "Time-efficient Garbage Collection in
// SSDs"): instead of holding the host for a whole victim migration, the
// store drains victims a few pages at a time inside the idle windows
// between requests (the scrub patrol's stamp-at-zero trick), suspends
// in-flight GC erases/programs when a host read arrives mid-operation,
// and pre-selects several victims at once so migrations coalesce onto the
// idlest destination chips. The zero PreemptConfig disables all of it and
// is bit-identical to the blocking collector.

// Named configuration errors, so the flag surfaces (and FuzzGCConfig) can
// assert the exact rejection class with errors.Is.
var (
	// ErrBadPartialK rejects invalid -gc-partial-k values.
	ErrBadPartialK = errors.New("ftl: bad -gc-partial-k")
	// ErrBadLookahead rejects invalid -gc-lookahead values.
	ErrBadLookahead = errors.New("ftl: bad -gc-lookahead")
	// ErrBadSuspend rejects inconsistent -gc-suspend-* values.
	ErrBadSuspend = errors.New("ftl: bad -gc-suspend configuration")
)

// maxLookahead bounds how many victims one plane may pre-select: the
// foreground fallback must always find a non-draining victim, so the
// drain queue may never monopolize a plane's candidate set.
const maxLookahead = 8

// Default suspend/resume overheads, applied by WithDefaults when
// suspension is enabled with zero costs (the ~20 µs erase-suspend latency
// reported for modern NAND).
const (
	DefaultSuspendCost = 20 * ssd.Microsecond
	DefaultResumeCost  = 20 * ssd.Microsecond
)

// PreemptConfig parameterizes preemptible garbage collection. The zero
// value disables partial GC, lookahead batching and suspension alike.
type PreemptConfig struct {
	// PartialK is the migration budget of one idle window: at most this
	// many valid pages are relocated per host-request gap. 0 disables
	// partial GC entirely.
	PartialK int

	// Lookahead is how many victims a plane pre-selects per scoring scan
	// (multi-victim batching, in [1, 8]). 0 means 1 when partial GC is on;
	// setting it without PartialK is a configuration error.
	Lookahead int

	// MaxSuspends bounds how many times one in-flight GC erase/program may
	// be suspended by host reads; the bound is what keeps suspended erases
	// starvation-free. 0 disables suspension.
	MaxSuspends int

	// SuspendCost and ResumeCost are the per-suspension overheads charged
	// on the chip timeline (see ssd.SuspendConfig). 0 picks the defaults
	// when suspension is enabled; negative is rejected.
	SuspendCost ssd.Time
	ResumeCost  ssd.Time
}

// PartialEnabled reports whether idle-window partial GC is on.
func (c PreemptConfig) PartialEnabled() bool { return c.PartialK > 0 }

// SuspendEnabled reports whether read-over-GC suspension is on.
func (c PreemptConfig) SuspendEnabled() bool { return c.MaxSuspends > 0 }

// Enabled reports whether any preemption mechanism is on.
func (c PreemptConfig) Enabled() bool { return c.PartialEnabled() || c.SuspendEnabled() }

// Validate rejects malformed configurations with the named errors above.
func (c PreemptConfig) Validate() error {
	if c.PartialK < 0 {
		return fmt.Errorf("%w: migration budget must be ≥ 0, got %d", ErrBadPartialK, c.PartialK)
	}
	if c.Lookahead < 0 || c.Lookahead > maxLookahead {
		return fmt.Errorf("%w: victim lookahead must be in [0,%d], got %d", ErrBadLookahead, maxLookahead, c.Lookahead)
	}
	if c.Lookahead > 0 && c.PartialK == 0 {
		return fmt.Errorf("%w: lookahead %d needs partial GC (-gc-partial-k > 0)", ErrBadLookahead, c.Lookahead)
	}
	if c.MaxSuspends < 0 {
		return fmt.Errorf("%w: suspension bound must be ≥ 0, got %d", ErrBadSuspend, c.MaxSuspends)
	}
	if c.SuspendCost < 0 || c.ResumeCost < 0 {
		return fmt.Errorf("%w: suspend/resume costs must be ≥ 0, got %d/%d",
			ErrBadSuspend, c.SuspendCost, c.ResumeCost)
	}
	if c.MaxSuspends == 0 && (c.SuspendCost > 0 || c.ResumeCost > 0) {
		return fmt.Errorf("%w: suspend costs set but -gc-suspend-max is 0 (suspension window disabled)",
			ErrBadSuspend)
	}
	return nil
}

// WithDefaults returns c with the enabled-but-unset knobs filled in:
// Lookahead 1 under partial GC, the default suspend/resume costs under
// suspension. The disabled zero value passes through unchanged.
func (c PreemptConfig) WithDefaults() PreemptConfig {
	if c.PartialEnabled() && c.Lookahead == 0 {
		c.Lookahead = 1
	}
	if c.SuspendEnabled() {
		if c.SuspendCost == 0 {
			c.SuspendCost = DefaultSuspendCost
		}
		if c.ResumeCost == 0 {
			c.ResumeCost = DefaultResumeCost
		}
	}
	return c
}

// drainState is one plane's resumable partial-GC position: the pre-selected
// victim queue (head first) and the next page index within the head victim.
// It survives across idle windows; the head victim's pages below cursor are
// already migrated (or dropped as garbage) and set PageFree, pages at or
// after cursor are still live state the host may update or revive.
type drainState struct {
	queue  []ssd.BlockID
	cursor int
}

// PartialGCEnabled reports whether idle-window partial GC is configured.
func (s *Store) PartialGCEnabled() bool { return s.cfg.Preempt.PartialEnabled() }

// DrainBacklogPages returns the valid pages still awaiting migration in
// every plane's drain queue — the partial collector's outstanding debt.
func (s *Store) DrainBacklogPages() int64 {
	var n int64
	for p := range s.drains {
		for _, v := range s.drains[p].queue {
			n += int64(s.blocks[v].valid)
		}
	}
	return n
}

// partialTrigger is the free-block level below which a plane starts
// draining victims in the background: the soft threshold when configured,
// otherwise one block of headroom above the hard low-water mark. The
// headroom is deliberately minimal — every free block held in reserve is a
// block's worth of garbage that can't ripen, and victims harvested early
// carry more valid pages (write amplification climbs fast on drives whose
// spare capacity is only a handful of blocks per plane).
func (s *Store) partialTrigger() int {
	t := s.cfg.SoftGCThreshold
	if t <= 0 {
		t = s.effThreshold + 1
	}
	if t > s.geo.BlocksPerPlane-1 {
		t = s.geo.BlocksPerPlane - 1
	}
	return t
}

// PartialGCTick runs one idle window of partial GC: at most PartialK valid
// pages are migrated (plus at most one block erase), stamped at time 0 so
// the bus lands them in the gap since each chip last went idle. Planes are
// visited in ascending chip-idle order, coalescing the window's migrations
// onto the idlest destination chips/channels first. The device wrapper
// calls this before every host operation, like the scrub patrol's Tick.
func (s *Store) PartialGCTick(now ssd.Time) error {
	k := s.cfg.Preempt.PartialK
	if k <= 0 {
		return nil
	}
	planes := s.needyPlanes(now)
	if len(planes) == 0 {
		return nil
	}
	budget := k
	worked := false
	for _, plane := range planes {
		if budget <= 0 {
			break
		}
		d := &s.drains[plane]
		if len(d.queue) == 0 {
			s.fillDrain(plane)
			if len(d.queue) == 0 {
				continue
			}
		}
		n, erased, err := s.drainStep(plane, 0, budget, true)
		if err != nil {
			return err
		}
		budget -= n
		if n > 0 || erased {
			worked = true
		}
		if erased {
			// An erase (3.8 ms) fills an idle window on its own; leave the
			// remaining planes to the next window.
			break
		}
	}
	if worked {
		s.gc.PartialWindows++
	}
	return nil
}

// needyPlanes returns the planes with an open drain or a free list below
// the trigger whose chip is actually idle at now, ordered by when the chip
// last went idle (ties by plane index) — the lookahead batching order.
// The idleness gate is what makes the drain preemptible rather than merely
// deferred: a stamped-at-zero operation starts at the chip's current
// horizon, so draining a busy chip would push its backlog — and every host
// request behind it — further out. Only chips with a genuine gap between
// their horizon and the present absorb drain work for free.
func (s *Store) needyPlanes(now ssd.Time) []int {
	s.drainScratch = s.drainScratch[:0]
	trigger := s.partialTrigger()
	perChip := s.geo.PlanesPerChip()
	for p := range s.planes {
		if s.deadPlane != nil && s.deadPlane[p] {
			// A failed die has nothing to drain and no space to win back.
			continue
		}
		if s.bus.ChipFreeTime(p/perChip) > now {
			continue
		}
		if len(s.drains[p].queue) > 0 || len(s.planes[p].freeBlocks) < trigger {
			s.drainScratch = append(s.drainScratch, p)
		}
	}
	sort.Slice(s.drainScratch, func(i, j int) bool {
		pi, pj := s.drainScratch[i], s.drainScratch[j]
		fi, fj := s.bus.ChipFreeTime(pi/perChip), s.bus.ChipFreeTime(pj/perChip)
		if fi != fj {
			return fi < fj
		}
		return pi < pj
	})
	return s.drainScratch
}

// fillDrain pre-selects up to Lookahead victims for the plane in one
// scoring scan, best victimScore first (ties to the lower block), marking
// them draining so the foreground selector leaves them alone. Victims are
// admitted only while their combined valid pages fit the plane's current
// relocation capacity, so an admitted queue can always be drained.
func (s *Store) fillDrain(plane int) {
	look := s.cfg.Preempt.Lookahead
	if look < 1 {
		look = 1
	}
	capacity := s.relocationCapacity(plane)
	type cand struct {
		b     ssd.BlockID
		score float64
	}
	var cands []cand
	for i := 0; i < s.geo.BlocksPerPlane; i++ {
		b := s.geo.BlockAt(plane, i)
		info := &s.blocks[b]
		if info.free || info.active || info.bad || info.dead || info.draining ||
			info.trans || info.invalid == 0 || info.valid > capacity {
			continue
		}
		cands = append(cands, cand{b, s.victimScore(b)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].b < cands[j].b
	})
	d := &s.drains[plane]
	for _, c := range cands {
		if len(d.queue) >= look {
			break
		}
		if s.blocks[c.b].valid > capacity {
			continue
		}
		capacity -= s.blocks[c.b].valid
		s.blocks[c.b].draining = true
		d.queue = append(d.queue, c.b)
		s.gc.Runs++
	}
}

// drainStep advances the plane's head drain victim by at most budget valid-
// page migrations stamped at stamp, finishing with the erase when the whole
// block is clear. It reports how many migrations it consumed and whether
// the head victim was erased. background distinguishes idle-window work
// (counted in GCStats.PartialPages) from the foreground finish. A step that
// returns (0, false, nil) is stalled: the plane cannot absorb a page right
// now and the caller must reclaim space some other way.
func (s *Store) drainStep(plane int, stamp ssd.Time, budget int, background bool) (int, bool, error) {
	d := &s.drains[plane]
	if len(d.queue) == 0 {
		return 0, false, nil
	}
	v := d.queue[0]
	info := &s.blocks[v]
	first := s.geo.FirstPage(v)
	prevOrigin := s.Tel.EnterOrigin(telemetry.OriginGC)
	defer s.Tel.ExitOrigin(prevOrigin)
	s.bus.SuspendScope(true)
	defer s.bus.SuspendScope(false)
	migrated := 0
	for d.cursor < s.geo.PagesPerBlock {
		p := first + ssd.PPN(d.cursor)
		switch s.State(p) {
		case PageValid:
			if migrated >= budget {
				return migrated, false, nil
			}
			if s.relocationCapacity(plane) < 1 {
				return migrated, false, nil
			}
			readDone, err := s.readPage(p, stamp)
			if err != nil && !errors.Is(err, ErrUncorrectable) {
				return migrated, false, fmt.Errorf("ftl: partial GC read of page %d: %w", p, err)
			}
			wasLost := err != nil
			dst, _, err := s.programAt(plane, s.gcStream(plane), readDone)
			if err != nil && errors.Is(err, ErrProgramFault) {
				dst, _, err = s.relandGC(plane, readDone)
			}
			if err != nil {
				return migrated, false, fmt.Errorf("ftl: partial GC relocation of page %d: %w", p, err)
			}
			if wasLost {
				s.markLost(dst)
				s.clearLost(p)
			}
			s.gc.Relocated++
			if background {
				s.gc.PartialPages++
			}
			// Stamp before OnRelocate: the owner must be read while the
			// mapping still points at the source page.
			s.stampRelocated(p, dst)
			if s.OnRelocate != nil {
				s.OnRelocate(p, dst)
			}
			s.setState(p, PageFree)
			info.valid--
			migrated++
			if s.rain != nil {
				// A drained-past page is as good as erased; the stripe
				// tracker must drop it now, not at the block's eventual
				// erase — the drain can park here for many ticks.
				s.rain.NoteErased(p)
			}
		case PageInvalid:
			if s.OnEraseGarbage != nil {
				s.OnEraseGarbage(p)
			}
			s.setState(p, PageFree)
			info.invalid--
			if s.rain != nil {
				s.rain.NoteErased(p)
			}
		}
		d.cursor++
	}
	// Every page is clear: erase, pop the victim, and let the block rejoin
	// the free list (or retire).
	info.draining = false
	_, err := s.eraseVictim(plane, v, stamp, int64(migrated))
	copy(d.queue, d.queue[1:])
	d.queue = d.queue[:len(d.queue)-1]
	d.cursor = 0
	return migrated, true, err
}

// finishDrainHead synchronously completes the plane's head drain victim at
// now — the hard-threshold path when a request catches the plane mid-drain.
// The stall is bounded by the victim's *remaining* pages, which is the
// partial scheme's tail-latency win over blocking whole-victim cycles.
// Reports whether a block was reclaimed; false with a nil error means the
// drain is stalled on relocation capacity and the caller should fall back
// to a normal cycle on a different victim.
func (s *Store) finishDrainHead(plane int, now ssd.Time) (bool, error) {
	_, erased, err := s.drainStep(plane, now, math.MaxInt, false)
	return erased, err
}

// resetDrains clears every plane's drain queue and draining mark; recovery
// calls it from Rebuild, where block states are re-derived from scratch.
func (s *Store) resetDrains() {
	for p := range s.drains {
		for _, v := range s.drains[p].queue {
			s.blocks[v].draining = false
		}
		s.drains[p].queue = s.drains[p].queue[:0]
		s.drains[p].cursor = 0
	}
}
