// Package ftl implements the flash translation layer substrate: page-level
// logical-to-physical mapping (with the paper's 1-byte per-LPN popularity
// field, Fig 8), physical page/block state management, channel-striped
// allocation, and garbage collection with both greedy and popularity-aware
// victim selection (Section IV-D).
//
// The package is split along the paper's own lines: Mapper is the "Mapping
// Unit" (LPN → PPN), Store owns the physical resources (free blocks,
// valid/invalid page states, GC). Content-awareness — the dead-value pool
// and deduplication — lives above, in internal/core and internal/dedup,
// wired together by internal/sim.
package ftl

import (
	"fmt"

	"zombiessd/internal/sparse"
	"zombiessd/internal/ssd"
)

// LPN is a logical page number: the host-visible address of one 4 KB page.
type LPN uint32

// InvalidLPN marks an unmapped reverse entry.
const InvalidLPN LPN = ^LPN(0)

// Mapper is the page-level LPN→PPN mapping unit, with a reverse PPN→LPN
// index (needed by GC relocation) and the paper's one popularity byte per
// LPN-table entry. All three tables are sparse-chunked: they are indexed
// by the full logical/physical page space, which on the 1 TB paper
// geometry would cost gigabytes as flat slices, but a CI-scale trace only
// ever materializes the chunks it touches.
type Mapper struct {
	l2p *sparse.Array[ssd.PPN]
	p2l *sparse.Array[LPN]
	pop *sparse.Array[uint8]
}

// NewMapper returns a Mapper for a host space of logicalPages pages over a
// drive with physicalPages pages.
func NewMapper(logicalPages, physicalPages int64) (*Mapper, error) {
	if logicalPages <= 0 || physicalPages <= 0 {
		return nil, fmt.Errorf("ftl: mapper sizes must be positive, got %d/%d", logicalPages, physicalPages)
	}
	if logicalPages > int64(InvalidLPN) {
		return nil, fmt.Errorf("ftl: %d logical pages exceeds the LPN space", logicalPages)
	}
	return &Mapper{
		l2p: sparse.New(logicalPages, ssd.InvalidPPN),
		p2l: sparse.New(physicalPages, InvalidLPN),
		pop: sparse.New[uint8](logicalPages, 0),
	}, nil
}

// LogicalPages returns the size of the host-visible address space.
func (m *Mapper) LogicalPages() int64 { return m.l2p.Len() }

// Lookup returns the physical page currently backing lpn.
func (m *Mapper) Lookup(lpn LPN) (ssd.PPN, bool) {
	p := m.l2p.Get(int64(lpn))
	return p, p != ssd.InvalidPPN
}

// Bind points lpn at ppn, replacing any previous binding of either side.
// It returns the previously bound PPN (InvalidPPN if none), which the
// caller invalidates.
func (m *Mapper) Bind(lpn LPN, ppn ssd.PPN) ssd.PPN {
	old := m.l2p.Get(int64(lpn))
	if old != ssd.InvalidPPN {
		m.p2l.Set(int64(old), InvalidLPN)
	}
	m.l2p.Set(int64(lpn), ppn)
	m.p2l.Set(int64(ppn), lpn)
	return old
}

// OwnerOf returns the logical page mapped to ppn, if any.
func (m *Mapper) OwnerOf(ppn ssd.PPN) (LPN, bool) {
	l := m.p2l.Get(int64(ppn))
	return l, l != InvalidLPN
}

// Relocate rebinds the owner of src to dst; GC calls it when it moves a
// valid page. Unowned pages are ignored.
func (m *Mapper) Relocate(src, dst ssd.PPN) {
	lpn := m.p2l.Get(int64(src))
	if lpn == InvalidLPN {
		return
	}
	m.p2l.Set(int64(src), InvalidLPN)
	m.l2p.Set(int64(lpn), dst)
	m.p2l.Set(int64(dst), lpn)
}

// BumpPopularity increments lpn's popularity byte (saturating at 255), the
// paper's mechanism for not losing popularity information across pool
// evictions.
func (m *Mapper) BumpPopularity(lpn LPN) uint8 {
	p := m.pop.Get(int64(lpn))
	if p < ^uint8(0) {
		p++
		m.pop.Set(int64(lpn), p)
	}
	return p
}

// Popularity returns lpn's popularity byte.
func (m *Mapper) Popularity(lpn LPN) uint8 { return m.pop.Get(int64(lpn)) }
