// Package ftl implements the flash translation layer substrate: page-level
// logical-to-physical mapping (with the paper's 1-byte per-LPN popularity
// field, Fig 8), physical page/block state management, channel-striped
// allocation, and garbage collection with both greedy and popularity-aware
// victim selection (Section IV-D).
//
// The package is split along the paper's own lines: Mapper is the "Mapping
// Unit" (LPN → PPN), Store owns the physical resources (free blocks,
// valid/invalid page states, GC). Content-awareness — the dead-value pool
// and deduplication — lives above, in internal/core and internal/dedup,
// wired together by internal/sim.
package ftl

import (
	"fmt"

	"zombiessd/internal/ssd"
)

// LPN is a logical page number: the host-visible address of one 4 KB page.
type LPN uint32

// InvalidLPN marks an unmapped reverse entry.
const InvalidLPN LPN = ^LPN(0)

// Mapper is the page-level LPN→PPN mapping unit, with a reverse PPN→LPN
// index (needed by GC relocation) and the paper's one popularity byte per
// LPN-table entry.
type Mapper struct {
	l2p []ssd.PPN
	p2l []LPN
	pop []uint8
}

// NewMapper returns a Mapper for a host space of logicalPages pages over a
// drive with physicalPages pages.
func NewMapper(logicalPages, physicalPages int64) (*Mapper, error) {
	if logicalPages <= 0 || physicalPages <= 0 {
		return nil, fmt.Errorf("ftl: mapper sizes must be positive, got %d/%d", logicalPages, physicalPages)
	}
	if logicalPages > int64(InvalidLPN) {
		return nil, fmt.Errorf("ftl: %d logical pages exceeds the LPN space", logicalPages)
	}
	m := &Mapper{
		l2p: make([]ssd.PPN, logicalPages),
		p2l: make([]LPN, physicalPages),
		pop: make([]uint8, logicalPages),
	}
	for i := range m.l2p {
		m.l2p[i] = ssd.InvalidPPN
	}
	for i := range m.p2l {
		m.p2l[i] = InvalidLPN
	}
	return m, nil
}

// LogicalPages returns the size of the host-visible address space.
func (m *Mapper) LogicalPages() int64 { return int64(len(m.l2p)) }

// Lookup returns the physical page currently backing lpn.
func (m *Mapper) Lookup(lpn LPN) (ssd.PPN, bool) {
	p := m.l2p[lpn]
	return p, p != ssd.InvalidPPN
}

// Bind points lpn at ppn, replacing any previous binding of either side.
// It returns the previously bound PPN (InvalidPPN if none), which the
// caller invalidates.
func (m *Mapper) Bind(lpn LPN, ppn ssd.PPN) ssd.PPN {
	old := m.l2p[lpn]
	if old != ssd.InvalidPPN {
		m.p2l[old] = InvalidLPN
	}
	m.l2p[lpn] = ppn
	m.p2l[ppn] = lpn
	return old
}

// OwnerOf returns the logical page mapped to ppn, if any.
func (m *Mapper) OwnerOf(ppn ssd.PPN) (LPN, bool) {
	l := m.p2l[ppn]
	return l, l != InvalidLPN
}

// Relocate rebinds the owner of src to dst; GC calls it when it moves a
// valid page. Unowned pages are ignored.
func (m *Mapper) Relocate(src, dst ssd.PPN) {
	lpn := m.p2l[src]
	if lpn == InvalidLPN {
		return
	}
	m.p2l[src] = InvalidLPN
	m.l2p[lpn] = dst
	m.p2l[dst] = lpn
}

// BumpPopularity increments lpn's popularity byte (saturating at 255), the
// paper's mechanism for not losing popularity information across pool
// evictions.
func (m *Mapper) BumpPopularity(lpn LPN) uint8 {
	if m.pop[lpn] < ^uint8(0) {
		m.pop[lpn]++
	}
	return m.pop[lpn]
}

// Popularity returns lpn's popularity byte.
func (m *Mapper) Popularity(lpn LPN) uint8 { return m.pop[lpn] }
