package ftl

import (
	"testing"

	"zombiessd/internal/ssd"
)

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(0, 10); err == nil {
		t.Error("accepted zero logical pages")
	}
	if _, err := NewMapper(10, 0); err == nil {
		t.Error("accepted zero physical pages")
	}
	m, err := NewMapper(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.LogicalPages() != 100 {
		t.Errorf("LogicalPages = %d, want 100", m.LogicalPages())
	}
}

func TestMapperStartsUnmapped(t *testing.T) {
	m, _ := NewMapper(10, 20)
	for lpn := LPN(0); lpn < 10; lpn++ {
		if _, ok := m.Lookup(lpn); ok {
			t.Fatalf("LPN %d mapped at start", lpn)
		}
	}
	for ppn := ssd.PPN(0); ppn < 20; ppn++ {
		if _, ok := m.OwnerOf(ppn); ok {
			t.Fatalf("PPN %d owned at start", ppn)
		}
	}
}

func TestBindAndLookup(t *testing.T) {
	m, _ := NewMapper(10, 20)
	if old := m.Bind(3, 7); old != ssd.InvalidPPN {
		t.Fatalf("first Bind returned old PPN %d", old)
	}
	ppn, ok := m.Lookup(3)
	if !ok || ppn != 7 {
		t.Fatalf("Lookup = (%d,%v), want (7,true)", ppn, ok)
	}
	lpn, ok := m.OwnerOf(7)
	if !ok || lpn != 3 {
		t.Fatalf("OwnerOf = (%d,%v), want (3,true)", lpn, ok)
	}
}

func TestRebindReturnsOldAndClearsReverse(t *testing.T) {
	m, _ := NewMapper(10, 20)
	m.Bind(3, 7)
	if old := m.Bind(3, 9); old != 7 {
		t.Fatalf("rebind returned %d, want 7", old)
	}
	if _, ok := m.OwnerOf(7); ok {
		t.Error("old PPN still owned after rebind")
	}
	if lpn, ok := m.OwnerOf(9); !ok || lpn != 3 {
		t.Errorf("new PPN owner = (%d,%v)", lpn, ok)
	}
}

func TestRelocate(t *testing.T) {
	m, _ := NewMapper(10, 20)
	m.Bind(5, 11)
	m.Relocate(11, 15)
	if ppn, _ := m.Lookup(5); ppn != 15 {
		t.Fatalf("after relocate, Lookup(5) = %d, want 15", ppn)
	}
	if _, ok := m.OwnerOf(11); ok {
		t.Error("src still owned after relocate")
	}
	if lpn, ok := m.OwnerOf(15); !ok || lpn != 5 {
		t.Errorf("dst owner = (%d,%v), want (5,true)", lpn, ok)
	}
	// Relocating an unowned page is a no-op.
	m.Relocate(1, 2)
	if _, ok := m.OwnerOf(2); ok {
		t.Error("relocating unowned page created an owner")
	}
}

func TestPopularityByteSaturates(t *testing.T) {
	m, _ := NewMapper(4, 8)
	for i := 0; i < 300; i++ {
		m.BumpPopularity(1)
	}
	if got := m.Popularity(1); got != 255 {
		t.Errorf("popularity = %d, want saturation at 255", got)
	}
	if got := m.Popularity(0); got != 0 {
		t.Errorf("untouched LPN popularity = %d, want 0", got)
	}
}
