package ftl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"zombiessd/internal/dftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
)

// This file is the flash side of the DFTL-style flash-resident mapping
// (internal/dftl owns the RAM side): faulting translation-page frames into
// the CMT on mapping misses, writing dirty frames back on eviction,
// programming translation pages to the dedicated translation stream, and
// collecting translation blocks as a second GC stream that competes with
// data GC for each cycle. Every mapping-induced flash operation is a real
// bus operation, charged under its own telemetry origin (map-miss /
// map-writeback), so the mapping tax shows up in the latency attribution
// exactly like GC and ECC interference do.

// AttachCMT builds the cached mapping table for a host space of
// logicalPages pages. A no-op on a store whose DFTL config is disabled;
// devices call it once, right after NewStore, before any I/O.
func (s *Store) AttachCMT(logicalPages int64) error {
	if !s.cfg.DFTL.Enabled() {
		return nil
	}
	c, err := dftl.NewCMT(s.cfg.DFTL, logicalPages, s.geo.PageSize)
	if err != nil {
		return err
	}
	s.cmt = c
	return nil
}

// DftlEnabled reports whether a CMT is attached — the flash-resident
// mapping is live.
func (s *Store) DftlEnabled() bool { return s.cmt != nil }

// DftlStats returns the mapping table's counters (zero when disabled).
func (s *Store) DftlStats() dftl.Stats {
	if s.cmt == nil {
		return dftl.Stats{}
	}
	return s.cmt.Stat
}

// CMTRef exposes the attached CMT for tests and invariant checks (nil when
// disabled).
func (s *Store) CMTRef() *dftl.CMT { return s.cmt }

// MapRead resolves the mapping lookup for a host read of lpn: with a CMT
// attached, the covering translation-page frame is faulted resident first,
// and any flash work that takes (a dirty eviction write-back, the
// translation-page read) completes before the data read may issue — the
// DFTL serialization that makes cache misses cost real latency. Returns
// the time the mapping became available; now unchanged on a hit or on a
// disabled store.
func (s *Store) MapRead(lpn LPN, now ssd.Time) (ssd.Time, error) {
	if s.cmt == nil {
		return now, nil
	}
	return s.ensureResident(s.cmt.TVPNOf(uint32(lpn)), now)
}

// MapWrite records the new binding lpn → ppn in the flash-resident
// mapping after a host write (or revival/dedup rebind) at time done: the
// covering frame is faulted resident — paying eviction and fill exactly
// like MapRead — and the entry is updated in RAM, leaving the frame dirty
// until write-back. Returns the time the mapping update was absorbed.
func (s *Store) MapWrite(lpn LPN, ppn ssd.PPN, done ssd.Time) (ssd.Time, error) {
	if s.cmt == nil {
		return done, nil
	}
	t, err := s.ensureResident(s.cmt.TVPNOf(uint32(lpn)), done)
	if err != nil {
		return 0, err
	}
	if err := s.cmt.Update(uint32(lpn), ppn); err != nil {
		return 0, err
	}
	return t, nil
}

// ensureResident faults tvpn's frame into the CMT: LRU hit → free; miss →
// evict the LRU frame (writing it back if dirty), then load the flash copy
// if one exists. Returns when the frame is usable.
func (s *Store) ensureResident(tvpn uint32, now ssd.Time) (ssd.Time, error) {
	if s.cmt.Touch(tvpn) {
		return now, nil
	}
	done := now
	if s.cmt.Full() {
		vt, dirty, entries, ok := s.cmt.EvictVictim()
		if ok && dirty {
			var err error
			done, err = s.writebackFrame(vt, entries, done)
			if err != nil {
				return 0, err
			}
		}
	}
	if loc := s.cmt.Loc(tvpn); loc != ssd.InvalidPPN {
		prev := s.Tel.EnterMapPhase(telemetry.OriginMapMiss)
		rdone, err := s.readPageAt(loc, done, done, false)
		s.Tel.ExitOrigin(prev)
		s.cmt.Stat.TransReads++
		if err != nil && !errors.Is(err, ErrUncorrectable) {
			return 0, err
		}
		// An uncorrectable translation read still loads the modeled entries:
		// a real controller falls back to the OOB scan for one page; the
		// model charges the failed ladder's latency and carries on.
		done = rdone
	}
	s.cmt.Install(tvpn)
	return done, nil
}

// writebackFrame programs an evicted dirty frame's entries to a fresh
// translation page, repoints the GTD, and invalidates the stale flash
// copy. Charged under the map-writeback origin.
//
// The wb guard closes a lost-update window: programTrans may run a data-GC
// cycle whose relocations rebind LPNs covered by this (already-evicted)
// frame. The cycle's tail flush would see the TVPN non-resident, fold the
// rebinding into flash by RMW — and the Committed below would then
// overwrite it with the stale pre-GC snapshot. With the guard up,
// flushMapUpdates keeps this TVPN's rebindings queued; they land on the
// next flush, on top of the page committed here.
func (s *Store) writebackFrame(tvpn uint32, entries []ssd.PPN, now ssd.Time) (ssd.Time, error) {
	prev := s.Tel.EnterMapPhase(telemetry.OriginMapWriteback)
	defer s.Tel.ExitOrigin(prev)
	s.wbTVPN, s.wbActive = tvpn, true
	defer func() { s.wbActive = false }()
	dst, done, err := s.programTrans(tvpn, now, true)
	if err != nil {
		return 0, err
	}
	old := s.cmt.Committed(tvpn, entries, dst)
	if old != ssd.InvalidPPN {
		if err := s.Invalidate(old); err != nil {
			return 0, err
		}
	}
	s.cmt.Stat.Writebacks++
	return done, nil
}

// programTrans lands one translation page on the translation stream of the
// next plane in the channel-striped rotation, stamping its OOB with the
// TVPN and the Trans mark. ensure runs GC on the target plane first (the
// paths already inside a GC cycle pass false — their frontier space is
// accounted by the cycle itself).
func (s *Store) programTrans(tvpn uint32, stamp ssd.Time, ensure bool) (ssd.PPN, ssd.Time, error) {
	plane, err := s.nextPlane()
	if err != nil {
		return ssd.InvalidPPN, 0, err
	}
	if ensure {
		if err := s.ensureSpace(plane, stamp); err != nil {
			return ssd.InvalidPPN, 0, err
		}
	}
	ppn, done, err := s.programAt(plane, s.transStream(plane), stamp)
	if err != nil {
		return ssd.InvalidPPN, 0, err
	}
	s.seq++
	s.setOOB(ppn, OOB{State: OOBProgrammed, LPN: LPN(tvpn), Trans: true, Seq: s.seq})
	s.cmt.Stat.TransPrograms++
	return ppn, done, nil
}

// victimTrans selects the translation-GC victim for a plane: the
// highest-scoring translation block with any invalid page whose valid
// pages fit the translation stream's relocation capacity, or InvalidBlock.
// It reuses victimScore, so fault-aware penalties (and suspect draining)
// steer translation GC exactly like data GC.
func (s *Store) victimTrans(plane int) ssd.BlockID {
	best := ssd.InvalidBlock
	bestScore := math.Inf(-1)
	capacity := s.transRelocationCapacity(plane)
	for i := 0; i < s.geo.BlocksPerPlane; i++ {
		b := s.geo.BlockAt(plane, i)
		info := &s.blocks[b]
		if !info.trans || info.free || info.active || info.bad || info.dead ||
			info.draining || info.invalid == 0 || info.valid > capacity {
			continue
		}
		score := s.victimScore(b)
		if score > bestScore {
			bestScore = score
			best = b
		}
	}
	return best
}

// transRelocationCapacity is relocationCapacity for the translation
// stream: the rest of its write frontier plus every free block.
func (s *Store) transRelocationCapacity(plane int) int32 {
	pl := &s.planes[plane]
	fr := &pl.frontiers[s.transStream(plane)]
	c := int32(s.geo.PagesPerBlock-fr.nextPage) + int32(s.geo.PagesPerBlock*len(pl.freeBlocks))
	if s.rain != nil {
		w := int32(s.rain.Width())
		c = c * (w - 1) / w
	}
	return c
}

// collectTransPlane runs one translation-GC cycle: still-valid translation
// pages are relocated within the translation stream — or, under
// BatchEvict, rebuilt from their resident dirty frame so the write-back
// the frame owed is folded into the relocation program (Dayan & Bonnet's
// batched eviction) — and the block is erased back into the general pool.
func (s *Store) collectTransPlane(plane int, v ssd.BlockID, now ssd.Time) (bool, error) {
	s.gc.Runs++
	s.cmt.Stat.TransGCRuns++
	prevOrigin := s.Tel.EnterOrigin(telemetry.OriginGC)
	defer s.Tel.ExitOrigin(prevOrigin)
	s.bus.SuspendScope(true)
	defer s.bus.SuspendScope(false)
	relocBefore := s.gc.Relocated
	first := s.geo.FirstPage(v)
	for i := 0; i < s.geo.PagesPerBlock; i++ {
		p := first + ssd.PPN(i)
		switch s.State(p) {
		case PageValid:
			tvpn := uint32(s.OOBOf(p).LPN)
			if s.cfg.DFTL.BatchEvict && s.cmt.ResidentDirty(tvpn) {
				// The resident frame is newer than the flash copy: program
				// the fresh entries instead of copying the stale page. No
				// read, and the frame comes back clean — the deferred
				// write-back just got paid for free.
				dst, _, err := s.programAt(plane, s.transStream(plane), now)
				if err != nil && errors.Is(err, ErrProgramFault) {
					dst, _, err = s.relandStream(plane, s.transStream(plane), now)
				}
				if err != nil {
					return false, fmt.Errorf("ftl: translation-GC fold of tvpn %d: %w", tvpn, err)
				}
				s.seq++
				s.setOOB(dst, OOB{State: OOBProgrammed, LPN: LPN(tvpn), Trans: true, Seq: s.seq})
				// The old copy is p itself, consumed by the erase below — no
				// Invalidate needed.
				s.cmt.Committed(tvpn, s.cmt.FrameEntries(tvpn), dst)
				s.cmt.Stat.TransPrograms++
				s.cmt.Stat.BatchFolded++
				s.gc.Relocated++
			} else {
				readDone, err := s.readPage(p, now)
				if err != nil && !errors.Is(err, ErrUncorrectable) {
					return false, fmt.Errorf("ftl: translation-GC read of page %d: %w", p, err)
				}
				s.cmt.Stat.TransReads++
				dst, _, err := s.programAt(plane, s.transStream(plane), readDone)
				if err != nil && errors.Is(err, ErrProgramFault) {
					dst, _, err = s.relandStream(plane, s.transStream(plane), readDone)
				}
				if err != nil {
					return false, fmt.Errorf("ftl: translation-GC relocation of page %d: %w", p, err)
				}
				s.cmt.Stat.TransPrograms++
				s.gc.Relocated++
				s.stampRelocated(p, dst)
			}
		case PageInvalid:
			// Stale translation pages were never host garbage — the
			// dead-value pool holds no zombies here, so no OnEraseGarbage.
		}
		s.setState(p, PageFree)
	}
	return s.eraseVictim(plane, v, now, s.gc.Relocated-relocBefore)
}

// NoteGCMapUpdate queues a GC-produced rebinding (lpn now lives at ppn)
// for the next translation-page flush. Data GC cannot update translation
// pages entry-by-entry — each is a whole-page program — so rebindings
// accumulate and are folded per translation page by flushMapUpdates.
// A no-op without a CMT.
func (s *Store) NoteGCMapUpdate(lpn LPN, ppn ssd.PPN) {
	if s.cmt == nil {
		return
	}
	s.mapPend = append(s.mapPend, mapUpdate{lpn: lpn, ppn: ppn})
}

// flushMapUpdates folds the queued GC rebindings into the mapping table,
// one translation page at a time: updates covered by a resident frame just
// dirty it (deferred to its write-back); the rest read-modify-write their
// flash translation page. Rebindings a later host write superseded are
// discarded (the host path already updated the CMT), which LookupOf
// detects. Called at the erase tail of every GC cycle and after any other
// bulk relocation (refresh, RAIN reconstruction).
func (s *Store) flushMapUpdates(now ssd.Time) error {
	if s.cmt == nil || len(s.mapPend) == 0 {
		return nil
	}
	pend := append([]mapUpdate(nil), s.mapPend...)
	s.mapPend = s.mapPend[:0]
	byTVPN := make(map[uint32][]mapUpdate)
	var order []uint32
	for _, u := range pend {
		if s.LookupOf != nil {
			if cur, ok := s.LookupOf(u.lpn); !ok || cur != u.ppn {
				continue // superseded: the newer binding already went through MapWrite
			}
		}
		t := s.cmt.TVPNOf(uint32(u.lpn))
		if s.wbActive && t == s.wbTVPN {
			// This translation page is mid-write-back; folding now would be
			// overwritten by its stale snapshot. Keep the update queued.
			s.mapPend = append(s.mapPend, u)
			continue
		}
		if _, ok := byTVPN[t]; !ok {
			order = append(order, t)
		}
		byTVPN[t] = append(byTVPN[t], u)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	epp := dftl.EntriesPerPage(s.geo.PageSize)
	for _, tvpn := range order {
		ups := byTVPN[tvpn]
		if s.cmt.Resident(tvpn) {
			for _, u := range ups {
				if err := s.cmt.Update(uint32(u.lpn), u.ppn); err != nil {
					return err
				}
			}
			s.cmt.Stat.GCDirtied += int64(len(ups))
			continue
		}
		prev := s.Tel.EnterMapPhase(telemetry.OriginMapWriteback)
		err := s.rmwTransPage(tvpn, ups, epp, now)
		s.Tel.ExitOrigin(prev)
		if err != nil {
			return err
		}
	}
	return nil
}

// rmwTransPage read-modify-writes one non-resident translation page: read
// the current flash copy (if any), apply the rebindings, program the
// result, invalidate the stale copy.
func (s *Store) rmwTransPage(tvpn uint32, ups []mapUpdate, epp int, now ssd.Time) error {
	entries := make([]ssd.PPN, epp)
	for i := range entries {
		entries[i] = ssd.InvalidPPN
	}
	if loc := s.cmt.Loc(tvpn); loc != ssd.InvalidPPN {
		_, err := s.readPageAt(loc, now, now, false)
		s.cmt.Stat.TransReads++
		if err != nil && !errors.Is(err, ErrUncorrectable) {
			return err
		}
		copy(entries, s.cmt.FlashEntries(loc))
	}
	for _, u := range ups {
		entries[int(uint32(u.lpn))%epp] = u.ppn
	}
	dst, _, err := s.programTrans(tvpn, now, false)
	if err != nil {
		return err
	}
	old := s.cmt.Committed(tvpn, entries, dst)
	if old != ssd.InvalidPPN {
		if err := s.Invalidate(old); err != nil {
			return err
		}
	}
	s.cmt.Stat.GCMapRMWs++
	return nil
}

// RecoverDftl re-lands a fresh mapping checkpoint after a crash: Rebuild
// has already turned every surviving translation page into garbage, so the
// CMT resets and one translation page per populated TVPN is programmed
// from the last-writer-wins winners recovery computed. Call it only after
// the in-RAM mapper has been rebuilt and rewired (OnRelocate, OwnerOf,
// LookupOf): making room for checkpoint pages can itself run GC, which
// relocates winner pages — so each page's binding is resolved through
// LookupOf at the last moment, after space for its translation page is
// secured. A no-op without a CMT.
func (s *Store) RecoverDftl(winners []Binding, now ssd.Time) error {
	if s.cmt == nil {
		return nil
	}
	s.cmt.ResetAll()
	s.mapPend = s.mapPend[:0]
	epp := dftl.EntriesPerPage(s.geo.PageSize)
	byTVPN := make(map[uint32][]Binding)
	var order []uint32
	for _, b := range winners {
		t := s.cmt.TVPNOf(uint32(b.LPN))
		if _, ok := byTVPN[t]; !ok {
			order = append(order, t)
		}
		byTVPN[t] = append(byTVPN[t], b)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, tvpn := range order {
		plane, err := s.nextPlane()
		if err != nil {
			return err
		}
		if err := s.ensureSpace(plane, now); err != nil {
			return err
		}
		entries := make([]ssd.PPN, epp)
		for i := range entries {
			entries[i] = ssd.InvalidPPN
		}
		for _, b := range byTVPN[tvpn] {
			ppn := b.PPN
			if s.LookupOf != nil {
				if cur, ok := s.LookupOf(b.LPN); ok {
					ppn = cur
				}
			}
			entries[int(uint32(b.LPN))%epp] = ppn
		}
		dst, _, err := s.programAt(plane, s.transStream(plane), now)
		if err != nil {
			if !errors.Is(err, ErrProgramFault) {
				return err
			}
			if dst, _, err = s.relandStream(plane, s.transStream(plane), now); err != nil {
				return err
			}
		}
		s.seq++
		s.setOOB(dst, OOB{State: OOBProgrammed, LPN: LPN(tvpn), Trans: true, Seq: s.seq})
		s.cmt.Stat.TransPrograms++
		s.cmt.Committed(tvpn, entries, dst)
		s.cmt.Stat.CheckpointPages++
	}
	return nil
}

// CheckDftl verifies that the flash-resident mapping agrees with the
// RAM-resident reference mapping for every logical page: the CMT view
// (resident frame over flash copy), overlaid with still-current pending GC
// rebindings, must equal lookup everywhere. O(logical space) — a test and
// invariant-check hook, never the hot path. A no-op without a CMT.
func (s *Store) CheckDftl(lookup func(LPN) (ssd.PPN, bool), logicalPages int64) error {
	if s.cmt == nil {
		return nil
	}
	overlay := make(map[LPN]ssd.PPN, len(s.mapPend))
	for _, u := range s.mapPend {
		if cur, ok := lookup(u.lpn); ok && cur == u.ppn {
			overlay[u.lpn] = u.ppn
		}
	}
	for lpn := int64(0); lpn < logicalPages; lpn++ {
		want, okWant := lookup(LPN(lpn))
		got, okGot := s.cmt.EntryOf(uint32(lpn))
		if p, ok := overlay[LPN(lpn)]; ok {
			got, okGot = p, true
		}
		if okWant != okGot || (okWant && want != got) {
			return fmt.Errorf("ftl: CheckDftl: lpn %d maps to %d/%v, reference says %d/%v",
				lpn, got, okGot, want, okWant)
		}
	}
	return nil
}
