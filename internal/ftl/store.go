package ftl

import (
	"errors"
	"fmt"
	"math"

	"zombiessd/internal/dftl"
	"zombiessd/internal/fault"
	"zombiessd/internal/rain"
	"zombiessd/internal/sparse"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
)

// PageState is the lifecycle state of one physical page.
type PageState uint8

// Page states. A page is Free after its block is erased, Valid while it
// backs a live logical page, and Invalid (garbage/zombie) after an update
// supersedes it. The dead-value pool may flip Invalid pages back to Valid —
// the revival this repository exists for.
const (
	PageFree PageState = iota
	PageValid
	PageInvalid
)

// String names the state.
func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// GarbageScorer reports the popularity degree of pooled garbage pages; the
// popularity-aware GC victim selector consults it so blocks holding popular
// zombies are spared. core.Pool satisfies it.
type GarbageScorer interface {
	GarbagePopularity(ssd.PPN) (uint8, bool)
}

// StoreConfig parameterizes the physical store.
type StoreConfig struct {
	// GCFreeBlockThreshold is the per-plane low-water mark: when a plane
	// has fewer free blocks, GC runs before the next allocation targets
	// it. Must be at least 2 so relocation always has a destination.
	GCFreeBlockThreshold int

	// PopularityWeight enables popularity-aware victim selection
	// (Section IV-D): victim score = invalidPages − weight × Σ popularity
	// of pooled garbage pages in the block. 0 selects pure greedy.
	PopularityWeight float64

	// WearAware makes the allocator take the least-erased free block when
	// the write frontier rolls, spreading erases across the plane
	// (the FTL's wear-levelling duty, Section IV-B).
	WearAware bool

	// SoftGCThreshold enables background garbage collection: when a
	// plane's free list falls below this mark, one GC cycle is scheduled
	// right after the current request instead of waiting for the hard
	// threshold to stall a future request. 0 disables it; otherwise it
	// must exceed GCFreeBlockThreshold. Background GC overlaps with
	// arrival gaps, trimming the tail latency GC stalls cause.
	SoftGCThreshold int

	// UserStreams is the number of host write streams per plane (hot/cold
	// separation, as in multi-streamed SSDs): pages written to different
	// streams never share a block, so data with similar lifetimes ages
	// together and GC victims are cleaner. 0 or 1 selects the classic
	// single-frontier FTL.
	UserStreams int

	// SeparateGCStream gives GC relocation its own write frontier instead
	// of mixing relocated (cold) pages into host stream 0.
	SeparateGCStream bool

	// FaultPenaltyWeight enables fault-aware victim selection: the victim
	// score is reduced by weight × accumulated program-status failures, so
	// GC prefers relocating onto (and recycling) trustworthy flash over
	// blocks that keep failing programs. 0 ignores fault history, keeping
	// victim choices bit-identical to the fault-unaware policy.
	FaultPenaltyWeight float64

	// DrainSuspects prioritizes blocks that have reached the suspect
	// threshold (Faults.SuspectThreshold): such a block will be retired at
	// its next erase anyway, so collecting it first moves its valid pages
	// to healthy flash promptly and takes the capacity hit before more
	// programs can fail in it. No-op when Faults.SuspectThreshold is 0.
	DrainSuspects bool

	// Faults is the reliability plan: program-status failures (retry on a
	// fresh page, mark the block suspect), erase failures (retire the
	// block as bad) and ECC read retries, optionally wear-scaled. The zero
	// value models a perfect drive and changes nothing.
	Faults fault.Config

	// Preempt is the preemptible-GC policy (see preempt.go): idle-window
	// partial victim drains, read-over-GC erase/program suspension, and
	// multi-victim lookahead batching. The zero value keeps GC blocking
	// and bit-identical to the pre-preemption collector.
	Preempt PreemptConfig

	// RAIN is the intra-SSD parity plan (see rain.go and internal/rain):
	// XOR parity striped across channels, uncorrectable-read
	// reconstruction, and die-failure survival. The zero value reserves
	// no parity slots and is bit-identical to a store without the field.
	RAIN rain.Config

	// DFTL is the flash-resident mapping plan (see dftl.go and
	// internal/dftl): a bounded cached mapping table paged against
	// translation pages that are programmed to a dedicated translation
	// stream and garbage-collected as a second GC stream. The zero value
	// keeps the mapping RAM-resident and is bit-identical to a store
	// without the field.
	DFTL dftl.Config
}

// DefaultStoreConfig returns a 2-block threshold, greedy GC.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{GCFreeBlockThreshold: 2}
}

// Validate reports whether the configuration is usable.
func (c StoreConfig) Validate() error {
	if c.GCFreeBlockThreshold < 2 {
		return fmt.Errorf("ftl: GC threshold must be ≥ 2 (relocation needs a destination), got %d", c.GCFreeBlockThreshold)
	}
	if c.PopularityWeight < 0 {
		return fmt.Errorf("ftl: popularity weight must be ≥ 0, got %g", c.PopularityWeight)
	}
	if c.FaultPenaltyWeight < 0 {
		return fmt.Errorf("ftl: fault penalty weight must be ≥ 0, got %g", c.FaultPenaltyWeight)
	}
	if c.SoftGCThreshold != 0 && c.SoftGCThreshold <= c.GCFreeBlockThreshold {
		return fmt.Errorf("ftl: soft GC threshold %d must exceed the hard threshold %d",
			c.SoftGCThreshold, c.GCFreeBlockThreshold)
	}
	if c.UserStreams < 0 || c.UserStreams > 8 {
		return fmt.Errorf("ftl: user streams must be in [0,8], got %d", c.UserStreams)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Preempt.Validate(); err != nil {
		return err
	}
	if err := c.RAIN.Validate(); err != nil {
		return err
	}
	if err := c.DFTL.Validate(); err != nil {
		return err
	}
	return nil
}

// GCStats counts garbage-collection activity.
type GCStats struct {
	Runs           int64 // victim selections
	Relocated      int64 // valid pages copied out of victims
	Erased         int64 // blocks erased
	Background     int64 // cycles initiated by the soft threshold
	PartialWindows int64 // idle windows in which partial GC made progress
	PartialPages   int64 // valid pages migrated inside idle windows
}

// ErrNoSpace is wrapped by Program when a plane has no free page and GC can
// reclaim nothing — the host space is oversubscribed for this geometry.
var ErrNoSpace = fmt.Errorf("ftl: out of free pages (drive oversubscribed)")

// ErrProgramFault is wrapped by Program when injected program-status
// failures burned every allowed attempt without landing the data.
var ErrProgramFault = fmt.Errorf("ftl: program failed on every retry attempt")

// ErrPageState is wrapped by Invalidate/Revalidate/RefreshPage when the
// page is not in the state the transition requires. It marks a
// bookkeeping inconsistency — mapper and store disagree about a page —
// which degraded operation must surface as an error, never a panic.
var ErrPageState = fmt.Errorf("ftl: page state inconsistent")

// blockInfo is per-block accounting.
type blockInfo struct {
	valid     int32
	invalid   int32
	erases    int32
	progFails int32 // injected program-status failures (suspect tracking)
	reads     int64 // reads since last erase (read-disturb input; integrity only)
	free      bool
	active    bool
	bad       bool // retired: never erased, allocated or collected again
	dead      bool // its die failed: unreadable, but valid pages await RAIN rebuild
	draining  bool // queued by the partial collector; foreground GC skips it
	trans     bool // holds translation pages; collected by the translation GC stream
}

// frontier is one open write block.
type frontier struct {
	active   ssd.BlockID
	nextPage int
}

// planeState is the per-plane allocation context: a free-block list plus
// one write frontier per stream (the last frontier belongs to GC when
// SeparateGCStream is set).
type planeState struct {
	freeBlocks []ssd.BlockID
	frontiers  []frontier
}

// Store owns the physical pages of the drive: states, per-block counters,
// per-plane free lists and active (write-frontier) blocks, and garbage
// collection. All flash operations are stamped on the Bus, so GC stalls
// surface as queuing delay for subsequent requests on the same chip.
type Store struct {
	cfg    StoreConfig
	geo    ssd.Geometry
	bus    *ssd.Bus
	state  *sparse.Array[PageState]
	blocks []blockInfo
	planes []planeState

	// planeOrder is the channel-striped allocation order: consecutive host
	// writes land on different chips, exploiting SSD parallelism.
	planeOrder []int
	cursor     int

	// effThreshold is the free-block low-water mark GC maintains: at least
	// the configured threshold, and at least one more block than there are
	// write frontiers, so every stream can roll without exhausting the
	// plane between GC cycles.
	effThreshold int

	gc GCStats

	// Partial-GC state (see preempt.go): per-plane resumable drain
	// positions and the scratch slice the idle-order plane sort reuses.
	// Idle with the zero PreemptConfig.
	drains       []drainState
	drainScratch []int

	// inj draws fault decisions; nil models a perfect drive. faults
	// counts the injected failures and the recovery work they caused.
	inj    *fault.Injector
	faults fault.Stats

	// Integrity-model state (see integrity.go): the RBER estimator, the
	// per-page program timestamps it ages against, and the pages whose
	// data an uncorrectable read has already destroyed. All nil/empty
	// while the model is disarmed — no per-read cost, no draws.
	integ        *fault.Estimator
	progTime     []ssd.Time
	lost         []bool
	lostCount    int64 // pages currently marked lost (health governor input)
	integRetries int   // ECC ladder reads charged per uncorrectable read

	// Crash-consistency state (see oob.go): per-page OOB records, the
	// durable mapping journal, the monotonic sequence counter, and the
	// armed power-loss countdown.
	oob        *sparse.Array[OOB]
	journal    []Binding
	journalCap int
	seq        uint64
	crashAt    int64 // Faults.CrashAtOp; 0 = never
	opCount    int64 // flash ops counted while armed
	crashed    bool  // the one-shot trigger has fired

	// OnRelocate is called when GC moves a valid page; mapping layers
	// rebind LPNs here. Nil is allowed.
	OnRelocate func(src, dst ssd.PPN)

	// OwnerOf asks the mapping layer for the current logical owner of a
	// valid physical page; GC relocation stamps the copy's OOB with it so
	// recovery rebinds the right LPN even for revived or deduplicated
	// pages. Nil falls back to the source page's own OOB stamp.
	OwnerOf func(ppn ssd.PPN) (LPN, bool)

	// OnEraseGarbage is called for every invalid page destroyed by an
	// erase; the dead-value pool drops its zombies here. Nil is allowed.
	OnEraseGarbage func(ppn ssd.PPN)

	// Scorer provides garbage popularity for popularity-aware GC. Nil
	// (or PopularityWeight 0) selects greedy GC.
	Scorer GarbageScorer

	// Tel is the observability instance the device builder wires in; nil
	// (the default) observes nothing. The store tags GC and ECC-retry
	// operations with their origin and emits GC-cycle spans through it —
	// all strictly after the bus has stamped the timeline, so telemetry
	// cannot change a simulated-time result.
	Tel *telemetry.Telemetry

	// Multi-tenant attribution (see tenant.go): per-page owner stamps, the
	// scoped current tenant, and the per-tenant flash ledger. All nil/idle
	// until EnableTenants; like Tel, strictly observational.
	pageOwner   []int16
	curTenant   int16
	tenantStats []TenantStoreStats

	// RAIN state (see rain.go): the stripe tracker, its activity
	// counters, and the die-failure trigger with the rebuild daemon's
	// resumable scan position. rain is nil — no parity slots, no stripe
	// bookkeeping — unless StoreConfig.RAIN enables it; the die-failure
	// fields idle at zero unless Faults.DieFailAtOp arms them.
	rain      *rain.Tracker
	rainStats rain.Stats
	deadPlane []bool // planes of failed dies; allocation and drains skip them

	dieFailAt    int64    // Faults.DieFailAtOp; 0 = never
	dieOps       int64    // host ops counted while armed
	dieFailed    bool     // the one-shot trigger has fired
	dieFailClock ssd.Time // when the die died (rebuild-time reporting)

	rebuildCursor ssd.PPN  // resumable rebuild-daemon scan position
	rebuildFound  bool     // the current sweep found work (another pass needed)
	rebuildDone   bool     // a full sweep found nothing left to rebuild
	rebuildClock  ssd.Time // when the daemon last re-landed a page

	// DFTL state (see dftl.go): the cached mapping table (nil until
	// AttachCMT on a DFTL-enabled config), and the mapping updates data GC
	// has produced but not yet folded into flash translation pages.
	cmt     *dftl.CMT
	mapPend []mapUpdate
	// wbTVPN/wbActive guard the translation page currently being written
	// back: its GC rebindings must stay queued, not be folded into flash by
	// a nested flush, or the write-back's pre-GC snapshot would overwrite
	// them (see writebackFrame).
	wbTVPN   uint32
	wbActive bool

	// LookupOf asks the mapping layer for lpn's current binding; the
	// pending-map-update flush consults it so a GC rebinding that was
	// superseded by a later host write is discarded instead of clobbering
	// the newer translation entry. Nil applies pending updates as-is.
	LookupOf func(lpn LPN) (ssd.PPN, bool)
}

// mapUpdate is one GC-produced mapping rebinding awaiting its translation
// page (see flushMapUpdates in dftl.go).
type mapUpdate struct {
	lpn LPN
	ppn ssd.PPN
}

// NewStore returns a Store over bus with every block free.
func NewStore(cfg StoreConfig, bus *ssd.Bus) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := bus.Geometry()
	if cfg.GCFreeBlockThreshold >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("ftl: GC threshold %d must be below blocks per plane %d",
			cfg.GCFreeBlockThreshold, geo.BlocksPerPlane)
	}
	if cfg.SoftGCThreshold >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("ftl: soft GC threshold %d must be below blocks per plane %d",
			cfg.SoftGCThreshold, geo.BlocksPerPlane)
	}
	cfg.Preempt = cfg.Preempt.WithDefaults()
	cfg.DFTL = cfg.DFTL.WithDefaults()
	s := &Store{
		cfg:     cfg,
		geo:     geo,
		bus:     bus,
		state:   sparse.New(geo.TotalPages(), PageFree),
		blocks:  make([]blockInfo, geo.TotalBlocks()),
		planes:  make([]planeState, geo.TotalPlanes()),
		drains:  make([]drainState, geo.TotalPlanes()),
		inj:     fault.New(cfg.Faults),
		integ:   fault.NewEstimator(cfg.Faults),
		oob:     sparse.New(geo.TotalPages(), OOB{}),
		crashAt: cfg.Faults.CrashAtOp,
	}
	if pc := cfg.Preempt; pc.SuspendEnabled() {
		bus.ConfigureSuspend(ssd.SuspendConfig{
			MaxPerOp:    pc.MaxSuspends,
			SuspendCost: pc.SuspendCost,
			ResumeCost:  pc.ResumeCost,
		})
	}
	if s.integ != nil {
		s.progTime = make([]ssd.Time, geo.TotalPages())
		s.integRetries = cfg.Faults.WithDefaults().ReadRetries
	}
	if s.integ != nil || cfg.Faults.DieFailAtOp > 0 {
		// Loss marks are kept for the integrity model and for die failure
		// alike, so both loss paths share one counter (LostPages).
		s.lost = make([]bool, geo.TotalPages())
	}
	if cfg.RAIN.Enabled() {
		t, err := rain.NewTracker(geo, cfg.RAIN)
		if err != nil {
			return nil, err
		}
		s.rain = t
	}
	if df := cfg.Faults.DieFailAtOp; df > 0 {
		if dies := geo.TotalChips() * geo.DiesPerChip; cfg.Faults.DieFailDie >= dies {
			return nil, fmt.Errorf("fault: DieFailDie %d outside the drive's %d dies",
				cfg.Faults.DieFailDie, dies)
		}
		s.dieFailAt = df
		s.deadPlane = make([]bool, geo.TotalPlanes())
	}
	s.journalCap = int(geo.TotalPages())
	if s.journalCap < journalCapFloor {
		s.journalCap = journalCapFloor
	}
	frontiers := cfg.UserStreams
	if frontiers < 1 {
		frontiers = 1
	}
	if cfg.SeparateGCStream {
		frontiers++
	}
	if cfg.DFTL.Enabled() {
		// The translation stream is always the last frontier: translation
		// pages never share a block with host or relocated data, so the
		// translation GC stream collects whole translation blocks.
		frontiers++
	}
	s.effThreshold = cfg.GCFreeBlockThreshold
	if s.effThreshold < frontiers+1 {
		s.effThreshold = frontiers + 1
	}
	if frontiers+s.effThreshold >= geo.BlocksPerPlane {
		return nil, fmt.Errorf("ftl: %d frontiers + threshold %d exceed blocks per plane %d",
			frontiers, s.effThreshold, geo.BlocksPerPlane)
	}
	for p := range s.planes {
		pl := &s.planes[p]
		pl.freeBlocks = make([]ssd.BlockID, 0, geo.BlocksPerPlane)
		// Push in reverse so blocks are consumed in ascending order.
		for i := geo.BlocksPerPlane - 1; i >= frontiers; i-- {
			b := geo.BlockAt(p, i)
			s.blocks[b].free = true
			pl.freeBlocks = append(pl.freeBlocks, b)
		}
		pl.frontiers = make([]frontier, frontiers)
		for f := 0; f < frontiers; f++ {
			b := geo.BlockAt(p, f)
			s.blocks[b].active = true
			if cfg.DFTL.Enabled() && f == frontiers-1 {
				s.blocks[b].trans = true
			}
			pl.frontiers[f] = frontier{active: b}
		}
	}
	// Channel-striped plane order: chip varies fastest.
	chips := geo.TotalChips()
	perChip := geo.PlanesPerChip()
	s.planeOrder = make([]int, geo.TotalPlanes())
	for i := range s.planeOrder {
		chip := i % chips
		within := i / chips
		s.planeOrder[i] = chip*perChip + within%perChip
	}
	return s, nil
}

// Geometry returns the drive geometry.
func (s *Store) Geometry() ssd.Geometry { return s.geo }

// UsablePages returns the hard upper bound on simultaneously valid pages:
// total pages minus the per-plane free reserve GC maintains. Hosts
// oversubscribing this bound will hit ErrNoSpace.
func (s *Store) UsablePages() int64 {
	reserve := int64(s.geo.TotalPlanes()) * int64(s.effThreshold) * int64(s.geo.PagesPerBlock)
	u := s.geo.TotalPages() - reserve
	if s.rain != nil {
		// One page per stripe is parity, in reserve blocks and data blocks
		// alike, so only the data fraction of what remains can hold host
		// pages.
		w := int64(s.rain.Width())
		u = u * (w - 1) / w
	}
	return u
}

// UsablePagesNow returns UsablePages minus the pages lost to retired (bad)
// blocks — the capacity the drive can still offer at this point of its
// life. It equals UsablePages on a fault-free drive and shrinks
// monotonically as blocks retire; the lifetime harness samples it per
// epoch and declares the drive dead when it crosses the capacity floor.
func (s *Store) UsablePagesNow() int64 {
	u := s.UsablePages() - s.faults.RetiredBlocks*int64(s.geo.PagesPerBlock)
	if u < 0 {
		return 0
	}
	return u
}

// State returns the current state of page p.
func (s *Store) State(p ssd.PPN) PageState { return s.state.Get(int64(p)) }

// setState writes page p's state into the sparse state array.
func (s *Store) setState(p ssd.PPN, st PageState) { s.state.Set(int64(p), st) }

// setOOB writes page p's OOB record into the sparse OOB array.
func (s *Store) setOOB(p ssd.PPN, o OOB) { s.oob.Set(int64(p), o) }

// GC returns cumulative garbage-collection statistics.
func (s *Store) GC() GCStats { return s.gc }

// FaultStats returns the injected-fault counters accumulated so far. All
// zeros on a fault-free drive.
func (s *Store) FaultStats() fault.Stats { return s.faults }

// BadBlock reports whether b has been retired from service.
func (s *Store) BadBlock(b ssd.BlockID) bool { return s.blocks[b].bad }

// EraseCountOf returns the number of erases block b has endured.
func (s *Store) EraseCountOf(b ssd.BlockID) int32 { return s.blocks[b].erases }

// FreeBlocksInPlane returns the free-list length of a plane (for tests and
// introspection).
func (s *Store) FreeBlocksInPlane(plane int) int { return len(s.planes[plane].freeBlocks) }

// Telemetry returns the observability instance wired into this store (nil
// when telemetry is off).
func (s *Store) Telemetry() *telemetry.Telemetry { return s.Tel }

// TotalFreeBlocks returns the free-list length summed over every plane.
func (s *Store) TotalFreeBlocks() int {
	var n int
	for p := range s.planes {
		n += len(s.planes[p].freeBlocks)
	}
	return n
}

// GCDebt returns how many free blocks GC currently owes the drive: the sum
// over planes of the shortfall below the effective low-water mark. A
// positive debt means upcoming writes on those planes will pay for GC
// cycles before they can allocate.
func (s *Store) GCDebt() int {
	var debt int
	for p := range s.planes {
		if short := s.effThreshold - len(s.planes[p].freeBlocks); short > 0 {
			debt += short
		}
	}
	return debt
}

// Program allocates a fresh physical page, programs it on the bus at time
// now, marks it Valid, and returns it with the completion time. GC runs
// first when the target plane is low on free blocks, so the program (and
// everything queued behind it on that chip) pays the GC cost — exactly the
// interference the paper's latency figures measure.
func (s *Store) Program(now ssd.Time) (ssd.PPN, ssd.Time, error) {
	return s.ProgramStream(now, 0)
}

/// ProgramStream is Program targeting a specific host write stream: pages of
// different streams never share a block, so callers can separate hot and
// cold data. The stream index must be below StoreConfig.UserStreams (or 0
// for single-stream stores).
func (s *Store) ProgramStream(now ssd.Time, stream int) (ssd.PPN, ssd.Time, error) {
	if err := s.dieTick(now); err != nil {
		return ssd.InvalidPPN, 0, err
	}
	plane, err := s.nextPlane()
	if err != nil {
		return ssd.InvalidPPN, 0, err
	}
	maxStream := s.cfg.UserStreams
	if maxStream < 1 {
		maxStream = 1
	}
	if stream < 0 || stream >= maxStream {
		return ssd.InvalidPPN, 0, fmt.Errorf("ftl: stream %d outside [0,%d)", stream, maxStream)
	}
	// Background GC: when the plane is below the soft threshold, erase a
	// fully dead block, stamped at time 0 — the bus starts it the moment
	// the chip last went idle, so the erase lands in the arrival gap that
	// already passed instead of stalling a request at the hard threshold.
	// Only 100%-garbage victims qualify: collecting blocks that still hold
	// valid pages early forfeits the invalidation accumulation that makes
	// lazy greedy GC cheap (see BenchmarkAblationBackgroundGC for the
	// measured cliff when the gate is loosened).
	if s.cfg.SoftGCThreshold > 0 && len(s.planes[plane].freeBlocks) < s.cfg.SoftGCThreshold {
		collected, err := s.collectPlaneMin(plane, 0, int32(s.geo.PagesPerBlock))
		if err != nil {
			return ssd.InvalidPPN, 0, err
		}
		if collected {
			s.gc.Background++
		}
	}
	if err := s.ensureSpace(plane, now); err != nil {
		return ssd.InvalidPPN, 0, err
	}
	return s.programAt(plane, stream, now)
}

// nextPlane advances the channel-striped allocation rotation and returns
// the next living plane — shared by host programs and translation-page
// programs so both stripe across chips the same way.
func (s *Store) nextPlane() (int, error) {
	plane := s.planeOrder[s.cursor]
	s.cursor = (s.cursor + 1) % len(s.planeOrder)
	if s.deadPlane != nil && s.deadPlane[plane] {
		// A failed die's planes leave the allocation rotation; the write
		// lands on the next living plane.
		for i := 1; i < len(s.planeOrder) && s.deadPlane[plane]; i++ {
			plane = s.planeOrder[s.cursor]
			s.cursor = (s.cursor + 1) % len(s.planeOrder)
		}
		if s.deadPlane[plane] {
			return 0, fmt.Errorf("ftl: every plane dead: %w", ErrNoSpace)
		}
	}
	return plane, nil
}

// programAt allocates and programs one page on the plane's stream,
// re-landing the data on a fresh page after every injected program-status
// failure: the failed page is left behind as unrevivable garbage (it never
// reaches the dead-value pool), its block is marked suspect, and the retry
// pays full program latency after the failed attempt completes. On a
// fault-free drive this is exactly allocate + program.
func (s *Store) programAt(plane, stream int, now ssd.Time) (ssd.PPN, ssd.Time, error) {
	maxAttempts := 1
	if s.inj != nil {
		maxAttempts = s.inj.Config().MaxProgramAttempts
	}
	for attempt := 1; ; attempt++ {
		ppn, err := s.allocate(plane, stream)
		if err != nil {
			return ssd.InvalidPPN, 0, err
		}
		blk := s.geo.BlockOf(ppn)
		if s.crashNow() {
			// Power cut mid-program: the page is torn — unreadable data,
			// unreadable OOB — and the write was never acknowledged.
			s.setState(ppn, PageInvalid)
			s.blocks[blk].valid--
			s.blocks[blk].invalid++
			s.setOOB(ppn, OOB{State: OOBTorn})
			return ssd.InvalidPPN, 0, fmt.Errorf("ftl: program of page %d interrupted: %w", ppn, fault.ErrPowerLoss)
		}
		done := s.bus.Program(ppn, now)
		if s.inj == nil || !s.inj.ProgramFails(s.blocks[blk].erases) {
			if attempt > 1 {
				s.faults.Relocations++
			}
			if s.integ != nil {
				// A fresh program resets the page's decay clock.
				s.progTime[ppn] = done
			}
			s.clearLost(ppn)
			if s.rain != nil {
				if err := s.rainOnProgram(ppn, done); err != nil {
					return ssd.InvalidPPN, 0, err
				}
			}
			return ppn, done, nil
		}
		s.faults.ProgramFailures++
		s.setState(ppn, PageInvalid)
		s.blocks[blk].valid--
		s.blocks[blk].invalid++
		s.setOOB(ppn, OOB{State: OOBTorn}) // status-failed page: contents untrustworthy
		s.blocks[blk].progFails++
		if s.blocks[blk].progFails == 1 {
			s.faults.SuspectBlocks++
		}
		if attempt >= maxAttempts {
			return ssd.InvalidPPN, 0, fmt.Errorf("ftl: block %d after %d attempts: %w", blk, attempt, ErrProgramFault)
		}
		now = done
	}
}

// Read issues a host read of page p at time now. The error is non-nil when
// the armed power-loss trigger fires on this operation (the read returns
// nothing and no device state changes) or when the integrity model declares
// the read uncorrectable (ErrUncorrectable; the returned time is still the
// completion of the failed ECC ladder and the page's data is lost).
func (s *Store) Read(p ssd.PPN, now ssd.Time) (ssd.Time, error) {
	if err := s.dieTick(now); err != nil {
		return 0, err
	}
	if s.PageDead(p) {
		return s.readDead(p, now, now)
	}
	done, err := s.readPageAt(p, now, now, true)
	if err != nil && errors.Is(err, ErrUncorrectable) {
		// Host-path loss repairs itself when RAIN covers the page: read
		// the surviving members, XOR, re-land, rebind — the read succeeds
		// where it used to destroy data.
		if rdone, ok, rerr := s.tryReconstruct(p, done, now); rerr != nil {
			return 0, rerr
		} else if ok {
			return rdone, nil
		}
	}
	return done, err
}

// readPage issues one page read plus any injected ECC retries, each a full
// extra read operation on the chip.
func (s *Store) readPage(p ssd.PPN, now ssd.Time) (ssd.Time, error) {
	return s.readPageAt(p, now, now, false)
}

// readPageAt is readPage with the bus stamp and the decay clock split:
// host reads pass the same instant for both, while the scrubber stamps its
// patrol reads at time 0 — the bus then starts them the moment the chip
// last went idle — yet ages pages against the real current time. Only host
// reads (host true) may suspend an in-flight GC erase/program; GC, scrub
// and ECC-ladder reads queue normally.
func (s *Store) readPageAt(p ssd.PPN, stamp, clock ssd.Time, host bool) (ssd.Time, error) {
	if s.crashNow() {
		return 0, fmt.Errorf("ftl: read of page %d interrupted: %w", p, fault.ErrPowerLoss)
	}
	var done ssd.Time
	if host {
		done = s.bus.ReadHost(p, stamp)
	} else {
		done = s.bus.Read(p, stamp)
	}
	if s.inj != nil {
		erases := s.blocks[s.geo.BlockOf(p)].erases
		for r := 0; r < s.inj.Config().ReadRetries && s.inj.ReadFails(erases); r++ {
			s.faults.ReadRetries++
			if s.crashNow() {
				return 0, fmt.Errorf("ftl: read retry of page %d interrupted: %w", p, fault.ErrPowerLoss)
			}
			prev := s.Tel.EnterECC()
			done = s.bus.Read(p, done)
			s.Tel.ExitOrigin(prev)
		}
	}
	if s.integ != nil {
		return s.integrityCheck(p, done, clock)
	}
	return done, nil
}

// gcStream returns the frontier index GC relocations write to.
func (s *Store) gcStream(plane int) int {
	if s.cfg.SeparateGCStream {
		n := len(s.planes[plane].frontiers) - 1
		if s.cfg.DFTL.Enabled() {
			n-- // the last frontier belongs to the translation stream
		}
		return n
	}
	return 0
}

// transStream returns the frontier index translation pages program to.
// Only meaningful on a DFTL-enabled store, where it is always the last
// frontier.
func (s *Store) transStream(plane int) int {
	return len(s.planes[plane].frontiers) - 1
}

// isTransStream reports whether (plane, stream) is the translation
// frontier — the allocator marks blocks it rolls onto as translation
// blocks so the two GC streams never mix victims.
func (s *Store) isTransStream(plane, stream int) bool {
	return s.cfg.DFTL.Enabled() && stream == len(s.planes[plane].frontiers)-1
}

// allocate takes the next page of the stream's active block, rolling to a
// free block when the frontier fills. Under RAIN the frontier steps over
// parity slots — they stay PageFree until the stripe's parity is flushed
// onto them — so the loop may advance more than one page; without RAIN it
// runs exactly once.
func (s *Store) allocate(plane, stream int) (ssd.PPN, error) {
	pl := &s.planes[plane]
	fr := &pl.frontiers[stream]
	for {
		if fr.nextPage == s.geo.PagesPerBlock {
			if len(pl.freeBlocks) == 0 {
				return ssd.InvalidPPN, fmt.Errorf("plane %d: %w", plane, ErrNoSpace)
			}
			s.blocks[fr.active].active = false
			pick := len(pl.freeBlocks) - 1
			if s.cfg.WearAware {
				// Take the least-erased free block so erases spread evenly.
				for i, b := range pl.freeBlocks {
					if s.blocks[b].erases < s.blocks[pl.freeBlocks[pick]].erases {
						pick = i
					}
				}
			}
			next := pl.freeBlocks[pick]
			pl.freeBlocks[pick] = pl.freeBlocks[len(pl.freeBlocks)-1]
			pl.freeBlocks = pl.freeBlocks[:len(pl.freeBlocks)-1]
			s.blocks[next].free = false
			s.blocks[next].active = true
			if s.isTransStream(plane, stream) {
				s.blocks[next].trans = true
			}
			fr.active = next
			fr.nextPage = 0
		}
		ppn := s.geo.PageAt(fr.active, fr.nextPage)
		fr.nextPage++
		if s.rain != nil && s.rain.IsParity(ppn) {
			continue
		}
		if s.rain != nil && s.stripeUnprotectable(ppn) {
			// The stripe's fixed parity home is retired or dead: any data
			// landed here could never be covered, and the rebuild daemon
			// would just refresh it away again. Skip the page — a small
			// capacity shave on the blocks sharing offsets with a dead
			// parity home.
			continue
		}
		s.setState(ppn, PageValid)
		s.blocks[fr.active].valid++
		return ppn, nil
	}
}

// Invalidate turns a valid page into garbage (an update superseded it).
// A non-valid page is a state-machine inconsistency in the caller and
// reports ErrPageState with the store untouched.
func (s *Store) Invalidate(p ssd.PPN) error {
	if st := s.State(p); st != PageValid {
		return fmt.Errorf("%w: Invalidate(%d): page is %v, not valid", ErrPageState, p, st)
	}
	s.setState(p, PageInvalid)
	b := s.geo.BlockOf(p)
	s.blocks[b].valid--
	s.blocks[b].invalid++
	if s.rain != nil && s.blocks[b].dead && !s.rain.IsParity(p) {
		// Garbage on a failed die will never be erased or revived; drop it
		// from its stripe now, exactly as failDie drops the invalid pages
		// it finds at failure time.
		s.rain.NoteErased(p)
	}
	return nil
}

// Revalidate revives a garbage page: the dead-value pool matched an
// incoming write to it, so it becomes valid again with no flash
// operation. A non-garbage page is a state-machine inconsistency in the
// caller and reports ErrPageState with the store untouched.
func (s *Store) Revalidate(p ssd.PPN) error {
	if st := s.State(p); st != PageInvalid {
		return fmt.Errorf("%w: Revalidate(%d): page is %v, not invalid", ErrPageState, p, st)
	}
	s.setState(p, PageValid)
	b := s.geo.BlockOf(p)
	s.blocks[b].valid++
	s.blocks[b].invalid--
	s.ownRevived(int64(p))
	return nil
}

// ensureSpace runs GC on the plane until its free list reaches the
// threshold or no block yields free space.
func (s *Store) ensureSpace(plane int, now ssd.Time) error {
	for len(s.planes[plane].freeBlocks) < s.effThreshold {
		// A plane caught mid-drain finishes its head victim first: the
		// stall is bounded by the pages partial GC has not yet moved, and
		// the free-block floor is restored the same way a blocking cycle
		// would. A stalled drain (no relocation capacity for the head) falls
		// through to a normal cycle on a different victim.
		if len(s.drains[plane].queue) > 0 {
			finished, err := s.finishDrainHead(plane, now)
			if err != nil {
				return err
			}
			if finished {
				continue
			}
		}
		collected, err := s.collectPlane(plane, now)
		if err != nil {
			return err
		}
		if !collected {
			// Nothing reclaimable. Only fatal if allocation cannot proceed
			// at all; allocate reports that case.
			return nil
		}
	}
	return nil
}

// relocationCapacity returns how many valid pages the plane can absorb
// right now: the rest of the GC write frontier plus every free block.
func (s *Store) relocationCapacity(plane int) int32 {
	pl := &s.planes[plane]
	fr := &pl.frontiers[s.gcStream(plane)]
	c := int32(s.geo.PagesPerBlock-fr.nextPage) + int32(s.geo.PagesPerBlock*len(pl.freeBlocks))
	if s.rain != nil {
		// Parity slots cannot absorb relocated data; scale the estimate
		// down by the stripe's data fraction so admitted victims always fit.
		w := int32(s.rain.Width())
		c = c * (w - 1) / w
	}
	return c
}

// victim selects the GC victim for a plane, or InvalidBlock when no
// non-active, non-free block has any invalid page (or none fits the
// plane's relocation capacity). Candidates are ranked by victimScore.
func (s *Store) victim(plane int) ssd.BlockID {
	best := ssd.InvalidBlock
	bestScore := math.Inf(-1)
	capacity := s.relocationCapacity(plane)
	for i := 0; i < s.geo.BlocksPerPlane; i++ {
		b := s.geo.BlockAt(plane, i)
		info := &s.blocks[b]
		if info.free || info.active || info.bad || info.dead || info.draining ||
			info.trans || info.invalid == 0 || info.valid > capacity {
			continue
		}
		score := s.victimScore(b)
		if score > bestScore {
			bestScore = score
			best = b
		}
	}
	return best
}

// victimScore ranks GC victim candidates. The base is the classic greedy
// most-invalid count; with a Scorer and a positive PopularityWeight it is
// reduced by the popularity of the block's pooled garbage (likely to be
// revived soon, Section IV-D); with a positive FaultPenaltyWeight it is
// reduced by the block's accumulated program-status failures so relocation
// lands on trustworthy flash. DrainSuspects overrides the penalty for
// blocks already doomed to retire at their next erase: those get a bonus of
// one whole block's worth of greed, so they are drained — and their
// capacity loss taken — promptly instead of festering. Every extra term is
// guarded, so the zero configuration scores bit-identically to greedy.
func (s *Store) victimScore(b ssd.BlockID) float64 {
	info := &s.blocks[b]
	score := float64(info.invalid)
	if s.Scorer != nil && s.cfg.PopularityWeight > 0 {
		score -= s.cfg.PopularityWeight * float64(s.garbagePopularitySum(b))
	}
	if info.progFails > 0 {
		switch {
		case s.cfg.DrainSuspects && s.cfg.Faults.SuspectThreshold > 0 &&
			int(info.progFails) >= s.cfg.Faults.SuspectThreshold:
			score += float64(s.geo.PagesPerBlock)
		case s.cfg.FaultPenaltyWeight > 0:
			score -= s.cfg.FaultPenaltyWeight * float64(info.progFails)
		}
	}
	return score
}

// garbagePopularitySum is the paper's popularity-aware victim metric: the
// sum of popularity degrees of this block's pooled garbage pages.
func (s *Store) garbagePopularitySum(b ssd.BlockID) int64 {
	var sum int64
	first := s.geo.FirstPage(b)
	for i := 0; i < s.geo.PagesPerBlock; i++ {
		p := first + ssd.PPN(i)
		if s.State(p) != PageInvalid {
			continue
		}
		if pop, ok := s.Scorer.GarbagePopularity(p); ok {
			sum += int64(pop)
		}
	}
	return sum
}

// collectPlane runs one GC cycle on the plane: pick a victim, relocate its
// valid pages into the write frontier, notify the pool about destroyed
// garbage, erase, and return the block to the free list. Reports whether a
// block was reclaimed (a retired victim still counts: its pages were
// consumed even though the block left service). The error is non-nil only
// under fault injection, when a relocation burned every program attempt.
func (s *Store) collectPlane(plane int, now ssd.Time) (bool, error) {
	return s.collectPlaneMin(plane, now, 1)
}

// collectPlaneMin is collectPlane with a victim profitability floor: blocks
// with fewer than minInvalid garbage pages are not collected. On a
// DFTL-enabled store the data and translation streams compete for the
// cycle: whichever eligible victim scores higher is collected, so
// translation garbage cannot pile up unreclaimed behind data GC (Dayan &
// Bonnet's second stream).
func (s *Store) collectPlaneMin(plane int, now ssd.Time, minInvalid int32) (bool, error) {
	v := s.victim(plane)
	if s.cmt != nil {
		tv := s.victimTrans(plane)
		if tv != ssd.InvalidBlock && s.blocks[tv].invalid >= minInvalid &&
			(v == ssd.InvalidBlock || s.victimScore(tv) > s.victimScore(v)) {
			return s.collectTransPlane(plane, tv, now)
		}
	}
	if v == ssd.InvalidBlock || s.blocks[v].invalid < minInvalid {
		return false, nil
	}
	s.gc.Runs++
	prevOrigin := s.Tel.EnterOrigin(telemetry.OriginGC)
	defer s.Tel.ExitOrigin(prevOrigin)
	s.bus.SuspendScope(true)
	defer s.bus.SuspendScope(false)
	relocBefore := s.gc.Relocated
	first := s.geo.FirstPage(v)
	for i := 0; i < s.geo.PagesPerBlock; i++ {
		p := first + ssd.PPN(i)
		switch s.State(p) {
		case PageValid:
			readDone, err := s.readPage(p, now)
			if err != nil && !errors.Is(err, ErrUncorrectable) {
				// Power cut mid-relocation read: the source page is intact
				// and still mapped; nothing is torn.
				return false, fmt.Errorf("ftl: GC relocation read of page %d: %w", p, err)
			}
			// An uncorrectable relocation read cannot abort GC — the block
			// must still be reclaimed — so the copy proceeds with garbled
			// data and the loss mark travels to the destination below; the
			// damage surfaces when the host next reads the logical page.
			wasLost := err != nil
			dst, _, err := s.programAt(plane, s.gcStream(plane), readDone)
			if err != nil && errors.Is(err, ErrProgramFault) {
				dst, _, err = s.relandGC(plane, readDone)
			}
			if err != nil {
				return false, fmt.Errorf("ftl: GC relocation of page %d: %w", p, err)
			}
			if wasLost {
				s.markLost(dst)
				s.clearLost(p)
			}
			s.gc.Relocated++
			// Stamp before OnRelocate: the owner must be read while the
			// mapping still points at the source page.
			s.stampRelocated(p, dst)
			if s.OnRelocate != nil {
				s.OnRelocate(p, dst)
			}
		case PageInvalid:
			if s.OnEraseGarbage != nil {
				s.OnEraseGarbage(p)
			}
		}
		s.setState(p, PageFree)
	}
	return s.eraseVictim(plane, v, now, s.gc.Relocated-relocBefore)
}

// relandGC recovers a GC relocation whose program burned every allowed
// attempt inside the current GC frontier block: the frontier is forced
// onto a fresh free block and the relocation retried there, so one bad
// block cannot abort garbage collection. The abandoned block is retired
// on the spot when the failure storm left it with no live data; otherwise
// it keeps its suspect marks and retires at its next erase.
func (s *Store) relandGC(plane int, stamp ssd.Time) (ssd.PPN, ssd.Time, error) {
	return s.relandStream(plane, s.gcStream(plane), stamp)
}

// relandStream is relandGC generalized over the write stream, so the
// translation-GC relocation path recovers from program-fault storms the
// same way the data path does.
func (s *Store) relandStream(plane, stream int, stamp ssd.Time) (ssd.PPN, ssd.Time, error) {
	pl := &s.planes[plane]
	if len(pl.freeBlocks) == 0 {
		return ssd.InvalidPPN, 0, fmt.Errorf("ftl: GC re-land on plane %d: %w", plane, ErrNoSpace)
	}
	fr := &pl.frontiers[stream]
	bad := fr.active
	info := &s.blocks[bad]
	if info.active && info.valid == 0 {
		// Every program in the block failed (or its pages died since);
		// retire it now rather than let it poison another relocation. The
		// same cleanup the erase path performs applies: pooled garbage is
		// evicted and the OOB scrubbed, so neither revival nor recovery
		// ever touches the retired block again.
		first := s.geo.FirstPage(bad)
		for i := 0; i < s.geo.PagesPerBlock; i++ {
			p := first + ssd.PPN(i)
			if s.State(p) == PageInvalid && s.OnEraseGarbage != nil {
				s.OnEraseGarbage(p)
			}
			s.setState(p, PageFree)
			s.setOOB(p, OOB{})
			s.clearLost(p)
		}
		info.valid, info.invalid = 0, 0
		info.active = false
		info.bad = true
		s.faults.RetiredBlocks++
		if err := s.rainAfterErase(bad, stamp); err != nil {
			return ssd.InvalidPPN, 0, err
		}
	}
	// Force the next allocation to roll the frontier to a fresh block.
	fr.nextPage = s.geo.PagesPerBlock
	s.faults.GCRelands++
	return s.programAt(plane, stream, stamp)
}

// eraseVictim is the erase tail every GC path shares — blocking cycles and
// partial drains alike: stamp the erase (or tear the whole block on a
// power cut), clear the OOB and integrity marks, and either retire the
// block or return it to the plane's free list. Reports whether a block was
// reclaimed (a retired victim still counts: its pages were consumed even
// though the block left service).
func (s *Store) eraseVictim(plane int, v ssd.BlockID, now ssd.Time, relocated int64) (bool, error) {
	// GC-produced mapping rebindings must reach flash translation pages
	// before the erase completes the cycle; a disabled (or pending-free)
	// store skips this in one branch.
	if err := s.flushMapUpdates(now); err != nil {
		return false, err
	}
	first := s.geo.FirstPage(v)
	if s.crashNow() {
		// Power cut mid-erase: the whole block is torn — neither erased
		// nor readable. Every relocated page already landed elsewhere, so
		// the block holds only unrevivable garbage until GC retries.
		info := &s.blocks[v]
		info.valid = 0
		info.invalid = int32(s.geo.PagesPerBlock)
		for i := 0; i < s.geo.PagesPerBlock; i++ {
			p := first + ssd.PPN(i)
			s.setState(p, PageInvalid)
			s.setOOB(p, OOB{State: OOBTorn})
		}
		return false, fmt.Errorf("ftl: erase of block %d interrupted: %w", v, fault.ErrPowerLoss)
	}
	eraseDone := s.bus.Erase(v, now)
	if s.Tel.On() {
		s.Tel.EmitSpan(telemetry.OriginGC, "gc cycle", now, eraseDone, map[string]any{
			"plane":     plane,
			"block":     int64(v),
			"relocated": relocated,
		})
	}
	// The erase destroys page contents and OOB alike; even a failed erase
	// leaves nothing recovery may resurrect.
	for i := 0; i < s.geo.PagesPerBlock; i++ {
		s.setOOB(first+ssd.PPN(i), OOB{})
		s.clearLost(first + ssd.PPN(i))
	}
	info := &s.blocks[v]
	info.valid = 0
	info.invalid = 0
	info.erases++
	info.reads = 0   // read disturb is reset by the erase
	if info.trans {  // an erased translation block rejoins the general pool
		info.trans = false
		if s.cmt != nil {
			s.cmt.Stat.TransErased++
		}
	}
	eraseFailed := s.inj != nil && s.inj.EraseFails(info.erases)
	if eraseFailed {
		s.faults.EraseFailures++
	}
	suspectRetire := s.inj != nil && s.cfg.Faults.SuspectThreshold > 0 &&
		int(info.progFails) >= s.cfg.Faults.SuspectThreshold
	if eraseFailed || suspectRetire {
		// Retire the block: it never rejoins the free pool and the victim
		// scan skips it forever, so the plane is permanently smaller.
		info.bad = true
		info.free = false
		s.faults.RetiredBlocks++
		if err := s.rainAfterErase(v, now); err != nil {
			return false, err
		}
		return true, nil
	}
	info.free = true
	s.gc.Erased++
	s.planes[plane].freeBlocks = append(s.planes[plane].freeBlocks, v)
	if err := s.rainAfterErase(v, now); err != nil {
		return false, err
	}
	return true, nil
}

// WearSummary reports erase-count dispersion across blocks, for the
// lifetime analyses.
type WearSummary struct {
	MinErases, MaxErases int32
	TotalErases          int64
}

// Wear returns the drive's wear summary.
func (s *Store) Wear() WearSummary {
	var w WearSummary
	if len(s.blocks) == 0 {
		return w
	}
	w.MinErases = s.blocks[0].erases
	for i := range s.blocks {
		e := s.blocks[i].erases
		if e < w.MinErases {
			w.MinErases = e
		}
		if e > w.MaxErases {
			w.MaxErases = e
		}
		w.TotalErases += int64(e)
	}
	return w
}
