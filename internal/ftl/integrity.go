package ftl

// Integrity threading: the store-side half of the stateful RBER model
// (fault.Estimator). The store owns the inputs the model ages against —
// per-page program timestamps, per-block read counters (read disturb) and
// erase counts (wear) — and the consequences: uncorrectable reads mark the
// page's data as lost forever (until a fresh program or an erase), the
// scrubber refresh-relocates decaying pages through RefreshPage, and the
// dead-value pool vets every zombie through VerifyRevive before flipping
// it back to valid. Everything here is a no-op on a store whose plan
// leaves the model disarmed.

import (
	"errors"
	"fmt"

	"zombiessd/internal/fault"
	"zombiessd/internal/ssd"
)

// ErrUncorrectable is wrapped by reads that exceed ECC capability under
// the integrity model. The page's data is lost; the returned completion
// time is still valid (the controller paid the full ECC retry ladder
// before giving up), so callers can keep simulating past the loss.
var ErrUncorrectable = errors.New("ftl: read exceeded ECC capability (data lost)")

// IntegrityArmed reports whether the stateful RBER model is accumulating
// errors on this store.
func (s *Store) IntegrityArmed() bool { return s.integ != nil }

// IntegrityConfig returns the armed model's parameters with defaults
// applied, or the zero config while disarmed.
func (s *Store) IntegrityConfig() fault.IntegrityConfig {
	if s.integ == nil {
		return fault.IntegrityConfig{}
	}
	return s.integ.Config()
}

// LostPage reports whether p's data has been destroyed — by an
// uncorrectable read, or by its die failing with no parity to rebuild it.
// Always false while neither the integrity model nor die failure is armed.
func (s *Store) LostPage(p ssd.PPN) bool { return s.lost != nil && s.lost[p] }

// LostPages returns how many pages currently hold lost data — the health
// governor's loss signal and the lost_pages telemetry gauge. Scrub-patrol
// UECC, host-path UECC and die failure all funnel through markLost, so
// every loss source shares this one counter. Maintained incrementally by
// markLost/clearLost, so sampling it per host operation is free.
func (s *Store) LostPages() int64 { return s.lostCount }

// markLost records p's data as destroyed.
func (s *Store) markLost(p ssd.PPN) {
	if s.lost == nil || s.lost[p] {
		return
	}
	s.lost[p] = true
	s.lostCount++
}

// clearLost clears p's loss mark (fresh program or erase).
func (s *Store) clearLost(p ssd.PPN) {
	if s.lost == nil || !s.lost[p] {
		return
	}
	s.lost[p] = false
	s.lostCount--
}

// BlockReads returns the reads block b has served since its last erase
// (the read-disturb input). Always 0 while the model is disarmed.
func (s *Store) BlockReads(b ssd.BlockID) int64 { return s.blocks[b].reads }

// EstimatedRBER returns the model's raw bit error rate estimate for page
// p at the given instant — what the controller's background media scan
// would compute without touching the flash. 0 while the model is
// disarmed.
func (s *Store) EstimatedRBER(p ssd.PPN, clock ssd.Time) float64 {
	if s.integ == nil {
		return 0
	}
	b := s.geo.BlockOf(p)
	return s.integ.RBER(int64(clock-s.progTime[p]), s.blocks[b].reads, s.blocks[b].erases)
}

// integrityCheck classifies one completed read of page p against the RBER
// model: clean reads pass through, correctable ones pay one
// threshold-shifted retry read, uncorrectable ones pay the full ECC
// ladder, mark the page's data lost and return ErrUncorrectable. Every
// read — whatever its outcome — disturbs the block.
func (s *Store) integrityCheck(p ssd.PPN, done, clock ssd.Time) (ssd.Time, error) {
	b := s.geo.BlockOf(p)
	info := &s.blocks[b]
	info.reads++
	if s.lost[p] {
		// Known-lost data fails again without consuming draws, so rereads
		// of a dead page do not perturb the stream for live ones.
		s.faults.UncorrectableReads++
		return done, fmt.Errorf("ftl: reread of page %d: %w", p, ErrUncorrectable)
	}
	age := int64(clock - s.progTime[p])
	switch s.integ.Classify(s.integ.RBER(age, info.reads, info.erases)) {
	case fault.ReadClean:
		return done, nil
	case fault.ReadCorrectable:
		s.faults.CorrectableReads++
		if s.crashNow() {
			return 0, fmt.Errorf("ftl: ECC retry of page %d interrupted: %w", p, fault.ErrPowerLoss)
		}
		prev := s.Tel.EnterECC()
		done = s.bus.Read(p, done)
		s.Tel.ExitOrigin(prev)
		return done, nil
	default: // ReadUncorrectable
		s.faults.UncorrectableReads++
		s.markLost(p)
		// The controller exhausts the whole retry ladder before giving up.
		prev := s.Tel.EnterECC()
		defer s.Tel.ExitOrigin(prev)
		for r := 0; r < s.integRetries; r++ {
			if s.crashNow() {
				return 0, fmt.Errorf("ftl: ECC retry of page %d interrupted: %w", p, fault.ErrPowerLoss)
			}
			done = s.bus.Read(p, done)
		}
		return done, fmt.Errorf("ftl: read of page %d: %w", p, ErrUncorrectable)
	}
}

// ScrubRead issues one patrol read of page p on behalf of the scrubber:
// stamped at stamp (pass 0 to land it in idle bus windows) but aged
// against clock, the real current time. The returned error is
// ErrUncorrectable when the patrol itself discovers the page is beyond
// ECC, or a power-loss wrap. Under RAIN the patrol repairs instead of
// marking lost: an uncorrectable patrol read (or a page on a failed die)
// triggers stripe reconstruction through the same path host reads use,
// and only an unreconstructable page surfaces the error.
func (s *Store) ScrubRead(p ssd.PPN, stamp, clock ssd.Time) (ssd.Time, error) {
	if s.PageDead(p) {
		return s.readDead(p, stamp, clock)
	}
	done, err := s.readPageAt(p, stamp, clock, false)
	if err != nil && errors.Is(err, ErrUncorrectable) {
		if rdone, ok, rerr := s.tryReconstruct(p, done, clock); rerr != nil {
			return 0, rerr
		} else if ok {
			return rdone, nil
		}
	}
	return done, err
}

// RefreshPage rewrites a decaying valid page onto fresh flash before its
// RBER crosses ECC capability: read the old copy, program a new one on
// the GC stream (running GC first if the plane is low), rebind the
// mapping via OnRelocate, and turn the old copy into plain garbage. The
// old copy is deliberately NOT offered to the dead-value pool — its
// content is still live under the same logical page, so pooling it would
// let a later write "revive" data that was never dead.
//
// Flash operations are stamped at stamp (the scrubber passes 0 for idle
// scheduling); RBER ages against clock. If making room relocated p in
// the meantime, the refresh is already done and nothing further happens.
// An uncorrectable read aborts the refresh — the page is lost, not
// refreshable — and returns ErrUncorrectable.
func (s *Store) RefreshPage(p ssd.PPN, stamp, clock ssd.Time) (ssd.Time, error) {
	if st := s.State(p); st != PageValid {
		return 0, fmt.Errorf("%w: RefreshPage(%d): page is %v, not valid", ErrPageState, p, st)
	}
	plane := s.geo.PlaneOfBlock(s.geo.BlockOf(p))
	if err := s.ensureSpace(plane, stamp); err != nil {
		return 0, err
	}
	if s.State(p) != PageValid {
		// GC relocated the page while making room — already refreshed.
		return stamp, nil
	}
	readDone, err := s.readPageAt(p, stamp, clock, false)
	if err != nil {
		if errors.Is(err, ErrUncorrectable) {
			// The copy decayed past ECC between the RBER estimate and the
			// read. Under RAIN the stripe is the refresh of last resort:
			// reconstruction re-lands the page on fresh flash, which is
			// exactly what the refresh was for.
			if rdone, ok, rerr := s.tryReconstruct(p, readDone, clock); rerr != nil {
				return 0, rerr
			} else if ok {
				return rdone, nil
			}
		}
		return readDone, err
	}
	dst, done, err := s.programAt(plane, s.gcStream(plane), readDone)
	if err != nil {
		return 0, fmt.Errorf("ftl: refresh of page %d: %w", p, err)
	}
	s.faults.RefreshWrites++
	if s.integ != nil && s.progTime[dst] < clock {
		// The refresh writes the data now; the bus merely charged the
		// transfer to an idle window that already passed. Age the new copy
		// from now, or a patrol running ahead of the chip's last-idle time
		// would find its own fresh copies stale and re-refresh them forever.
		s.progTime[dst] = clock
	}
	// Stamp before OnRelocate: the owner must be read while the mapping
	// still points at the source page (same discipline as GC relocation).
	s.stampRelocated(p, dst)
	if s.OnRelocate != nil {
		s.OnRelocate(p, dst)
	}
	if err := s.Invalidate(p); err != nil {
		return 0, fmt.Errorf("ftl: refresh of page %d: %w", p, err)
	}
	// The refresh rebound the page outside a GC cycle, so the pending
	// translation update has no erase tail to ride; fold it in now.
	if err := s.flushMapUpdates(stamp); err != nil {
		return 0, err
	}
	return done, nil
}

// VerifyRevive vets a zombie page before the dead-value pool flips it
// back to valid. On a disarmed store every revival is approved for free.
// Armed, the revival is declined — and the host write falls through to a
// normal program — when the page's data is already lost, when the
// estimated RBER is at or above the plan's RevivalRBERLimit, or when the
// verify read itself comes back uncorrectable. An approved revival costs
// one verify read (plus any ECC retries it needs), reflected in the
// returned completion time. Only power loss surfaces as an error.
func (s *Store) VerifyRevive(p ssd.PPN, now ssd.Time) (ssd.Time, bool, error) {
	if s.PageDead(p) || s.LostPage(p) {
		// A zombie on a failed die (or one whose data is already lost) can
		// never come back; the pool eviction at die-failure time makes
		// this unreachable in practice, but degraded operation must not
		// depend on it.
		s.faults.RevivalsDeclined++
		return now, false, nil
	}
	if s.rain != nil && s.stripeUnprotectable(p) {
		// The stripe's parity home is retired or dead, so the revived page
		// would live outside RAIN's protection — and, revalidated after
		// the rebuild daemon's final sweep, outside its reach too. Decline
		// in favor of a fresh, covered program of the same content.
		s.faults.RevivalsDeclined++
		return now, false, nil
	}
	if s.integ == nil {
		return now, true, nil
	}
	if s.lost[p] || s.EstimatedRBER(p, now) >= s.integ.Config().RevivalRBERLimit {
		s.faults.RevivalsDeclined++
		return now, false, nil
	}
	done, err := s.readPageAt(p, now, now, false)
	if err != nil {
		if errors.Is(err, ErrUncorrectable) {
			s.faults.RevivalsDeclined++
			// The zombie's copy is garbage nothing will ever read again —
			// but left in its stripe it would block reconstruction of every
			// valid sibling. Cut it out while the stripe is still intact.
			edone, eerr := s.exciseGarbage(p, done)
			if eerr != nil {
				return 0, false, eerr
			}
			return edone, false, nil
		}
		return 0, false, err
	}
	return done, true, nil
}

// ProgramTimeOf returns when page p was last programmed (zero until the
// first program, or while the model is disarmed — timestamps are only
// kept when something consumes them).
func (s *Store) ProgramTimeOf(p ssd.PPN) ssd.Time {
	if s.integ == nil {
		return 0
	}
	return s.progTime[p]
}
