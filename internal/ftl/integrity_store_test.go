package ftl

import (
	"errors"
	"testing"

	"zombiessd/internal/fault"
	"zombiessd/internal/ssd"
)

// integrityConfig arms the RBER model with the given accumulation rates on
// an otherwise-perfect drive.
func integrityConfig(ic fault.IntegrityConfig) StoreConfig {
	cfg := DefaultStoreConfig()
	cfg.Faults = fault.Config{Integrity: ic}
	return cfg
}

func TestIntegrityDisarmedNoops(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	if s.IntegrityArmed() {
		t.Fatal("zero plan armed the integrity model")
	}
	ppn, done, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.LostPage(ppn) || s.EstimatedRBER(ppn, ssd.Time(1e9)) != 0 || s.ProgramTimeOf(ppn) != 0 {
		t.Error("disarmed store tracked integrity state")
	}
	vdone, ok, err := s.VerifyRevive(ppn, done)
	if err != nil || !ok || vdone != done {
		t.Errorf("disarmed VerifyRevive = (%v, %v, %v), want free approval at %v", vdone, ok, err, done)
	}
	if s.IntegrityConfig() != (fault.IntegrityConfig{}) {
		t.Error("disarmed store reports a non-zero integrity config")
	}
}

func TestReadDisturbAccumulatesAndAges(t *testing.T) {
	s, _ := newTinyStore(t, integrityConfig(fault.IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: 1, ReadDisturbRate: 0.1,
	}))
	ppn, done, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProgramTimeOf(ppn) != done {
		t.Errorf("ProgramTimeOf = %v, want the program completion %v", s.ProgramTimeOf(ppn), done)
	}
	b := s.Geometry().BlockOf(ppn)
	if got := s.BlockReads(b); got != 0 {
		t.Fatalf("fresh block has %d reads", got)
	}
	young := s.EstimatedRBER(ppn, done)
	for i := 0; i < 3; i++ {
		if _, err := s.Read(ppn, done); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.BlockReads(b); got != 3 {
		t.Errorf("block reads = %d after 3 reads, want 3", got)
	}
	disturbed := s.EstimatedRBER(ppn, done)
	aged := s.EstimatedRBER(ppn, done+ssd.Time(1e6))
	if !(young < disturbed && disturbed < aged) {
		t.Errorf("RBER not rising with disturbance and age: young %g, disturbed %g, aged %g",
			young, disturbed, aged)
	}
}

func TestUncorrectableReadMarksPageLost(t *testing.T) {
	// Retention ×10⁴/s: one second after the program the estimate is ≈1,
	// far past certain failure — no draw, deterministic UECC.
	s, bus := newTinyStore(t, integrityConfig(fault.IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: 1e4,
	}))
	ppn, done, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	late := done + ssd.Time(1e6)
	readsBefore, _, _ := bus.Counts()
	_, err = s.Read(ppn, late)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("decayed read returned %v, want ErrUncorrectable", err)
	}
	if !s.LostPage(ppn) {
		t.Error("uncorrectable read did not mark the page lost")
	}
	readsAfter, _, _ := bus.Counts()
	// One media read plus the full default ECC retry ladder.
	if got, want := readsAfter-readsBefore, int64(1+fault.DefaultReadRetries); got != want {
		t.Errorf("uncorrectable read issued %d media reads, want %d", got, want)
	}
	if got := s.FaultStats().UncorrectableReads; got != 1 {
		t.Errorf("UncorrectableReads = %d, want 1", got)
	}

	// Rereads of a known-lost page fail again, cheaply: one media read, no
	// retry ladder, no classification draw.
	readsBefore = readsAfter
	if _, err := s.Read(ppn, late); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("reread of lost page returned %v, want ErrUncorrectable", err)
	}
	readsAfter, _, _ = bus.Counts()
	if got := readsAfter - readsBefore; got != 1 {
		t.Errorf("reread of lost page issued %d media reads, want 1", got)
	}
	if got := s.FaultStats().UncorrectableReads; got != 2 {
		t.Errorf("UncorrectableReads = %d after reread, want 2", got)
	}
}

func TestRefreshPageRelocatesBeforeLoss(t *testing.T) {
	s, _ := newTinyStore(t, integrityConfig(fault.IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: 30,
	}))
	var src, dst ssd.PPN = ssd.InvalidPPN, ssd.InvalidPPN
	s.OnRelocate = func(a, b ssd.PPN) { src, dst = a, b }
	ppn, done, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	// One second old: ×31 puts the estimate at 3.1e-3 — past the
	// correctable boundary, still below the uncorrectable one.
	clock := done + ssd.Time(1_000_000)
	if rber := s.EstimatedRBER(ppn, clock); rber <= fault.DefaultCorrectableRBER {
		t.Fatalf("test premise broken: RBER %g not yet past correctable", rber)
	}
	rdone, err := s.RefreshPage(ppn, 0, clock)
	if err != nil {
		t.Fatal(err)
	}
	if src != ppn || dst == ssd.InvalidPPN {
		t.Fatalf("OnRelocate saw (%v, %v), want src %v and a fresh dst", src, dst, ppn)
	}
	if s.State(ppn) != PageInvalid {
		t.Errorf("old copy is %v, want invalid", s.State(ppn))
	}
	if s.State(dst) != PageValid {
		t.Errorf("new copy is %v, want valid", s.State(dst))
	}
	if got := s.FaultStats().RefreshWrites; got != 1 {
		t.Errorf("RefreshWrites = %d, want 1", got)
	}
	// The patrol stamps flash work at 0 (idle windows), so the program
	// completes "in the past"; the copy's age is still measured from the
	// patrol's clock so it does not look instantly stale.
	if got := s.ProgramTimeOf(dst); got != clock {
		t.Errorf("refreshed copy aged from %v, want the patrol clock %v (program done %v)", got, clock, rdone)
	}
	if fresh := s.EstimatedRBER(dst, clock); fresh >= s.EstimatedRBER(ppn, clock) {
		t.Errorf("refresh did not reset the estimate: %g", fresh)
	}
}

func TestRefreshPageErrsOnNonValid(t *testing.T) {
	s, _ := newTinyStore(t, integrityConfig(fault.IntegrityConfig{BaseRBER: 1e-4}))
	ppn, _, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate(ppn)
	if _, err := s.RefreshPage(ppn, 0, 0); !errors.Is(err, ErrPageState) {
		t.Errorf("RefreshPage of an invalid page: err = %v, want ErrPageState", err)
	}
}

func TestVerifyReviveGatesOnEstimateAndLoss(t *testing.T) {
	s, bus := newTinyStore(t, integrityConfig(fault.IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: 100,
	}))
	ppn, done, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate(ppn) // the page dies; a pool would hold it as a zombie

	// Fresh zombie: the estimate is near base, the verify read passes and
	// its latency lands in the completion time.
	readsBefore, _, _ := bus.Counts()
	vdone, ok, err := s.VerifyRevive(ppn, done)
	if err != nil || !ok {
		t.Fatalf("fresh zombie declined: (%v, %v)", ok, err)
	}
	if vdone <= done {
		t.Error("approved revival charged no verify-read latency")
	}
	if readsAfter, _, _ := bus.Counts(); readsAfter != readsBefore+1 {
		t.Error("approved revival did not issue exactly one verify read")
	}

	// A second of decay at ×100/s puts the estimate at ≈1e-2, past the
	// default revival limit: declined on the estimate alone, no read.
	late := done + ssd.Time(1e6)
	readsBefore, _, _ = bus.Counts()
	vdone, ok, err = s.VerifyRevive(ppn, late)
	if err != nil || ok {
		t.Fatalf("decayed zombie approved: (%v, %v)", ok, err)
	}
	if vdone != late {
		t.Errorf("estimate-declined revival returned %v, want the caller's clock %v", vdone, late)
	}
	if readsAfter, _, _ := bus.Counts(); readsAfter != readsBefore {
		t.Error("estimate-declined revival touched the media")
	}
	if got := s.FaultStats().RevivalsDeclined; got != 1 {
		t.Errorf("RevivalsDeclined = %d, want 1", got)
	}

	// Lost pages are declined regardless of the estimate.
	s.Revalidate(ppn)
	if _, err := s.Read(ppn, late+ssd.Time(1e6)); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("setup read returned %v, want ErrUncorrectable", err)
	}
	s.Invalidate(ppn)
	if _, ok, _ := s.VerifyRevive(ppn, done); ok {
		t.Error("lost zombie approved for revival")
	}
	if got := s.FaultStats().RevivalsDeclined; got != 2 {
		t.Errorf("RevivalsDeclined = %d, want 2", got)
	}
}

// TestGCCarriesLossThroughRelocation: relocating a block that contains a
// lost page must not resurrect its data — the loss mark travels to the
// relocated copy.
func TestGCCarriesLossThroughRelocation(t *testing.T) {
	s, _ := newTinyStore(t, integrityConfig(fault.IntegrityConfig{
		BaseRBER: 1e-4, RetentionRate: 1e4,
	}))
	relocated := make(map[ssd.PPN]ssd.PPN)
	s.OnRelocate = func(a, b ssd.PPN) { relocated[a] = b }

	lostPPN, done, err := s.Program(0)
	if err != nil {
		t.Fatal(err)
	}
	late := done + ssd.Time(1e6)
	if _, err := s.Read(lostPPN, late); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("setup read returned %v, want ErrUncorrectable", err)
	}

	// Fill the lost page's block with garbage so it is the plane's only
	// profitable victim, then collect the plane directly.
	geo := s.Geometry()
	lostBlock := geo.BlockOf(lostPPN)
	for {
		ppn, _, err := s.Program(late)
		if err != nil {
			t.Fatal(err)
		}
		if geo.BlockOf(ppn) != lostBlock {
			continue
		}
		s.Invalidate(ppn)
		if geo.PageInBlock(ppn) == geo.PagesPerBlock-1 {
			break
		}
	}
	// Advance every frontier one more program so the filled block sheds
	// its active mark and becomes eligible for victim selection.
	for i := 0; i < geo.TotalPlanes(); i++ {
		if _, _, err := s.Program(late); err != nil {
			t.Fatal(err)
		}
	}
	plane := geo.PlaneOfBlock(lostBlock)
	if _, err := s.collectPlaneMin(plane, late, 1); err != nil {
		t.Fatal(err)
	}
	dst, ok := relocated[lostPPN]
	if !ok {
		t.Fatal("GC did not relocate the lost page")
	}
	if !s.LostPage(dst) {
		t.Fatalf("relocation of lost page %v to %v dropped the loss mark", lostPPN, dst)
	}
	if _, err := s.Read(dst, late); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("read of the relocated copy returned %v, want ErrUncorrectable", err)
	}
}
