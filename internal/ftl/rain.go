package ftl

// RAIN threading: the store-side half of intra-SSD parity striping
// (internal/rain). The tracker owns the combinatorics — stripe indices,
// parity-slot rotation, membership masks — while this file owns every
// side effect: charging parity programs to the bus, stamping parity OOB
// (the durable journal recovery rebuilds open stripes from), reading
// survivors and re-landing reconstructed pages, killing a die when the
// DieFailAtOp trigger fires, and the online rebuild daemon that drains a
// dead die's live pages into spare capacity during idle windows.
// Everything here is a no-op on a store whose config leaves RAIN off.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zombiessd/internal/fault"
	"zombiessd/internal/rain"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// Rebuild-daemon budgets per idle window: at most rebuildBudget pages are
// re-landed (mirroring partial GC's migration budget) and at most
// rebuildScanBudget pages are examined, so a tick on a fully rebuilt
// drive costs bounded CPU.
const (
	rebuildBudget     = 4
	rebuildScanBudget = 4096
)

// maskHash encodes a stripe-membership mask into an OOB content hash —
// the parity page's OOB payload, from which recovery restores the flushed
// parity coverage.
func maskHash(mask uint32) trace.Hash {
	var h trace.Hash
	binary.LittleEndian.PutUint32(h[:4], mask)
	return h
}

// maskFromHash decodes maskHash.
func maskFromHash(h trace.Hash) uint32 { return binary.LittleEndian.Uint32(h[:4]) }

// RainEnabled reports whether parity striping is active on this store.
func (s *Store) RainEnabled() bool { return s.rain != nil }

// RainStats returns the RAIN activity counters. All zeros while disabled.
func (s *Store) RainStats() rain.Stats { return s.rainStats }

// DeadBlock reports whether b belongs to a failed die.
func (s *Store) DeadBlock(b ssd.BlockID) bool { return s.blocks[b].dead }

// PageDead reports whether p sits on a failed die — unreadable until the
// rebuild daemon (or a host read) reconstructs it elsewhere.
func (s *Store) PageDead(p ssd.PPN) bool { return s.blocks[s.geo.BlockOf(p)].dead }

// DieFailArmed reports whether a die-failure trigger is configured.
func (s *Store) DieFailArmed() bool { return s.dieFailAt > 0 }

// DieFailed reports whether the armed die-failure trigger has fired.
func (s *Store) DieFailed() bool { return s.dieFailed }

// DieFailTime returns when the die died (zero before the trigger fires).
func (s *Store) DieFailTime() ssd.Time { return s.dieFailClock }

// RebuildEndTime returns when the rebuild daemon last re-landed a dead
// die's page — with RebuildDone, the rebuild-duration measurement the
// rainsweep experiment reports.
func (s *Store) RebuildEndTime() ssd.Time { return s.rebuildClock }

// RebuildDone reports whether a full daemon sweep found nothing left to
// rebuild. Vacuously false until a die fails.
func (s *Store) RebuildDone() bool { return s.rebuildDone }

// RainCovered reports whether flushed parity currently covers page p —
// stripe-level introspection for tests and diagnostics.
func (s *Store) RainCovered(p ssd.PPN) bool { return s.rain != nil && s.rain.Covered(p) }

// RainUnprotectable reports whether p's stripe lost its fixed parity home
// (slot block retired or dead); false without RAIN.
func (s *Store) RainUnprotectable(p ssd.PPN) bool {
	return s.rain != nil && s.stripeUnprotectable(p)
}

// RainReconstructable exposes canReconstruct for tests and diagnostics.
func (s *Store) RainReconstructable(p ssd.PPN) bool { return s.canReconstruct(p) }

// rainOnProgram records a successful data program with the stripe tracker
// and flushes the stripe's parity when this program completed it. The
// error is a power-loss wrap when the armed crash trigger fires mid-flush.
func (s *Store) rainOnProgram(p ssd.PPN, done ssd.Time) error {
	st, complete := s.rain.OnProgram(p)
	if !complete {
		return nil
	}
	return s.flushStripe(st, done)
}

// flushStripe lands the stripe's accumulated parity on its parity slot:
// one real program on the slot's channel, with the covered-member mask
// stamped into the parity OOB so crash recovery can restore coverage. A
// stripe whose slot sits in a retired or dead block cannot be protected
// at its fixed location and is dropped from the flush set — the rebuild
// daemon refreshes its members into fresh stripes instead.
func (s *Store) flushStripe(st int64, stamp ssd.Time) error {
	slot := s.rain.ParitySlot(st)
	info := &s.blocks[s.geo.BlockOf(slot)]
	if info.bad || info.dead {
		s.rain.Drop(st)
		return nil
	}
	if s.crashNow() {
		// Power cut mid-parity-program: the slot is torn and the stripe
		// stays open; recovery re-flushes it from the surviving members.
		s.setOOB(slot, OOB{State: OOBTorn})
		return fmt.Errorf("ftl: parity flush of page %d interrupted: %w", slot, fault.ErrPowerLoss)
	}
	s.bus.Program(slot, stamp)
	if s.rain.ParityMask(st) != 0 {
		s.rainStats.StripeReflushes++
	}
	s.rainStats.ParityPrograms++
	s.seq++
	s.setOOB(slot, OOB{State: OOBProgrammed, Parity: true, Hash: maskHash(s.rain.DataMask(st)), Seq: s.seq})
	s.rain.MarkFlushed(st)
	return nil
}

// FlushParity closes every open stripe — the write-buffer flush barrier,
// the die-failure shock path, and recovery's parity rebuild all call it.
// No-op without RAIN; the error is a power-loss wrap.
func (s *Store) FlushParity(now ssd.Time) error {
	if s.rain == nil {
		return nil
	}
	for _, st := range s.rain.OpenStripes() {
		if err := s.flushStripe(st, now); err != nil {
			return err
		}
	}
	return nil
}

// rainAfterErase settles stripe bookkeeping after block v was erased (or
// retired with its pages cleared): every member leaves its masks — the
// RAM-side XOR-subtraction, charged as no flash work — and stripes whose
// parity slot was in the erased block get their parity re-landed
// immediately when they still hold data, so an erase on the parity
// channel never leaves live members uncovered until some distant barrier.
func (s *Store) rainAfterErase(v ssd.BlockID, now ssd.Time) error {
	if s.rain == nil {
		return nil
	}
	first := s.geo.FirstPage(v)
	for i := 0; i < s.geo.PagesPerBlock; i++ {
		s.rain.NoteErased(first + ssd.PPN(i))
	}
	for i := 0; i < s.geo.PagesPerBlock; i++ {
		p := first + ssd.PPN(i)
		if !s.rain.IsParity(p) {
			continue
		}
		if st := s.rain.StripeOf(p); s.rain.DataMask(st) != 0 {
			if err := s.flushStripe(st, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// canReconstruct reports whether p can be rebuilt from its stripe right
// now: the flushed parity covers it, the parity slot is alive and intact,
// and every other covered member is readable. The checks are pure state
// inspection — no draws, no flash operations.
func (s *Store) canReconstruct(p ssd.PPN) bool {
	if s.rain == nil || !s.rain.Covered(p) {
		return false
	}
	st := s.rain.StripeOf(p)
	slot := s.rain.ParitySlot(st)
	if info := &s.blocks[s.geo.BlockOf(slot)]; info.bad || info.dead {
		return false
	}
	if o := s.OOBOf(slot); o.State != OOBProgrammed || !o.Parity {
		return false
	}
	mask := s.rain.ParityMask(st)
	for cig := 0; cig < s.rain.Width(); cig++ {
		if mask&(uint32(1)<<cig) == 0 {
			continue
		}
		m := s.rain.PageOf(st, cig)
		if m == p {
			continue
		}
		if s.PageDead(m) || s.LostPage(m) {
			return false
		}
	}
	return true
}

// stripeUnprotectable reports whether p's stripe can never be protected
// at its fixed parity location — the slot's block is retired or dead. The
// rebuild daemon refresh-relocates such pages into fresh, protectable
// stripes.
func (s *Store) stripeUnprotectable(p ssd.PPN) bool {
	info := &s.blocks[s.geo.BlockOf(s.rain.ParitySlot(s.rain.StripeOf(p)))]
	return info.bad || info.dead
}

// tryReconstruct rebuilds valid page p from its stripe: read every
// surviving covered member plus the parity page (distinct channels, so
// the bus overlaps them), XOR-recover the data, land it on a living
// plane, rebind the mapping, and retire the stale copy so it can never
// serve as a survivor, a zombie or a recovery winner again. Reports
// whether the reconstruction happened; the error is non-nil only for
// power loss, which must propagate to the host.
func (s *Store) tryReconstruct(p ssd.PPN, stamp, clock ssd.Time) (ssd.Time, bool, error) {
	if s.rain == nil || s.State(p) != PageValid || !s.canReconstruct(p) {
		return 0, false, nil
	}
	plane := s.geo.PlaneOfBlock(s.geo.BlockOf(p))
	if s.deadPlane != nil && s.deadPlane[plane] {
		plane = s.nextAlivePlane()
	}
	if err := s.ensureSpace(plane, stamp); err != nil {
		if errors.Is(err, fault.ErrPowerLoss) {
			return 0, false, err
		}
		return 0, false, nil
	}
	if s.State(p) != PageValid || !s.canReconstruct(p) {
		// Making room moved or consumed the page (or a survivor) already.
		return 0, false, nil
	}
	wasDead := s.PageDead(p)
	st := s.rain.StripeOf(p)
	mask := s.rain.ParityMask(st)
	done := stamp
	survivor := func(m ssd.PPN) {
		if d := s.bus.Read(m, stamp); d > done {
			done = d
		}
		s.rainStats.ReconstructionReads++
	}
	for cig := 0; cig < s.rain.Width(); cig++ {
		if mask&(uint32(1)<<cig) == 0 {
			continue
		}
		if m := s.rain.PageOf(st, cig); m != p {
			survivor(m)
		}
	}
	survivor(s.rain.ParitySlot(st))
	dst, pdone, err := s.programAt(plane, s.gcStream(plane), done)
	if err != nil && errors.Is(err, ErrProgramFault) {
		dst, pdone, err = s.relandGC(plane, done)
	}
	if err != nil {
		if errors.Is(err, fault.ErrPowerLoss) {
			return 0, false, err
		}
		return 0, false, nil
	}
	// Stamp before OnRelocate: the owner must be read while the mapping
	// still points at the source page (the GC-relocation discipline).
	s.stampRelocated(p, dst)
	if s.OnRelocate != nil {
		s.OnRelocate(p, dst)
	}
	if err := s.Invalidate(p); err != nil {
		// Unreachable after the re-checks above; surface, never panic.
		return 0, false, err
	}
	// The stale copy's contents are garbled (UECC) or unreachable (dead
	// die): torn OOB makes it unrevivable garbage, leaving its masks
	// clears it from the stripe, and the loss mark — now repaired on the
	// fresh copy — is lifted.
	s.rain.NoteErased(p)
	s.setOOB(p, OOB{State: OOBTorn})
	s.clearLost(p)
	s.rainStats.ReconstructedPages++
	if wasDead {
		s.rebuildClock = clock
	}
	// The reconstruction rebound the page outside a GC cycle, so the
	// pending translation update has no erase tail to ride.
	if err := s.flushMapUpdates(stamp); err != nil {
		return 0, false, err
	}
	if pdone > done {
		done = pdone
	}
	return done, true, nil
}

// exciseGarbage removes an unreadable invalid page from its stripe so it
// cannot block reconstruction of the stripe's valid members. Two cases
// are physically sound: a member no flushed parity covers (or whose
// parity home is gone) leaves as free RAM bookkeeping, and a covered
// member of an otherwise-intact stripe is first rebuilt in controller RAM
// from the parity and the survivors — charged as real reads — then
// XOR-subtracted out and the shrunken parity re-landed. A covered member
// whose stripe already has a dead or lost sibling is left alone:
// subtracting it blind would corrupt the parity that sibling's last hope
// rests on. The error is a power-loss wrap from the parity re-land.
func (s *Store) exciseGarbage(p ssd.PPN, stamp ssd.Time) (ssd.Time, error) {
	if s.rain == nil || s.rain.IsParity(p) {
		return stamp, nil
	}
	st := s.rain.StripeOf(p)
	if !s.rain.Covered(p) || s.stripeUnprotectable(p) {
		// No readable flushed parity includes p's bits; dropping the page
		// costs nothing. Torn OOB makes it unrevivable garbage, and the
		// loss mark lifts — garbage holds no data left to lose.
		s.rain.NoteErased(p)
		s.setOOB(p, OOB{State: OOBTorn})
		s.clearLost(p)
		return stamp, nil
	}
	if !s.canReconstruct(p) {
		return stamp, nil
	}
	mask := s.rain.ParityMask(st)
	done := stamp
	for cig := 0; cig < s.rain.Width(); cig++ {
		if mask&(uint32(1)<<cig) == 0 {
			continue
		}
		if m := s.rain.PageOf(st, cig); m != p {
			if d := s.bus.Read(m, stamp); d > done {
				done = d
			}
			s.rainStats.ReconstructionReads++
		}
	}
	if d := s.bus.Read(s.rain.ParitySlot(st), stamp); d > done {
		done = d
	}
	s.rainStats.ReconstructionReads++
	s.rain.NoteErased(p)
	s.setOOB(p, OOB{State: OOBTorn})
	s.clearLost(p)
	if err := s.flushStripe(st, done); err != nil {
		return 0, err
	}
	return done, nil
}

// nextAlivePlane advances the allocation rotation to the next plane not
// on a failed die — the reconstruction landing-site selector.
func (s *Store) nextAlivePlane() int {
	for i := 0; i < len(s.planeOrder); i++ {
		plane := s.planeOrder[s.cursor]
		s.cursor = (s.cursor + 1) % len(s.planeOrder)
		if s.deadPlane == nil || !s.deadPlane[plane] {
			return plane
		}
	}
	return s.planeOrder[0]
}

// readDead serves a read of a page on a failed die: the die does not
// respond, so no flash operation is charged — either the stripe rebuilds
// the data (the read completes when the slowest survivor read does), or
// the data is gone and the read fails as uncorrectable.
func (s *Store) readDead(p ssd.PPN, stamp, clock ssd.Time) (ssd.Time, error) {
	if done, ok, err := s.tryReconstruct(p, stamp, clock); err != nil {
		return 0, err
	} else if ok {
		return done, nil
	}
	s.faults.UncorrectableReads++
	s.markLost(p)
	return stamp, fmt.Errorf("ftl: read of page %d on failed die: %w", p, ErrUncorrectable)
}

// dieTick advances the armed die-failure countdown by one host operation
// and kills the configured die when it expires. Unarmed stores pay a
// single predictable branch. The error is a power-loss wrap from the
// parity flush the failure forces (only possible with both triggers
// armed).
func (s *Store) dieTick(now ssd.Time) error {
	if s.dieFailAt <= 0 || s.dieFailed {
		return nil
	}
	s.dieOps++
	if s.dieOps < s.dieFailAt {
		return nil
	}
	return s.failDie(s.cfg.Faults.DieFailDie, now)
}

// failDie retires every block of one die at once. Valid pages that parity
// can rebuild stay valid and wait for the rebuild daemon; everything else
// on the die is lost (valid pages) or evicted (pooled zombies, exactly as
// if an erase took them). The capacity shock lands in RetiredBlocks, so
// the health governor sees it through the same vitals as wear-out and
// degrades — throttle, read-only — instead of dying.
func (s *Store) failDie(die int, now ssd.Time) error {
	s.dieFailed = true
	s.dieFailClock = now
	s.faults.DieFailures++
	// Close every open stripe first: the stripe buffer lives in controller
	// RAM, which survives a die failure (unlike power loss), so members
	// are still fully covered the instant the die goes dark.
	if err := s.FlushParity(now); err != nil {
		return err
	}
	perChip := s.geo.PlanesPerChip()
	chip := die / s.geo.DiesPerChip
	firstPlane := chip*perChip + (die%s.geo.DiesPerChip)*s.geo.PlanesPerDie
	for pl := firstPlane; pl < firstPlane+s.geo.PlanesPerDie; pl++ {
		s.deadPlane[pl] = true
		d := &s.drains[pl]
		for _, v := range d.queue {
			s.blocks[v].draining = false
		}
		d.queue = d.queue[:0]
		d.cursor = 0
		ps := &s.planes[pl]
		ps.freeBlocks = ps.freeBlocks[:0]
		for i := 0; i < s.geo.BlocksPerPlane; i++ {
			b := s.geo.BlockAt(pl, i)
			info := &s.blocks[b]
			if !info.bad {
				s.faults.RetiredBlocks++
			}
			info.dead = true
			info.free = false
			info.active = false
			info.draining = false
			first := s.geo.FirstPage(b)
			for pg := 0; pg < s.geo.PagesPerBlock; pg++ {
				p := first + ssd.PPN(pg)
				switch s.State(p) {
				case PageValid:
					if s.rain == nil || !s.canReconstruct(p) {
						s.markLost(p)
					}
				case PageInvalid:
					if s.OnEraseGarbage != nil {
						s.OnEraseGarbage(p)
					}
					if s.rain != nil && !s.rain.IsParity(p) {
						s.rain.NoteErased(p)
					}
				}
			}
		}
	}
	if s.rain != nil {
		s.rebuildCursor, s.rebuildFound, s.rebuildDone = 0, false, false
	}
	return nil
}

// RebuildTick runs one idle window of the online rebuild daemon: scan
// forward from the resumable cursor, reconstruct dead-die pages into
// spare capacity, and refresh-relocate live pages whose stripe lost its
// parity home — all stamped at time 0 so the bus lands the work in the
// gap since each chip last went idle, like the scrub patrol and partial
// GC. The daemon declares itself done after one full sweep that found no
// work; a crash resets the cursor, but pages already re-landed are
// durable, so the rebuild resumes where the surviving state says it
// should rather than restarting.
func (s *Store) RebuildTick(now ssd.Time) error {
	if s.rain == nil || !s.dieFailed || s.rebuildDone {
		return nil
	}
	worked, scanned := 0, 0
	total := ssd.PPN(s.geo.TotalPages())
	for worked < rebuildBudget && scanned < rebuildScanBudget {
		if s.rebuildCursor >= total {
			s.rebuildCursor = 0
			if !s.rebuildFound {
				s.rebuildDone = true
				return nil
			}
			s.rebuildFound = false
		}
		p := s.rebuildCursor
		s.rebuildCursor++
		scanned++
		if s.State(p) != PageValid {
			continue
		}
		switch {
		case s.PageDead(p):
			if s.LostPage(p) {
				continue // unreconstructable at failure time: terminal loss
			}
			_, ok, err := s.tryReconstruct(p, 0, now)
			if err != nil {
				return err
			}
			if ok {
				s.rainStats.RebuildPages++
				worked++
				s.rebuildFound = true
			} else {
				// A survivor died since the failure; the page is gone.
				s.markLost(p)
			}
		case s.stripeUnprotectable(p):
			if _, err := s.RefreshPage(p, 0, now); err != nil {
				switch {
				case errors.Is(err, ErrUncorrectable):
					// The refresh read failed; reconstruction is the last
					// resort before the page stays lost.
					if _, ok, rerr := s.tryReconstruct(p, 0, now); rerr != nil {
						return rerr
					} else if ok {
						worked++
						s.rebuildFound = true
					}
					continue
				case errors.Is(err, ErrPageState), errors.Is(err, ErrNoSpace):
					continue // moved meanwhile, or no room this window
				}
				return err
			}
			s.rainStats.RebuildRefreshes++
			worked++
			s.rebuildFound = true
		}
	}
	return nil
}

// RebuildPending counts the valid pages still awaiting the rebuild
// daemon: reconstructable pages on the dead die plus live pages stranded
// in unprotectable stripes. A full-drive scan — meant for experiment
// reporting and tests, not per-operation sampling.
func (s *Store) RebuildPending() int64 {
	if s.rain == nil || !s.dieFailed {
		return 0
	}
	var n int64
	total := ssd.PPN(s.geo.TotalPages())
	for p := ssd.PPN(0); p < total; p++ {
		if s.State(p) != PageValid || s.LostPage(p) {
			continue
		}
		if s.PageDead(p) || s.stripeUnprotectable(p) {
			n++
		}
	}
	return n
}

// rebuildRainTracker restores the stripe bookkeeping from durable OOB
// state after a crash — Rebuild's RAIN tail. Data membership comes from
// programmed non-parity OOB records (dead-die garbage contributes
// nothing), flushed coverage from the mask each parity page carries in
// its OOB, and stripes left open by the crash — parity torn mid-flush,
// or members landed after the last flush — are re-flushed immediately
// from members that are all still readable.
func (s *Store) rebuildRainTracker() error {
	if s.rain == nil {
		return nil
	}
	s.rain.Reset()
	total := ssd.PPN(s.geo.TotalPages())
	for p := ssd.PPN(0); p < total; p++ {
		o := s.OOBOf(p)
		if o.State != OOBProgrammed || o.Parity || s.rain.IsParity(p) {
			continue
		}
		if s.blocks[s.geo.BlockOf(p)].dead && s.State(p) != PageValid {
			continue
		}
		s.rain.RestoreData(p)
	}
	for p := ssd.PPN(0); p < total; p++ {
		o := s.OOBOf(p)
		if o.State != OOBProgrammed || !o.Parity {
			continue
		}
		s.rain.RestoreParity(s.rain.StripeOf(p), maskFromHash(o.Hash))
	}
	return s.FlushParity(0)
}

// CheckRain verifies the stripe-parity invariant across the whole drive:
// the data masks match the physically present members, flushed parity
// never covers an absent member, every stale stripe is either queued for
// flushing or provably unprotectable, and every flushed parity page's OOB
// mask covers the tracked coverage. Tests call it after churning the
// store through GC, drains, revivals and faults; nil without RAIN.
func (s *Store) CheckRain() error {
	if s.rain == nil {
		return nil
	}
	total := ssd.PPN(s.geo.TotalPages())
	for p := ssd.PPN(0); p < total; p++ {
		if s.rain.IsParity(p) {
			continue
		}
		st := s.rain.StripeOf(p)
		bit := uint32(0)
		for cig := 0; cig < s.rain.Width(); cig++ {
			if s.rain.PageOf(st, cig) == p {
				bit = uint32(1) << cig
				break
			}
		}
		present := s.State(p) != PageFree && s.OOBOf(p).State != OOBTorn
		if s.blocks[s.geo.BlockOf(p)].dead {
			// On a dead die only un-rebuilt valid pages remain members;
			// invalid pages were dropped like an erase took them.
			present = s.State(p) == PageValid && s.OOBOf(p).State != OOBTorn
		}
		if got := s.rain.DataMask(st)&bit != 0; got != present {
			return fmt.Errorf("ftl: rain invariant: page %d membership %v, want %v", p, got, present)
		}
	}
	for st := int64(0); st < s.rain.Stripes(); st++ {
		data, parity := s.rain.DataMask(st), s.rain.ParityMask(st)
		if parity&^data != 0 {
			return fmt.Errorf("ftl: rain invariant: stripe %d parity %#x covers absent members (data %#x)",
				st, parity, data)
		}
		slot := s.rain.ParitySlot(st)
		info := &s.blocks[s.geo.BlockOf(slot)]
		if data != parity && !s.rain.IsOpen(st) && !info.bad && !info.dead {
			return fmt.Errorf("ftl: rain invariant: stripe %d stale (data %#x parity %#x) but not open",
				st, data, parity)
		}
		if parity != 0 {
			o := s.OOBOf(slot)
			if o.State != OOBProgrammed || !o.Parity {
				return fmt.Errorf("ftl: rain invariant: stripe %d covered but parity slot %d is %v",
					st, slot, o.State)
			}
			if flushed := maskFromHash(o.Hash); parity&^flushed != 0 {
				return fmt.Errorf("ftl: rain invariant: stripe %d coverage %#x exceeds flushed mask %#x",
					st, parity, flushed)
			}
		}
	}
	return nil
}
