package ftl

import (
	"testing"

	"zombiessd/internal/fault"
)

// victimStore builds a tiny store and hand-sets per-block accounting on
// plane 0 so victim selection can be exercised directly: each entry of
// blocks describes one candidate (valid, invalid, progFails); described
// blocks are taken off the conceptual free pool. Block indexes are
// plane-relative, starting at 1 (index 0 is the active frontier).
func victimStore(t *testing.T, cfg StoreConfig, blocks map[int][3]int32) *Store {
	t.Helper()
	s, _ := newTinyStore(t, cfg)
	for idx, counts := range blocks {
		b := s.geo.BlockAt(0, idx)
		info := &s.blocks[b]
		info.free = false
		info.valid = counts[0]
		info.invalid = counts[1]
		info.progFails = counts[2]
	}
	return s
}

// TestVictimScoreTable pins the fault-aware victim policy: zero weight
// ignores fault history entirely, a positive weight makes a block with
// program failures lose to an otherwise-equal clean block, and
// DrainSuspects pulls doomed blocks ahead of any greedy candidate.
func TestVictimScoreTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  StoreConfig
		// blocks maps plane-relative block index → {valid, invalid, progFails}.
		blocks map[int][3]int32
		want   int // plane-relative index of the expected victim
	}{
		{
			name:   "zero weight scans greedily despite failures",
			cfg:    DefaultStoreConfig(),
			blocks: map[int][3]int32{1: {0, 8, 3}, 2: {0, 8, 0}},
			want:   1, // equal greed: first scanned wins, fault history invisible
		},
		{
			name: "positive weight prefers the clean equal block",
			cfg: StoreConfig{GCFreeBlockThreshold: 2, FaultPenaltyWeight: 1,
				Faults: fault.Config{ProgramFailProb: 1e-9}},
			blocks: map[int][3]int32{1: {0, 8, 3}, 2: {0, 8, 0}},
			want:   2,
		},
		{
			name: "penalty is proportional, not absolute",
			cfg: StoreConfig{GCFreeBlockThreshold: 2, FaultPenaltyWeight: 0.4,
				Faults: fault.Config{ProgramFailProb: 1e-9}},
			blocks: map[int][3]int32{1: {0, 5, 0}, 2: {0, 6, 2}},
			want:   2, // 6 − 0.4×2 = 5.2 still beats the clean 5
		},
		{
			name: "heavy weight flips the proportional case",
			cfg: StoreConfig{GCFreeBlockThreshold: 2, FaultPenaltyWeight: 1,
				Faults: fault.Config{ProgramFailProb: 1e-9}},
			blocks: map[int][3]int32{1: {0, 5, 0}, 2: {0, 6, 2}},
			want:   1, // 6 − 1×2 = 4 loses to the clean 5
		},
		{
			name: "drain-suspects outranks any greed",
			cfg: StoreConfig{GCFreeBlockThreshold: 2, FaultPenaltyWeight: 1, DrainSuspects: true,
				Faults: fault.Config{ProgramFailProb: 1e-9, SuspectThreshold: 2}},
			blocks: map[int][3]int32{1: {0, 10, 0}, 2: {1, 1, 2}},
			want:   2, // doomed block drains first: 1 + 16 > 10
		},
		{
			name: "drain-suspects without a threshold falls back to the penalty",
			cfg: StoreConfig{GCFreeBlockThreshold: 2, FaultPenaltyWeight: 1, DrainSuspects: true,
				Faults: fault.Config{ProgramFailProb: 1e-9}},
			blocks: map[int][3]int32{1: {0, 10, 0}, 2: {1, 1, 2}},
			want:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := victimStore(t, tc.cfg, tc.blocks)
			want := s.geo.BlockAt(0, tc.want)
			if got := s.victim(0); got != want {
				t.Errorf("victim(0) = block %d, want %d", got, want)
			}
		})
	}
}

// TestVictimScoreZeroWeightExact proves the zero-weight score is exactly
// the greedy invalid count — no float perturbation — even on a block with
// accumulated program failures, so fault-unaware runs stay bit-identical.
func TestVictimScoreZeroWeightExact(t *testing.T) {
	s := victimStore(t, DefaultStoreConfig(), map[int][3]int32{1: {2, 7, 5}})
	b := s.geo.BlockAt(0, 1)
	if got := s.victimScore(b); got != 7.0 {
		t.Errorf("zero-weight victimScore = %v, want exactly 7", got)
	}
}

// TestVictimSkipsBadBlocks guards the candidate gates around the new
// scoring: retired blocks never become victims no matter how much garbage
// they hold.
func TestVictimSkipsBadBlocks(t *testing.T) {
	cfg := StoreConfig{GCFreeBlockThreshold: 2, FaultPenaltyWeight: 1,
		Faults: fault.Config{ProgramFailProb: 1e-9}}
	s := victimStore(t, cfg, map[int][3]int32{1: {0, 16, 0}, 2: {0, 4, 0}})
	bad := s.geo.BlockAt(0, 1)
	s.blocks[bad].bad = true
	if got, want := s.victim(0), s.geo.BlockAt(0, 2); got != want {
		t.Errorf("victim(0) = block %d, want %d (bad block must be skipped)", got, want)
	}
}

// TestUsablePagesNow pins the capacity accounting the lifetime harness
// samples: retiring a block shrinks UsablePagesNow by one block's pages
// while UsablePages (the static bound) is unchanged.
func TestUsablePagesNow(t *testing.T) {
	s, _ := newTinyStore(t, DefaultStoreConfig())
	if s.UsablePagesNow() != s.UsablePages() {
		t.Fatalf("fresh drive: UsablePagesNow %d != UsablePages %d", s.UsablePagesNow(), s.UsablePages())
	}
	static := s.UsablePages()
	s.faults.RetiredBlocks = 3
	want := static - 3*int64(s.geo.PagesPerBlock)
	if got := s.UsablePagesNow(); got != want {
		t.Errorf("after 3 retirements: UsablePagesNow = %d, want %d", got, want)
	}
	if s.UsablePages() != static {
		t.Errorf("UsablePages moved from %d to %d on retirement", static, s.UsablePages())
	}
	s.faults.RetiredBlocks = int64(s.geo.TotalBlocks())
	if got := s.UsablePagesNow(); got != 0 {
		t.Errorf("fully retired drive: UsablePagesNow = %d, want 0 (clamped)", got)
	}
}
