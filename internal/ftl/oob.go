package ftl

import (
	"fmt"
	"sort"

	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// This file is the crash-consistency substrate of the store: simulated
// out-of-band (OOB) page metadata, a durable journal of mapping-only
// updates, the sudden-power-loss trigger, and Rebuild — the block-state
// reconstruction that recovery (internal/recovery) drives after a crash.
//
// Model: real NAND pages carry a spare (OOB) area programmed atomically
// with the data, so per-page metadata written at program time survives
// power loss; everything in controller RAM (mapping tables, the dead-value
// pool, free lists) does not. Mapping changes that program no page —
// zombie revivals and dedup reference bindings — cannot restamp OOB
// (pages program once per erase cycle), so they go to an append-only
// journal, modeling the capacitor-backed metadata log every production
// FTL keeps. Recovery folds OOB ∪ journal with last-writer-wins by
// sequence number.

// OOBState is the readability of one page's OOB record after power loss.
type OOBState uint8

// OOB record states.
const (
	// OOBEmpty: the page has not been programmed since its last erase.
	OOBEmpty OOBState = iota
	// OOBProgrammed: the page holds data and a readable OOB record.
	OOBProgrammed
	// OOBTorn: a program or erase of this page was interrupted by power
	// loss; data and OOB are unreadable garbage.
	OOBTorn
)

// String names the state.
func (s OOBState) String() string {
	switch s {
	case OOBEmpty:
		return "empty"
	case OOBProgrammed:
		return "programmed"
	case OOBTorn:
		return "torn"
	default:
		return fmt.Sprintf("OOBState(%d)", uint8(s))
	}
}

// OOB is the simulated out-of-band record of one physical page, stamped
// atomically with the page program: the owning logical page, the content
// hash, a drive-lifetime-monotonic sequence number, and whether the
// binding originated as a dead-value-pool revival. Parity marks a RAIN
// parity page: its Hash carries the covered-member mask (not content) and
// its LPN is meaningless — recovery must never claim it for the mapping.
// Trans marks a DFTL translation page: its LPN field carries the TVPN it
// holds, and recovery must likewise never claim it for the host mapping —
// after a crash every surviving translation page is stale against the OOB
// scan and becomes garbage (RecoverDftl re-lands a fresh checkpoint).
type OOB struct {
	State   OOBState
	LPN     LPN
	Hash    trace.Hash
	Seq     uint64
	Revived bool
	Parity  bool
	Trans   bool
}

// Binding is one journal record: a mapping-only update (revival or dedup
// reference bind) that programmed no page and therefore lives in the
// durable metadata journal instead of OOB. The content hash is not stored:
// recovery resolves it from the target page's OOB.
type Binding struct {
	LPN     LPN
	PPN     ssd.PPN
	Seq     uint64
	Revived bool
}

// journalCapFloor bounds how small the journal-prune trigger can get.
const journalCapFloor = 4096

// StampOOB records the OOB metadata of a just-programmed page. Devices
// call it immediately after a successful Program/ProgramStream for the
// page that landed host data; GC stamps relocation copies itself. The
// store assigns the next sequence number.
func (s *Store) StampOOB(ppn ssd.PPN, lpn LPN, h trace.Hash, revived bool) {
	s.seq++
	s.setOOB(ppn, OOB{State: OOBProgrammed, LPN: lpn, Hash: h, Seq: s.seq, Revived: revived})
	s.ownProgrammed(int64(ppn))
}

// AppendBinding journals a mapping-only update of lpn to the already-
// programmed page ppn: a dead-value-pool revival (revived=true) or a
// dedup reference bind (revived=false). The store assigns the next
// sequence number, so the record outranks every earlier binding of lpn
// under last-writer-wins.
func (s *Store) AppendBinding(lpn LPN, ppn ssd.PPN, revived bool) {
	s.seq++
	s.journal = append(s.journal, Binding{LPN: lpn, PPN: ppn, Seq: s.seq, Revived: revived})
	if len(s.journal) >= s.journalCap {
		s.pruneJournal()
	}
}

// pruneJournal drops records that can no longer win recovery: the target
// page was erased, torn, or reprogrammed after the record was written
// (its OOB sequence exceeds the record's). Compaction keeps the journal
// proportional to live state without changing recovery's outcome.
func (s *Store) pruneJournal() {
	kept := s.journal[:0]
	for _, r := range s.journal {
		o := s.OOBOf(r.PPN)
		if o.State == OOBProgrammed && o.Seq <= r.Seq {
			kept = append(kept, r)
		}
	}
	s.journal = kept
	s.journalCap = 2 * len(kept)
	if s.journalCap < journalCapFloor {
		s.journalCap = journalCapFloor
	}
}

// OOBOf returns the OOB record of page p.
func (s *Store) OOBOf(p ssd.PPN) OOB { return s.oob.Get(int64(p)) }

// OOBSnapshot returns a copy of every page's OOB record — the full-device
// scan recovery performs. Materialized flat from the sparse array; only
// crash-recovery paths and tests call it, never the steady-state hot path.
func (s *Store) OOBSnapshot() []OOB {
	out := make([]OOB, s.oob.Len())
	s.oob.ForEach(func(i int64, o OOB) { out[i] = o })
	return out
}

// JournalSnapshot returns a copy of the durable metadata journal.
func (s *Store) JournalSnapshot() []Binding {
	out := make([]Binding, len(s.journal))
	copy(out, s.journal)
	return out
}

// JournalLen returns the current journal length (post-compaction).
func (s *Store) JournalLen() int { return len(s.journal) }

// Seq returns the last sequence number assigned.
func (s *Store) Seq() uint64 { return s.seq }

// PowerLossFired reports whether the armed crash trigger has gone off.
func (s *Store) PowerLossFired() bool { return s.crashed }

// FlashOps returns the number of flash operations counted by the crash
// trigger. Always 0 on an unarmed store (the counter only runs when
// Faults.CrashAtOp > 0); use the bus counters for general accounting.
func (s *Store) FlashOps() int64 { return s.opCount }

// ArmCrash re-arms the one-shot power-loss trigger to fire after n more
// counted flash operations — the chaos harness's repeated-crash control.
// The counter keeps running from wherever the last trigger left it, so
// successive ArmCrash calls space crashes by flash work, not wall time.
// n ≤ 0 disarms the trigger entirely.
func (s *Store) ArmCrash(n int64) {
	if n <= 0 {
		s.crashAt = 0
		s.crashed = false
		return
	}
	s.crashAt = s.opCount + n
	s.crashed = false
}

// crashNow advances the armed power-loss countdown by one flash operation
// and reports whether the trigger fires on this one. Unarmed stores
// (CrashAtOp 0) pay a single predictable branch and never count.
func (s *Store) crashNow() bool {
	if s.crashAt <= 0 || s.crashed {
		return false
	}
	s.opCount++
	if s.opCount >= s.crashAt {
		s.crashed = true
		return true
	}
	return false
}

// stampRelocated stamps the OOB of a GC relocation copy: the hash moves
// with the data, the LPN is the page's *current* owner (asked of the
// mapping layer via OwnerOf, so a revived or re-deduplicated page is not
// resurrected under a long-dead logical address), and a fresh sequence
// number makes the copy outrank the source under last-writer-wins.
//
// A relocated translation page keeps its Trans mark and TVPN stamp and
// repoints the GTD instead of touching the host mapping; a relocated data
// page on a DFTL store queues the (lpn → dst) rebinding for the pending
// translation-page flush.
func (s *Store) stampRelocated(src, dst ssd.PPN) {
	srcOOB := s.OOBOf(src)
	if srcOOB.Trans {
		s.seq++
		s.setOOB(dst, OOB{State: OOBProgrammed, LPN: srcOOB.LPN, Trans: true, Seq: s.seq})
		if s.cmt != nil {
			// The GTD must follow the flash copy. A mismatch cannot occur:
			// every valid translation page is, by construction, the page its
			// TVPN's GTD slot points at.
			_ = s.cmt.Relocated(uint32(srcOOB.LPN), src, dst)
			s.cmt.Stat.TransRelocated++
		}
		return
	}
	var lpn LPN
	var ok bool
	if s.OwnerOf != nil {
		lpn, ok = s.OwnerOf(src)
	}
	if !ok {
		// No mapping layer wired (raw-store tests): carry the source
		// stamp forward, or nothing if the source was never stamped.
		if srcOOB.State != OOBProgrammed {
			return
		}
		lpn = srcOOB.LPN
	}
	s.seq++
	s.setOOB(dst, OOB{State: OOBProgrammed, LPN: lpn, Hash: srcOOB.Hash, Seq: s.seq})
	s.ownRelocated(int64(src), int64(dst))
	if s.cmt != nil {
		s.NoteGCMapUpdate(lpn, dst)
	}
}

// Rebuild restores the store's RAM-resident block state after a crash from
// the surviving OOB records plus the page sets recovery computed: valid
// pages (the last-writer-wins winners) and garbage pages (programmed,
// readable, but superseded — the pages the dead-value pool is re-seeded
// from). Torn pages are taken from the store's own OOB and become
// unrevivable garbage. Per-block erase/fault history and bad-block marks
// survive (the model's stand-in for the bad-block table every controller
// persists); free lists and write frontiers are derived from block fill.
func (s *Store) Rebuild(valid, garbage []ssd.PPN) error {
	total := ssd.PPN(s.geo.TotalPages())
	s.state.Reset()
	for i := range s.blocks {
		b := &s.blocks[i]
		b.valid, b.invalid = 0, 0
		b.free, b.active = false, false
		// Translation-block membership is re-derived from the OOB scan
		// below, like page states.
		b.trans = false
	}
	// Partial-GC drain positions do not survive power loss; block states
	// are re-derived below, so any queued victim is simply a candidate
	// again.
	s.resetDrains()
	// Torn pages: physically present but unreadable until their block is
	// erased; they count as (unrevivable) garbage so GC reclaims them.
	// Translation pages likewise become garbage wholesale: after a crash
	// every flash translation page is stale against the OOB scan recovery
	// just performed, so RecoverDftl re-lands a fresh checkpoint and the
	// translation GC stream reclaims the old generation. The OOB walk
	// visits only materialized chunks — untouched flash reads as empty.
	s.oob.ForEach(func(i int64, o OOB) {
		if o.State != OOBTorn && !(o.State == OOBProgrammed && o.Trans) {
			return
		}
		p := ssd.PPN(i)
		b := s.geo.BlockOf(p)
		if s.blocks[b].bad || s.blocks[b].dead {
			return
		}
		s.setState(p, PageInvalid)
		s.blocks[b].invalid++
		if o.Trans {
			s.blocks[b].trans = true
		}
	})
	mark := func(pages []ssd.PPN, st PageState) error {
		for _, p := range pages {
			if p >= total {
				return fmt.Errorf("ftl: Rebuild: page %d outside the drive", p)
			}
			b := s.geo.BlockOf(p)
			if s.blocks[b].bad {
				return fmt.Errorf("ftl: Rebuild: page %d lives in retired block %d", p, b)
			}
			// Dead blocks are allowed: a winner on a failed die is still the
			// mapping's best copy, parity-protected and awaiting rebuild.
			if s.State(p) != PageFree {
				return fmt.Errorf("ftl: Rebuild: page %d assigned twice", p)
			}
			if o := s.OOBOf(p); o.State != OOBProgrammed {
				return fmt.Errorf("ftl: Rebuild: page %d is %v, not programmed", p, o.State)
			}
			s.setState(p, st)
			if st == PageValid {
				s.blocks[b].valid++
			} else {
				s.blocks[b].invalid++
			}
		}
		return nil
	}
	if err := mark(valid, PageValid); err != nil {
		return err
	}
	if err := mark(garbage, PageInvalid); err != nil {
		return err
	}

	// Derive free lists and write frontiers from block fill: the number of
	// pages programmed (or torn) since the block's last erase. Allocation
	// is strictly sequential, so fill is where the frontier resumes.
	for plane := range s.planes {
		pl := &s.planes[plane]
		pl.freeBlocks = pl.freeBlocks[:0]
		if s.deadPlane != nil && s.deadPlane[plane] {
			// A failed die's planes own no free blocks and host no write
			// frontiers; their stale frontier slots are never consulted
			// because allocation skips dead planes entirely.
			continue
		}
		var partial []frontier
		for i := s.geo.BlocksPerPlane - 1; i >= 0; i-- {
			b := s.geo.BlockAt(plane, i)
			if s.blocks[b].bad {
				continue
			}
			fill := 0
			first := s.geo.FirstPage(b)
			for pg := s.geo.PagesPerBlock - 1; pg >= 0; pg-- {
				p := first + ssd.PPN(pg)
				if s.rain != nil && s.rain.IsParity(p) {
					// Parity slots program out of the sequential data order
					// (the versioned-parity-stream abstraction); the data
					// frontier resumes after the last *data* page.
					continue
				}
				if s.OOBOf(p).State != OOBEmpty {
					fill = pg + 1
					break
				}
			}
			switch {
			case fill == 0:
				// Pushed in descending block order so allocation consumes
				// ascending, as NewStore arranges.
				pl.freeBlocks = append(pl.freeBlocks, b)
				s.blocks[b].free = true
				s.blocks[b].trans = false
			case fill < s.geo.PagesPerBlock && !s.blocks[b].trans:
				// Stale translation blocks are never partial frontiers: their
				// surviving pages are all garbage now, so they stay closed
				// until the translation GC stream erases them.
				partial = append(partial, frontier{active: b, nextPage: fill})
			}
		}
		// Ascending block order for deterministic frontier assignment.
		sort.Slice(partial, func(i, j int) bool { return partial[i].active < partial[j].active })
		for f := range pl.frontiers {
			// The translation frontier (always last) restarts on a fresh
			// block: every pre-crash translation page is garbage, so there is
			// no translation frontier to resume.
			trans := s.cfg.DFTL.Enabled() && f == len(pl.frontiers)-1
			switch {
			case !trans && f < len(partial):
				pl.frontiers[f] = partial[f]
			case len(pl.freeBlocks) > 0:
				b := pl.freeBlocks[len(pl.freeBlocks)-1]
				pl.freeBlocks = pl.freeBlocks[:len(pl.freeBlocks)-1]
				s.blocks[b].free = false
				s.blocks[b].trans = trans
				pl.frontiers[f] = frontier{active: b}
			default:
				return fmt.Errorf("ftl: Rebuild: plane %d has no block for frontier %d", plane, f)
			}
			s.blocks[pl.frontiers[f].active].active = true
		}
		// More partial blocks than frontiers can only follow repeated
		// crashes; the extras stay closed and GC reclaims them normally.
	}
	s.cursor = 0
	if s.rain != nil {
		if s.dieFailed {
			// The rebuild daemon resumes rather than restarts: pages it
			// already re-landed are durable (their dead copies read as
			// reconstructed), so the fresh sweep skips them naturally.
			s.rebuildCursor, s.rebuildFound, s.rebuildDone = 0, false, false
		}
		return s.rebuildRainTracker()
	}
	return nil
}
