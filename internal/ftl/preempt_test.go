package ftl

import (
	"errors"
	"math/rand"
	"testing"

	"zombiessd/internal/rain"
	"zombiessd/internal/ssd"
)

func TestPreemptConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  PreemptConfig
		want error // nil means accepted
	}{
		{"zero", PreemptConfig{}, nil},
		{"partial", PreemptConfig{PartialK: 8, Lookahead: 2}, nil},
		{"full", PreemptConfig{PartialK: 8, Lookahead: 2, MaxSuspends: 4, SuspendCost: 20, ResumeCost: 20}, nil},
		{"suspend-only", PreemptConfig{MaxSuspends: 4}, nil},
		{"negative-k", PreemptConfig{PartialK: -1}, ErrBadPartialK},
		{"negative-lookahead", PreemptConfig{PartialK: 4, Lookahead: -1}, ErrBadLookahead},
		{"lookahead-too-big", PreemptConfig{PartialK: 4, Lookahead: maxLookahead + 1}, ErrBadLookahead},
		{"lookahead-without-partial", PreemptConfig{Lookahead: 2}, ErrBadLookahead},
		{"negative-suspends", PreemptConfig{MaxSuspends: -1}, ErrBadSuspend},
		{"negative-cost", PreemptConfig{MaxSuspends: 2, SuspendCost: -1}, ErrBadSuspend},
		{"negative-resume", PreemptConfig{MaxSuspends: 2, ResumeCost: -1}, ErrBadSuspend},
		{"cost-without-window", PreemptConfig{SuspendCost: 20}, ErrBadSuspend},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.want == nil {
				if err != nil {
					t.Fatalf("rejected valid config: %v", err)
				}
				return
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
}

func TestPreemptConfigWithDefaults(t *testing.T) {
	if got := (PreemptConfig{}).WithDefaults(); got != (PreemptConfig{}) {
		t.Errorf("zero config changed by defaults: %+v", got)
	}
	got := PreemptConfig{PartialK: 4, MaxSuspends: 2}.WithDefaults()
	if got.Lookahead != 1 {
		t.Errorf("lookahead default = %d, want 1", got.Lookahead)
	}
	if got.SuspendCost != DefaultSuspendCost || got.ResumeCost != DefaultResumeCost {
		t.Errorf("suspend costs default = %d/%d, want %d/%d",
			got.SuspendCost, got.ResumeCost, DefaultSuspendCost, DefaultResumeCost)
	}
	kept := PreemptConfig{PartialK: 4, Lookahead: 3, MaxSuspends: 2, SuspendCost: 7, ResumeCost: 9}
	if got := kept.WithDefaults(); got != kept {
		t.Errorf("explicit knobs overwritten: %+v", got)
	}
}

// TestPartialDrainNoLossNoDoubleMigration is the partial collector's
// correctness property: across thousands of host updates interleaved with
// idle-window drain ticks, zombie revivals (including mid-drain revivals of
// pages in a queued victim) and foreground GC, no valid page is ever lost
// or double-migrated, and the free-block reserve is only ever below the
// post-allocation floor while a resumable drain holds the replacement
// block. Ownership is tracked through the OnRelocate hook: the source must
// be owned when the hook fires and the destination must not be.
func TestPartialDrainNoLossNoDoubleMigration(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.Preempt = PreemptConfig{PartialK: 4, Lookahead: 2}
	s, _ := newTinyStore(t, cfg)
	runPartialDrainProperty(t, s)
}

// TestPartialDrainStripeParity re-runs the partial-drain property with
// RAIN striping and erase suspension in the mix, and additionally
// requires the stripe-parity invariant (CheckRain) to hold throughout the
// churn — GC relocations, partial idle-window drains, suspended erases
// and mid-drain zombie revivals must never leave a stripe's masks out of
// step with the physically present pages.
func TestPartialDrainStripeParity(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.Preempt = PreemptConfig{PartialK: 4, Lookahead: 2, MaxSuspends: 2}
	cfg.RAIN = rain.Config{Enable: true}
	// Four channels so the default stripe (3 data + 1 parity) keeps the
	// parity program tax low enough that idle windows survive the churn —
	// on the 2-channel tiny geometry a width-2 stripe doubles every
	// program and foreground GC monopolizes the chips.
	geo := ssd.Geometry{
		Channels: 4, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, PagesPerBlock: 16, PageSize: 4096, OverProvision: 0.15,
	}
	s, err := NewStore(cfg, ssd.NewBus(geo, ssd.PaperLatency()))
	if err != nil {
		t.Fatal(err)
	}
	runPartialDrainProperty(t, s)
}

func runPartialDrainProperty(t *testing.T, s *Store) {
	t.Helper()
	cfg := s.cfg
	g := s.Geometry()
	rng := rand.New(rand.NewSource(7))

	owners := make(map[int]ssd.PPN)   // live logical page -> physical page
	rev := make(map[ssd.PPN]int)      // physical page -> owning logical page
	zombies := make(map[ssd.PPN]bool) // invalidated, not yet erased or revived

	s.OnRelocate = func(src, dst ssd.PPN) {
		lpn, ok := rev[src]
		if !ok {
			t.Fatalf("relocated page %d has no owner (lost or double-migrated)", src)
		}
		if other, taken := rev[dst]; taken {
			t.Fatalf("relocation destination %d already owned by lpn %d", dst, other)
		}
		if s.State(dst) != PageValid {
			t.Fatalf("relocation destination %d is %v", dst, s.State(dst))
		}
		delete(rev, src)
		rev[dst] = lpn
		owners[lpn] = dst
	}
	s.OnEraseGarbage = func(p ssd.PPN) {
		if _, owned := rev[p]; owned {
			t.Fatalf("erased page %d still owned by lpn %d", p, rev[p])
		}
		delete(zombies, p)
	}

	checkInvariants := func(op string) {
		t.Helper()
		floor := cfg.GCFreeBlockThreshold - 1
		for plane := 0; plane < g.TotalPlanes(); plane++ {
			if s.FreeBlocksInPlane(plane) < floor && len(s.drains[plane].queue) == 0 {
				t.Fatalf("after %s: plane %d has %d free blocks (floor %d) and no open drain",
					op, plane, s.FreeBlocksInPlane(plane), floor)
			}
		}
	}

	program := func(lpn int, now ssd.Time) {
		t.Helper()
		ppn, _, err := s.Program(now)
		if err != nil {
			t.Fatalf("program of lpn %d: %v", lpn, err)
		}
		if other, taken := rev[ppn]; taken {
			t.Fatalf("program returned page %d already owned by lpn %d", ppn, other)
		}
		owners[lpn] = ppn
		rev[ppn] = lpn
	}

	// Fill to a GC-active occupancy: 25/32 of the usable pages (300 of 384
	// without RAIN; parity slots halve the usable count on the two-channel
	// tiny geometry).
	var now ssd.Time
	live := int(s.UsablePages() * 25 / 32)
	if int64(live) > s.UsablePages() {
		t.Fatalf("test sized wrong: %d live pages > %d usable", live, s.UsablePages())
	}
	for lpn := 0; lpn < live; lpn++ {
		program(lpn, now)
		now += 10
	}

	revivals, ticks := 0, 0
	for i := 0; i < 4000; i++ {
		// Gaps wide enough that chips drain their backlog and go idle
		// between requests — the partial collector only works idle chips.
		now += ssd.Time(rng.Intn(2000))
		if err := s.PartialGCTick(now); err != nil {
			t.Fatalf("op %d: partial tick: %v", i, err)
		}
		ticks++
		checkInvariants("tick")

		lpn := rng.Intn(live)
		old := owners[lpn]
		s.Invalidate(old)
		delete(rev, old)
		zombies[old] = true

		// One in eight updates is satisfied by reviving a random zombie
		// (the dead-value-pool path) instead of programming — when the
		// zombie is still revivable. Drained-past pages are PageFree and
		// erased pages left the set, so State gates the legality.
		revived := false
		if rng.Intn(8) == 0 {
			for z := range zombies {
				if s.State(z) == PageInvalid {
					s.Revalidate(z)
					delete(zombies, z)
					owners[lpn] = z
					rev[z] = lpn
					revived = true
					revivals++
					break
				}
			}
		}
		if !revived {
			program(lpn, now)
		}
		checkInvariants("update")
		if s.RainEnabled() && i%128 == 0 {
			if err := s.CheckRain(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}

	// End state: the ownership map and the store's page states must agree
	// exactly — every owned page valid, every valid page owned.
	if len(rev) != live {
		t.Fatalf("end state owns %d pages, want %d", len(rev), live)
	}
	var valid int
	for p := ssd.PPN(0); p < ssd.PPN(g.TotalPages()); p++ {
		if s.State(p) != PageValid {
			if _, owned := rev[p]; owned {
				t.Fatalf("owned page %d ended %v (data loss)", p, s.State(p))
			}
			continue
		}
		valid++
		if _, owned := rev[p]; !owned {
			t.Fatalf("valid page %d has no owner", p)
		}
	}
	if valid != live {
		t.Fatalf("store holds %d valid pages, want %d", valid, live)
	}
	gc := s.GC()
	if gc.PartialWindows == 0 || gc.PartialPages == 0 {
		t.Fatalf("partial GC never ran (windows=%d pages=%d over %d ticks); the property was not exercised",
			gc.PartialWindows, gc.PartialPages, ticks)
	}
	if revivals == 0 {
		t.Fatal("no zombie was ever revived; the revival-mid-drain path was not exercised")
	}
	if s.RainEnabled() {
		if err := s.FlushParity(now); err != nil {
			t.Fatalf("final parity flush: %v", err)
		}
		if err := s.CheckRain(); err != nil {
			t.Fatalf("end state: %v", err)
		}
		if st := s.RainStats(); st.ParityPrograms == 0 {
			t.Fatal("no parity was ever programmed; the stripe property was not exercised")
		}
	}
}

// TestDrainBacklogAndResetDrains checks the introspection and recovery
// hooks around the drain queues: a store with open drains reports a
// positive backlog, and resetDrains clears every queue and draining mark.
func TestDrainBacklogAndResetDrains(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.Preempt = PreemptConfig{PartialK: 1, Lookahead: 2}
	s, _ := newTinyStore(t, cfg)
	g := s.Geometry()

	// GC (foreground or drain steps) moves live pages, so follow them
	// through the relocation hook to keep the handles fresh.
	pages := make([]ssd.PPN, 0, 300)
	idx := make(map[ssd.PPN]int)
	s.OnRelocate = func(src, dst ssd.PPN) {
		if j, ok := idx[src]; ok {
			delete(idx, src)
			idx[dst] = j
			pages[j] = dst
		}
	}

	var now ssd.Time
	for i := 0; i < 300; i++ {
		p, _, err := s.Program(now)
		if err != nil {
			t.Fatal(err)
		}
		idx[p] = len(pages)
		pages = append(pages, p)
		now += 10
	}
	// Churn until the free lists sit below the partial trigger and every
	// block holds a mix of garbage and live pages.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		j := rng.Intn(len(pages))
		s.Invalidate(pages[j])
		delete(idx, pages[j])
		p, _, err := s.Program(now)
		if err != nil {
			t.Fatal(err)
		}
		pages[j] = p
		idx[p] = j
		now += 10
	}
	// Step far past the churn's chip backlog so the idle gate opens.
	for i := 0; i < 64 && s.DrainBacklogPages() == 0; i++ {
		now += 10_000
		if err := s.PartialGCTick(now); err != nil {
			t.Fatal(err)
		}
	}
	if s.DrainBacklogPages() == 0 {
		t.Fatal("no drain ever opened")
	}
	s.resetDrains()
	if got := s.DrainBacklogPages(); got != 0 {
		t.Errorf("backlog after reset = %d, want 0", got)
	}
	for p := 0; p < g.TotalPlanes(); p++ {
		if len(s.drains[p].queue) != 0 || s.drains[p].cursor != 0 {
			t.Errorf("plane %d drain not reset: %+v", p, s.drains[p])
		}
	}
	for b := range s.blocks {
		if s.blocks[b].draining {
			t.Errorf("block %d still marked draining after reset", b)
		}
	}
}
