package workload

import (
	"fmt"
	"math"
	"math/rand"

	"zombiessd/internal/trace"
)

// recentWindow is the size of the recency window for value reuse (see
// Profile.ReuseRecencyBias).
const recentWindow = 1 << 16

// driftSteps is how many positions the hot-address window visits over a
// full drift cycle; the window advances footprint/driftSteps pages at a
// time.
const driftSteps = 64

// Generator produces one synthetic trace as a stream of records. It is
// deterministic for a given (profile, total, seed) triple, so experiments
// and tests are reproducible. A Generator is not safe for concurrent use.
type Generator struct {
	p         Profile
	total     int64
	footprint uint64
	rng       *rand.Rand

	writeLBA *rand.Zipf
	readLBA  *rand.Zipf

	now      int64
	produced int64

	nextValue uint32

	// history holds the value id of every past write; drawing a uniform
	// index implements preferential attachment (a value's re-draw weight
	// is its current write count), which produces the power-law value
	// popularity of Fig 3.
	history []uint32

	// lbaValue maps each written logical page to its current value, so
	// reads return the content actually stored there.
	lbaValue map[uint64]uint32
	written  []uint64 // LBAs in first-write order (earlier ≈ hotter)

	// liveRefs counts how many logical pages currently hold each value,
	// so LiveDupBias draws can target live content.
	liveRefs map[uint32]int32

	// Drifting hot-address window for reused-value writes.
	windowBase       uint64
	driftEvery       int64 // writes between window advances
	writesSinceDrift int64
}

// NewGenerator returns a Generator for n requests of profile p.
func NewGenerator(p Profile, n int64, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: request count must be positive, got %d", n)
	}
	footprint := uint64(float64(n) * p.FootprintFrac)
	if footprint < 16 {
		footprint = 16
	}
	rng := rand.New(rand.NewSource(seed))
	driftEvery := n / (2 * driftSteps) // two full window cycles per trace
	if driftEvery < 1 {
		driftEvery = 1
	}
	return &Generator{
		p:          p,
		total:      n,
		footprint:  footprint,
		rng:        rng,
		driftEvery: driftEvery,
		writeLBA:   rand.NewZipf(rng, p.WriteSpatialSkew, 1, footprint-1),
		readLBA:    rand.NewZipf(rng, p.ReadSpatialSkew, 1, footprint-1),
		lbaValue:   make(map[uint64]uint32, footprint),
		liveRefs:   make(map[uint32]int32),
	}, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Footprint returns the maximum number of distinct logical pages the trace
// can touch.
func (g *Generator) Footprint() uint64 { return g.footprint }

// Remaining returns how many records Next will still produce.
func (g *Generator) Remaining() int64 { return g.total - g.produced }

// Next returns the next trace record. ok is false once the configured
// request count has been produced.
func (g *Generator) Next() (rec trace.Record, ok bool) {
	if g.produced >= g.total {
		return trace.Record{}, false
	}
	g.produced++
	g.now += g.interarrival()

	// The very first request must be a write (there is nothing to read).
	if len(g.written) > 0 && g.rng.Float64() >= g.p.WriteRatio {
		return g.nextRead(), true
	}
	return g.nextWrite(), true
}

// interarrival draws an exponential-ish gap in microseconds, at least 1.
// With a burst envelope configured, the mean gap is modulated by a square
// wave over BurstPeriodUS — the busy half-period runs (1+A)× faster, the
// quiet half (1+A)× slower — using no extra RNG draws, so amplitude 0 is
// bit-identical to the flat profile.
func (g *Generator) interarrival() int64 {
	mean := g.p.MeanInterarrivalUS
	if g.p.BurstAmplitude > 0 {
		phase := math.Mod(float64(g.now), g.p.BurstPeriodUS)
		if phase < g.p.BurstPeriodUS/2 {
			mean /= 1 + g.p.BurstAmplitude
		} else {
			mean *= 1 + g.p.BurstAmplitude
		}
	}
	gap := int64(g.rng.ExpFloat64() * mean)
	if gap < 1 {
		gap = 1
	}
	return gap
}

func (g *Generator) nextWrite() trace.Record {
	val, fresh := g.chooseValue()
	// Popular (reused) values go to the *currently* hot pages: a Zipf draw
	// offset by a slowly drifting window base. While a region is hot its
	// pages are overwritten constantly, so popular values die quickly
	// (Fig 4a); once the window drifts on, those addresses go cold — the
	// value stays popular and is reborn elsewhere, but recyclers that key
	// on address recency (LX-SSD) lose track of its garbage. Fresh values
	// spread uniformly over the footprint and live longer.
	var lba uint64
	if fresh {
		lba = g.rng.Uint64() % g.footprint
	} else {
		lba = (g.windowBase + g.writeLBA.Uint64()) % g.footprint
	}
	g.writesSinceDrift++
	if g.writesSinceDrift >= g.driftEvery {
		g.writesSinceDrift = 0
		g.windowBase = (g.windowBase + g.footprint/driftSteps) % g.footprint
	}
	if old, seen := g.lbaValue[lba]; seen {
		g.liveRefs[old]--
		if g.liveRefs[old] <= 0 {
			delete(g.liveRefs, old)
		}
	} else {
		g.written = append(g.written, lba)
	}
	g.lbaValue[lba] = val
	g.liveRefs[val]++
	g.history = append(g.history, val)
	return trace.Record{
		Time: g.now,
		Op:   trace.OpWrite,
		LBA:  lba,
		Hash: trace.HashOfValue(g.p.ValueBase + uint64(val)),
	}
}

// chooseValue implements the value process: with probability
// UniqueWriteFrac mint a fresh value (fresh=true); otherwise repeat a past
// write's value by preferential attachment — directed at currently live
// content with probability LiveDupBias (a dedup opportunity), and
// preferring the recent window with probability ReuseRecencyBias (a quick
// rebirth).
func (g *Generator) chooseValue() (v uint32, fresh bool) {
	if len(g.history) == 0 || g.rng.Float64() < g.p.UniqueWriteFrac {
		v := g.nextValue
		g.nextValue++
		return v, true
	}
	if g.rng.Float64() < g.p.LiveDupBias {
		// Rejection-sample the history for a live value, keeping the
		// popularity weighting conditioned on liveness.
		for try := 0; try < 8; try++ {
			v := g.drawHistory()
			if g.liveRefs[v] > 0 {
				return v, false
			}
		}
	}
	return g.drawHistory(), false
}

// drawHistory picks a past write's value, preferring the recent window with
// probability ReuseRecencyBias.
func (g *Generator) drawHistory() uint32 {
	n := len(g.history)
	if g.rng.Float64() < g.p.ReuseRecencyBias {
		w := recentWindow
		if w > n {
			w = n
		}
		return g.history[n-1-g.rng.Intn(w)]
	}
	return g.history[g.rng.Intn(n)]
}

func (g *Generator) nextRead() trace.Record {
	// With probability ReadRecencyBias the read targets a recently written
	// page (fresh, diverse content — this is what keeps the unique-read-
	// value column of Table II up); otherwise a Zipf rank over the set of
	// already-written pages picks a long-lived hot page.
	var lba uint64
	if g.rng.Float64() < g.p.ReadRecencyBias {
		w := len(g.written)
		recent := recentWindow
		if recent > w {
			recent = w
		}
		lba = g.written[w-1-g.rng.Intn(recent)]
	} else {
		rank := g.readLBA.Uint64()
		if rank >= uint64(len(g.written)) {
			rank %= uint64(len(g.written))
		}
		lba = g.written[rank]
	}
	return trace.Record{
		Time: g.now,
		Op:   trace.OpRead,
		LBA:  lba,
		Hash: trace.HashOfValue(g.p.ValueBase + uint64(g.lbaValue[lba])),
	}
}

// Generate materializes a full trace of n requests.
func Generate(p Profile, n int64, seed int64) ([]trace.Record, error) {
	g, err := NewGenerator(p, n, seed)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Record, 0, n)
	for {
		rec, ok := g.Next()
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// GenerateDays produces a multi-day trace: one continuous generator run cut
// into equal-length day segments, as the FIU collection was (Figs 1 and 5
// report per-day series m1, m2, …). The underlying value and page state
// persists across day boundaries, so later days can rebirth values created
// earlier — exactly the behaviour the per-day figures rely on.
func GenerateDays(p Profile, days int, perDay int64, seed int64) ([][]trace.Record, error) {
	if days <= 0 {
		return nil, fmt.Errorf("workload: days must be positive, got %d", days)
	}
	g, err := NewGenerator(p, int64(days)*perDay, seed)
	if err != nil {
		return nil, err
	}
	out := make([][]trace.Record, days)
	for d := range out {
		day := make([]trace.Record, 0, perDay)
		for int64(len(day)) < perDay {
			rec, ok := g.Next()
			if !ok {
				break
			}
			day = append(day, rec)
		}
		out[d] = day
	}
	return out, nil
}
