package workload

import (
	"math"
	"reflect"
	"testing"

	"zombiessd/internal/trace"
)

// TestZeroBurstAndBaseBitIdentity pins the multi-tenant profile
// extensions' no-op contract: BurstAmplitude 0 and ValueBase 0 (the
// defaults every pre-existing caller uses) must leave generated traces
// byte-identical to a profile that has never heard of these fields.
func TestZeroBurstAndBaseBitIdentity(t *testing.T) {
	p, _ := ProfileByName("mail")
	base, err := Generate(p, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.BurstAmplitude = 0
	p2.BurstPeriodUS = 0
	p2.ValueBase = 0
	again, err := Generate(p2, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("zero-valued burst/base fields changed the generated trace")
	}
}

// TestValueBaseShiftsContentOnly checks a private value base rewrites
// every hash while leaving the request schedule — times, ops, LBAs —
// untouched, so content partitioning never perturbs arrival timing.
func TestValueBaseShiftsContentOnly(t *testing.T) {
	p, _ := ProfileByName("mail")
	shared, err := Generate(p, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.ValueBase = 1 << 40
	private, err := Generate(p, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != len(private) {
		t.Fatalf("lengths differ: %d vs %d", len(shared), len(private))
	}
	sharedHashes := make(map[trace.Hash]bool, len(shared))
	for i := range shared {
		if shared[i].Time != private[i].Time || shared[i].Op != private[i].Op || shared[i].LBA != private[i].LBA {
			t.Fatalf("record %d schedule changed: %+v vs %+v", i, shared[i], private[i])
		}
		if shared[i].Hash == private[i].Hash {
			t.Fatalf("record %d hash unchanged under private base", i)
		}
		sharedHashes[shared[i].Hash] = true
	}
	for i := range private {
		if sharedHashes[private[i].Hash] {
			t.Fatalf("record %d private hash collides with the shared space", i)
		}
	}
}

// TestBurstEnvelopeShapesArrivals checks the diurnal square wave
// compresses arrivals in the first half-period and stretches them in the
// second, without adding or removing RNG draws (same ops, LBAs, hashes).
func TestBurstEnvelopeShapesArrivals(t *testing.T) {
	p, _ := ProfileByName("mail")
	flat, err := Generate(p, 8000, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.BurstAmplitude = 1.0 // 2× rate in the peak half, ½× in the trough
	p.BurstPeriodUS = 2e6
	bursty, err := Generate(p, 8000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != len(bursty) {
		t.Fatalf("lengths differ: %d vs %d", len(flat), len(bursty))
	}
	for i := range flat {
		if flat[i].Op != bursty[i].Op || flat[i].LBA != bursty[i].LBA || flat[i].Hash != bursty[i].Hash {
			t.Fatalf("record %d: burst envelope disturbed the op/LBA/value stream", i)
		}
	}
	// Gap ratio bursty/flat should average below 1/(1+A) · slack in peak
	// halves and above (1+A) · slack in trough halves.
	var peakRatio, troughRatio float64
	var peakN, troughN int
	for i := 1; i < len(flat); i++ {
		fg := float64(flat[i].Time - flat[i-1].Time)
		bg := float64(bursty[i].Time - bursty[i-1].Time)
		if fg <= 0 {
			continue
		}
		phase := math.Mod(float64(bursty[i-1].Time), p.BurstPeriodUS)
		if phase < p.BurstPeriodUS/2 {
			peakRatio += bg / fg
			peakN++
		} else {
			troughRatio += bg / fg
			troughN++
		}
	}
	if peakN == 0 || troughN == 0 {
		t.Fatalf("trace never crossed both half-periods (peak %d, trough %d)", peakN, troughN)
	}
	peakRatio /= float64(peakN)
	troughRatio /= float64(troughN)
	if peakRatio > 0.75 {
		t.Errorf("peak-half gap ratio %.2f; want well under 1 (compressed arrivals)", peakRatio)
	}
	if troughRatio < 1.5 {
		t.Errorf("trough-half gap ratio %.2f; want well above 1 (stretched arrivals)", troughRatio)
	}
	if troughRatio <= peakRatio {
		t.Errorf("trough ratio %.2f not above peak ratio %.2f", troughRatio, peakRatio)
	}
}

// TestProfileValidateTenantFields covers the new profile knobs' bounds.
func TestProfileValidateTenantFields(t *testing.T) {
	good, _ := ProfileByName("mail")
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"negative amplitude", func(p *Profile) { p.BurstAmplitude = -0.1 }},
		{"nan amplitude", func(p *Profile) { p.BurstAmplitude = math.NaN() }},
		{"inf amplitude", func(p *Profile) { p.BurstAmplitude = math.Inf(1) }},
		{"amp without period", func(p *Profile) { p.BurstAmplitude = 0.5; p.BurstPeriodUS = 0 }},
		{"nan period", func(p *Profile) { p.BurstAmplitude = 0.5; p.BurstPeriodUS = math.NaN() }},
		{"value base in precondition region", func(p *Profile) { p.ValueBase = 1 << 48 }},
	}
	for _, c := range cases {
		p := good
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", c.name)
		}
	}
	p := good
	p.BurstAmplitude = 0.5
	p.BurstPeriodUS = 60e6
	p.ValueBase = 1 << 40
	if err := p.Validate(); err != nil {
		t.Errorf("valid tenant profile rejected: %v", err)
	}
}
