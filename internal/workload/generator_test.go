package workload

import (
	"math"
	"sort"
	"testing"

	"zombiessd/internal/trace"
)

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("have %d profiles, want the paper's 6", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range Names() {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if p, ok := ProfileByName("MAIL"); !ok || p.Name != "mail" {
		t.Error("ProfileByName must be case-insensitive")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName accepted unknown name")
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	good, _ := ProfileByName("mail")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.WriteRatio = 1.5 },
		func(p *Profile) { p.UniqueWriteFrac = -0.1 },
		func(p *Profile) { p.FootprintFrac = 0 },
		func(p *Profile) { p.FootprintFrac = 1.5 },
		func(p *Profile) { p.WriteSpatialSkew = 1.0 },
		func(p *Profile) { p.ReadSpatialSkew = 0.5 },
		func(p *Profile) { p.ReuseRecencyBias = 2 },
		func(p *Profile) { p.MeanInterarrivalUS = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid profile %+v", i, p)
		}
	}
}

func TestDayLabel(t *testing.T) {
	if got := DayLabel("mail", 2); got != "m2" {
		t.Errorf("DayLabel = %q, want m2", got)
	}
	if got := DayLabel("", 1); got != "?1" {
		t.Errorf("DayLabel empty = %q", got)
	}
}

func TestGeneratorRejectsBadInputs(t *testing.T) {
	p, _ := ProfileByName("web")
	if _, err := NewGenerator(p, 0, 1); err == nil {
		t.Error("accepted zero request count")
	}
	p.WriteRatio = 2
	if _, err := NewGenerator(p, 10, 1); err == nil {
		t.Error("accepted invalid profile")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ProfileByName("mail")
	a, err := Generate(p, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(p, 5000, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, _ := Generate(p, 5000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorCountAndTimes(t *testing.T) {
	p, _ := ProfileByName("home")
	recs, err := Generate(p, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3000 {
		t.Fatalf("generated %d records, want 3000", len(recs))
	}
	last := int64(-1)
	for i, r := range recs {
		if r.Time <= last {
			t.Fatalf("record %d time %d not strictly after %d", i, r.Time, last)
		}
		last = r.Time
	}
	if recs[0].Op != trace.OpWrite {
		t.Error("first record must be a write (nothing to read yet)")
	}
}

func TestReadsReturnCurrentValue(t *testing.T) {
	p, _ := ProfileByName("web")
	g, err := NewGenerator(p, 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	current := make(map[uint64]trace.Hash)
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.Op == trace.OpWrite {
			current[r.LBA] = r.Hash
			continue
		}
		want, seen := current[r.LBA]
		if !seen {
			t.Fatalf("read of never-written LBA %d", r.LBA)
		}
		if r.Hash != want {
			t.Fatalf("read of LBA %d returned hash %v, current content is %v", r.LBA, r.Hash, want)
		}
	}
}

func TestTableIICalibration(t *testing.T) {
	// The generated traces must land near the paper's Table II for the two
	// columns the generator controls directly.
	for _, p := range Profiles() {
		recs, err := Generate(p, 60000, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := trace.Collect(recs)
		if got, want := s.WriteRatio(), p.WriteRatio; math.Abs(got-want) > 0.02 {
			t.Errorf("%s: write ratio = %.3f, want %.3f ± 0.02", p.Name, got, want)
		}
		if got, want := s.UniqueWriteValueRatio(), p.UniqueWriteFrac; math.Abs(got-want) > 0.02 {
			t.Errorf("%s: unique write values = %.3f, want %.3f ± 0.02", p.Name, got, want)
		}
	}
}

func TestValuePopularitySkew(t *testing.T) {
	// Fig 3a: ~20% of values account for ~80% of writes in mail. The
	// preferential-attachment process must produce strong skew.
	p, _ := ProfileByName("mail")
	recs, err := Generate(p, 100000, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[trace.Hash]int)
	writes := 0
	for _, r := range recs {
		if r.Op == trace.OpWrite {
			counts[r.Hash]++
			writes++
		}
	}
	byCount := make([]int, 0, len(counts))
	for _, c := range counts {
		byCount = append(byCount, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(byCount)))
	top := len(byCount) / 5
	var topWrites int
	for _, c := range byCount[:top] {
		topWrites += c
	}
	frac := float64(topWrites) / float64(writes)
	if frac < 0.6 {
		t.Errorf("top 20%% of values account for %.1f%% of writes; want ≥60%% (paper: ~80%%)", frac*100)
	}
}

func TestFootprintBounded(t *testing.T) {
	p, _ := ProfileByName("trans")
	g, err := NewGenerator(p, 50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	lbas := make(map[uint64]struct{})
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		lbas[r.LBA] = struct{}{}
	}
	if uint64(len(lbas)) > g.Footprint() {
		t.Errorf("touched %d LBAs, footprint cap is %d", len(lbas), g.Footprint())
	}
}

func TestGenerateDays(t *testing.T) {
	p, _ := ProfileByName("mail")
	days, err := GenerateDays(p, 3, 2000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 {
		t.Fatalf("got %d days, want 3", len(days))
	}
	var last int64 = -1
	for d, recs := range days {
		if len(recs) != 2000 {
			t.Fatalf("day %d has %d records, want 2000", d, len(recs))
		}
		for _, r := range recs {
			if r.Time <= last {
				t.Fatalf("time went backwards across day boundary at day %d", d)
			}
			last = r.Time
		}
	}
	if _, err := GenerateDays(p, 0, 10, 1); err == nil {
		t.Error("accepted zero days")
	}
}

func TestDaysShareValueUniverse(t *testing.T) {
	// Values written on day 1 must be re-writable on later days — that is
	// the cross-day rebirth Figs 1/5 depend on.
	p, _ := ProfileByName("mail")
	days, err := GenerateDays(p, 2, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	day1 := make(map[trace.Hash]struct{})
	for _, r := range days[0] {
		if r.Op == trace.OpWrite {
			day1[r.Hash] = struct{}{}
		}
	}
	shared := 0
	for _, r := range days[1] {
		if r.Op == trace.OpWrite {
			if _, ok := day1[r.Hash]; ok {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Error("no day-1 value was rewritten on day 2; days do not share the value universe")
	}
}

func TestRemaining(t *testing.T) {
	p, _ := ProfileByName("web")
	g, _ := NewGenerator(p, 10, 1)
	if g.Remaining() != 10 {
		t.Fatalf("Remaining = %d, want 10", g.Remaining())
	}
	g.Next()
	if g.Remaining() != 9 {
		t.Fatalf("Remaining after one = %d, want 9", g.Remaining())
	}
	for i := 0; i < 20; i++ {
		g.Next()
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining after drain = %d, want 0", g.Remaining())
	}
	if _, ok := g.Next(); ok {
		t.Error("Next returned ok after exhaustion")
	}
}

func TestSortedCopy(t *testing.T) {
	ps := SortedCopy(Profiles())
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Name > ps[i].Name {
			t.Fatal("SortedCopy not sorted")
		}
	}
}
