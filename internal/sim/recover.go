package sim

import (
	"fmt"

	"zombiessd/internal/core"
	"zombiessd/internal/dedup"
	"zombiessd/internal/ftl"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/recovery"
	"zombiessd/internal/sparse"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// RecoverOptions tunes post-power-loss recovery.
type RecoverOptions struct {
	// ColdPool skips re-seeding the dead-value pool from the surviving
	// garbage pages the OOB scan found — the control arm that measures
	// what re-seeding buys.
	ColdPool bool
}

// Recoverer is implemented by every device that can rebuild its mapping
// state after sudden power loss.
type Recoverer interface {
	// Recover scans the durable state (OOB areas + mapping journal),
	// rebuilds the store's block accounting, the mapping tables and —
	// unless opts.ColdPool — the dead-value pool, then returns the scan
	// report. The device is fully operational afterwards.
	Recover(opts RecoverOptions) (recovery.Report, error)
}

// HashReader exposes the content hash a logical page would return if read
// — the integrity oracle's probe.
type HashReader interface {
	ReadHash(lpn ftl.LPN) (trace.Hash, bool)
}

// Recover runs post-power-loss recovery on dev.
func Recover(dev Device, opts RecoverOptions) (recovery.Report, error) {
	r, ok := dev.(Recoverer)
	if !ok {
		return recovery.Report{}, fmt.Errorf("sim: device %T cannot recover", dev)
	}
	return r.Recover(opts)
}

// recoverPlan scans the store and rebuilds its physical block accounting —
// the part of recovery every architecture shares. Any flash traffic during
// the scan is tagged OriginRecovery, and the scan lands as one span on the
// timeline's recovery track.
func recoverPlan(store *ftl.Store) (recovery.Plan, error) {
	tel := store.Telemetry()
	prevOrigin := tel.EnterOrigin(telemetry.OriginRecovery)
	defer tel.ExitOrigin(prevOrigin)
	plan, err := recovery.BuildPlan(recovery.SnapshotOf(store))
	if err != nil {
		return recovery.Plan{}, err
	}
	if err := store.Rebuild(plan.ValidPPNs(), plan.GarbagePPNs()); err != nil {
		return recovery.Plan{}, err
	}
	if tel.On() {
		tel.EmitSpan(telemetry.OriginRecovery, "recovery scan", 0, 0, map[string]any{
			"winners": len(plan.Winners),
		})
	}
	return plan, nil
}

// recoverDftl re-lands the translation checkpoint from the scan's winners.
// Every pre-crash translation page is stale against the scan, so the whole
// table is rewritten. Must run AFTER the device has rebuilt and rewired its
// in-RAM mapper: checkpoint programs can trigger GC, whose relocations and
// pending-map-update filtering go through OnRelocate/OwnerOf/LookupOf.
// Stamped at 0 like the scan itself — recovery time is accounted by
// ScanCost, not the bus.
func recoverDftl(store *ftl.Store, plan recovery.Plan) error {
	if !store.DftlEnabled() {
		return nil
	}
	tel := store.Telemetry()
	prevOrigin := tel.EnterOrigin(telemetry.OriginRecovery)
	defer tel.ExitOrigin(prevOrigin)
	binds := make([]ftl.Binding, 0, len(plan.Winners))
	for _, w := range plan.Winners {
		binds = append(binds, ftl.Binding{LPN: w.LPN, PPN: w.PPN})
	}
	return store.RecoverDftl(binds, 0)
}

// rebuildMapper binds every recovered winner into a fresh page map.
func rebuildMapper(store *ftl.Store, logical int64, plan recovery.Plan) (*ftl.Mapper, error) {
	mapper, err := ftl.NewMapper(logical, store.Geometry().TotalPages())
	if err != nil {
		return nil, err
	}
	for _, w := range plan.Winners {
		if int64(w.LPN) >= logical {
			return nil, fmt.Errorf("sim: recovered LPN %d outside logical space %d", w.LPN, logical)
		}
		mapper.Bind(w.LPN, w.PPN)
	}
	return mapper, nil
}

// Recover implements Recoverer for the baseline device.
func (d *baselineDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	plan, err := recoverPlan(d.store)
	if err != nil {
		return recovery.Report{}, err
	}
	mapper, err := rebuildMapper(d.store, d.cfg.LogicalPages, plan)
	if err != nil {
		return recovery.Report{}, err
	}
	d.mapper = mapper
	d.store.OnRelocate = mapper.Relocate
	d.store.OwnerOf = mapper.OwnerOf
	if err := recoverDftl(d.store, plan); err != nil {
		return recovery.Report{}, err
	}
	return plan.Report, nil
}

// ReadHash implements HashReader: a live page's content is its OOB hash
// (revived pages keep the hash they were programmed with — revival is
// content-identity by construction).
func (d *baselineDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	return storedHash(d.mapper, d.store, lpn)
}

func storedHash(mapper *ftl.Mapper, store *ftl.Store, lpn ftl.LPN) (trace.Hash, bool) {
	ppn, ok := mapper.Lookup(lpn)
	if !ok || store.LostPage(ppn) {
		// Unmapped, or destroyed by an uncorrectable read: either way the
		// host cannot get the data back, and the oracle records a loss.
		return trace.Hash{}, false
	}
	return store.OOBOf(ppn).Hash, true
}

// Recover implements Recoverer for the DVP device. Popularity counters are
// volatile and start cold; the pool is rebuilt from the scan's zombie
// pages in death order unless opts.ColdPool.
func (d *dvpDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	plan, err := recoverPlan(d.store)
	if err != nil {
		return recovery.Report{}, err
	}
	mapper, err := rebuildMapper(d.store, d.cfg.LogicalPages, plan)
	if err != nil {
		return recovery.Report{}, err
	}
	content := sparse.New(d.cfg.LogicalPages, trace.Hash{})
	for _, w := range plan.Winners {
		content.Set(int64(w.LPN), w.Hash)
	}
	ledger := core.NewLedger()
	pool, err := buildPool(d.cfg, ledger)
	if err != nil {
		return recovery.Report{}, err
	}
	if !opts.ColdPool {
		for _, g := range plan.Garbage {
			d.tick++
			pool.Insert(g.Hash, g.PPN, d.tick)
		}
	}
	d.mapper, d.content, d.ledger, d.pool = mapper, content, ledger, pool
	d.store.OnRelocate = mapper.Relocate
	d.store.OwnerOf = mapper.OwnerOf
	d.store.OnEraseGarbage = pool.Drop
	d.store.Scorer = pool
	if err := recoverDftl(d.store, plan); err != nil {
		return recovery.Report{}, err
	}
	return plan.Report, nil
}

// ReadHash implements HashReader.
func (d *dvpDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	return storedHash(d.mapper, d.store, lpn)
}

// Recover implements Recoverer for the dedup device: winners sharing a
// physical page become references to one live copy, exactly reversing the
// dedup write path.
func (d *dedupDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	plan, err := recoverPlan(d.store)
	if err != nil {
		return recovery.Report{}, err
	}
	dmap, err := dedupMapperFrom(d.cfg.LogicalPages, plan)
	if err != nil {
		return recovery.Report{}, err
	}
	d.dmap = dmap
	if d.cfg.Kind == KindDVPDedup {
		d.ledger = core.NewLedger()
		pool, err := buildPool(d.cfg, d.ledger)
		if err != nil {
			return recovery.Report{}, err
		}
		if !opts.ColdPool {
			for _, g := range plan.Garbage {
				d.tick++
				pool.Insert(g.Hash, g.PPN, d.tick)
			}
		}
		d.pool = pool
		d.store.OnEraseGarbage = pool.Drop
		d.store.Scorer = pool
	}
	if err := recoverDftl(d.store, plan); err != nil {
		return recovery.Report{}, err
	}
	return plan.Report, nil
}

// ReadHash implements HashReader.
func (d *dedupDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	ppn, ok := d.dmap.Lookup(lpn)
	if !ok || d.store.LostPage(ppn) {
		return trace.Hash{}, false
	}
	return d.store.OOBOf(ppn).Hash, true
}

// Recover implements Recoverer for the LX device. Its recycler tracks
// address recency, so re-seeding hands each zombie back with the address
// that last owned it.
func (d *lxDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	plan, err := recoverPlan(d.store)
	if err != nil {
		return recovery.Report{}, err
	}
	mapper, err := rebuildMapper(d.store, d.cfg.LogicalPages, plan)
	if err != nil {
		return recovery.Report{}, err
	}
	content := sparse.New(d.cfg.LogicalPages, trace.Hash{})
	for _, w := range plan.Winners {
		content.Set(int64(w.LPN), w.Hash)
	}
	pool, err := lxssd.New(d.cfg.LX)
	if err != nil {
		return recovery.Report{}, err
	}
	if !opts.ColdPool {
		for _, g := range plan.Garbage {
			pool.Insert(g.Hash, g.PPN, uint64(g.LPN))
		}
	}
	d.mapper, d.content, d.pool = mapper, content, pool
	d.store.OnRelocate = mapper.Relocate
	d.store.OwnerOf = mapper.OwnerOf
	d.store.OnEraseGarbage = pool.Drop
	if err := recoverDftl(d.store, plan); err != nil {
		return recovery.Report{}, err
	}
	return plan.Report, nil
}

// ReadHash implements HashReader.
func (d *lxDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	return storedHash(d.mapper, d.store, lpn)
}

// Recover implements Recoverer for the buffered device: the DRAM buffer's
// contents vanish with power — only pages that reached the inner device
// survive.
func (d *bufferedDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	d.buf.Drain()
	r, ok := d.inner.(Recoverer)
	if !ok {
		return recovery.Report{}, fmt.Errorf("sim: inner device %T cannot recover", d.inner)
	}
	return r.Recover(opts)
}

// ReadHash implements HashReader: dirty buffered pages first, flash after.
func (d *bufferedDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	if h, ok := d.buf.Get(lpn); ok {
		return h, true
	}
	hr, ok := d.inner.(HashReader)
	if !ok {
		return trace.Hash{}, false
	}
	return hr.ReadHash(lpn)
}

// dedupMapperFrom rebuilds the dedup mapping from recovered winners: the
// first claimant of a physical page re-creates the live copy, later
// claimants of the same page become references.
func dedupMapperFrom(logical int64, plan recovery.Plan) (*dedup.Mapper, error) {
	dmap, err := dedup.NewMapper(logical)
	if err != nil {
		return nil, err
	}
	for _, w := range plan.Winners {
		if int64(w.LPN) >= logical {
			return nil, fmt.Errorf("sim: recovered LPN %d outside logical space %d", w.LPN, logical)
		}
		if live, ok := dmap.LiveValue(w.Hash); ok {
			if live != w.PPN {
				return nil, fmt.Errorf("sim: recovered value of LPN %d is live at both page %d and %d",
					w.LPN, live, w.PPN)
			}
			if err := dmap.BindExisting(w.LPN, live); err != nil {
				return nil, err
			}
			continue
		}
		if err := dmap.BindNew(w.LPN, w.PPN, w.Hash); err != nil {
			return nil, err
		}
	}
	return dmap, nil
}
