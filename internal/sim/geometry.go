package sim

import "zombiessd/internal/ssd"

// GeometryFor sizes a drive for a workload footprint: it keeps the paper's
// 8×8 channel/chip fan-out, page size and over-provisioning, and picks
// blocks-per-plane so the footprint occupies roughly `utilization` of the
// exported capacity. GC pressure depends on exactly this ratio, so scaling
// capacity with the trace (instead of simulating a 1 TB drive under a
// GB-scale trace) preserves the paper's steady-state behaviour.
func GeometryFor(footprintPages int64, utilization float64) ssd.Geometry {
	if utilization <= 0 || utilization > 1 {
		utilization = 0.9
	}
	g := ssd.Geometry{
		Channels:        8,
		ChipsPerChannel: 8,
		DiesPerChip:     1,
		PlanesPerDie:    2,
		PagesPerBlock:   128,
		PageSize:        4096,
		OverProvision:   0.15,
	}
	planes := int64(g.TotalChips() * g.PlanesPerChip())
	pagesNeeded := float64(footprintPages) / (utilization * (1 - g.OverProvision))
	// GC victim selection needs a reasonable number of blocks per plane
	// (≥ 8); for small footprints shrink the block size rather than
	// over-provisioning the drive, so utilization — and with it GC
	// pressure — stays at the requested level.
	for _, ppb := range []int{128, 64, 32, 16} {
		g.PagesPerBlock = ppb
		bpp := int(pagesNeeded/float64(planes*int64(ppb))) + 1
		if bpp >= 8 {
			g.BlocksPerPlane = bpp
			return g
		}
	}
	g.PagesPerBlock = 16
	g.BlocksPerPlane = 8
	return g
}
