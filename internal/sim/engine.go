package sim

import (
	"errors"
	"fmt"

	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/ssd"
	"zombiessd/internal/stats"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// This file is the discrete-event, NVMe-style multi-queue host engine: N
// independent tenant streams, per-tenant submission/completion queues
// with queue-depth admission control, and a pluggable QoS arbiter that
// picks the next dispatch by simulated time. The single-submitter Run in
// runner.go is the degenerate case — one tenant, FIFO arbiter, unlimited
// queue depth — and stays bit-identical to the pre-engine runner (pinned
// by TestNoTenantBitIdentity).
//
// Determinism rules: the engine advances a single simulated clock through
// the merged event stream (arrivals, completions, arbiter wakes), every
// container is a slice (no map iteration), ties break by fixed tenant
// index or dispatch sequence, and arbiters are pure state machines. An
// N-tenant run is therefore a pure function of (seeds, config) —
// byte-identical across repeated invocations and worker counts.

// TenantTrace is one tenant's materialized input to the engine.
type TenantTrace struct {
	// Cfg carries the tenant's QoS parameters and label.
	Cfg TenantConfig

	// Recs is the tenant's trace; times must be non-decreasing (workload
	// generators guarantee this).
	Recs []trace.Record

	// Footprint is the number of logical pages reserved for the tenant.
	// Each tenant owns the LPN range [base, base+Footprint) where base is
	// the prefix sum of earlier tenants' footprints; Recs address
	// [0, Footprint).
	Footprint int64
}

// EngineOptions configures one multi-tenant engine run.
type EngineOptions struct {
	// Arbiter selects the QoS policy (default ArbFIFO).
	Arbiter ArbiterKind

	// QueueDepth is the default per-tenant bound on outstanding requests
	// (queued + in flight); tenants may override it, and 0 means
	// unlimited — no admission control, no dispatch backpressure.
	QueueDepth int

	// DeviceSlots bounds in-flight requests across all tenants — the
	// device-side service capacity the arbiter allocates. When every slot
	// is busy, admitted requests wait in their submission queues; each
	// completion frees one slot and the arbiter picks which tenant's head
	// takes it. This shared bound is what makes QoS policy observable:
	// without it every tenant dispatches at its own arrival instant and
	// the policies collapse into FIFO. 0 means unlimited.
	DeviceSlots int

	// PreconditionPages > 0 fills logical pages [0, PreconditionPages)
	// with unique content before the timed run, exactly as RunOptions
	// does.
	PreconditionPages int64

	// LogicalPages is the device's logical space; the tenants' footprints
	// must fit inside it.
	LogicalPages int64
}

// TenantResult is one tenant's slice of a multi-tenant run.
type TenantResult struct {
	Name string

	// Requests counts dispatched (and completed) requests; Rejected
	// counts arrivals shed by queue-depth admission control.
	Requests int64
	Rejected int64

	// WritesRejected counts writes refused by a read-only device — the
	// health governor shed them instead of failing the run.
	WritesRejected int64

	// MaxQueue is the high-water mark of the tenant's submission queue.
	MaxQueue int

	// All, Reads and Writes summarize end-to-end latency (completion −
	// arrival, arbiter hold included); P999 is the 99.9th percentile over
	// all of the tenant's requests in µs, the isolation tail the
	// tenantsweep experiment reports next to P99.
	All, Reads, Writes stats.Summary
	P999               int64

	// Wait summarizes the arbiter hold (dispatch − arrival).
	Wait stats.Summary

	// Metrics accumulates the device-counter deltas of the tenant's own
	// requests: flash work performed while servicing them, including any
	// GC they induced. Only populated on multi-tenant runs.
	Metrics DeviceMetrics

	// Store is the FTL-level ledger: programs, relocation traffic, and
	// the cross-tenant zombie-revival subsidy. Only populated on
	// multi-tenant runs against a Store-backed device.
	Store ftl.TenantStoreStats
}

// DVPHitPct returns the tenant's dead-value-pool hit rate: revived writes
// per host write, in percent.
func (r TenantResult) DVPHitPct() float64 {
	if r.Metrics.HostWrites == 0 {
		return 0
	}
	return 100 * float64(r.Metrics.Revived) / float64(r.Metrics.HostWrites)
}

// MultiResult is the outcome of a multi-tenant engine run: the aggregate
// Result (identical in shape to the single-submitter runner's) plus the
// per-tenant breakdown.
type MultiResult struct {
	Result
	Tenants []TenantResult
}

// GenerateTenants materializes every tenant's trace. A tenant with
// Requests 0 gets an equal share of totalRequests (at least 64); a tenant
// with Seed 0 gets a seed derived from baseSeed and its index, so
// distinct tenants never share an RNG stream.
func GenerateTenants(cfgs []TenantConfig, totalRequests, baseSeed int64) ([]TenantTrace, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: no tenants configured")
	}
	out := make([]TenantTrace, len(cfgs))
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		n := c.Requests
		if n == 0 {
			n = totalRequests / int64(len(cfgs))
			if n < 64 {
				n = 64
			}
		}
		seed := c.Seed
		if seed == 0 {
			seed = baseSeed + int64(i)*1_000_003
		}
		g, err := workload.NewGenerator(c.Profile, n, seed)
		if err != nil {
			return nil, fmt.Errorf("sim: tenant %s: %w", c.Name, err)
		}
		recs := make([]trace.Record, 0, n)
		for {
			rec, ok := g.Next()
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		out[i] = TenantTrace{Cfg: c, Recs: recs, Footprint: int64(g.Footprint())}
	}
	return out, nil
}

// TotalFootprint returns the logical pages the tenant set needs.
func TotalFootprint(tenants []TenantTrace) int64 {
	var sum int64
	for _, t := range tenants {
		sum += t.Footprint
	}
	return sum
}

// RunTenants drives the tenant streams through dev under the configured
// arbiter and returns the aggregate and per-tenant results.
func RunTenants(dev Device, tenants []TenantTrace, opts EngineOptions) (MultiResult, error) {
	n := len(tenants)
	if n == 0 {
		return MultiResult{}, fmt.Errorf("sim: no tenants to run")
	}
	if opts.LogicalPages <= 0 {
		return MultiResult{}, fmt.Errorf("sim: EngineOptions.LogicalPages must be positive")
	}
	if opts.QueueDepth < 0 {
		return MultiResult{}, fmt.Errorf("sim: queue depth must be ≥ 0, got %d", opts.QueueDepth)
	}
	if opts.DeviceSlots < 0 {
		return MultiResult{}, fmt.Errorf("sim: device slots must be ≥ 0, got %d", opts.DeviceSlots)
	}
	if opts.PreconditionPages > opts.LogicalPages {
		return MultiResult{}, fmt.Errorf("sim: precondition pages %d exceed logical pages %d",
			opts.PreconditionPages, opts.LogicalPages)
	}
	bases := make([]int64, n)
	var sum int64
	for i, t := range tenants {
		if t.Footprint <= 0 {
			return MultiResult{}, fmt.Errorf("sim: tenant %s footprint must be positive", t.Cfg.Name)
		}
		bases[i] = sum
		sum += t.Footprint
	}
	if sum > opts.LogicalPages {
		return MultiResult{}, fmt.Errorf("sim: tenant footprints total %d exceed logical space %d",
			sum, opts.LogicalPages)
	}
	multi := n > 1
	// Validate every record before touching the device, with the
	// pre-engine runner's error wording on single-tenant runs.
	for _, tt := range tenants {
		for i, rec := range tt.Recs {
			if rec.LBA >= uint64(tt.Footprint) {
				if !multi {
					return MultiResult{}, fmt.Errorf("sim: record %d LBA %d outside logical space %d",
						i, rec.LBA, tt.Footprint)
				}
				return MultiResult{}, fmt.Errorf("sim: tenant %s record %d LBA %d outside tenant footprint %d",
					tt.Cfg.Name, i, rec.LBA, tt.Footprint)
			}
			if rec.Op != trace.OpWrite && rec.Op != trace.OpRead {
				if !multi {
					return MultiResult{}, fmt.Errorf("sim: record %d has unknown op %v", i, rec.Op)
				}
				return MultiResult{}, fmt.Errorf("sim: tenant %s record %d has unknown op %v",
					tt.Cfg.Name, i, rec.Op)
			}
		}
	}

	tel := telemetryOf(dev)
	store := StoreOf(dev)
	if multi {
		if store != nil {
			store.EnableTenants(n)
		}
		names := make([]string, n)
		for i, t := range tenants {
			names[i] = t.Cfg.Name
		}
		tel.DeclareTenants(names)
	}

	// Untimed preconditioning fill, identical to the single-submitter
	// runner's (same value region, same origin tag, same time shift).
	var shift ssd.Time
	if opts.PreconditionPages > 0 {
		prevOrigin := tel.EnterOrigin(telemetry.OriginPrecond)
		var end ssd.Time
		for lpn := int64(0); lpn < opts.PreconditionPages; lpn++ {
			done, err := dev.Write(lpnOf(lpn), PreconditionHash(lpn), 0)
			if err != nil {
				tel.ExitOrigin(prevOrigin)
				return MultiResult{}, fmt.Errorf("sim: precondition write %d: %w", lpn, err)
			}
			if done > end {
				end = done
			}
		}
		tel.ExitOrigin(prevOrigin)
		shift = end + ssd.Millisecond
	}
	baseline := dev.Metrics()
	prevSnap := baseline

	// Engine state.
	arb := newArbiter(opts.Arbiter, tenantConfigs(tenants))
	queues := make([]subQueue, n)
	for i, t := range tenants {
		qd := t.Cfg.QueueDepth
		if qd == 0 {
			qd = opts.QueueDepth
		}
		queues[i].depth = qd
	}
	next := make([]int, n)     // next unadmitted record per tenant
	inflight := make([]int, n) // dispatched, completion still pending
	totalInflight := 0         // sum of inflight, bounded by DeviceSlots
	heads := make([]ssd.Time, n)
	ready := make([]int, 0, n)
	var cq cqueue
	var seq int64

	var all, reads, writes stats.Histogram
	tAll := make([]stats.Histogram, n)
	tReads := make([]stats.Histogram, n)
	tWrites := make([]stats.Histogram, n)
	tWait := make([]stats.Histogram, n)
	perMetrics := make([]DeviceMetrics, n)
	writesRejected := make([]int64, n)
	var res MultiResult

	arrivalOf := func(t, i int) ssd.Time { return shift + ssd.Time(tenants[t].Recs[i].Time) }

	now := shift
	for {
		// Retire completions due at now (frees queue-depth slots before
		// same-instant admissions and dispatches).
		for cq.len() > 0 && cq.min().done <= now {
			e := cq.pop()
			inflight[e.tenant]--
			totalInflight--
		}
		// Admit arrivals due at now, in tenant order; queue-depth rejects
		// are counted and shed here.
		for t := 0; t < n; t++ {
			for next[t] < len(tenants[t].Recs) && arrivalOf(t, next[t]) <= now {
				queues[t].tryAdmit(next[t], inflight[t])
				next[t]++
			}
		}
		// Dispatch at now until the arbiter declines, nothing is ready, or
		// every device slot is busy (a completion will resume dispatching).
		var arbWake ssd.Time
		for {
			if opts.DeviceSlots > 0 && totalInflight >= opts.DeviceSlots {
				break
			}
			ready = ready[:0]
			for t := 0; t < n; t++ {
				if queues[t].empty() {
					continue
				}
				if d := queues[t].depth; d > 0 && inflight[t] >= d {
					continue
				}
				heads[t] = arrivalOf(t, queues[t].peek())
				ready = append(ready, t)
			}
			if len(ready) == 0 {
				break
			}
			pick, wake := arb.pick(now, ready, heads)
			if pick < 0 {
				if wake <= now {
					wake = now + 1
				}
				arbWake = wake
				break
			}
			i := queues[pick].pop()
			rec := tenants[pick].Recs[i]
			arrival := arrivalOf(pick, i)
			submit := now
			if submit < arrival {
				submit = arrival
			}
			tel.Sample(submit)
			var prevTenant int
			if multi && store != nil {
				prevTenant = store.EnterTenant(pick)
			}
			var done ssd.Time
			var err error
			switch rec.Op {
			case trace.OpWrite:
				if multi {
					tel.BeginRequestTenant(telemetry.ReqWrite, arrival, submit, pick)
				} else {
					tel.BeginRequest(telemetry.ReqWrite, arrival)
				}
				done, err = dev.Write(lpnOf(bases[pick]+int64(rec.LBA)), rec.Hash, submit)
			default: // trace.OpRead, validated above
				if multi {
					tel.BeginRequestTenant(telemetry.ReqRead, arrival, submit, pick)
				} else {
					tel.BeginRequest(telemetry.ReqRead, arrival)
				}
				done, err = dev.Read(lpnOf(bases[pick]+int64(rec.LBA)), submit)
			}
			if err != nil {
				if multi && store != nil {
					store.ExitTenant(prevTenant)
				}
				if rec.Op == trace.OpWrite && errors.Is(err, health.ErrReadOnly) {
					// Graceful degradation: the governor shed the write
					// instead of killing the run. The request completes
					// immediately as an error the host sees; it leaves no
					// latency sample (nothing was serviced) but still
					// cycles through the completion queue so the arbiter's
					// accounting stays uniform.
					writesRejected[pick]++
					tel.EndRequest(submit)
					if multi {
						cur := dev.Metrics()
						perMetrics[pick] = perMetrics[pick].Add(cur.Sub(prevSnap))
						prevSnap = cur
					}
					inflight[pick]++
					totalInflight++
					seq++
					cq.push(completion{done: submit, tenant: pick, seq: seq})
					arb.served(pick, now)
					continue
				}
				if !multi {
					return MultiResult{}, fmt.Errorf("sim: record %d: %w", i, err)
				}
				return MultiResult{}, fmt.Errorf("sim: tenant %s record %d: %w", tenants[pick].Cfg.Name, i, err)
			}
			tel.EndRequest(done)
			if multi && store != nil {
				store.ExitTenant(prevTenant)
			}
			lat := int64(done - arrival)
			all.Add(lat)
			tAll[pick].Add(lat)
			if rec.Op == trace.OpWrite {
				writes.Add(lat)
				tWrites[pick].Add(lat)
			} else {
				reads.Add(lat)
				tReads[pick].Add(lat)
			}
			tWait[pick].Add(int64(submit - arrival))
			if end := done - shift; end > res.Makespan {
				res.Makespan = end
			}
			if multi {
				cur := dev.Metrics()
				perMetrics[pick] = perMetrics[pick].Add(cur.Sub(prevSnap))
				prevSnap = cur
			}
			inflight[pick]++
			totalInflight++
			seq++
			cq.push(completion{done: done, tenant: pick, seq: seq})
			arb.served(pick, now)
		}
		// Advance the clock to the next event: arrival, completion, or
		// arbiter wake.
		var nextEv ssd.Time
		have := false
		consider := func(t ssd.Time) {
			if !have || t < nextEv {
				nextEv, have = t, true
			}
		}
		for t := 0; t < n; t++ {
			if next[t] < len(tenants[t].Recs) {
				consider(arrivalOf(t, next[t]))
			}
		}
		if cq.len() > 0 {
			consider(cq.min().done)
		}
		if arbWake > now {
			consider(arbWake)
		}
		if !have {
			// No arrivals, no completions, no wake: with every queue
			// drained the run is over. A non-empty queue here would be an
			// engine bug (a blocked tenant always has a completion or a
			// wake pending).
			break
		}
		if nextEv <= now {
			nextEv = now + 1
		}
		now = nextEv
	}

	res.Metrics = dev.Metrics().Sub(baseline)
	if hs, ok := dev.(interface{ HealthStats() health.Stats }); ok {
		res.Health = hs.HealthStats()
	}
	res.All = all.Summarize()
	res.Reads = reads.Summarize()
	res.Writes = writes.Summarize()
	if br, ok := dev.(interface{ Bus() *ssd.Bus }); ok {
		if bus := br.Bus(); bus != nil {
			res.MeanChipUtil, res.MaxChipUtil = bus.Utilization(shift + res.Makespan)
		}
	}
	var storeStats []ftl.TenantStoreStats
	if multi && store != nil {
		storeStats = store.TenantStats()
	}
	res.Tenants = make([]TenantResult, n)
	for t := 0; t < n; t++ {
		tr := TenantResult{
			Name:           tenants[t].Cfg.Name,
			Requests:       tAll[t].Count(),
			Rejected:       queues[t].rejected,
			WritesRejected: writesRejected[t],
			MaxQueue:       queues[t].maxQueue,
			All:            tAll[t].Summarize(),
			Reads:          tReads[t].Summarize(),
			Writes:         tWrites[t].Summarize(),
			P999:           tAll[t].Quantile(0.999),
			Wait:           tWait[t].Summarize(),
		}
		if multi {
			tr.Metrics = perMetrics[t]
		} else {
			tr.Metrics = res.Metrics
		}
		if storeStats != nil {
			tr.Store = storeStats[t]
		}
		res.Tenants[t] = tr
	}
	return res, nil
}

// tenantConfigs projects the configs out of the trace set.
func tenantConfigs(tenants []TenantTrace) []TenantConfig {
	out := make([]TenantConfig, len(tenants))
	for i, t := range tenants {
		out[i] = t.Cfg
	}
	return out
}
