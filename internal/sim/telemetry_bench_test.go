package sim

import (
	"testing"

	"zombiessd/internal/core"
	"zombiessd/internal/ftl"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
	"zombiessd/internal/workload"
)

// benchReplay generates the mail replay shared by the telemetry on/off
// benchmarks.
func benchReplay(b *testing.B) ([]trace.Record, int64) {
	b.Helper()
	p, ok := workload.ProfileByName("mail")
	if !ok {
		b.Fatal("mail workload missing")
	}
	recs, err := workload.Generate(p, 60_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	var footprint int64
	for _, r := range recs {
		if int64(r.LBA) >= footprint {
			footprint = int64(r.LBA) + 1
		}
	}
	return recs, footprint
}

// BenchmarkRunTelemetry measures the full replay loop with the
// observability layer detached (the production default) and attached, so
// `make bench` quantifies what observing every flash op, request and
// sample costs. The off arm is the baseline the on arm is compared to in
// BENCH_telemetry.json.
func BenchmarkRunTelemetry(b *testing.B) {
	recs, footprint := benchReplay(b)
	for _, mode := range []struct {
		name string
		cfg  telemetry.Config
	}{
		{"off", telemetry.Config{}},
		{"on", telemetry.Config{Enabled: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tel := telemetry.New(mode.cfg)
				cfg := Config{
					Geometry:     GeometryFor(footprint, 0.80),
					Latency:      ssd.PaperLatency(),
					Store:        ftl.StoreConfig{GCFreeBlockThreshold: 2, PopularityWeight: DefaultPopularityWeight},
					LogicalPages: footprint,
					Kind:         KindDVP,
					PoolKind:     PoolMQ,
					MQ:           core.MQConfig{Queues: 8, Capacity: 3000, DefaultLifetime: 8192},
					Telemetry:    tel,
				}
				dev, err := NewDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(dev, recs, RunOptions{LogicalPages: footprint, PreconditionPages: footprint})
				if err != nil {
					b.Fatal(err)
				}
				if res.Metrics.HostWrites == 0 {
					b.Fatal("replay performed no writes")
				}
			}
		})
	}
}
