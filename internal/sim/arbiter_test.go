package sim

import (
	"math"
	"math/rand"
	"testing"

	"zombiessd/internal/ssd"
)

// The property tests below pin the arbiter contract stated in arbiter.go:
// WRR shares converge to the weights under saturation, no ready tenant
// starves, the token bucket never exceeds burst + rate·window over any
// window, and a declined pick always reports a wake strictly in the
// future.

func tenantsWithWeights(ws ...float64) []TenantConfig {
	out := make([]TenantConfig, len(ws))
	for i, w := range ws {
		out[i] = TenantConfig{Name: "t", Weight: w}
	}
	return out
}

func TestFIFOPicksOldestHead(t *testing.T) {
	a := newArbiter(ArbFIFO, tenantsWithWeights(1, 1, 1))
	heads := []ssd.Time{30, 10, 20}
	pick, _ := a.pick(100, []int{0, 1, 2}, heads)
	if pick != 1 {
		t.Fatalf("fifo picked %d, want 1 (oldest head)", pick)
	}
	// Ties break to the lower tenant index.
	heads = []ssd.Time{10, 10, 5}
	pick, _ = a.pick(100, []int{0, 1}, heads)
	if pick != 0 {
		t.Fatalf("fifo tie picked %d, want 0", pick)
	}
}

// TestWRRSharesConverge saturates three tenants with weights 1:2:4 and
// checks the served shares land within 1% of the weights.
func TestWRRSharesConverge(t *testing.T) {
	weights := []float64{1, 2, 4}
	a := newArbiter(ArbWRR, tenantsWithWeights(weights...))
	ready := []int{0, 1, 2}
	heads := []ssd.Time{1, 1, 1}
	const rounds = 7000
	counts := make([]float64, 3)
	for i := 0; i < rounds; i++ {
		pick, _ := a.pick(ssd.Time(i), ready, heads)
		if pick < 0 {
			t.Fatal("wrr declined with ready tenants")
		}
		counts[pick]++
		a.served(pick, ssd.Time(i))
	}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	for i, w := range weights {
		got := counts[i] / rounds
		want := w / totalW
		if math.Abs(got-want) > 0.01 {
			t.Errorf("tenant %d share %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
}

// TestWRRNoStarvation gives one tenant a 1000× weight disadvantage and a
// ready set that changes every round; the weak tenant must still be
// served at least once per total-weight window.
func TestWRRNoStarvation(t *testing.T) {
	a := newArbiter(ArbWRR, tenantsWithWeights(1, 1000))
	heads := []ssd.Time{1, 1}
	rng := rand.New(rand.NewSource(3))
	gap, worst := 0, 0
	for i := 0; i < 50_000; i++ {
		ready := []int{0, 1}
		if rng.Intn(10) == 0 { // tenant 1 occasionally absent
			ready = []int{0}
		}
		pick, _ := a.pick(ssd.Time(i), ready, heads)
		if pick == 0 {
			gap = 0
		} else {
			gap++
			if gap > worst {
				worst = gap
			}
		}
	}
	// Smooth WRR bounds the weak tenant's wait by ~totalWeight/weight
	// rounds (1001 here).
	if worst > 1100 {
		t.Fatalf("weight-1 tenant starved for %d consecutive rounds", worst)
	}
}

// TestWRRUnreadyTenantsGainNothing checks credits only accrue while
// ready: a tenant absent from the ready set must not bank credit and
// then monopolize service on return.
func TestWRRUnreadyTenantsGainNothing(t *testing.T) {
	a := newArbiter(ArbWRR, tenantsWithWeights(1, 1))
	heads := []ssd.Time{1, 1}
	// Tenant 1 absent for many rounds.
	for i := 0; i < 1000; i++ {
		pick, _ := a.pick(ssd.Time(i), []int{0}, heads)
		if pick != 0 {
			t.Fatalf("round %d: picked %d with only tenant 0 ready", i, pick)
		}
		a.served(pick, ssd.Time(i))
	}
	// On return, equal weights must alternate — not hand tenant 1 a
	// 1000-round burst.
	burst := 0
	for i := 0; i < 10; i++ {
		pick, _ := a.pick(ssd.Time(2000+i), []int{0, 1}, heads)
		if pick == 1 {
			burst++
		} else {
			break
		}
		a.served(pick, ssd.Time(2000+i))
	}
	if burst > 1 {
		t.Fatalf("returning tenant served %d consecutive times with equal weights", burst)
	}
}

// tokenBucketServeTimes saturates one rate-limited tenant and returns
// every service instant: pick until declined, then jump to the wake.
func tokenBucketServeTimes(t *testing.T, rate, burst float64, horizon ssd.Time) []ssd.Time {
	t.Helper()
	a := newArbiter(ArbTokenBucket, []TenantConfig{{Name: "t", Weight: 1, Rate: rate, Burst: burst}})
	heads := []ssd.Time{1}
	var serves []ssd.Time
	now := ssd.Time(1)
	for now < horizon {
		pick, wake := a.pick(now, []int{0}, heads)
		if pick < 0 {
			if wake <= now {
				t.Fatalf("declined with wake %d ≤ now %d", wake, now)
			}
			now = wake
			continue
		}
		serves = append(serves, now)
		a.served(pick, now)
	}
	return serves
}

// TestTokenBucketRateBound checks the defining token-bucket property:
// over any window [ti, tj] the served count never exceeds
// burst + rate·window (+1 for the integer-µs wake ceiling).
func TestTokenBucketRateBound(t *testing.T) {
	const rate, burst = 10_000.0, 5.0 // 0.01 requests/µs
	serves := tokenBucketServeTimes(t, rate, burst, 400_000)
	if len(serves) < 100 {
		t.Fatalf("only %d serves; saturated run should produce thousands", len(serves))
	}
	ratePerUS := rate / 1e6
	for i := 0; i < len(serves); i++ {
		for j := i + 1; j < len(serves); j++ {
			window := float64(serves[j] - serves[i])
			if got := float64(j - i + 1); got > burst+ratePerUS*window+1 {
				t.Fatalf("window [%d,%d] (%gµs) served %g > burst %g + rate·window %g",
					serves[i], serves[j], window, got, burst, ratePerUS*window)
			}
		}
	}
	// Long-run throughput should also approach the configured rate.
	total := float64(serves[len(serves)-1] - serves[0])
	long := float64(len(serves)) / total * 1e6
	if long > rate*1.05 {
		t.Fatalf("long-run rate %.0f req/s exceeds configured %g", long, rate)
	}
}

// TestTokenBucketBurstThenPace checks a full bucket grants exactly the
// burst back-to-back, then paces at the refill rate.
func TestTokenBucketBurstThenPace(t *testing.T) {
	serves := tokenBucketServeTimes(t, 1000, 4, 50_000)
	burstLen := 1
	for burstLen < len(serves) && serves[burstLen] == serves[0] {
		burstLen++
	}
	if burstLen != 4 {
		t.Fatalf("initial burst served %d, want 4 (the bucket capacity)", burstLen)
	}
	// After the burst, spacing approaches 1/rate = 1000µs.
	for i := burstLen + 1; i < len(serves); i++ {
		if gap := serves[i] - serves[i-1]; gap < 900 {
			t.Fatalf("paced serves %d and %d only %dµs apart, want ≥ 900", i-1, i, gap)
		}
	}
}

func TestTokenBucketUnlimitedServesFIFO(t *testing.T) {
	a := newArbiter(ArbTokenBucket, []TenantConfig{
		{Name: "a", Weight: 1},                     // rate 0 = unlimited
		{Name: "b", Weight: 1, Rate: 10, Burst: 1}, // one token, then empty
	})
	heads := []ssd.Time{50, 10}
	pick, _ := a.pick(100, []int{0, 1}, heads)
	if pick != 1 {
		t.Fatalf("picked %d, want 1 (oldest eligible head while b still holds a token)", pick)
	}
	a.served(1, 100)
	// b's bucket now empty; only the unlimited tenant is eligible.
	pick, _ = a.pick(101, []int{0, 1}, heads)
	if pick != 0 {
		t.Fatalf("picked %d, want 0 (b exhausted its bucket)", pick)
	}
}

func TestTokenBucketWakeIsFuture(t *testing.T) {
	a := newArbiter(ArbTokenBucket, []TenantConfig{{Name: "t", Weight: 1, Rate: 1, Burst: 1}})
	heads := []ssd.Time{1}
	pick, _ := a.pick(10, []int{0}, heads)
	if pick != 0 {
		t.Fatal("full bucket must serve")
	}
	a.served(0, 10)
	for _, now := range []ssd.Time{10, 11, 1000} {
		pick, wake := a.pick(now, []int{0}, heads)
		if pick >= 0 {
			t.Fatalf("empty bucket served at now=%d", now)
		}
		if wake <= now {
			t.Fatalf("wake %d not strictly after now %d", wake, now)
		}
	}
}
