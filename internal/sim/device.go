// Package sim wires the substrates into complete simulated SSDs and runs
// traces through them. It provides the five system configurations the paper
// evaluates — Baseline, MQ-DVP (and its LRU/Infinite pool variants), Dedup,
// DVP+Dedup, and the LX-SSD prior work — behind one Device interface, plus
// a trace Runner that measures per-request latency and flash activity.
//
// Timing follows SSDSim's trace-driven style: requests are serviced in
// arrival order, and queuing delay emerges from the per-chip/per-channel
// occupancy timelines in internal/ssd — a request that lands on a chip busy
// with GC waits for the erase to finish, which is precisely the tail-latency
// effect the paper attacks.
package sim

import (
	"errors"
	"fmt"

	"zombiessd/internal/core"
	"zombiessd/internal/dftl"
	"zombiessd/internal/fault"
	"zombiessd/internal/ftl"
	"zombiessd/internal/health"
	"zombiessd/internal/lxssd"
	"zombiessd/internal/rain"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
	"zombiessd/internal/telemetry"
	"zombiessd/internal/trace"
)

// Kind selects the device architecture.
type Kind string

// The evaluated systems (Section V-A "Studied Configurations").
const (
	KindBaseline Kind = "baseline"  // plain page-mapped FTL
	KindDVP      Kind = "dvp"       // dead-value pool on a normal FTL
	KindDedup    Kind = "dedup"     // CAFTL-style deduplication only
	KindDVPDedup Kind = "dvp+dedup" // dead-value pool on a deduplicated FTL
	KindLX       Kind = "lx"        // the LX-SSD prior-work recycler
)

// PoolKind selects the dead-value pool replacement policy for the DVP
// architectures.
type PoolKind string

// Pool policies.
const (
	PoolMQ       PoolKind = "mq"       // the paper's multi-queue design
	PoolLRU      PoolKind = "lru"      // single-queue strawman
	PoolInfinite PoolKind = "infinite" // the Ideal upper bound
	// PoolAdaptive is the paper's future-work extension: an MQ pool whose
	// capacity self-tunes to the workload (see core.AdaptivePool).
	PoolAdaptive PoolKind = "adaptive"
)

// Config assembles one simulated device.
type Config struct {
	Geometry ssd.Geometry
	Latency  ssd.Latency
	Store    ftl.StoreConfig

	// LogicalPages is the host-visible address-space size in 4 KB pages.
	// It must not exceed the geometry's exported capacity.
	LogicalPages int64

	Kind     Kind
	PoolKind PoolKind      // DVP architectures only; default PoolMQ
	MQ       core.MQConfig // used when PoolKind == PoolMQ
	// LRUCapacity is the entry budget when PoolKind == PoolLRU.
	LRUCapacity int
	// Adaptive is used when PoolKind == PoolAdaptive.
	Adaptive core.AdaptiveConfig
	LX       lxssd.Config // used when Kind == KindLX

	// HotColdStreams steers writes of popular values to a separate write
	// stream (and GC relocations to a third), so short-lived pages never
	// share blocks with long-lived ones — multi-streamed-SSD style
	// lifetime separation. Applies to the baseline and DVP architectures.
	HotColdStreams bool

	// WriteBufferPages interposes a DRAM write-back buffer of that many
	// 4 KB pages in front of the device (0 = none): writes acknowledge
	// from RAM and reach flash on eviction, modeling the host/device
	// caching layer of Section VII.
	WriteBufferPages int

	// Faults is the reliability plan injected into the flash pipeline:
	// program-status failures, erase failures (bad-block retirement) and
	// ECC read retries, optionally wear-scaled, plus the stateful RBER
	// integrity model (Faults.Integrity). The zero value models a perfect
	// drive and leaves every result bit-identical.
	Faults fault.Config

	// Scrub enables the background patrol scrubber (requires
	// Faults.Integrity to be armed — there is nothing to patrol for
	// otherwise). The zero value runs no patrol.
	Scrub scrub.Config

	// Health arms the device health governor: graceful degradation through
	// the healthy → throttled → read-only → dead ladder, driven by free
	// blocks, GC debt, retired blocks and lost pages. The zero value runs
	// ungoverned and bit-identical to earlier builds.
	Health health.Config

	// RAIN arms intra-SSD channel-stripe parity: one page per stripe holds
	// the XOR of the others, uncorrectable reads and die failures repair
	// through stripe reconstruction, and an online daemon rebuilds a dead
	// die's live pages into spare capacity. The zero value builds no
	// tracker, reserves no parity slots and stays bit-identical.
	RAIN rain.Config

	// DFTL arms the flash-resident mapping subsystem: a bounded cached
	// mapping table (CMT) of translation-page frames, misses and dirty
	// evictions charged as real flash operations, and translation pages
	// garbage-collected as a second stream beside data blocks. The zero
	// value keeps the whole mapping in RAM for free and stays
	// bit-identical.
	DFTL dftl.Config

	// Telemetry, when non-nil, is attached to the assembled device: the
	// bus reports every stamped flash operation to it, the store tags GC
	// and ECC work, and the device registers its gauges (queue backlog, GC
	// debt, pool hit rates). Telemetry observes times the simulator
	// already computed and never feeds back, so attaching it cannot change
	// a simulated-time result (pinned by TestNoTelemetryBitIdentity). Nil
	// (the default) observes nothing at zero cost.
	Telemetry *telemetry.Telemetry
}

// DefaultPopularityWeight is the GC victim-score weight experiments use for
// popularity-aware GC: one fully popular garbage page (degree 255) cancels
// one invalid page's worth of greed.
const DefaultPopularityWeight = 4.0 / 255

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Latency.Validate(); err != nil {
		return err
	}
	if err := c.Store.Validate(); err != nil {
		return err
	}
	if c.LogicalPages <= 0 {
		return fmt.Errorf("sim: logical pages must be positive, got %d", c.LogicalPages)
	}
	if c.LogicalPages > c.Geometry.ExportedPages() {
		return fmt.Errorf("sim: %d logical pages exceed exported capacity %d",
			c.LogicalPages, c.Geometry.ExportedPages())
	}
	switch c.Kind {
	case KindBaseline, KindDedup, KindLX:
	case KindDVP, KindDVPDedup:
		switch c.PoolKind {
		case PoolMQ:
			if err := c.MQ.Validate(); err != nil {
				return err
			}
		case PoolLRU:
			if c.LRUCapacity <= 0 {
				return fmt.Errorf("sim: LRU pool capacity must be positive, got %d", c.LRUCapacity)
			}
		case PoolInfinite:
		case PoolAdaptive:
			if err := c.Adaptive.Validate(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sim: unknown pool kind %q", c.PoolKind)
		}
	default:
		return fmt.Errorf("sim: unknown device kind %q", c.Kind)
	}
	if c.Kind == KindLX {
		if err := c.LX.Validate(); err != nil {
			return err
		}
	}
	if c.WriteBufferPages < 0 {
		return fmt.Errorf("sim: write buffer pages must be ≥ 0, got %d", c.WriteBufferPages)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Scrub.Validate(); err != nil {
		return err
	}
	if c.Scrub.Enabled() && !c.Faults.IntegrityArmed() {
		return fmt.Errorf("sim: the scrubber needs the integrity model armed (set Faults.Integrity.BaseRBER)")
	}
	if err := c.Health.Validate(); err != nil {
		return err
	}
	if err := c.RAIN.Validate(); err != nil {
		return err
	}
	if err := c.DFTL.Validate(); err != nil {
		return err
	}
	return nil
}

// DeviceMetrics counts everything a run reports. Flash counters include GC
// activity; HostPrograms (a method) isolates the host-attributable writes
// the paper's Fig 9 reduction is computed over.
type DeviceMetrics struct {
	HostWrites    int64
	HostReads     int64
	FlashPrograms int64
	FlashReads    int64
	FlashErases   int64

	Revived       int64 // writes short-circuited by a zombie revival
	DedupHits     int64 // writes short-circuited by a live duplicate
	UnmappedReads int64 // reads of never-written pages (served as no-ops)

	BufferAbsorbed int64 // writes absorbed by the DRAM write buffer
	BufferReadHits int64 // reads served from the DRAM write buffer

	// Suspensions counts host reads that preempted an in-flight GC
	// erase/program (0 unless StoreConfig.Preempt enables suspension).
	Suspensions int64

	GC     ftl.GCStats
	Pool   core.PoolStats
	Faults fault.Stats
	Scrub  scrub.Stats
	Rain   rain.Stats
	Dftl   dftl.Stats
}

// ShortCircuited returns the number of writes that required no flash
// program at all.
func (m DeviceMetrics) ShortCircuited() int64 { return m.Revived + m.DedupHits }

// HostPrograms returns flash programs excluding GC relocation traffic —
// the "number of writes" of Figs 9 and 14.
func (m DeviceMetrics) HostPrograms() int64 { return m.FlashPrograms - m.GC.Relocated }

// WriteAmplification returns total flash programs per host-attributable
// program (1.0 = no GC overhead), or 0 when nothing was programmed.
func (m DeviceMetrics) WriteAmplification() float64 {
	host := m.HostPrograms()
	if host == 0 {
		return 0
	}
	return float64(m.FlashPrograms) / float64(host)
}

// Sub returns m minus prev, field-wise; the runner uses it to exclude the
// preconditioning phase from reported metrics.
func (m DeviceMetrics) Sub(prev DeviceMetrics) DeviceMetrics {
	return DeviceMetrics{
		HostWrites:     m.HostWrites - prev.HostWrites,
		HostReads:      m.HostReads - prev.HostReads,
		FlashPrograms:  m.FlashPrograms - prev.FlashPrograms,
		FlashReads:     m.FlashReads - prev.FlashReads,
		FlashErases:    m.FlashErases - prev.FlashErases,
		Revived:        m.Revived - prev.Revived,
		DedupHits:      m.DedupHits - prev.DedupHits,
		UnmappedReads:  m.UnmappedReads - prev.UnmappedReads,
		BufferAbsorbed: m.BufferAbsorbed - prev.BufferAbsorbed,
		BufferReadHits: m.BufferReadHits - prev.BufferReadHits,
		Suspensions:    m.Suspensions - prev.Suspensions,
		GC: ftl.GCStats{
			Runs:           m.GC.Runs - prev.GC.Runs,
			Relocated:      m.GC.Relocated - prev.GC.Relocated,
			Erased:         m.GC.Erased - prev.GC.Erased,
			Background:     m.GC.Background - prev.GC.Background,
			PartialWindows: m.GC.PartialWindows - prev.GC.PartialWindows,
			PartialPages:   m.GC.PartialPages - prev.GC.PartialPages,
		},
		Pool: core.PoolStats{
			Inserts:   m.Pool.Inserts - prev.Pool.Inserts,
			Hits:      m.Pool.Hits - prev.Pool.Hits,
			Misses:    m.Pool.Misses - prev.Pool.Misses,
			Evictions: m.Pool.Evictions - prev.Pool.Evictions,
			Drops:     m.Pool.Drops - prev.Pool.Drops,
			Promoted:  m.Pool.Promoted - prev.Pool.Promoted,
			Demoted:   m.Pool.Demoted - prev.Pool.Demoted,
		},
		Faults: m.Faults.Sub(prev.Faults),
		Scrub:  m.Scrub.Sub(prev.Scrub),
		Rain:   m.Rain.Sub(prev.Rain),
		Dftl:   m.Dftl.Sub(prev.Dftl),
	}
}

// Add returns m plus d, field-wise — the inverse of Sub. The multi-tenant
// engine uses it to accumulate per-request metric deltas into per-tenant
// totals.
func (m DeviceMetrics) Add(d DeviceMetrics) DeviceMetrics {
	zero := DeviceMetrics{}
	return d.Sub(zero.Sub(m))
}

// Device is one simulated SSD processing host requests. Implementations
// are single-goroutine: the runner drives them sequentially, as SSDSim does.
type Device interface {
	// Write stores content with hash h at logical page lpn, arriving at
	// time now; it returns the completion time.
	Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error)

	// Read fetches logical page lpn at time now and returns the
	// completion time. Reads of unwritten pages complete immediately.
	Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error)

	// Metrics returns the cumulative counters.
	Metrics() DeviceMetrics
}

// NewDevice builds the device selected by cfg.
func NewDevice(cfg Config) (Device, error) {
	if cfg.PoolKind == "" {
		cfg.PoolKind = PoolMQ
	}
	if cfg.HotColdStreams {
		cfg.Store.UserStreams = 2
		cfg.Store.SeparateGCStream = true
	}
	if cfg.Faults.Active() {
		cfg.Store.Faults = cfg.Faults
	}
	if cfg.RAIN.Enabled() {
		cfg.Store.RAIN = cfg.RAIN
	}
	if cfg.DFTL.Enabled() {
		cfg.Store.DFTL = cfg.DFTL
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bus := ssd.NewBus(cfg.Geometry, cfg.Latency)
	store, err := ftl.NewStore(cfg.Store, bus)
	if err != nil {
		return nil, err
	}
	if cfg.LogicalPages > store.UsablePages() {
		return nil, fmt.Errorf("sim: %d logical pages exceed the store's usable capacity %d "+
			"(frontiers and GC reserve shrink it below the exported size)",
			cfg.LogicalPages, store.UsablePages())
	}
	if err := store.AttachCMT(cfg.LogicalPages); err != nil {
		return nil, err
	}
	tel := cfg.Telemetry
	if tel.On() {
		// Wire the observability layer before the first operation: the bus
		// reports every stamped op, the store tags GC/ECC work with its
		// origin. None of it can influence timing — the observer runs after
		// the timeline is already updated.
		store.Tel = tel
		tel.Attach(cfg.Geometry)
		bus.SetObserver(tel)
	}
	var dev Device
	switch cfg.Kind {
	case KindBaseline:
		dev, err = newBaselineDevice(cfg, bus, store)
	case KindDVP:
		dev, err = newDVPDevice(cfg, bus, store)
	case KindDedup, KindDVPDedup:
		dev, err = newDedupDevice(cfg, bus, store)
	case KindLX:
		dev, err = newLXDevice(cfg, bus, store)
	default:
		return nil, fmt.Errorf("sim: unknown device kind %q", cfg.Kind)
	}
	if err != nil {
		return nil, err
	}
	base := dev
	if cfg.WriteBufferPages > 0 {
		dev, err = newBufferedDevice(dev, cfg.WriteBufferPages, tel)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Scrub.Enabled() {
		scr, err := scrub.New(cfg.Scrub, store)
		if err != nil {
			return nil, err
		}
		dev = &scrubbedDevice{inner: dev, scr: scr}
	}
	if cfg.Store.Preempt.PartialEnabled() {
		dev = &preemptDevice{inner: dev, store: store}
	}
	if cfg.RAIN.Enabled() {
		// Outside partial GC (rebuild work is stamped before the request
		// claims the chip timeline) but inside the health governor, whose
		// verdict gates maintenance too.
		dev = &rainDevice{inner: dev, store: store}
	}
	if cfg.Health.Enabled() {
		// Outermost: the governor's verdict must gate partial GC and the
		// scrub patrol too — a read-only or dead drive does no new work.
		dev = newHealthDevice(dev, store, cfg.Health)
	}
	if tel.On() {
		registerDeviceGauges(tel, dev, bus, store)
		if rt, ok := base.(interface {
			registerTelemetry(*telemetry.Telemetry)
		}); ok {
			rt.registerTelemetry(tel)
		}
	}
	return dev, nil
}

// registerDeviceGauges exposes the architecture-independent health gauges
// of one assembled device: queued flash work, GC debt, free blocks and
// write amplification. Gauges are sampled into the time series on the
// runner's clock and evaluated again at export time.
func registerDeviceGauges(tel *telemetry.Telemetry, dev Device, bus *ssd.Bus, store *ftl.Store) {
	tel.RegisterGauge("flash_backlog_us",
		"flash work queued beyond the current instant, in chip-microseconds", nil,
		func(now ssd.Time) float64 { return float64(bus.Backlog(now)) })
	tel.RegisterGauge("gc_debt_blocks",
		"free blocks GC owes below the per-plane low-water mark", nil,
		func(ssd.Time) float64 { return float64(store.GCDebt()) })
	tel.RegisterGauge("free_blocks",
		"free blocks summed over every plane", nil,
		func(ssd.Time) float64 { return float64(store.TotalFreeBlocks()) })
	tel.RegisterGauge("write_amplification",
		"flash programs per host-attributable program", nil,
		func(ssd.Time) float64 { return dev.Metrics().WriteAmplification() })
	if store.PartialGCEnabled() {
		// Only registered under partial GC so runs without it keep the
		// pre-preemption gauge column set.
		tel.RegisterGauge("gc_drain_backlog_pages",
			"valid pages still awaiting migration in partial-GC drain queues", nil,
			func(ssd.Time) float64 { return float64(store.DrainBacklogPages()) })
	}
	if store.IntegrityArmed() || store.DieFailArmed() {
		// One unified loss gauge: scrub-patrol UECC, host-path UECC and
		// die failure all funnel through the same counter.
		tel.RegisterGauge("lost_pages",
			"pages whose data is currently destroyed and unreconstructed", nil,
			func(ssd.Time) float64 { return float64(store.LostPages()) })
	}
	if store.DftlEnabled() {
		tel.RegisterGauge("dftl_cmt_hit_rate",
			"cached mapping table lookup hit rate", nil,
			func(ssd.Time) float64 { return store.DftlStats().HitRate() })
		tel.RegisterGauge("dftl_trans_programs",
			"translation page programs (write-backs, GC copies, RMWs, checkpoints)", nil,
			func(ssd.Time) float64 { return float64(store.DftlStats().TransPrograms) })
		tel.RegisterGauge("dftl_trans_gc_runs",
			"GC cycles that collected a translation block", nil,
			func(ssd.Time) float64 { return float64(store.DftlStats().TransGCRuns) })
	}
	if store.RainEnabled() {
		tel.RegisterGauge("rain_parity_programs",
			"parity page programs charged by stripe flushes", nil,
			func(ssd.Time) float64 { return float64(store.RainStats().ParityPrograms) })
		tel.RegisterGauge("rain_reconstructed_pages",
			"pages rebuilt from surviving stripe members plus parity", nil,
			func(ssd.Time) float64 { return float64(store.RainStats().ReconstructedPages) })
	}
	if hd, ok := dev.(*healthDevice); ok {
		// Only registered under the governor so ungoverned runs keep the
		// earlier gauge column set.
		tel.RegisterGauge("health_state",
			"governor ladder position (0 healthy, 1 throttled, 2 read-only, 3 dead)", nil,
			func(ssd.Time) float64 { return float64(hd.gov.State()) })
		tel.RegisterGauge("health_rejected_total",
			"host operations refused by the governor (writes and reads)", nil,
			func(ssd.Time) float64 {
				st := hd.gov.Stats()
				return float64(st.RejectedWrites + st.RejectedReads)
			})
		tel.RegisterGauge("health_throttled_total",
			"host writes that paid the governor's throttle delay", nil,
			func(ssd.Time) float64 { return float64(hd.gov.Stats().ThrottledWrites) })
		tel.RegisterGauge("health_transitions_total",
			"governor ladder transitions", nil,
			func(ssd.Time) float64 { return float64(hd.gov.Stats().Transitions) })
		tel.RegisterGauge("health_retries_total",
			"host-layer retries of transient program faults", nil,
			func(ssd.Time) float64 { return float64(hd.gov.Stats().Retries) })
	}
}

// telemetryOf returns the observability instance wired into dev (through
// its store), or nil when the device has none.
func telemetryOf(dev Device) *telemetry.Telemetry {
	if s := StoreOf(dev); s != nil {
		return s.Telemetry()
	}
	return nil
}

// absorbUncorrectable completes a host read whose page exceeded ECC
// capability: the loss is already counted in the store's fault stats and
// surfaces through the integrity oracle (ReadHash reports the page
// unreadable), so the simulation keeps running — a real host would see an
// I/O error on this request, not a bricked drive.
func absorbUncorrectable(done ssd.Time, err error) (ssd.Time, error) {
	if err != nil && errors.Is(err, ftl.ErrUncorrectable) {
		return done, nil
	}
	return done, err
}

// StoreOf returns the physical store behind dev (unwrapping the DRAM write
// buffer when present), or nil for devices without one. The lifetime
// harness samples wear and usable capacity through it.
func StoreOf(dev Device) *ftl.Store {
	if sr, ok := dev.(interface{ Store() *ftl.Store }); ok {
		return sr.Store()
	}
	return nil
}

// buildPool constructs the configured dead-value pool over ledger.
func buildPool(cfg Config, ledger *core.Ledger) (core.Pool, error) {
	switch cfg.PoolKind {
	case PoolMQ:
		return core.NewMQPool(cfg.MQ, ledger), nil
	case PoolLRU:
		return core.NewLRUPool(cfg.LRUCapacity, ledger), nil
	case PoolInfinite:
		return core.NewInfinitePool(ledger), nil
	case PoolAdaptive:
		return core.NewAdaptivePool(cfg.Adaptive, ledger), nil
	default:
		return nil, fmt.Errorf("sim: unknown pool kind %q", cfg.PoolKind)
	}
}

// busCounts copies the bus counters into m.
func busCounts(m *DeviceMetrics, bus *ssd.Bus) {
	m.FlashReads, m.FlashPrograms, m.FlashErases = bus.Counts()
	m.Suspensions, _ = bus.SuspendStats()
}
