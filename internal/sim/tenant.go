package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"zombiessd/internal/workload"
)

// This file is the multi-tenant configuration surface: the per-tenant
// stream description (profile, QoS weight, token-bucket rate, queue depth,
// burst envelope, content-space partition) and the text grammar both CLIs
// expose through -tenants/-qos/-qd. Parsing is strict — NaN, infinities,
// negative rates and zero weights are rejected here with a validated
// error, never silently clamped — because a fuzzer (FuzzTenantConfig)
// drives this grammar and every accepted spec must produce a config the
// engine can run deterministically.

// ArbiterKind selects the QoS arbitration policy of the host engine.
type ArbiterKind uint8

// The arbitration policies.
const (
	// ArbFIFO serves the globally oldest queued request — no isolation,
	// the single-submitter behaviour of the paper's trace runner.
	ArbFIFO ArbiterKind = iota
	// ArbWRR is smooth weighted round-robin over tenants with queued work:
	// service shares converge to the configured weights under saturation.
	ArbWRR
	// ArbTokenBucket rate-limits each tenant by a token bucket (Rate
	// requests per simulated second, capacity Burst) and serves FIFO among
	// tenants holding a token.
	ArbTokenBucket
)

// String names the policy (the -qos flag vocabulary).
func (k ArbiterKind) String() string {
	switch k {
	case ArbFIFO:
		return "fifo"
	case ArbWRR:
		return "wrr"
	case ArbTokenBucket:
		return "tbucket"
	default:
		return fmt.Sprintf("ArbiterKind(%d)", uint8(k))
	}
}

// ParseArbiterKind parses one -qos policy name.
func ParseArbiterKind(s string) (ArbiterKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fifo":
		return ArbFIFO, nil
	case "wrr":
		return ArbWRR, nil
	case "tbucket", "token-bucket", "tb":
		return ArbTokenBucket, nil
	default:
		return 0, fmt.Errorf("sim: unknown QoS policy %q (want fifo, wrr or tbucket)", s)
	}
}

// ParseArbiterList parses a comma-separated -qos policy list, rejecting
// duplicates and empty entries.
func ParseArbiterList(s string) ([]ArbiterKind, error) {
	var out []ArbiterKind
	seen := map[ArbiterKind]bool{}
	for _, part := range strings.Split(s, ",") {
		k, err := ParseArbiterKind(part)
		if err != nil {
			return nil, err
		}
		if seen[k] {
			return nil, fmt.Errorf("sim: QoS policy %v listed twice", k)
		}
		seen[k] = true
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sim: empty QoS policy list")
	}
	return out, nil
}

// TenantConfig describes one tenant stream of the multi-queue host engine.
type TenantConfig struct {
	// Name labels the tenant in results and telemetry. Defaults to
	// "t<i>-<profile>" when built by ParseTenants.
	Name string

	// Profile is the tenant's workload shape (a Table II profile, possibly
	// modified by spec options: burst envelope, private value space,
	// inter-arrival scale).
	Profile workload.Profile

	// Seed seeds the tenant's generator. ParseTenants leaves 0 for
	// "derive from the run seed and tenant index".
	Seed int64

	// Requests is the tenant's trace length; 0 means an equal share of the
	// run's request budget.
	Requests int64

	// Weight is the WRR service weight. Must be positive and finite;
	// defaults to 1.
	Weight float64

	// Rate and Burst parameterize the token-bucket policy: Rate is in
	// requests per simulated second (0 = unlimited), Burst is the bucket
	// capacity in requests (0 = default 8 when rate-limited).
	Rate, Burst float64

	// QueueDepth bounds this tenant's outstanding requests
	// (queued + in flight); arrivals beyond it are rejected by admission
	// control and counted. 0 inherits the engine default (-qd flag);
	// the engine treats a resulting 0 as unlimited.
	QueueDepth int

	// privateValues marks a values=private spec entry; ParseTenants
	// resolves it to a per-index Profile.ValueBase once tenant positions
	// are known. Direct constructions set Profile.ValueBase themselves.
	privateValues bool
}

// Validate reports whether the tenant configuration is usable.
func (c TenantConfig) Validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	bad := func(field string, v float64) error {
		return fmt.Errorf("sim: tenant %s: %s=%g invalid", c.Name, field, v)
	}
	if math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) || c.Weight <= 0 {
		return bad("weight", c.Weight)
	}
	if math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) || c.Rate < 0 {
		return bad("rate", c.Rate)
	}
	if math.IsNaN(c.Burst) || math.IsInf(c.Burst, 0) || c.Burst < 0 {
		return bad("burst", c.Burst)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("sim: tenant %s: qd=%d must be ≥ 0", c.Name, c.QueueDepth)
	}
	if c.Requests < 0 {
		return fmt.Errorf("sim: tenant %s: n=%d must be ≥ 0", c.Name, c.Requests)
	}
	return nil
}

// privateValueBase returns the content-space base isolating tenant i:
// below the preconditioning region (2^48) and far above any minted value
// count.
func privateValueBase(i int) uint64 { return uint64(i+1) << 40 }

// ParseTenants parses the -tenants grammar into tenant configs.
//
// The spec is either a bare tenant count ("4": that many tenants cycling
// the six Table II profiles), or a comma-separated list of entries
//
//	profile[*count][:key=value]...
//
// with option keys
//
//	weight=F   WRR weight (> 0)
//	rate=F     token-bucket requests/second (≥ 0, 0 = unlimited)
//	burst=F    token-bucket capacity (≥ 0)
//	qd=N       per-tenant queue depth (≥ 0, 0 = engine default)
//	seed=N     generator seed override
//	n=N        per-tenant request count (0 = equal share)
//	amp=F      diurnal burst amplitude (≥ 0)
//	period=F   burst period in simulated seconds (> 0 when amp > 0)
//	ia=F       inter-arrival scale: mean gap × F (> 0)
//	values=V   "shared" (default) or "private" content space
//	name=S     tenant label override
//
// Example: "mail*2:weight=2:qd=8,trans:values=private:ia=0.25".
func ParseTenants(spec string) ([]TenantConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("sim: empty tenant spec")
	}
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 || n > 64 {
			return nil, fmt.Errorf("sim: tenant count %d outside [1,64]", n)
		}
		names := workload.Names()
		out := make([]TenantConfig, n)
		for i := range out {
			p, _ := workload.ProfileByName(names[i%len(names)])
			out[i] = TenantConfig{Name: fmt.Sprintf("t%d-%s", i, p.Name), Profile: p, Weight: 1}
		}
		return out, nil
	}
	var out []TenantConfig
	for _, entry := range strings.Split(spec, ",") {
		cfgs, err := parseTenantEntry(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, cfgs...)
	}
	if len(out) > 64 {
		return nil, fmt.Errorf("sim: tenant count %d outside [1,64]", len(out))
	}
	for i := range out {
		if out[i].Name == "" {
			out[i].Name = fmt.Sprintf("t%d-%s", i, out[i].Profile.Name)
		}
		if out[i].privateValues {
			out[i].Profile.ValueBase = privateValueBase(i)
		}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func parseTenantEntry(entry string) ([]TenantConfig, error) {
	parts := strings.Split(strings.TrimSpace(entry), ":")
	head := strings.TrimSpace(parts[0])
	count := 1
	if star := strings.IndexByte(head, '*'); star >= 0 {
		n, err := strconv.Atoi(head[star+1:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sim: bad tenant multiplier in %q", entry)
		}
		count = n
		head = head[:star]
	}
	prof, ok := workload.ProfileByName(head)
	if !ok {
		return nil, fmt.Errorf("sim: unknown workload profile %q (want one of %s)",
			head, strings.Join(workload.Names(), ", "))
	}
	c := TenantConfig{Profile: prof, Weight: 1}
	for _, opt := range parts[1:] {
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 || strings.TrimSpace(kv[0]) == "" {
			return nil, fmt.Errorf("sim: bad tenant option %q in %q (want key=value)", opt, entry)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		pf := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				return 0, fmt.Errorf("sim: tenant option %s=%q is not a finite number", key, val)
			}
			return f, nil
		}
		pi := func() (int64, error) {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return 0, fmt.Errorf("sim: tenant option %s=%q is not an integer", key, val)
			}
			return n, nil
		}
		var err error
		switch key {
		case "weight":
			c.Weight, err = pf()
		case "rate":
			c.Rate, err = pf()
		case "burst":
			c.Burst, err = pf()
		case "amp":
			c.Profile.BurstAmplitude, err = pf()
			if err == nil && c.Profile.BurstPeriodUS == 0 {
				c.Profile.BurstPeriodUS = defaultBurstPeriodUS
			}
		case "period":
			var sec float64
			sec, err = pf()
			if err == nil && sec <= 0 {
				err = fmt.Errorf("sim: tenant option period=%q must be positive", val)
			}
			c.Profile.BurstPeriodUS = sec * 1e6
		case "ia":
			var scale float64
			scale, err = pf()
			if err == nil && scale <= 0 {
				err = fmt.Errorf("sim: tenant option ia=%q must be positive", val)
			}
			c.Profile.MeanInterarrivalUS *= scale
		case "qd":
			var n int64
			n, err = pi()
			if err == nil && (n < 0 || n > 1<<20) {
				err = fmt.Errorf("sim: tenant option qd=%q outside [0,2^20]", val)
			}
			c.QueueDepth = int(n)
		case "seed":
			c.Seed, err = pi()
		case "n":
			var n int64
			n, err = pi()
			if err == nil && n < 0 {
				err = fmt.Errorf("sim: tenant option n=%q must be ≥ 0", val)
			}
			c.Requests = n
		case "values":
			switch val {
			case "shared":
			case "private":
				c.privateValues = true
			default:
				err = fmt.Errorf("sim: tenant option values=%q (want shared or private)", val)
			}
		case "name":
			if val == "" {
				err = fmt.Errorf("sim: tenant option name must not be empty")
			}
			c.Name = val
		default:
			err = fmt.Errorf("sim: unknown tenant option %q in %q", key, entry)
		}
		if err != nil {
			return nil, err
		}
	}
	out := make([]TenantConfig, count)
	for i := range out {
		out[i] = c
		if count > 1 && c.Name != "" {
			out[i].Name = fmt.Sprintf("%s-%d", c.Name, i)
		}
	}
	return out, nil
}

// defaultBurstPeriodUS is one simulated minute — long enough that a burst
// half-period spans many requests at the default inter-arrival times.
const defaultBurstPeriodUS = 60e6
