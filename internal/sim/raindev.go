package sim

import (
	"zombiessd/internal/ftl"
	"zombiessd/internal/recovery"
	"zombiessd/internal/scrub"
	"zombiessd/internal/ssd"
	"zombiessd/internal/trace"
)

// rainFlushInterval is the parity flush barrier: every this many host
// writes, the rainDevice closes all open stripes so a trailing partial
// stripe (a write burst that stopped mid-stripe, or pages dribbling out
// of the DRAM write buffer) is never uncovered for long. Stripes that
// fill normally flush on completion and never wait for the barrier.
const rainFlushInterval = 1024

// rainDevice interposes the RAIN maintenance daemons in front of any
// device: every host request first gives the store one idle window of the
// die-rebuild daemon (a no-op until a die fails), and the periodic flush
// barrier bounds how long a partially filled stripe's members stay
// unprotected. The wrapper sits outside partial GC — rebuild work must be
// stamped before the request claims the chip timeline — and inside the
// health governor, whose verdict gates all of it.
type rainDevice struct {
	inner Device
	store *ftl.Store

	writes  int64
	rebuild recovery.RebuildPlan
}

// Write implements Device.
func (d *rainDevice) Write(lpn ftl.LPN, h trace.Hash, now ssd.Time) (ssd.Time, error) {
	if err := d.store.RebuildTick(now); err != nil {
		return 0, wrapInterrupted(lpn, err)
	}
	done, err := d.inner.Write(lpn, h, now)
	if err != nil {
		return done, err
	}
	d.writes++
	if d.writes%rainFlushInterval == 0 {
		if ferr := d.store.FlushParity(now); ferr != nil {
			return 0, wrapInterrupted(lpn, ferr)
		}
	}
	return done, nil
}

// Read implements Device.
func (d *rainDevice) Read(lpn ftl.LPN, now ssd.Time) (ssd.Time, error) {
	if err := d.store.RebuildTick(now); err != nil {
		return 0, err
	}
	return d.inner.Read(lpn, now)
}

// Metrics implements Device, folding in the store's RAIN counters.
func (d *rainDevice) Metrics() DeviceMetrics {
	m := d.inner.Metrics()
	m.Rain = d.store.RainStats()
	return m
}

// Scrubber forwards to the inner device so patrol introspection still
// works when the wrappers are stacked.
func (d *rainDevice) Scrubber() *scrub.Scrubber {
	if sr, ok := d.inner.(interface{ Scrubber() *scrub.Scrubber }); ok {
		return sr.Scrubber()
	}
	return nil
}

// Bus forwards to the inner device for utilization reporting.
func (d *rainDevice) Bus() *ssd.Bus {
	if br, ok := d.inner.(interface{ Bus() *ssd.Bus }); ok {
		return br.Bus()
	}
	return nil
}

// Store forwards to the inner device for wear and capacity introspection.
func (d *rainDevice) Store() *ftl.Store { return StoreOf(d.inner) }

// Recover implements Recoverer: the inner recovery rebuilds the mapping
// and — through the store's RAIN tail — the stripe masks; afterwards the
// wrapper re-derives the die-rebuild plan from the recovered durable
// state, so the daemon resumes against exactly the pages still stranded
// on dead dies rather than restarting from scratch.
func (d *rainDevice) Recover(opts RecoverOptions) (recovery.Report, error) {
	rep, err := Recover(d.inner, opts)
	if err != nil {
		return rep, err
	}
	d.rebuild = recovery.RebuildPlan{}
	if d.store.DieFailed() {
		snap := recovery.SnapshotOf(d.store)
		plan, perr := recovery.BuildPlan(snap)
		if perr != nil {
			return rep, perr
		}
		d.rebuild = recovery.Rebuild(d.store.Geometry(), snap, plan)
	}
	return rep, nil
}

// RebuildPlan exposes the die-rebuild plan computed by the last Recover —
// the crash-during-rebuild tests assert resumption against it.
func (d *rainDevice) RebuildPlan() recovery.RebuildPlan { return d.rebuild }

// ReadHash implements HashReader by forwarding.
func (d *rainDevice) ReadHash(lpn ftl.LPN) (trace.Hash, bool) {
	if hr, ok := d.inner.(HashReader); ok {
		return hr.ReadHash(lpn)
	}
	return trace.Hash{}, false
}
