package sim

import (
	"math"
	"strings"
	"testing"

	"zombiessd/internal/workload"
)

func TestParseArbiterKind(t *testing.T) {
	good := map[string]ArbiterKind{
		"fifo": ArbFIFO, "wrr": ArbWRR, "tbucket": ArbTokenBucket,
		"token-bucket": ArbTokenBucket, "tb": ArbTokenBucket,
		" WRR ": ArbWRR,
	}
	for in, want := range good {
		k, err := ParseArbiterKind(in)
		if err != nil || k != want {
			t.Errorf("ParseArbiterKind(%q) = %v, %v; want %v", in, k, err, want)
		}
	}
	for _, in := range []string{"", "bogus", "fifo,wrr"} {
		if _, err := ParseArbiterKind(in); err == nil {
			t.Errorf("ParseArbiterKind(%q) accepted", in)
		}
	}
}

func TestParseArbiterList(t *testing.T) {
	ks, err := ParseArbiterList("fifo,wrr,tbucket")
	if err != nil || len(ks) != 3 {
		t.Fatalf("full list: %v, %v", ks, err)
	}
	for _, in := range []string{"", "fifo,", "fifo,fifo", "wrr,tb,tbucket"} {
		if _, err := ParseArbiterList(in); err == nil {
			t.Errorf("ParseArbiterList(%q) accepted", in)
		}
	}
}

func TestParseTenantsCount(t *testing.T) {
	cfgs, err := ParseTenants("4")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("got %d tenants, want 4", len(cfgs))
	}
	names := workload.Names()
	for i, c := range cfgs {
		if c.Profile.Name != names[i%len(names)] {
			t.Errorf("tenant %d profile %s, want %s", i, c.Profile.Name, names[i%len(names)])
		}
		if c.Weight != 1 {
			t.Errorf("tenant %d weight %g, want 1", i, c.Weight)
		}
		if !strings.HasPrefix(c.Name, "t") {
			t.Errorf("tenant %d name %q lacks default pattern", i, c.Name)
		}
	}
}

func TestParseTenantsSpecs(t *testing.T) {
	cfgs, err := ParseTenants("mail*2:weight=2:qd=8,trans:values=private:ia=0.25:rate=500:burst=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("got %d tenants, want 3", len(cfgs))
	}
	for i := 0; i < 2; i++ {
		if cfgs[i].Weight != 2 || cfgs[i].QueueDepth != 8 || cfgs[i].Profile.Name != "mail" {
			t.Errorf("mail tenant %d wrong: %+v", i, cfgs[i])
		}
		if cfgs[i].Profile.ValueBase != 0 {
			t.Errorf("shared-values tenant %d got ValueBase %d", i, cfgs[i].Profile.ValueBase)
		}
	}
	tr := cfgs[2]
	if tr.Profile.Name != "trans" || tr.Rate != 500 || tr.Burst != 4 {
		t.Errorf("trans tenant wrong: %+v", tr)
	}
	if tr.Profile.ValueBase != privateValueBase(2) {
		t.Errorf("values=private resolved to base %d, want %d (index 2)",
			tr.Profile.ValueBase, privateValueBase(2))
	}
	base, _ := workload.ProfileByName("trans")
	if want := base.MeanInterarrivalUS * 0.25; tr.Profile.MeanInterarrivalUS != want {
		t.Errorf("ia=0.25 gave mean %g, want %g", tr.Profile.MeanInterarrivalUS, want)
	}
}

func TestParseTenantsBurstEnvelope(t *testing.T) {
	cfgs, err := ParseTenants("web:amp=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].Profile.BurstAmplitude != 0.5 || cfgs[0].Profile.BurstPeriodUS != defaultBurstPeriodUS {
		t.Fatalf("amp without period: %+v", cfgs[0].Profile)
	}
	cfgs, err = ParseTenants("web:amp=0.5:period=120")
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].Profile.BurstPeriodUS != 120e6 {
		t.Fatalf("period=120 gave %g µs, want 120e6", cfgs[0].Profile.BurstPeriodUS)
	}
}

func TestParseTenantsRejects(t *testing.T) {
	bad := []string{
		"",                  // empty spec
		"0",                 // count below 1
		"65",                // count above 64
		"nosuchprofile",     // unknown profile
		"mail:weight=0",     // zero weight
		"mail:weight=-1",    // negative weight
		"mail:weight=nan",   // NaN weight
		"mail:weight=+Inf",  // infinite weight
		"mail:rate=-5",      // negative rate
		"mail:rate=nan",     // NaN rate
		"mail:burst=-1",     // negative burst
		"mail:qd=-1",        // negative queue depth
		"mail:qd=9999999",   // queue depth beyond 2^20
		"mail:n=-10",        // negative request count
		"mail:ia=0",         // zero inter-arrival scale
		"mail:ia=-2",        // negative inter-arrival scale
		"mail:amp=-0.5",     // negative burst amplitude
		"mail:amp=nan",      // NaN amplitude
		"mail:period=0",     // zero burst period
		"mail:values=wrong", // bad values mode
		"mail:name=",        // empty name
		"mail:bogus=1",      // unknown key
		"mail:weight",       // missing value
		"mail*0",            // zero multiplier
		"mail*x",            // junk multiplier
		"mail*65",           // multiplier beyond 64 tenants
		"mail,",             // trailing empty entry
	}
	for _, spec := range bad {
		if cfgs, err := ParseTenants(spec); err == nil {
			t.Errorf("ParseTenants(%q) accepted: %+v", spec, cfgs)
		}
	}
}

func TestTenantConfigValidate(t *testing.T) {
	prof, _ := workload.ProfileByName("mail")
	good := TenantConfig{Name: "t", Profile: prof, Weight: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*TenantConfig)
	}{
		{"zero weight", func(c *TenantConfig) { c.Weight = 0 }},
		{"negative weight", func(c *TenantConfig) { c.Weight = -2 }},
		{"nan weight", func(c *TenantConfig) { c.Weight = math.NaN() }},
		{"inf weight", func(c *TenantConfig) { c.Weight = math.Inf(1) }},
		{"negative rate", func(c *TenantConfig) { c.Rate = -1 }},
		{"nan rate", func(c *TenantConfig) { c.Rate = math.NaN() }},
		{"negative burst", func(c *TenantConfig) { c.Burst = -1 }},
		{"inf burst", func(c *TenantConfig) { c.Burst = math.Inf(1) }},
		{"negative qd", func(c *TenantConfig) { c.QueueDepth = -1 }},
		{"negative requests", func(c *TenantConfig) { c.Requests = -1 }},
		{"bad profile", func(c *TenantConfig) { c.Profile.MeanInterarrivalUS = -1 }},
		{"nan amplitude", func(c *TenantConfig) { c.Profile.BurstAmplitude = math.NaN() }},
		{"amp without period", func(c *TenantConfig) { c.Profile.BurstAmplitude = 0.5; c.Profile.BurstPeriodUS = 0 }},
	}
	for _, c := range cases {
		cfg := good
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", c.name)
		}
	}
}

// FuzzTenantConfig drives the -tenants grammar: any spec ParseTenants
// accepts must yield configs that validate cleanly and are safe for the
// engine — finite positive weights, non-negative rates, bounded counts —
// and parsing must be deterministic.
func FuzzTenantConfig(f *testing.F) {
	seeds := []string{
		"1", "8", "64",
		"mail", "mail*2", "mail,trans,web",
		"mail*2:weight=2:qd=8,trans:values=private:ia=0.25",
		"web:amp=0.5:period=120:seed=7:n=1000",
		"trans:rate=500:burst=4:name=antag",
		"mail:weight=nan", "mail:weight=0", "mail:weight=-1",
		"mail:rate=1e308", "mail:qd=-1", "mail:values=private",
		"0", "65", ",", ":", "mail:", "mail:=", "mail*",
		"mail:weight=2:weight=3", "MAIL", "mail :weight=1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfgs, err := ParseTenants(spec)
		if err != nil {
			if cfgs != nil {
				t.Fatalf("error %v returned alongside configs", err)
			}
			return
		}
		if len(cfgs) < 1 || len(cfgs) > 64 {
			t.Fatalf("accepted %d tenants, outside [1,64]", len(cfgs))
		}
		for i, c := range cfgs {
			if err := c.Validate(); err != nil {
				t.Fatalf("accepted spec %q but tenant %d fails Validate: %v", spec, i, err)
			}
			if c.Name == "" {
				t.Fatalf("accepted spec %q left tenant %d unnamed", spec, i)
			}
			if math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0) || c.Weight <= 0 {
				t.Fatalf("accepted weight %g", c.Weight)
			}
			if c.Profile.ValueBase >= 1<<48 {
				t.Fatalf("accepted ValueBase %d aliasing the precondition region", c.Profile.ValueBase)
			}
		}
		// Parsing is pure: a second parse must agree exactly.
		again, err := ParseTenants(spec)
		if err != nil || len(again) != len(cfgs) {
			t.Fatalf("reparse diverged: %v", err)
		}
		for i := range cfgs {
			if cfgs[i] != again[i] {
				t.Fatalf("reparse of %q differs at tenant %d", spec, i)
			}
		}
	})
}
