package sim

import (
	"reflect"
	"strings"
	"testing"
)

// tenantDevice builds a device sized for the tenant set's combined
// footprint at high utilization, so GC is active in engine tests.
func tenantDevice(t *testing.T, kind Kind, footprint int64) Device {
	t.Helper()
	cfg := testConfig(kind, footprint)
	cfg.Geometry = GeometryFor(footprint, 0.85)
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func mustGenerate(t *testing.T, spec string, requests, seed int64) []TenantTrace {
	t.Helper()
	cfgs, err := ParseTenants(spec)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := GenerateTenants(cfgs, requests, seed)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// TestRunTenantsSingleMatchesRun pins the degenerate-case contract: a
// single tenant under any work-conserving arbiter with unlimited depth
// must reproduce the single-submitter runner exactly.
func TestRunTenantsSingleMatchesRun(t *testing.T) {
	recs := redundantTrace(6000)
	want := mustRun(t, KindDVP, recs)
	for _, arb := range []ArbiterKind{ArbFIFO, ArbWRR, ArbTokenBucket} {
		dev, err := NewDevice(testConfig(KindDVP, testFootprint))
		if err != nil {
			t.Fatal(err)
		}
		mr, err := RunTenants(dev, []TenantTrace{{
			Cfg:       TenantConfig{Name: "host", Weight: 1},
			Recs:      recs,
			Footprint: testFootprint,
		}}, EngineOptions{
			Arbiter:           arb,
			PreconditionPages: testFootprint,
			LogicalPages:      testFootprint,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mr.Result, want) {
			t.Errorf("%v: single-tenant engine result diverged from Run:\n got %+v\nwant %+v",
				arb, mr.Result, want)
		}
		if len(mr.Tenants) != 1 || mr.Tenants[0].Requests != int64(len(recs)) {
			t.Errorf("%v: tenant breakdown wrong: %+v", arb, mr.Tenants)
		}
	}
}

// TestRunTenantsDeterministic runs the same 2-tenant configuration twice
// on fresh devices: a multi-tenant run is a pure function of
// (seeds, config), so every field must match exactly.
func TestRunTenantsDeterministic(t *testing.T) {
	run := func() MultiResult {
		traces := mustGenerate(t, "mail,trans:ia=0.5", 6000, 42)
		fp := TotalFootprint(traces)
		dev := tenantDevice(t, KindDVP, fp)
		mr, err := RunTenants(dev, traces, EngineOptions{
			Arbiter:           ArbWRR,
			QueueDepth:        4,
			DeviceSlots:       4,
			PreconditionPages: fp,
			LogicalPages:      fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated multi-tenant runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestDeviceSlotsBackpressure checks the shared slot bound creates real
// queueing — positive arbiter holds — while every admitted request still
// completes (admitted + rejected = trace length per tenant).
func TestDeviceSlotsBackpressure(t *testing.T) {
	run := func(qd, slots int) MultiResult {
		traces := mustGenerate(t, "mail:ia=0.2,trans:ia=0.2", 6000, 7)
		fp := TotalFootprint(traces)
		dev := tenantDevice(t, KindBaseline, fp)
		mr, err := RunTenants(dev, traces, EngineOptions{
			Arbiter:           ArbWRR,
			QueueDepth:        qd,
			DeviceSlots:       slots,
			PreconditionPages: fp,
			LogicalPages:      fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mr
	}

	bounded := run(16, 1)
	var held bool
	for i, tr := range bounded.Tenants {
		if tr.Wait.Max > 0 {
			held = true
		}
		traceLen := tr.Requests + tr.Rejected
		if traceLen == 0 {
			t.Errorf("tenant %d processed nothing", i)
		}
	}
	if !held {
		t.Error("DeviceSlots=1 produced no arbiter holds; shared bound is not binding")
	}

	open := run(0, 0)
	for i, tr := range open.Tenants {
		if tr.Wait.Max != 0 {
			t.Errorf("tenant %d held %dµs with unlimited slots", i, tr.Wait.Max)
		}
		if tr.Rejected != 0 {
			t.Errorf("tenant %d rejected %d with no admission bound", i, tr.Rejected)
		}
	}
}

// TestCrossTenantSubsidy pins the revival ledger: two mail tenants
// sharing a content space subsidize each other symmetrically (what t0
// revives from t1's garbage is exactly what t1 reports revived-by-other),
// and private value spaces eliminate the subsidy entirely.
func TestCrossTenantSubsidy(t *testing.T) {
	run := func(spec string) MultiResult {
		traces := mustGenerate(t, spec, 8000, 11)
		fp := TotalFootprint(traces)
		dev := tenantDevice(t, KindDVP, fp)
		mr, err := RunTenants(dev, traces, EngineOptions{
			Arbiter:           ArbFIFO,
			PreconditionPages: fp,
			LogicalPages:      fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mr
	}

	shared := run("mail*2")
	s0, s1 := shared.Tenants[0].Store, shared.Tenants[1].Store
	if s0.RevivedOther != s1.RevivedByOther || s1.RevivedOther != s0.RevivedByOther {
		t.Errorf("subsidy ledger asymmetric: t0 %+v, t1 %+v", s0, s1)
	}
	if s0.RevivedOther+s1.RevivedOther == 0 {
		t.Error("shared content space produced no cross-tenant revivals")
	}
	if s0.RevivedSelf+s1.RevivedSelf == 0 {
		t.Error("no self revivals at all; DVP machinery looks dead")
	}

	private := run("mail*2:values=private")
	p0, p1 := private.Tenants[0].Store, private.Tenants[1].Store
	if p0.RevivedOther != 0 || p1.RevivedOther != 0 || p0.RevivedByOther != 0 || p1.RevivedByOther != 0 {
		t.Errorf("private value spaces still subsidized: t0 %+v, t1 %+v", p0, p1)
	}
}

// TestMultiResultAggregates checks the per-tenant breakdown ties out to
// the aggregate: request counts sum, and per-tenant device-metric deltas
// sum to the whole run's metrics.
func TestMultiResultAggregates(t *testing.T) {
	traces := mustGenerate(t, "mail,web,trans", 6000, 5)
	fp := TotalFootprint(traces)
	dev := tenantDevice(t, KindDVP, fp)
	mr, err := RunTenants(dev, traces, EngineOptions{
		Arbiter:           ArbWRR,
		QueueDepth:        8,
		DeviceSlots:       8,
		PreconditionPages: fp,
		LogicalPages:      fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	var reqs int64
	var metrics DeviceMetrics
	for _, tr := range mr.Tenants {
		reqs += tr.Requests
		metrics = metrics.Add(tr.Metrics)
	}
	if reqs != int64(mr.All.Count) {
		t.Errorf("tenant requests sum %d, aggregate count %d", reqs, int64(mr.All.Count))
	}
	if metrics != mr.Metrics {
		t.Errorf("per-tenant metric deltas do not sum to the aggregate:\n sum %+v\n all %+v",
			metrics, mr.Metrics)
	}
	var hostPrograms int64
	for _, tr := range mr.Tenants {
		hostPrograms += tr.Store.HostPrograms
	}
	if hostPrograms != mr.Metrics.HostPrograms() {
		t.Errorf("store ledger host programs %d, device metrics %d",
			hostPrograms, mr.Metrics.HostPrograms())
	}
}

func TestRunTenantsValidation(t *testing.T) {
	traces := mustGenerate(t, "mail", 2000, 1)
	fp := TotalFootprint(traces)
	cases := []struct {
		name string
		mut  func(*[]TenantTrace, *EngineOptions)
		want string
	}{
		{"no tenants", func(tt *[]TenantTrace, _ *EngineOptions) { *tt = nil }, "no tenants"},
		{"zero logical", func(_ *[]TenantTrace, o *EngineOptions) { o.LogicalPages = 0 }, "LogicalPages"},
		{"negative qd", func(_ *[]TenantTrace, o *EngineOptions) { o.QueueDepth = -1 }, "queue depth"},
		{"negative slots", func(_ *[]TenantTrace, o *EngineOptions) { o.DeviceSlots = -2 }, "device slots"},
		{"precondition too big", func(_ *[]TenantTrace, o *EngineOptions) { o.PreconditionPages = o.LogicalPages + 1 }, "precondition"},
		{"footprint overflow", func(tt *[]TenantTrace, _ *EngineOptions) { (*tt)[0].Footprint *= 100 }, "exceed logical space"},
		{"zero footprint", func(tt *[]TenantTrace, _ *EngineOptions) { (*tt)[0].Footprint = 0 }, "footprint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tt := make([]TenantTrace, len(traces))
			copy(tt, traces)
			opts := EngineOptions{LogicalPages: fp}
			c.mut(&tt, &opts)
			dev := tenantDevice(t, KindBaseline, fp)
			_, err := RunTenants(dev, tt, opts)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}
