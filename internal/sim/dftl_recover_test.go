package sim

import (
	"testing"

	"zombiessd/internal/dftl"
)

// dftlTestConfig arms the flash-resident mapping table on one architecture
// with a deliberately tiny CMT — smaller than the footprint's three
// translation pages — so evictions, write-backs and translation GC all
// fire inside a small trace.
func dftlTestConfig(kind Kind) Config {
	cfg := testConfig(kind, testFootprint)
	// The shared test geometry runs 3000 live pages on 4096 physical; the
	// translation stream needs its own frontier block per plane plus room
	// for translation garbage, so give each plane a few more blocks.
	cfg.Geometry.BlocksPerPlane = 20
	cfg.DFTL = dftl.Config{Enable: true, CMTFrames: 2, BatchEvict: true}
	return cfg
}

// checkDftlAgrees verifies the flash-resident mapping against the device's
// in-RAM table: for every logical page, the CMT + durable translation
// pages must resolve to exactly the binding the mapper holds.
func checkDftlAgrees(t *testing.T, dev Device, footprint int64) {
	t.Helper()
	st := testStoreOf(t, dev)
	if !st.DftlEnabled() {
		t.Fatal("DFTL not attached")
	}
	if err := st.CheckDftl(st.LookupOf, footprint); err != nil {
		t.Fatalf("flash-resident mapping diverged: %v", err)
	}
}

// TestCrashDuringDftl cuts power at three points of every architecture's
// life with the flash-resident mapping table armed. Recovery must rebuild
// host data (the shadow oracle), and the re-landed translation checkpoint
// must agree with the rebuilt mapper for every logical page — including
// the GC rebindings that were pending in mapPend when power was lost.
func TestCrashDuringDftl(t *testing.T) {
	recs := redundantTrace(8000)
	kinds := []struct {
		name string
		cfg  Config
	}{
		{"baseline", dftlTestConfig(KindBaseline)},
		{"dvp", dftlTestConfig(KindDVP)},
		{"dvp+dedup", dftlTestConfig(KindDVPDedup)},
		{"lx", dftlTestConfig(KindLX)},
	}
	buffered := dftlTestConfig(KindDVP)
	buffered.WriteBufferPages = 64
	kinds = append(kinds, struct {
		name string
		cfg  Config
	}{"buffered", buffered})

	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			dev, opsPre, _ := replayWithCrash(t, k.cfg, recs, testFootprint, 0)
			checkDftlAgrees(t, dev, testFootprint)
			st := testStoreOf(t, dev)
			if st.DftlStats().TransPrograms == 0 {
				t.Fatal("pilot run programmed no translation pages")
			}
			window := testBusOps(t, dev) - opsPre
			if window <= 0 {
				t.Fatal("pilot issued no flash ops after preconditioning")
			}
			for _, q := range []int64{1, 2, 3} {
				crashAt := opsPre + q*window/4
				dev, _, crashed := replayWithCrash(t, k.cfg, recs, testFootprint, crashAt)
				if !crashed {
					t.Errorf("power loss at op %d never fired", crashAt)
				}
				checkDftlAgrees(t, dev, testFootprint)
				if testStoreOf(t, dev).DftlStats().CheckpointPages == 0 {
					t.Error("recovery re-landed no translation checkpoint pages")
				}
			}
		})
	}
}

// TestDftlTranslationGCRuns drives enough mapping churn through a
// tiny-CMT device that the translation stream itself needs garbage
// collection, and requires the second GC stream to have actually fired —
// the attribution the dftlsweep experiment reports.
func TestDftlTranslationGCRuns(t *testing.T) {
	cfg := dftlTestConfig(KindBaseline)
	dev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := redundantTrace(30_000)
	if _, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint, PreconditionPages: testFootprint}); err != nil {
		t.Fatal(err)
	}
	st := testStoreOf(t, dev)
	stats := st.DftlStats()
	if stats.Misses == 0 || stats.Writebacks == 0 {
		t.Fatalf("tiny CMT saw no miss/writeback traffic: %+v", stats)
	}
	if stats.TransGCRuns == 0 || stats.TransErased == 0 {
		t.Fatalf("translation stream never needed GC: %+v", stats)
	}
	checkDftlAgrees(t, dev, testFootprint)
	m := dev.Metrics()
	if m.Dftl != stats {
		t.Errorf("DeviceMetrics.Dftl = %+v, store says %+v", m.Dftl, stats)
	}
}

// TestDftlDisabledStatsZero pins the disabled path: a plain run must leave
// every DFTL counter at zero and CheckDftl a no-op.
func TestDftlDisabledStatsZero(t *testing.T) {
	dev, err := NewDevice(testConfig(KindDVP, testFootprint))
	if err != nil {
		t.Fatal(err)
	}
	recs := redundantTrace(2000)
	if _, err := Run(dev, recs, RunOptions{LogicalPages: testFootprint, PreconditionPages: testFootprint}); err != nil {
		t.Fatal(err)
	}
	if s := dev.Metrics().Dftl; s != (dftl.Stats{}) {
		t.Errorf("disabled run accumulated DFTL stats: %+v", s)
	}
	st := testStoreOf(t, dev)
	if st.DftlEnabled() {
		t.Error("CMT attached without DFTL enabled")
	}
	if err := st.CheckDftl(st.LookupOf, testFootprint); err != nil {
		t.Errorf("disabled CheckDftl errored: %v", err)
	}
}
